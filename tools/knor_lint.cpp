// knor_lint — dependency-free source linter enforcing the repo's
// determinism and safety invariants (DESIGN.md §14).
//
// The invariants it guards are exactly the ones a compiler cannot:
//
//   KL001  locale/overflow-unsafe number parsing (atoi/strtol family)
//          anywhere but the blessed CLI helper.  Everything else must go
//          through common/strict_parse.hpp, whose rejection behaviour the
//          fuzz harness pins.
//   KL002  kernels::set_isa() outside the SIMD layer or tool entry
//          points — a library TU that pins the global ISA silently breaks
//          the cross-ISA bitwise-conformance oracle for every caller.
//   KL003  ambient entropy (rand/srand/std::random_device/time) outside
//          common/prng.hpp — any other source of randomness breaks run
//          reproducibility in a way no test can bisect.
//   KL004  raw new[]/malloc of float/double/value_t SIMD buffers outside
//          common/aligned_buffer.hpp — unaligned rows fault under the
//          aligned-load kernels on exactly one ISA.
//   KL005  obs metric registered without an explicit Det::kDeterministic /
//          Det::kTiming class — unclassified metrics leak timing noise
//          into the deterministic export partition.
//
// Usage:
//   knor_lint [--root DIR]          lint the default tree (src tools bench
//                                   tests examples under DIR; default: cwd)
//   knor_lint FILE...               lint exactly these files (fixtures)
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
// Per-line opt-out: a comment containing `knor_lint: allow KLxxx`.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blank out comments and string/char literal *contents* (quotes stay, so
/// `.counter("` is still recognisable), preserving newlines so offsets map
/// back to line numbers.  Handles //, /* */, escapes, and R"(...)".
std::string strip(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChr, kRaw };
  St st = St::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          raw_delim = ")";
          while (p < src.size() && src[p] != '(') raw_delim += src[p++];
          raw_delim += '"';
          st = St::kRaw;
          for (std::size_t j = i; j <= p && j < src.size(); ++j)
            if (out[j] != '\n') out[j] = ' ';
          i = p;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChr;
        }
        break;
      case St::kLine:
        if (c == '\n')
          st = St::kCode;
        else
          out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChr:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j)
            if (out[i + j] != '\n') out[i + j] = ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// True when `path` (generic, forward-slash form) ends with `suffix`.
bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

struct Token {
  const char* name;
  bool need_paren;  // function-like: must be followed by '('
};

struct TokenRule {
  const char* rule;
  std::vector<Token> tokens;
  std::vector<const char*> allowed_suffixes;
  const char* message;
};

const TokenRule kTokenRules[] = {
    {"KL001",
     {{"atoi", true},
      {"atof", true},
      {"atol", true},
      {"atoll", true},
      {"strtol", true},
      {"strtoul", true},
      {"strtoll", true},
      {"strtoull", true},
      {"strtod", true},
      {"strtof", true},
      {"strtold", true},
      {"sscanf", true}},
     {"tools/cli_args.hpp"},
     "locale/overflow-unsafe parse; use common/strict_parse.hpp"},
    {"KL002",
     {{"set_isa", true}},
     {"core/kernels/simd.cpp", "core/kernels/simd.hpp",
      "tests/simd_kernel_test.cpp", "tools/knor_cli.cpp",
      "tools/knor_bench.cpp", "tools/knor_stream.cpp",
      "tools/knor_serve.cpp"},
     "global ISA pin outside the SIMD layer breaks cross-ISA conformance"},
    {"KL003",
     {{"rand", true},
      {"srand", true},
      {"time", true},
      {"random_device", false}},
     {"common/prng.hpp"},
     "ambient entropy; use the seeded PRNG in common/prng.hpp"},
};

/// KL004 trigger spellings: raw allocation of SIMD-fed element buffers.
const char* const kRawAllocPatterns[] = {"new float[", "new double[",
                                         "new value_t[", "malloc("};

/// Find the matching ')' for the '(' at `open` in stripped text.
std::size_t match_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

class Linter {
 public:
  explicit Linter(std::vector<Violation>* out) : out_(out) {}

  bool lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "knor_lint: cannot read %s\n",
                   path.string().c_str());
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string src = ss.str();
    const std::string text = strip(src);
    const std::string generic = fs::path(path).generic_string();

    // Line starts, for offset -> line mapping and suppression lookup.
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < src.size(); ++i)
      if (src[i] == '\n') starts.push_back(i + 1);
    const auto line_of = [&](std::size_t off) {
      return static_cast<std::size_t>(
          std::upper_bound(starts.begin(), starts.end(), off) -
          starts.begin());
    };
    // `knor_lint: allow KLxxx` on the flagged line or the line above it.
    const auto suppressed = [&](std::size_t line, const char* rule) {
      const std::size_t b = starts[line > 1 ? line - 2 : 0];
      const std::size_t e =
          line < starts.size() ? starts[line] : src.size();
      const std::string want = std::string("knor_lint: allow ") + rule;
      return src.substr(b, e - b).find(want) != std::string::npos;
    };
    const auto report = [&](std::size_t off, const char* rule,
                            const std::string& msg) {
      const std::size_t line = line_of(off);
      if (!suppressed(line, rule))
        out_->push_back({generic, line, rule, msg});
    };

    for (const TokenRule& r : kTokenRules) {
      bool allowed = false;
      for (const char* suf : r.allowed_suffixes)
        if (path_ends_with(generic, suf)) allowed = true;
      if (allowed) continue;
      for (const Token& tok : r.tokens) {
        const std::size_t len = std::string(tok.name).size();
        for (std::size_t p = text.find(tok.name); p != std::string::npos;
             p = text.find(tok.name, p + 1)) {
          if (p > 0 && ident_char(text[p - 1])) continue;
          std::size_t q = p + len;
          if (q < text.size() && ident_char(text[q])) continue;
          if (tok.need_paren) {
            while (q < text.size() && text[q] == ' ') ++q;
            if (q >= text.size() || text[q] != '(') continue;
          }
          report(p, r.rule,
                 std::string(tok.name) + (tok.need_paren ? "()" : "") +
                     ": " + r.message);
        }
      }
    }

    if (!path_ends_with(generic, "common/aligned_buffer.hpp")) {
      for (const char* pat : kRawAllocPatterns) {
        for (std::size_t p = text.find(pat); p != std::string::npos;
             p = text.find(pat, p + 1)) {
          if (p > 0 && ident_char(text[p - 1])) continue;
          report(p, "KL004",
                 std::string(pat) +
                     ": raw SIMD buffer; use common/aligned_buffer.hpp");
        }
      }
    }

    // KL005: literal metric registration must carry an explicit Det class.
    for (const char* method :
         {".counter(", ".gauge(", ".histogram(", ".timer("}) {
      const std::size_t mlen = std::string(method).size();
      for (std::size_t p = text.find(method); p != std::string::npos;
           p = text.find(method, p + 1)) {
        const std::size_t open = p + mlen - 1;
        std::size_t q = open + 1;
        while (q < text.size() &&
               (text[q] == ' ' || text[q] == '\n'))
          ++q;
        if (q >= text.size() || text[q] != '"') continue;  // not a literal
        const std::size_t close = match_paren(text, open);
        if (close == std::string::npos) continue;
        const std::string args = text.substr(open, close - open);
        if (args.find("kDeterministic") == std::string::npos &&
            args.find("kTiming") == std::string::npos)
          report(p, "KL005",
                 std::string(method) +
                     "\"...\"): metric registered without explicit "
                     "Det::kDeterministic / Det::kTiming");
      }
    }
    return true;
  }

 private:
  std::vector<Violation>* out_;
};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "lint_fixtures" || name == "corpus" || name == ".git" ||
         name.rfind("build", 0) == 0 || name == "third_party";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        std::fprintf(stderr, "knor_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: knor_lint [--root DIR] [FILE...]\n");
      return 0;
    } else {
      files.emplace_back(arg);
    }
  }

  if (files.empty()) {
    for (const char* sub :
         {"src", "tools", "bench", "tests", "examples"}) {
      const fs::path dir = root / sub;
      if (!fs::exists(dir)) continue;
      for (auto it = fs::recursive_directory_iterator(dir);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && skip_dir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable(it->path()))
          files.push_back(it->path());
      }
    }
    std::sort(files.begin(), files.end());
  }

  std::vector<Violation> violations;
  Linter linter(&violations);
  bool io_ok = true;
  for (const fs::path& f : files) io_ok = linter.lint_file(f) && io_ok;
  if (!io_ok) return 2;

  for (const Violation& v : violations)
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  if (!violations.empty()) {
    std::printf("knor_lint: %zu violation(s) in %zu file(s) checked\n",
                violations.size(), files.size());
    return 1;
  }
  return 0;
}
