// Seeded KL004 violations: raw SIMD buffer allocation outside
// common/aligned_buffer.hpp. Never compiled — exists so lint_test can
// prove the rule fires.
#include <cstdlib>

double* make_centroid_scratch(unsigned k, unsigned d) {
  return new double[static_cast<unsigned long>(k) * d];  // KL004 expected
}

void* make_row_buffer(unsigned bytes) {
  return malloc(bytes);  // KL004 expected here
}
