// Seeded KL003 violations: ambient entropy outside common/prng.hpp.
// Never compiled — exists so lint_test can prove the rule fires.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned roll_seed() {
  std::srand(time(nullptr));          // KL003 expected twice on this line
  std::random_device entropy;         // KL003 expected here
  return entropy() ^ std::rand();     // KL003 expected here
}
