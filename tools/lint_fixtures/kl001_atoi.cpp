// Seeded KL001 violation: atoi-family parsing outside tools/cli_args.hpp.
// Never compiled — exists so lint_test can prove the rule fires.
#include <cstdlib>

int parse_threads(const char* arg) {
  return std::atoi(arg);  // KL001 expected here
}

double parse_scale(const char* arg) {
  return strtod(arg, nullptr);  // KL001 expected here too
}
