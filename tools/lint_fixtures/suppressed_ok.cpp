// Every violation here carries an inline waiver — knor_lint must exit 0.
// Never compiled — exists so lint_test can prove suppressions work.
#include <cstdlib>

int checked_elsewhere(const char* arg) {
  return std::atoi(arg);  // knor_lint: allow KL001
}

void* legacy_buffer(unsigned bytes) {
  // knor_lint: allow KL004
  return malloc(bytes);
}
