// Seeded KL002 violation: pinning the global SIMD ISA from a library TU.
// Never compiled — exists so lint_test can prove the rule fires.
namespace knor::kernels {
void set_isa(int);
}

void helpful_speedup_hack() {
  knor::kernels::set_isa(2);  // KL002 expected here
}
