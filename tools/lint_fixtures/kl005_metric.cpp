// Seeded KL005 violation: metric registered without an explicit Det class.
// Never compiled — exists so lint_test can prove the rule fires.
struct Counter {
  void inc();
};
struct Registry {
  static Registry& global();
  Counter& counter(const char* name);
  Counter& counter(const char* name, int det);
};

void count_something() {
  Registry::global().counter("core.mystery_events").inc();  // KL005 expected
  Registry::global()
      .counter(
          "core.slow_path_hits")  // KL005 expected: spans lines, still bare
      .inc();
}
