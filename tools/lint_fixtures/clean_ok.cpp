// Violations that live only in comments, strings, or longer identifiers —
// knor_lint must NOT fire on any of them (exit 0).
#include <string>

// atoi(x) in a comment is fine; so is set_isa(2) or rand().
static const char* kDoc =
    "call atoi(s), malloc(n), new double[8], srand(time(0)) at your peril";
static const char* kRaw = R"lint(strtod("1.5", nullptr) inside raw string)lint";

int my_rand_counter = 0;       // `rand` inside an identifier
int migrate(int x) { return x; }  // 'rat' + 'e(' must not look like time(
int uptime(int t) { return t; }   // suffix collision with time(

std::string describe() { return std::string(kDoc) + kRaw; }
