// Shared --flag [value] parser for the knor command-line tools, with ONE
// strict-parsing contract: a malformed numeric value calls the tool's fail
// handler (which prints usage and exits nonzero) instead of atoi-style
// silently becoming 0 — the bug class tests/cli_smoke.cmake pins for every
// tool. Flags with values become map entries; bare flags map to "" and are
// read via has().
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/kmeans_types.hpp"

namespace knor::tools {

class Args {
 public:
  /// Called with a message on any parse error; must not return (the tools
  /// pass a usage()-and-exit lambda).
  using FailFn = std::function<void(const std::string&)>;

  Args(int argc, char** argv, int first, FailFn fail)
      : fail_(std::move(fail)) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) fail_("unexpected argument " + key);
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        values_[key] = argv[++i];
      else
        values_[key] = "";
    }
  }

  bool has(const std::string& key) const {
    read_.insert(key);
    return values_.count(key) > 0;
  }

  std::string str(const std::string& key, const std::string& dflt = "") const {
    read_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }

  long long num(const std::string& key, long long dflt) const {
    read_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (it->second.empty() || *end != '\0' || errno == ERANGE)
      fail_("--" + key + " expects an integer, got '" + it->second + "'");
    return v;
  }

  /// num() with a lower bound — the guard every count-like flag needs
  /// before an unsigned cast (a negative value would wrap to 2^64-ish and
  /// either overflow buffer sizing or silently disable the feature).
  long long num_min(const std::string& key, long long dflt,
                    long long min_value) const {
    const long long v = num(key, dflt);
    if (v < min_value)
      fail_("--" + key + " must be >= " + std::to_string(min_value) +
            ", got " + std::to_string(v));
    return v;
  }

  /// Report a semantic error through the tool's fail handler (usage +
  /// nonzero exit).
  void fail(const std::string& msg) const { fail_(msg); }

  /// Reject flags the tool never consulted. Call AFTER every flag of the
  /// selected verb/code path has been read (has()/str()/num()/real() all
  /// count): a flag nobody asked about is a typo — `--rows-per-request`
  /// silently doing nothing while the run "succeeds" with the default is
  /// the same bug class as atoi-style value leniency.
  void reject_unknown() const {
    for (const auto& kv : values_)
      if (read_.count(kv.first) == 0) fail_("unknown flag --" + kv.first);
  }

  double real(const std::string& key, double dflt) const {
    read_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || *end != '\0' || errno == ERANGE)
      fail_("--" + key + " expects a number, got '" + it->second + "'");
    return v;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> read_;
  FailFn fail_;
};

/// The engine-selection flags every tool shares — `--k --threads --seed
/// --numa-nodes --task-size --numa-bind --sched --simd --init` — parsed in
/// ONE place so knor_cli and knor_stream cannot drift (the README promises
/// they behave identically). Tool-specific knobs (iters, tolerance, prune,
/// NUMA-obliviousness) layer on top at the call site.
inline Options engine_options_from(const Args& args) {
  Options opts;
  opts.k = static_cast<int>(args.num_min("k", 8, 1));
  opts.threads = static_cast<int>(args.num_min("threads", 0, 0));
  opts.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  opts.numa_nodes = static_cast<int>(args.num_min("numa-nodes", 0, 0));
  opts.task_size = static_cast<index_t>(args.num_min("task-size", 0, 0));
  const std::string bind = args.str("numa-bind", "on");
  if (bind == "on")
    opts.numa_bind = true;
  else if (bind == "off")
    opts.numa_bind = false;
  else
    args.fail("--numa-bind must be on or off, got " + bind);
  const std::string sched_name = args.str("sched", "numa");
  if (sched_name == "numa")
    opts.sched = sched::SchedPolicy::kNumaAware;
  else if (sched_name == "fifo")
    opts.sched = sched::SchedPolicy::kFifo;
  else if (sched_name == "static")
    opts.sched = sched::SchedPolicy::kStatic;
  else
    args.fail("unknown --sched policy " + sched_name);
  // Same parser + rejection as the KNOR_SIMD env path (core/kernels/simd):
  // the thrown message reaches the tool's catch and exits nonzero.
  opts.simd = kernels::parse_isa_or_throw(args.str("simd", "auto"), "--simd");
  const std::string init = args.str("init", "forgy");
  if (init == "forgy")
    opts.init = Init::kForgy;
  else if (init == "random")
    opts.init = Init::kRandom;
  else if (init == "kmeans++")
    opts.init = Init::kKmeansPP;
  else
    args.fail("unknown init " + init);
  return opts;
}

}  // namespace knor::tools
