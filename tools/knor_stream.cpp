// knor_stream — streaming clustering + assignment serving (DESIGN.md §9).
//
//   knor_stream ingest  --data stream.kmat --k 64 --decay 0.9
//                       --batch-rows 4096 --snapshot model.ckpt
//   knor_stream assign  --snapshot model.ckpt --queries q.kmat --out a.bin
//   knor_stream snapshot model.ckpt
//
// `ingest` streams a .kmat through a stream::StreamEngine in --batch-rows
// chunks (bounded memory) and snapshots the model; `assign` serves a query
// file against frozen centroids at full blocked-kernel throughput;
// `snapshot` prints a snapshot's header. All numeric flags are strictly
// parsed: garbage exits nonzero instead of silently becoming 0.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cli_args.hpp"
#include "knor/knor.hpp"

namespace {

using namespace knor;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(knor_stream — streaming clustering + assignment serving

subcommands:
  ingest --data FILE --k K [--decay F] [--batch-rows N]
         [--snapshot FILE] [--snapshot-every N] [--resume]
         [--seed S] [--init forgy|random|kmeans++]
         [--threads T] [--numa-bind on|off] [--sched numa|fifo|static]
         [--task-size N] [--numa-nodes N] [--simd ISA]
         [--metrics FILE] [--trace FILE]
      Stream FILE through a StreamEngine in --batch-rows chunks.
      --decay F          per-batch weight decay in (0,1]; 1 = running mean
                         over the whole stream (default 1)
      --batch-rows N     rows per ingested batch (default 4096)
      --snapshot FILE    write the final model snapshot here (and resume
                         from it with --resume)
      --snapshot-every N auto-snapshot every N batches (0 = off)
      For a fixed batch replay the model is bitwise identical at any
      thread count / scheduling policy (DESIGN.md §9).

  assign (--snapshot CKPT | --centroids FILE.kmat) --queries FILE
         [--out FILE] [--batch-rows N] [--source io|page] [--page-kb K]
         [--io-buffers N] [--threads T] [--simd ISA]
         [--metrics FILE] [--trace FILE]
      Stream-assign every query row against the frozen centroids.
      --out FILE        raw little-endian u32 assignment per row, row order
      --source io|page  read whole rows (matrix_io) or page extents
                        through the SEM PageFile (default io)
      --io-buffers N    in-flight batches; the bound is the ingestion
                        backpressure (default 2)

  snapshot FILE
      Print a snapshot's shape (k, d, batches, rows per cluster).

Both ingest and assign accept --metrics FILE (env KNOR_METRICS) for the
run's metric-registry JSON — including the stream.assign.batch_us p50/p99
latency histogram — and --trace FILE (env KNOR_TRACE) for a Chrome
trace-event JSON of the engine phases (DESIGN.md §10).
)");
  std::exit(error != nullptr ? 2 : 0);
}

using Args = tools::Args;

Args parse_args(int argc, char** argv, int first) {
  return Args(argc, argv, first,
              [](const std::string& msg) { usage(msg.c_str()); });
}

// Shared engine flags (k/threads/seed/NUMA/sched/simd/init) parse in
// tools/cli_args.hpp — one builder for knor_cli and knor_stream.

int cmd_ingest(const Args& args) {
  const std::string data = args.str("data");
  if (data.empty()) usage("ingest requires --data FILE");
  const obs::ExportConfig exports =
      obs::export_config(args.str("metrics"), args.str("trace"));
  const Options opts = tools::engine_options_from(args);
  stream::StreamOptions sopts;
  sopts.decay = args.real("decay", 1.0);
  sopts.batch_rows = static_cast<index_t>(args.num_min("batch-rows", 4096, 1));
  sopts.snapshot_path = args.str("snapshot");
  sopts.snapshot_every =
      static_cast<int>(args.num_min("snapshot-every", 0, 0));
  if (sopts.snapshot_every > 0 && sopts.snapshot_path.empty())
    usage("--snapshot-every requires --snapshot FILE");

  stream::StreamEngine engine(opts, sopts);
  if (args.has("resume")) {
    if (sopts.snapshot_path.empty()) usage("--resume requires --snapshot FILE");
    engine.restore(sem::load_checkpoint(sopts.snapshot_path));
    std::printf("resumed from %s at batch %" PRIu64 "\n",
                sopts.snapshot_path.c_str(), engine.stats().batches);
  }
  args.reject_unknown();  // every ingest flag has been consulted

  const index_t rows = engine.ingest_file(data);
  const stream::StreamStats& st = engine.stats();
  std::printf(
      "ingested %" PRIu64 " rows in %" PRIu64 " batches "
      "(%.2f ms/batch mean), last batch SSE %.6g\n",
      static_cast<std::uint64_t>(rows), st.batches,
      st.batch_times.mean() * 1e3, st.last_batch_sse);
  std::printf("cluster weights:");
  for (const value_t w : engine.weights()) std::printf(" %.4g", w);
  std::printf("\n");
  if (!sopts.snapshot_path.empty()) {
    engine.save_snapshot(sopts.snapshot_path);
    std::printf("snapshot -> %s (%" PRIu64 " auto-snapshots during run)\n",
                sopts.snapshot_path.c_str(), st.snapshots);
  }
  obs::write_exports(exports);
  return 0;
}

int cmd_assign(const Args& args) {
  const std::string queries = args.str("queries");
  if (queries.empty()) usage("assign requires --queries FILE");
  const std::string ckpt_path = args.str("snapshot");
  const std::string cent_path = args.str("centroids");
  if (ckpt_path.empty() == cent_path.empty())
    usage("assign requires exactly one of --snapshot CKPT / --centroids "
          "FILE.kmat");

  const obs::ExportConfig exports =
      obs::export_config(args.str("metrics"), args.str("trace"));
  Options opts = tools::engine_options_from(args);
  DenseMatrix centroids = ckpt_path.empty()
                              ? data::read_matrix(cent_path)
                              : sem::load_checkpoint(ckpt_path).centroids;
  opts.k = static_cast<int>(centroids.rows());

  stream::AssignOptions aopts;
  aopts.batch_rows =
      static_cast<index_t>(args.num_min("batch-rows", 1 << 14, 1));
  aopts.io_buffers = static_cast<int>(args.num_min("io-buffers", 2, 1));
  aopts.page_size =
      static_cast<std::size_t>(args.num_min("page-kb", 4, 1)) << 10;
  const std::string source = args.str("source", "io");
  if (source == "io")
    aopts.source = stream::AssignOptions::Source::kMatrixIo;
  else if (source == "page")
    aopts.source = stream::AssignOptions::Source::kPageFile;
  else
    usage(("--source must be io or page, got " + source).c_str());

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> out;
  const std::string out_path = args.str("out");
  if (!out_path.empty()) {
    out.reset(std::fopen(out_path.c_str(), "wb"));
    if (out == nullptr) usage(("cannot write " + out_path).c_str());
  }
  args.reject_unknown();  // every assign flag has been consulted

  stream::AssignServer server(centroids, opts);
  const stream::AssignStats st = server.assign_file(
      queries, aopts,
      [&](index_t, const cluster_t* assign, index_t count) {
        if (out != nullptr &&
            std::fwrite(assign, sizeof(cluster_t),
                        static_cast<std::size_t>(count),
                        out.get()) != static_cast<std::size_t>(count))
          throw std::runtime_error("assign: write failed: " + out_path);
      });
  // A buffered tail that fails to flush must fail the command, never
  // print success over a truncated file.
  if (out != nullptr && std::fclose(out.release()) != 0)
    throw std::runtime_error("assign: close failed: " + out_path);

  std::printf(
      "assigned %" PRIu64 " rows in %" PRIu64 " batches: "
      "%.3g rows/s (%.1f MB read, compute %.1f ms, waited %.1f ms, "
      "drained %.1f ms, reader backpressured %.1f ms)\n",
      st.rows, st.batches, st.rows_per_sec(), st.bytes_read / 1e6,
      st.compute_s * 1e3, st.compute_wait_s * 1e3, st.drain_s * 1e3,
      st.io_stall_s * 1e3);
  std::printf("histogram:");
  for (const std::int64_t c : server.served_histogram())
    std::printf(" %lld", static_cast<long long>(c));
  std::printf("\n");
  if (!out_path.empty())
    std::printf("assignments -> %s\n", out_path.c_str());
  obs::write_exports(exports);
  return 0;
}

int cmd_snapshot(const std::string& path) {
  const sem::Checkpoint ckpt = sem::load_checkpoint(path);
  std::printf("%s: k=%d d=%llu batches=%" PRIu64 " %s\n", path.c_str(),
              ckpt.k(),
              static_cast<unsigned long long>(ckpt.centroids.cols()),
              ckpt.iteration,
              ckpt.weights.empty() ? "(SEM checkpoint)" : "(stream snapshot)");
  if (!ckpt.weights.empty()) {
    std::printf("rows per cluster:");
    for (const std::int64_t c : ckpt.counts)
      std::printf(" %lld", static_cast<long long>(c));
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  try {
    // Strict env validation up front: a typo'd KNOR_LOG/KNOR_LOG_FORMAT
    // exits nonzero here instead of terminating inside a lazy static init.
    knor::log_init_from_env();
    if (cmd == "help" || cmd == "--help" || cmd == "-h") usage();
    if (cmd == "ingest") return cmd_ingest(parse_args(argc, argv, 2));
    if (cmd == "assign") return cmd_assign(parse_args(argc, argv, 2));
    if (cmd == "snapshot") {
      if (argc < 3) usage("snapshot requires a file argument");
      return cmd_snapshot(argv[2]);
    }
    usage(("unknown subcommand " + cmd).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
