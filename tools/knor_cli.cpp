// knor command-line interface.
//
//   knor_cli generate --out data.kmat --dist natural --n 1000000 --d 16
//   knor_cli info data.kmat
//   knor_cli cluster --data data.kmat --mode im  --k 10 [--no-prune] ...
//   knor_cli cluster --data data.kmat --mode sem --k 10 --row-cache-mb 64
//   knor_cli cluster --data data.kmat --mode dist --k 10 --ranks 4
//
// Exercises the full public API; run `knor_cli help` for every flag.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_args.hpp"
#include "knor/knor.hpp"

namespace {

using namespace knor;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(knor_cli — NUMA-optimized k-means (HPDC'17 reproduction)

subcommands:
  generate --out FILE [--dist natural|uniform|univariate] [--n N] [--d D]
           [--components C] [--separation S] [--alpha A] [--locality L]
           [--seed S]
      Stream a synthetic dataset to a .kmat file (never materialized in
      memory).

  info FILE
      Print a .kmat file's header.

  cluster (--data FILE | --gen natural|uniform|univariate --n N --d D)
          --mode im|sem|dist --k K
          [--iters I] [--threads T] [--seed S] [--init forgy|random|
           kmeans++] [--no-prune] [--numa-oblivious] [--numa-nodes N]
          [--numa-bind on|off] [--sched numa|fifo|static] [--task-size N]
          [--simd auto|scalar|sse2|avx2|avx512] [--tolerance F]
          [--metrics FILE] [--trace FILE]
          im:   [--algo lloyd|gemm] [--gemm-tile auto|RxC]
      --threads T      worker threads (0 = one per hardware CPU)
      --algo           im-mode engine: lloyd = NUMA-optimized pruned
                       Lloyd's (default), gemm = blocked-GEMM formulation
                       (fastest at large k; see DESIGN.md §12)
      --gemm-tile      cache tile of the GEMM engine as ROWSxCOLS, e.g.
                       64x256 (auto = L2-sized default; pure performance
                       knob — results are bitwise identical across tiles)
      --metrics FILE   write the run's metric registry as JSON (env
                       KNOR_METRICS; deterministic/timing split,
                       DESIGN.md §10)
      --trace FILE     write a Chrome trace-event JSON of the engine
                       phases (env KNOR_TRACE; open in chrome://tracing
                       or Perfetto)
      --numa-bind      pin workers to their NUMA node's CPUs (default on)
      --sched          scheduling policy: numa = per-node work-stealing
                       deques, fifo = one flat shared queue, static = no
                       stealing (default numa)
      --task-size N    rows per scheduler task (0 = adaptive, default)
      --simd ISA       distance-kernel instruction set (default auto =
                       best supported; unavailable choices clamp down;
                       KNOR_SIMD sets the default)
          sem:  [--page-kb K] [--page-cache-mb M] [--row-cache-mb M]
                [--no-row-cache] [--cache-interval I]
                [--checkpoint FILE] [--checkpoint-interval I] [--resume]
          dist: [--ranks R] [--threads-per-rank T] [--net-latency-us U]
                [--net-gbps G] [--fault-plan PLAN] [--ckpt FILE]
                [--ckpt-every I] [--max-retries N] [--resume]
      --fault-plan     deterministic failure script (DESIGN.md §13);
                       semicolon-separated events: crash@I:rN (node N
                       crashes after iteration I), leave@I:rN / join@I:rN
                       (graceful elasticity), slow:rN*M (straggler
                       multiplier), flaky@I*C (iteration I's collective
                       times out C times), seed=S. Any FT flag routes the
                       run through the fault-tolerant elastic driver.
      --ckpt FILE      leader-written distributed checkpoint (atomic
                       write-fsync-rename, FNV-1a checksummed); recovery
                       and --resume reload it
      --ckpt-every I   checkpoint every I iteration boundaries (default 1;
                       0 = only forced pre-reshard checkpoints)
      --max-retries N  transient-collective retry budget (default 4)
      --resume         continue from --ckpt if it exists
      Run k-means and print the result summary (and SEM I/O statistics).
)");
  std::exit(error != nullptr ? 2 : 0);
}

// Shared strict --flag parser (tools/cli_args.hpp): a malformed numeric
// value exits through usage() instead of atoi-style silently becoming 0.
using Args = tools::Args;

Args parse_args(int argc, char** argv, int first) {
  return Args(argc, argv, first,
              [](const std::string& msg) { usage(msg.c_str()); });
}

data::Distribution parse_dist(const std::string& name) {
  if (name == "natural") return data::Distribution::kNaturalClusters;
  if (name == "uniform") return data::Distribution::kUniformRandom;
  if (name == "univariate") return data::Distribution::kUnivariateRandom;
  usage(("unknown distribution " + name).c_str());
}

data::GeneratorSpec spec_from(const Args& args, const std::string& dist) {
  data::GeneratorSpec spec;
  spec.dist = parse_dist(dist);
  spec.n = static_cast<index_t>(args.num("n", 100000));
  spec.d = static_cast<index_t>(args.num("d", 16));
  spec.true_clusters = static_cast<int>(args.num("components", 16));
  spec.separation = args.real("separation", 8.0);
  spec.power_law_alpha = args.real("alpha", 1.5);
  spec.locality = args.real("locality", 0.0);
  spec.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  return spec;
}

int cmd_generate(const Args& args) {
  const std::string out = args.str("out");
  if (out.empty()) usage("generate requires --out");
  const data::GeneratorSpec spec = spec_from(args, args.str("dist", "natural"));
  std::printf("generating %s -> %s (%.1f MB)\n", spec.describe().c_str(),
              out.c_str(), spec.bytes() / 1e6);
  args.reject_unknown();  // every generate flag has been consulted
  data::write_generated(out, spec);
  std::printf("done\n");
  return 0;
}

int cmd_info(const std::string& path) {
  const data::MatrixHeader header = data::read_header(path);
  std::printf("%s: n=%llu d=%llu elem=%zuB total=%.1f MB\n", path.c_str(),
              static_cast<unsigned long long>(header.n),
              static_cast<unsigned long long>(header.d), header.elem_size,
              static_cast<double>(header.n) * header.d * header.elem_size /
                  1e6);
  return 0;
}

Options options_from(const Args& args) {
  // Shared engine flags (k/threads/seed/NUMA/sched/simd/init) parse in
  // tools/cli_args.hpp — one builder for knor_cli and knor_stream.
  Options opts = tools::engine_options_from(args);
  opts.max_iters = static_cast<int>(args.num_min("iters", 100, 0));
  opts.prune = !args.has("no-prune");
  opts.numa_aware = !args.has("numa-oblivious");
  opts.tolerance = args.real("tolerance", 0.0);
  return opts;
}

void print_result(const Result& res) {
  std::printf("%s\n", res.summary().c_str());
  std::printf("cluster sizes:");
  for (index_t size : res.cluster_sizes)
    std::printf(" %llu", static_cast<unsigned long long>(size));
  std::printf("\n");
}

int cmd_cluster(const Args& args) {
  const std::string mode = args.str("mode", "im");
  Options opts = options_from(args);
  // Resolve before the run: a --trace/KNOR_TRACE path enables the tracer
  // (spans that close while it is disabled are dropped).
  const obs::ExportConfig exports =
      obs::export_config(args.str("metrics"), args.str("trace"));
  const auto finish = [&](int rc) {
    obs::write_exports(exports);
    return rc;
  };

  // Acquire data: a .kmat file, or generated in memory.
  const std::string path = args.str("data");
  DenseMatrix matrix;
  if (mode != "sem") {
    if (!path.empty())
      matrix = data::read_matrix(path);
    else if (args.has("gen"))
      matrix = data::generate(spec_from(args, args.str("gen")));
    else
      usage("cluster requires --data FILE or --gen DIST");
  } else if (path.empty()) {
    usage("--mode sem requires --data FILE");
  }

  if (mode == "im") {
    const std::string algo = args.str("algo", "lloyd");
    try {
      opts.gemm_tile = parse_gemm_tile_or_throw(
          args.str("gemm-tile", "auto"), "--gemm-tile");
    } catch (const std::invalid_argument& e) {
      usage(e.what());
    }
    args.reject_unknown();  // every im-mode flag has been consulted
    if (algo == "gemm")
      print_result(gemm_kmeans(matrix.const_view(), opts));
    else if (algo == "lloyd")
      print_result(kmeans(matrix.const_view(), opts));
    else
      usage(("unknown --algo " + algo).c_str());
    return finish(0);
  }
  if (mode == "sem") {
    sem::SemOptions sopts;
    sopts.page_size = static_cast<std::size_t>(args.num("page-kb", 4)) << 10;
    sopts.page_cache_bytes =
        static_cast<std::size_t>(args.num("page-cache-mb", 4)) << 20;
    sopts.row_cache_bytes =
        static_cast<std::size_t>(args.num("row-cache-mb", 16)) << 20;
    sopts.row_cache_enabled = !args.has("no-row-cache");
    sopts.cache_update_interval =
        static_cast<int>(args.num("cache-interval", 5));
    sopts.checkpoint_path = args.str("checkpoint");
    sopts.checkpoint_interval =
        static_cast<int>(args.num("checkpoint-interval", 0));
    sopts.resume = args.has("resume");
    args.reject_unknown();  // every sem-mode flag has been consulted
    if (opts.init == Init::kKmeansPP || opts.init == Init::kRandom)
      opts.init = Init::kForgy;  // SEM supports forgy/provided
    sem::SemStats stats;
    print_result(sem::kmeans(path, opts, sopts, &stats));
    std::printf("io: requested %.1f MB, read %.1f MB over %zu iterations\n",
                stats.total_requested() / 1e6, stats.total_read() / 1e6,
                stats.per_iter.size());
    return finish(0);
  }
  if (mode == "dist") {
    dist::DistOptions dopts;
    dopts.ranks = static_cast<int>(args.num("ranks", 2));
    dopts.threads_per_rank =
        static_cast<int>(args.num("threads-per-rank", 1));
    dopts.net.latency_us = args.real("net-latency-us", 0);
    dopts.net.gigabytes_per_sec = args.real("net-gbps", 0);
    dist::FtOptions fopts;
    const std::string plan_spec = args.str("fault-plan");
    fopts.checkpoint_path = args.str("ckpt");
    fopts.checkpoint_every = static_cast<int>(args.num("ckpt-every", 1));
    fopts.max_retries = static_cast<int>(args.num("max-retries", 4));
    fopts.resume = args.has("resume");
    args.reject_unknown();  // every dist-mode flag has been consulted
    if (opts.init == Init::kRandom) opts.init = Init::kForgy;
    try {
      if (!plan_spec.empty()) fopts.plan = dist::FaultPlan::parse(plan_spec);
    } catch (const std::invalid_argument& e) {
      usage(e.what());
    }
    // The fault-tolerant driver only when fault tolerance is asked for:
    // the plain path stays the zero-overhead single-epoch engine.
    const bool ft = !fopts.plan.empty() ||
                    !fopts.checkpoint_path.empty() || fopts.resume;
    if (!ft) {
      print_result(dist::kmeans(matrix.const_view(), opts, dopts));
      return finish(0);
    }
    const Result res = dist::ft_kmeans(matrix.const_view(), opts, dopts, fopts);
    print_result(res);
    std::printf(
        "ft: faults %lld retries %lld recoveries %lld checkpoints %lld "
        "member-events %lld\n",
        static_cast<long long>(res.metrics.value_or("dist.faults_injected", 0)),
        static_cast<long long>(res.metrics.value_or("dist.retries", 0)),
        static_cast<long long>(res.metrics.value_or("dist.recoveries", 0)),
        static_cast<long long>(res.metrics.value_or("dist.checkpoints", 0)),
        static_cast<long long>(
            res.metrics.value_or("dist.membership_events", 0)));
    return finish(0);
  }
  usage(("unknown mode " + mode).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  try {
    // Strict env validation up front: a typo'd KNOR_LOG/KNOR_LOG_FORMAT
    // exits nonzero here instead of terminating inside a lazy static init.
    knor::log_init_from_env();
    if (cmd == "help" || cmd == "--help" || cmd == "-h") usage();
    if (cmd == "generate") return cmd_generate(parse_args(argc, argv, 2));
    if (cmd == "info") {
      if (argc < 3) usage("info requires a file argument");
      return cmd_info(argv[2]);
    }
    if (cmd == "cluster") return cmd_cluster(parse_args(argc, argv, 2));
    usage(("unknown subcommand " + cmd).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
