// knor_serve — concurrent query serving front end + load generators
// (DESIGN.md §11).
//
//   knor_serve closed --snapshot model.ckpt --clients 16 --requests 4096
//   knor_serve open   --centroids c.kmat --arrival-rate 2000 --requests 4096
//
// Both verbs freeze a centroid set (from a stream snapshot or a .kmat
// file, or synthesized with --k when neither is given), build a
// serve::QueryFrontEnd, and drive it with the matching load generator:
// `closed` measures throughput with clients that wait for each response;
// `open` replays a seeded Poisson arrival schedule and reports the
// coordinated-omission-free latency tail. All numeric flags are strictly
// parsed: garbage, negatives and overflow exit 2 instead of becoming 0.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli_args.hpp"
#include "knor/knor.hpp"

namespace {

using namespace knor;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(knor_serve — concurrent query serving + load generation

subcommands:
  closed [model] [load] [--direct] [--pipeline P]
      Closed-loop clients: each holds at most P requests in flight and
      submits the next when a slot frees (P=1: submit, wait, repeat).
      Headline: rows/s throughput.
      --direct           bypass admission/batching with one synchronous
                         compute call per request (the unbatched baseline)
      --pipeline P       in-flight requests per client (>= 1, default 1;
                         queued path only)

  open [model] [load] --arrival-rate R
      Open-loop Poisson arrivals: a seeded schedule in virtual time is
      replayed against the wall clock; submission never waits, so queueing
      shows up in the latency tail (measured from the SCHEDULED arrival).
      --arrival-rate R   offered requests/s across all clients (> 0,
                         default 1000)

model (exactly one source):
  --snapshot CKPT        serve a stream/SEM snapshot's centroids
  --centroids FILE.kmat  serve a centroid matrix
  --k K                  synthesize K centroids over a generated pool
                         (self-contained smoke/bench mode; d = 32)

load:
  --clients N        client threads (>= 1, default 4)
  --requests N       total requests across all clients (default 256)
  --rows N           rows per request (>= 1, default 8)
  --topm-every N     every Nth request asks top-m instead (0 = never)
  --m M              entries per top-m request (default 4)
  --seed S           workload seed (request contents + arrival schedule)

front end:
  --batch-window N   coalesce queued requests until a mega-batch holds
                     >= N rows (>= 1; 1 = batching off, default 4096)
  --queue-depth N    admission-queue bound in requests (default 256)
  --shed-policy P    block (wait for a slot) or shed (fail fast)
  --threads T, --sched, --numa-bind, --numa-nodes, --task-size, --simd
                     scheduler/kernel shape, as knor_cli

observability:
  --metrics FILE     metric-registry JSON (serve.request_us p50/p99 etc.)
  --trace FILE       Chrome trace-event JSON of the serve_batch spans

The response content contract: results depend only on each request's rows,
the frozen centroids and the ISA — never on what a batch coalesced — so
assignments are bitwise identical across clients/threads/window settings
(DESIGN.md §11).
)");
  std::exit(error != nullptr ? 2 : 0);
}

using Args = tools::Args;

Args parse_args(int argc, char** argv, int first) {
  return Args(argc, argv, first,
              [](const std::string& msg) { usage(msg.c_str()); });
}

struct Model {
  DenseMatrix centroids;
  DenseMatrix pool;
};

/// Resolve the centroid source, and a query pool with matching d: rows are
/// drawn from a generated friendster-proxy pool (seeded off the workload
/// seed) whatever the centroid source, so the tool is self-contained.
Model load_model(const Args& args, const Options& opts,
                 const serve::LoadOptions& lopts) {
  const std::string ckpt_path = args.str("snapshot");
  const std::string cent_path = args.str("centroids");
  const int sources = (ckpt_path.empty() ? 0 : 1) +
                      (cent_path.empty() ? 0 : 1) + (args.has("k") ? 1 : 0);
  if (sources != 1)
    usage("exactly one of --snapshot CKPT / --centroids FILE.kmat / --k K");

  Model m;
  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kNaturalClusters;
  spec.d = 32;
  spec.true_clusters = 64;
  spec.seed = lopts.seed + 7;
  if (!ckpt_path.empty()) {
    m.centroids = sem::load_checkpoint(ckpt_path).centroids;
  } else if (!cent_path.empty()) {
    m.centroids = data::read_matrix(cent_path);
  } else {
    spec.n = 4096;
    Options init_opts = opts;
    init_opts.k = static_cast<int>(args.num_min("k", 64, 1));
    DenseMatrix seed_pool = data::generate(spec);
    m.centroids = init_centroids(seed_pool.const_view(), init_opts);
  }
  spec.d = m.centroids.cols();
  spec.n = std::max<index_t>(1024, lopts.rows_per_request * 64);
  m.pool = data::generate(spec);
  return m;
}

void print_stats(const char* verb, const serve::QueryFrontEnd& fe,
                 const serve::LoadStats& st) {
  const serve::FrontEndStats fs = fe.stats();
  std::printf(
      "%s: %" PRIu64 " requests (%" PRIu64 " rows) in %.3f s: "
      "%.3g rows/s, %.3g req/s achieved\n",
      verb, st.requests, st.rows, st.wall_s, st.completed_rows_per_sec(),
      st.achieved_rps());
  std::printf(
      "completed %" PRIu64 ", shed %" PRIu64 ", blocked %" PRIu64
      ", batches %" PRIu64 " (max queue depth %zu)\n",
      st.completed, st.shed, fs.blocked, fs.batches, fs.max_queue_depth);
  std::printf("latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms\n",
              st.latency_quantile(0.50) * 1e3, st.latency_quantile(0.95) * 1e3,
              st.latency_quantile(0.99) * 1e3,
              st.latencies_s.empty() ? 0.0 : st.latencies_s.back() * 1e3);
}

int cmd_load(const Args& args, bool open_loop) {
  const obs::ExportConfig exports =
      obs::export_config(args.str("metrics"), args.str("trace"));
  Options opts = tools::engine_options_from(args);

  serve::LoadOptions lopts;
  lopts.clients = static_cast<int>(args.num_min("clients", 4, 1));
  lopts.requests = static_cast<std::uint64_t>(args.num_min("requests", 256, 1));
  lopts.rows_per_request = static_cast<index_t>(args.num_min("rows", 8, 1));
  lopts.topm_every = static_cast<int>(args.num_min("topm-every", 0, 0));
  lopts.m = static_cast<int>(args.num_min("m", 4, 1));
  lopts.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  lopts.direct = args.has("direct");
  lopts.pipeline = static_cast<int>(args.num_min("pipeline", 1, 1));
  lopts.arrival_rate = args.real("arrival-rate", 1000.0);
  if (open_loop && !(lopts.arrival_rate > 0))
    usage("--arrival-rate must be > 0");
  if (lopts.direct && open_loop) usage("--direct is closed-loop only");
  if (open_loop && lopts.pipeline != 1) usage("--pipeline is closed-loop only");
  if (lopts.direct && lopts.pipeline != 1)
    usage("--direct is synchronous; --pipeline needs the queued path");

  serve::FrontEndOptions fopts;
  fopts.batch_window =
      static_cast<index_t>(args.num_min("batch-window", 4096, 1));
  fopts.queue_depth =
      static_cast<std::size_t>(args.num_min("queue-depth", 256, 1));
  const std::string policy = args.str("shed-policy", "block");
  if (policy == "block")
    fopts.shed_policy = serve::ShedPolicy::kBlock;
  else if (policy == "shed")
    fopts.shed_policy = serve::ShedPolicy::kShed;
  else
    usage(("--shed-policy must be block or shed, got " + policy).c_str());

  const Model model = load_model(args, opts, lopts);
  opts.k = static_cast<int>(model.centroids.rows());
  if (lopts.topm_every > 0 && lopts.m > opts.k)
    usage("--m must be <= k");
  args.reject_unknown();  // every flag of this verb has been consulted

  serve::QueryFrontEnd fe(model.centroids, opts, fopts);
  std::printf("serving k=%d d=%" PRIu64 " (window=%" PRIu64
              " rows, queue=%zu, policy=%s, simd=%s)\n",
              fe.k(), static_cast<std::uint64_t>(fe.d()),
              static_cast<std::uint64_t>(fopts.batch_window),
              fopts.queue_depth, serve::to_string(fopts.shed_policy),
              kernels::to_string(fe.ops().isa));
  const serve::LoadStats st =
      open_loop ? serve::run_open_loop(fe, model.pool, lopts)
                : serve::run_closed_loop(fe, model.pool, lopts);
  fe.close();
  print_stats(open_loop ? "open" : "closed", fe, st);

  // Registry-side view of the same run: the batch-latency split the
  // metrics export carries (NaN-free via quantile_or when obs is off).
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  std::printf("serve.request_us p50 %.0f p99 %.0f; queue_wait_us p99 %.0f; "
              "compute_us p99 %.0f\n",
              snap.quantile_or("serve.request_us", 0.50, 0.0),
              snap.quantile_or("serve.request_us", 0.99, 0.0),
              snap.quantile_or("serve.queue_wait_us", 0.99, 0.0),
              snap.quantile_or("serve.compute_us", 0.99, 0.0));
  obs::write_exports(exports);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  try {
    knor::log_init_from_env();
    if (cmd == "help" || cmd == "--help" || cmd == "-h") usage();
    if (cmd == "closed") return cmd_load(parse_args(argc, argv, 2), false);
    if (cmd == "open") return cmd_load(parse_args(argc, argv, 2), true);
    usage(("unknown subcommand " + cmd).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
