// knor_bench — unified driver over every registered paper-reproduction
// suite (bench/harness/). One command reproduces the paper's evaluation:
//
//   knor_bench --scale smoke --out BENCH_results.json --report RESULTS.md
//
// Exit status is nonzero if any selected suite throws or emits no samples
// (the bench-smoke CI gate). `--strip FILE` canonicalizes a results file by
// removing the machine-dependent timing fields, so
//   diff <(knor_bench --strip a.json) <(knor_bench --strip b.json)
// verifies the determinism contract of DESIGN.md §6.
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logger.hpp"
#include "common/strict_parse.hpp"
#include "harness/harness.hpp"
#include "harness/report.hpp"
#include "obs/export.hpp"

namespace {

using namespace knor::bench;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(knor_bench — paper-results reproduction harness

usage:
  knor_bench [--suite NAME[,NAME...]] [--scale smoke|paper] [--factor F]
             [--repeats N] [--warmup N] [--out FILE] [--report FILE]
             [--metrics FILE] [--trace FILE] [--quiet]
  knor_bench --list
  knor_bench --strip FILE

options:
  --suite NAMES   comma-separated suite names (default: all registered)
  --scale TIER    smoke (CI: ~50x smaller data, 1 repeat) or paper
                  (container-feasible reproduction scale, 3 repeats) [paper]
  --factor F      extra dataset scale multiplier (also via KNOR_BENCH_SCALE)
  --repeats N     timing repeats per measurement (median reported)
  --warmup N      discarded warmup runs per measurement
  --out FILE      write BENCH_results.json (schema: DESIGN.md §6)
  --report FILE   write the RESULTS.md markdown report
  --metrics FILE  write the process metric registry as JSON after all
                  suites ran (env KNOR_METRICS; DESIGN.md §10)
  --trace FILE    write a Chrome trace-event JSON of engine phases
                  (env KNOR_TRACE)
  --list          print registered suites and exit
  --strip FILE    print FILE with timing fields removed (determinism diffs;
                  also strips the "timing" half of a --metrics export)
  --quiet         suppress per-suite progress on stderr
)");
  std::exit(error != nullptr ? 2 : 0);
}

int cmd_list() {
  for (const Suite& suite : Registry::instance().suites())
    std::printf("%-22s %s\n", suite.name, suite.title);
  return 0;
}

int cmd_strip(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  Json doc = Json::parse(buf.str(), &error);
  if (!error.empty()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  erase_keys_recursive(doc, timing_keys());
  std::fputs(doc.dump(2).c_str(), stdout);
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

// Strict numeric parsing (knor_cli-style rejection): `--repeats abc` must
// exit nonzero with a message, never silently become 0 samples that "pass".
int parse_int(const std::string& flag, const std::string& value) {
  std::int64_t v = 0;
  if (!knor::parse_i64(value, &v) || v < INT_MIN || v > INT_MAX)
    usage((flag + " expects an integer, got '" + value + "'").c_str());
  return static_cast<int>(v);
}

double parse_num(const std::string& flag, const std::string& value) {
  double v = 0.0;
  if (!knor::parse_double(value, &v))
    usage((flag + " expects a number, got '" + value + "'").c_str());
  return v;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Strict env validation up front: a typo'd KNOR_LOG/KNOR_LOG_FORMAT
  // exits nonzero here instead of terminating inside a lazy static init.
  try {
    knor::log_init_from_env();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::string suites_csv, out_path, report_path;
  std::string metrics_path, trace_path;
  bool quiet = false;
  Scale scale = Scale::kPaper;
  double factor = 0;
  int repeats = 0, warmup = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage();
    else if (arg == "--list") return cmd_list();
    else if (arg == "--strip") return cmd_strip(next());
    else if (arg == "--suite") suites_csv = next();
    else if (arg == "--scale") {
      const std::string tier = next();
      if (tier == "smoke") scale = Scale::kSmoke;
      else if (tier == "paper") scale = Scale::kPaper;
      else usage(("unknown scale " + tier).c_str());
    } else if (arg == "--factor") {
      factor = parse_num(arg, next());
      if (!(factor > 0)) usage("--factor must be > 0");
    } else if (arg == "--repeats") {
      repeats = parse_int(arg, next());
      if (repeats < 1) usage("--repeats must be >= 1");
    } else if (arg == "--warmup") {
      warmup = parse_int(arg, next());
      if (warmup < 0) usage("--warmup must be >= 0");
    }
    else if (arg == "--out") out_path = next();
    else if (arg == "--report") report_path = next();
    else if (arg == "--metrics") metrics_path = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--quiet") quiet = true;
    else usage(("unknown argument " + arg).c_str());
  }

  // Resolve before any suite runs: a --trace/KNOR_TRACE path enables the
  // tracer (spans that close while it is disabled are dropped).
  const knor::obs::ExportConfig exports =
      knor::obs::export_config(metrics_path, trace_path);

  RunOptions opts;
  try {
    // for_scale validates KNOR_BENCH_SCALE strictly — garbage exits 2 here.
    opts = RunOptions::for_scale(scale);
  } catch (const std::exception& e) {
    usage(e.what());
  }
  if (factor > 0) opts.scale_factor *= factor;
  if (repeats > 0) opts.repeats = repeats;
  if (warmup >= 0) opts.warmup = warmup;
  opts.verbose = !quiet;

  std::vector<Suite> selected;
  if (suites_csv.empty()) {
    selected = Registry::instance().suites();
  } else {
    for (const std::string& name : split_csv(suites_csv)) {
      const Suite* suite = Registry::instance().find(name);
      if (suite == nullptr) usage(("unknown suite " + name).c_str());
      selected.push_back(*suite);
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "error: no suites registered\n");
    return 1;
  }

  std::vector<SuiteRun> runs;
  int failures = 0;
  for (const Suite& suite : selected) {
    if (!quiet)
      std::fprintf(stderr, "[%zu/%zu] %s ...\n", runs.size() + 1,
                   selected.size(), suite.name);
    SuiteRun run = run_suite(suite, opts);
    if (!run.ok) {
      ++failures;
      std::fprintf(stderr, "FAILED %s: %s\n", suite.name, run.error.c_str());
    } else if (!run.has_samples()) {
      ++failures;
      std::fprintf(stderr, "FAILED %s: emitted no samples\n", suite.name);
    } else if (!quiet) {
      std::fprintf(stderr, "       %s: %zu rows, %.2fs, fingerprint %s\n",
                   suite.name, run.rows.size(), run.wall_s,
                   run.fingerprint.c_str());
    }
    runs.push_back(std::move(run));
  }

  try {
    knor::obs::write_exports(exports);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!out_path.empty() &&
      !write_file(out_path, results_json(runs, opts).dump(2)))
    return 1;
  if (!report_path.empty() &&
      !write_file(report_path, render_report(runs, opts)))
    return 1;

  // Console summary.
  std::printf("%-22s %6s %8s %10s  %s\n", "suite", "rows", "wall(s)",
              "status", "fingerprint");
  for (const SuiteRun& run : runs)
    std::printf("%-22s %6zu %8.2f %10s  %s\n", run.suite.name,
                run.rows.size(), run.wall_s,
                !run.ok ? "FAILED"
                        : (run.has_samples() ? "ok" : "NO SAMPLES"),
                run.fingerprint.c_str());
  if (!out_path.empty()) std::printf("wrote %s\n", out_path.c_str());
  if (!report_path.empty()) std::printf("wrote %s\n", report_path.c_str());
  if (failures > 0)
    std::printf("%d of %zu suites FAILED\n", failures, runs.size());
  return failures > 0 ? 1 : 0;
}
