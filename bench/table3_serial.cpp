// Table 3 — serial (1-thread) performance of popular k-means
// implementations on the Friendster-8 dataset, all running Lloyd's with
// every distance computed (pruning off, per the paper's fairness rule).
//
// Paper stand-ins (DESIGN.md §1):
//   knori(iterative)  -> our engine, T=1, MTI off
//   MATLAB/BLAS GEMM  -> gemm_kmeans (blocked dgemm formulation)
//   R / Scikit-learn / MLpack iterative -> lloyd_serial (plain iterative C)
//   + lloyd_locked at T=1 to show the lock overhead vanishes serially.
//
// Shape to reproduce: the iterative kernels lead; the GEMM formulation is
// ~2-3x slower at this d (it materializes an n x k block and cannot fuse
// the argmin); all are the same order of magnitude.
#include "bench_util.hpp"
#include "core/engines.hpp"
#include "core/knori.hpp"

using namespace knor;

int main() {
  bench::header("Table 3: serial performance, all distances computed",
                "Table 3 of the paper");

  const data::GeneratorSpec spec = bench::friendster8_proxy();
  const DenseMatrix m = data::generate(spec);
  std::printf("dataset: %s\n\n", spec.describe().c_str());

  Options opts;
  opts.k = 10;
  opts.threads = 1;
  opts.max_iters = 8;
  opts.prune = false;  // fairness: all implementations do all distances
  opts.seed = 42;

  struct Entry {
    const char* name;
    const char* paper_analogue;
    Result result;
  };
  std::vector<Entry> entries;
  entries.push_back({"knori(T=1)", "knori 7.49 s/iter",
                     kmeans(m.const_view(), opts)});
  entries.push_back({"iterative-C", "R 8.63 / sklearn 12.84 / MLpack 13.09",
                     lloyd_serial(m.const_view(), opts)});
  entries.push_back({"gemm", "MATLAB 20.68 / BLAS 20.70",
                     gemm_kmeans(m.const_view(), opts)});
  entries.push_back({"locked(T=1)", "(lock overhead, serial: none)",
                     lloyd_locked(m.const_view(), opts)});

  std::printf("%-14s %14s %12s   %s\n", "implementation", "time/iter(ms)",
              "energy", "paper analogue (s/iter @66M pts)");
  for (const auto& entry : entries)
    std::printf("%-14s %14.2f %12.4e   %s\n", entry.name,
                entry.result.iter_times.mean() * 1e3, entry.result.energy,
                entry.paper_analogue);

  const double knori_ms = entries[0].result.iter_times.mean() * 1e3;
  const double iter_ms = entries[1].result.iter_times.mean() * 1e3;
  const double gemm_ms = entries[2].result.iter_times.mean() * 1e3;
  std::printf("\nShape check: knori(T=1) within a few %% of the plain "
              "iterative loop (engine overhead %.0f%%); gemm %.2fx slower "
              "(paper: 20.7/7.5 = 2.8x, their comparators carry more "
              "overhead than our shared kernel); all engines agree on "
              "energy.\n",
              100.0 * (knori_ms - iter_ms) / iter_ms, gemm_ms / iter_ms);
  return 0;
}
