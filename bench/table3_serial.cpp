// Table 3 — serial (1-thread) performance of popular k-means
// implementations on the Friendster-8 dataset, all running Lloyd's with
// every distance computed (pruning off, per the paper's fairness rule).
//
// Paper stand-ins (DESIGN.md §1.5):
//   knori(iterative)  -> our engine, T=1, MTI off
//   MATLAB/BLAS GEMM  -> gemm_kmeans (blocked dgemm formulation)
//   R / Scikit-learn / MLpack iterative -> lloyd_serial (plain iterative C)
//   + lloyd_locked at T=1 to show the lock overhead vanishes serially.
#include <cstdio>

#include "core/engines.hpp"
#include "core/knori.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  const data::GeneratorSpec spec = friendster8_proxy(ctx);
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec);
  ctx.config("k", 10);
  ctx.config("threads", 1);
  ctx.config("mti", "off (fairness: all implementations do all distances)");

  Options opts;
  opts.k = 10;
  opts.threads = 1;
  opts.max_iters = 8;
  opts.prune = false;  // fairness: all implementations do all distances
  opts.seed = 42;

  struct Entry {
    const char* name;
    const char* paper_analogue;
    Result (*fn)(ConstMatrixView, const Options&);
  };
  const Entry entries[] = {
      {"knori(T=1)", "knori 7.49 s/iter", &kmeans},
      {"iterative-C", "R 8.63 / sklearn 12.84 / MLpack 13.09 s/iter",
       &lloyd_serial},
      {"gemm", "MATLAB 20.68 / BLAS 20.70 s/iter", &gemm_kmeans},
      {"locked(T=1)", "(lock overhead, serial: none)", &lloyd_locked},
  };
  // Measure everything first so each row can carry its ratio to the plain
  // iterative loop (entries[1]) as a derived timing.
  TimingAgg walls[4];
  Result results[4];
  for (int i = 0; i < 4; ++i)
    results[i] = ctx.run([&] { return entries[i].fn(m.const_view(), opts); },
                         nullptr, &walls[i]);
  const double iter_ms = walls[1].median * 1e3;
  for (int i = 0; i < 4; ++i) {
    ctx.row()
        .label("implementation", entries[i].name)
        .label("paper_analogue_at_66M_pts", entries[i].paper_analogue)
        .stat("energy", results[i].energy)
        .timing("iter_ms", walls[i].scaled(1e3))
        .timing("vs_iterative_x",
                iter_ms > 0 ? walls[i].median * 1e3 / iter_ms : 0.0);
  }
  ctx.note("all engines must agree on energy (exactness check); the paper's "
           "gemm/iterative ratio is 20.7/7.5 = 2.8x — their comparators "
           "carry more overhead than our shared kernel");
  ctx.chart("iter_ms");
}

const Registration reg({
    "table3_serial",
    "Table 3: serial performance, all distances computed",
    "Table 3 of the paper",
    "The iterative kernels lead; the GEMM formulation is ~2-3x slower at "
    "this d (it materializes an n x k block and cannot fuse the argmin); "
    "all are the same order of magnitude, and all engines agree on energy.",
    230, run});

}  // namespace
