// GEMM-vs-full-scan crossover (DESIGN.md §12 methodology).
//
// Sweeps k with everything else pinned and races the tiled blocked-GEMM
// engine against the unpruned NUMA engine (knori-, whose Phase I is the
// nearest_blocked kernel). Both are exact Lloyd's, so per-iteration time is
// directly comparable. The dot-product formulation does one FMA per element
// where the (a-b)^2 scan does a subtract + FMA, and each packed centroid
// panel line is shared across a whole register block of rows — advantages
// that scale with k. At small k the packing and fused-epilogue overhead
// dominates; the crossover point (smallest swept k where GEMM wins) is the
// number RESULTS.md records and the engine-selection guidance in the docs
// cites. MTI stays off: pruning changes the work per iteration and would
// race different algorithms.
#include <string>

#include "core/engines.hpp"
#include "core/knori.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster8_proxy(ctx, 100000);
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec);
  ctx.config("threads", 8);
  ctx.config("mti", "off (comparable exact engines)");
  ctx.config("gemm_tile", "auto");

  double crossover = 0;
  for (const int k : {16, 64, 128, 256, 512}) {
    Options opts;
    opts.k = k;
    opts.threads = 8;
    opts.numa_nodes = 4;
    opts.max_iters = 6;
    opts.seed = 42;
    opts.prune = false;

    TimingAgg scan_ms;
    ctx.run([&] { return kmeans(m.const_view(), opts); }, &scan_ms);
    TimingAgg gemm_ms;
    ctx.run([&] { return gemm_kmeans(m.const_view(), opts); }, &gemm_ms);

    const double speedup = gemm_ms.median > 0 ? scan_ms.median / gemm_ms.median : 0;
    if (crossover == 0 && speedup > 1.0) crossover = k;
    ctx.row()
        .label("k", static_cast<long long>(k))
        .timing("scan_ms_per_iter", scan_ms.scaled(1e3))
        .timing("gemm_ms_per_iter", gemm_ms.scaled(1e3))
        .timing("gemm_speedup", speedup);
  }
  ctx.row()
      .label("k", "crossover")
      .timing("gemm_speedup",
              crossover > 0 ? crossover : 0);  // smallest swept k GEMM wins
  ctx.chart("gemm_speedup");
}

const Registration reg({
    "gemm_crossover",
    "Ablation: blocked-GEMM vs full-scan crossover in k",
    "DESIGN.md §12 crossover methodology",
    "The tiled GEMM engine pays per-iteration packing + fused-epilogue "
    "overhead that amortizes with n, and does one FMA per element where "
    "the (a-b)^2 scan does subtract + FMA, with each packed panel line "
    "reused across a register block of rows — an advantage that grows "
    "with k. At smoke scale (n=2000, sub-ms timings) the crossover lands "
    "around k=128-256; at --scale paper (n=100000) GEMM wins the whole "
    "sweep and decisively at large k: 1.26x at k=256, 1.27x at k=512.",
    335, run});

}  // namespace
