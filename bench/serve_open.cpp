// Open-loop serving latency: a seeded Poisson arrival schedule replayed
// against the front end at increasing offered rates. Submission never
// waits for completion, so queueing delay lands in the latency tail
// (measured from the SCHEDULED arrival — coordinated-omission-free)
// instead of throttling the offered load, and the p50/p99 curve bends up
// as the offered rate approaches the service rate.
#include "harness/datasets.hpp"
#include "serve/front_end.hpp"
#include "serve/loadgen.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  const ServeWorkload w = serve_workload(ctx);
  const index_t rows_per_request = 8;
  const auto requests = static_cast<std::uint64_t>(
      ctx.scaled(8192) / rows_per_request);
  ctx.config("requests", static_cast<double>(requests));
  ctx.config("rows_per_request", static_cast<double>(rows_per_request));

  Options opts;
  opts.k = static_cast<int>(w.centroids.rows());
  opts.seed = 1765;

  for (const double rate : {500.0, 2000.0, 8000.0}) {
    serve::FrontEndOptions fopts;
    fopts.batch_window = 4096;
    serve::LoadOptions lopts;
    lopts.clients = 4;
    lopts.requests = requests;
    lopts.rows_per_request = rows_per_request;
    lopts.arrival_rate = rate;
    lopts.topm_every = 8;
    lopts.m = 4;
    lopts.seed = 42;

    serve::QueryFrontEnd fe(w.centroids, opts, fopts);
    serve::LoadStats last;
    const TimingAgg wall_s = ctx.measure([&] {
      last = serve::run_open_loop(fe, w.pool, lopts);
      return last.wall_s;
    });

    // Offered load is the seeded schedule — deterministic. Everything the
    // wall clock touches (achieved rate, latencies, shed split under
    // kShed) is a timing.
    ctx.row()
        .label("offered_rps", static_cast<long long>(rate))
        .stat("requests", static_cast<double>(last.requests))
        .stat("rows", static_cast<double>(last.rows))
        .timing("wall_s", wall_s)
        .timing("achieved_rps", TimingAgg::single(last.achieved_rps()))
        .timing("p50_ms", TimingAgg::single(last.latency_quantile(0.5) * 1e3))
        .timing("p95_ms",
                TimingAgg::single(last.latency_quantile(0.95) * 1e3))
        .timing("p99_ms",
                TimingAgg::single(last.latency_quantile(0.99) * 1e3));
  }
  ctx.chart("p99_ms");
  ctx.note(
      "Arrivals follow a per-run-identical seeded Poisson schedule in "
      "virtual time; latency is measured from the scheduled arrival, so a "
      "backed-up admission queue shows up in p99 even when submission "
      "itself lagged (no coordinated omission). achieved_rps < offered "
      "means the replay could not keep up — expected at the top rate on "
      "small machines.");
}

const Registration reg({
    "serve_open",
    "Open-loop serving: Poisson offered-rate sweep vs latency percentiles",
    "ROADMAP serving front end (no paper exhibit); DESIGN.md §11",
    "p50 stays near the batch service time at low offered rates; p99 "
    "grows with the offered rate as arrivals queue behind mega-batches, "
    "bending sharply once the offered rate crosses the service rate.",
    431, run});

}  // namespace
