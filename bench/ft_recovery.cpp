// Fault-tolerance recovery cost (DESIGN.md §13) — what checkpointing and
// crash recovery cost on top of plain knord, on the clustered Friendster
// proxy. Four configurations against the same workload:
//
//   * baseline        — plain dist::kmeans, no FT machinery at all
//   * ckpt only       — ft_kmeans with an empty plan, checkpoint every
//                       boundary (the steady-state overhead of the
//                       gather + leader snapshot)
//   * crash early/mid — a rank crashes after iteration 1 / 3; survivors
//                       reload the latest checkpoint, re-shard and replay
//   * sparse ckpt     — checkpoint every 3 boundaries with a mid-run crash,
//                       so recovery replays the checkpoint gap
//   * flaky allreduce — an iteration's allreduce times out twice and is
//                       retried with exponential backoff
//
// Every configuration's clustering is bitwise identical to the baseline
// (pinned in tests/fault_test.cpp); the rows here price the mechanisms.
// Recovery/fault/checkpoint counts are deterministic stats; wall time and
// the measured recovery latency are timings.
#include "dist/fault.hpp"
#include "dist/knord.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

struct FtConfig {
  const char* label;
  const char* plan;       // FaultPlan grammar; "" = no injected faults
  int checkpoint_every;   // 0 = only forced pre-reshard checkpoints
};

void run(Context& ctx) {
  const data::GeneratorSpec spec = friendster8_proxy(ctx, 60000);
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec, "Friendster-8");
  ctx.config("net", "latency 50us, 1.25 GB/s (10GbE-like)");

  Options opts;
  opts.k = 10;
  opts.max_iters = 8;
  opts.seed = 42;
  opts.numa_nodes = 2;

  dist::DistOptions dopts;
  dopts.ranks = 4;
  dopts.threads_per_rank = 1;
  dopts.net.latency_us = 50;
  dopts.net.gigabytes_per_sec = 1.25;

  TimingAgg wall;
  const Result base =
      ctx.run([&] { return dist::kmeans(m.const_view(), opts, dopts); },
              nullptr, &wall);
  ctx.row()
      .label("config", "baseline (no FT)")
      .stat("iters", static_cast<double>(base.iters))
      .stat("recoveries", 0)
      .stat("checkpoints", 0)
      .timing("iter_ms", wall.scaled(1e3));

  const FtConfig configs[] = {
      {"ckpt every iter", "", 1},
      {"crash early (ckpt=1)", "crash@1:r1", 1},
      {"crash mid (ckpt=1)", "crash@3:r1", 1},
      {"crash mid, sparse ckpt=3", "crash@3:r1", 3},
      {"flaky allreduce x2", "flaky@2*2", 1},
  };
  for (const FtConfig& cfg : configs) {
    dist::FtOptions fopts;
    if (cfg.plan[0] != '\0') fopts.plan = dist::FaultPlan::parse(cfg.plan);
    fopts.checkpoint_every = cfg.checkpoint_every;
    fopts.backoff_us = 10.0;

    const Result res = ctx.run(
        [&] { return dist::ft_kmeans(m.const_view(), opts, dopts, fopts); },
        nullptr, &wall);
    ctx.row()
        .label("config", cfg.label)
        .stat("iters", static_cast<double>(res.iters))
        .stat("recoveries",
              static_cast<double>(res.metrics.value_or("dist.recoveries", 0)))
        .stat("checkpoints",
              static_cast<double>(res.metrics.value_or("dist.checkpoints", 0)))
        .timing("iter_ms", wall.scaled(1e3))
        .timing("recovery_ms",
                res.metrics.quantile_or("dist.recovery_us", 0.5, 0.0) / 1e3);
  }
  ctx.chart("iter_ms");
}

const Registration reg({
    "ft_recovery",
    "Fault tolerance: checkpoint and recovery cost",
    "DESIGN.md §13 (FlashGraph-style lightweight checkpointing, §5.4)",
    "Checkpointing every boundary costs a few percent on top of plain knord "
    "(one allgather of assignments/bounds plus a leader-side snapshot); a "
    "crash costs roughly the replayed iterations — later crashes with dense "
    "checkpoints replay less, sparse checkpoints replay the gap; transient "
    "retries cost only the backoff. Clustering is bitwise identical to the "
    "baseline in every configuration.",
    135, run});

}  // namespace
