// Assignment-serving throughput: AssignServer streaming a query file
// against frozen k=64, d=32 centroids — the PR-5 acceptance suite. The
// headline comparison is serve_ns_per_row (file-streamed, batched,
// backpressured) against kernel_ns_per_row (the same blocked
// nearest-centroid kernel over in-memory rows, single thread): serving
// must stay within 2x of the raw kernel for the active ISA.
#include <string>
#include <vector>

#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "harness/datasets.hpp"
#include "stream/assign_server.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster32_proxy(ctx, 100000);
  ctx.dataset(spec);
  const int k = 64;
  ctx.config("k", k);
  ctx.config("simd", kernels::to_string(kernels::resolve(kernels::Isa::kAuto)));

  const DenseMatrix data = data::generate(spec);
  const TempMatrixFile file(spec, "stream_assign");
  Options opts;
  opts.k = k;
  opts.seed = 1765;
  const DenseMatrix centroids = init_centroids(data.const_view(), opts);

  // Baseline: the raw blocked kernel over every row, one thread, data in
  // memory — the per-row floor serving is measured against.
  kernels::CentroidPack pack;
  pack.pack(centroids);
  const kernels::Ops& K = kernels::ops();
  volatile cluster_t sink = 0;
  const TimingAgg kernel_s = ctx.measure([&] {
    const WallTimer timer;
    for (index_t r = 0; r < data.rows(); ++r)
      sink = K.nearest_blocked(data.row(r), pack, nullptr);
    return timer.elapsed();
  });
  const double per_row = 1e9 / static_cast<double>(data.rows());
  ctx.row()
      .label("path", "kernel (in-memory, 1 thread)")
      .stat("rows", static_cast<double>(data.rows()))
      .timing("ns_per_row", kernel_s.scaled(per_row));

  for (const char* source : {"io", "page"}) {
    stream::AssignServer server(centroids, opts);
    stream::AssignOptions aopts;
    aopts.source = std::string(source) == "io"
                       ? stream::AssignOptions::Source::kMatrixIo
                       : stream::AssignOptions::Source::kPageFile;
    stream::AssignStats last;
    const TimingAgg serve_s = ctx.measure([&] {
      const WallTimer timer;
      last = server.assign_file(file.path(), aopts);
      return timer.elapsed();
    });
    ctx.row()
        .label("path", std::string("serve (file, source=") + source + ")")
        .stat("rows", static_cast<double>(last.rows))
        .stat("batches", static_cast<double>(last.batches))
        .timing("ns_per_row", serve_s.scaled(per_row))
        .timing("vs_kernel",
                TimingAgg::single(serve_s.median / kernel_s.median))
        .timing("compute_wait_ms",
                TimingAgg::single(last.compute_wait_s * 1e3))
        .timing("backpressure_ms",
                TimingAgg::single(last.io_stall_s * 1e3));
  }
  ctx.chart("ns_per_row");
  ctx.note(
      "vs_kernel is the serving overhead factor (file I/O, batching, "
      "histogram) over the raw blocked kernel; the acceptance bound is "
      "2x. compute_wait = assigner stalled on I/O; backpressure = reader "
      "blocked on a free buffer (compute-bound, the healthy state).");
}

const Registration reg({
    "stream_assign",
    "Assignment serving: AssignServer file-streamed throughput vs the "
    "blocked kernel",
    "ROADMAP serving extension (no paper exhibit); DESIGN.md §9",
    "serve ns_per_row stays within 2x of kernel ns_per_row for both "
    "sources: the bounded ring overlaps file reads with assignment, so "
    "serving is compute-bound (backpressure_ms > 0, compute_wait small) "
    "and the only extra per-row cost is the batch plumbing.",
    420, run});

}  // namespace
