// Ablation — row cache update interval I_cache (the paper sets 5 for every
// experiment, §6.2.2): refresh frequency trades cache freshness against
// maintenance cost. Reports total bytes read, total hits, and hit rate
// across the interval sweep (1 = refresh constantly; large = nearly
// static).
#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster32_proxy(ctx, 100000);
  TempMatrixFile file(spec, "abl_icache");
  ctx.dataset(spec);
  ctx.config("k", 10);
  ctx.config("mti", "on");
  ctx.config("row_cache", "data/8");

  for (const int interval : {1, 2, 5, 10, 20}) {
    Options opts;
    opts.k = 10;
    opts.threads = 4;
    opts.max_iters = 40;
    opts.seed = 42;
    sem::SemOptions sopts;
    sopts.page_cache_bytes = 1 << 20;
    sopts.row_cache_bytes = spec.bytes() / 8;
    sopts.cache_update_interval = interval;
    sem::SemStats stats;
    const Result res = sem::kmeans(file.path(), opts, sopts, &stats);
    std::uint64_t hits = 0, active = 0;
    for (const auto& iter : stats.per_iter) {
      hits += iter.row_cache_hits;
      active += iter.active_rows;
    }
    // Read bytes depend on concurrent page-cache miss races, hence timing.
    ctx.row()
        .label("I_cache", interval)
        .stat("iters", static_cast<double>(res.iters))
        .stat("rc_hits", static_cast<double>(hits))
        .stat("hit_rate_pct", active > 0 ? 100.0 * hits / active : 0.0)
        .timing("read_mb", stats.total_read() / 1e6);
  }
  ctx.chart("hit_rate_pct");
}

const Registration reg({
    "abl_cache_interval",
    "Ablation: row cache update interval (I_cache)",
    "the I_cache = 5 default of §6.2.2",
    "Very small intervals refresh constantly for little extra benefit; "
    "very large ones leave the cache cold for most of the run; the paper's "
    "5 captures most hits at a handful of refreshes (exponential back-off "
    "does the rest).",
    310, run});

}  // namespace
