// Ablation — row cache update interval I_cache (the paper sets 5 for every
// experiment, §6.2.2): refresh frequency trades cache freshness against
// maintenance cost. Reports total bytes read, total hits, and refresh count
// across the interval sweep (1 = refresh constantly; large = nearly
// static).
#include "bench_util.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

int main() {
  bench::header("Ablation: row cache update interval (I_cache)",
                "the I_cache = 5 default of §6.2.2");

  data::GeneratorSpec spec = bench::friendster32_proxy();
  spec.n = bench::scaled(100000);
  bench::TempMatrixFile file(spec, "abl_icache");
  std::printf("dataset: %s; k=10, MTI on, RC = data/8\n\n",
              spec.describe().c_str());

  std::printf("%-9s %12s %14s %14s %12s\n", "I_cache", "iters",
              "read (MB)", "rc hits", "hit rate");
  for (const int interval : {1, 2, 5, 10, 20}) {
    Options opts;
    opts.k = 10;
    opts.threads = 4;
    opts.max_iters = 40;
    opts.seed = 42;
    sem::SemOptions sopts;
    sopts.page_cache_bytes = 1 << 20;
    sopts.row_cache_bytes = spec.bytes() / 8;
    sopts.cache_update_interval = interval;
    sem::SemStats stats;
    const Result res = sem::kmeans(file.path(), opts, sopts, &stats);
    std::uint64_t hits = 0, active = 0;
    for (const auto& iter : stats.per_iter) {
      hits += iter.row_cache_hits;
      active += iter.active_rows;
    }
    std::printf("%-9d %12zu %14.1f %14llu %11.1f%%\n", interval, res.iters,
                stats.total_read() / 1e6,
                static_cast<unsigned long long>(hits),
                active > 0 ? 100.0 * hits / active : 0.0);
  }
  std::printf("\nShape check: very small intervals refresh constantly for "
              "little extra benefit; very large ones leave the cache cold "
              "for most of the run; the paper's 5 captures most hits at a "
              "handful of refreshes (exponential back-off does the rest).\n");
  return 0;
}
