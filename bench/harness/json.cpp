#include "harness/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/strict_parse.hpp"

namespace knor::bench {

std::string format_double(double v) {
  // JSON has no NaN/Inf; emit null rather than fabricating a plausible 0
  // (a "0ms" timing reads as a measurement — null reads as "absent").
  if (std::isnan(v) || std::isinf(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {  // 2^53: exact integer range
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    if (parse_double(buf, &back) && back == v) break;
  }
  return buf;
}

void json_escape(const std::string& s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

Json& Json::set(std::string key, Json value) {
  type_ = Type::kObject;
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  type_ = Type::kArray;
  arr_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

Json* Json::find(const std::string& key) {
  for (auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

bool Json::remove(const std::string& key) {
  const std::size_t before = obj_.size();
  for (std::size_t i = obj_.size(); i-- > 0;)
    if (obj_[i].first == key) obj_.erase(obj_.begin() + i);
  return obj_.size() != before;
}

bool Json::operator==(const Json& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == o.bool_;
    case Type::kNumber: return num_ == o.num_;
    case Type::kString: return str_ == o.str_;
    case Type::kArray: return arr_ == o.arr_;
    case Type::kObject: return obj_ == o.obj_;
  }
  return false;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_double(num_); break;
    case Type::kString:
      out += '"';
      json_escape(str_, out);
      out += '"';
      break;
    case Type::kArray: {
      if (arr_.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        out += '"';
        json_escape(obj_[i].first, out);
        out += "\": ";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) { ++pos; return true; }
    return fail(std::string("expected '") + c + "'");
  }
  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text.compare(pos, len, lit) != 0) return fail("bad literal");
    pos += len;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') { out += c; continue; }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported — the
          // harness never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') { if (!literal("null")) return false; out = Json(); return true; }
    if (c == 't') { if (!literal("true")) return false; out = Json(true); return true; }
    if (c == 'f') { if (!literal("false")) return false; out = Json(false); return true; }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') { ++pos; return true; }
      while (true) {
        Json elem;
        if (!parse_value(elem)) return false;
        out.push(std::move(elem));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') { ++pos; continue; }
        return consume(']');
      }
    }
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') { ++pos; return true; }
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return false;
        Json value;
        if (!parse_value(value)) return false;
        out.set(std::move(key), std::move(value));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') { ++pos; skip_ws(); continue; }
        return consume('}');
      }
    }
    // Number: scan the JSON grammar -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?
    // [0-9]+)? and convert exactly that span. strtod used to sit here and
    // quietly accepted "inf", "nan" and hex floats — none of which the
    // serializer can round-trip (NaN/Inf dump as null).
    const std::size_t start = pos;
    std::size_t p = pos;
    const auto digits = [&]() {
      const std::size_t first = p;
      while (p < text.size() && text[p] >= '0' && text[p] <= '9') ++p;
      return p > first;
    };
    if (p < text.size() && text[p] == '-') ++p;
    if (!digits()) return fail("unexpected character");
    if (p < text.size() && text[p] == '.') {
      ++p;
      if (!digits()) return fail("bad number");
    }
    if (p < text.size() && (text[p] == 'e' || text[p] == 'E')) {
      ++p;
      if (p < text.size() && (text[p] == '+' || text[p] == '-')) ++p;
      if (!digits()) return fail("bad number");
    }
    double v = 0.0;
    if (!parse_double({text.data() + start, p - start}, &v))
      return fail("number out of range");
    pos = p;
    out = Json(v);
    return true;
  }
};

}  // namespace

Json Json::parse(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out)) {
    if (error != nullptr) *error = p.error;
    return Json();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr)
      *error = "trailing data at offset " + std::to_string(p.pos);
    return Json();
  }
  if (error != nullptr) error->clear();
  return out;
}

void erase_keys_recursive(Json& value, const std::vector<std::string>& keys) {
  if (value.is_object()) {
    for (const auto& key : keys) value.remove(key);
    for (auto& [k, v] : value.members()) erase_keys_recursive(v, keys);
  } else if (value.is_array()) {
    for (auto& elem : value.elements()) erase_keys_recursive(elem, keys);
  }
}

}  // namespace knor::bench
