#include "harness/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace knor::bench {

std::string pretty_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "-";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

namespace {

// The hand-written preamble RESULTS.md always carries: the scale caveat and
// the substitution-note links a reader needs before trusting any number.
const char* kPreamble =
    "This file is **auto-generated** by `knor_bench` (do not edit by hand; "
    "regenerate with the command in the header above). It reproduces the "
    "paper's evaluation — Tables 1-3, Figures 4-13, plus the paper's "
    "parameter-choice ablations — at container scale.\n"
    "\n"
    "**Read this before trusting any number below:**\n"
    "\n"
    "- **Scale.** The paper clusters billions of points on a 48-core NUMA "
    "server and a 32-node cluster. This run uses generated proxy datasets "
    "thousands of times smaller (the `scale_factor` in each section's "
    "configuration). *Shapes and ratios* are the reproduction target — "
    "which curve wins, how gaps grow with k — never absolute times. "
    "The substitution ledger in [DESIGN.md §1](DESIGN.md#1-substitution-notes) "
    "records every proxy: simulated NUMA topology (§1.1) with a modeled "
    "remote-access penalty (§1.2), generated stand-ins for the paper's "
    "datasets (§1.3), the SAFS-lite I/O stack (§1.4), behavioural framework "
    "stand-ins (§1.5), the makespan proxy that replaces wall time on an "
    "oversubscribed container (§1.6), and ranks-as-threads with an "
    "interconnect cost model (§1.7).\n"
    "- **Timing columns are machine-dependent.** Every timing cell shows "
    "the median over the run's repeats (min-max in parentheses when "
    "repeats > 1). All other columns — counters, bytes, iteration counts — "
    "are deterministic: two runs at the same scale must produce them "
    "bit-identically (`knor_bench --strip` + diff verifies this; CI does).\n"
    "- **Smoke scale** (`--scale smoke`) exists so CI can execute every "
    "suite in seconds; at that size some paper trends compress (caches fit "
    "everything, iteration counts drop). Use `--scale paper` for numbers "
    "worth reading closely.\n";

std::string anchor_of(const std::string& title) {
  // GitHub-style anchor: lowercase, alnum kept, spaces -> dashes.
  std::string anchor;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      anchor += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (c == ' ' || c == '-')
      anchor += '-';
  }
  return anchor;
}

std::string timing_cell(const TimingAgg& agg) {
  // A non-finite median (failed/absent measurement, serialized as JSON
  // null) renders as a bare "-" — no fabricated min-max range around it.
  if (!std::isfinite(agg.median)) return "-";
  std::string cell = pretty_number(agg.median);
  if (agg.repeats > 1)
    cell += " (" + pretty_number(agg.min) + "-" + pretty_number(agg.max) + ")";
  return cell;
}

/// Ordered union of keys over all rows, first-appearance order.
template <class Getter>
std::vector<std::string> key_union(const std::vector<Row>& rows, Getter get) {
  std::vector<std::string> keys;
  for (const Row& row : rows)
    for (const auto& [key, value] : get(row))
      if (std::find(keys.begin(), keys.end(), key) == keys.end())
        keys.push_back(key);
  return keys;
}

struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> cells;
};

Table tabulate(const std::vector<Row>& rows) {
  const auto label_keys =
      key_union(rows, [](const Row& r) -> const auto& { return r.labels; });
  const auto stat_keys =
      key_union(rows, [](const Row& r) -> const auto& { return r.stats; });
  const auto timing_keys =
      key_union(rows, [](const Row& r) -> const auto& { return r.timings; });
  Table t;
  t.header = label_keys;
  t.header.insert(t.header.end(), stat_keys.begin(), stat_keys.end());
  t.header.insert(t.header.end(), timing_keys.begin(), timing_keys.end());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (const auto& key : label_keys) {
      std::string cell;
      for (const auto& [k, v] : row.labels)
        if (k == key) { cell = v; break; }
      line.push_back(cell);
    }
    for (const auto& key : stat_keys) {
      std::string cell;
      for (const auto& [k, v] : row.stats)
        if (k == key) { cell = pretty_number(v); break; }
      line.push_back(cell);
    }
    for (const auto& key : timing_keys) {
      std::string cell;
      for (const auto& [k, v] : row.timings)
        if (k == key) { cell = timing_cell(v); break; }
      line.push_back(cell);
    }
    t.cells.push_back(std::move(line));
  }
  return t;
}

/// Effective chart metric + per-row values. Returns false when nothing is
/// chartable (no metric, fewer than 2 rows, or no positive value).
bool chart_values(const SuiteRun& run, std::string& metric,
                  std::vector<std::pair<std::string, double>>& out) {
  metric = run.chart_metric;
  if (metric.empty()) {
    for (const Row& row : run.rows) {
      if (!row.timings.empty()) { metric = row.timings.front().first; break; }
      if (!row.stats.empty()) { metric = row.stats.front().first; break; }
    }
  }
  if (metric.empty()) return false;
  for (const Row& row : run.rows) {
    double value = NAN;
    for (const auto& [k, agg] : row.timings)
      if (k == metric) { value = agg.median; break; }
    if (std::isnan(value))
      for (const auto& [k, v] : row.stats)
        if (k == metric) { value = v; break; }
    if (!std::isfinite(value)) continue;  // no bar for a failed measurement
    std::string label;
    for (const auto& [k, v] : row.labels) {
      if (v.empty()) continue;  // blank label values would leave "1/" stubs
      if (!label.empty()) label += '/';
      label += v;
    }
    out.emplace_back(label.empty() ? "(all)" : label, value);
  }
  if (out.size() < 2) return false;
  double max = 0;
  for (const auto& [label, v] : out) max = std::max(max, v);
  return max > 0;
}

void append_chart(const SuiteRun& run, std::string& out) {
  std::string metric;
  std::vector<std::pair<std::string, double>> values;
  if (!chart_values(run, metric, values)) return;
  constexpr std::size_t kMaxBars = 28;
  const std::size_t shown = std::min(values.size(), kMaxBars);
  double max_value = 0;
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < shown; ++i) {
    max_value = std::max(max_value, values[i].second);
    label_width = std::max(label_width, values[i].first.size());
  }
  out += "```text\n" + metric + "\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& [label, value] = values[i];
    const int bar = value <= 0 ? 0
                               : std::max(1, static_cast<int>(
                                                  std::lround(40 * value /
                                                              max_value)));
    out += label;
    out.append(label_width - label.size() + 2, ' ');
    out.append(static_cast<std::size_t>(bar), '#');
    out += " " + pretty_number(value) + "\n";
  }
  if (values.size() > shown)
    out += "(" + std::to_string(values.size() - shown) + " more rows in the table above)\n";
  out += "```\n\n";
}

void append_section(const SuiteRun& run, std::string& out) {
  out += "## " + std::string(run.suite.title) + "\n\n";
  out += "*Suite `" + std::string(run.suite.name) + "` — reproduces " +
         run.suite.paper_ref + ".*\n\n";
  if (!run.ok) {
    out += "**FAILED:** `" + run.error + "`\n\n";
    return;
  }
  out += "> **Paper-expected trend:** " + std::string(run.suite.expected) +
         "\n\n";
  out += "<details><summary>Configuration (fingerprint <code>" +
         run.fingerprint + "</code>)</summary>\n\n";
  for (const auto& [key, value] : run.config)
    out += "- `" + key + "` = " + value + "\n";
  out += "\n</details>\n\n";
  if (run.rows.empty()) {
    out += "*(no rows emitted)*\n\n";
    return;
  }
  const Table t = tabulate(run.rows);
  for (const auto& h : t.header) out += "| " + h + " ";
  out += "|\n";
  for (std::size_t i = 0; i < t.header.size(); ++i) out += "|---";
  out += "|\n";
  for (const auto& line : t.cells) {
    for (const auto& cell : line) out += "| " + (cell.empty() ? "-" : cell) + " ";
    out += "|\n";
  }
  out += "\n";
  append_chart(run, out);
  for (const std::string& note : run.notes) out += "- " + note + "\n";
  if (!run.notes.empty()) out += "\n";
}

}  // namespace

std::string render_report(const std::vector<SuiteRun>& runs,
                          const RunOptions& opts) {
  std::string out = "# RESULTS — paper-reproduction benchmark report\n\n";
  char header[256];
  std::snprintf(header, sizeof header,
                "Generated by `knor_bench --scale %s` (scale_factor %s, "
                "repeats %d, warmup %d); regenerate with\n"
                "`build/tools/knor_bench --scale %s --out BENCH_results.json "
                "--report RESULTS.md`.\n\n",
                to_string(opts.scale), format_double(opts.scale_factor).c_str(),
                opts.repeats, opts.warmup, to_string(opts.scale));
  out += header;
  out += kPreamble;
  out += "\n## Contents\n\n";
  for (const SuiteRun& run : runs)
    out += "- [" + std::string(run.suite.title) + "](#" +
           anchor_of(run.suite.title) + ")" + (run.ok ? "" : " **(FAILED)**") +
           "\n";
  out += "\n";
  for (const SuiteRun& run : runs) append_section(run, out);
  return out;
}

std::string render_text(const SuiteRun& run) {
  std::string out;
  out += "\n================================================================\n";
  out += std::string(run.suite.title) + "\n  (reproduces " +
         run.suite.paper_ref + "; see RESULTS.md and DESIGN.md §1)\n";
  out += "================================================================\n";
  for (const auto& [key, value] : run.config)
    out += key + " = " + value + "\n";
  out += "config fingerprint " + run.fingerprint + "\n\n";
  if (!run.ok) {
    out += "FAILED: " + run.error + "\n";
    return out;
  }
  const Table t = tabulate(run.rows);
  std::vector<std::size_t> widths(t.header.size());
  for (std::size_t c = 0; c < t.header.size(); ++c) {
    widths[c] = t.header[c].size();
    for (const auto& line : t.cells)
      widths[c] = std::max(widths[c], line[c].size());
  }
  const auto emit_line = [&](const std::vector<std::string>& line) {
    for (std::size_t c = 0; c < line.size(); ++c) {
      out += line[c];
      if (c + 1 < line.size())
        out.append(widths[c] - line[c].size() + 2, ' ');
    }
    out += "\n";
  };
  emit_line(t.header);
  for (const auto& line : t.cells) emit_line(line);
  out += "\n";
  for (const std::string& note : run.notes) out += "note: " + note + "\n";
  out += "Expected (paper): " + std::string(run.suite.expected) + "\n";
  return out;
}

}  // namespace knor::bench
