// Dependency-free JSON value: build, serialize, parse (bench harness only —
// the library proper has no JSON needs). Objects preserve insertion order so
// serialization is deterministic: the same value tree always dumps to the
// same bytes, which is what makes `BENCH_results.json` diffable across runs
// (see DESIGN.md §6).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace knor::bench {

/// Shortest decimal string that strtod round-trips to exactly `v`
/// (integral values print without a decimal point). JSON has no NaN/Inf:
/// they serialize as "null", parse back as a null value, and number()
/// reads a null as NaN — a failed measurement round-trips as "absent"
/// instead of being fabricated into a plausible 0.
std::string format_double(double v);

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Object = std::vector<std::pair<std::string, Json>>;
  using Array = std::vector<Json>;

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(long long v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json object() { Json j; j.type_ = Type::kObject; return j; }
  static Json array() { Json j; j.type_ = Type::kArray; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Object append (keys are not deduplicated; callers keep them unique).
  Json& set(std::string key, Json value);
  /// Array append.
  Json& push(Json value);

  /// First member with `key`, or nullptr (objects only).
  const Json* find(const std::string& key) const;
  Json* find(const std::string& key);
  /// Remove every member named `key`; returns true if any was removed.
  bool remove(const std::string& key);

  const Object& members() const { return obj_; }
  Object& members() { return obj_; }
  const Array& elements() const { return arr_; }
  Array& elements() { return arr_; }
  /// Numeric value; a null reads as NaN (the null <-> NaN round-trip —
  /// report renderers show both as "-").
  double number() const {
    return type_ == Type::kNull ? std::numeric_limits<double>::quiet_NaN()
                                : num_;
  }
  bool boolean() const { return bool_; }
  const std::string& str() const { return str_; }

  bool operator==(const Json& o) const;
  bool operator!=(const Json& o) const { return !(*this == o); }

  /// Pretty-print with `indent` spaces per level (0 = compact single line).
  std::string dump(int indent = 2) const;

  /// Parse `text`; on failure returns null and sets *error (if non-null)
  /// to a message with the byte offset.
  static Json parse(const std::string& text, std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Object obj_;
  Array arr_;
};

/// Append `s` JSON-escaped (quotes, backslash, control chars) to `out`,
/// without surrounding quotes.
void json_escape(const std::string& s, std::string& out);

/// Recursively remove every object member named in `keys` — how the bench
/// driver canonicalizes BENCH_results.json for determinism diffs (strips
/// the timing fields; see `knor_bench --strip`).
void erase_keys_recursive(Json& value, const std::vector<std::string>& keys);

}  // namespace knor::bench
