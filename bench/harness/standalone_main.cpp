// Thin main for the per-figure compatibility binaries: each one links this
// file plus exactly one suite translation unit, so "run every registered
// suite" runs that one figure/table and prints the console report.
//
// Defaults to paper scale; KNOR_BENCH_SCALE still multiplies the dataset
// factor (the pre-harness contract), and `--scale smoke` / `--repeats N` /
// `--warmup N` are accepted for parity with knor_bench.
#include <cstdio>
#include <cstring>

#include "common/strict_parse.hpp"
#include "harness/harness.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace knor::bench;
  // Resolve the scale tier first, then apply overrides, so --repeats/
  // --warmup take effect regardless of argument order.
  Scale scale = Scale::kPaper;
  int repeats = 0, warmup = -1;
  const auto fail = [&]() -> int {
    std::fprintf(stderr,
                 "usage: %s [--scale smoke|paper] [--repeats N] [--warmup N]\n",
                 argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--scale") == 0) {
      const char* tier = next();
      if (std::strcmp(tier, "smoke") == 0) scale = Scale::kSmoke;
      else if (std::strcmp(tier, "paper") == 0) scale = Scale::kPaper;
      else return fail();
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      std::int64_t v = 0;
      if (!knor::parse_i64(next(), &v) || v < 1 || v > 1000000) return fail();
      repeats = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      std::int64_t v = 0;
      if (!knor::parse_i64(next(), &v) || v < 0 || v > 1000000) return fail();
      warmup = static_cast<int>(v);
    } else {
      return fail();
    }
  }
  RunOptions opts;
  try {
    // for_scale validates KNOR_BENCH_SCALE strictly — garbage exits 2 here.
    opts = RunOptions::for_scale(scale);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (repeats > 0) opts.repeats = repeats;
  if (warmup >= 0) opts.warmup = warmup;

  bool failed = false;
  for (const Suite& suite : Registry::instance().suites()) {
    const SuiteRun run = run_suite(suite, opts);
    std::fputs(render_text(run).c_str(), stdout);
    failed = failed || !run.ok || !run.has_samples();
  }
  return failed ? 1 : 0;
}
