// Bench harness — the substrate every paper-reproduction suite runs on.
//
// Each bench/*.cpp file registers one Suite (a named function that fills a
// Context with rows); the harness supplies scale resolution, warmup/repeat
// timing aggregation over Result::makespan_per_iter(), config
// fingerprinting, the BENCH_results.json emitter and the RESULTS.md
// renderer. `tools/knor_bench` links every suite and drives them all; each
// per-figure binary links exactly one suite plus standalone_main.cpp.
//
// Determinism contract (DESIGN.md §6): everything a suite stores outside a
// Row's `timings` bucket — config entries, labels, `stats` — must be
// bit-identical across two runs of the same suite at the same scale. Timing
// and other machine-dependent measurements (wall/CPU time, RSS, scheduler
// steal counts) go in `timings`; `knor_bench --strip` removes them, and CI
// diffs two stripped runs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/kmeans_types.hpp"
#include "data/generator.hpp"
#include "harness/json.hpp"

namespace knor::bench {

/// Dataset scale tier. kSmoke shrinks every dataset ~50x for CI
/// (single-repeat, seconds per suite); kPaper is the container-feasible
/// reproduction scale the per-figure binaries default to.
enum class Scale { kSmoke, kPaper };

const char* to_string(Scale scale);

/// Median-and-spread aggregate of repeated timing samples. `median` is the
/// harness's headline number (robust to one-off scheduler noise); spread =
/// (max - min) / median indicates run-to-run stability.
struct TimingAgg {
  double median = 0;
  double min = 0;
  double max = 0;
  int repeats = 0;

  static TimingAgg from_samples(std::vector<double> samples);
  /// Single-sample aggregate (derived scalars, single measurements).
  static TimingAgg single(double v) { return {v, v, v, 1}; }
  /// Unit conversion, e.g. seconds -> ms: agg.scaled(1e3).
  TimingAgg scaled(double factor) const {
    return {median * factor, min * factor, max * factor, repeats};
  }
  /// (max - min) / median in percent; 0 when median is 0.
  double spread_pct() const {
    return median == 0 ? 0.0 : 100.0 * (max - min) / median;
  }
};

/// One result row: ordered labels (the table's key columns), deterministic
/// stats, and machine-dependent timings. Insertion order is rendering order.
struct Row {
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> stats;
  std::vector<std::pair<std::string, TimingAgg>> timings;

  Row& label(std::string key, std::string value) {
    labels.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Row& label(std::string key, long long value) {
    return label(std::move(key), std::to_string(value));
  }
  Row& stat(std::string key, double value) {
    stats.emplace_back(std::move(key), value);
    return *this;
  }
  Row& timing(std::string key, TimingAgg agg) {
    timings.emplace_back(std::move(key), agg);
    return *this;
  }
  Row& timing(std::string key, double value) {
    return timing(std::move(key), TimingAgg::single(value));
  }
};

class Context;

/// A registered paper-reproduction suite. `expected` is the paper's trend
/// for this figure/table — rendered under every report section so a reader
/// can check the reproduced numbers against the claim.
struct Suite {
  const char* name;       ///< registry key, e.g. "fig4_numa_speedup"
  const char* title;      ///< human title, e.g. "Figure 4: ..."
  const char* paper_ref;  ///< "Figure 4", "Table 1", "§6.2.2 ablation", ...
  const char* expected;   ///< paper-expected trend, one paragraph
  int order;              ///< report position (figures 40-130, tables 210+,
                          ///< ablations 310+, micro 400+)
  void (*fn)(Context&);
};

/// How a run is executed: scale tier, effective dataset factor
/// (tier base x KNOR_BENCH_SCALE env x --factor), timing repeats/warmup.
struct RunOptions {
  Scale scale = Scale::kPaper;
  double scale_factor = 1.0;
  int repeats = 3;
  int warmup = 1;
  bool verbose = false;  ///< progress lines on stderr

  /// Tier defaults (smoke: factor 0.02, 1 repeat / 0 warmup; paper: factor
  /// 1.0, 3 repeats / 1 warmup), then multiplied by KNOR_BENCH_SCALE when
  /// the env var is set.
  static RunOptions for_scale(Scale scale);
};

/// Everything a suite produced, plus run metadata. `wall_s` and the rows'
/// `timings` are the only machine-dependent fields.
struct SuiteRun {
  Suite suite{};
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<Row> rows;
  std::vector<std::string> notes;
  std::string chart_metric;
  std::string fingerprint;  ///< "0x" + 16 hex digits; see fingerprint docs
  double wall_s = 0;
  bool ok = false;
  std::string error;

  /// A run is useful when it completed and emitted at least one sample
  /// (a stat or timing in some row) — the bench-smoke CI gate.
  bool has_samples() const;
};

/// The handle a suite body receives: scale resolution, config recording
/// (fingerprinted), row emission, and warmup/repeat timing helpers.
class Context {
 public:
  explicit Context(const RunOptions& opts) : opts_(opts) {}

  Scale scale() const { return opts_.scale; }
  double scale_factor() const { return opts_.scale_factor; }
  int repeats() const { return opts_.repeats; }
  int warmup() const { return opts_.warmup; }

  /// Paper-scale row count -> this run's row count (factor applied, floored
  /// at 1000 rows so every algorithm still has work to do).
  index_t scaled(index_t paper_n) const;

  /// Record a config entry. Config is fingerprinted in insertion order, so
  /// record everything that determines the workload: dataset specs,
  /// topology, NetSim parameters, k/iteration sweeps.
  void config(std::string key, std::string value);
  void config(std::string key, double value);
  /// Shorthand: config("dataset[:tag]", spec.describe()).
  void dataset(const data::GeneratorSpec& spec, const std::string& tag = "");

  /// Append and return a new result row (reference valid until next call).
  Row& row();

  /// Free-form line rendered under the suite's table.
  void note(std::string text);

  /// Name the metric (a timing or stat key) the report's ASCII chart plots.
  /// Unset = first timing key, else first stat key.
  void chart(std::string metric);

  /// Warmup + repeat `fn` (returning seconds) and aggregate.
  template <class Fn>
  TimingAgg measure(Fn&& fn) {
    for (int i = 0; i < opts_.warmup; ++i) fn();
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(opts_.repeats));
    for (int i = 0; i < opts_.repeats; ++i) samples.push_back(fn());
    return TimingAgg::from_samples(std::move(samples));
  }

  /// Warmup + repeat a k-means run; aggregates makespan_per_iter() (the
  /// harness's canonical per-iteration figure, DESIGN.md §1.6) into
  /// *makespan and mean wall time per iteration into *iter_wall; returns
  /// the last repeat's Result (all repeats are identical modulo timing).
  template <class Fn>
  Result run(Fn&& fn, TimingAgg* makespan = nullptr,
             TimingAgg* iter_wall = nullptr) {
    for (int i = 0; i < opts_.warmup; ++i) fn();
    std::vector<double> makespans, walls;
    Result last;
    for (int i = 0; i < opts_.repeats; ++i) {
      last = fn();
      makespans.push_back(last.makespan_per_iter());
      walls.push_back(last.iter_times.mean());
    }
    if (makespan != nullptr)
      *makespan = TimingAgg::from_samples(std::move(makespans));
    if (iter_wall != nullptr)
      *iter_wall = TimingAgg::from_samples(std::move(walls));
    return last;
  }

  // Internal: run_suite() harvests these.
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
  std::string chart_metric_;

 private:
  RunOptions opts_;
};

/// Process-wide suite registry, populated by static Registration objects in
/// each suite's translation unit.
class Registry {
 public:
  static Registry& instance();
  void add(const Suite& suite);
  /// All registered suites, sorted by (order, name) — static-init link
  /// order is unspecified, so callers must not rely on insertion order.
  std::vector<Suite> suites() const;
  /// Lookup by name; nullptr when absent.
  const Suite* find(const std::string& name) const;

 private:
  std::vector<Suite> suites_;
};

struct Registration {
  explicit Registration(const Suite& suite) { Registry::instance().add(suite); }
};

/// Execute one suite: builds the Context, times the run, computes the
/// config fingerprint. Exceptions become ok=false + error (never thrown).
SuiteRun run_suite(const Suite& suite, const RunOptions& opts);

/// FNV-1a 64 over the suite name and its config entries in insertion order
/// — the config fingerprint. Bit-identical across two runs of the same
/// suite at the same scale (tested in tests/harness_test.cpp).
std::uint64_t config_fingerprint(const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>& config);

/// The BENCH_results.json document (schema: DESIGN.md §6).
Json results_json(const std::vector<SuiteRun>& runs, const RunOptions& opts);

/// Keys results_json puts machine-dependent data under; stripping them
/// canonicalizes the document for determinism comparison.
const std::vector<std::string>& timing_keys();

}  // namespace knor::bench
