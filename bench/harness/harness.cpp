#include "harness/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/strict_parse.hpp"
#include "common/timer.hpp"

namespace knor::bench {

const char* to_string(Scale scale) {
  return scale == Scale::kSmoke ? "smoke" : "paper";
}

TimingAgg TimingAgg::from_samples(std::vector<double> samples) {
  TimingAgg agg;
  if (samples.empty()) return agg;
  std::sort(samples.begin(), samples.end());
  agg.repeats = static_cast<int>(samples.size());
  agg.min = samples.front();
  agg.max = samples.back();
  const std::size_t mid = samples.size() / 2;
  agg.median = samples.size() % 2 == 1
                   ? samples[mid]
                   : 0.5 * (samples[mid - 1] + samples[mid]);
  return agg;
}

RunOptions RunOptions::for_scale(Scale scale) {
  RunOptions opts;
  opts.scale = scale;
  if (scale == Scale::kSmoke) {
    opts.scale_factor = 0.02;
    opts.repeats = 1;
    opts.warmup = 0;
  } else {
    opts.scale_factor = 1.0;
    opts.repeats = 3;
    opts.warmup = 1;
  }
  if (const char* env = std::getenv("KNOR_BENCH_SCALE")) {
    // atof silently read garbage as 0 (= "ignore the env var"); reject it
    // loudly like every other KNOR_* env knob.
    double v = 0.0;
    if (!parse_double(env, &v) || !(v > 0.0))
      throw std::invalid_argument(
          std::string("KNOR_BENCH_SCALE must be a positive number, got '") +
          env + "'");
    opts.scale_factor *= v;
  }
  return opts;
}

index_t Context::scaled(index_t paper_n) const {
  return std::max<index_t>(
      1000, static_cast<index_t>(static_cast<double>(paper_n) *
                                 opts_.scale_factor));
}

void Context::config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), std::move(value));
}

void Context::config(std::string key, double value) {
  config(std::move(key), format_double(value));
}

void Context::dataset(const data::GeneratorSpec& spec, const std::string& tag) {
  config(tag.empty() ? "dataset" : "dataset:" + tag, spec.describe());
}

Row& Context::row() {
  rows_.emplace_back();
  return rows_.back();
}

void Context::note(std::string text) { notes_.push_back(std::move(text)); }

void Context::chart(std::string metric) { chart_metric_ = std::move(metric); }

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(const Suite& suite) { suites_.push_back(suite); }

std::vector<Suite> Registry::suites() const {
  std::vector<Suite> sorted = suites_;
  std::sort(sorted.begin(), sorted.end(), [](const Suite& a, const Suite& b) {
    if (a.order != b.order) return a.order < b.order;
    return std::string(a.name) < b.name;
  });
  return sorted;
}

const Suite* Registry::find(const std::string& name) const {
  for (const Suite& suite : suites_)
    if (name == suite.name) return &suite;
  return nullptr;
}

bool SuiteRun::has_samples() const {
  for (const Row& r : rows)
    if (!r.stats.empty() || !r.timings.empty()) return true;
  return false;
}

std::uint64_t config_fingerprint(const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>& config) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xff;  // field separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ull;
  };
  mix(suite_name);
  for (const auto& [key, value] : config) {
    mix(key);
    mix(value);
  }
  return h;
}

SuiteRun run_suite(const Suite& suite, const RunOptions& opts) {
  SuiteRun run;
  run.suite = suite;
  Context ctx(opts);
  ctx.config("scale", to_string(opts.scale));
  ctx.config("scale_factor", opts.scale_factor);
  const WallTimer timer;
  try {
    suite.fn(ctx);
    run.ok = true;
  } catch (const std::exception& e) {
    run.error = e.what();
  } catch (...) {
    run.error = "unknown exception";
  }
  run.wall_s = timer.elapsed();
  run.config = std::move(ctx.config_);
  run.rows = std::move(ctx.rows_);
  run.notes = std::move(ctx.notes_);
  run.chart_metric = std::move(ctx.chart_metric_);
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(
                    config_fingerprint(suite.name, run.config)));
  run.fingerprint = buf;
  return run;
}

const std::vector<std::string>& timing_keys() {
  // "timing" is the wall-clock half of an obs::Registry metrics export
  // (knor-metrics-v1, DESIGN.md §10): stripping it canonicalizes a
  // --metrics file down to its deterministic partition, so the same
  // `knor_bench --strip` diff covers bench results and metric exports.
  static const std::vector<std::string> keys = {"timings", "wall_s",
                                                "timing"};
  return keys;
}

namespace {

Json agg_json(const TimingAgg& agg) {
  Json j = Json::object();
  j.set("median", agg.median);
  j.set("min", agg.min);
  j.set("max", agg.max);
  j.set("repeats", agg.repeats);
  return j;
}

}  // namespace

Json results_json(const std::vector<SuiteRun>& runs, const RunOptions& opts) {
  Json doc = Json::object();
  doc.set("schema_version", 1);
  doc.set("generator", "knor_bench");
  doc.set("scale", to_string(opts.scale));
  doc.set("scale_factor", opts.scale_factor);
  doc.set("repeats", opts.repeats);
  doc.set("warmup", opts.warmup);
  Json suites = Json::array();
  for (const SuiteRun& run : runs) {
    Json s = Json::object();
    s.set("name", run.suite.name);
    s.set("title", run.suite.title);
    s.set("paper_ref", run.suite.paper_ref);
    s.set("fingerprint", run.fingerprint);
    s.set("ok", run.ok);
    if (!run.error.empty()) s.set("error", run.error);
    Json config = Json::object();
    for (const auto& [key, value] : run.config) config.set(key, value);
    s.set("config", std::move(config));
    Json rows = Json::array();
    for (const Row& row : run.rows) {
      Json r = Json::object();
      Json labels = Json::object();
      for (const auto& [key, value] : row.labels) labels.set(key, value);
      r.set("labels", std::move(labels));
      Json stats = Json::object();
      for (const auto& [key, value] : row.stats) stats.set(key, value);
      r.set("stats", std::move(stats));
      Json timings = Json::object();
      for (const auto& [key, agg] : row.timings)
        timings.set(key, agg_json(agg));
      r.set("timings", std::move(timings));
      rows.push(std::move(r));
    }
    s.set("rows", std::move(rows));
    if (!run.notes.empty()) {
      Json notes = Json::array();
      for (const std::string& note : run.notes) notes.push(note);
      s.set("notes", std::move(notes));
    }
    s.set("wall_s", run.wall_s);
    suites.push(std::move(s));
  }
  doc.set("suites", std::move(suites));
  return doc;
}

}  // namespace knor::bench
