// Renderers over SuiteRun: the RESULTS.md markdown report (figure-by-figure
// tables + ASCII bar charts + paper-expected trend) and the plain-text form
// the per-figure standalone binaries print.
#pragma once

#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace knor::bench {

/// Full RESULTS.md: hand-written preamble (scale caveats, DESIGN.md §1
/// links), contents list, then one section per suite.
std::string render_report(const std::vector<SuiteRun>& runs,
                          const RunOptions& opts);

/// One suite, console form (what `./fig4_numa_speedup` prints).
std::string render_text(const SuiteRun& run);

/// Human-friendly number: integers plain, else 4 significant digits.
std::string pretty_number(double v);

}  // namespace knor::bench
