// Proxy datasets shared by every suite (Table 2 substitutes — DESIGN.md
// §1.3). Paper-scale row counts are passed through Context::scaled() so one
// suite body serves every scale tier.
//
//   friendster8_proxy / friendster32_proxy — natural clusters with
//     power-law sizes, d = 8 / 32 (eigenvector embeddings of a power-law
//     graph).
//   rm_proxy  — multivariate uniform (the RM856M / RM1B worst case).
//   ru_proxy  — univariate normal rows, wide d (the RU2B dataset).
#pragma once

#include <filesystem>
#include <string>
#include <unistd.h>

#include "core/init.hpp"
#include "data/generator.hpp"
#include "data/matrix_io.hpp"
#include "harness/harness.hpp"
#include "numa/cost_model.hpp"

namespace knor::bench {

/// RAII for the remote-access latency emulation: restores the previous
/// penalty even when a suite throws, so one suite can never leak its cost
/// model into the next one in the same knor_bench process.
class RemotePenaltyGuard {
 public:
  explicit RemotePenaltyGuard(std::uint32_t ns)
      : prev_(numa::RemotePenalty::ns().load()) {
    numa::RemotePenalty::ns().store(ns);
  }
  ~RemotePenaltyGuard() { numa::RemotePenalty::ns().store(prev_); }
  RemotePenaltyGuard(const RemotePenaltyGuard&) = delete;
  RemotePenaltyGuard& operator=(const RemotePenaltyGuard&) = delete;

 private:
  std::uint32_t prev_;
};

inline data::GeneratorSpec friendster8_proxy(const Context& ctx,
                                             index_t paper_n = 120000) {
  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kNaturalClusters;
  spec.n = ctx.scaled(paper_n);
  spec.d = 8;
  // Many distinct communities (>= any k the suites sweep): a power-law
  // graph's eigenvector embedding has hundreds of strongly rooted
  // clusters, which is what keeps centroids separated and MTI's clause-1
  // effective. With fewer components than k, k-means packs centroids
  // inside one Gaussian and no triangle-inequality method can prune.
  spec.true_clusters = 128;
  spec.power_law_alpha = 1.5;
  spec.separation = 8.0;
  spec.seed = 1317;
  return spec;
}

inline data::GeneratorSpec friendster32_proxy(const Context& ctx,
                                              index_t paper_n = 120000) {
  data::GeneratorSpec spec = friendster8_proxy(ctx, paper_n);
  spec.d = 32;
  spec.seed = 1332;
  return spec;
}

inline data::GeneratorSpec rm_proxy(const Context& ctx,
                                    index_t paper_n = 400000) {
  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kUniformRandom;
  spec.n = ctx.scaled(paper_n);
  spec.d = 16;
  spec.seed = 856;
  return spec;
}

inline data::GeneratorSpec ru_proxy(const Context& ctx,
                                    index_t paper_n = 250000) {
  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kUnivariateRandom;
  spec.n = ctx.scaled(paper_n);
  spec.d = 64;
  spec.seed = 2100;
  return spec;
}

/// Frozen (centroids, query pool) pair for the serving suites: k centroids
/// trained-by-init over a friendster32 proxy, plus the proxy itself as the
/// query pool. One definition so serve_closed and serve_open measure the
/// same model and workload.
struct ServeWorkload {
  DenseMatrix centroids;
  DenseMatrix pool;
};

inline ServeWorkload serve_workload(Context& ctx, int k = 64,
                                    index_t paper_n = 60000) {
  data::GeneratorSpec spec = friendster32_proxy(ctx, paper_n);
  ctx.dataset(spec);
  ctx.config("k", k);
  ServeWorkload w;
  w.pool = data::generate(spec);
  Options opts;
  opts.k = k;
  opts.seed = 1765;
  w.centroids = init_centroids(w.pool.const_view(), opts);
  return w;
}

/// Temp .kmat file for SEM suites, removed on destruction.
class TempMatrixFile {
 public:
  explicit TempMatrixFile(const data::GeneratorSpec& spec, std::string tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("knor_bench_" + tag + "_" + std::to_string(::getpid()) + ".kmat");
    data::write_generated(path_, spec);
  }
  ~TempMatrixFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace knor::bench
