// Figure 12 — distributed time-per-iteration comparison of knord / knord- /
// MPI / MPI- / MLlib* across core counts (Friendster and RM proxies,
// k = 100 and k = 10 respectively, matching the paper's parameters).
//
// Shape to reproduce: knord <= MPI (NUMA optimizations help 20-50%),
// knord- <= MPI- by the same mechanism, MTI variants beat their unpruned
// twins on clustered data, and every knor variant beats the MLlib stand-in
// by ~5x or more.
#include "bench_util.hpp"
#include "baselines/frameworks.hpp"
#include "core/knori.hpp"
#include "dist/knord.hpp"
#include "numa/cost_model.hpp"

using namespace knor;

namespace {

void run_dataset(const char* name, const data::GeneratorSpec& spec, int k) {
  const DenseMatrix m = data::generate(spec);
  std::printf("\n--- %s: %s, k=%d ---\n", name, spec.describe().c_str(), k);
  std::printf("%-9s %8s %14s\n", "system", "ranks", "time/iter(ms)");

  for (const int ranks : {2, 4}) {
    dist::DistOptions dopts;
    dopts.ranks = ranks;
    dopts.threads_per_rank = 2;
    dopts.net.latency_us = 50;
    dopts.net.gigabytes_per_sec = 1.25;

    for (const bool prune : {true, false}) {
      Options opts;
      opts.k = k;
      opts.max_iters = 5;
      opts.seed = 42;
      opts.prune = prune;
      opts.numa_nodes = 2;

      numa::RemotePenalty::ns().store(100);
      const Result knord = dist::kmeans(m.const_view(), opts, dopts);
      // The flat MPI baseline is NUMA-oblivious: single compute thread per
      // rank; to compare at equal core count give it ranks*threads ranks.
      dist::DistOptions mpi_opts = dopts;
      mpi_opts.ranks = ranks * dopts.threads_per_rank;
      mpi_opts.threads_per_rank = 1;
      const Result mpi = dist::mpi_kmeans(m.const_view(), opts, mpi_opts);
      numa::RemotePenalty::ns().store(0);

      std::printf("%-9s %8d %14.2f\n", prune ? "knord" : "knord-", ranks,
                  knord.iter_times.mean() * 1e3);
      std::printf("%-9s %8d %14.2f\n", prune ? "MPI" : "MPI-",
                  mpi_opts.ranks, mpi.iter_times.mean() * 1e3);
    }
  }

  Options mllib_opts;
  mllib_opts.k = k;
  mllib_opts.max_iters = 3;
  mllib_opts.prune = false;
  mllib_opts.threads = 4;
  const Result mllib = baselines::mllib_like(m.const_view(), mllib_opts);
  std::printf("%-9s %8s %14.2f\n", "MLlib*", "4w",
              mllib.iter_times.mean() * 1e3);
}

}  // namespace

int main() {
  bench::header("Figure 12: distributed comparison (knord/MPI/MLlib*)",
                "Figures 12a/12b of the paper");
  data::GeneratorSpec f8 = bench::friendster8_proxy();
  f8.n = bench::scaled(60000);
  run_dataset("Friendster-8", f8, 100);
  data::GeneratorSpec rm = bench::rm_proxy(150000);
  run_dataset("RM856M-proxy", rm, 10);
  std::printf("\nShape check: knord <= MPI at equal cores (NUMA placement); "
              "MTI variants beat unpruned twins on Friendster (clustered) "
              "more than on RM (uniform); all beat MLlib* by large "
              "factors.\n");
  return 0;
}
