// Figure 12 — distributed time-per-iteration comparison of knord / knord- /
// MPI / MPI- / MLlib* across core counts (Friendster and RM proxies,
// k = 100 and k = 10 respectively, matching the paper's parameters).
#include "baselines/frameworks.hpp"
#include "core/knori.hpp"
#include "dist/fault.hpp"
#include "dist/knord.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run_dataset(Context& ctx, const char* name,
                 const data::GeneratorSpec& spec, int k) {
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec, name);

  for (const int ranks : {2, 4}) {
    dist::DistOptions dopts;
    dopts.ranks = ranks;
    dopts.threads_per_rank = 2;
    dopts.net.latency_us = 50;
    dopts.net.gigabytes_per_sec = 1.25;

    for (const bool prune : {true, false}) {
      Options opts;
      opts.k = k;
      opts.max_iters = 5;
      opts.seed = 42;
      opts.prune = prune;
      opts.numa_nodes = 2;

      // The flat MPI baseline is NUMA-oblivious: single compute thread per
      // rank; to compare at equal core count give it ranks*threads ranks.
      dist::DistOptions mpi_opts = dopts;
      mpi_opts.ranks = ranks * dopts.threads_per_rank;
      mpi_opts.threads_per_rank = 1;

      const RemotePenaltyGuard penalty(100);
      TimingAgg knord_wall, mpi_wall;
      ctx.run([&] { return dist::kmeans(m.const_view(), opts, dopts); },
              nullptr, &knord_wall);
      ctx.run([&] { return dist::mpi_kmeans(m.const_view(), opts, mpi_opts); },
              nullptr, &mpi_wall);

      ctx.row()
          .label("dataset", name)
          .label("k", k)
          .label("system", prune ? "knord" : "knord-")
          .label("ranks", ranks)
          .timing("iter_ms", knord_wall.scaled(1e3));
      ctx.row()
          .label("dataset", name)
          .label("k", k)
          .label("system", prune ? "MPI" : "MPI-")
          .label("ranks", mpi_opts.ranks)
          .timing("iter_ms", mpi_wall.scaled(1e3));
    }
  }

  // Crash-recovery configuration (DESIGN.md §13): node 1 crashes after
  // iteration 2, the three survivors reload the in-memory checkpoint,
  // re-shard and replay — the clustering is bitwise identical to the clean
  // run (pinned in tests/fault_test.cpp); this row prices the recovery.
  {
    dist::DistOptions dopts;
    dopts.ranks = 4;
    dopts.threads_per_rank = 2;
    dopts.net.latency_us = 50;
    dopts.net.gigabytes_per_sec = 1.25;
    Options opts;
    opts.k = k;
    opts.max_iters = 5;
    opts.seed = 42;
    opts.numa_nodes = 2;
    dist::FtOptions fopts;
    fopts.plan = dist::FaultPlan::parse("crash@2:r1");

    const RemotePenaltyGuard penalty(100);
    TimingAgg wall;
    const Result res = ctx.run(
        [&] { return dist::ft_kmeans(m.const_view(), opts, dopts, fopts); },
        nullptr, &wall);
    ctx.row()
        .label("dataset", name)
        .label("k", k)
        .label("system", "knord +crash@2:r1")
        .label("ranks", "4->3")
        .stat("recoveries",
              static_cast<double>(res.metrics.value_or("dist.recoveries", 0)))
        .timing("iter_ms", wall.scaled(1e3));
  }

  Options mllib_opts;
  mllib_opts.k = k;
  mllib_opts.max_iters = 3;
  mllib_opts.prune = false;
  mllib_opts.threads = 4;
  TimingAgg wall;
  ctx.run([&] { return baselines::mllib_like(m.const_view(), mllib_opts); },
          nullptr, &wall);
  ctx.row()
      .label("dataset", name)
      .label("k", k)
      .label("system", "MLlib*")
      .label("ranks", "4w")
      .timing("iter_ms", wall.scaled(1e3));
}

void run(Context& ctx) {
  ctx.config("net", "latency 50us, 1.25 GB/s (10GbE-like)");
  ctx.config("remote_penalty_ns", 100);
  ctx.config("crash_plan", "crash@2:r1");
  run_dataset(ctx, "Friendster-8", friendster8_proxy(ctx, 60000), 100);
  run_dataset(ctx, "RM856M-proxy", rm_proxy(ctx, 150000), 10);
  ctx.chart("iter_ms");
}

const Registration reg({
    "fig12_dist_compare",
    "Figure 12: distributed comparison (knord/MPI/MLlib*)",
    "Figures 12a/12b of the paper",
    "knord <= MPI at equal core count (NUMA placement helps 20-50%), and "
    "knord- <= MPI- by the same mechanism; MTI variants beat their unpruned "
    "twins on Friendster (clustered) more than on RM (uniform); every knor "
    "variant beats the MLlib stand-in by ~5x or more.",
    120, run});

}  // namespace
