// Ablation — SEM minimum read size (the paper: "We utilize a minimum read
// size of 4KB; even with this relatively small value we still receive
// significantly more data from disk than we request", §6.2.1) and SAFS-style
// request merging.
//
// Sweeps the page size with MTI on (fragmented access pattern) and reports
// bytes requested vs read and device request count: small pages read less
// superfluous data but issue many more requests; large pages amortize
// requests but amplify fragmentation waste.
#include "bench_util.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

int main() {
  bench::header("Ablation: SEM page size vs fragmentation",
                "the 4KB minimum-read choice of §6.2.1");

  data::GeneratorSpec spec = bench::friendster32_proxy();
  spec.n = bench::scaled(100000);
  bench::TempMatrixFile file(spec, "abl_page");
  std::printf("dataset: %s; k=10, MTI on, row cache off (isolates paging)\n\n",
              spec.describe().c_str());

  std::printf("%-10s %14s %12s %16s %14s\n", "page", "requested(MB)",
              "read(MB)", "read/requested", "device reqs");
  for (const std::size_t page : {512u, 1024u, 4096u, 16384u, 65536u}) {
    Options opts;
    opts.k = 10;
    opts.threads = 4;
    opts.max_iters = 25;
    opts.seed = 42;
    sem::SemOptions sopts;
    sopts.page_size = page;
    sopts.page_cache_bytes = 1 << 20;
    sopts.row_cache_enabled = false;
    sem::SemStats stats;
    sem::kmeans(file.path(), opts, sopts, &stats);
    const double requested = stats.total_requested() / 1e6;
    const double read = stats.total_read() / 1e6;
    std::printf("%-10zu %14.1f %12.1f %16.2f %14llu\n", page, requested,
                read, read / requested,
                static_cast<unsigned long long>(
                    stats.total_device_requests()));
  }
  std::printf("\nShape check: read/requested amplification grows with page "
              "size (pruning requests scattered rows); request count grows "
              "as pages shrink — 4KB balances the two, as the paper "
              "argues.\n");
  return 0;
}
