// Ablation — SEM minimum read size (the paper: "We utilize a minimum read
// size of 4KB; even with this relatively small value we still receive
// significantly more data from disk than we request", §6.2.1) and SAFS-style
// request merging.
//
// Sweeps the page size with MTI on (fragmented access pattern) and reports
// bytes requested vs read and device request count: small pages read less
// superfluous data but issue many more requests; large pages amortize
// requests but amplify fragmentation waste.
#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster32_proxy(ctx, 100000);
  TempMatrixFile file(spec, "abl_page");
  ctx.dataset(spec);
  ctx.config("k", 10);
  ctx.config("mti", "on");
  ctx.config("row_cache", "off (isolates paging)");

  for (const std::size_t page : {512u, 1024u, 4096u, 16384u, 65536u}) {
    Options opts;
    opts.k = 10;
    opts.threads = 4;
    opts.max_iters = 25;
    opts.seed = 42;
    sem::SemOptions sopts;
    sopts.page_size = page;
    sopts.page_cache_bytes = 1 << 20;
    sopts.row_cache_enabled = false;
    sem::SemStats stats;
    sem::kmeans(file.path(), opts, sopts, &stats);
    const double requested = stats.total_requested() / 1e6;
    const double read = stats.total_read() / 1e6;
    // Requested bytes are algorithmic (stat); read bytes / device requests
    // depend on concurrent page-cache miss races (timings).
    ctx.row()
        .label("page_bytes", static_cast<long long>(page))
        .stat("requested_mb", requested)
        .timing("read_mb", read)
        .timing("read_over_requested", requested > 0 ? read / requested : 0.0)
        .timing("device_requests",
                static_cast<double>(stats.total_device_requests()));
  }
  ctx.chart("read_over_requested");
}

const Registration reg({
    "abl_page_size",
    "Ablation: SEM page size vs fragmentation",
    "the 4KB minimum-read choice of §6.2.1",
    "read/requested amplification grows with page size (pruning requests "
    "scattered rows); request count grows as pages shrink — 4KB balances "
    "the two, as the paper argues.",
    320, run});

}  // namespace
