// Shared helpers for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (Section 8) at container-feasible scale. Scale factors and the
// shape criteria each bench must exhibit are recorded in EXPERIMENTS.md.
//
// Proxy datasets (Table 2 substitutes — DESIGN.md §1):
//   friendster8_proxy / friendster32_proxy — natural clusters with
//     power-law sizes, d = 8 / 32 (eigenvector embeddings of a power-law
//     graph).
//   rm_proxy  — multivariate uniform (the RM856M / RM1B worst case).
//   ru_proxy  — univariate normal rows, wide d (the RU2B dataset).
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "data/generator.hpp"
#include "data/matrix_io.hpp"

namespace knor::bench {

/// Benches honor KNOR_BENCH_SCALE (float; default 1.0) so the suite can be
/// shrunk for smoke runs or grown on beefier machines.
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("KNOR_BENCH_SCALE");
    const double v = env != nullptr ? std::atof(env) : 1.0;
    return v > 0 ? v : 1.0;
  }();
  return s;
}

inline index_t scaled(index_t n) {
  return std::max<index_t>(1000, static_cast<index_t>(n * scale()));
}

inline data::GeneratorSpec friendster8_proxy() {
  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kNaturalClusters;
  spec.n = scaled(120000);
  spec.d = 8;
  // Many distinct communities (>= any k the benches sweep): a power-law
  // graph's eigenvector embedding has hundreds of strongly rooted
  // clusters, which is what keeps centroids separated and MTI's clause-1
  // effective. With fewer components than k, k-means packs centroids
  // inside one Gaussian and no triangle-inequality method can prune.
  spec.true_clusters = 128;
  spec.power_law_alpha = 1.5;
  spec.separation = 8.0;
  spec.seed = 1317;
  return spec;
}

inline data::GeneratorSpec friendster32_proxy() {
  data::GeneratorSpec spec = friendster8_proxy();
  spec.d = 32;
  spec.seed = 1332;
  return spec;
}

inline data::GeneratorSpec rm_proxy(index_t n = 400000) {
  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kUniformRandom;
  spec.n = scaled(n);
  spec.d = 16;
  spec.seed = 856;
  return spec;
}

inline data::GeneratorSpec ru_proxy() {
  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kUnivariateRandom;
  spec.n = scaled(250000);
  spec.d = 64;
  spec.seed = 2100;
  return spec;
}

/// Temp file for SEM benches, removed on destruction.
class TempMatrixFile {
 public:
  explicit TempMatrixFile(const data::GeneratorSpec& spec, std::string tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("knor_bench_" + tag + "_" + std::to_string(::getpid()) + ".kmat");
    data::write_generated(path_, spec);
  }
  ~TempMatrixFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  (reproduces %s; scale=%.2f — see EXPERIMENTS.md)\n",
              title, paper_ref, scale());
  std::printf("================================================================\n");
}

}  // namespace knor::bench
