// Ablation — where MTI's pruning comes from: per-clause skip counters over
// a k sweep on the Friendster-8 proxy (clause 1 skips the whole point,
// clauses 2/3 prune candidate centroids; paper §4). Counter totals are
// invariant to the thread schedule (each point is visited exactly once per
// iteration and the centroid trajectory is deterministic), so every column
// is a stat — this suite is a pure-determinism companion to fig8's timing
// view of the same switch.
#include "core/knori.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  const data::GeneratorSpec spec = friendster8_proxy(ctx, 100000);
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec);
  ctx.config("mti", "on");

  for (const int k : {10, 20, 50, 100}) {
    Options opts;
    opts.k = k;
    opts.threads = 4;
    opts.max_iters = 20;
    opts.seed = 42;
    opts.prune = true;
    const Result res = kmeans(m.const_view(), opts);
    // A pruning-free Lloyd's evaluates n*k distances per iteration.
    const double naive = static_cast<double>(spec.n) * k *
                         static_cast<double>(res.iters);
    ctx.row()
        .label("k", k)
        .stat("iters", static_cast<double>(res.iters))
        .stat("distances_computed",
              static_cast<double>(res.counters.dist_computations))
        .stat("naive_distances", naive)
        .stat("pruned_pct",
              naive > 0
                  ? 100.0 * (1.0 - res.counters.dist_computations / naive)
                  : 0.0)
        .stat("clause1_point_skips",
              static_cast<double>(res.counters.clause1_skips))
        .stat("clause2_centroid_prunes",
              static_cast<double>(res.counters.clause2_skips))
        .stat("clause3_centroid_prunes",
              static_cast<double>(res.counters.clause3_skips));
  }
  ctx.chart("pruned_pct");
}

const Registration reg({
    "abl_mti_clauses",
    "Ablation: MTI clause effectiveness vs k",
    "the MTI design of paper §4 (supports Figures 8/9)",
    "On natural-cluster data the pruned fraction grows with k (more "
    "centroids to rule out per point) and clause 1 dominates once points "
    "settle — entire points skipped without touching their rows, the "
    "mechanism knors turns into I/O savings.",
    340, run});

}  // namespace
