// Figure 13 — knors on a single node vs distributed packages (knord, MPI,
// MLlib*) running on a (simulated) cluster, across four datasets.
#include "baselines/frameworks.hpp"
#include "core/knori.hpp"
#include "dist/knord.hpp"
#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  struct DatasetCase {
    const char* name;
    data::GeneratorSpec spec;
    int k;
  };
  const std::vector<DatasetCase> cases = {
      {"Friendster-8", friendster8_proxy(ctx, 80000), 10},
      {"Friendster-32", friendster32_proxy(ctx, 50000), 10},
      {"RM856-proxy", rm_proxy(ctx, 150000), 10},
      {"RU1B-proxy", ru_proxy(ctx), 10},
  };
  ctx.config("net", "latency 50us, 1.25 GB/s (10GbE-like)");
  ctx.config("cluster", "knord 3 ranks x 2 threads, MPI 6 ranks x 1");
  for (const auto& c : cases) ctx.dataset(c.spec, c.name);

  for (const auto& dataset : cases) {
    TempMatrixFile file(dataset.spec, dataset.name);
    Options opts;
    opts.k = dataset.k;
    opts.threads = 4;
    opts.max_iters = 4;
    opts.seed = 42;

    const auto emit = [&](const char* system, const TimingAgg& wall) {
      ctx.row()
          .label("dataset", dataset.name)
          .label("system", system)
          .timing("iter_ms", wall.scaled(1e3));
    };

    sem::SemOptions sopts;
    sopts.page_cache_bytes = 4 << 20;
    sopts.row_cache_bytes = 2 << 20;
    TimingAgg wall;
    ctx.run([&] { return sem::kmeans(file.path(), opts, sopts); }, nullptr,
            &wall);
    emit("knors (1 node)", wall);

    const DenseMatrix m = data::generate(dataset.spec);
    dist::DistOptions dopts;
    dopts.ranks = 3;
    dopts.threads_per_rank = 2;
    dopts.net.latency_us = 50;
    dopts.net.gigabytes_per_sec = 1.25;
    ctx.run([&] { return dist::kmeans(m.const_view(), opts, dopts); }, nullptr,
            &wall);
    emit("knord", wall);

    dist::DistOptions mpi_opts = dopts;
    mpi_opts.ranks = 6;
    mpi_opts.threads_per_rank = 1;
    ctx.run([&] { return dist::mpi_kmeans(m.const_view(), opts, mpi_opts); },
            nullptr, &wall);
    emit("MPI", wall);

    Options nop = opts;
    nop.prune = false;
    ctx.run([&] { return baselines::mllib_like(m.const_view(), nop); },
            nullptr, &wall);
    emit("MLlib*", wall);
  }
  ctx.chart("iter_ms");
}

const Registration reg({
    "fig13_sem_vs_dist",
    "Figure 13: knors (1 node) vs distributed packages",
    "Figure 13 of the paper",
    "Single-node semi-external knors (data on disk) is within a small "
    "factor of the distributed exact systems (cluster, data in RAM) and "
    "beats the MLlib stand-in on every dataset even though the latter has "
    "'more cores' — the paper's argument that SEM scale-up should be "
    "considered before scale-out.",
    130, run});

}  // namespace
