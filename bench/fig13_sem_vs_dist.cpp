// Figure 13 — knors on a single node vs distributed packages (knord, MPI,
// MLlib*) running on a (simulated) cluster, across four datasets.
//
// Shape to reproduce: single-node semi-external knors is comparable to the
// distributed exact systems and beats the MLlib stand-in even though the
// latter has "more cores" — the paper's argument that SEM scale-up should
// be considered before scale-out.
#include "bench_util.hpp"
#include "baselines/frameworks.hpp"
#include "core/knori.hpp"
#include "dist/knord.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

int main() {
  bench::header("Figure 13: knors (1 node) vs distributed packages",
                "Figure 13 of the paper");

  struct DatasetCase {
    const char* name;
    data::GeneratorSpec spec;
    int k;
  };
  data::GeneratorSpec f8 = bench::friendster8_proxy();
  f8.n = bench::scaled(80000);
  data::GeneratorSpec f32 = bench::friendster32_proxy();
  f32.n = bench::scaled(50000);
  const std::vector<DatasetCase> cases = {
      {"Friendster-8", f8, 10},
      {"Friendster-32", f32, 10},
      {"RM856-proxy", bench::rm_proxy(150000), 10},
      {"RU1B-proxy", bench::ru_proxy(), 10},
  };

  std::printf("%-14s %-8s %14s\n", "dataset", "system", "time/iter(ms)");
  for (const auto& dataset : cases) {
    bench::TempMatrixFile file(dataset.spec, dataset.name);
    Options opts;
    opts.k = dataset.k;
    opts.threads = 4;
    opts.max_iters = 4;
    opts.seed = 42;

    sem::SemOptions sopts;
    sopts.page_cache_bytes = 4 << 20;
    sopts.row_cache_bytes = 2 << 20;
    const Result knors = sem::kmeans(file.path(), opts, sopts);
    std::printf("%-14s %-8s %14.2f\n", dataset.name, "knors",
                knors.iter_times.mean() * 1e3);

    const DenseMatrix m = data::generate(dataset.spec);
    dist::DistOptions dopts;
    dopts.ranks = 3;
    dopts.threads_per_rank = 2;
    dopts.net.latency_us = 50;
    dopts.net.gigabytes_per_sec = 1.25;
    const Result knord = dist::kmeans(m.const_view(), opts, dopts);
    std::printf("%-14s %-8s %14.2f\n", dataset.name, "knord",
                knord.iter_times.mean() * 1e3);

    dist::DistOptions mpi_opts = dopts;
    mpi_opts.ranks = 6;
    mpi_opts.threads_per_rank = 1;
    const Result mpi = dist::mpi_kmeans(m.const_view(), opts, mpi_opts);
    std::printf("%-14s %-8s %14.2f\n", dataset.name, "MPI",
                mpi.iter_times.mean() * 1e3);

    Options nop = opts;
    nop.prune = false;
    const Result mllib = baselines::mllib_like(m.const_view(), nop);
    std::printf("%-14s %-8s %14.2f\n\n", dataset.name, "MLlib*",
                mllib.iter_times.mean() * 1e3);
  }
  std::printf("Shape check: knors (one 'machine', data on disk) is within a "
              "small factor of knord/MPI (cluster, data in RAM) and beats "
              "the MLlib stand-in on every dataset — scale-up before "
              "scale-out.\n");
  return 0;
}
