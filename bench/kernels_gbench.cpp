// Kernel microbenchmarks (google-benchmark): the inner loops whose cost
// model explains the macro results — distance kernels, per-thread centroid
// accumulation and merge, task queue throughput, MTI bookkeeping, and the
// collective used by knord.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/distance.hpp"
#include "core/kernels/simd.hpp"
#include "core/local_centroids.hpp"
#include "core/mti.hpp"
#include "data/generator.hpp"
#include "dist/comm.hpp"
#include "numa/partitioner.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace knor;

DenseMatrix make_data(index_t n, index_t d) {
  data::GeneratorSpec spec;
  spec.n = n;
  spec.d = d;
  return data::generate(spec);
}

void BM_DistSq(benchmark::State& state) {
  const index_t d = static_cast<index_t>(state.range(0));
  const DenseMatrix m = make_data(2, d);
  for (auto _ : state)
    benchmark::DoNotOptimize(dist_sq(m.row(0), m.row(1), d));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistSq)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_NearestCentroid(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const index_t d = 16;
  const DenseMatrix point = make_data(1, d);
  const DenseMatrix centroids = make_data(static_cast<index_t>(k), d);
  value_t dist_out = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        nearest_centroid(point.row(0), centroids.data(), k, d, &dist_out));
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_NearestCentroid)->Arg(10)->Arg(50)->Arg(100);

// Per-ISA suites for the SIMD kernel layer: registered dynamically for
// whatever this machine supports, so the scalar-vs-vector speedup (and
// blocked-vs-per-centroid) is directly visible in one run.
void BM_DistSqIsa(benchmark::State& state, kernels::Isa isa) {
  const kernels::Ops& ops = kernels::ops_for(isa);
  const index_t d = static_cast<index_t>(state.range(0));
  const DenseMatrix m = make_data(2, d);
  for (auto _ : state)
    benchmark::DoNotOptimize(ops.dist_sq(m.row(0), m.row(1), d));
  state.SetItemsProcessed(state.iterations());
}

void BM_NearestBlockedIsa(benchmark::State& state, kernels::Isa isa) {
  const kernels::Ops& ops = kernels::ops_for(isa);
  const int k = static_cast<int>(state.range(0));
  const index_t d = 16;
  const DenseMatrix point = make_data(1, d);
  const DenseMatrix centroids = make_data(static_cast<index_t>(k), d);
  kernels::CentroidPack pack;
  pack.pack(centroids);
  value_t sq_out = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(ops.nearest_blocked(point.row(0), pack, &sq_out));
  state.SetItemsProcessed(state.iterations() * k);
}

const int g_isa_registrations = [] {
  for (const kernels::Isa isa : kernels::available_isas()) {
    const std::string tag = kernels::to_string(isa);
    benchmark::RegisterBenchmark(("BM_DistSqIsa/" + tag).c_str(),
                                 [isa](benchmark::State& s) {
                                   BM_DistSqIsa(s, isa);
                                 })
        ->Arg(8)->Arg(32)->Arg(128);
    benchmark::RegisterBenchmark(("BM_NearestBlockedIsa/" + tag).c_str(),
                                 [isa](benchmark::State& s) {
                                   BM_NearestBlockedIsa(s, isa);
                                 })
        ->Arg(8)->Arg(64)->Arg(256);
  }
  return 0;
}();

void BM_LocalCentroidAdd(benchmark::State& state) {
  const index_t d = static_cast<index_t>(state.range(0));
  LocalCentroids acc(16, d);
  const DenseMatrix row = make_data(1, d);
  cluster_t c = 0;
  for (auto _ : state) {
    acc.add(c, row.row(0));
    c = (c + 1) % 16;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalCentroidAdd)->Arg(8)->Arg(32)->Arg(128);

void BM_LocalCentroidMerge(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  LocalCentroids a(k, 32), b(k, 32);
  for (auto _ : state) a.merge(b);
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_LocalCentroidMerge)->Arg(10)->Arg(100);

void BM_MtiPrepare(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const DenseMatrix cur = make_data(static_cast<index_t>(k), 32);
  DenseMatrix prev = cur;
  MtiState mti(1000, k);
  for (auto _ : state) mti.prepare(prev, cur);
  state.SetItemsProcessed(state.iterations() * k * k / 2);
}
BENCHMARK(BM_MtiPrepare)->Arg(10)->Arg(50)->Arg(100);

void BM_TaskQueueDrain(benchmark::State& state) {
  const auto topo = numa::Topology::simulated(4, 8);
  const numa::Partitioner parts(1 << 20, 8, topo);
  sched::Scheduler sched(8, topo, /*bind=*/false);
  for (auto _ : state) {
    state.PauseTiming();
    sched.begin_chunks(1 << 20, 8192, &parts);
    state.ResumeTiming();
    sched::Task task;
    for (int t = 0; t < 8; ++t)
      while (sched.next_chunk(t, task)) benchmark::DoNotOptimize(task.begin);
  }
  state.SetItemsProcessed(state.iterations() * ((1 << 20) / 8192));
}
BENCHMARK(BM_TaskQueueDrain);

void BM_AllreduceSum(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dist::Cluster cluster(4);
    cluster.run([&](dist::Communicator& comm) {
      std::vector<double> payload(count, 1.0);
      comm.allreduce_sum(payload.data(), payload.size());
      benchmark::DoNotOptimize(payload[0]);
    });
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_AllreduceSum)->Arg(320)->Arg(3200);

}  // namespace
