// Closed-loop serving throughput: 16 client threads driving a
// serve::QueryFrontEnd — the PR-7 acceptance suite. The headline
// comparison is batched (window=4096) against the one-request-per-call
// baseline at the same client count: the queued path with the batching
// window at 1, where the dispatcher makes exactly one compute call per
// request. Admission + coalescing must buy at least 2x throughput,
// because the per-call overhead (scheduler fork/join handshake, compute
// lock handoff, obs span) repeats per request at window=1 and a
// mega-batch amortizes it across every coalesced request. The direct
// synchronous path (clients call assign_now themselves, no queue) rides
// along as a reference for what admission itself costs.
//
// Stability note: each config is measured with one untimed warmup run and
// >=5 samples regardless of the harness repeat count — a single cold
// sample of a multi-threaded ~10ms wall on a small machine is noise. The
// acceptance ratio is computed from per-config MIN walls: on a shared
// (containerized) host a sample can absorb tens of milliseconds of
// preemption that has nothing to do with the code under test, and the
// minimum is the least-perturbed observation of each config.
#include <algorithm>
#include <string>
#include <vector>

#include "harness/datasets.hpp"
#include "serve/front_end.hpp"
#include "serve/loadgen.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  const ServeWorkload w = serve_workload(ctx);
  // Small requests are the point of admission batching: at 2 rows the
  // per-call overhead (not the kernel) dominates a window=1 dispatch, so
  // the coalescing win is visible; by ~8 rows the kernel share starts to
  // dilute it.
  const index_t rows_per_request = 2;
  // Row budget -> requests: smoke = 6000 requests, paper = 300k. Serving
  // walls are per-request-overhead bound, so the request count (not the
  // row count) is what buys a stable measurement.
  const auto requests = static_cast<std::uint64_t>(
      ctx.scaled(600000) / rows_per_request);
  ctx.config("requests", static_cast<double>(requests));
  ctx.config("rows_per_request", static_cast<double>(rows_per_request));

  Options opts;
  opts.k = static_cast<int>(w.centroids.rows());
  opts.seed = 1765;

  // Queued configs run a pipelined closed loop (4 in flight per client =
  // multiprogramming level 64, identical on both sides of the comparison)
  // so the client-side wakeup cost amortizes and the measured gap is the
  // per-compute-call overhead, which is what the window toggles. direct
  // is synchronous by construction — pipeline stays 1.
  struct Config {
    const char* path;
    int clients;
    bool direct;
    index_t window;
    int pipeline;
  };
  const Config configs[] = {
      {"direct (1 client)", 1, true, 1, 1},
      {"direct (16 clients, serialized)", 16, true, 1, 1},
      {"queued, window=1 (one call per request)", 16, false, 1, 4},
      {"queued, window=4096 (batched)", 16, false, 4096, 4},
  };

  const int samples = std::max(5, ctx.repeats());
  double window1_min = 0, batched_min = 0, direct16_min = 0;
  for (const Config& cfg : configs) {
    serve::FrontEndOptions fopts;
    fopts.batch_window = cfg.window;
    serve::LoadOptions lopts;
    lopts.clients = cfg.clients;
    lopts.requests = requests;
    lopts.rows_per_request = rows_per_request;
    lopts.direct = cfg.direct;
    lopts.pipeline = cfg.pipeline;
    lopts.seed = 42;

    serve::QueryFrontEnd fe(w.centroids, opts, fopts);
    serve::LoadStats last;
    (void)serve::run_closed_loop(fe, w.pool, lopts);  // warmup (untimed)
    std::vector<double> walls;
    walls.reserve(static_cast<std::size_t>(samples));
    for (int s = 0; s < samples; ++s) {
      last = serve::run_closed_loop(fe, w.pool, lopts);
      walls.push_back(last.wall_s);
    }
    const TimingAgg wall_s = TimingAgg::from_samples(std::move(walls));
    if (std::string(cfg.path) == "direct (16 clients, serialized)")
      direct16_min = wall_s.min;
    if (cfg.clients == 16 && !cfg.direct && cfg.window == 1)
      window1_min = wall_s.min;
    if (cfg.window == 4096) batched_min = wall_s.min;

    ctx.row()
        .label("path", cfg.path)
        .label("clients", cfg.clients)
        .stat("requests", static_cast<double>(last.requests))
        .stat("rows", static_cast<double>(last.rows))
        .timing("wall_s", wall_s)
        .timing("rows_per_sec",
                TimingAgg::single(last.completed_rows_per_sec()))
        .timing("p50_ms", TimingAgg::single(last.latency_quantile(0.5) * 1e3))
        .timing("p99_ms",
                TimingAgg::single(last.latency_quantile(0.99) * 1e3));
  }
  // The acceptance ratio: same clients, same requests, same queued path —
  // only the coalescing window differs, so the wall ratio IS the
  // throughput ratio bought by batching. Min walls, per the stability
  // note above.
  ctx.row()
      .label("path", "speedup: batched vs one call per request @16 clients")
      .label("clients", 16)
      .timing("speedup",
              TimingAgg::single(batched_min > 0 ? window1_min / batched_min
                                                : 0))
      .timing("speedup_vs_direct",
              TimingAgg::single(batched_min > 0 ? direct16_min / batched_min
                                                : 0));
  ctx.chart("rows_per_sec");
  ctx.note(
      "one call per request = the queued path with the batching window at "
      "1: every request pays its own scheduler fork/join, compute-lock "
      "handoff and span; window=4096 coalesces whatever is queued into a "
      "single compute call. Both queued configs run the same pipelined "
      "closed loop (4 in flight per client), so the only difference is "
      "the server-side call granularity. Acceptance: speedup >= 2 at 16 "
      "clients. direct = clients call assign_now synchronously, bypassing "
      "admission entirely — the reference for what the queue+future "
      "machinery itself costs.");
}

const Registration reg({
    "serve_closed",
    "Closed-loop serving: batched mega-batches vs one-request-per-call at "
    "16 clients",
    "ROADMAP serving front end (no paper exhibit); DESIGN.md §11",
    "Batched throughput >= 2x the one-compute-call-per-request baseline "
    "at 16 clients (same queued path, window=1 vs window=4096); the "
    "direct synchronous path sits between, paying per-call compute costs "
    "but no admission hop.",
    430, run});

}  // namespace
