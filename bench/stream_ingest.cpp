// Streaming-ingestion throughput: the StreamEngine's decayed mini-batch
// update over a replayed batch sequence, swept over batch size and decay.
// No paper exhibit — this is the ROADMAP's serving extension (DESIGN.md
// §9); the deterministic columns (batches, rows) pin the workload while
// ms_per_batch tracks the cost of one ingest step (assign on the
// work-stealing scheduler + per-chunk fold + sequential decayed update).
#include <string>

#include "harness/datasets.hpp"
#include "stream/stream_engine.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  const data::GeneratorSpec spec = friendster32_proxy(ctx, 100000);
  ctx.dataset(spec);
  const DenseMatrix data = data::generate(spec);
  const int k = 64;
  ctx.config("k", k);

  for (const double decay : {1.0, 0.9}) {
    for (const index_t batch_rows : {1024u, 4096u, 16384u}) {
      Options opts;
      opts.k = k;
      opts.seed = 1765;
      stream::StreamOptions sopts;
      sopts.decay = decay;
      sopts.batch_rows = batch_rows;

      const std::uint64_t batches =
          (data.rows() + batch_rows - 1) / batch_rows;
      double sse = 0;
      const TimingAgg total_s = ctx.measure([&] {
        stream::StreamEngine engine(opts, sopts);
        const WallTimer timer;
        for (index_t begin = 0; begin < data.rows(); begin += batch_rows) {
          const index_t rows = std::min(batch_rows, data.rows() - begin);
          engine.ingest(ConstMatrixView(data.row(begin), rows, data.cols()));
        }
        const double elapsed = timer.elapsed();
        sse = engine.stats().last_batch_sse;
        return elapsed;
      });
      // last_batch_sse is deterministic for the fixed replay (per-chunk
      // fold, sequential update), so it doubles as a determinism sentinel
      // in the CI strip-diff.
      ctx.row()
          .label("decay", format_double(decay))
          .label("batch_rows", static_cast<long long>(batch_rows))
          .stat("batches", static_cast<double>(batches))
          .stat("rows", static_cast<double>(data.rows()))
          .stat("last_batch_sse", sse)
          .timing("ms_per_batch",
                  total_s.scaled(1e3 / static_cast<double>(batches)))
          .timing("Mrows_per_s",
                  TimingAgg::single(static_cast<double>(data.rows()) /
                                    total_s.median / 1e6));
    }
  }
  ctx.chart("ms_per_batch");
  ctx.note(
      "One ingest step = batch assignment against frozen centroids "
      "(blocked SIMD kernel, work-stealing scheduler, per-chunk "
      "accumulators) + a fixed-tree fold + a sequential decayed update; "
      "larger batches amortize the fold and the pack, decay does not "
      "change the cost.");
}

const Registration reg({
    "stream_ingest",
    "Streaming ingestion: StreamEngine batch-update throughput",
    "ROADMAP serving extension (no paper exhibit); DESIGN.md §9",
    "ms_per_batch grows roughly linearly with batch_rows while rows/s "
    "improves then plateaus: per-batch fixed costs (centroid pack, chunk "
    "grid, fold) amortize away until the assign scan dominates. decay is "
    "free — it only changes the sequential update's coefficients.",
    410, run});

}  // namespace
