// Figure 7 — row cache hits per iteration vs the maximum achievable number
// of hits (= active points) on the Friendster-32 proxy.
//
// Shape to reproduce: after each lazy refresh (iterations 5, 10, 20, 40 by
// the exponential schedule) the hit count climbs toward the active-point
// curve; by late iterations hits ~= active points (near-100% hit rate), the
// paper's justification for lazy updates.
#include "bench_util.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

int main() {
  bench::header("Figure 7: row cache hits vs active points per iteration",
                "Figure 7 of the paper");

  data::GeneratorSpec spec = bench::friendster32_proxy();
  spec.n = bench::scaled(100000);
  bench::TempMatrixFile file(spec, "fig7");

  Options opts;
  opts.k = 10;
  opts.threads = 4;
  opts.max_iters = 50;
  opts.seed = 42;

  sem::SemOptions sopts;
  sopts.page_cache_bytes = 1 << 20;
  // Row cache sized to hold every active row once the set stabilizes.
  sopts.row_cache_bytes = spec.bytes();
  sopts.cache_update_interval = 5;

  sem::SemStats stats;
  sem::kmeans(file.path(), opts, sopts, &stats);

  std::printf("dataset: %s; I_cache=5 (refresh at 5,10,20,40)\n\n",
              spec.describe().c_str());
  std::printf("%-5s %14s %14s %10s\n", "iter", "cache hits", "active points",
              "hit rate");
  for (std::size_t i = 0; i < stats.per_iter.size(); ++i) {
    const auto& io = stats.per_iter[i];
    const double rate =
        io.active_rows == 0
            ? 0.0
            : static_cast<double>(io.row_cache_hits) / io.active_rows;
    std::printf("%-5zu %14llu %14llu %9.1f%%%s\n", i + 1,
                static_cast<unsigned long long>(io.row_cache_hits),
                static_cast<unsigned long long>(io.active_rows), 100 * rate,
                (i + 1 == 5 || i + 1 == 10 || i + 1 == 20 || i + 1 == 40)
                    ? "  <- RC refresh"
                    : "");
  }
  if (!stats.per_iter.empty()) {
    const auto& last = stats.per_iter.back();
    const double rate = last.active_rows == 0
                            ? 1.0
                            : static_cast<double>(last.row_cache_hits) /
                                  last.active_rows;
    std::printf("\nShape check: final-iteration hit rate %.1f%% (paper: "
                "near-100%% — knors runs at in-memory speed late in the "
                "run).\n", 100 * rate);
  }
  return 0;
}
