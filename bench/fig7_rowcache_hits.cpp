// Figure 7 — row cache hits per iteration vs the maximum achievable number
// of hits (= active points) on the Friendster-32 proxy, I_cache = 5 (lazy
// refreshes at iterations 5, 10, 20, 40 by the exponential schedule).
#include <cstdio>

#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

bool is_refresh_iter(std::size_t iter) {
  return iter == 5 || iter == 10 || iter == 20 || iter == 40;
}

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster32_proxy(ctx, 100000);
  TempMatrixFile file(spec, "fig7");
  ctx.dataset(spec);
  ctx.config("k", 10);
  ctx.config("cache_update_interval", 5);
  ctx.config("row_cache", "sized to hold every active row");

  Options opts;
  opts.k = 10;
  opts.threads = 4;
  opts.max_iters = 50;
  opts.seed = 42;

  sem::SemOptions sopts;
  sopts.page_cache_bytes = 1 << 20;
  // Row cache sized to hold every active row once the set stabilizes.
  sopts.row_cache_bytes = spec.bytes();
  sopts.cache_update_interval = 5;

  sem::SemStats stats;
  sem::kmeans(file.path(), opts, sopts, &stats);

  for (std::size_t i = 0; i < stats.per_iter.size(); ++i) {
    const auto& io = stats.per_iter[i];
    const double rate =
        io.active_rows == 0
            ? 0.0
            : static_cast<double>(io.row_cache_hits) / io.active_rows;
    ctx.row()
        .label("iter", static_cast<long long>(i + 1))
        .label("rc_refresh", is_refresh_iter(i + 1) ? "yes" : "")
        .stat("cache_hits", static_cast<double>(io.row_cache_hits))
        .stat("active_points", static_cast<double>(io.active_rows))
        .stat("hit_rate_pct", 100 * rate);
  }
  if (!stats.per_iter.empty()) {
    const auto& last = stats.per_iter.back();
    const double rate = last.active_rows == 0
                            ? 1.0
                            : static_cast<double>(last.row_cache_hits) /
                                  last.active_rows;
    char note[128];
    std::snprintf(note, sizeof note,
                  "final-iteration hit rate %.1f%% (paper: near-100%%)",
                  100 * rate);
    ctx.note(note);
  }
  ctx.chart("hit_rate_pct");
}

const Registration reg({
    "fig7_rowcache_hits",
    "Figure 7: row cache hits vs active points per iteration",
    "Figure 7 of the paper",
    "After each lazy refresh (iterations 5, 10, 20, 40) the hit count "
    "climbs toward the active-point curve; by late iterations hits ~= "
    "active points (near-100% hit rate) — the paper's justification for "
    "lazy updates: knors runs at in-memory speed late in the run.",
    70, run});

}  // namespace
