// Kernel microbenchmarks, harness-native: the inner loops whose cost model
// explains the macro results — distance kernels, per-thread centroid
// accumulation and merge, MTI bookkeeping, task queue throughput, and the
// collective used by knord. A dependency-free sibling of
// kernels_gbench.cpp (which needs google-benchmark and stays outside the
// registry); every number here is nanoseconds, i.e. a timing.
#include <algorithm>
#include <string>
#include <vector>

#include "core/distance.hpp"
#include "core/kernels/simd.hpp"
#include "core/local_centroids.hpp"
#include "core/mti.hpp"
#include "dist/comm.hpp"
#include "harness/datasets.hpp"
#include "numa/partitioner.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

DenseMatrix make_data(index_t n, index_t d) {
  data::GeneratorSpec spec;
  spec.n = n;
  spec.d = d;
  return data::generate(spec);
}

// Keep the optimizer from discarding a computed value.
volatile double g_sink = 0;

/// ns/op over `iters` calls of `op` (median of the context's repeats).
template <class Op>
TimingAgg per_op_ns(Context& ctx, std::size_t iters, Op&& op) {
  return ctx.measure([&] {
    const WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) op();
    return timer.elapsed() / static_cast<double>(iters) * 1e9;
  });
}

void run(Context& ctx) {
  // Smoke scale cuts the loop counts to a tenth; precision matters less
  // than speed there.
  const std::size_t base =
      ctx.scale() == Scale::kSmoke ? 20000 : 200000;
  ctx.config("loop_iters", static_cast<double>(base));

  for (const index_t d : {8u, 32u, 128u}) {
    const DenseMatrix m = make_data(2, d);
    const TimingAgg ns = per_op_ns(ctx, base, [&] {
      g_sink = dist_sq(m.row(0), m.row(1), d);
    });
    ctx.row().label("kernel", "dist_sq").label("arg", "d=" + std::to_string(d))
        .timing("ns_per_op", ns);
  }

  for (const int k : {10, 100}) {
    const index_t d = 16;
    const DenseMatrix point = make_data(1, d);
    const DenseMatrix centroids = make_data(static_cast<index_t>(k), d);
    value_t dist_out = 0;
    const TimingAgg ns = per_op_ns(ctx, base / 10, [&] {
      g_sink = nearest_centroid(point.row(0), centroids.data(), k, d,
                                &dist_out);
    });
    ctx.row().label("kernel", "nearest_centroid")
        .label("arg", "k=" + std::to_string(k))
        .timing("ns_per_op", ns);
  }

  // Per-ISA suites for the SIMD kernel layer: the dispatched dist_sq and
  // the blocked nearest-centroid kernel, each against the scalar
  // reference rows above. The speedup of nearest_blocked isa=avx2 (or
  // best) over isa=scalar at k=64 is the PR-4 acceptance number.
  for (const kernels::Isa isa : kernels::available_isas()) {
    const kernels::Ops& ops = kernels::ops_for(isa);
    const std::string tag = std::string(" isa=") + kernels::to_string(isa);
    for (const index_t d : {8u, 32u, 128u}) {
      const DenseMatrix m = make_data(2, d);
      const TimingAgg ns = per_op_ns(ctx, base, [&] {
        g_sink = ops.dist_sq(m.row(0), m.row(1), d);
      });
      ctx.row().label("kernel", "dist_sq_simd")
          .label("arg", "d=" + std::to_string(d) + tag)
          .timing("ns_per_op", ns);
    }
    for (const int k : {8, 64, 256}) {
      const index_t d = 32;  // mid-range d: the tile's target regime
      const DenseMatrix point = make_data(1, d);
      const DenseMatrix centroids = make_data(static_cast<index_t>(k), d);
      kernels::CentroidPack pack;
      pack.pack(centroids);
      value_t sq_out = 0;
      // Enough ops that the scalar-vs-vector ratio is stable even at
      // smoke scale (this ratio is a PR acceptance number).
      const std::size_t iters = std::max<std::size_t>(
          2000, base / (k > 64 ? 4 : 2));
      const TimingAgg ns = per_op_ns(ctx, iters, [&] {
        g_sink = ops.nearest_blocked(point.row(0), pack, &sq_out);
      });
      ctx.row().label("kernel", "nearest_blocked")
          .label("arg", "k=" + std::to_string(k) + tag)
          .timing("ns_per_op", ns);
    }
  }

  {
    const index_t d = 32;
    LocalCentroids acc(16, d);
    const DenseMatrix row = make_data(1, d);
    cluster_t c = 0;
    const TimingAgg ns = per_op_ns(ctx, base, [&] {
      acc.add(c, row.row(0));
      c = (c + 1) % 16;
    });
    ctx.row().label("kernel", "local_centroid_add").label("arg", "d=32")
        .timing("ns_per_op", ns);
  }

  {
    LocalCentroids a(100, 32), b(100, 32);
    const TimingAgg ns =
        per_op_ns(ctx, base / 100, [&] { a.merge(b); });
    ctx.row().label("kernel", "local_centroid_merge")
        .label("arg", "k=100 d=32")
        .timing("ns_per_op", ns);
  }

  for (const int k : {10, 100}) {
    const DenseMatrix cur = make_data(static_cast<index_t>(k), 32);
    DenseMatrix prev = cur;
    MtiState mti(1000, k);
    const TimingAgg ns = per_op_ns(ctx, base / 100, [&] {
      mti.prepare(prev, cur);
    });
    ctx.row().label("kernel", "mti_prepare")
        .label("arg", "k=" + std::to_string(k))
        .timing("ns_per_op", ns);
  }

  {
    const auto topo = numa::Topology::simulated(4, 8);
    const numa::Partitioner parts(1 << 18, 8, topo);
    sched::Scheduler sched(8, topo, /*bind=*/false);
    const std::size_t tasks_per_drain = (1 << 18) / 8192;
    const TimingAgg ns = ctx.measure([&] {
      const std::size_t drains = 200;
      const WallTimer timer;
      for (std::size_t i = 0; i < drains; ++i) {
        sched.begin_chunks(1 << 18, 8192, &parts);
        sched::Task task;
        for (int t = 0; t < 8; ++t)
          while (sched.next_chunk(t, task))
            g_sink = static_cast<double>(task.begin);
      }
      return timer.elapsed() /
             static_cast<double>(drains * tasks_per_drain) * 1e9;
    });
    ctx.row().label("kernel", "ws_chunk_claim").label("arg", "8T, 32 tasks")
        .timing("ns_per_op", ns);
  }

  for (const std::size_t count : {320u, 3200u}) {
    const TimingAgg ns = ctx.measure([&] {
      // Time only the collective loop, inside the rank threads and behind a
      // barrier, so cluster spawn/join cost is not amortized into it.
      double inner_s = 0;
      dist::Cluster cluster(4);
      cluster.run([&](dist::Communicator& comm) {
        std::vector<double> payload(count, 1.0);
        comm.barrier();
        const WallTimer timer;
        for (int i = 0; i < 50; ++i)
          comm.allreduce_sum(payload.data(), payload.size());
        if (comm.rank() == 0) inner_s = timer.elapsed();
        g_sink = payload[0];
      });
      return inner_s / 50.0 * 1e9;
    });
    ctx.row().label("kernel", "allreduce_sum")
        .label("arg", std::to_string(count) + " doubles, 4 ranks")
        .timing("ns_per_collective", ns);
  }

  ctx.chart("ns_per_op");
}

const Registration reg({
    "kernels_micro",
    "Kernel microbenchmarks: the inner-loop cost model",
    "supporting data for every figure (no single paper exhibit)",
    "dist_sq cost grows linearly with d and nearest_centroid with k; MTI "
    "bookkeeping (mti_prepare) is O(k^2) yet amortizes to noise per point; "
    "a task-queue pop costs microseconds (cheap enough for 8192-point "
    "tasks); one small allreduce is far below a single iteration's compute "
    "— the reason knord's speedup stays near-linear. The per-ISA rows "
    "(dist_sq_simd, nearest_blocked) show the vector kernels beating the "
    "scalar reference, widest at moderate k where the register-blocked "
    "tile keeps the point in registers while centroid rows stream.",
    400, run});

}  // namespace
