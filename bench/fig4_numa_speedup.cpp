// Figure 4 — speedup of NUMA-aware knori vs a NUMA-oblivious routine over
// thread counts, Friendster-8 proxy, k=10, MTI off (the figure measures the
// raw parallelization, so static scheduling is used — the paper: "when MTI
// pruning is disabled, statically scheduling thread tasks to locally
// allocated data partitions is sufficient").
//
// Substitution note (DESIGN.md §1): this container has one physical core,
// so wall-clock cannot show parallel speedup. Each routine's *makespan
// proxy* — the slowest worker's CPU time per iteration, with the
// remote-access latency model charged on every remote row — is what a
// dedicated-core machine's wall clock would track. We report, per thread
// count: the makespan-proxy speedup relative to that routine's own T=1 run
// (the paper's normalization) and the remote-access fraction that causes
// the gap.
#include "bench_util.hpp"
#include "core/knori.hpp"
#include "numa/cost_model.hpp"

using namespace knor;

int main() {
  bench::header("Figure 4: NUMA-aware vs NUMA-oblivious thread scaling",
                "Figure 4 of the paper");

  data::GeneratorSpec spec = bench::friendster8_proxy();
  spec.n = bench::scaled(60000);
  const DenseMatrix m = data::generate(spec);
  std::printf("dataset: %s; simulated 4-node topology; remote access "
              "penalty 100ns/row (~2x local access cost, the 4-socket Xeon ratio)\n\n", spec.describe().c_str());

  Options base;
  base.k = 10;
  base.max_iters = 6;
  base.prune = false;              // Figure 4 measures raw parallelization
  base.sched = sched::SchedPolicy::kStatic;
  base.numa_nodes = 4;
  base.seed = 42;

  numa::RemotePenalty::ns().store(100);
  double aware_t1 = 0, oblivious_t1 = 0;
  std::printf("%-8s | %-30s | %-30s\n", "", "knori (NUMA-aware)",
              "NUMA-oblivious");
  std::printf("%-8s | %13s %16s | %13s %16s\n", "threads", "speedup",
              "remote-frac", "speedup", "remote-frac");
  for (const int threads : {1, 2, 4, 8, 16, 32}) {
    Options aware = base;
    aware.threads = threads;
    aware.numa_aware = true;
    const Result a = kmeans(m.const_view(), aware);

    Options oblivious = base;
    oblivious.threads = threads;
    oblivious.numa_aware = false;
    const Result o = kmeans(m.const_view(), oblivious);

    if (threads == 1) {
      aware_t1 = a.makespan_per_iter();
      oblivious_t1 = o.makespan_per_iter();
    }
    const auto frac = [](const Result& res) {
      const double total = static_cast<double>(res.counters.local_accesses +
                                               res.counters.remote_accesses);
      return total == 0 ? 0.0 : res.counters.remote_accesses / total;
    };
    std::printf("%-8d | %12.2fx %15.1f%% | %12.2fx %15.1f%%\n", threads,
                aware_t1 / a.makespan_per_iter(), 100 * frac(a),
                oblivious_t1 / o.makespan_per_iter(), 100 * frac(o));
  }
  numa::RemotePenalty::ns().store(0);

  std::printf("\nShape check (paper Fig. 4): both scale near-linearly but "
              "the oblivious routine has the lower constant — its remote "
              "fraction converges to (N-1)/N = 75%%, every remote access "
              "paying the interconnect penalty, while knori stays 0%% "
              "remote at every T.\n");
  return 0;
}
