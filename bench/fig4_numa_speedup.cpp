// Figure 4 — speedup of NUMA-aware knori vs a NUMA-oblivious routine over
// thread counts, Friendster-8 proxy, k=10, MTI off (the figure measures the
// raw parallelization, so static scheduling is used — the paper: "when MTI
// pruning is disabled, statically scheduling thread tasks to locally
// allocated data partitions is sufficient").
//
// Substitution note (DESIGN.md §1.6): this container has one physical core,
// so wall-clock cannot show parallel speedup. Each routine's *makespan
// proxy* — the slowest worker's CPU time per iteration, with the
// remote-access latency model charged on every remote row — is what a
// dedicated-core machine's wall clock would track. Per thread count we
// report the makespan-proxy speedup relative to that routine's own T=1 run
// (the paper's normalization) and the remote-access fraction causing the
// gap. The remote fraction is deterministic here because static scheduling
// has no work stealing.
#include "core/knori.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster8_proxy(ctx, 60000);
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec);
  ctx.config("topology", "simulated 4-node");
  ctx.config("remote_penalty_ns", 100);
  ctx.config("k", 10);
  ctx.config("sched", "static (no MTI, per the paper)");

  Options base;
  base.k = 10;
  base.max_iters = 6;
  base.prune = false;  // Figure 4 measures raw parallelization
  base.sched = sched::SchedPolicy::kStatic;
  base.numa_nodes = 4;
  base.seed = 42;

  const RemotePenaltyGuard penalty(100);
  double aware_t1 = 0, oblivious_t1 = 0;
  for (const int threads : {1, 2, 4, 8, 16, 32}) {
    for (const bool aware : {true, false}) {
      Options opts = base;
      opts.threads = threads;
      opts.numa_aware = aware;
      TimingAgg makespan;
      const Result res =
          ctx.run([&] { return kmeans(m.const_view(), opts); }, &makespan);
      double& t1 = aware ? aware_t1 : oblivious_t1;
      if (threads == 1) t1 = makespan.median;
      const double total = static_cast<double>(res.counters.local_accesses +
                                               res.counters.remote_accesses);
      ctx.row()
          .label("threads", threads)
          .label("routine", aware ? "knori (NUMA-aware)" : "NUMA-oblivious")
          .stat("remote_frac_pct",
                total == 0 ? 0.0 : 100.0 * res.counters.remote_accesses / total)
          .timing("speedup_vs_t1", makespan.median > 0 ? t1 / makespan.median : 0.0)
          .timing("makespan_ms", makespan.scaled(1e3));
    }
  }
  ctx.chart("speedup_vs_t1");
}

const Registration reg({
    "fig4_numa_speedup",
    "Figure 4: NUMA-aware vs NUMA-oblivious thread scaling",
    "Figure 4 of the paper",
    "Both routines scale near-linearly, but the oblivious routine has the "
    "lower constant: its remote fraction converges to (N-1)/N = 75%, every "
    "remote access paying the interconnect penalty, while knori stays 0% "
    "remote at every thread count.",
    40, run});

}  // namespace
