// Table 2 — the datasets under evaluation. Prints the proxy dataset
// inventory used by every other bench, alongside the paper's originals and
// the scale factor (this reproduction runs in a container; DESIGN.md §1
// documents the substitution).
#include "bench_util.hpp"

using namespace knor;

namespace {
void row(const char* paper_name, const char* paper_dims,
         const char* paper_size, const data::GeneratorSpec& proxy) {
  std::printf("%-18s %-16s %-8s | %-52s %8.1f MB\n", paper_name, paper_dims,
              paper_size, proxy.describe().c_str(), proxy.bytes() / 1e6);
}
}  // namespace

int main() {
  bench::header("Table 2: datasets under evaluation (paper vs proxy)",
                "Table 2 of the paper");
  std::printf("%-18s %-16s %-8s | %-52s %11s\n", "paper dataset", "n x d",
              "size", "proxy (this reproduction)", "proxy size");
  row("Friendster-8", "66M x 8", "4GB", bench::friendster8_proxy());
  row("Friendster-32", "66M x 32", "16GB", bench::friendster32_proxy());
  row("RM856M", "856M x 16", "103GB", bench::rm_proxy());
  row("RM1B", "1.1B x 32", "251GB", bench::rm_proxy(1000000));
  row("RU2B", "2.1B x 64", "1.1TB", bench::ru_proxy());
  std::printf("\nProxies preserve the property each experiment depends on: "
              "natural clusters (pruning-friendly) for Friendster, uniform "
              "randomness (pruning-hostile worst case) for RM/RU.\n");
  return 0;
}
