// Table 2 — the datasets under evaluation. Emits the proxy dataset
// inventory used by every other suite, alongside the paper's originals and
// the scale substitution (DESIGN.md §1.3). Fully deterministic: the
// canonical fingerprint/determinism reference suite.
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void emit(Context& ctx, const char* paper_name, const char* paper_dims,
          const char* paper_size, const data::GeneratorSpec& proxy) {
  ctx.row()
      .label("paper_dataset", paper_name)
      .label("paper_n_x_d", paper_dims)
      .label("paper_size", paper_size)
      .label("proxy", proxy.describe())
      .stat("proxy_mb", proxy.bytes() / 1e6);
}

void run(Context& ctx) {
  emit(ctx, "Friendster-8", "66M x 8", "4GB", friendster8_proxy(ctx));
  emit(ctx, "Friendster-32", "66M x 32", "16GB", friendster32_proxy(ctx));
  emit(ctx, "RM856M", "856M x 16", "103GB", rm_proxy(ctx));
  emit(ctx, "RM1B", "1.1B x 32", "251GB", rm_proxy(ctx, 1000000));
  emit(ctx, "RU2B", "2.1B x 64", "1.1TB", ru_proxy(ctx));
  ctx.note("Proxies preserve the property each experiment depends on: "
           "natural clusters (pruning-friendly) for Friendster, uniform "
           "randomness (pruning-hostile worst case) for RM/RU.");
  ctx.chart("proxy_mb");
}

const Registration reg({
    "table2_datasets",
    "Table 2: datasets under evaluation (paper vs proxy)",
    "Table 2 of the paper",
    "Inventory, not a measurement: each paper dataset maps to a generated "
    "proxy thousands of times smaller that preserves the property the "
    "experiments depend on (cluster structure vs uniform randomness).",
    220, run});

}  // namespace
