// Figure 5 — the partitioned NUMA-aware task scheduler vs FIFO and static
// scheduling, with MTI enabled (pruning is the skew source), k = 10..100.
//
// On one core the wall-time gap compresses, so besides the makespan proxy
// the suite reports the scheduler's task distribution (own / same-node
// steals / remote steals): static has no steals by construction
// (stragglers keep their backlog), while the NUMA-aware queue rebalances
// with mostly same-node steals. Steal counts depend on thread timing, so
// they live in the timings bucket, not stats.
#include <algorithm>

#include "core/knori.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster8_proxy(ctx, 120000);
  // Real-world matrices arrive crawl-/community-ordered: rows of the same
  // cluster are adjacent, so MTI's pruning rate differs *across partitions*
  // — the skew source the partitioned scheduler exists for.
  spec.locality = 0.9;
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec);
  ctx.config("threads", 8);
  ctx.config("topology", "simulated 4-node");
  ctx.config("remote_penalty_ns", 100);
  ctx.config("task_size", 2048);
  ctx.config("mti", "on");

  const RemotePenaltyGuard penalty(100);
  for (const int k : {10, 20, 50, 100}) {
    for (const auto policy :
         {sched::SchedPolicy::kNumaAware, sched::SchedPolicy::kFifo,
          sched::SchedPolicy::kStatic}) {
      Options opts;
      opts.k = k;
      opts.threads = 8;
      opts.numa_nodes = 4;
      opts.max_iters = 8;
      opts.sched = policy;
      opts.task_size = 2048;
      opts.seed = 42;
      TimingAgg makespan;
      const Result res =
          ctx.run([&] { return kmeans(m.const_view(), opts); }, &makespan);
      // Imbalance = slowest / mean worker busy time (1.0 = perfect).
      double mean_busy = 0, max_busy = 0;
      for (const double busy : res.thread_busy_s) {
        mean_busy += busy;
        max_busy = std::max(max_busy, busy);
      }
      mean_busy /= static_cast<double>(res.thread_busy_s.size());
      ctx.row()
          .label("k", k)
          .label("scheduler", sched::to_string(policy))
          .timing("makespan_ms", makespan.scaled(1e3))
          .timing("imbalance", mean_busy > 0 ? max_busy / mean_busy : 1.0)
          .timing("tasks_own", static_cast<double>(res.counters.tasks_own))
          .timing("tasks_same_node",
                  static_cast<double>(res.counters.tasks_same_node))
          .timing("tasks_remote_node",
                  static_cast<double>(res.counters.tasks_remote_node));
    }
  }
  ctx.chart("makespan_ms");
}

const Registration reg({
    "fig5_scheduler",
    "Figure 5: task scheduler comparison under MTI skew",
    "Figure 5 of the paper",
    "Static scheduling's imbalance (and thus makespan) grows with k as MTI "
    "skew concentrates work; the NUMA-aware queue stays balanced with "
    "predominantly same-node steals; FIFO balances too but steals remote, "
    "paying the interconnect on stolen tasks.",
    50, run});

}  // namespace
