// Figure 5 — the NUMA-partitioned work-stealing scheduler vs the flat
// shared queue (the frameworks' thread-pool model) and static scheduling.
//
// Two configurations:
//
//  * kmeans-mti — the paper's setup: knori with MTI enabled (pruning is the
//    skew source), k = 10..100. On one physical socket the wall-time gap
//    compresses, so besides the makespan proxy the rows report the
//    scheduler's task distribution (own / same-node steals / remote
//    steals) and the busy-time imbalance.
//
//  * skewed-synthetic — an adversarial scheduler-only workload: the first
//    half of the chunk grid costs ~16x per item, which with 8 threads over
//    4 nodes means every node holds one heavy thread (0-3) and one light
//    thread (4-7); every item executed off its home node is charged the
//    modeled interconnect penalty. The REAL per-node deques and steal
//    policy are exercised, but through a deterministic discrete-event
//    simulation — the virtual worker with the earliest finish time claims
//    next — because on this container's single core (DESIGN.md §1) a
//    wall-clock race can't exhibit load balancing at all: timeslice bursts
//    let one thread drain every queue. The simulated makespans are pure
//    functions of the policy, so they are *stats* (bit-identical across
//    runs, diffed by the --strip determinism gate). Static scheduling
//    strands each heavy block on its single owner (~2x the balanced
//    makespan); the flat queue balances but executes ~3/4 of all items
//    remotely (penalty on every one); hierarchical work stealing balances
//    *within* each node's shared deque — penalty-free — and must be
//    strictly fastest.
#include <algorithm>
#include <cmath>

#include "core/knori.hpp"
#include "harness/datasets.hpp"
#include "numa/partitioner.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void kmeans_mti_config(Context& ctx) {
  data::GeneratorSpec spec = friendster8_proxy(ctx, 120000);
  // Real-world matrices arrive crawl-/community-ordered: rows of the same
  // cluster are adjacent, so MTI's pruning rate differs *across partitions*
  // — the skew source the partitioned scheduler exists for.
  spec.locality = 0.9;
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec);
  const RemotePenaltyGuard penalty(100);
  for (const int k : {10, 20, 50, 100}) {
    for (const auto policy :
         {sched::SchedPolicy::kNumaAware, sched::SchedPolicy::kFifo,
          sched::SchedPolicy::kStatic}) {
      Options opts;
      opts.k = k;
      opts.threads = 8;
      opts.numa_nodes = 4;
      opts.max_iters = 8;
      opts.sched = policy;
      opts.task_size = 2048;
      opts.seed = 42;
      TimingAgg makespan;
      const Result res =
          ctx.run([&] { return kmeans(m.const_view(), opts); }, &makespan);
      // Imbalance = slowest / mean worker busy time (1.0 = perfect).
      double mean_busy = 0, max_busy = 0;
      for (const double busy : res.thread_busy_s) {
        mean_busy += busy;
        max_busy = std::max(max_busy, busy);
      }
      mean_busy /= static_cast<double>(res.thread_busy_s.size());
      ctx.row()
          .label("config", "kmeans-mti")
          .label("k", k)
          .label("scheduler", sched::to_string(policy))
          .timing("makespan_ms", makespan.scaled(1e3))
          .timing("imbalance", mean_busy > 0 ? max_busy / mean_busy : 1.0)
          .timing("tasks_own", static_cast<double>(res.counters.tasks_own))
          .timing("tasks_same_node",
                  static_cast<double>(res.counters.tasks_same_node))
          .timing("tasks_remote_node",
                  static_cast<double>(res.counters.tasks_remote_node));
    }
  }
}

void skewed_synthetic_config(Context& ctx) {
  const int threads = 8;
  const index_t items = ctx.scaled(2000000);
  // Resolve the knob exactly like begin_chunks will (explicit sizes are
  // floored to the kMaxChunks grid cap), so the heavy-half predicate below
  // matches the grid the scheduler actually lays.
  const index_t task_size = sched::Scheduler::resolve_task_size(items, 256);
  constexpr double kUnitNs = 10.0;      // modeled cost of one local access
  constexpr double kPenaltyNs = 100.0;  // extra cost of a remote access
  constexpr int kHeavyWeight = 16;
  ctx.config("skew_items", static_cast<double>(items));
  ctx.config("skew_task_size", static_cast<double>(task_size));
  ctx.config("skew_heavy_fraction", 0.5);
  ctx.config("skew_heavy_weight", kHeavyWeight);
  ctx.config("skew_unit_ns", kUnitNs);
  ctx.config("skew_remote_penalty_ns", kPenaltyNs);

  const auto topo = numa::Topology::simulated(4, threads);
  const numa::Partitioner parts(items, threads, topo);
  const auto chunks = static_cast<std::size_t>(
      sched::Scheduler::num_chunks(items, task_size));

  for (const auto policy :
       {sched::SchedPolicy::kNumaAware, sched::SchedPolicy::kFifo,
        sched::SchedPolicy::kStatic}) {
    sched::Scheduler sched(threads, topo, /*bind=*/true, policy);
    sched.begin_chunks(items, task_size, &parts);

    // Discrete-event simulation of the parallel schedule: the idle worker
    // with the earliest virtual clock (ties: lowest id) claims its next
    // chunk from the real deques and advances by the modeled cost.
    std::vector<double> clock_ns(static_cast<std::size_t>(threads), 0.0);
    std::vector<bool> done(static_cast<std::size_t>(threads), false);
    double checksum = 0.0;
    int active = threads;
    while (active > 0) {
      int w = -1;
      for (int t = 0; t < threads; ++t)
        if (!done[static_cast<std::size_t>(t)] &&
            (w < 0 || clock_ns[static_cast<std::size_t>(t)] <
                          clock_ns[static_cast<std::size_t>(w)]))
          w = t;
      sched::Task task;
      if (!sched.next_chunk(w, task)) {
        done[static_cast<std::size_t>(w)] = true;
        --active;
        continue;
      }
      const bool remote = task.home_node != sched.node_of_thread(w);
      const double weight = task.chunk < chunks / 2 ? kHeavyWeight : 1.0;
      const auto size = static_cast<double>(task.size());
      clock_ns[static_cast<std::size_t>(w)] +=
          size * (weight * kUnitNs + (remote ? kPenaltyNs : 0.0));
      checksum += static_cast<double>(task.chunk) * weight;
    }
    double makespan_ns = 0.0;
    for (const double c : clock_ns) makespan_ns = std::max(makespan_ns, c);

    // Everything here is a pure function of the policy: stats, not timings
    // — the --strip determinism gate diffs them across runs.
    const sched::StealStats steals = sched.total_stats();
    ctx.row()
        .label("config", "skewed-synthetic")
        .label("scheduler", sched::to_string(policy))
        .stat("makespan_model_ms", makespan_ns / 1e6)
        .stat("checksum", checksum)
        .stat("tasks_own", static_cast<double>(steals.own))
        .stat("tasks_same_node", static_cast<double>(steals.same_node))
        .stat("tasks_remote_node", static_cast<double>(steals.remote_node));
  }
}

void run(Context& ctx) {
  ctx.config("threads", 8);
  ctx.config("topology", "simulated 4-node");
  ctx.config("remote_penalty_ns", 100);
  ctx.config("task_size", 2048);
  ctx.config("mti", "on");
  kmeans_mti_config(ctx);
  skewed_synthetic_config(ctx);
  ctx.chart("makespan_ms");
}

const Registration reg({
    "fig5_scheduler",
    "Figure 5: task scheduler comparison under MTI and synthetic skew",
    "Figure 5 of the paper",
    "Static scheduling's imbalance (and thus makespan) grows with skew as "
    "stragglers keep their backlog; the flat shared queue balances but pays "
    "the interconnect on ~3/4 of its accesses; the NUMA-partitioned "
    "work-stealing scheduler balances with predominantly node-local claims "
    "and is strictly fastest on the skewed-task configuration.",
    50, run});

}  // namespace
