// Figure 5 — the partitioned NUMA-aware task scheduler vs FIFO and static
// scheduling, with MTI enabled (pruning is the skew source), k = 10..100.
//
// Shape to reproduce: at k=10 the three schedulers are comparable; as k
// grows the skew from pruning widens and the NUMA-aware queue wins (paper:
// >40% at k=100). On one core the wall-time gap compresses, so the bench
// also reports the scheduler's task distribution (own / same-node steals /
// remote steals): static has no steals by construction (stragglers keep
// their backlog), while the NUMA-aware queue rebalances with mostly
// same-node steals.
#include <algorithm>

#include "bench_util.hpp"
#include "core/knori.hpp"
#include "numa/cost_model.hpp"

using namespace knor;

int main() {
  bench::header("Figure 5: task scheduler comparison under MTI skew",
                "Figure 5 of the paper");

  data::GeneratorSpec spec = bench::friendster8_proxy();
  spec.n = bench::scaled(120000);
  // Real-world matrices arrive crawl-/community-ordered: rows of the same
  // cluster are adjacent, so MTI's pruning rate differs *across partitions*
  // — the skew source the partitioned scheduler exists for.
  spec.locality = 0.9;
  const DenseMatrix m = data::generate(spec);
  std::printf("dataset: %s; T=8 over simulated 4-node topology; MTI on; "
              "task size 2048\n\n", spec.describe().c_str());

  numa::RemotePenalty::ns().store(100);
  std::printf("%-6s %-12s %13s %10s | %8s %10s %8s\n", "k", "scheduler",
              "makespan(ms)", "imbalance", "own", "same-node", "remote");
  for (const int k : {10, 20, 50, 100}) {
    for (const auto policy :
         {sched::SchedPolicy::kNumaAware, sched::SchedPolicy::kFifo,
          sched::SchedPolicy::kStatic}) {
      Options opts;
      opts.k = k;
      opts.threads = 8;
      opts.numa_nodes = 4;
      opts.max_iters = 8;
      opts.sched = policy;
      opts.task_size = 2048;
      opts.seed = 42;
      const Result res = kmeans(m.const_view(), opts);
      // Makespan proxy: the slowest worker's CPU time per iteration — the
      // figure a dedicated-core machine's wall clock would show. Imbalance
      // = slowest / mean worker (1.0 = perfect balance).
      double mean_busy = 0;
      double max_busy = 0;
      for (double busy : res.thread_busy_s) {
        mean_busy += busy;
        max_busy = std::max(max_busy, busy);
      }
      mean_busy /= static_cast<double>(res.thread_busy_s.size());
      std::printf("%-6d %-12s %13.2f %10.2f | %8llu %10llu %8llu\n", k,
                  sched::to_string(policy), res.makespan_per_iter() * 1e3,
                  mean_busy > 0 ? max_busy / mean_busy : 1.0,
                  static_cast<unsigned long long>(res.counters.tasks_own),
                  static_cast<unsigned long long>(res.counters.tasks_same_node),
                  static_cast<unsigned long long>(
                      res.counters.tasks_remote_node));
    }
    std::printf("\n");
  }
  numa::RemotePenalty::ns().store(0);

  std::printf("Shape check (paper Fig. 5): static scheduling's imbalance "
              "(and thus makespan) grows with k as MTI skew concentrates "
              "work; the NUMA-aware queue stays balanced with "
              "predominantly same-node steals; FIFO balances too but steals "
              "remote (paying the interconnect on stolen tasks).\n");
  return 0;
}
