// Ablation — blocked-GEMM cache-tile shape (the --gemm-tile knob).
//
// Sweeps the (row block x centroid sweep) cache tile of the tiled GEMM
// engine at a fixed large k and reports per-iteration time. Because the
// §12 determinism contract makes the tile a pure performance knob, every
// cell of this sweep produces bitwise-identical clusterings — the sweep is
// how a deployment autotunes the shape for its cache hierarchy, and the
// harness verifies the invariance as it goes (a wrong result turns the row
// into a hard failure, so the ablation doubles as a determinism check).
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/engines.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster8_proxy(ctx, 80000);
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec);
  ctx.config("threads", 8);
  ctx.config("k", 256);

  const Result* ref = nullptr;
  Result first;
  for (const char* tile : {"auto", "16x64", "64x64", "64x256", "256x256",
                           "1024x64"}) {
    Options opts;
    opts.k = 256;
    opts.threads = 8;
    opts.numa_nodes = 4;
    opts.max_iters = 5;
    opts.seed = 42;
    opts.gemm_tile = parse_gemm_tile_or_throw(tile, "tile");

    TimingAgg iter_ms;
    Result res =
        ctx.run([&] { return gemm_kmeans(m.const_view(), opts); }, &iter_ms);
    if (ref == nullptr) {
      first = std::move(res);
      ref = &first;
    } else if (res.assignments != ref->assignments ||
               std::memcmp(res.centroids.data(), ref->centroids.data(),
                           ref->centroids.size() * sizeof(value_t)) != 0) {
      throw std::runtime_error(
          std::string("abl_gemm_tile: tile ") + tile +
          " changed the clustering — §12 determinism contract violated");
    }
    ctx.row()
        .label("tile", std::string(tile))
        .stat("iters", static_cast<double>(ref->iters))
        .timing("gemm_ms_per_iter", iter_ms.scaled(1e3));
  }
  ctx.chart("gemm_ms_per_iter");
}

const Registration reg({
    "abl_gemm_tile",
    "Ablation: blocked-GEMM cache-tile shape",
    "DESIGN.md §12 tile autotuning",
    "A broad flat optimum around the auto shape (64 rows x 256 centroids): "
    "row blocks too small waste the packed panels' reuse, centroid sweeps "
    "too wide spill L2, and results stay bitwise identical everywhere "
    "(the sweep hard-fails otherwise).",
    336, run});

}  // namespace
