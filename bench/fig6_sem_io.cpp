// Figure 6 — the effect of the row cache and MTI on knors I/O
// (Friendster-32 proxy, k=10).
//
//  6a: per-iteration data requested vs data read from "SSD", with the row
//      cache enabled vs disabled (rows labeled part=6a).
//  6b: total data requested vs read for knors / knors- / knors-- (part=6b).
//
// Bytes *requested* are algorithmic (driven by the deterministic MTI
// activity pattern) and report as stats; bytes *read* depend on concurrent
// page-cache misses (two threads can race to fault the same page), so they
// report as timings.
#include <algorithm>

#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster32_proxy(ctx, 100000);
  TempMatrixFile file(spec, "fig6");
  ctx.dataset(spec);
  ctx.config("on_disk_mb", spec.bytes() / 1e6);
  ctx.config("k", 10);
  ctx.config("page_size", 4096);
  ctx.config("row_cache", "data/2 (the paper's 512MB : 16GB proportion)");

  Options opts;
  opts.k = 10;
  opts.threads = 4;
  opts.max_iters = 30;
  opts.seed = 42;

  sem::SemOptions sopts;
  sopts.page_size = 4096;  // the paper's minimum-read size
  sopts.page_cache_bytes = 1 << 20;
  // The paper sizes the RC (512MB) to hold the converged active set of the
  // 16GB dataset; the equivalent proportion here is ~data/2.
  sopts.row_cache_bytes = static_cast<std::size_t>(spec.bytes() / 2);

  struct Config {
    const char* name;
    bool prune;
    bool rc;
    sem::SemStats stats;
  };
  std::vector<Config> configs = {{"knors", true, true, {}},
                                 {"knors-", true, false, {}},
                                 {"knors--", false, false, {}}};
  for (auto& config : configs) {
    Options o = opts;
    o.prune = config.prune;
    sem::SemOptions so = sopts;
    so.row_cache_enabled = config.rc;
    sem::kmeans(file.path(), o, so, &config.stats);
  }

  // 6a: per-iteration I/O, MTI on, RC on vs off.
  const auto& rc_iters = configs[0].stats.per_iter;
  const auto& norc_iters = configs[1].stats.per_iter;
  const std::size_t iters = std::min(rc_iters.size(), norc_iters.size());
  for (std::size_t i = 0; i < iters; ++i) {
    ctx.row()
        .label("part", "6a")
        .label("iter", static_cast<long long>(i + 1))
        .stat("knors_req_mb", rc_iters[i].bytes_requested / 1e6)
        .stat("noRC_req_mb", norc_iters[i].bytes_requested / 1e6)
        .timing("knors_read_mb", rc_iters[i].bytes_read / 1e6)
        .timing("noRC_read_mb", norc_iters[i].bytes_read / 1e6);
  }

  // 6b: totals over the run.
  for (const auto& config : configs) {
    ctx.row()
        .label("part", "6b")
        .label("variant", config.name)
        .stat("requested_mb", config.stats.total_requested() / 1e6)
        .timing("read_mb", config.stats.total_read() / 1e6);
  }
  ctx.chart("read_mb");
}

const Registration reg({
    "fig6_sem_io",
    "Figure 6: row cache + MTI effect on knors I/O",
    "Figures 6a/6b of the paper",
    "6a: without the row cache, bytes read stay well above bytes requested "
    "(4KB-page fragmentation); with the RC both collapse after the first "
    "refresh. 6b: knors-- requests and reads everything every iteration "
    "(requested = dataset x iterations); knors- prunes requests but "
    "fragmentation keeps reads high; knors cuts reads by roughly an order "
    "of magnitude.",
    60, run});

}  // namespace
