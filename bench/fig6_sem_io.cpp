// Figure 6 — the effect of the row cache and MTI on knors I/O
// (Friendster-32 proxy, k=10).
//
//  6a: per-iteration data requested vs data read from "SSD", with the row
//      cache enabled vs disabled.
//  6b: total data requested vs read for knors / knors- / knors--.
//
// Shape to reproduce: (a) without the RC, bytes read stay well above bytes
// requested (4KB-page fragmentation); with the RC both collapse after the
// first refresh. (b) knors-- requests and reads everything every iteration;
// knors- prunes requests but fragmentation keeps reads high; knors cuts
// reads by roughly an order of magnitude.
#include "bench_util.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

int main() {
  bench::header("Figure 6: row cache + MTI effect on knors I/O",
                "Figures 6a/6b of the paper");

  data::GeneratorSpec spec = bench::friendster32_proxy();
  spec.n = bench::scaled(100000);
  bench::TempMatrixFile file(spec, "fig6");
  std::printf("dataset: %s (%.1f MB on disk)\n", spec.describe().c_str(),
              spec.bytes() / 1e6);

  Options opts;
  opts.k = 10;
  opts.threads = 4;
  opts.max_iters = 30;
  opts.seed = 42;

  sem::SemOptions sopts;
  sopts.page_size = 4096;  // the paper's minimum-read size
  sopts.page_cache_bytes = 1 << 20;
  // The paper sizes the RC (512MB) to hold the converged active set of the
  // 16GB dataset; the equivalent proportion here is ~data/2.
  sopts.row_cache_bytes = static_cast<std::size_t>(spec.bytes() / 2);

  struct Config {
    const char* name;
    bool prune;
    bool rc;
    sem::SemStats stats;
  };
  std::vector<Config> configs = {{"knors", true, true, {}},
                                 {"knors-", true, false, {}},
                                 {"knors--", false, false, {}}};
  for (auto& config : configs) {
    Options o = opts;
    o.prune = config.prune;
    sem::SemOptions so = sopts;
    so.row_cache_enabled = config.rc;
    sem::kmeans(file.path(), o, so, &config.stats);
  }

  std::printf("\n--- 6a: per-iteration I/O, MTI on, RC on vs off (MB) ---\n");
  std::printf("%-5s | %12s %12s | %12s %12s\n", "iter", "knors req",
              "knors read", "noRC req", "noRC read");
  const auto& rc_iters = configs[0].stats.per_iter;
  const auto& norc_iters = configs[1].stats.per_iter;
  const std::size_t iters = std::min(rc_iters.size(), norc_iters.size());
  for (std::size_t i = 0; i < iters; ++i) {
    std::printf("%-5zu | %12.2f %12.2f | %12.2f %12.2f\n", i + 1,
                rc_iters[i].bytes_requested / 1e6,
                rc_iters[i].bytes_read / 1e6,
                norc_iters[i].bytes_requested / 1e6,
                norc_iters[i].bytes_read / 1e6);
  }

  std::printf("\n--- 6b: totals over the run (MB) ---\n");
  std::printf("%-8s %14s %14s\n", "variant", "requested", "read-from-SSD");
  for (const auto& config : configs)
    std::printf("%-8s %14.1f %14.1f\n", config.name,
                config.stats.total_requested() / 1e6,
                config.stats.total_read() / 1e6);
  std::printf("\nShape check: read(knors) << read(knors-) ~<= read(knors--); "
              "requested(knors--) == dataset x iterations.\n");
  return 0;
}
