// Figure 10 — single-node scalability on the uniform-random RM/RU proxies
// (the paper's 100GB-1TB datasets, scaled to the container; k=10).
//
//  10a: time per iteration of knori / knors / stand-ins.
//  10b: memory consumption of the same.
//
// RU2B models the paper's beyond-memory dataset: in-memory engines are
// "unable to run" under the simulated budget (rows emitted with
// feasible=no), only the SEM routine completes.
#include "baselines/frameworks.hpp"
#include "common/memory_tracker.hpp"
#include "core/knori.hpp"
#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  struct DatasetCase {
    const char* name;
    data::GeneratorSpec spec;
    bool in_memory_feasible;  // simulated memory budget (paper: 1TB box)
  };
  std::vector<DatasetCase> cases;
  cases.push_back({"RM-proxy", rm_proxy(ctx, 300000), true});
  data::GeneratorSpec rm_big = rm_proxy(ctx, 600000);
  rm_big.d = 32;
  cases.push_back({"RM1B-proxy", rm_big, true});
  // RU2B: the dataset that exceeds memory on the paper's machine. We model
  // the budget: in-memory engines are "unable to run" (skipped), SEM runs.
  cases.push_back({"RU2B-proxy", ru_proxy(ctx), false});

  ctx.config("k", 10);
  for (const auto& c : cases) ctx.dataset(c.spec, c.name);

  auto& mt = MemoryTracker::instance();
  for (const auto& dataset : cases) {
    TempMatrixFile file(dataset.spec, dataset.name);
    Options opts;
    opts.k = 10;
    opts.threads = 4;
    opts.max_iters = 5;
    opts.seed = 42;

    if (dataset.in_memory_feasible) {
      const DenseMatrix m = data::generate(dataset.spec);
      mt.reset();
      TimingAgg wall, makespan;
      ctx.run([&] { return kmeans(m.const_view(), opts); }, &makespan, &wall);
      ctx.row()
          .label("dataset", dataset.name)
          .label("system", "knori")
          .label("feasible", "yes")
          .timing("iter_ms", wall.scaled(1e3))
          .timing("makespan_ms", makespan.scaled(1e3))
          .timing("peak_mb", mt.peak_bytes() / 1e6);
      Options nop = opts;
      nop.prune = false;
      const std::size_t rss0 = current_rss_bytes();
      ctx.run([&] { return baselines::h2o_like(m.const_view(), nop); },
              &makespan, &wall);
      ctx.row()
          .label("dataset", dataset.name)
          .label("system", "H2O*")
          .label("feasible", "yes")
          .timing("iter_ms", wall.scaled(1e3))
          .timing("makespan_ms", makespan.scaled(1e3))
          .timing("peak_mb", (current_rss_bytes() - rss0) / 1e6 +
                                 dataset.spec.bytes() / 1e6);
      ctx.run([&] { return baselines::mllib_like(m.const_view(), nop); },
              &makespan, &wall);
      ctx.row()
          .label("dataset", dataset.name)
          .label("system", "MLlib* (shuffle 2x mem)")
          .label("feasible", "yes")
          .timing("iter_ms", wall.scaled(1e3))
          .timing("makespan_ms", makespan.scaled(1e3));
    } else {
      for (const char* system : {"knori", "H2O*", "MLlib*"}) {
        ctx.row()
            .label("dataset", dataset.name)
            .label("system", system)
            .label("feasible", "no (exceeds simulated memory budget)")
            .stat("completed", 0);
      }
    }

    sem::SemOptions sopts;
    sopts.page_cache_bytes = 4 << 20;
    sopts.row_cache_bytes = 2 << 20;
    mt.reset();
    TimingAgg wall, makespan;
    ctx.run([&] { return sem::kmeans(file.path(), opts, sopts); }, &makespan,
            &wall);
    ctx.row()
        .label("dataset", dataset.name)
        .label("system", "knors")
        .label("feasible", "yes")
        .timing("iter_ms", wall.scaled(1e3))
        .timing("makespan_ms", makespan.scaled(1e3))
        .timing("peak_mb", mt.peak_bytes() / 1e6);
  }
  ctx.chart("iter_ms");
}

const Registration reg({
    "fig10_scale",
    "Figure 10: single-node scalability on uniform data",
    "Figures 10a/10b of the paper",
    "On uniform data (the pruning worst case) the knors/knori gap narrows "
    "to a small factor (compute masks I/O; paper: 3-4x); the stand-ins "
    "trail knori by large factors; only knors completes the beyond-memory "
    "dataset — the paper's 'at 2B points ... all other algorithms fail' — "
    "and knors memory stays O(n), far below every in-memory system.",
    100, run});

}  // namespace
