// Figure 10 — single-node scalability on the uniform-random RM/RU proxies
// (the paper's 100GB-1TB datasets, scaled to the container; k=10).
//
//  10a: time per iteration of knori / knors / stand-ins.
//  10b: memory consumption of the same.
//
// Shape to reproduce: uniform data is the pruning worst case, so the
// knori/knors gap narrows (the paper: knors only 3-4x slower than knori
// once compute masks I/O); the stand-ins trail knori by large factors; and
// on the largest dataset only the SEM routine stays within a (simulated)
// memory budget — the paper's "at 2B points ... all other algorithms fail".
#include "bench_util.hpp"
#include "baselines/frameworks.hpp"
#include "common/memory_tracker.hpp"
#include "core/knori.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

int main() {
  bench::header("Figure 10: single-node scalability on uniform data",
                "Figures 10a/10b of the paper");

  struct DatasetCase {
    const char* name;
    data::GeneratorSpec spec;
    bool in_memory_feasible;  // simulated memory budget (paper: 1TB box)
  };
  std::vector<DatasetCase> cases;
  cases.push_back({"RM-proxy", bench::rm_proxy(300000), true});
  data::GeneratorSpec rm_big = bench::rm_proxy(600000);
  rm_big.d = 32;
  cases.push_back({"RM1B-proxy", rm_big, true});
  // RU2B: the dataset that exceeds memory on the paper's machine. We model
  // the budget: in-memory engines are "unable to run" (skipped), SEM runs.
  cases.push_back({"RU2B-proxy", bench::ru_proxy(), false});

  auto& mt = MemoryTracker::instance();
  std::printf("%-12s %-8s %14s %14s %12s\n", "dataset", "system",
              "time/iter(ms)", "makespan(ms)", "peak MB");
  for (const auto& dataset : cases) {
    bench::TempMatrixFile file(dataset.spec, dataset.name);
    Options opts;
    opts.k = 10;
    opts.threads = 4;
    opts.max_iters = 5;
    opts.seed = 42;

    if (dataset.in_memory_feasible) {
      const DenseMatrix m = data::generate(dataset.spec);
      mt.reset();
      const Result knori = kmeans(m.const_view(), opts);
      std::printf("%-12s %-8s %14.2f %14.2f %12.1f\n", dataset.name, "knori",
                  knori.iter_times.mean() * 1e3,
                  knori.makespan_per_iter() * 1e3, mt.peak_bytes() / 1e6);
      Options nop = opts;
      nop.prune = false;
      const std::size_t rss0 = current_rss_bytes();
      const Result h2o = baselines::h2o_like(m.const_view(), nop);
      std::printf("%-12s %-8s %14.2f %14.2f %12.1f\n", dataset.name, "H2O*",
                  h2o.iter_times.mean() * 1e3, h2o.makespan_per_iter() * 1e3,
                  (current_rss_bytes() - rss0) / 1e6 +
                      dataset.spec.bytes() / 1e6);
      const Result mllib = baselines::mllib_like(m.const_view(), nop);
      std::printf("%-12s %-8s %14.2f %14.2f %12s\n", dataset.name, "MLlib*",
                  mllib.iter_times.mean() * 1e3,
                  mllib.makespan_per_iter() * 1e3, "(shuffle 2x)");
    } else {
      for (const char* system : {"knori", "H2O*", "MLlib*"})
        std::printf("%-12s %-8s %14s %14s %12s\n", dataset.name, system,
                    "exceeds budget", "-", "-");
    }

    sem::SemOptions sopts;
    sopts.page_cache_bytes = 4 << 20;
    sopts.row_cache_bytes = 2 << 20;
    mt.reset();
    const Result knors = sem::kmeans(file.path(), opts, sopts);
    std::printf("%-12s %-8s %14.2f %14.2f %12.1f\n\n", dataset.name, "knors",
                knors.iter_times.mean() * 1e3, knors.makespan_per_iter() * 1e3,
                mt.peak_bytes() / 1e6);
  }

  std::printf("Shape check: on uniform data the knors/knori gap is a small "
              "factor (compute-bound, paper: 3-4x); only knors completes "
              "the beyond-memory dataset; knors memory stays O(n), far "
              "below every in-memory system.\n");
  return 0;
}
