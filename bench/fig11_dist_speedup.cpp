// Figure 11 — distributed speedup of knord vs the flat MPI baseline vs the
// MLlib stand-in, normalized to each system's own 1-worker performance
// (Friendster-32 and RM proxies).
//
// Substitution note: ranks are in-process threads on one core, so raw wall
// time cannot show parallel speedup. The interconnect cost model is enabled
// (10GbE-like), and we report each system's *communication + coordination
// overhead per iteration* alongside wall time: the quantity whose growth
// with rank count is what separates the systems' speedup curves in the
// paper (knord/MPI pay one small allreduce; the MLlib stand-in reshuffles
// data every iteration).
#include "bench_util.hpp"
#include "baselines/frameworks.hpp"
#include "core/knori.hpp"
#include "dist/knord.hpp"

using namespace knor;

namespace {

void run_dataset(const char* name, const data::GeneratorSpec& spec, int k) {
  const DenseMatrix m = data::generate(spec);
  std::printf("\n--- %s: %s, k=%d ---\n", name, spec.describe().c_str(), k);
  std::printf("%-10s %8s %14s %20s\n", "system", "ranks", "time/iter(ms)",
              "per-iter comm bytes");

  Options opts;
  opts.k = k;
  opts.max_iters = 6;
  opts.seed = 42;

  const double payload_bytes =
      static_cast<double>(k) * spec.d * 8 + k * 8 + 8;  // sums+counts+changed
  for (const int ranks : {1, 2, 4, 8}) {
    dist::DistOptions dopts;
    dopts.ranks = ranks;
    dopts.threads_per_rank = 1;
    dopts.net.latency_us = 50;
    dopts.net.gigabytes_per_sec = 1.25;

    const Result knord = dist::kmeans(m.const_view(), opts, dopts);
    std::printf("%-10s %8d %14.2f %20.0f\n", "knord", ranks,
                knord.iter_times.mean() * 1e3, payload_bytes);

    const Result mpi = dist::mpi_kmeans(m.const_view(), opts, dopts);
    std::printf("%-10s %8d %14.2f %20.0f\n", "MPI", ranks,
                mpi.iter_times.mean() * 1e3, payload_bytes);
  }
  // MLlib stand-in: shuffle moves the full dataset every iteration, so its
  // per-iteration communication is O(nd), not O(kd).
  Options nop = opts;
  nop.prune = false;
  nop.threads = 4;
  const Result mllib = baselines::mllib_like(m.const_view(), nop);
  std::printf("%-10s %8s %14.2f %20.0f  (shuffle = full data)\n", "MLlib*",
              "4w", mllib.iter_times.mean() * 1e3,
              static_cast<double>(spec.bytes()));
}

}  // namespace

int main() {
  bench::header("Figure 11: distributed speedup — knord vs MPI vs MLlib*",
                "Figures 11a/11b of the paper");
  data::GeneratorSpec f32 = bench::friendster32_proxy();
  f32.n = bench::scaled(60000);
  run_dataset("Friendster-32", f32, 10);
  data::GeneratorSpec rm = bench::rm_proxy(150000);
  run_dataset("RM1B-proxy", rm, 10);
  std::printf("\nShape check: knord/MPI per-iteration communication is O(kd) "
              "— constant in n and tiny — which is why their speedup stays "
              "near-linear in the paper, while the MLlib stand-in moves the "
              "entire dataset every iteration (its speedup flattens).\n");
  return 0;
}
