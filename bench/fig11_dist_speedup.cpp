// Figure 11 — distributed speedup of knord vs the flat MPI baseline vs the
// MLlib stand-in, normalized to each system's own 1-worker performance
// (Friendster-32 and RM proxies).
//
// Substitution note (DESIGN.md §1.7): ranks are in-process threads on one
// core, so raw wall time cannot show parallel speedup. The interconnect
// cost model is enabled (10GbE-like), and each system's *per-iteration
// communication volume* is reported alongside wall time: the quantity whose
// growth with rank count separates the systems' speedup curves in the paper
// (knord/MPI pay one small O(kd) allreduce; the MLlib stand-in reshuffles
// the full dataset every iteration).
#include "baselines/frameworks.hpp"
#include "core/knori.hpp"
#include "dist/fault.hpp"
#include "dist/knord.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run_dataset(Context& ctx, const char* name,
                 const data::GeneratorSpec& spec, int k) {
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec, name);

  Options opts;
  opts.k = k;
  opts.max_iters = 6;
  opts.seed = 42;

  const double payload_bytes =
      static_cast<double>(k) * spec.d * 8 + k * 8 + 8;  // sums+counts+changed
  for (const int ranks : {1, 2, 4, 8}) {
    dist::DistOptions dopts;
    dopts.ranks = ranks;
    dopts.threads_per_rank = 1;
    dopts.net.latency_us = 50;
    dopts.net.gigabytes_per_sec = 1.25;

    TimingAgg wall;
    ctx.run([&] { return dist::kmeans(m.const_view(), opts, dopts); },
            nullptr, &wall);
    ctx.row()
        .label("dataset", name)
        .label("system", "knord")
        .label("ranks", ranks)
        .stat("comm_bytes_per_iter", payload_bytes)
        .timing("iter_ms", wall.scaled(1e3));

    ctx.run([&] { return dist::mpi_kmeans(m.const_view(), opts, dopts); },
            nullptr, &wall);
    ctx.row()
        .label("dataset", name)
        .label("system", "MPI")
        .label("ranks", ranks)
        .stat("comm_bytes_per_iter", payload_bytes)
        .timing("iter_ms", wall.scaled(1e3));
  }
  // Straggler configuration (DESIGN.md §13): one node pays 4x the modeled
  // interconnect cost, and every collective waits for the slowest rank.
  // knord's O(kd) allreduce keeps the absolute penalty small — the same
  // communication-volume argument that keeps its speedup near-linear.
  for (const int ranks : {4, 8}) {
    dist::DistOptions dopts;
    dopts.ranks = ranks;
    dopts.threads_per_rank = 1;
    dopts.net.latency_us = 50;
    dopts.net.gigabytes_per_sec = 1.25;
    dist::FtOptions fopts;
    fopts.plan = dist::FaultPlan::parse("slow:r0*4");
    fopts.checkpoint_every = 0;

    TimingAgg wall;
    ctx.run(
        [&] { return dist::ft_kmeans(m.const_view(), opts, dopts, fopts); },
        nullptr, &wall);
    ctx.row()
        .label("dataset", name)
        .label("system", "knord +straggler")
        .label("ranks", ranks)
        .stat("comm_bytes_per_iter", payload_bytes)
        .timing("iter_ms", wall.scaled(1e3));
  }

  // MLlib stand-in: shuffle moves the full dataset every iteration, so its
  // per-iteration communication is O(nd), not O(kd).
  Options nop = opts;
  nop.prune = false;
  nop.threads = 4;
  TimingAgg wall;
  ctx.run([&] { return baselines::mllib_like(m.const_view(), nop); }, nullptr,
          &wall);
  ctx.row()
      .label("dataset", name)
      .label("system", "MLlib* (4w, shuffle = full data)")
      .label("ranks", "4")
      .stat("comm_bytes_per_iter", static_cast<double>(spec.bytes()))
      .timing("iter_ms", wall.scaled(1e3));
}

void run(Context& ctx) {
  ctx.config("net", "latency 50us, 1.25 GB/s (10GbE-like)");
  ctx.config("straggler_plan", "slow:r0*4");
  run_dataset(ctx, "Friendster-32", friendster32_proxy(ctx, 60000), 10);
  run_dataset(ctx, "RM1B-proxy", rm_proxy(ctx, 150000), 10);
  ctx.chart("comm_bytes_per_iter");
}

const Registration reg({
    "fig11_dist_speedup",
    "Figure 11: distributed speedup — knord vs MPI vs MLlib*",
    "Figures 11a/11b of the paper",
    "knord/MPI per-iteration communication is O(kd) — constant in n and "
    "tiny — which is why their speedup stays near-linear in the paper, "
    "while the MLlib stand-in moves the entire dataset every iteration "
    "(its speedup flattens).",
    110, run});

}  // namespace
