// Ablation — scheduler task size (the paper fixes 8192 points per task,
// "small enough to not artificially introduce skew", §8.4).
//
// Sweeps the task granularity under MTI skew and reports makespan proxy +
// scheduler overhead: tiny tasks balance perfectly but pay queue-lock
// traffic; huge tasks re-create static scheduling's skew.
#include <algorithm>

#include "bench_util.hpp"
#include "core/knori.hpp"

using namespace knor;

int main() {
  bench::header("Ablation: scheduler task size", "the 8192-point default of §8.4");

  data::GeneratorSpec spec = bench::friendster8_proxy();
  spec.n = bench::scaled(120000);
  spec.locality = 0.9;  // skewed (crawl-ordered) data
  const DenseMatrix m = data::generate(spec);
  std::printf("dataset: %s; T=8, k=50, MTI on\n\n", spec.describe().c_str());

  std::printf("%-12s %13s %10s %14s\n", "task size", "makespan(ms)",
              "imbalance", "queue ops/iter");
  for (const index_t task_size : {256u, 1024u, 4096u, 8192u, 32768u, 131072u}) {
    Options opts;
    opts.k = 50;
    opts.threads = 8;
    opts.numa_nodes = 4;
    opts.max_iters = 8;
    opts.task_size = task_size;
    opts.seed = 42;
    const Result res = kmeans(m.const_view(), opts);
    double mean_busy = 0, max_busy = 0;
    for (double busy : res.thread_busy_s) {
      mean_busy += busy;
      max_busy = std::max(max_busy, busy);
    }
    mean_busy /= static_cast<double>(res.thread_busy_s.size());
    const auto tasks = res.counters.tasks_own + res.counters.tasks_same_node +
                       res.counters.tasks_remote_node;
    std::printf("%-12llu %13.2f %10.2f %14.1f\n",
                static_cast<unsigned long long>(task_size),
                res.makespan_per_iter() * 1e3,
                mean_busy > 0 ? max_busy / mean_busy : 1.0,
                static_cast<double>(tasks) / static_cast<double>(res.iters));
  }
  std::printf("\nShape check: imbalance rises at the largest task sizes "
              "(tasks ~= partitions) while queue traffic explodes at the "
              "smallest; the paper's 8192 sits in the flat middle.\n");
  return 0;
}
