// Ablation — scheduler task size (the paper fixes 8192 points per task,
// "small enough to not artificially introduce skew", §8.4).
//
// Sweeps the task granularity under MTI skew and reports makespan proxy,
// imbalance and queue traffic: tiny tasks balance perfectly but pay
// claim traffic (and per-chunk accumulator churn, DESIGN.md §7); huge
// tasks re-create static scheduling's skew. All three are
// scheduling-dependent, hence timings. task_size 0 is the adaptive
// default (Scheduler::auto_task_size), included as the first sweep point.
#include <algorithm>
#include <string>

#include "core/knori.hpp"
#include "harness/datasets.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster8_proxy(ctx, 120000);
  spec.locality = 0.9;  // skewed (crawl-ordered) data
  const DenseMatrix m = data::generate(spec);
  ctx.dataset(spec);
  ctx.config("threads", 8);
  ctx.config("k", 50);
  ctx.config("mti", "on");

  for (const index_t task_size : {0u, 256u, 1024u, 4096u, 8192u, 32768u,
                                  131072u}) {
    Options opts;
    opts.k = 50;
    opts.threads = 8;
    opts.numa_nodes = 4;
    opts.max_iters = 8;
    opts.task_size = task_size;
    opts.seed = 42;
    TimingAgg makespan;
    const Result res =
        ctx.run([&] { return kmeans(m.const_view(), opts); }, &makespan);
    double mean_busy = 0, max_busy = 0;
    for (const double busy : res.thread_busy_s) {
      mean_busy += busy;
      max_busy = std::max(max_busy, busy);
    }
    mean_busy /= static_cast<double>(res.thread_busy_s.size());
    const auto tasks = res.counters.tasks_own + res.counters.tasks_same_node +
                       res.counters.tasks_remote_node;
    ctx.row()
        .label("task_size", task_size == 0
                                ? std::string("adaptive")
                                : std::to_string(task_size))
        .timing("makespan_ms", makespan.scaled(1e3))
        .timing("imbalance", mean_busy > 0 ? max_busy / mean_busy : 1.0)
        .timing("queue_ops_per_iter",
                static_cast<double>(tasks) / static_cast<double>(res.iters));
  }
  ctx.chart("makespan_ms");
}

const Registration reg({
    "abl_task_size",
    "Ablation: scheduler task size",
    "the 8192-point default of §8.4",
    "Imbalance rises at the largest task sizes (tasks ~= partitions, "
    "stragglers keep their backlog) while queue traffic explodes at the "
    "smallest; the paper's 8192 sits in the flat middle.",
    330, run});

}  // namespace
