// Table 1 — asymptotic memory complexity of knor routines, verified by
// measurement. For each module we report the tracked logical footprint and
// compare it against the closed-form bound from the paper:
//
//   naive Lloyd's        O(nd + kd)
//   knors-, knors--      O(n + Tkd)
//   knors                O(2n + Tkd + k^2)
//   knori-, knord-       O(nd + Tkd)
//   knori, knord         O(nd + Tkd + n + k^2)
//   (plus Elkan TI       O(nd + nk) — the bound MTI avoids)
#include "bench_util.hpp"
#include "common/memory_tracker.hpp"
#include "core/engines.hpp"
#include "core/knori.hpp"
#include "data/matrix_io.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

namespace {

struct Row {
  const char* name;
  double measured_mb;
  double bound_mb;
};

double mb(double bytes) { return bytes / 1e6; }

}  // namespace

int main() {
  bench::header("Table 1: memory complexity of knor routines",
                "Table 1 of the paper");

  data::GeneratorSpec spec = bench::friendster32_proxy();
  spec.n = bench::scaled(100000);
  const index_t n = spec.n;
  const index_t d = spec.d;
  const int k = 32;
  const int T = 4;
  const DenseMatrix m = data::generate(spec);
  bench::TempMatrixFile file(spec, "table1");

  Options opts;
  opts.k = k;
  opts.threads = T;
  opts.max_iters = 6;
  auto& mt = MemoryTracker::instance();

  const double nd = static_cast<double>(n) * d * sizeof(value_t);
  const double tkd = static_cast<double>(T) * k * d * sizeof(value_t);
  const double n1 = static_cast<double>(n) * sizeof(value_t);
  const double k2 = static_cast<double>(k) * k * sizeof(value_t);

  std::vector<Row> rows;

  // knori (MTI on): O(nd + Tkd + n + k^2)
  mt.reset();
  opts.prune = true;
  kmeans(m.const_view(), opts);
  rows.push_back({"knori", mb(mt.peak_bytes()), mb(nd + tkd + n1 + k2)});

  // knori- (MTI off): O(nd + Tkd)
  mt.reset();
  opts.prune = false;
  kmeans(m.const_view(), opts);
  rows.push_back({"knori-", mb(mt.peak_bytes()), mb(nd + tkd)});

  // knors (MTI + row cache): O(2n + Tkd + k^2) + configured caches
  sem::SemOptions sopts;
  sopts.page_cache_bytes = 1 << 20;
  sopts.row_cache_bytes = 1 << 20;
  mt.reset();
  opts.prune = true;
  sem::kmeans(file.path(), opts, sopts);
  rows.push_back({"knors", mb(mt.peak_bytes()),
                  mb(2 * n1 + tkd + k2 + sopts.page_cache_bytes +
                     sopts.row_cache_bytes)});

  // knors-- (no MTI, no row cache): O(n + Tkd) + page cache
  mt.reset();
  opts.prune = false;
  sopts.row_cache_enabled = false;
  sem::kmeans(file.path(), opts, sopts);
  rows.push_back({"knors--", mb(mt.peak_bytes()),
                  mb(n1 + tkd + sopts.page_cache_bytes)});

  // Elkan TI: the O(nk) lower-bound matrix MTI eliminates.
  mt.reset();
  opts.prune = true;
  elkan_ti(m.const_view(), opts);
  rows.push_back({"elkan-TI(state)", mb(mt.peak_bytes()),
                  mb(static_cast<double>(n) * k * sizeof(value_t) + n1)});

  std::printf("\n(n=%llu d=%llu k=%d T=%d; dataset %.1f MB)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(d), k, T, mb(nd));
  std::printf("%-18s %16s %18s\n", "routine", "measured (MB)",
              "asymptotic (MB)");
  for (const auto& row : rows)
    std::printf("%-18s %16.2f %18.2f\n", row.name, row.measured_mb,
                row.bound_mb);
  std::printf("\nShape check: knors footprints are O(n)-scale (no O(nd) "
              "term); MTI adds ~%.2f MB to knori- vs elkan-TI's %.2f MB "
              "bound state.\n",
              mb(n1 + k2), mb(static_cast<double>(n) * k * sizeof(value_t)));
  return 0;
}
