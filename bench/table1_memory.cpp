// Table 1 — asymptotic memory complexity of knor routines, verified by
// measurement. For each module we report the tracked logical footprint and
// compare it against the closed-form bound from the paper:
//
//   naive Lloyd's        O(nd + kd)
//   knors-, knors--      O(n + Tkd)
//   knors                O(2n + Tkd + k^2)
//   knori-, knord-       O(nd + Tkd)
//   knori, knord         O(nd + Tkd + n + k^2)
//   (plus Elkan TI       O(nd + nk) — the bound MTI avoids)
//
// The asymptotic bound is config-derived (a stat); the measured peak is a
// concurrent high-water mark and reports as a timing.
#include <cstdio>

#include "common/memory_tracker.hpp"
#include "core/engines.hpp"
#include "core/knori.hpp"
#include "data/matrix_io.hpp"
#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

double mb(double bytes) { return bytes / 1e6; }

void run(Context& ctx) {
  data::GeneratorSpec spec = friendster32_proxy(ctx, 100000);
  const index_t n = spec.n;
  const index_t d = spec.d;
  const int k = 32;
  const int T = 4;
  const DenseMatrix m = data::generate(spec);
  TempMatrixFile file(spec, "table1");
  ctx.dataset(spec);
  ctx.config("k", k);
  ctx.config("threads", T);

  Options opts;
  opts.k = k;
  opts.threads = T;
  opts.max_iters = 6;
  auto& mt = MemoryTracker::instance();

  const double nd = static_cast<double>(n) * d * sizeof(value_t);
  const double tkd = static_cast<double>(T) * k * d * sizeof(value_t);
  const double n1 = static_cast<double>(n) * sizeof(value_t);
  const double k2 = static_cast<double>(k) * k * sizeof(value_t);
  ctx.config("dataset_mb", mb(nd));

  const auto emit = [&](const char* routine, double measured_mb,
                        double bound_mb) {
    ctx.row()
        .label("routine", routine)
        .stat("asymptotic_mb", bound_mb)
        .timing("measured_mb", measured_mb);
  };

  // knori (MTI on): O(nd + Tkd + n + k^2)
  mt.reset();
  opts.prune = true;
  kmeans(m.const_view(), opts);
  emit("knori", mb(mt.peak_bytes()), mb(nd + tkd + n1 + k2));

  // knori- (MTI off): O(nd + Tkd)
  mt.reset();
  opts.prune = false;
  kmeans(m.const_view(), opts);
  emit("knori-", mb(mt.peak_bytes()), mb(nd + tkd));

  // knors (MTI + row cache): O(2n + Tkd + k^2) + configured caches
  sem::SemOptions sopts;
  sopts.page_cache_bytes = 1 << 20;
  sopts.row_cache_bytes = 1 << 20;
  mt.reset();
  opts.prune = true;
  sem::kmeans(file.path(), opts, sopts);
  emit("knors", mb(mt.peak_bytes()),
       mb(2 * n1 + tkd + k2 + sopts.page_cache_bytes + sopts.row_cache_bytes));

  // knors-- (no MTI, no row cache): O(n + Tkd) + page cache
  mt.reset();
  opts.prune = false;
  sopts.row_cache_enabled = false;
  sem::kmeans(file.path(), opts, sopts);
  emit("knors--", mb(mt.peak_bytes()), mb(n1 + tkd + sopts.page_cache_bytes));

  // Elkan TI: the O(nk) lower-bound matrix MTI eliminates.
  mt.reset();
  opts.prune = true;
  elkan_ti(m.const_view(), opts);
  emit("elkan-TI(state)", mb(mt.peak_bytes()),
       mb(static_cast<double>(n) * k * sizeof(value_t) + n1));

  char note[160];
  std::snprintf(note, sizeof note,
                "MTI adds ~%.2f MB to knori- vs elkan-TI's %.2f MB bound "
                "state",
                mb(n1 + k2), mb(static_cast<double>(n) * k * sizeof(value_t)));
  ctx.note(note);
  ctx.chart("measured_mb");
}

const Registration reg({
    "table1_memory",
    "Table 1: memory complexity of knor routines",
    "Table 1 of the paper",
    "knors footprints are O(n)-scale (no O(nd) term); MTI's memory "
    "increment over the unpruned twin is O(n) + O(k^2) — far below "
    "Elkan-TI's O(nk) lower-bound matrix.",
    210, run});

}  // namespace
