// Figure 9 — knori and knors vs the framework stand-ins (H2O / MLlib /
// Turi behavioural proxies) on the Friendster proxies, k = 10..100, plus
// peak memory at k=10 (9c). The stand-ins' memory overhead is measured via
// RSS growth around the run — inherently noisy, hence a timing.
#include <string>
#include <utility>

#include "baselines/frameworks.hpp"
#include "common/memory_tracker.hpp"
#include "core/knori.hpp"
#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run_dataset(Context& ctx, const char* name,
                 const data::GeneratorSpec& spec) {
  const DenseMatrix m = data::generate(spec);
  TempMatrixFile file(spec, std::string("fig9_") + name);
  ctx.dataset(spec, name);

  for (const int k : {10, 20, 50, 100}) {
    Options opts;
    opts.k = k;
    opts.threads = 4;
    opts.max_iters = 25;
    opts.seed = 42;

    const auto emit = [&](const char* system, const TimingAgg& iter_wall,
                          const TimingAgg& makespan) {
      ctx.row()
          .label("dataset", name)
          .label("k", k)
          .label("system", system)
          .timing("iter_ms", iter_wall.scaled(1e3))
          .timing("makespan_ms", makespan.scaled(1e3));
    };
    TimingAgg wall, makespan;
    ctx.run([&] { return kmeans(m.const_view(), opts); }, &makespan, &wall);
    emit("knori", wall, makespan);
    ctx.run(
        [&] {
          sem::SemOptions sopts;
          sopts.page_cache_bytes = 2 << 20;
          sopts.row_cache_bytes = spec.bytes() / 8;
          return sem::kmeans(file.path(), opts, sopts);
        },
        &makespan, &wall);
    emit("knors", wall, makespan);
    Options nop = opts;
    nop.prune = false;
    for (auto [system, fn] :
         {std::pair{"H2O*", &baselines::h2o_like},
          std::pair{"MLlib*", &baselines::mllib_like},
          std::pair{"Turi*", &baselines::turi_like}}) {
      ctx.run([&] { return (*fn)(m.const_view(), nop); }, &makespan, &wall);
      emit(system, wall, makespan);
    }
  }

  // 9c: peak memory at k=10. Tracked logical bytes for knor routines; the
  // stand-ins' overhead is measured via RSS growth around the run.
  auto& mt = MemoryTracker::instance();
  Options opts;
  opts.k = 10;
  opts.threads = 4;
  opts.max_iters = 4;
  mt.reset();
  kmeans(m.const_view(), opts);
  ctx.row()
      .label("dataset", name)
      .label("k", "10 (9c memory)")
      .label("system", "knori")
      .timing("peak_mb", mt.peak_bytes() / 1e6);
  mt.reset();
  sem::SemOptions sopts;
  sopts.page_cache_bytes = 2 << 20;
  sopts.row_cache_bytes = spec.bytes() / 8;
  sem::kmeans(file.path(), opts, sopts);
  ctx.row()
      .label("dataset", name)
      .label("k", "10 (9c memory)")
      .label("system", "knors")
      .timing("peak_mb", mt.peak_bytes() / 1e6);
  opts.prune = false;
  for (auto [system, fn] :
       {std::pair{"MLlib*", &baselines::mllib_like},
        std::pair{"H2O*", &baselines::h2o_like},
        std::pair{"Turi*", &baselines::turi_like}}) {
    const std::size_t before = current_rss_bytes();
    (*fn)(m.const_view(), opts);
    const std::size_t after = current_rss_bytes();
    ctx.row()
        .label("dataset", name)
        .label("k", "10 (9c memory)")
        .label("system", system)
        .timing("peak_mb", (after > before ? after - before : 0) / 1e6 +
                               spec.bytes() / 1e6);
  }
}

void run(Context& ctx) {
  ctx.note("* = behavioural stand-in (DESIGN.md §1.5); knor peak_mb is "
           "tracked logical bytes, stand-in peak_mb is RSS growth + dataset");
  run_dataset(ctx, "Friendster-8", friendster8_proxy(ctx, 100000));
  run_dataset(ctx, "Friendster-32", friendster32_proxy(ctx, 60000));
  ctx.chart("makespan_ms");
}

const Registration reg({
    "fig9_frameworks",
    "Figure 9: knori/knors vs framework stand-ins (time + memory)",
    "Figures 9a/9b/9c of the paper",
    "knori (MTI on) is the fastest by a wide margin at every k; knori's win "
    "over the stand-ins exceeds the MTI factor alone (parallelization + no "
    "shuffle/locking/boxing); knors stays within a small factor of "
    "in-memory speeds; the stand-ins carry large memory overheads (shuffle "
    "materialization, row boxing) exactly where Figure 9c shows "
    "MLlib/H2O/Turi blowing up.",
    90, run});

}  // namespace
