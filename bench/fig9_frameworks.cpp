// Figure 9 — knori and knors vs the framework stand-ins (H2O / MLlib /
// Turi behavioural proxies) on the Friendster proxies, k = 10..100, plus
// peak memory at k=10 (9c).
//
// Shape to reproduce: knori (MTI on) is the fastest by a wide margin;
// knori- (algorithmically identical to the frameworks) still wins through
// parallelization alone; knors stays within a small factor of in-memory
// speeds; the stand-ins carry large memory overheads (shuffle
// materialization, row boxing) exactly where the paper's Figure 9c shows
// MLlib/H2O/Turi blowing up.
#include "bench_util.hpp"
#include "baselines/frameworks.hpp"
#include "common/memory_tracker.hpp"
#include "core/knori.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

namespace {

void run_dataset(const char* name, const data::GeneratorSpec& spec) {
  const DenseMatrix m = data::generate(spec);
  bench::TempMatrixFile file(spec, std::string("fig9_") + name);

  std::printf("\n--- %s: %s ---\n", name, spec.describe().c_str());
  // makespan = slowest worker's CPU + serial driver share per iteration —
  // the dedicated-core figure (this container timeshares one core, so wall
  // time only measures total work; see DESIGN.md §1).
  std::printf("%-6s %-12s %14s %14s\n", "k", "system", "time/iter(ms)",
              "makespan(ms)");
  for (const int k : {10, 20, 50, 100}) {
    Options opts;
    opts.k = k;
    opts.threads = 4;
    opts.max_iters = 25;
    opts.seed = 42;

    const Result knori = kmeans(m.const_view(), opts);
    sem::SemOptions sopts;
    sopts.page_cache_bytes = 2 << 20;
    sopts.row_cache_bytes = spec.bytes() / 8;
    const Result knors = sem::kmeans(file.path(), opts, sopts);
    opts.prune = false;
    const Result h2o = baselines::h2o_like(m.const_view(), opts);
    const Result mllib = baselines::mllib_like(m.const_view(), opts);
    const Result turi = baselines::turi_like(m.const_view(), opts);

    const auto row = [&](const char* system, const Result& res) {
      std::printf("%-6d %-12s %14.2f %14.2f\n", k, system,
                  res.iter_times.mean() * 1e3, res.makespan_per_iter() * 1e3);
    };
    row("knori", knori);
    row("knors", knors);
    row("H2O*", h2o);
    row("MLlib*", mllib);
    row("Turi*", turi);
    std::printf("\n");
  }

  // 9c: peak memory at k=10. Tracked logical bytes for knor routines; the
  // stand-ins' overhead is measured via RSS growth around the run.
  std::printf("peak memory at k=10 (MB):\n");
  auto& mt = MemoryTracker::instance();
  Options opts;
  opts.k = 10;
  opts.threads = 4;
  opts.max_iters = 4;
  mt.reset();
  kmeans(m.const_view(), opts);
  std::printf("  %-8s %10.1f (tracked)\n", "knori", mt.peak_bytes() / 1e6);
  mt.reset();
  sem::SemOptions sopts;
  sopts.page_cache_bytes = 2 << 20;
  sopts.row_cache_bytes = spec.bytes() / 8;
  sem::kmeans(file.path(), opts, sopts);
  std::printf("  %-8s %10.1f (tracked)\n", "knors", mt.peak_bytes() / 1e6);
  opts.prune = false;
  for (auto [label, fn] :
       {std::pair{"MLlib*", &baselines::mllib_like},
        std::pair{"H2O*", &baselines::h2o_like},
        std::pair{"Turi*", &baselines::turi_like}}) {
    const std::size_t before = current_rss_bytes();
    (*fn)(m.const_view(), opts);
    const std::size_t after = current_rss_bytes();
    std::printf("  %-8s %10.1f (RSS growth + dataset)\n", label,
                (after > before ? after - before : 0) / 1e6 +
                    spec.bytes() / 1e6);
  }
}

}  // namespace

int main() {
  bench::header(
      "Figure 9: knori/knors vs framework stand-ins (time + memory)",
      "Figures 9a/9b/9c of the paper; * = behavioural stand-in");
  data::GeneratorSpec f8 = bench::friendster8_proxy();
  f8.n = bench::scaled(100000);
  data::GeneratorSpec f32 = bench::friendster32_proxy();
  f32.n = bench::scaled(60000);
  run_dataset("Friendster-8", f8);
  run_dataset("Friendster-32", f32);
  std::printf("\nShape check: knori fastest at every k; knori's win over the "
              "stand-ins exceeds the MTI factor alone (parallelization + "
              "no shuffle/locking/boxing); stand-ins' memory >> knor's.\n");
  return 0;
}
