// Figure 8 — performance and memory of knor modules with MTI enabled vs
// disabled, on the Friendster-8 and Friendster-32 proxies, k = 10..100.
//
//  8a/8b: time per iteration for knori / knori- / knors / knors--.
//  8c:    peak tracked memory for the same four variants.
//
// Peak tracked memory is a logical high-water mark; concurrent allocation
// interleavings can nudge it, so it reports as a timing (machine-dependent)
// rather than a stat.
#include <cstdio>
#include <string>

#include "common/memory_tracker.hpp"
#include "core/knori.hpp"
#include "harness/datasets.hpp"
#include "sem/sem_kmeans.hpp"

namespace {

using namespace knor;
using namespace knor::bench;

void run_dataset(Context& ctx, const char* name,
                 const data::GeneratorSpec& spec) {
  const DenseMatrix m = data::generate(spec);
  TempMatrixFile file(spec, std::string("fig8_") + name);
  auto& mt = MemoryTracker::instance();
  ctx.dataset(spec, name);

  double mem_knori = 0, mem_knori_minus = 0;
  for (const int k : {10, 20, 50, 100}) {
    Options opts;
    opts.k = k;
    opts.threads = 4;
    opts.max_iters = 40;
    opts.seed = 42;

    struct Variant {
      const char* name;
      bool sem;
      bool prune;
      bool rc;
    };
    for (const auto& variant :
         {Variant{"knori", false, true, false},
          Variant{"knori-", false, false, false},
          Variant{"knors", true, true, true},
          Variant{"knors--", true, false, false}}) {
      opts.prune = variant.prune;
      mt.reset();
      TimingAgg iter_wall;
      ctx.run(
          [&] {
            if (!variant.sem) return kmeans(m.const_view(), opts);
            sem::SemOptions sopts;
            sopts.page_cache_bytes = 1 << 20;
            sopts.row_cache_bytes = spec.bytes() / 8;
            sopts.row_cache_enabled = variant.rc;
            return sem::kmeans(file.path(), opts, sopts);
          },
          nullptr, &iter_wall);
      const double peak_mb = mt.peak_bytes() / 1e6;
      if (k == 10 && std::string(variant.name) == "knori") mem_knori = peak_mb;
      if (k == 10 && std::string(variant.name) == "knori-")
        mem_knori_minus = peak_mb;
      ctx.row()
          .label("dataset", name)
          .label("k", k)
          .label("variant", variant.name)
          .timing("iter_ms", iter_wall.scaled(1e3))
          .timing("peak_mb", peak_mb);
    }
  }
  char note[160];
  std::snprintf(note, sizeof note,
                "%s 8c shape: MTI memory increment at k=10 is %.2f MB — "
                "negligible vs the %.1f MB dataset",
                name, mem_knori - mem_knori_minus, spec.bytes() / 1e6);
  ctx.note(note);
}

void run(Context& ctx) {
  run_dataset(ctx, "Friendster-8", friendster8_proxy(ctx, 100000));
  run_dataset(ctx, "Friendster-32", friendster32_proxy(ctx, 60000));
  ctx.chart("iter_ms");
}

const Registration reg({
    "fig8_mti",
    "Figure 8: MTI on/off — time per iteration and memory",
    "Figures 8a/8b/8c of the paper",
    "MTI gives a multi-factor per-iteration win on natural-cluster data at "
    "every k (knori beats knori-, knors beats knors--); the memory delta of "
    "MTI is negligible (O(n) + O(k^2) on top of the dataset).",
    80, run});

}  // namespace
