// Figure 8 — performance and memory of knor modules with MTI enabled vs
// disabled, on the Friendster-8 and Friendster-32 proxies, k = 10..100.
//
//  8a/8b: time per iteration for knori / knori- / knors / knors--.
//  8c:    peak tracked memory for the same four variants.
//
// Shape to reproduce: MTI gives a multi-factor per-iteration win on
// natural-cluster data at every k; the memory delta of MTI is negligible
// (O(n) + O(k^2) on top of the dataset).
#include "bench_util.hpp"
#include "common/memory_tracker.hpp"
#include "core/knori.hpp"
#include "sem/sem_kmeans.hpp"

using namespace knor;

namespace {

void run_dataset(const char* name, const data::GeneratorSpec& spec) {
  const DenseMatrix m = data::generate(spec);
  bench::TempMatrixFile file(spec, std::string("fig8_") + name);
  auto& mt = MemoryTracker::instance();

  std::printf("\n--- %s: %s ---\n", name, spec.describe().c_str());
  std::printf("%-6s %-9s %14s %12s\n", "k", "variant", "time/iter(ms)",
              "peak MB");
  double mem_knori = 0, mem_knori_minus = 0;
  for (const int k : {10, 20, 50, 100}) {
    Options opts;
    opts.k = k;
    opts.threads = 4;
    opts.max_iters = 40;
    opts.seed = 42;

    struct Variant {
      const char* name;
      bool sem;
      bool prune;
      bool rc;
    };
    for (const auto& variant :
         {Variant{"knori", false, true, false},
          Variant{"knori-", false, false, false},
          Variant{"knors", true, true, true},
          Variant{"knors--", true, false, false}}) {
      opts.prune = variant.prune;
      mt.reset();
      Result res;
      if (variant.sem) {
        sem::SemOptions sopts;
        sopts.page_cache_bytes = 1 << 20;
        sopts.row_cache_bytes = spec.bytes() / 8;
        sopts.row_cache_enabled = variant.rc;
        res = sem::kmeans(file.path(), opts, sopts);
      } else {
        res = kmeans(m.const_view(), opts);
      }
      const double peak_mb = mt.peak_bytes() / 1e6;
      if (k == 10 && std::string(variant.name) == "knori") mem_knori = peak_mb;
      if (k == 10 && std::string(variant.name) == "knori-")
        mem_knori_minus = peak_mb;
      std::printf("%-6d %-9s %14.2f %12.2f\n", k, variant.name,
                  res.iter_times.mean() * 1e3, peak_mb);
    }
  }
  std::printf("(8c shape: MTI memory increment at k=10 is %.2f MB — "
              "negligible vs the %.1f MB dataset)\n",
              mem_knori - mem_knori_minus, spec.bytes() / 1e6);
}

}  // namespace

int main() {
  bench::header("Figure 8: MTI on/off — time per iteration and memory",
                "Figures 8a/8b/8c of the paper");
  data::GeneratorSpec f8 = bench::friendster8_proxy();
  f8.n = bench::scaled(100000);
  data::GeneratorSpec f32 = bench::friendster32_proxy();
  f32.n = bench::scaled(60000);
  run_dataset("Friendster-8", f8);
  run_dataset("Friendster-32", f32);
  std::printf("\nShape check: knori beats knori- and knors beats knors-- at "
              "every k (multi-factor on this clustered data).\n");
  return 0;
}
