// Semi-external-memory clustering with knors.
//
// Streams a dataset to disk (never materializing it in memory), then
// clusters it holding only O(n) state in RAM — the scenario that lets the
// paper run billion-point k-means on one machine. Prints the per-iteration
// I/O trace showing MTI's clause-1 skips and the lazily-updated row cache
// cutting device traffic as centroids settle (paper Figures 6 and 7).
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/strict_parse.hpp"
#include "knor/knor.hpp"

int main(int argc, char** argv) {
  using namespace knor;

  std::uint64_t n_arg = 300000;
  if (argc > 1 && !parse_u64(argv[1], &n_arg)) {
    std::fprintf(stderr, "usage: %s [n]\n", argv[0]);
    return 2;
  }
  const index_t n = n_arg;
  const std::string path =
      std::filesystem::temp_directory_path() / "knors_example.kmat";

  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kNaturalClusters;
  spec.n = n;
  spec.d = 32;
  spec.true_clusters = 12;
  std::printf("streaming %.1f MB dataset to %s ...\n", spec.bytes() / 1e6,
              path.c_str());
  data::write_generated(path, spec);

  Options opts;
  opts.k = 10;
  opts.max_iters = 40;
  opts.seed = 7;

  sem::SemOptions sopts;
  sopts.page_size = 4096;          // paper: 4KB minimum read
  sopts.page_cache_bytes = 4 << 20;
  sopts.row_cache_bytes = 4 << 20;
  sopts.cache_update_interval = 5;  // refresh at iterations 5, 10, 20, ...

  sem::SemStats stats;
  Result res = sem::kmeans(path, opts, sopts, &stats);

  std::printf("\nknors: %s\n", res.summary().c_str());
  std::printf("in-memory state is O(n); row data stayed on disk.\n\n");
  std::printf("%-5s %14s %12s %12s %12s\n", "iter", "requested(MB)",
              "read(MB)", "rc-hits", "active-rows");
  for (std::size_t i = 0; i < stats.per_iter.size(); ++i) {
    const auto& io = stats.per_iter[i];
    std::printf("%-5zu %14.2f %12.2f %12llu %12llu\n", i + 1,
                io.bytes_requested / 1e6, io.bytes_read / 1e6,
                static_cast<unsigned long long>(io.row_cache_hits),
                static_cast<unsigned long long>(io.active_rows));
  }
  std::printf("\ntotals: requested %.1f MB, read %.1f MB (dataset is %.1f "
              "MB; a naive external algorithm reads %.1f MB)\n",
              stats.total_requested() / 1e6, stats.total_read() / 1e6,
              spec.bytes() / 1e6,
              spec.bytes() / 1e6 * static_cast<double>(res.iters));
  std::filesystem::remove(path);
  return 0;
}
