// Distributed clustering with knord.
//
// Runs the decentralized distributed module over the in-process MPI-lite
// substrate (see DESIGN.md: ranks are threads here; on a real cluster the
// same algorithm runs over MPI). Each rank generates only its own shard —
// no process ever holds the full dataset — and one allreduce per iteration
// keeps centroids replicated. Compares knord against the flat "pure MPI"
// baseline the paper uses, with the interconnect cost model enabled so the
// communication/computation trade-off resembles the paper's EC2 cluster.
#include <cstdio>

#include "baselines/frameworks.hpp"
#include "knor/knor.hpp"

int main() {
  using namespace knor;

  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kNaturalClusters;
  spec.n = 200000;
  spec.d = 16;
  spec.true_clusters = 12;
  std::printf("dataset: %s (%.1f MB, generated shard-wise per rank)\n",
              spec.describe().c_str(), spec.bytes() / 1e6);

  Options opts;
  opts.k = 10;
  opts.max_iters = 30;
  opts.seed = 11;
  opts.numa_nodes = 2;  // simulate a 2-socket machine per rank

  dist::DistOptions dopts;
  dopts.threads_per_rank = 2;
  dopts.net.latency_us = 50;          // 10GbE-ish interconnect model
  dopts.net.gigabytes_per_sec = 1.25;

  std::printf("\n%-10s %8s %10s %14s %12s\n", "system", "ranks", "iters",
              "time/iter(ms)", "energy");
  for (const int ranks : {1, 2, 4}) {
    dopts.ranks = ranks;
    Result res = dist::kmeans(spec, opts, dopts);
    std::printf("%-10s %8d %10zu %14.2f %12.4e\n", "knord", ranks, res.iters,
                res.iter_times.mean() * 1e3, res.energy);
  }

  // The flat MPI baseline needs the matrix form; materialize once.
  DenseMatrix m = data::generate(spec);
  dopts.ranks = 4;
  Result mpi = dist::mpi_kmeans(m.const_view(), opts, dopts);
  std::printf("%-10s %8d %10zu %14.2f %12.4e\n", "MPI(flat)", 4, mpi.iters,
              mpi.iter_times.mean() * 1e3, mpi.energy);

  std::printf("\nknord and the MPI baseline run the identical algorithm — "
              "energies match; knord adds per-rank NUMA optimizations.\n");
  return 0;
}
