// k-means variants from the paper's future-work roadmap (§9): spherical
// k-means on embedding-style data, and semi-supervised (seeded) k-means
// where a handful of labeled points anchor cluster identities.
#include <cstdio>

#include "knor/knor.hpp"

int main() {
  using namespace knor;

  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kNaturalClusters;
  spec.n = 50000;
  spec.d = 16;
  spec.true_clusters = 8;
  spec.separation = 10.0;
  DenseMatrix embedding = data::generate(spec);
  std::printf("dataset: %s\n\n", spec.describe().c_str());

  Options opts;
  opts.k = 8;
  opts.max_iters = 60;
  opts.seed = 9;

  // --- Spherical k-means: cluster by direction (cosine similarity). ---
  Result spherical = spherical_kmeans(embedding.const_view(), opts);
  std::printf("spherical : %s\n", spherical.summary().c_str());
  std::printf("            (energy = total cosine dissimilarity; centroids "
              "live on the unit sphere)\n");

  // --- Seeded k-means: 1%% of points carry ground-truth labels. ---
  std::vector<cluster_t> labels(spec.n, kInvalidCluster);
  index_t seeded_count = 0;
  for (index_t r = 0; r < spec.n; r += 100) {
    labels[r] = static_cast<cluster_t>(data::true_component_of_row(spec, r));
    ++seeded_count;
  }
  Result seeded = seeded_kmeans(embedding.const_view(), opts, labels);
  std::printf("seeded    : %s (%llu labeled points fixed)\n",
              seeded.summary().c_str(),
              static_cast<unsigned long long>(seeded_count));

  // With seeds, cluster c *is* planted component c — no permutation
  // ambiguity. Measure direct agreement.
  index_t agree = 0;
  for (index_t r = 0; r < spec.n; ++r)
    if (seeded.assignments[r] ==
        static_cast<cluster_t>(data::true_component_of_row(spec, r)))
      ++agree;
  std::printf("            planted-component agreement: %.2f%% (labels "
              "anchor cluster identity)\n",
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(spec.n));
  return 0;
}
