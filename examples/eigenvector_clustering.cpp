// Spectral-embedding clustering — the paper's motivating workload.
//
// The Friendster experiments in the paper cluster the top-8/top-32
// eigenvectors of a billion-edge social graph: data with strongly rooted
// natural clusters. This example reproduces that scenario with the
// natural-cluster generator (power-law cluster sizes, anisotropic spread —
// see DESIGN.md for why this is a faithful proxy), then demonstrates the
// two headline knori effects on such data:
//   1. MTI pruning eliminates most distance computations (knori vs knori-),
//   2. the clustering is identical with and without pruning.
#include <cmath>
#include <cstdio>

#include "knor/knor.hpp"

int main() {
  using namespace knor;

  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kNaturalClusters;
  spec.n = 200000;
  spec.d = 8;  // "top-8 eigenvectors"
  spec.true_clusters = 16;
  spec.power_law_alpha = 1.5;  // community sizes follow a power law
  spec.separation = 8.0;
  DenseMatrix embedding = data::generate(spec);
  std::printf("spectral embedding proxy: %s\n", spec.describe().c_str());

  Options opts;
  opts.k = 10;
  opts.max_iters = 50;
  opts.seed = 1;

  std::printf("\n%-8s %12s %14s %16s %12s\n", "variant", "iters",
              "time/iter(ms)", "distances", "c1-skips");
  Result pruned, full;
  for (const bool prune : {true, false}) {
    opts.prune = prune;
    Result res = kmeans(embedding.const_view(), opts);
    std::printf("%-8s %12zu %14.2f %16llu %12llu\n",
                prune ? "knori" : "knori-", res.iters,
                res.iter_times.mean() * 1e3,
                static_cast<unsigned long long>(res.counters.dist_computations),
                static_cast<unsigned long long>(res.counters.clause1_skips));
    (prune ? pruned : full) = std::move(res);
  }

  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < pruned.assignments.size(); ++i)
    if (pruned.assignments[i] != full.assignments[i]) ++mismatched;
  std::printf(
      "\nMTI pruned %.1f%% of distance computations; clusterings differ on "
      "%zu of %zu points (energy rel diff %.2e)\n",
      100.0 * (1.0 - static_cast<double>(pruned.counters.dist_computations) /
                         full.counters.dist_computations),
      mismatched, pruned.assignments.size(),
      std::abs(pruned.energy - full.energy) / full.energy);
  return 0;
}
