// Quickstart: cluster an in-memory matrix with knori.
//
//   build/examples/quickstart [n] [d] [k]
//
// Generates a mixture of Gaussian clusters, runs the NUMA-optimized
// in-memory k-means (knori), and prints the clustering summary plus the
// pruning statistics that make knor fast.
#include <cstdio>

#include "common/strict_parse.hpp"
#include "knor/knor.hpp"

int main(int argc, char** argv) {
  using namespace knor;

  const auto arg_or = [&](int i, std::uint64_t dflt) {
    std::uint64_t v = dflt;
    if (argc > i && !parse_u64(argv[i], &v)) {
      std::fprintf(stderr, "usage: %s [n] [d] [k]\n", argv[0]);
      std::exit(2);
    }
    return v;
  };
  const index_t n = arg_or(1, 100000);
  const index_t d = arg_or(2, 16);
  const int k = static_cast<int>(arg_or(3, 8));

  // 1. Get a dataset (here: synthetic clusters; see data/matrix_io.hpp for
  //    loading .kmat files from disk).
  data::GeneratorSpec spec;
  spec.dist = data::Distribution::kNaturalClusters;
  spec.n = n;
  spec.d = d;
  spec.true_clusters = k;
  DenseMatrix matrix = data::generate(spec);
  std::printf("dataset: %s (%.1f MB)\n", spec.describe().c_str(),
              spec.bytes() / 1e6);

  // 2. Configure. Defaults give the paper's knori: MTI pruning on,
  //    NUMA-aware placement, the partitioned task scheduler.
  Options opts;
  opts.k = k;
  opts.max_iters = 100;
  opts.init = Init::kKmeansPP;
  opts.seed = 42;

  // 3. Run.
  Result result = kmeans(matrix.const_view(), opts);

  // 4. Inspect.
  std::printf("result : %s\n", result.summary().c_str());
  std::printf("cluster sizes:");
  for (index_t size : result.cluster_sizes)
    std::printf(" %llu", static_cast<unsigned long long>(size));
  std::printf("\n");
  const double naive = static_cast<double>(n) * k * result.iters;
  std::printf("distance computations: %.2e (naive Lloyd's would do %.2e; "
              "MTI pruned %.1f%%)\n",
              static_cast<double>(result.counters.dist_computations), naive,
              100.0 * (1.0 - result.counters.dist_computations / naive));
  return 0;
}
