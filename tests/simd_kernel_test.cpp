// Property tests for the SIMD distance-kernel layer (core/kernels):
//  * every ISA variant matches a long-double reference within a tight
//    error bound across random d, including every remainder-lane case;
//  * each ISA is bitwise self-deterministic call to call;
//  * the scalar table reproduces the legacy core/distance.hpp kernels
//    bit-for-bit;
//  * the blocked nearest-centroid kernel is bitwise-identical to k
//    independent dist_sq calls of the same ISA (the contract that keeps
//    MTI-pruned and full-scan paths in exact agreement);
//  * CentroidPack rows are 64-byte aligned with zero padding for every
//    d in 1..33 (the odd-d regression sweep);
//  * Options::simd steers the engines and every ISA yields identical
//    clusterings on integer-valued data.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "core/distance.hpp"
#include "core/kernels/simd.hpp"
#include "core/knori.hpp"
#include "data/generator.hpp"

namespace knor {
namespace {

using kernels::CentroidPack;
using kernels::Isa;
using kernels::Ops;

std::vector<value_t> random_vec(Prng& rng, index_t d) {
  std::vector<value_t> v(static_cast<std::size_t>(d));
  for (auto& x : v) x = 20.0 * rng.next_double() - 10.0;
  return v;
}

long double ref_dist_sq(const value_t* a, const value_t* b, index_t d) {
  long double s = 0;
  for (index_t j = 0; j < d; ++j) {
    const long double diff =
        static_cast<long double>(a[j]) - static_cast<long double>(b[j]);
    s += diff * diff;
  }
  return s;
}

long double ref_dot(const value_t* a, const value_t* b, index_t d) {
  long double s = 0;
  for (index_t j = 0; j < d; ++j)
    s += static_cast<long double>(a[j]) * static_cast<long double>(b[j]);
  return s;
}

/// All dims that exercise every remainder-lane count of every ISA (W up
/// to 8, two-accumulator main loop up to 16), plus a few larger ones.
std::vector<index_t> sweep_dims() {
  std::vector<index_t> dims;
  for (index_t d = 1; d <= 33; ++d) dims.push_back(d);
  dims.insert(dims.end(), {64, 127, 128, 257});
  return dims;
}

TEST(SimdDispatch, ParseAndToStringRoundTrip) {
  for (const Isa isa :
       {Isa::kAuto, Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kAvx512}) {
    Isa parsed = Isa::kAuto;
    EXPECT_TRUE(kernels::parse_isa(kernels::to_string(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa parsed = Isa::kAuto;
  EXPECT_FALSE(kernels::parse_isa("quantum", &parsed));
  EXPECT_FALSE(kernels::parse_isa("", &parsed));
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndResolves) {
  EXPECT_TRUE(kernels::available(Isa::kScalar));
  const auto isas = kernels::available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (const Isa isa : isas) {
    const Ops& ops = kernels::ops_for(isa);
    EXPECT_EQ(ops.isa, isa);
    ASSERT_NE(ops.dist_sq, nullptr);
    ASSERT_NE(ops.dot, nullptr);
    ASSERT_NE(ops.nearest, nullptr);
    ASSERT_NE(ops.nearest_blocked, nullptr);
  }
  // Unavailable requests clamp downward instead of failing, and kAuto
  // always lands on something dispatchable (KNOR_SIMD may steer it, so no
  // strict equality with detect_best() here).
  EXPECT_NE(kernels::ops_for(Isa::kAvx512).dist_sq, nullptr);
  EXPECT_TRUE(kernels::available(kernels::resolve(Isa::kAuto)));
  EXPECT_TRUE(kernels::available(kernels::detect_best()));
}

TEST(SimdKernels, DistSqAndDotMatchLongDoubleReference) {
  Prng rng(0x51d0, 1);
  for (const Isa isa : kernels::available_isas()) {
    const Ops& ops = kernels::ops_for(isa);
    for (const index_t d : sweep_dims()) {
      const auto a = random_vec(rng, d);
      const auto b = random_vec(rng, d);
      const long double ref = ref_dist_sq(a.data(), b.data(), d);
      const value_t got = ops.dist_sq(a.data(), b.data(), d);
      // Positive-term summation: relative error <= #terms * eps with slack
      // (FMA variants are tighter).
      const double bound =
          4.0 * static_cast<double>(d + 1) * DBL_EPSILON *
          std::max(static_cast<double>(ref), 1.0);
      EXPECT_NEAR(got, static_cast<double>(ref), bound)
          << kernels::to_string(isa) << " dist_sq d=" << d;

      const long double dref = ref_dot(a.data(), b.data(), d);
      const value_t dgot = ops.dot(a.data(), b.data(), d);
      const double dbound =
          4.0 * static_cast<double>(d + 1) * DBL_EPSILON *
          std::max(static_cast<double>(std::fabs(dref)), 100.0 * d);
      EXPECT_NEAR(dgot, static_cast<double>(dref), dbound)
          << kernels::to_string(isa) << " dot d=" << d;
    }
  }
}

TEST(SimdKernels, BitwiseSelfDeterminismAcrossCalls) {
  Prng rng(0xb175, 2);
  for (const Isa isa : kernels::available_isas()) {
    const Ops& ops = kernels::ops_for(isa);
    for (const index_t d : {index_t(7), index_t(16), index_t(31)}) {
      const int k = 11;
      const auto point = random_vec(rng, d);
      const auto cents = random_vec(rng, static_cast<index_t>(k) * d);
      const value_t first = ops.dist_sq(point.data(), cents.data(), d);
      CentroidPack pack;
      pack.pack(cents.data(), k, d);
      value_t first_sq = 0;
      const cluster_t first_best =
          ops.nearest_blocked(point.data(), pack, &first_sq);
      for (int call = 0; call < 5; ++call) {
        const value_t again = ops.dist_sq(point.data(), cents.data(), d);
        EXPECT_EQ(std::memcmp(&first, &again, sizeof(value_t)), 0)
            << kernels::to_string(isa);
        // Repacking must not perturb the result either.
        CentroidPack repack;
        repack.pack(cents.data(), k, d);
        value_t sq = 0;
        EXPECT_EQ(ops.nearest_blocked(point.data(), repack, &sq), first_best);
        EXPECT_EQ(std::memcmp(&sq, &first_sq, sizeof(value_t)), 0)
            << kernels::to_string(isa);
      }
    }
  }
}

TEST(SimdKernels, ScalarTableMatchesLegacyBitForBit) {
  const Ops& ops = kernels::ops_for(Isa::kScalar);
  ASSERT_EQ(ops.isa, Isa::kScalar);
  Prng rng(0x5ca1a9, 3);
  for (const index_t d : sweep_dims()) {
    const int k = 7;
    const auto point = random_vec(rng, d);
    const auto cents = random_vec(rng, static_cast<index_t>(k) * d);
    const value_t legacy = dist_sq(point.data(), cents.data(), d);
    const value_t viaops = ops.dist_sq(point.data(), cents.data(), d);
    EXPECT_EQ(std::memcmp(&legacy, &viaops, sizeof(value_t)), 0) << d;

    const value_t legacy_dot = dot(point.data(), cents.data(), d);
    const value_t ops_dot = ops.dot(point.data(), cents.data(), d);
    EXPECT_EQ(std::memcmp(&legacy_dot, &ops_dot, sizeof(value_t)), 0) << d;

    value_t legacy_sq = 0, ops_sq = 0, blocked_sq = 0;
    const cluster_t legacy_best =
        nearest_centroid(point.data(), cents.data(), k, d, &legacy_sq);
    EXPECT_EQ(ops.nearest(point.data(), cents.data(), k, d, &ops_sq),
              legacy_best)
        << d;
    EXPECT_EQ(std::memcmp(&legacy_sq, &ops_sq, sizeof(value_t)), 0) << d;
    CentroidPack pack;
    pack.pack(cents.data(), k, d);
    EXPECT_EQ(ops.nearest_blocked(point.data(), pack, &blocked_sq),
              legacy_best)
        << d;
    EXPECT_EQ(std::memcmp(&legacy_sq, &blocked_sq, sizeof(value_t)), 0) << d;
  }
}

// The contract that keeps MTI-pruned (per-centroid dist_sq) and full-scan
// (blocked) paths in exact agreement: for every ISA, the blocked kernel's
// per-centroid distances are bitwise IDENTICAL to that ISA's dist_sq.
TEST(SimdKernels, BlockedMatchesPerCentroidDistSqBitwise) {
  Prng rng(0xb10c, 4);
  for (const Isa isa : kernels::available_isas()) {
    const Ops& ops = kernels::ops_for(isa);
    for (const index_t d : sweep_dims()) {
      for (const int k : {1, 2, 3, 4, 5, 7, 8, 9, 64}) {
        const auto point = random_vec(rng, d);
        const auto cents = random_vec(rng, static_cast<index_t>(k) * d);
        // Reference argmin over the ISA's own dist_sq, legacy tie rule.
        cluster_t ref_best = 0;
        value_t ref_sq = ops.dist_sq(point.data(), cents.data(), d);
        for (int c = 1; c < k; ++c) {
          const value_t dc = ops.dist_sq(
              point.data(), cents.data() + static_cast<std::size_t>(c) * d,
              d);
          if (dc < ref_sq) {
            ref_sq = dc;
            ref_best = static_cast<cluster_t>(c);
          }
        }
        CentroidPack pack;
        pack.pack(cents.data(), k, d);
        value_t blocked_sq = 0;
        const cluster_t blocked_best =
            ops.nearest_blocked(point.data(), pack, &blocked_sq);
        ASSERT_EQ(blocked_best, ref_best)
            << kernels::to_string(isa) << " d=" << d << " k=" << k;
        ASSERT_EQ(std::memcmp(&blocked_sq, &ref_sq, sizeof(value_t)), 0)
            << kernels::to_string(isa) << " d=" << d << " k=" << k;
        value_t generic_sq = 0;
        EXPECT_EQ(ops.nearest(point.data(), cents.data(), k, d, &generic_sq),
                  ref_best);
        EXPECT_EQ(std::memcmp(&generic_sq, &ref_sq, sizeof(value_t)), 0);
      }
    }
  }
}

// Odd-d regression sweep: pack rows must be 64-byte aligned with +0.0
// padding so the aligned full-width loads of the blocked kernel are safe.
TEST(SimdKernels, CentroidPackAlignedAndZeroPaddedForAllSmallD) {
  Prng rng(0xa119, 5);
  for (index_t d = 1; d <= 33; ++d) {
    const int k = 5;
    const auto cents = random_vec(rng, static_cast<index_t>(k) * d);
    CentroidPack pack;
    pack.pack(cents.data(), k, d);
    EXPECT_EQ(pack.d(), d);
    EXPECT_EQ(pack.k(), k);
    EXPECT_EQ(pack.stride() % CentroidPack::kLaneAlign, 0u) << d;
    EXPECT_GE(pack.stride(), d);
    for (int c = 0; c < k; ++c) {
      const value_t* row = pack.row(c);
      EXPECT_TRUE(is_cacheline_aligned(row)) << "d=" << d << " c=" << c;
      EXPECT_EQ(std::memcmp(row, cents.data() + static_cast<std::size_t>(c) * d,
                            d * sizeof(value_t)),
                0);
      for (index_t j = d; j < pack.stride(); ++j)
        EXPECT_EQ(row[j], 0.0) << "padding lane d=" << d << " j=" << j;
    }
  }
}

// Options::simd steers the whole engine; on integer-valued data every ISA
// must produce bitwise-identical centroids (exact sums are order- and
// FMA-independent), and identical assignments/iteration counts.
TEST(SimdEngine, AllIsasAgreeOnIntegerData) {
  data::GeneratorSpec spec;
  spec.n = 900;
  spec.d = 7;  // odd d: exercises every remainder path in the engines
  spec.true_clusters = 4;
  spec.separation = 9.0;
  spec.seed = 20170627;
  DenseMatrix m = data::generate(spec);
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t c = 0; c < m.cols(); ++c) m.at(r, c) = std::round(m.at(r, c));

  Options base;
  base.k = 4;
  base.max_iters = 40;
  base.threads = 3;
  base.numa_nodes = 2;

  Options scalar_opts = base;
  scalar_opts.simd = Isa::kScalar;
  const Result ref = kmeans(m.const_view(), scalar_opts);
  ASSERT_GT(ref.iters, 1u);

  for (const Isa isa : kernels::available_isas()) {
    for (const bool prune : {false, true}) {
      Options opts = base;
      opts.simd = isa;
      opts.prune = prune;
      const Result res = kmeans(m.const_view(), opts);
      EXPECT_EQ(res.iters, ref.iters) << kernels::to_string(isa);
      EXPECT_EQ(res.assignments, ref.assignments) << kernels::to_string(isa);
      EXPECT_EQ(res.cluster_sizes, ref.cluster_sizes)
          << kernels::to_string(isa);
      EXPECT_EQ(std::memcmp(res.centroids.data(), ref.centroids.data(),
                            ref.centroids.size() * sizeof(value_t)),
                0)
          << kernels::to_string(isa) << " centroids differ bitwise";
    }
  }
  kernels::set_isa(Isa::kAuto);  // restore for other tests in this binary
}

// ----------------------------------------------------- fused GEMM kernel

/// Integer-valued rows: every product and partial sum below is an exactly
/// representable double, so the fused kernel's result is EXACTLY equal to
/// the naive reference for every ISA (no reduction-order slack to hide in).
std::vector<value_t> random_int_vec(Prng& rng, index_t d) {
  std::vector<value_t> v(static_cast<std::size_t>(d));
  for (auto& x : v) x = std::round(20.0 * rng.next_double() - 10.0);
  return v;
}

TEST(GemmArgmin, MatchesNaiveReferenceExactlyOnIntegerData) {
  Prng rng(0x9e33, 4);
  for (const Isa isa : kernels::available_isas()) {
    const Ops& ops = kernels::ops_for(isa);
    ASSERT_NE(ops.gemm_argmin, nullptr) << kernels::to_string(isa);
    for (const index_t d : {index_t(3), index_t(8), index_t(17)}) {
      for (const int k : {1, 7, 8, 9, 23}) {
        const index_t n = 13;  // exercises the partial register block
        const auto rows = random_int_vec(rng, n * d);
        const auto cents = random_int_vec(rng, static_cast<index_t>(k) * d);
        DenseMatrix cmat(static_cast<index_t>(k), d);
        std::memcpy(cmat.data(), cents.data(),
                    cents.size() * sizeof(value_t));
        std::vector<value_t> cnorm(static_cast<std::size_t>(k));
        for (int c = 0; c < k; ++c) {
          long double s = 0;
          for (index_t j = 0; j < d; ++j) {
            const long double x = cents[static_cast<std::size_t>(c) * d + j];
            s += x * x;
          }
          cnorm[static_cast<std::size_t>(c)] = static_cast<value_t>(s);
        }
        TiledMatrix tiles;
        tiles.pack(cmat.const_view(), kernels::kGemmPanelWidth, d);
        std::vector<cluster_t> best(static_cast<std::size_t>(n), 0);
        std::vector<value_t> score(
            static_cast<std::size_t>(n),
            std::numeric_limits<value_t>::infinity());
        ops.gemm_argmin(rows.data(), n, d, tiles, 0, tiles.row_panels(),
                        cnorm.data(), best.data(), score.data());
        for (index_t i = 0; i < n; ++i) {
          cluster_t want = 0;
          value_t want_s = std::numeric_limits<value_t>::infinity();
          for (int c = 0; c < k; ++c) {
            value_t dot = 0;
            for (index_t j = 0; j < d; ++j)
              dot += rows[static_cast<std::size_t>(i) * d + j] *
                     cents[static_cast<std::size_t>(c) * d + j];
            const value_t s = cnorm[static_cast<std::size_t>(c)] - 2 * dot;
            if (s < want_s) {
              want_s = s;
              want = static_cast<cluster_t>(c);
            }
          }
          EXPECT_EQ(best[static_cast<std::size_t>(i)], want)
              << kernels::to_string(isa) << " d=" << d << " k=" << k
              << " row " << i;
          EXPECT_EQ(score[static_cast<std::size_t>(i)], want_s)
              << kernels::to_string(isa) << " d=" << d << " k=" << k
              << " row " << i;
        }
      }
    }
  }
}

TEST(GemmArgmin, BitwiseInvariantAcrossPackAndPanelSplits) {
  // The §12 contract on REAL (non-integer) data: per ISA, the (best, score)
  // outputs are bitwise identical whatever the pack's col_block and however
  // the panel range [0, P) is split across calls — tile shape is a pure
  // performance knob.
  Prng rng(0x711e, 5);
  const index_t n = 11, d = 19;
  const int k = 29;
  for (const Isa isa : kernels::available_isas()) {
    const Ops& ops = kernels::ops_for(isa);
    const auto rows = random_vec(rng, n * d);
    const auto cents = random_vec(rng, static_cast<index_t>(k) * d);
    DenseMatrix cmat(static_cast<index_t>(k), d);
    std::memcpy(cmat.data(), cents.data(), cents.size() * sizeof(value_t));
    std::vector<value_t> cnorm(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c)
      cnorm[static_cast<std::size_t>(c)] =
          ops.dot(cmat.row(static_cast<index_t>(c)),
                  cmat.row(static_cast<index_t>(c)), d);

    std::vector<cluster_t> ref_best;
    std::vector<value_t> ref_score;
    for (const index_t col_block : {index_t(1), index_t(5), index_t(19)}) {
      for (const index_t step : {index_t(1), index_t(2), index_t(64)}) {
        TiledMatrix tiles;
        tiles.pack(cmat.const_view(), kernels::kGemmPanelWidth, col_block);
        const index_t P = tiles.row_panels();
        std::vector<cluster_t> best(static_cast<std::size_t>(n), 0);
        std::vector<value_t> score(
            static_cast<std::size_t>(n),
            std::numeric_limits<value_t>::infinity());
        for (index_t p0 = 0; p0 < P; p0 += step)
          ops.gemm_argmin(rows.data(), n, d, tiles, p0,
                          P - p0 < step ? P : p0 + step, cnorm.data(),
                          best.data(), score.data());
        if (ref_best.empty()) {
          ref_best = best;
          ref_score = score;
        } else {
          EXPECT_EQ(best, ref_best)
              << kernels::to_string(isa) << " cb=" << col_block
              << " step=" << step;
          EXPECT_EQ(std::memcmp(score.data(), ref_score.data(),
                                score.size() * sizeof(value_t)),
                    0)
              << kernels::to_string(isa) << " cb=" << col_block
              << " step=" << step;
        }
      }
    }
  }
}

// ------------------------------------------- per-run ISA state isolation

TEST(IsaIsolation, ConcurrentEnginesWithDifferentIsasDoNotInterfere) {
  // Satellite pin for the global-ISA-state bugfix: no engine entry point
  // mutates the process-global dispatch any more, so two runs requesting
  // DIFFERENT ISAs can execute concurrently and each must reproduce its
  // own sequential result bitwise. Before the fix, each run's set_isa()
  // retargeted the other's kernels mid-flight.
  const auto isas = kernels::available_isas();
  if (isas.size() < 2) GTEST_SKIP() << "only one ISA available";
  const Isa lo = isas.front(), hi = isas.back();

  data::GeneratorSpec spec;
  spec.n = 2000;
  spec.d = 9;
  spec.true_clusters = 5;
  spec.seed = 20170627;
  const DenseMatrix m = data::generate(spec);

  Options base;
  base.k = 5;
  base.max_iters = 25;
  base.threads = 2;
  base.numa_nodes = 2;
  Options lo_opts = base, hi_opts = base;
  lo_opts.simd = lo;
  hi_opts.simd = hi;

  const Result lo_ref = kmeans(m.const_view(), lo_opts);
  const Result hi_ref = kmeans(m.const_view(), hi_opts);

  for (int round = 0; round < 3; ++round) {
    Result lo_res, hi_res;
    std::thread a([&] { lo_res = kmeans(m.const_view(), lo_opts); });
    std::thread b([&] { hi_res = kmeans(m.const_view(), hi_opts); });
    a.join();
    b.join();
    for (const auto* pair :
         {&lo_res, &hi_res}) {
      const Result& ref = pair == &lo_res ? lo_ref : hi_ref;
      const Result& res = *pair;
      ASSERT_EQ(res.iters, ref.iters) << round;
      EXPECT_EQ(res.assignments, ref.assignments) << round;
      EXPECT_EQ(std::memcmp(res.centroids.data(), ref.centroids.data(),
                            ref.centroids.size() * sizeof(value_t)),
                0)
          << "round " << round << " centroids differ bitwise";
      EXPECT_EQ(std::memcmp(&res.energy, &ref.energy, sizeof(double)), 0)
          << round;
    }
  }
}

}  // namespace
}  // namespace knor
