// Exactness properties: every exact engine in the library must produce the
// same clustering as the serial Lloyd's reference — same iteration count,
// same assignments, same energy (to FP-reduction tolerance) — across a
// parameterized sweep of datasets, k, and thread counts. These are the
// tests that license the word "algorithmically identical" used throughout
// the paper's evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/engines.hpp"
#include "core/knori.hpp"
#include "data/generator.hpp"

namespace knor {
namespace {

struct SweepParam {
  data::Distribution dist;
  index_t n;
  index_t d;
  int k;
  int threads;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::string dist = p.dist == data::Distribution::kNaturalClusters ? "nat"
                     : p.dist == data::Distribution::kUniformRandom ? "uni"
                                                                    : "gauss";
  return dist + "_n" + std::to_string(p.n) + "_d" + std::to_string(p.d) +
         "_k" + std::to_string(p.k) + "_t" + std::to_string(p.threads) +
         "_s" + std::to_string(p.seed);
}

class ExactnessSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    data::GeneratorSpec spec;
    spec.dist = p.dist;
    spec.n = p.n;
    spec.d = p.d;
    spec.seed = p.seed;
    spec.true_clusters = std::max(2, p.k);
    data_ = data::generate(spec);
    opts_.k = p.k;
    opts_.threads = p.threads;
    opts_.max_iters = 60;
    opts_.seed = p.seed * 7 + 1;
    opts_.numa_nodes = 2;  // simulated 2-node topology
    ref_ = lloyd_serial(data_.const_view(), opts_);
  }

  void expect_same_clustering(const Result& res, const char* what,
                              double assign_slack = 0.0) {
    EXPECT_EQ(res.iters, ref_.iters) << what;
    EXPECT_EQ(res.converged, ref_.converged) << what;
    const double rel =
        std::abs(res.energy - ref_.energy) / std::max(1e-30, ref_.energy);
    EXPECT_LT(rel, 1e-9) << what;
    std::size_t mismatched = 0;
    for (std::size_t i = 0; i < ref_.assignments.size(); ++i)
      if (res.assignments[i] != ref_.assignments[i]) ++mismatched;
    const auto allowed = static_cast<std::size_t>(
        assign_slack * static_cast<double>(ref_.assignments.size()));
    EXPECT_LE(mismatched, allowed) << what;
    EXPECT_EQ(res.cluster_sizes.size(), ref_.cluster_sizes.size()) << what;
  }

  DenseMatrix data_;
  Options opts_;
  Result ref_;
};

TEST_P(ExactnessSweep, ParallelMatchesSerial) {
  Options opts = opts_;
  opts.prune = false;
  expect_same_clustering(kmeans(data_.const_view(), opts), "knori-");
}

TEST_P(ExactnessSweep, MtiPruningPreservesClustering) {
  Options opts = opts_;
  opts.prune = true;
  const Result res = kmeans(data_.const_view(), opts);
  expect_same_clustering(res, "knori");
  // And pruning must actually prune (beyond trivial sizes).
  if (GetParam().n >= 1000 && GetParam().k > 1) {
    EXPECT_LT(res.counters.dist_computations,
              static_cast<std::uint64_t>(GetParam().n) * GetParam().k *
                  res.iters);
  }
}

TEST_P(ExactnessSweep, NumaObliviousMatchesSerial) {
  Options opts = opts_;
  opts.numa_aware = false;
  expect_same_clustering(kmeans(data_.const_view(), opts), "oblivious");
}

TEST_P(ExactnessSweep, LockedBaselineMatchesSerial) {
  expect_same_clustering(lloyd_locked(data_.const_view(), opts_), "locked");
}

TEST_P(ExactnessSweep, ElkanTiMatchesSerial) {
  expect_same_clustering(elkan_ti(data_.const_view(), opts_), "elkan");
}

TEST_P(ExactnessSweep, GemmMatchesSerial) {
  // The algebraic formulation reorders FP ops; permit a vanishing fraction
  // of tie-flips on top of the energy agreement.
  expect_same_clustering(gemm_kmeans(data_.const_view(), opts_), "gemm",
                         /*assign_slack=*/0.001);
}

TEST_P(ExactnessSweep, GemmTileShapeAndThreadGridBitwiseInvariant) {
  // --gemm-tile is a pure performance knob and threads never change the
  // reduction shape: every (tile, T) cell must reproduce the first cell's
  // centroids, assignments and energy BITWISE (real-valued data — no
  // integer-exactness crutch; this is per-ISA self-determinism).
  Result first;
  bool have_first = false;
  for (const char* tile : {"auto", "1x8", "3x16", "128x512"}) {
    for (const int threads : {1, 4}) {
      Options opts = opts_;
      opts.threads = threads;
      opts.gemm_tile = parse_gemm_tile_or_throw(tile, "tile");
      Result res = gemm_kmeans(data_.const_view(), opts);
      if (!have_first) {
        first = std::move(res);
        have_first = true;
        continue;
      }
      const std::string what =
          std::string("gemm tile=") + tile + " T=" + std::to_string(threads);
      ASSERT_EQ(res.iters, first.iters) << what;
      EXPECT_EQ(res.assignments, first.assignments) << what;
      EXPECT_EQ(res.cluster_sizes, first.cluster_sizes) << what;
      EXPECT_EQ(std::memcmp(res.centroids.data(), first.centroids.data(),
                            first.centroids.size() * sizeof(value_t)),
                0)
          << what << ": centroids differ bitwise";
      EXPECT_EQ(std::memcmp(&res.energy, &first.energy, sizeof(double)), 0)
          << what;
    }
  }
}

TEST_P(ExactnessSweep, SchedulerPoliciesAgree) {
  for (const auto policy :
       {sched::SchedPolicy::kFifo, sched::SchedPolicy::kStatic}) {
    Options opts = opts_;
    opts.sched = policy;
    expect_same_clustering(kmeans(data_.const_view(), opts),
                           sched::to_string(policy));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactnessSweep,
    ::testing::Values(
        SweepParam{data::Distribution::kNaturalClusters, 2000, 8, 5, 4, 1},
        SweepParam{data::Distribution::kNaturalClusters, 5000, 16, 10, 3, 2},
        SweepParam{data::Distribution::kNaturalClusters, 1000, 4, 2, 8, 3},
        SweepParam{data::Distribution::kNaturalClusters, 3000, 32, 20, 2, 4},
        SweepParam{data::Distribution::kUniformRandom, 2000, 8, 8, 4, 5},
        SweepParam{data::Distribution::kUniformRandom, 1500, 3, 4, 5, 6},
        SweepParam{data::Distribution::kUnivariateRandom, 2500, 6, 6, 4, 7},
        SweepParam{data::Distribution::kNaturalClusters, 513, 7, 3, 7, 8},
        SweepParam{data::Distribution::kNaturalClusters, 4096, 2, 12, 4, 9}),
    param_name);

// --- Invariant checks beyond clustering equality ---------------------------

TEST(Invariants, EnergyMonotoneNonIncreasingUnderLloydSteps) {
  // Run iteration-by-iteration via kProvided init and verify the energy
  // sequence never increases (a defining property of Lloyd's).
  data::GeneratorSpec spec;
  spec.n = 3000;
  spec.d = 8;
  spec.true_clusters = 6;
  const DenseMatrix m = data::generate(spec);

  Options opts;
  opts.k = 6;
  opts.threads = 2;
  opts.max_iters = 1;
  opts.seed = 5;
  double prev_energy = std::numeric_limits<double>::infinity();
  DenseMatrix centroids;
  for (int step = 0; step < 15; ++step) {
    if (step > 0) {
      opts.init = Init::kProvided;
      opts.initial_centroids = centroids;
    }
    Result res = kmeans(m.const_view(), opts);
    EXPECT_LE(res.energy, prev_energy * (1 + 1e-12)) << "step " << step;
    prev_energy = res.energy;
    centroids = std::move(res.centroids);
  }
}

TEST(Invariants, MtiUpperBoundsAreTrueBounds) {
  // After any iteration, each point's recorded distance to its assigned
  // centroid must be <= the running MTI upper bound. We verify indirectly:
  // pruned and unpruned runs agree per iteration (same iters/assignments),
  // which can only hold if the bounds never under-estimate.
  data::GeneratorSpec spec;
  spec.n = 4000;
  spec.d = 12;
  spec.true_clusters = 9;
  const DenseMatrix m = data::generate(spec);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Options a, b;
    a.k = b.k = 9;
    a.threads = b.threads = 4;
    a.max_iters = b.max_iters = 40;
    a.seed = b.seed = seed;
    a.prune = true;
    b.prune = false;
    const Result pruned = kmeans(m.const_view(), a);
    const Result full = kmeans(m.const_view(), b);
    ASSERT_EQ(pruned.iters, full.iters) << seed;
    for (std::size_t i = 0; i < pruned.assignments.size(); ++i)
      ASSERT_EQ(pruned.assignments[i], full.assignments[i])
          << "seed " << seed << " row " << i;
  }
}

TEST(Invariants, ClusterSizesSumToN) {
  data::GeneratorSpec spec;
  spec.n = 2500;
  spec.d = 5;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 7;
  opts.threads = 3;
  const Result res = kmeans(m.const_view(), opts);
  index_t total = 0;
  for (index_t s : res.cluster_sizes) total += s;
  EXPECT_EQ(total, 2500u);
}

TEST(Invariants, ThreadCountDoesNotChangeResultBitwise) {
  // The per-chunk reduction is keyed to the (n, task_size) chunk grid and
  // folded with a fixed tree, so centroids and energy must be *bitwise*
  // identical across thread counts — not merely close.
  data::GeneratorSpec spec;
  spec.n = 3000;
  spec.d = 10;
  spec.true_clusters = 8;
  const DenseMatrix m = data::generate(spec);
  Options base;
  base.k = 8;
  base.threads = 1;
  base.max_iters = 40;
  const Result one = kmeans(m.const_view(), base);
  for (int threads : {2, 3, 5, 8}) {
    Options opts = base;
    opts.threads = threads;
    const Result res = kmeans(m.const_view(), opts);
    EXPECT_EQ(res.iters, one.iters) << threads;
    EXPECT_EQ(res.energy, one.energy) << threads;  // bitwise
    ASSERT_EQ(res.assignments, one.assignments) << threads;
    ASSERT_EQ(std::memcmp(res.centroids.data(), one.centroids.data(),
                          one.centroids.size() * sizeof(value_t)),
              0)
        << threads;
  }
}

TEST(Invariants, SeedChangesInitButNotValidity) {
  data::GeneratorSpec spec;
  spec.n = 2000;
  spec.d = 4;
  spec.true_clusters = 4;
  const DenseMatrix m = data::generate(spec);
  double first_energy = -1;
  bool any_different = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Options opts;
    opts.k = 4;
    opts.threads = 2;
    opts.seed = seed;
    const Result res = kmeans(m.const_view(), opts);
    index_t total = 0;
    for (index_t s : res.cluster_sizes) total += s;
    EXPECT_EQ(total, 2000u);
    if (first_energy < 0)
      first_energy = res.energy;
    else if (std::abs(res.energy - first_energy) > 1e-9)
      any_different = true;
  }
  (void)any_different;  // different seeds may or may not reach local optima
}

}  // namespace
}  // namespace knor
