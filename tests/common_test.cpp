// Unit tests for the common substrate: aligned buffers, PRNG, dense
// matrices, timers, memory tracking, logging.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/dense_matrix.hpp"
#include "common/logger.hpp"
#include "common/memory_tracker.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"

namespace knor {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<double> buf;
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesAlignedZeroedMemory) {
  AlignedBuffer<double> buf(1000);
  ASSERT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLine, 0u);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, OddSizesRoundUpWithoutOverrun) {
  // 7 elements * 8B = 56B < one cache line; must still be addressable.
  AlignedBuffer<double> buf(7);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(buf[i], static_cast<double>(i));
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(16);
  a[3] = 42;
  int* raw = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, MoveAssignReleasesOldAllocation) {
  AlignedBuffer<int> a(8), b(4);
  b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
}

TEST(Prng, DeterministicForSeedAndStream) {
  Prng a(123, 5), b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, StreamsAreIndependent) {
  Prng a(123, 0), b(123, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, NextBelowIsInRangeAndCoversValues) {
  Prng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit in 1000 draws
}

TEST(Prng, NextBelowZeroAndOne) {
  Prng rng(1);
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Prng, GaussianMomentsRoughlyStandard) {
  Prng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(DenseMatrix, RowMajorLayoutAndAccessors) {
  DenseMatrix m(3, 4);
  m.at(2, 1) = 7.5;
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.row(2)[1], 7.5);
  EXPECT_EQ(m.data()[2 * 4 + 1], 7.5);
}

TEST(DenseMatrix, DeepCopy) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  DenseMatrix b = a;
  b.at(0, 0) = 9.0;
  EXPECT_EQ(a.at(0, 0), 1.0);
  EXPECT_EQ(b.at(0, 0), 9.0);
}

TEST(MatrixView, SubRowsBoundsChecked) {
  DenseMatrix m(10, 2);
  auto v = m.const_view();
  auto sub = v.sub_rows(4, 3);
  EXPECT_EQ(sub.rows(), 3u);
  EXPECT_EQ(sub.row(0), m.row(4));
  EXPECT_THROW(v.sub_rows(8, 3), std::out_of_range);
}

TEST(IterStats, Statistics) {
  IterStats s;
  s.record(1.0);
  s.record(2.0);
  s.record(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.total(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(IterStats, EmptyIsZero) {
  IterStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.elapsed_ms(), 15.0);
  t.restart();
  EXPECT_LT(t.elapsed_ms(), 15.0);
}

TEST(MemoryTracker, TagAccountingAndPeak) {
  auto& mt = MemoryTracker::instance();
  mt.reset();
  mt.add("a", 100);
  mt.add("b", 50);
  EXPECT_EQ(mt.live_bytes(), 150);
  EXPECT_EQ(mt.tag_bytes("a"), 100);
  mt.sub("a", 100);
  EXPECT_EQ(mt.live_bytes(), 50);
  EXPECT_EQ(mt.peak_bytes(), 150);
  mt.reset();
}

TEST(MemoryTracker, ScopedAllocReleasesOnDestruction) {
  auto& mt = MemoryTracker::instance();
  mt.reset();
  {
    ScopedAlloc alloc("scoped", 4096);
    EXPECT_EQ(mt.tag_bytes("scoped"), 4096);
  }
  EXPECT_EQ(mt.tag_bytes("scoped"), 0);
  mt.reset();
}

TEST(MemoryTracker, RssProbesReturnPlausibleValues) {
  const std::size_t rss = current_rss_bytes();
  const std::size_t peak = peak_rss_bytes();
  EXPECT_GT(rss, 1u << 20);  // a running gtest binary exceeds 1 MiB
  EXPECT_GE(peak, rss / 2);  // peak is near-or-above current
}

TEST(TiledMatrix2D, PanelLayoutRoundTrips) {
  // Fill a 13x10 matrix with distinct values, pack into 8x4 panels, and
  // read every element back through the documented addressing:
  // panel(I, J)[c * row_stride() + r] == src(I*rb + r, J*cb + c).
  const index_t rows = 13, cols = 10, rb = 8, cb = 4;
  DenseMatrix m(rows, cols);
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c)
      m.at(r, c) = static_cast<value_t>(r * 100 + c);
  TiledMatrix t;
  t.pack(m.const_view(), rb, cb);
  EXPECT_EQ(t.rows(), rows);
  EXPECT_EQ(t.cols(), cols);
  EXPECT_EQ(t.row_panels(), 2u);
  EXPECT_EQ(t.col_panels(), 3u);
  EXPECT_EQ(t.row_stride(), TiledMatrix::padded_row_stride(rb));
  for (index_t I = 0; I < t.row_panels(); ++I)
    for (index_t J = 0; J < t.col_panels(); ++J) {
      const value_t* p = t.panel(I, J);
      // Panel bases are cache-line aligned for the kernels' aligned loads.
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLine, 0u);
      for (index_t c = 0; c < t.panel_cols(J); ++c)
        for (index_t r = 0; r < t.panel_rows(I); ++r)
          EXPECT_EQ(p[c * t.row_stride() + r], m.at(I * rb + r, J * cb + c))
              << "panel " << I << "," << J << " r=" << r << " c=" << c;
    }
}

TEST(TiledMatrix2D, TailPanelsAreZeroPadded) {
  // 5 rows into 8-row blocks: lanes 5..7 of every column line must be +0.0
  // (the GEMM kernel's dead lanes multiply into these).
  DenseMatrix m(5, 3);
  for (index_t r = 0; r < 5; ++r)
    for (index_t c = 0; c < 3; ++c) m.at(r, c) = 7.0;
  TiledMatrix t;
  t.pack(m.const_view(), 8, 3);
  const value_t* p = t.panel(0, 0);
  for (index_t c = 0; c < 3; ++c)
    for (index_t r = 5; r < t.row_stride(); ++r)
      EXPECT_EQ(p[c * t.row_stride() + r], 0.0) << "lane " << r;
}

TEST(TiledMatrix2D, RepackReusesStorageAndKeepsPaddingZero) {
  DenseMatrix m(5, 3);
  for (index_t r = 0; r < 5; ++r)
    for (index_t c = 0; c < 3; ++c) m.at(r, c) = 1.0;
  TiledMatrix t;
  t.pack(m.const_view(), 8, 3);
  const value_t* before = t.panel(0, 0);
  for (index_t r = 0; r < 5; ++r)
    for (index_t c = 0; c < 3; ++c) m.at(r, c) = 2.0;
  t.pack(m.const_view(), 8, 3);  // same geometry: no reallocation
  EXPECT_EQ(t.panel(0, 0), before);
  for (index_t c = 0; c < 3; ++c) {
    for (index_t r = 0; r < 5; ++r)
      EXPECT_EQ(t.panel(0, 0)[c * t.row_stride() + r], 2.0);
    for (index_t r = 5; r < t.row_stride(); ++r)
      EXPECT_EQ(t.panel(0, 0)[c * t.row_stride() + r], 0.0);
  }
}

TEST(TiledMatrix2D, RejectsEmptySourceAndZeroBlocks) {
  DenseMatrix m(4, 4);
  TiledMatrix t;
  EXPECT_THROW(t.pack(ConstMatrixView{}, 8, 4), std::invalid_argument);
  EXPECT_THROW(t.pack(m.const_view(), 0, 4), std::invalid_argument);
  EXPECT_THROW(t.pack(m.const_view(), 8, 0), std::invalid_argument);
}

TEST(Logger, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  set_log_level(saved);
}

}  // namespace
}  // namespace knor
