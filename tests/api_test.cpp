// Public API surface test: everything a downstream user needs must be
// reachable through the single umbrella header, and the README quickstart
// must work as written.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "knor/knor.hpp"  // the only library include in this file

namespace {

using namespace knor;

DenseMatrix small_data() {
  data::GeneratorSpec spec;
  spec.n = 2000;
  spec.d = 6;
  spec.true_clusters = 4;
  return data::generate(spec);
}

TEST(PublicApi, ReadmeQuickstartCompilesAndRuns) {
  DenseMatrix m = small_data();
  Options opts;
  opts.k = 4;
  opts.init = Init::kKmeansPP;
  opts.prune = true;
  Result r = kmeans(m.const_view(), opts);
  EXPECT_EQ(r.centroids.rows(), 4u);
  EXPECT_EQ(r.assignments.size(), 2000u);
  EXPECT_GT(r.energy, 0.0);
  EXPECT_GT(r.iter_times.count(), 0u);
}

TEST(PublicApi, AllEnginesReachableFromUmbrellaHeader) {
  DenseMatrix m = small_data();
  Options opts;
  opts.k = 3;
  opts.threads = 2;
  opts.max_iters = 5;
  EXPECT_NO_THROW(lloyd_serial(m.const_view(), opts));
  EXPECT_NO_THROW(lloyd_locked(m.const_view(), opts));
  EXPECT_NO_THROW(elkan_ti(m.const_view(), opts));
  EXPECT_NO_THROW(gemm_kmeans(m.const_view(), opts));
  EXPECT_NO_THROW(spherical_kmeans(m.const_view(), opts));
  MinibatchOptions mb;
  mb.max_iters = 10;
  EXPECT_NO_THROW(minibatch(m.const_view(), opts, mb));
  std::vector<cluster_t> labels(2000, kInvalidCluster);
  EXPECT_NO_THROW(seeded_kmeans(m.const_view(), opts, labels));
}

TEST(PublicApi, SemAndDistReachableFromUmbrellaHeader) {
  const std::string path =
      std::filesystem::temp_directory_path() /
      ("knor_api_" + std::to_string(::getpid()) + ".kmat");
  data::GeneratorSpec spec;
  spec.n = 1000;
  spec.d = 4;
  data::write_generated(path, spec);

  Options opts;
  opts.k = 3;
  opts.threads = 2;
  opts.max_iters = 5;
  sem::SemOptions sopts;
  EXPECT_NO_THROW(sem::kmeans(path, opts, sopts));

  DenseMatrix m = data::read_matrix(path);
  dist::DistOptions dopts;
  dopts.ranks = 2;
  EXPECT_NO_THROW(dist::kmeans(m.const_view(), opts, dopts));
  EXPECT_NO_THROW(dist::kmeans(spec, opts, dopts));
  EXPECT_NO_THROW(dist::mpi_kmeans(m.const_view(), opts, dopts));
  std::filesystem::remove(path);
}

TEST(PublicApi, OptionsDefaultsMatchPaper) {
  Options opts;
  EXPECT_TRUE(opts.prune);                       // MTI on by default
  EXPECT_TRUE(opts.numa_aware);                  // NUMA optimizations on
  EXPECT_TRUE(opts.numa_bind);                   // workers pinned to nodes
  EXPECT_EQ(opts.task_size, 0u);                 // adaptive task sizing
  // The paper's fixed §8.4 task size remains the adaptive upper bound.
  EXPECT_EQ(sched::Scheduler::kPaperTaskSize, 8192u);
  EXPECT_EQ(opts.sched, sched::SchedPolicy::kNumaAware);
  sem::SemOptions sopts;
  EXPECT_EQ(sopts.page_size, 4096u);             // §6.2.1 minimum read
  EXPECT_EQ(sopts.cache_update_interval, 5);     // §6.2.2 I_cache
  EXPECT_TRUE(sopts.row_cache_enabled);
}

TEST(PublicApi, ResultSummaryAndMakespanUsable) {
  DenseMatrix m = small_data();
  Options opts;
  opts.k = 2;
  opts.threads = 2;
  opts.max_iters = 5;
  const Result r = kmeans(m.const_view(), opts);
  EXPECT_FALSE(r.summary().empty());
  EXPECT_GT(r.makespan_per_iter(), 0.0);
  EXPECT_EQ(r.thread_busy_s.size(), 2u);
}

}  // namespace
