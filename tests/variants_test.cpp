// Tests for the future-work variants (paper §9): spherical k-means and
// semi-supervised (seeded) k-means, plus the knors checkpoint/resume path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "core/knori.hpp"
#include "core/variants.hpp"
#include "data/generator.hpp"
#include "data/matrix_io.hpp"
#include "sem/checkpoint.hpp"
#include "sem/sem_kmeans.hpp"

namespace knor {
namespace {

DenseMatrix sphere_data(index_t n, index_t d, int components,
                        std::uint64_t seed = 3) {
  data::GeneratorSpec spec;
  spec.n = n;
  spec.d = d;
  spec.true_clusters = components;
  spec.separation = 10.0;
  spec.seed = seed;
  return data::generate(spec);
}

TEST(Spherical, CentroidsOnUnitSphere) {
  const DenseMatrix m = sphere_data(3000, 8, 5);
  Options opts;
  opts.k = 5;
  opts.threads = 2;
  opts.max_iters = 30;
  const Result res = spherical_kmeans(m.const_view(), opts);
  for (index_t c = 0; c < res.centroids.rows(); ++c) {
    value_t norm_sq = 0;
    for (index_t j = 0; j < 8; ++j)
      norm_sq += res.centroids.at(c, j) * res.centroids.at(c, j);
    EXPECT_NEAR(norm_sq, 1.0, 1e-9) << "centroid " << c;
  }
}

TEST(Spherical, EnergyIsCosineDissimilarityInRange) {
  const DenseMatrix m = sphere_data(2000, 6, 4);
  Options opts;
  opts.k = 4;
  opts.threads = 2;
  const Result res = spherical_kmeans(m.const_view(), opts);
  // 1 - cos in [0, 2] per point.
  EXPECT_GE(res.energy, 0.0);
  EXPECT_LE(res.energy, 2.0 * 2000);
  index_t total = 0;
  for (index_t s : res.cluster_sizes) total += s;
  EXPECT_EQ(total, 2000u);
}

TEST(Spherical, ScaleInvariant) {
  // Spherical clustering depends only on direction: scaling every row by a
  // positive constant must not change the clustering.
  const DenseMatrix m = sphere_data(2000, 8, 4);
  DenseMatrix scaled_m = m;
  for (std::size_t i = 0; i < scaled_m.size(); ++i) scaled_m.data()[i] *= 37.5;
  Options opts;
  opts.k = 4;
  opts.threads = 2;
  opts.max_iters = 25;
  const Result a = spherical_kmeans(m.const_view(), opts);
  const Result b = spherical_kmeans(scaled_m.const_view(), opts);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i)
    ASSERT_EQ(a.assignments[i], b.assignments[i]) << i;
}

TEST(Spherical, ThreadCountInvariant) {
  const DenseMatrix m = sphere_data(3000, 8, 5);
  Options base;
  base.k = 5;
  base.threads = 1;
  base.max_iters = 30;
  const Result one = spherical_kmeans(m.const_view(), base);
  base.threads = 4;
  const Result four = spherical_kmeans(m.const_view(), base);
  EXPECT_EQ(one.iters, four.iters);
  EXPECT_LT(std::abs(one.energy - four.energy) /
                std::max(1e-30, one.energy),
            1e-9);
}

TEST(Spherical, ZeroRowRejected) {
  DenseMatrix m(10, 3);  // all zeros
  Options opts;
  opts.k = 2;
  EXPECT_THROW(spherical_kmeans(m.const_view(), opts), std::invalid_argument);
}

TEST(Seeded, LabeledPointsNeverMove) {
  const DenseMatrix m = sphere_data(4000, 6, 4);
  std::vector<cluster_t> labels(4000, kInvalidCluster);
  // Label every 10th point with an arbitrary (even adversarial) cluster.
  for (index_t r = 0; r < 4000; r += 10)
    labels[r] = static_cast<cluster_t>(r / 10 % 4);
  Options opts;
  opts.k = 4;
  opts.threads = 2;
  opts.max_iters = 40;
  const Result res = seeded_kmeans(m.const_view(), opts, labels);
  for (index_t r = 0; r < 4000; ++r) {
    if (labels[r] != kInvalidCluster) {
      ASSERT_EQ(res.assignments[r], labels[r]) << r;
    }
  }
}

TEST(Seeded, NoLabelsBehavesLikeKmeans) {
  const DenseMatrix m = sphere_data(3000, 8, 5);
  const std::vector<cluster_t> labels(3000, kInvalidCluster);
  Options opts;
  opts.k = 5;
  opts.threads = 2;
  opts.max_iters = 50;
  const Result seeded = seeded_kmeans(m.const_view(), opts, labels);
  const Result plain = kmeans(m.const_view(), opts);
  // Different init paths may reach different local optima; both must be
  // valid clusterings with comparable energy on easy data.
  EXPECT_LT(seeded.energy, 3 * plain.energy);
  index_t total = 0;
  for (index_t s : seeded.cluster_sizes) total += s;
  EXPECT_EQ(total, 3000u);
}

TEST(Seeded, SeedsGuideClusterIdentity) {
  // Plant 6 components and seed cluster c with points from component c.
  // The recovered clustering must map component c to cluster c (no label
  // permutation ambiguity — the point of semi-supervision).
  data::GeneratorSpec spec;
  spec.n = 6000;
  spec.d = 8;
  spec.true_clusters = 6;
  spec.separation = 12.0;
  const DenseMatrix m = data::generate(spec);
  std::vector<cluster_t> labels(6000, kInvalidCluster);
  int labeled = 0;
  for (index_t r = 0; r < 6000 && labeled < 300; ++r) {
    labels[r] =
        static_cast<cluster_t>(data::true_component_of_row(spec, r));
    ++labeled;
  }
  Options opts;
  opts.k = 6;
  opts.threads = 2;
  opts.max_iters = 60;
  const Result res = seeded_kmeans(m.const_view(), opts, labels);
  index_t agree = 0;
  for (index_t r = 0; r < 6000; ++r)
    if (res.assignments[r] ==
        static_cast<cluster_t>(data::true_component_of_row(spec, r)))
      ++agree;
  EXPECT_GT(static_cast<double>(agree) / 6000.0, 0.95);
}

TEST(Seeded, InvalidInputsThrow) {
  const DenseMatrix m = sphere_data(100, 4, 2);
  Options opts;
  opts.k = 2;
  std::vector<cluster_t> wrong_size(50, kInvalidCluster);
  EXPECT_THROW(seeded_kmeans(m.const_view(), opts, wrong_size),
               std::invalid_argument);
  std::vector<cluster_t> bad_label(100, kInvalidCluster);
  bad_label[0] = 7;  // >= k
  EXPECT_THROW(seeded_kmeans(m.const_view(), opts, bad_label),
               std::invalid_argument);
}

// --- Checkpoint/resume ------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("knor_ckpt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  sem::Checkpoint ckpt;
  ckpt.iteration = 17;
  ckpt.centroids = DenseMatrix(3, 4);
  ckpt.centroids.at(2, 3) = 5.5;
  ckpt.assignments = {0, 1, 2, 1, 0};
  ckpt.upper_bounds = {1.0, 2.0, 3.0, 4.0, 5.0};
  ckpt.sums = DenseMatrix(3, 4);
  ckpt.sums.at(0, 0) = -2.0;
  ckpt.counts = {2, 2, 1};
  const std::string path = dir_ / "a.ckpt";
  sem::save_checkpoint(path, ckpt);
  EXPECT_TRUE(sem::checkpoint_exists(path));

  const sem::Checkpoint loaded = sem::load_checkpoint(path);
  EXPECT_EQ(loaded.iteration, 17u);
  EXPECT_EQ(loaded.centroids.at(2, 3), 5.5);
  EXPECT_EQ(loaded.assignments, ckpt.assignments);
  EXPECT_EQ(loaded.upper_bounds, ckpt.upper_bounds);
  EXPECT_EQ(loaded.sums.at(0, 0), -2.0);
  EXPECT_EQ(loaded.counts, ckpt.counts);
}

TEST_F(CheckpointTest, CorruptFilesRejected) {
  const std::string path = dir_ / "bad.ckpt";
  EXPECT_FALSE(sem::checkpoint_exists(path));
  EXPECT_THROW(sem::load_checkpoint(path), std::runtime_error);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTACKPT and some trailing bytes", f);
    std::fclose(f);
  }
  EXPECT_FALSE(sem::checkpoint_exists(path));
  EXPECT_THROW(sem::load_checkpoint(path), std::runtime_error);
}

class CheckpointResume : public CheckpointTest,
                         public ::testing::WithParamInterface<bool> {};

TEST_P(CheckpointResume, ResumedRunMatchesUninterrupted) {
  const bool prune = GetParam();
  data::GeneratorSpec spec;
  spec.n = 5000;
  spec.d = 8;
  // Uniform data converges slowly, guaranteeing the run is still going at
  // the interruption point (iteration 8).
  spec.dist = data::Distribution::kUniformRandom;
  const std::string matrix = dir_ / "m.kmat";
  data::write_generated(matrix, spec);

  Options opts;
  opts.k = 6;
  opts.threads = 2;
  opts.max_iters = 30;
  opts.prune = prune;

  sem::SemOptions plain;
  const Result uninterrupted = sem::kmeans(matrix, opts, plain);

  // Interrupted run: checkpoint every 4 iterations, "crash" at 8 by capping
  // max_iters, then resume to completion.
  sem::SemOptions with_ckpt = plain;
  with_ckpt.checkpoint_path = dir_ / "run.ckpt";
  with_ckpt.checkpoint_interval = 4;
  Options first_leg = opts;
  first_leg.max_iters = 8;
  sem::kmeans(matrix, first_leg, with_ckpt);
  ASSERT_TRUE(sem::checkpoint_exists(with_ckpt.checkpoint_path));

  sem::SemOptions resume_opts = with_ckpt;
  resume_opts.resume = true;
  const Result resumed = sem::kmeans(matrix, opts, resume_opts);

  EXPECT_EQ(resumed.iters + 8, uninterrupted.iters);
  EXPECT_LT(std::abs(resumed.energy - uninterrupted.energy) /
                uninterrupted.energy,
            1e-9);
  for (std::size_t i = 0; i < uninterrupted.assignments.size(); ++i)
    ASSERT_EQ(resumed.assignments[i], uninterrupted.assignments[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(PruneModes, CheckpointResume, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "mti" : "nomti";
                         });

TEST_F(CheckpointTest, ShapeMismatchRejectedOnResume) {
  data::GeneratorSpec spec;
  spec.n = 500;
  spec.d = 4;
  const std::string matrix = dir_ / "m.kmat";
  data::write_generated(matrix, spec);

  Options opts;
  opts.k = 3;
  opts.threads = 1;
  opts.max_iters = 6;
  sem::SemOptions sopts;
  sopts.checkpoint_path = dir_ / "s.ckpt";
  sopts.checkpoint_interval = 2;
  sem::kmeans(matrix, opts, sopts);

  Options wrong_k = opts;
  wrong_k.k = 4;
  sem::SemOptions resume_opts = sopts;
  resume_opts.resume = true;
  EXPECT_THROW(sem::kmeans(matrix, wrong_k, resume_opts), std::runtime_error);
}

}  // namespace
}  // namespace knor
