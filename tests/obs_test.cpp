// Observability-layer tests (DESIGN.md §10): histogram bucket math against
// a sorted-vector oracle, counter shard-merge determinism under concurrent
// bumps (a TSan target), span nesting well-formedness, and the end-to-end
// strip-diff contract — the deterministic half of an engine run's metrics
// is bit-identical across repeated runs at T=1 and T=4.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "knor/knor.hpp"

namespace {

using namespace knor;

#ifndef KNOR_NO_OBS

// ---------------------------------------------------------------- buckets

TEST(ObsHistogram, BucketBoundsContainEveryValue) {
  // lo(bucket_of(v)) <= v <= hi(bucket_of(v)) over exact small values,
  // octave boundaries, and the extremes.
  std::vector<std::uint64_t> probes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                       15, 16, 17, 100, 999, 4096};
  for (int shift = 10; shift < 64; shift += 7) {
    const std::uint64_t p = std::uint64_t{1} << shift;
    probes.insert(probes.end(), {p - 1, p, p + 1, p + p / 2});
  }
  probes.push_back(~std::uint64_t{0});
  for (const std::uint64_t v : probes) {
    const int b = obs::Histogram::bucket_of(v);
    ASSERT_GE(b, 0) << v;
    ASSERT_LT(b, obs::Histogram::kBuckets) << v;
    EXPECT_LE(obs::Histogram::bucket_lo(b), v) << "bucket " << b;
    EXPECT_GE(obs::Histogram::bucket_hi(b), v) << "bucket " << b;
  }
}

TEST(ObsHistogram, BucketsPartitionTheRange) {
  // Consecutive buckets tile [0, 2^64) with no gap or overlap, and the
  // relative bucket width never exceeds 25% (4 sub-buckets per octave).
  int last = obs::Histogram::bucket_of(0);
  EXPECT_EQ(last, 0);
  for (int b = 0; b + 1 < obs::Histogram::kBuckets; ++b) {
    const std::uint64_t hi = obs::Histogram::bucket_hi(b);
    if (hi == ~std::uint64_t{0}) break;  // top occupied bucket
    EXPECT_EQ(obs::Histogram::bucket_lo(b + 1), hi + 1) << "bucket " << b;
    EXPECT_EQ(obs::Histogram::bucket_of(hi), b);
    EXPECT_EQ(obs::Histogram::bucket_of(hi + 1), b + 1);
    const std::uint64_t lo = obs::Histogram::bucket_lo(b);
    if (lo >= 4) {
      EXPECT_LE(static_cast<double>(hi + 1 - lo), 0.25 * lo + 1)
          << "bucket " << b;
    }
  }
}

TEST(ObsHistogram, QuantilesMatchSortedVectorOracle) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("t.lat_us", obs::Det::kTiming);
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform-ish spread: small exact values through multi-million.
    const std::uint64_t v = rng() % (std::uint64_t{1} << (4 + rng() % 20));
    oracle.push_back(v);
    h.record(v);
  }
  std::sort(oracle.begin(), oracle.end());

  const obs::Snapshot snap = reg.snapshot();
  const obs::Metric* m = snap.find("t.lat_us");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->hist.count, oracle.size());
  EXPECT_EQ(m->hist.max, oracle.back());
  std::uint64_t sum = 0;
  for (const std::uint64_t v : oracle) sum += v;
  EXPECT_EQ(m->hist.sum, sum);

  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(oracle.size()))));
    const std::uint64_t truth = oracle[static_cast<std::size_t>(rank - 1)];
    const double est = m->hist.quantile(q);
    // The estimate is the midpoint of the bucket holding the rank sample:
    // it can never leave that bucket, which bounds the relative error by
    // the 25% bucket width.
    EXPECT_GE(est,
              static_cast<double>(
                  obs::Histogram::bucket_lo(obs::Histogram::bucket_of(truth))))
        << "q=" << q;
    EXPECT_LE(est,
              static_cast<double>(
                  obs::Histogram::bucket_hi(obs::Histogram::bucket_of(truth))))
        << "q=" << q;
  }
  EXPECT_TRUE(std::isnan(obs::HistogramData{}.quantile(0.5)));
}

// ----------------------------------------------------------- shard merge

TEST(ObsCounter, ConcurrentBumpsMergeExactly) {
  // The TSan conformance target: T threads hammer one counter and one
  // histogram; the shard merge must produce the exact arithmetic total
  // regardless of which thread landed in which shard.
  obs::Registry reg;
  obs::Counter& c = reg.counter("t.bumps", obs::Det::kDeterministic);
  obs::Histogram& h = reg.histogram("t.hist", obs::Det::kTiming);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(static_cast<std::uint64_t>(t + 1));
        h.record(static_cast<std::uint64_t>(i % 257));
      }
    });
  for (std::thread& w : workers) w.join();

  std::uint64_t expect = 0;
  for (int t = 0; t < kThreads; ++t)
    expect += static_cast<std::uint64_t>(t + 1) * kPerThread;
  EXPECT_EQ(c.value(), expect);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.max(), 256u);
}

// -------------------------------------------------------- registry rules

TEST(ObsRegistry, RegistrationIsIdempotentAndStrict) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.n", obs::Det::kDeterministic);
  EXPECT_EQ(&a, &reg.counter("x.n", obs::Det::kDeterministic));
  // One name can never straddle the kind or deterministic/timing split.
  EXPECT_THROW(reg.counter("x.n", obs::Det::kTiming), std::logic_error);
  EXPECT_THROW(reg.gauge("x.n", obs::Det::kDeterministic), std::logic_error);
  EXPECT_THROW(reg.histogram("x.n", obs::Det::kDeterministic),
               std::logic_error);
}

TEST(ObsRegistry, DiffSubtractsCountersAndKeepsGauges) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("x.n", obs::Det::kDeterministic);
  obs::Gauge& g = reg.gauge("x.depth", obs::Det::kTiming);
  obs::Counter& idle = reg.counter("x.idle", obs::Det::kDeterministic);
  c.add(10);
  g.set(5);
  const obs::Snapshot before = reg.snapshot();
  c.add(7);
  g.set(3);
  (void)idle;  // registered but never bumped between the snapshots
  const obs::Snapshot delta = obs::diff(before, reg.snapshot());
  EXPECT_EQ(delta.value_or("x.n", -1), 7);
  EXPECT_EQ(delta.value_or("x.depth", -1), 3);  // gauges: point-in-time
  // Zero-delta counters drop out of the per-run view entirely.
  EXPECT_EQ(delta.find("x.idle"), nullptr);
}

TEST(ObsRegistry, JsonSplitsDeterministicFromTiming) {
  obs::Registry reg;
  reg.counter("det.rows", obs::Det::kDeterministic).add(42);
  reg.histogram("wall.lat_us", obs::Det::kTiming).record(100);
  const std::string json = reg.snapshot().to_json();
  const std::size_t det = json.find("\"deterministic\"");
  const std::size_t tim = json.find("\"timing\"");
  ASSERT_NE(det, std::string::npos);
  ASSERT_NE(tim, std::string::npos);
  EXPECT_LT(det, tim);
  const std::size_t rows = json.find("\"det.rows\": 42");
  const std::size_t lat = json.find("\"wall.lat_us\"");
  ASSERT_NE(rows, std::string::npos);
  ASSERT_NE(lat, std::string::npos);
  // Each metric lands inside its half of the document.
  EXPECT_LT(rows, tim);
  EXPECT_GT(lat, tim);
  EXPECT_NE(json.find("\"schema\": \"knor-metrics-v1\""), std::string::npos);
}

// ----------------------------------------------------------------- spans

TEST(ObsSpan, NestingIsWellFormed) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable();
  const std::size_t events0 = tracer.event_count();
  EXPECT_EQ(obs::Span::depth(), 0);
  {
    obs::Span outer("t_outer");
    EXPECT_EQ(obs::Span::depth(), 1);
    {
      obs::Span inner("t_inner");
      EXPECT_EQ(obs::Span::depth(), 2);
    }
    EXPECT_EQ(obs::Span::depth(), 1);
  }
  EXPECT_EQ(obs::Span::depth(), 0);
  EXPECT_EQ(tracer.event_count(), events0 + 2);

  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"t_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"t_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  // Every span also lands in the global registry's phase histograms.
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const obs::Metric* outer_m = snap.find("phase.t_outer");
  const obs::Metric* inner_m = snap.find("phase.t_inner");
  ASSERT_NE(outer_m, nullptr);
  ASSERT_NE(inner_m, nullptr);
  EXPECT_GE(outer_m->hist.count, 1u);
  EXPECT_GE(inner_m->hist.count, 1u);
  // RAII closes inner first, so the outer duration covers the inner one.
  EXPECT_GE(outer_m->hist.max, inner_m->hist.max);
}

// ------------------------------------------------- end-to-end strip-diff

/// Canonical serialization of a snapshot's deterministic partition — the
/// in-process equivalent of `knor_bench --strip` on a --metrics file.
std::string det_fingerprint(const obs::Snapshot& snap) {
  std::string out;
  for (const obs::Metric& m : snap.metrics) {
    if (m.det != obs::Det::kDeterministic) continue;
    out += m.name;
    out += '=';
    if (m.kind == obs::Kind::kHistogram) {
      out += 'h' + std::to_string(m.hist.count) + ':' +
             std::to_string(m.hist.sum);
      for (const auto& [idx, n] : m.hist.buckets)
        out += ',' + std::to_string(idx) + 'x' + std::to_string(n);
    } else {
      out += std::to_string(m.value);
    }
    out += ';';
  }
  return out;
}

TEST(ObsStripDiff, DeterministicPartitionStableAcrossRunsAndThreads) {
  data::GeneratorSpec spec;
  spec.n = 4000;
  spec.d = 8;
  spec.true_clusters = 5;
  const DenseMatrix m = data::generate(spec);

  for (const int threads : {1, 4}) {
    Options opts;
    opts.k = 5;
    opts.threads = threads;
    opts.max_iters = 12;
    opts.seed = 11;
    const Result a = kmeans(m.const_view(), opts);
    const Result b = kmeans(m.const_view(), opts);
    ASSERT_FALSE(a.metrics.empty()) << "T=" << threads;
    const std::string fa = det_fingerprint(a.metrics);
    const std::string fb = det_fingerprint(b.metrics);
    EXPECT_FALSE(fa.empty()) << "T=" << threads;
    EXPECT_EQ(fa, fb) << "T=" << threads;
    // The per-run slice carries the engine's work counters.
    EXPECT_GT(a.metrics.value_or("core.dist_computations", 0), 0)
        << "T=" << threads;
    EXPECT_EQ(a.metrics.value_or("core.iterations", -1),
              b.metrics.value_or("core.iterations", -2))
        << "T=" << threads;
  }
}

TEST(ObsCounterParity, MetricsAgreeWithResultCountersForEveryEngine) {
  // The counter-parity contract (core/run_metrics.hpp): whatever an engine
  // reports in Result::counters must appear, identically, in its --metrics
  // registry slice. PR 6 wired only the parallel engine; this pins the
  // mapping for every entry point so the two surfaces cannot drift.
  data::GeneratorSpec spec;
  spec.n = 1500;
  spec.d = 6;
  spec.true_clusters = 4;
  const DenseMatrix m = data::generate(spec);

  Options opts;
  opts.k = 4;
  opts.threads = 2;
  opts.max_iters = 10;
  opts.seed = 23;

  struct Case {
    const char* name;
    std::function<Result()> run;
  };
  const std::vector<Case> cases = {
      {"knori", [&] { return kmeans(m.const_view(), opts); }},
      {"gemm", [&] { return gemm_kmeans(m.const_view(), opts); }},
      {"serial", [&] { return lloyd_serial(m.const_view(), opts); }},
      {"locked", [&] { return lloyd_locked(m.const_view(), opts); }},
      {"elkan", [&] { return elkan_ti(m.const_view(), opts); }},
      {"minibatch",
       [&] { return minibatch(m.const_view(), opts, MinibatchOptions{}); }},
  };
  for (const auto& c : cases) {
    const Result res = c.run();
    ASSERT_FALSE(res.metrics.empty()) << c.name;
    // Zero-delta counters drop out of the diff; absent means 0.
    EXPECT_EQ(res.metrics.value_or("core.dist_computations", 0),
              static_cast<std::int64_t>(res.counters.dist_computations))
        << c.name;
    EXPECT_EQ(res.metrics.value_or("core.clause1_skips", 0),
              static_cast<std::int64_t>(res.counters.clause1_skips))
        << c.name;
    EXPECT_EQ(res.metrics.value_or("core.iterations", -1),
              static_cast<std::int64_t>(res.iters))
        << c.name;
    EXPECT_EQ(res.metrics.value_or("sched.tasks_own", 0),
              static_cast<std::int64_t>(res.counters.tasks_own))
        << c.name;
    EXPECT_GT(res.counters.dist_computations, 0u) << c.name;
  }
}

#else  // KNOR_NO_OBS

TEST(ObsCompiledOut, SnapshotsAreEmptyAndBumpsAreNoOps) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("x.n", obs::Det::kDeterministic).add(5);
  EXPECT_TRUE(reg.snapshot().empty());
  { obs::Span span("t_phase"); }
  EXPECT_EQ(obs::Span::depth(), 0);
}

#endif  // KNOR_NO_OBS

}  // namespace
