// Unit tests for data generation and matrix I/O, including failure
// injection on malformed files.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/matrix_io.hpp"

namespace knor::data {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("knor_data_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return dir_ / name; }
  std::filesystem::path dir_;
};

TEST(Generator, DeterministicInSeed) {
  GeneratorSpec spec;
  spec.n = 500;
  spec.d = 6;
  spec.seed = 99;
  const DenseMatrix a = generate(spec);
  const DenseMatrix b = generate(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorSpec a_spec, b_spec;
  a_spec.n = b_spec.n = 100;
  a_spec.d = b_spec.d = 4;
  a_spec.seed = 1;
  b_spec.seed = 2;
  const DenseMatrix a = generate(a_spec);
  const DenseMatrix b = generate(b_spec);
  int equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.data()[i] == b.data()[i]) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Generator, RowIndependentOfChunking) {
  // generate_rows(begin, end) must be a pure function of row index, so any
  // chunked/parallel generation produces identical data.
  GeneratorSpec spec;
  spec.n = 200;
  spec.d = 8;
  spec.dist = Distribution::kNaturalClusters;
  const DenseMatrix whole = generate(spec);
  DenseMatrix part(50, 8);
  generate_rows(spec, 100, 150, part.view());
  for (index_t r = 0; r < 50; ++r)
    for (index_t c = 0; c < 8; ++c)
      EXPECT_EQ(part.at(r, c), whole.at(100 + r, c)) << r << "," << c;
}

TEST(Generator, UniformInUnitCube) {
  GeneratorSpec spec;
  spec.dist = Distribution::kUniformRandom;
  spec.n = 2000;
  spec.d = 3;
  const DenseMatrix m = generate(spec);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], 0.0);
    EXPECT_LT(m.data()[i], 1.0);
  }
}

TEST(Generator, NaturalClustersCenteredOnTrueCentres) {
  GeneratorSpec spec;
  spec.dist = Distribution::kNaturalClusters;
  spec.n = 20000;
  spec.d = 4;
  spec.true_clusters = 3;
  spec.separation = 10.0;
  const DenseMatrix m = generate(spec);
  // Empirical mean of each component must approach its true centre.
  std::vector<std::vector<double>> sums(3, std::vector<double>(4, 0.0));
  std::vector<int> counts(3, 0);
  for (index_t r = 0; r < spec.n; ++r) {
    const int c = true_component_of_row(spec, r);
    ++counts[static_cast<std::size_t>(c)];
    for (index_t j = 0; j < 4; ++j)
      sums[static_cast<std::size_t>(c)][j] += m.at(r, j);
  }
  for (int c = 0; c < 3; ++c) {
    ASSERT_GT(counts[static_cast<std::size_t>(c)], 100);
    const auto centre = true_centre(spec, c);
    for (index_t j = 0; j < 4; ++j) {
      const double mean = sums[static_cast<std::size_t>(c)][j] /
                          counts[static_cast<std::size_t>(c)];
      EXPECT_NEAR(mean, centre[j], 0.15) << "component " << c;
    }
  }
}

TEST(Generator, PowerLawSkewsComponentSizes) {
  GeneratorSpec spec;
  spec.dist = Distribution::kNaturalClusters;
  spec.n = 30000;
  spec.d = 2;
  spec.true_clusters = 8;
  spec.power_law_alpha = 2.0;
  std::vector<int> counts(8, 0);
  for (index_t r = 0; r < spec.n; ++r)
    ++counts[static_cast<std::size_t>(true_component_of_row(spec, r))];
  EXPECT_GT(counts[0], 3 * counts[7]);  // heavy head, light tail
}

TEST(Generator, FullLocalityCreatesContiguousBands) {
  GeneratorSpec spec;
  spec.dist = Distribution::kNaturalClusters;
  spec.n = 5000;
  spec.d = 2;
  spec.true_clusters = 6;
  spec.locality = 1.0;  // component fully determined by position
  int prev = -1;
  for (index_t r = 0; r < spec.n; ++r) {
    const int comp = true_component_of_row(spec, r);
    EXPECT_GE(comp, prev) << "bands must be non-decreasing at row " << r;
    prev = comp;
  }
  EXPECT_EQ(true_component_of_row(spec, 0), 0);
  EXPECT_EQ(true_component_of_row(spec, spec.n - 1), 5);
}

TEST(Generator, ZeroLocalityShufflesComponents) {
  GeneratorSpec spec;
  spec.dist = Distribution::kNaturalClusters;
  spec.n = 5000;
  spec.d = 2;
  spec.true_clusters = 6;
  spec.locality = 0.0;
  // Count order inversions; a shuffled sequence has many.
  int inversions = 0;
  int prev = true_component_of_row(spec, 0);
  for (index_t r = 1; r < 1000; ++r) {
    const int comp = true_component_of_row(spec, r);
    if (comp < prev) ++inversions;
    prev = comp;
  }
  EXPECT_GT(inversions, 100);
}

TEST(Generator, PartialLocalityStillCoversAllComponents) {
  GeneratorSpec spec;
  spec.dist = Distribution::kNaturalClusters;
  spec.n = 20000;
  spec.d = 2;
  spec.true_clusters = 5;
  spec.locality = 0.9;
  std::vector<int> counts(5, 0);
  for (index_t r = 0; r < spec.n; ++r)
    ++counts[static_cast<std::size_t>(true_component_of_row(spec, r))];
  for (int c = 0; c < 5; ++c) EXPECT_GT(counts[static_cast<std::size_t>(c)], 50);
}

TEST(Generator, DescribeIncludesParameters) {
  GeneratorSpec spec;
  spec.n = 42;
  spec.d = 7;
  EXPECT_NE(spec.describe().find("n=42"), std::string::npos);
  EXPECT_NE(spec.describe().find("d=7"), std::string::npos);
  EXPECT_EQ(spec.bytes(), 42u * 7u * sizeof(value_t));
}

TEST(Generator, ShapeMismatchThrows) {
  GeneratorSpec spec;
  spec.n = 10;
  spec.d = 4;
  DenseMatrix wrong(5, 3);
  EXPECT_THROW(generate_rows(spec, 0, 5, wrong.view()),
               std::invalid_argument);
}

TEST_F(TempDir, MatrixRoundTrip) {
  GeneratorSpec spec;
  spec.n = 300;
  spec.d = 5;
  const DenseMatrix m = generate(spec);
  write_matrix(path("m.kmat"), m);
  const DenseMatrix r = read_matrix(path("m.kmat"));
  ASSERT_EQ(r.rows(), m.rows());
  ASSERT_EQ(r.cols(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i)
    EXPECT_EQ(r.data()[i], m.data()[i]);
}

TEST_F(TempDir, HeaderOnlyRead) {
  GeneratorSpec spec;
  spec.n = 64;
  spec.d = 3;
  write_matrix(path("h.kmat"), generate(spec));
  const MatrixHeader h = read_header(path("h.kmat"));
  EXPECT_EQ(h.n, 64u);
  EXPECT_EQ(h.d, 3u);
  EXPECT_EQ(h.elem_size, sizeof(value_t));
}

TEST_F(TempDir, ReadRowsSlice) {
  GeneratorSpec spec;
  spec.n = 100;
  spec.d = 4;
  const DenseMatrix m = generate(spec);
  write_matrix(path("s.kmat"), m);
  DenseMatrix slice(20, 4);
  read_rows(path("s.kmat"), 30, 50, slice.view());
  for (index_t r = 0; r < 20; ++r)
    for (index_t c = 0; c < 4; ++c) EXPECT_EQ(slice.at(r, c), m.at(30 + r, c));
}

TEST_F(TempDir, WriteGeneratedStreamsIdenticalToInMemory) {
  GeneratorSpec spec;
  spec.n = 1000;
  spec.d = 6;
  spec.dist = Distribution::kNaturalClusters;
  write_generated(path("g.kmat"), spec, /*chunk_rows=*/128);
  const DenseMatrix streamed = read_matrix(path("g.kmat"));
  const DenseMatrix direct = generate(spec);
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(streamed.data()[i], direct.data()[i]);
}

TEST_F(TempDir, MissingFileThrows) {
  EXPECT_THROW(read_matrix(path("nope.kmat")), std::runtime_error);
  EXPECT_THROW(read_header(path("nope.kmat")), std::runtime_error);
}

TEST_F(TempDir, BadMagicThrows) {
  std::ofstream out(path("bad.kmat"), std::ios::binary);
  out << "NOTAKNORFILE________________________________________________";
  out.close();
  EXPECT_THROW(read_matrix(path("bad.kmat")), std::runtime_error);
}

TEST_F(TempDir, TruncatedHeaderThrows) {
  std::ofstream out(path("trunc.kmat"), std::ios::binary);
  out << "KNOR";
  out.close();
  EXPECT_THROW(read_header(path("trunc.kmat")), std::runtime_error);
}

TEST_F(TempDir, TruncatedBodyThrows) {
  GeneratorSpec spec;
  spec.n = 100;
  spec.d = 8;
  write_matrix(path("tb.kmat"), generate(spec));
  std::filesystem::resize_file(path("tb.kmat"),
                               kHeaderBytes + 50 * 8 * sizeof(value_t));
  EXPECT_THROW(read_matrix(path("tb.kmat")), std::runtime_error);
}

// Patch one u64 header field of an existing .kmat file in place.
void patch_header_u64(const std::string& path, long offset,
                      std::uint64_t value) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&value, sizeof(value), 1, f), 1u);
  std::fclose(f);
}

TEST_F(TempDir, HostileSizeFieldsRejectedBeforeAllocation) {
  GeneratorSpec spec;
  spec.n = 4;
  spec.d = 2;
  write_matrix(path("host.kmat"), generate(spec));
  // n*d*elem_size wraps 64-bit size_t to a tiny value: 2^61 rows x 1 col x
  // 8 bytes == 2^64 == 0. The old body check passed and the allocator was
  // handed the hostile product; now the loader rejects by name before any
  // allocation happens.
  patch_header_u64(path("host.kmat"), 8, 1ull << 61);   // n
  patch_header_u64(path("host.kmat"), 16, 1);           // d
  try {
    read_matrix(path("host.kmat"));
    FAIL() << "hostile n field was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hostile size field"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(read_header(path("host.kmat")), std::runtime_error);
  EXPECT_THROW(RowReader{path("host.kmat")}, std::runtime_error);

  // Non-wrapping but still absurd: a 64-byte file declaring a petabyte.
  write_matrix(path("host2.kmat"), generate(spec));
  patch_header_u64(path("host2.kmat"), 8, 1ull << 47);  // n
  EXPECT_THROW(read_matrix(path("host2.kmat")), std::runtime_error);
  DenseMatrix out(1, 2);
  EXPECT_THROW(read_rows(path("host2.kmat"), 0, 1, out.view()),
               std::runtime_error);
}

TEST_F(TempDir, ReadRowsOutOfRangeThrows) {
  GeneratorSpec spec;
  spec.n = 10;
  spec.d = 2;
  write_matrix(path("r.kmat"), generate(spec));
  DenseMatrix buf(5, 2);
  EXPECT_THROW(read_rows(path("r.kmat"), 8, 13, buf.view()),
               std::out_of_range);
}

TEST(NumaDataset, MatchesSourceRows) {
  GeneratorSpec spec;
  spec.n = 5000;
  spec.d = 7;
  const DenseMatrix m = generate(spec);
  const auto topo = numa::Topology::simulated(2, 4);
  const numa::Partitioner parts(spec.n, 4, topo);
  sched::Scheduler pool(4, topo);
  const NumaDataset ds(m.const_view(), parts, pool);
  for (index_t r = 0; r < spec.n; r += 13)
    for (index_t c = 0; c < spec.d; ++c)
      ASSERT_EQ(ds.row(r)[c], m.at(r, c)) << r;
}

TEST(NumaDataset, GeneratedEqualsCopied) {
  GeneratorSpec spec;
  spec.n = 3000;
  spec.d = 5;
  const DenseMatrix m = generate(spec);
  const auto topo = numa::Topology::simulated(2, 4);
  const numa::Partitioner parts(spec.n, 4, topo);
  sched::Scheduler pool(4, topo);
  const NumaDataset generated(spec, parts, pool);
  for (index_t r = 0; r < spec.n; ++r)
    for (index_t c = 0; c < spec.d; ++c)
      ASSERT_EQ(generated.row(r)[c], m.at(r, c)) << r;
}

TEST(NumaDataset, ThreadViewIsContiguousBlock) {
  GeneratorSpec spec;
  spec.n = 1000;
  spec.d = 3;
  const DenseMatrix m = generate(spec);
  const auto topo = numa::Topology::simulated(2, 4);
  const numa::Partitioner parts(spec.n, 4, topo);
  sched::Scheduler pool(4, topo);
  const NumaDataset ds(m.const_view(), parts, pool);
  for (int t = 0; t < 4; ++t) {
    const auto range = ds.thread_rows(t);
    const auto view = ds.thread_view(t);
    ASSERT_EQ(view.rows(), range.size());
    for (index_t r = 0; r < view.rows(); ++r)
      ASSERT_EQ(view.row(r), ds.row(range.begin + r));
  }
}

}  // namespace
}  // namespace knor::data
