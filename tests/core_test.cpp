// Unit tests for the core k-means machinery: distance kernels,
// initialization, local centroid accumulators, MTI state, and degenerate
// input handling of every engine.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/distance.hpp"
#include "core/engines.hpp"
#include "core/init.hpp"
#include "core/knori.hpp"
#include "core/local_centroids.hpp"
#include "core/mti.hpp"
#include "data/generator.hpp"

namespace knor {
namespace {

TEST(Distance, SquaredEuclideanMatchesDefinition) {
  const value_t a[5] = {1, 2, 3, 4, 5};
  const value_t b[5] = {0, 1, 1, 1, 1};
  // diffs: 1,1,2,3,4 -> squares 1+1+4+9+16 = 31
  EXPECT_DOUBLE_EQ(dist_sq(a, b, 5), 31.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b, 5), std::sqrt(31.0));
}

TEST(Distance, HandlesShortAndUnrolledTails) {
  // Exercise d < 4 (tail only), d == 4 (unrolled only) and mixed d.
  const value_t a[9] = {1, 1, 1, 1, 1, 1, 1, 1, 1};
  const value_t b[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  for (index_t d : {1, 2, 3, 4, 5, 8, 9})
    EXPECT_DOUBLE_EQ(dist_sq(a, b, d), static_cast<double>(d)) << d;
  EXPECT_DOUBLE_EQ(dist_sq(a, b, 0), 0.0);
}

TEST(Distance, NearestCentroidLowestIndexTie) {
  // Two identical centroids: the tie must resolve to the lower index.
  const value_t point[2] = {0, 0};
  const value_t centroids[6] = {5, 5, 1, 1, 1, 1};  // c1 == c2
  value_t d = 0;
  EXPECT_EQ(nearest_centroid(point, centroids, 3, 2, &d), 1u);
  EXPECT_DOUBLE_EQ(d, 2.0);  // out-param is the SQUARED distance
}

TEST(SampleRows, DistinctAndInRange) {
  const auto rows = sample_rows(100, 20, 7);
  std::set<index_t> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), 20u);
  for (index_t r : rows) EXPECT_LT(r, 100u);
}

TEST(SampleRows, DeterministicAndThrowsWhenKExceedsN) {
  EXPECT_EQ(sample_rows(50, 10, 3), sample_rows(50, 10, 3));
  EXPECT_THROW(sample_rows(5, 6, 1), std::invalid_argument);
}

class InitTest : public ::testing::TestWithParam<Init> {};

TEST_P(InitTest, ProducesKDistinctFiniteCentroids) {
  data::GeneratorSpec spec;
  spec.n = 2000;
  spec.d = 4;
  spec.true_clusters = 5;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 5;
  opts.init = GetParam();
  opts.seed = 11;
  const DenseMatrix c = init_centroids(m.const_view(), opts);
  ASSERT_EQ(c.rows(), 5u);
  ASSERT_EQ(c.cols(), 4u);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_TRUE(std::isfinite(c.data()[i]));
  // No two centroids identical (true for continuous data).
  for (index_t a = 0; a < 5; ++a)
    for (index_t b = a + 1; b < 5; ++b)
      EXPECT_GT(dist_sq(c.row(a), c.row(b), 4), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, InitTest,
                         ::testing::Values(Init::kForgy, Init::kRandom,
                                           Init::kKmeansPP),
                         [](const auto& info) {
                           switch (info.param) {
                             case Init::kForgy: return "Forgy";
                             case Init::kRandom: return "Random";
                             case Init::kKmeansPP: return "KmeansPP";
                             default: return "Other";
                           }
                         });

TEST(Init, KmeansPPSpreadsCentres) {
  // On well-separated data, k-means++ should pick one centre per component
  // far more often than forgy; verify spread: min pairwise distance of
  // kmeans++ centres exceeds that of a uniformly-random pick on average.
  data::GeneratorSpec spec;
  spec.n = 6000;
  spec.d = 4;
  spec.true_clusters = 6;
  spec.separation = 12.0;
  const DenseMatrix m = data::generate(spec);
  auto min_pairwise = [&](const DenseMatrix& c) {
    value_t best = std::numeric_limits<value_t>::infinity();
    for (index_t a = 0; a < c.rows(); ++a)
      for (index_t b = a + 1; b < c.rows(); ++b)
        best = std::min(best, dist_sq(c.row(a), c.row(b), c.cols()));
    return best;
  };
  double pp = 0, forgy = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Options opts;
    opts.k = 6;
    opts.seed = seed;
    opts.init = Init::kKmeansPP;
    pp += min_pairwise(init_centroids(m.const_view(), opts));
    opts.init = Init::kForgy;
    forgy += min_pairwise(init_centroids(m.const_view(), opts));
  }
  EXPECT_GT(pp, forgy);
}

TEST(Init, ProvidedCentroidsValidated) {
  data::GeneratorSpec spec;
  spec.n = 10;
  spec.d = 3;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 2;
  opts.init = Init::kProvided;
  opts.initial_centroids = DenseMatrix(2, 4);  // wrong d
  EXPECT_THROW(init_centroids(m.const_view(), opts), std::invalid_argument);
  opts.initial_centroids = DenseMatrix(2, 3);
  opts.initial_centroids.at(1, 2) = 5.0;
  const DenseMatrix c = init_centroids(m.const_view(), opts);
  EXPECT_EQ(c.at(1, 2), 5.0);
}

TEST(Init, InvalidConfigurationsThrow) {
  data::GeneratorSpec spec;
  spec.n = 5;
  spec.d = 2;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 0;
  EXPECT_THROW(init_centroids(m.const_view(), opts), std::invalid_argument);
  opts.k = 6;  // > n
  EXPECT_THROW(init_centroids(m.const_view(), opts), std::invalid_argument);
}

TEST(LocalCentroids, AddMergeFinalize) {
  LocalCentroids a(2, 3), b(2, 3);
  const value_t v1[3] = {1, 2, 3};
  const value_t v2[3] = {3, 4, 5};
  const value_t v3[3] = {10, 10, 10};
  a.add(0, v1);
  b.add(0, v2);
  b.add(1, v3);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 1u);
  DenseMatrix out(2, 3), prev(2, 3);
  const auto sizes = a.finalize_into(out, prev);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 10.0);
}

TEST(LocalCentroids, EmptyClusterKeepsPrevious) {
  LocalCentroids acc(2, 2);
  const value_t v[2] = {4, 6};
  acc.add(0, v);
  DenseMatrix prev(2, 2);
  prev.at(1, 0) = -7.0;
  prev.at(1, 1) = 8.0;
  DenseMatrix out(2, 2);
  const auto sizes = acc.finalize_into(out, prev);
  EXPECT_EQ(sizes[1], 0u);
  EXPECT_DOUBLE_EQ(out.at(1, 0), -7.0);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 8.0);
}

TEST(LocalCentroids, ClearResets) {
  LocalCentroids acc(1, 2);
  const value_t v[2] = {1, 1};
  acc.add(0, v);
  acc.clear();
  EXPECT_EQ(acc.count(0), 0u);
  EXPECT_DOUBLE_EQ(acc.sum(0)[0], 0.0);
}

TEST(MtiState, BoundsStartInfinite) {
  MtiState mti(10, 3);
  for (index_t i = 0; i < 10; ++i)
    EXPECT_TRUE(std::isinf(mti.ub(i)));
}

TEST(MtiState, PrepareComputesC2CDriftAndSeparation) {
  // Centroids at (0,0), (4,0), (0,3): distances 4, 3, 5.
  DenseMatrix cur(3, 2);
  cur.at(1, 0) = 4;
  cur.at(2, 1) = 3;
  MtiState mti(1, 3);
  mti.prepare(DenseMatrix{}, cur);
  EXPECT_DOUBLE_EQ(mti.c2c(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(mti.c2c(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(mti.c2c(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(mti.s_half(0), 1.5);  // min(4,3)/2
  EXPECT_DOUBLE_EQ(mti.s_half(1), 2.0);  // min(4,5)/2
  EXPECT_DOUBLE_EQ(mti.drift(0), 0.0);   // no previous centroids

  DenseMatrix prev = cur;
  cur.at(0, 0) = 1;  // centroid 0 moved by 1
  mti.prepare(prev, cur);
  EXPECT_DOUBLE_EQ(mti.drift(0), 1.0);
  EXPECT_DOUBLE_EQ(mti.drift(1), 0.0);
}

TEST(MtiState, Clause1UsesHalfSeparation) {
  DenseMatrix cur(2, 1);
  cur.at(0, 0) = 0;
  cur.at(1, 0) = 10;
  MtiState mti(1, 2);
  mti.prepare(DenseMatrix{}, cur);
  EXPECT_TRUE(mti.clause1(0, 4.9));   // 4.9 <= 5.0
  EXPECT_FALSE(mti.clause1(0, 5.1));  // cannot prove
}

TEST(MtiState, SingleClusterSeparationIsZero) {
  DenseMatrix cur(1, 2);
  MtiState mti(4, 1);
  mti.prepare(DenseMatrix{}, cur);
  EXPECT_DOUBLE_EQ(mti.s_half(0), 0.0);
}

// --- Degenerate input handling across engines -----------------------------

struct EngineCase {
  const char* name;
  Result (*run)(ConstMatrixView, const Options&);
};

Result run_knori(ConstMatrixView m, const Options& o) { return kmeans(m, o); }

class DegenerateTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(DegenerateTest, KEqualsOneAssignsEverythingToOneCluster) {
  data::GeneratorSpec spec;
  spec.n = 500;
  spec.d = 3;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 1;
  opts.threads = 2;
  opts.max_iters = 10;
  const Result res = GetParam().run(m.const_view(), opts);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.cluster_sizes[0], 500u);
  for (cluster_t a : res.assignments) EXPECT_EQ(a, 0u);
}

TEST_P(DegenerateTest, KEqualsNIsPerfect) {
  data::GeneratorSpec spec;
  spec.n = 16;
  spec.d = 2;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 16;
  opts.threads = 2;
  opts.max_iters = 20;
  const Result res = GetParam().run(m.const_view(), opts);
  EXPECT_NEAR(res.energy, 0.0, 1e-18);
}

TEST_P(DegenerateTest, IdenticalPointsDoNotCrash) {
  DenseMatrix m(100, 3);  // all zeros
  Options opts;
  opts.k = 4;
  opts.threads = 2;
  opts.max_iters = 5;
  const Result res = GetParam().run(m.const_view(), opts);
  EXPECT_NEAR(res.energy, 0.0, 1e-18);
  index_t total = 0;
  for (index_t s : res.cluster_sizes) total += s;
  EXPECT_EQ(total, 100u);
}

TEST_P(DegenerateTest, OneDimensionalData) {
  data::GeneratorSpec spec;
  spec.n = 1000;
  spec.d = 1;
  spec.dist = data::Distribution::kUnivariateRandom;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 3;
  opts.threads = 2;
  opts.max_iters = 50;
  const Result res = GetParam().run(m.const_view(), opts);
  EXPECT_GT(res.energy, 0.0);
  EXPECT_EQ(res.assignments.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DegenerateTest,
    ::testing::Values(EngineCase{"serial", &lloyd_serial},
                      EngineCase{"knori", &run_knori},
                      EngineCase{"locked", &lloyd_locked},
                      EngineCase{"elkan", &elkan_ti},
                      EngineCase{"gemm", &gemm_kmeans}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Knori, EmptyDatasetThrows) {
  DenseMatrix empty;
  Options opts;
  EXPECT_THROW(kmeans(empty.const_view(), opts), std::invalid_argument);
}

TEST(Knori, MoreThreadsThanRows) {
  data::GeneratorSpec spec;
  spec.n = 7;
  spec.d = 2;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 2;
  opts.threads = 16;
  opts.max_iters = 10;
  const Result res = kmeans(m.const_view(), opts);
  EXPECT_EQ(res.assignments.size(), 7u);
  EXPECT_TRUE(res.converged);
}

TEST(Knori, ToleranceTerminatesEarly) {
  data::GeneratorSpec spec;
  spec.n = 5000;
  spec.d = 8;
  spec.dist = data::Distribution::kUniformRandom;
  const DenseMatrix m = data::generate(spec);
  Options strict, loose;
  strict.k = loose.k = 8;
  strict.threads = loose.threads = 2;
  strict.max_iters = loose.max_iters = 200;
  loose.tolerance = 0.05;  // stop at <= 5% membership churn
  const Result exact = kmeans(m.const_view(), strict);
  const Result early = kmeans(m.const_view(), loose);
  EXPECT_LT(early.iters, exact.iters);
  EXPECT_TRUE(early.converged);
}

TEST(Knori, CountersAreConsistent) {
  data::GeneratorSpec spec;
  spec.n = 4000;
  spec.d = 6;
  spec.true_clusters = 6;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 6;
  opts.threads = 3;
  opts.max_iters = 30;
  const Result res = kmeans(m.const_view(), opts);
  // Every point touched every iteration: local+remote accesses == n*iters.
  EXPECT_EQ(res.counters.local_accesses + res.counters.remote_accesses,
            static_cast<std::uint64_t>(4000) * res.iters);
  // With pruning, fewer distances than the naive n*k*iters.
  EXPECT_LT(res.counters.dist_computations,
            static_cast<std::uint64_t>(4000) * 6 * res.iters);
  EXPECT_GT(res.counters.clause1_skips, 0u);
  // Scheduler stats cover all tasks.
  EXPECT_GT(res.counters.tasks_own, 0u);
}

TEST(Minibatch, ReducesEnergyTowardExact) {
  data::GeneratorSpec spec;
  spec.n = 8000;
  spec.d = 6;
  spec.true_clusters = 8;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 8;
  opts.seed = 21;
  MinibatchOptions mb;
  mb.batch_size = 512;
  mb.max_iters = 150;
  const Result approx = minibatch(m.const_view(), opts, mb);
  const Result exact = lloyd_serial(m.const_view(), opts);
  // Approximation within 2x of the exact solution's energy on easy data.
  EXPECT_LT(approx.energy, 2.0 * exact.energy);
  index_t total = 0;
  for (index_t s : approx.cluster_sizes) total += s;
  EXPECT_EQ(total, 8000u);
}

TEST(Result, SummaryMentionsKeyFields) {
  data::GeneratorSpec spec;
  spec.n = 100;
  spec.d = 2;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 2;
  opts.threads = 1;
  const Result res = kmeans(m.const_view(), opts);
  const std::string s = res.summary();
  EXPECT_NE(s.find("iters="), std::string::npos);
  EXPECT_NE(s.find("energy="), std::string::npos);
}

}  // namespace
}  // namespace knor
