// knor_lint as a ctest gate (DESIGN.md §14): the real tree must lint
// clean, and every rule must demonstrably fire on its seeded fixture in
// tools/lint_fixtures/ — a linter whose rules have silently stopped
// matching is worse than no linter.
//
// KNOR_LINT_BIN / KNOR_LINT_SRC_ROOT are injected by CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;
};

LintResult run_lint(const std::string& args) {
  const std::string cmd = std::string(KNOR_LINT_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  LintResult res;
  if (pipe == nullptr) return res;
  std::array<char, 512> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr)
    res.output += buf.data();
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string fixture(const char* name) {
  return std::string(KNOR_LINT_SRC_ROOT) + "/tools/lint_fixtures/" + name;
}

TEST(KnorLint, TreeIsClean) {
  const LintResult res =
      run_lint("--root " + std::string(KNOR_LINT_SRC_ROOT));
  EXPECT_EQ(res.exit_code, 0) << res.output;
}

struct RuleCase {
  const char* file;
  const char* rule;
  int min_hits;
};

class KnorLintRule : public ::testing::TestWithParam<RuleCase> {};

TEST_P(KnorLintRule, FiresOnSeededFixture) {
  const RuleCase& rc = GetParam();
  const LintResult res = run_lint(fixture(rc.file));
  EXPECT_EQ(res.exit_code, 1) << res.output;
  // Count `[KLxxx]` occurrences — each flagged line carries exactly one.
  const std::string tag = std::string("[") + rc.rule + "]";
  int hits = 0;
  for (std::size_t p = res.output.find(tag); p != std::string::npos;
       p = res.output.find(tag, p + 1))
    ++hits;
  EXPECT_GE(hits, rc.min_hits) << res.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, KnorLintRule,
    ::testing::Values(RuleCase{"kl001_atoi.cpp", "KL001", 2},
                      RuleCase{"kl002_set_isa.cpp", "KL002", 1},
                      RuleCase{"kl003_entropy.cpp", "KL003", 4},
                      RuleCase{"kl004_raw_alloc.cpp", "KL004", 2},
                      RuleCase{"kl005_metric.cpp", "KL005", 2}),
    [](const ::testing::TestParamInfo<RuleCase>& info) {
      return std::string(info.param.rule);
    });

TEST(KnorLint, InlineSuppressionsAreHonored) {
  const LintResult res = run_lint(fixture("suppressed_ok.cpp"));
  EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST(KnorLint, CommentsStringsAndIdentifiersDoNotFire) {
  const LintResult res = run_lint(fixture("clean_ok.cpp"));
  EXPECT_EQ(res.exit_code, 0) << res.output;
}

TEST(KnorLint, MissingFileIsAnIoError) {
  const LintResult res = run_lint(fixture("no_such_file.cpp"));
  EXPECT_EQ(res.exit_code, 2) << res.output;
}

}  // namespace
