// Serving front-end stress tests — the TSan CI targets (DESIGN.md §11).
// Oversubscribed (2x hardware threads) mixed assign/top-m load, burst and
// slow-consumer patterns, shutdown with work still queued. The invariants
// are exact, not statistical:
//  * submitted == completed + shed once close() has returned;
//  * the admission queue's high-water mark never exceeds its bound;
//  * every future resolves (no deadlock, no dropped admitted request);
//  * the bounded queue's own pushed/popped/shed/blocked counters
//    reconcile under concurrent producers and consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/init.hpp"
#include "data/generator.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/front_end.hpp"

namespace knor::serve {
namespace {

int oversubscribed_clients() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<int>(std::max(8u, 2 * hw));
}

struct Fixture {
  DenseMatrix pool;
  DenseMatrix centroids;

  Fixture() {
    data::GeneratorSpec spec;
    spec.n = 400;
    spec.d = 8;
    spec.true_clusters = 6;
    spec.seed = 20170802;
    pool = data::generate(spec);
    Options opts;
    opts.k = 6;
    opts.seed = 7;
    centroids = init_centroids(pool.const_view(), opts);
  }

  Options opts(int threads) const {
    Options o;
    o.k = 6;
    o.threads = threads;
    o.seed = 7;
    o.numa_nodes = 2;
    return o;
  }
};

TEST(ServeStressTest, OversubscribedMixedBurstLoadReconcilesExactly) {
  const Fixture fx;
  const int clients = oversubscribed_clients();
  const int per_client = 24;
  const int burst = 6;  // submit a burst, then drain it (slow consumer)

  FrontEndOptions fopts;
  fopts.queue_depth = 8;  // tight: force shed under bursts
  fopts.batch_window = 32;
  fopts.shed_policy = ShedPolicy::kShed;
  QueryFrontEnd fe(fx.centroids, fx.opts(2), fopts);

  std::atomic<std::uint64_t> seen_completed{0}, seen_shed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Session session(fe);
      std::vector<std::future<Response>> inflight;
      for (int i = 0; i < per_client; ++i) {
        const ConstMatrixView v = fx.pool.const_view().sub_rows(
            static_cast<index_t>((c * 31 + i * 7) % 390), 1 + i % 4);
        inflight.push_back(i % 5 == 4 ? session.submit_topm(v, 3)
                                      : session.submit_assign(v));
        if (static_cast<int>(inflight.size()) >= burst) {
          // Slow-consumer drain: hold responses while more queue up.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          for (auto& f : inflight)
            (f.get().shed ? seen_shed : seen_completed)
                .fetch_add(1, std::memory_order_relaxed);
          inflight.clear();
        }
      }
      for (auto& f : inflight)
        (f.get().shed ? seen_shed : seen_completed)
            .fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  fe.close();

  const FrontEndStats st = fe.stats();
  const auto total =
      static_cast<std::uint64_t>(clients) * static_cast<std::uint64_t>(
                                                per_client);
  EXPECT_EQ(st.submitted, total);
  EXPECT_EQ(st.completed + st.shed, st.submitted);  // exact reconciliation
  EXPECT_EQ(st.completed, seen_completed.load());
  EXPECT_EQ(st.shed, seen_shed.load());
  EXPECT_LE(st.max_queue_depth, fopts.queue_depth);  // bound never exceeded
}

TEST(ServeStressTest, BlockingAdmissionIsLosslessUnderBackpressure) {
  const Fixture fx;
  const int clients = oversubscribed_clients();
  const int per_client = 16;

  FrontEndOptions fopts;
  fopts.queue_depth = 2;  // every burst backpressures
  fopts.batch_window = 1;  // maximal dispatch iterations
  fopts.shed_policy = ShedPolicy::kBlock;
  QueryFrontEnd fe(fx.centroids, fx.opts(1), fopts);

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Session session(fe);
      for (int i = 0; i < per_client; ++i) {
        const ConstMatrixView v = fx.pool.const_view().sub_rows(
            static_cast<index_t>((c * 17 + i * 11) % 395), 2);
        EXPECT_FALSE(session.submit_assign(v).get().shed);
      }
    });
  }
  for (auto& t : threads) t.join();
  fe.close();

  const FrontEndStats st = fe.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(clients) * per_client);
  EXPECT_EQ(st.completed, st.submitted);  // kBlock: nothing shed
  EXPECT_EQ(st.shed, 0u);
  EXPECT_LE(st.max_queue_depth, fopts.queue_depth);
}

TEST(ServeStressTest, ShutdownWithQueuedWorkDrainsEverythingAdmitted) {
  const Fixture fx;
  FrontEndOptions fopts;
  fopts.queue_depth = 256;
  fopts.batch_window = 100000;  // dispatcher coalesces aggressively
  QueryFrontEnd fe(fx.centroids, fx.opts(2), fopts);

  // Admit a pile of requests and close while they are still queued. The
  // shutdown contract: admitted work is computed, never dropped, and
  // close() returns (the ctest timeout is the deadlock detector).
  std::vector<std::future<Response>> inflight;
  for (int i = 0; i < 64; ++i)
    inflight.push_back(fe.submit_assign(
        fx.pool.const_view().sub_rows(static_cast<index_t>(i * 5), 3)));
  fe.close();
  for (auto& f : inflight) EXPECT_FALSE(f.get().shed);

  // Post-close submissions shed immediately — including through a blocked
  // producer path that must wake rather than hang.
  EXPECT_TRUE(fe.submit_assign(fx.pool.const_view().sub_rows(0, 1))
                  .get()
                  .shed);
  const FrontEndStats st = fe.stats();
  EXPECT_EQ(st.submitted, 65u);
  EXPECT_EQ(st.completed, 64u);
  EXPECT_EQ(st.shed, 1u);
}

TEST(ServeStressTest, BoundedQueueCountersReconcileUnderMpmc) {
  BoundedQueue<int> q(4);
  const int producers = 4, consumers = 3, per_producer = 500;
  std::atomic<std::uint64_t> consumed{0}, ok{0}, shed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        // Alternate blocking and non-blocking pushes: both the blocked
        // and the shed counters see traffic.
        const auto r = q.push(p * per_producer + i, /*block=*/i % 2 == 0);
        if (r == BoundedQueue<int>::Push::kOk)
          ok.fetch_add(1, std::memory_order_relaxed);
        else
          shed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      int v = 0;
      while (q.pop(v)) {
        consumed.fetch_add(1, std::memory_order_relaxed);
        if (c == 0) std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  for (int p = 0; p < producers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t t = producers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(ok.load() + shed.load(),
            static_cast<std::uint64_t>(producers) * per_producer);
  EXPECT_EQ(q.pushed(), ok.load());
  EXPECT_EQ(q.shed(), shed.load());
  EXPECT_EQ(q.popped(), q.pushed());  // closed after producers: fully drained
  EXPECT_EQ(consumed.load(), q.pushed());
  EXPECT_LE(q.max_occupancy(), q.capacity());
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace knor::serve
