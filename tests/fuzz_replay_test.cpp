// Corpus replay: every fuzz target (tests/fuzz/) runs over every
// checked-in corpus file plus a deterministic spray of mutations, under
// plain ctest — so the ASan/UBSan CI job re-executes the whole corpus on
// every push even though gcc has no libFuzzer. A crash or sanitizer
// report here is a real parser bug; add the offending input to
// tests/fuzz/corpus/<target>/ once fixed so it stays fixed.
//
// KNOR_FUZZ_CORPUS_DIR is injected by CMake.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "fuzz/fuzz_target.hpp"

namespace {

namespace fs = std::filesystem;
using knor::fuzz::Target;

std::vector<std::uint8_t> read_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

class FuzzReplay : public ::testing::TestWithParam<Target> {};

TEST_P(FuzzReplay, CorpusAndMutationsRunClean) {
  const Target& target = GetParam();
  const fs::path dir =
      fs::path(KNOR_FUZZ_CORPUS_DIR) / target.name;
  ASSERT_TRUE(fs::is_directory(dir))
      << "missing seed corpus " << dir
      << " — every fuzz target must check one in";

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file()) files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "empty seed corpus " << dir;

  for (const fs::path& file : files) {
    SCOPED_TRACE(file.string());
    const std::vector<std::uint8_t> bytes = read_bytes(file);
    target.fn(bytes.data(), bytes.size());

    // Deterministic mutations (seeded by target+file name, not by time):
    // single-byte flips and truncations — the cheap half of a fuzzer,
    // cheap enough to run on every ctest invocation.
    knor::Prng prng(fnv1a(std::string(target.name) + file.filename().string()));
    for (int i = 0; i < 32; ++i) {
      std::vector<std::uint8_t> mutated = bytes;
      if (mutated.empty()) break;
      const auto pos =
          static_cast<std::size_t>(prng.next_u64() % mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << (prng.next_u64() % 8));
      target.fn(mutated.data(), mutated.size());
    }
    for (int i = 0; i < 8; ++i) {
      const auto cut =
          static_cast<std::size_t>(prng.next_u64() % (bytes.size() + 1));
      target.fn(bytes.data(), cut);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, FuzzReplay, ::testing::ValuesIn(knor::fuzz::registry()),
    [](const ::testing::TestParamInfo<Target>& info) {
      return std::string(info.param.name);
    });

TEST(FuzzReplay, EveryExpectedTargetIsRegistered) {
  // The registry is populated by static initializers in the fuzz TUs; a
  // build-system change that silently drops a TU would otherwise just
  // shrink the parameterized suite.
  std::vector<std::string> names;
  for (const Target& t : knor::fuzz::registry()) names.emplace_back(t.name);
  std::sort(names.begin(), names.end());
  const std::vector<std::string> expected = {
      "bench_json", "checkpoint", "cli_args",
      "fault_plan", "gemm_tile",  "matrix_io"};
  EXPECT_EQ(names, expected);
}

}  // namespace
