// Streaming subsystem tests (DESIGN.md §9):
//  * fixed-replay bitwise determinism — the same batch sequence produces
//    bit-identical centroids/weights/counts at every thread count and
//    scheduling policy (per-chunk accumulation + fixed-tree fold);
//  * snapshot/restore round-trip — save mid-stream, restore, replay the
//    rest: bitwise-equal to the uninterrupted run (sem/checkpoint interop);
//  * decay = 1 full-pass oracle — on the same batch order the engine
//    converges to the same running-mean estimator as core/minibatch;
//  * AssignServer — in-memory assignment equals the blocked kernel
//    row-by-row, and the streamed file path (matrix_io and PageFile
//    sources, any buffer depth) equals the in-memory path exactly.
// The TSan CI job runs this suite: the ingest fold and the assign_file
// reader/assigner pipeline must be race-clean.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <vector>

#include "common/prng.hpp"
#include "core/engines.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "data/generator.hpp"
#include "data/matrix_io.hpp"
#include "obs/registry.hpp"
#include "sem/checkpoint.hpp"
#include "stream/assign_server.hpp"
#include "stream/stream_engine.hpp"

namespace knor::stream {
namespace {

data::GeneratorSpec make_spec(index_t n, index_t d, int clusters) {
  data::GeneratorSpec spec;
  spec.n = n;
  spec.d = d;
  spec.true_clusters = clusters;
  spec.separation = 10.0;
  spec.seed = 20170627;
  return spec;
}

Options base_opts(int k, int threads) {
  Options opts;
  opts.k = k;
  opts.threads = threads;
  opts.seed = 99;
  opts.numa_nodes = 2;  // simulated topology: stable across hosts
  return opts;
}

/// Feed `data` to `engine` in fixed `batch_rows` slices, in row order.
void replay(StreamEngine& engine, const DenseMatrix& data,
            index_t batch_rows) {
  for (index_t begin = 0; begin < data.rows(); begin += batch_rows) {
    const index_t rows = std::min(batch_rows, data.rows() - begin);
    engine.ingest(ConstMatrixView(data.row(begin), rows, data.cols()));
  }
}

bool bitwise_equal(const DenseMatrix& a, const DenseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(value_t)) == 0;
}

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("knor_stream_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(StreamTest, FixedReplayIsBitwiseDeterministic) {
  const DenseMatrix data = data::generate(make_spec(4096, 8, 6));
  for (const double decay : {1.0, 0.9}) {
    StreamOptions sopts;
    sopts.decay = decay;
    StreamEngine ref(base_opts(6, 1), sopts);
    replay(ref, data, 256);
    ASSERT_TRUE(ref.ready());

    for (const int threads : {1, 4}) {
      for (const auto policy :
           {sched::SchedPolicy::kNumaAware, sched::SchedPolicy::kFifo,
            sched::SchedPolicy::kStatic}) {
        Options opts = base_opts(6, threads);
        opts.sched = policy;
        StreamEngine engine(opts, sopts);
        replay(engine, data, 256);
        EXPECT_TRUE(bitwise_equal(engine.centroids(), ref.centroids()))
            << "decay=" << decay << " T=" << threads
            << " policy=" << sched::to_string(policy);
        EXPECT_EQ(engine.weights(), ref.weights());
        EXPECT_EQ(engine.counts(), ref.counts());
        EXPECT_EQ(engine.stats().batches, ref.stats().batches);
        EXPECT_EQ(engine.stats().last_batch_sse, ref.stats().last_batch_sse);
      }
    }
  }
}

TEST_F(StreamTest, SnapshotRestoreMatchesUninterruptedRun) {
  const DenseMatrix data = data::generate(make_spec(3000, 5, 4));
  StreamOptions sopts;
  sopts.decay = 0.8;
  const index_t batch = 200;
  const index_t half = 1400;  // a batch boundary

  StreamEngine whole(base_opts(4, 3), sopts);
  replay(whole, data, batch);

  StreamEngine first(base_opts(4, 3), sopts);
  for (index_t begin = 0; begin < half; begin += batch)
    first.ingest(ConstMatrixView(data.row(begin), batch, data.cols()));
  const std::string path = dir_ / "mid.ckpt";
  first.save_snapshot(path);

  StreamEngine second(base_opts(4, 1), sopts);  // thread count may differ
  second.restore(sem::load_checkpoint(path));
  EXPECT_EQ(second.stats().batches, half / batch);
  for (index_t begin = half; begin < data.rows(); begin += batch) {
    const index_t rows = std::min(batch, data.rows() - begin);
    second.ingest(ConstMatrixView(data.row(begin), rows, data.cols()));
  }

  EXPECT_TRUE(bitwise_equal(second.centroids(), whole.centroids()));
  EXPECT_EQ(second.weights(), whole.weights());
  EXPECT_EQ(second.counts(), whole.counts());
  EXPECT_EQ(second.stats().batches, whole.stats().batches);
}

TEST_F(StreamTest, AutoSnapshotWritesEveryInterval) {
  const DenseMatrix data = data::generate(make_spec(2000, 4, 4));
  StreamOptions sopts;
  sopts.snapshot_every = 3;
  sopts.snapshot_path = dir_ / "auto.ckpt";
  StreamEngine engine(base_opts(4, 2), sopts);
  replay(engine, data, 250);  // 8 batches -> snapshots after 3 and 6
  EXPECT_EQ(engine.stats().snapshots, 2u);
  const sem::Checkpoint ckpt = sem::load_checkpoint(sopts.snapshot_path);
  EXPECT_EQ(ckpt.iteration, 6u);
  EXPECT_FALSE(ckpt.weights.empty());
  EXPECT_TRUE(ckpt.assignments.empty());  // streams carry no per-point state
}

// decay = 1 makes each centroid the exact running mean of every row ever
// assigned to it — the estimator mini-batch k-means computes with its
// per-centre 1/count learning rates. Replaying minibatch's exact batch
// order (same sampler stream) must land on the same centroids up to
// floating-point association.
TEST_F(StreamTest, DecayOneMatchesMinibatchOracleOnSameBatchOrder) {
  const data::GeneratorSpec spec = make_spec(2000, 4, 5);
  const DenseMatrix data = data::generate(spec);
  Options opts = base_opts(5, 2);

  MinibatchOptions mb;
  mb.batch_size = 256;
  mb.max_iters = 20;
  const Result oracle = minibatch(data.const_view(), opts, mb);

  // Same init, same batches: minibatch draws init_centroids(data, opts)
  // and samples indices from Prng(seed, 0xba7c) (core/minibatch.cpp).
  Options sopts_init = opts;
  sopts_init.init = Init::kProvided;
  sopts_init.initial_centroids = init_centroids(data.const_view(), opts);
  StreamOptions sopts;
  sopts.decay = 1.0;
  StreamEngine engine(sopts_init, sopts);

  Prng rng(opts.seed, /*stream=*/0xba7c);
  DenseMatrix batch(mb.batch_size, data.cols());
  for (int it = 0; it < mb.max_iters; ++it) {
    for (index_t i = 0; i < mb.batch_size; ++i)
      std::memcpy(batch.row(i), data.row(rng.next_below(data.rows())),
                  data.cols() * sizeof(value_t));
    engine.ingest(batch.const_view());
  }

  ASSERT_EQ(engine.centroids().rows(), oracle.centroids.rows());
  for (index_t c = 0; c < engine.centroids().rows(); ++c)
    for (index_t j = 0; j < engine.centroids().cols(); ++j) {
      const double ref = oracle.centroids.at(c, j);
      EXPECT_NEAR(engine.centroids().at(c, j), ref,
                  1e-9 * (1.0 + std::fabs(ref)))
          << "c=" << c << " j=" << j;
    }
  // Total rows per cluster match the oracle's sampler exactly (integers).
  std::int64_t total = 0;
  for (const std::int64_t c : engine.counts()) total += c;
  EXPECT_EQ(total, static_cast<std::int64_t>(mb.batch_size) * mb.max_iters);
}

TEST_F(StreamTest, SeedBufferingHandlesBatchesSmallerThanK) {
  const DenseMatrix data = data::generate(make_spec(64, 3, 4));
  StreamOptions sopts;
  StreamEngine engine(base_opts(8, 2), sopts);
  index_t fed = 0;
  for (index_t begin = 0; begin + 3 <= 12; begin += 3) {
    engine.ingest(ConstMatrixView(data.row(begin), 3, data.cols()));
    fed += 3;
    EXPECT_EQ(engine.ready(), fed >= 8) << "fed=" << fed;
  }
  EXPECT_TRUE(engine.ready());
  EXPECT_EQ(engine.stats().rows, fed);
  // Every buffered row was applied once the seed init ran.
  std::int64_t assigned = 0;
  for (const std::int64_t c : engine.counts()) assigned += c;
  EXPECT_EQ(assigned, static_cast<std::int64_t>(fed));
}

TEST_F(StreamTest, InvalidConfigurationsThrow) {
  StreamOptions sopts;
  sopts.decay = 0.0;
  EXPECT_THROW(StreamEngine(base_opts(4, 1), sopts), std::invalid_argument);
  sopts.decay = 1.5;
  EXPECT_THROW(StreamEngine(base_opts(4, 1), sopts), std::invalid_argument);
  sopts = StreamOptions();
  sopts.snapshot_every = 2;  // without a path
  EXPECT_THROW(StreamEngine(base_opts(4, 1), sopts), std::invalid_argument);

  sopts = StreamOptions();
  StreamEngine engine(base_opts(4, 1), sopts);
  EXPECT_THROW(engine.snapshot(), std::runtime_error);  // not ready yet
  const DenseMatrix data = data::generate(make_spec(100, 3, 4));
  engine.ingest(data.const_view());
  DenseMatrix wrong_d(10, 5);
  EXPECT_THROW(engine.ingest(wrong_d.const_view()), std::invalid_argument);

  // Restoring a non-stream (SEM-style) checkpoint must be rejected.
  sem::Checkpoint sem_ckpt;
  sem_ckpt.centroids = DenseMatrix(4, 3);
  EXPECT_THROW(engine.restore(sem_ckpt), std::invalid_argument);
}

TEST_F(StreamTest, AssignMatchesBlockedKernelRowByRow) {
  const data::GeneratorSpec spec = make_spec(1500, 6, 5);
  const DenseMatrix data = data::generate(spec);
  Options opts = base_opts(5, 3);
  const DenseMatrix centroids = init_centroids(data.const_view(), opts);

  AssignServer server(centroids, opts);
  std::vector<cluster_t> got(data.rows());
  std::vector<value_t> got_sq(data.rows());
  server.assign(data.const_view(), got.data(), got_sq.data());

  kernels::CentroidPack pack;
  pack.pack(centroids);
  const kernels::Ops& K = kernels::ops();
  std::vector<std::int64_t> expect_hist(5, 0);
  for (index_t r = 0; r < data.rows(); ++r) {
    value_t sq = 0;
    const cluster_t want = K.nearest_blocked(data.row(r), pack, &sq);
    ASSERT_EQ(got[r], want) << "row " << r;
    ASSERT_EQ(got_sq[r], sq) << "row " << r;  // bitwise, same kernel
    ++expect_hist[want];
  }
  EXPECT_EQ(server.served_histogram(), expect_hist);
}

TEST_F(StreamTest, AssignFileMatchesInMemoryForBothSources) {
  const data::GeneratorSpec spec = make_spec(2500, 7, 4);
  const std::string path = dir_ / "queries.kmat";
  data::write_generated(path, spec);
  const DenseMatrix data = data::generate(spec);
  Options opts = base_opts(4, 2);
  const DenseMatrix centroids = init_centroids(data.const_view(), opts);

  std::vector<cluster_t> expect(data.rows());
  {
    AssignServer mem(centroids, opts);
    mem.assign(data.const_view(), expect.data());
  }

  for (const auto source : {AssignOptions::Source::kMatrixIo,
                            AssignOptions::Source::kPageFile}) {
    for (const int buffers : {2, 4}) {
      AssignServer server(centroids, opts);
      AssignOptions aopts;
      aopts.source = source;
      aopts.batch_rows = 300;  // n is not a multiple: exercises the tail
      aopts.io_buffers = buffers;
      aopts.page_size = 512;
      std::vector<cluster_t> got(data.rows(), kInvalidCluster);
      index_t expected_next = 0;
      const AssignStats stats = server.assign_file(
          path, aopts,
          [&](index_t first, const cluster_t* assign, index_t count) {
            EXPECT_EQ(first, expected_next);  // row-order delivery
            expected_next = first + count;
            std::memcpy(got.data() + first, assign,
                        count * sizeof(cluster_t));
          });
      EXPECT_EQ(stats.rows, data.rows());
      EXPECT_EQ(stats.batches, (data.rows() + 299) / 300);
      EXPECT_GT(stats.bytes_read, 0u);
      EXPECT_EQ(got, expect);
    }
  }
}

// The consumer-side wall partition: every consumer wait lands in exactly
// one of compute_wait (mid-stream, I/O-bound) or drain (the final wait for
// the reader's done signal — once misattributed to compute_wait), and
// compute covers the assign+sink work, so the three buckets are disjoint
// slices of wall time and reconcile against it. The drain split also
// reaches the obs export as its own timing counter.
TEST_F(StreamTest, AssignFileStatsBucketsReconcileWithWallTime) {
  const data::GeneratorSpec spec = make_spec(4000, 6, 4);
  const std::string path = dir_ / "recon.kmat";
  data::write_generated(path, spec);
  const DenseMatrix data = data::generate(spec);
  Options opts = base_opts(4, 2);
  const DenseMatrix centroids = init_centroids(data.const_view(), opts);

  AssignServer server(centroids, opts);
  AssignOptions aopts;
  aopts.batch_rows = 256;  // many batches: both wait paths get exercised
  const obs::Snapshot before = obs::Registry::global().snapshot();
  const AssignStats st = server.assign_file(path, aopts);

  EXPECT_GE(st.compute_wait_s, 0.0);
  EXPECT_GE(st.compute_s, 0.0);
  EXPECT_GE(st.drain_s, 0.0);
  EXPECT_GT(st.compute_s, 0.0);  // 16 batches of real kernel work
  // Disjoint intervals of one monotonic clock: the buckets can never
  // exceed the wall that contains them (tiny epsilon for timer rounding).
  EXPECT_LE(st.compute_wait_s + st.compute_s + st.drain_s, st.wall_s + 1e-6);
  // The unattributed remainder is loop bookkeeping (lock handoffs,
  // notify, sink dispatch) — generously bounded, not proportional to work.
  EXPECT_LT(st.wall_s - (st.compute_wait_s + st.compute_s + st.drain_s),
            0.5);

  // The split is exported: drain and compute appear as their own kTiming
  // counters next to the deterministic row/batch totals. Presence and
  // classification are checked on the full registry snapshot — obs::diff
  // drops zero-delta metrics, and a fast run can legitimately drain in
  // under a microsecond.
  const obs::Snapshot full = obs::Registry::global().snapshot();
  for (const char* name :
       {"stream.assign.drain_us", "stream.assign.compute_us",
        "stream.assign.compute_wait_us"}) {
    const obs::Metric* m = full.find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->det, obs::Det::kTiming) << name;
  }
  // Per-run deltas still diff against the pre-run snapshot — the registry
  // is process-wide and earlier tests in this binary also serve files.
  const obs::Snapshot snap =
      obs::diff(before, obs::Registry::global().snapshot());
  EXPECT_GE(snap.value_or("stream.assign.compute_us", -1), 1);
  EXPECT_EQ(snap.value_or("stream.assign.rows", 0),
            static_cast<std::int64_t>(st.rows));
}

TEST_F(StreamTest, AssignFileRejectsMismatchedShapes) {
  const std::string path = dir_ / "q.kmat";
  data::write_generated(path, make_spec(100, 5, 4));
  Options opts = base_opts(4, 1);
  AssignServer server(DenseMatrix(4, 7), opts);  // d=7 != file's d=5
  EXPECT_THROW(server.assign_file(path, AssignOptions()),
               std::invalid_argument);
  AssignOptions bad_page;
  bad_page.source = AssignOptions::Source::kPageFile;
  bad_page.page_size = 100;  // not a multiple of sizeof(value_t)
  AssignServer server2(DenseMatrix(4, 5), opts);
  EXPECT_THROW(server2.assign_file(path, bad_page), std::invalid_argument);
}

// End-to-end: ingest a stream, freeze, serve — the served histogram over
// the training file equals assigning every row against the final
// centroids.
TEST_F(StreamTest, IngestThenServeEndToEnd) {
  const data::GeneratorSpec spec = make_spec(3000, 6, 5);
  const std::string path = dir_ / "train.kmat";
  data::write_generated(path, spec);

  Options opts = base_opts(5, 2);
  StreamOptions sopts;
  sopts.decay = 0.95;
  sopts.batch_rows = 500;
  StreamEngine engine(opts, sopts);
  EXPECT_EQ(engine.ingest_file(path), 3000u);
  EXPECT_EQ(engine.stats().batches, 6u);

  const std::string snap = dir_ / "model.ckpt";
  engine.save_snapshot(snap);
  const sem::Checkpoint loaded = sem::load_checkpoint(snap);
  EXPECT_TRUE(bitwise_equal(loaded.centroids, engine.centroids()));
  AssignServer server(loaded, opts);
  EXPECT_EQ(server.k(), 5);

  const AssignStats stats = server.assign_file(path, AssignOptions());
  EXPECT_EQ(stats.rows, 3000u);
  std::int64_t served = 0;
  for (const std::int64_t c : server.served_histogram()) served += c;
  EXPECT_EQ(served, 3000);
}

}  // namespace
}  // namespace knor::stream
