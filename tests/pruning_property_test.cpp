// Property tests for the pruning paths: on randomized generator datasets,
// MTI-pruned ||Lloyd's (knori) and Elkan's full triangle-inequality
// algorithm must reproduce unpruned serial Lloyd's EXACTLY — identical
// assignments and iteration counts for every seed — and the energy of every
// exact engine must be monotone non-increasing along the iteration
// sequence. Pruning bugs (a bound that under-estimates, a drift applied in
// the wrong direction, a stale c2c entry) show up here as a flipped
// assignment on some seed long before they corrupt a benchmark.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/prng.hpp"
#include "core/engines.hpp"
#include "core/knori.hpp"
#include "data/generator.hpp"

namespace knor {
namespace {

struct RandomCase {
  data::GeneratorSpec spec;
  Options opts;
};

/// Randomized-but-reproducible case: dataset shape, k, threads and engine
/// seed all drawn from the case seed.
RandomCase make_case(std::uint64_t seed) {
  Prng rng(seed, /*stream=*/0x9daf);
  RandomCase c;
  c.spec.dist = seed % 3 == 0 ? data::Distribution::kUniformRandom
                              : data::Distribution::kNaturalClusters;
  c.spec.n = 300 + rng.next_below(1200);
  c.spec.d = 2 + rng.next_below(14);
  c.spec.true_clusters = 2 + static_cast<int>(rng.next_below(8));
  c.spec.separation = 4.0 + static_cast<double>(rng.next_below(8));
  c.spec.seed = seed * 1000003 + 17;
  c.opts.k = 2 + static_cast<int>(rng.next_below(10));
  c.opts.threads = 1 + static_cast<int>(rng.next_below(6));
  c.opts.max_iters = 40;
  c.opts.seed = seed * 31 + 5;
  c.opts.numa_nodes = 2;
  return c;
}

TEST(PruningProperty, MtiAndElkanMatchSerialOn50Seeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const RandomCase c = make_case(seed);
    const DenseMatrix m = data::generate(c.spec);

    Options serial_opts = c.opts;
    serial_opts.prune = false;
    const Result ref = lloyd_serial(m.const_view(), serial_opts);

    Options mti_opts = c.opts;
    mti_opts.prune = true;
    const Result mti = kmeans(m.const_view(), mti_opts);
    ASSERT_EQ(mti.iters, ref.iters) << "mti seed " << seed;
    ASSERT_EQ(mti.assignments, ref.assignments) << "mti seed " << seed;
    ASSERT_EQ(mti.cluster_sizes, ref.cluster_sizes) << "mti seed " << seed;

    const Result elkan = elkan_ti(m.const_view(), c.opts);
    ASSERT_EQ(elkan.iters, ref.iters) << "elkan seed " << seed;
    ASSERT_EQ(elkan.assignments, ref.assignments) << "elkan seed " << seed;

    // Pruning must never cost extra distances (MTI's worst case per point
    // is the same k as a full scan), and on clustered data it must
    // strictly prune once the clustering stabilizes.
    if (ref.iters > 2) {
      const std::uint64_t full = static_cast<std::uint64_t>(c.spec.n) *
                                 static_cast<std::uint64_t>(c.opts.k) *
                                 ref.iters;
      EXPECT_LE(mti.counters.dist_computations, full) << "seed " << seed;
      EXPECT_LE(elkan.counters.dist_computations, full) << "seed " << seed;
      if (c.spec.dist == data::Distribution::kNaturalClusters) {
        EXPECT_LT(mti.counters.dist_computations, full) << "seed " << seed;
        EXPECT_LT(elkan.counters.dist_computations, full) << "seed " << seed;
      }
    }
  }
}

/// Energy after 1..steps Lloyd iterations: re-runs with growing max_iters
/// share their iteration prefix because the engines are deterministic, so
/// the sequence is exactly the per-iteration energy trajectory.
template <typename Engine>
std::vector<double> energy_trajectory(const DenseMatrix& m,
                                      const Options& base, int steps,
                                      Engine&& engine) {
  std::vector<double> energies;
  Options opts = base;
  for (int it = 1; it <= steps; ++it) {
    opts.max_iters = it;
    const Result res = engine(m.const_view(), opts);
    energies.push_back(res.energy);
    if (res.converged) break;
  }
  return energies;
}

TEST(PruningProperty, EnergyMonotoneNonIncreasingPerIteration) {
  // The defining property of Lloyd steps, checked per iteration for the
  // pruned engines as well — a loose bound that mis-assigns a point shows
  // up as an energy increase even when the run still "converges".
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RandomCase c = make_case(seed);
    const DenseMatrix m = data::generate(c.spec);
    Options base = c.opts;
    base.max_iters = 12;

    const auto check = [&](const std::vector<double>& e, const char* what) {
      ASSERT_FALSE(e.empty()) << what;
      for (std::size_t i = 1; i < e.size(); ++i)
        EXPECT_LE(e[i], e[i - 1] * (1 + 1e-12))
            << what << " seed " << seed << " iter " << i;
    };

    Options mti_opts = base;
    mti_opts.prune = true;
    check(energy_trajectory(m, mti_opts, 12,
                            [](ConstMatrixView v, const Options& o) {
                              return kmeans(v, o);
                            }),
          "mti");
    check(energy_trajectory(m, base, 12,
                            [](ConstMatrixView v, const Options& o) {
                              return elkan_ti(v, o);
                            }),
          "elkan");
    check(energy_trajectory(m, base, 12,
                            [](ConstMatrixView v, const Options& o) {
                              return lloyd_serial(v, o);
                            }),
          "serial");
  }
}

}  // namespace
}  // namespace knor
