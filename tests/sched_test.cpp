// Unit tests for the scheduler: barrier, thread pool, the NUMA-aware
// partitioned priority task queue (Figure 2), and the parallel reduction.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "numa/partitioner.hpp"
#include "sched/barrier.hpp"
#include "sched/reduction.hpp"
#include "sched/task_queue.hpp"
#include "sched/thread_pool.hpp"

namespace knor::sched {
namespace {

numa::Topology test_topo() { return numa::Topology::simulated(2, 4); }

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> phase0{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ++phase0;
      barrier.arrive_and_wait();
      // After the barrier every thread must observe all phase-0 increments.
      if (phase0.load() != kThreads) ok = false;
      barrier.arrive_and_wait();  // reusable
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok);
}

TEST(Barrier, ReusableAcrossManyIterations) {
  constexpr int kThreads = 3;
  constexpr int kIters = 200;
  Barrier barrier(kThreads);
  std::vector<int> counters(kThreads, 0);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counters[static_cast<std::size_t>(t)] = i;
        barrier.arrive_and_wait();
        for (int u = 0; u < kThreads; ++u)
          if (counters[static_cast<std::size_t>(u)] != i) ok = false;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok);
}

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(6, test_topo());
  std::vector<std::atomic<int>> hits(6);
  pool.run([&](int tid) { ++hits[static_cast<std::size_t>(tid)]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRuns) {
  ThreadPool pool(3, test_topo());
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) pool.run([&](int) { ++total; });
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4, test_topo());
  EXPECT_THROW(pool.run([](int tid) {
                 if (tid == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> total{0};
  pool.run([&](int) { ++total; });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, NodeAssignmentRoundRobin) {
  ThreadPool pool(4, test_topo());
  EXPECT_EQ(pool.node_of(0), 0);
  EXPECT_EQ(pool.node_of(1), 1);
  EXPECT_EQ(pool.node_of(2), 0);
  EXPECT_EQ(pool.node_of(3), 1);
}

class TaskQueueTest : public ::testing::TestWithParam<SchedPolicy> {};

TEST_P(TaskQueueTest, DrainsAllRowsExactlyOnce) {
  const auto topo = test_topo();
  const numa::Partitioner parts(10000, 4, topo);
  TaskQueue queue(parts, GetParam(), 256);

  std::vector<int> seen(10000, 0);
  Task task;
  // Single consumer draining on behalf of all threads.
  for (int t = 0; t < 4; ++t)
    while (queue.next(t, task))
      for (index_t r = task.begin; r < task.end; ++r)
        ++seen[static_cast<std::size_t>(r)];
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST_P(TaskQueueTest, ResetRefills) {
  const auto topo = test_topo();
  const numa::Partitioner parts(1000, 2, topo);
  TaskQueue queue(parts, GetParam(), 128);
  Task task;
  index_t total = 0;
  while (queue.next(0, task) || queue.next(1, task)) total += task.size();
  EXPECT_EQ(total, 1000u);
  queue.reset();
  total = 0;
  while (queue.next(0, task) || queue.next(1, task)) total += task.size();
  EXPECT_EQ(total, 1000u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, TaskQueueTest,
                         ::testing::Values(SchedPolicy::kNumaAware,
                                           SchedPolicy::kFifo,
                                           SchedPolicy::kStatic),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) ==
                                          "numa-aware"
                                      ? "NumaAware"
                                  : to_string(info.param) == std::string("fifo")
                                      ? "Fifo"
                                      : "Static";
                         });

TEST(TaskQueue, StaticPolicyNeverSteals) {
  const auto topo = test_topo();
  const numa::Partitioner parts(1000, 4, topo);
  TaskQueue queue(parts, SchedPolicy::kStatic, 64);
  Task task;
  // Thread 0 drains its own partition, then must get nothing even though
  // other partitions are full.
  while (queue.next(0, task)) {
    EXPECT_EQ(task.home_partition, 0);
  }
  EXPECT_FALSE(queue.next(0, task));
  EXPECT_TRUE(queue.next(1, task));  // other partitions untouched
}

TEST(TaskQueue, NumaAwareStealsSameNodeFirst) {
  // 4 threads over 2 nodes: threads 0,2 -> node0; 1,3 -> node1.
  const auto topo = test_topo();
  const numa::Partitioner parts(4096, 4, topo);
  TaskQueue queue(parts, SchedPolicy::kNumaAware, 64);
  Task task;
  // Drain thread 0's own partition.
  int own = 0;
  while (queue.next(0, task) && task.home_partition == 0) ++own;
  EXPECT_GT(own, 0);
  // The first stolen task (already popped above as the loop-breaker) must
  // come from thread 2 — the same-node partition — not 1 or 3.
  EXPECT_EQ(task.home_partition, 2);
  const StealStats stats = queue.stats(0);
  EXPECT_EQ(stats.same_node, 1u);
  EXPECT_EQ(stats.remote_node, 0u);
}

TEST(TaskQueue, NumaAwareFallsBackToRemoteRatherThanStarve) {
  const auto topo = test_topo();
  const numa::Partitioner parts(1024, 4, topo);
  TaskQueue queue(parts, SchedPolicy::kNumaAware, 64);
  Task task;
  // Drain partitions 0 and 2 (node 0) completely via thread 0.
  while (queue.next(0, task) &&
         (task.home_partition == 0 || task.home_partition == 2)) {
  }
  // That loop exits holding a remote task: remote partitions are used
  // rather than starving the thread.
  EXPECT_TRUE(task.home_partition == 1 || task.home_partition == 3);
  EXPECT_GE(queue.stats(0).remote_node, 1u);
}

TEST(TaskQueue, FifoStealsInIndexOrderIgnoringNuma) {
  const auto topo = test_topo();
  const numa::Partitioner parts(4096, 4, topo);
  TaskQueue queue(parts, SchedPolicy::kFifo, 64);
  Task task;
  while (queue.next(0, task) && task.home_partition == 0) {
  }
  // FIFO visits partition (0+1)%4 = 1 first — a remote-node partition.
  EXPECT_EQ(task.home_partition, 1);
  EXPECT_EQ(queue.stats(0).remote_node, 1u);
}

TEST(TaskQueue, TaskSizeRespected) {
  const auto topo = test_topo();
  const numa::Partitioner parts(1000, 1, topo);
  TaskQueue queue(parts, SchedPolicy::kStatic, 300);
  Task task;
  std::vector<index_t> sizes;
  while (queue.next(0, task)) sizes.push_back(task.size());
  ASSERT_EQ(sizes.size(), 4u);  // 300+300+300+100
  EXPECT_EQ(sizes[3], 100u);
}

TEST(TaskQueue, ConcurrentDrainCoversEverything) {
  const auto topo = test_topo();
  const int T = 4;
  const index_t n = 100000;
  const numa::Partitioner parts(n, T, topo);
  TaskQueue queue(parts, SchedPolicy::kNumaAware, 128);
  std::vector<std::atomic<int>> seen(n);
  ThreadPool pool(T, topo);
  pool.run([&](int tid) {
    Task task;
    while (queue.next(tid, task))
      for (index_t r = task.begin; r < task.end; ++r)
        ++seen[static_cast<std::size_t>(r)];
  });
  for (index_t r = 0; r < n; ++r)
    ASSERT_EQ(seen[static_cast<std::size_t>(r)].load(), 1) << "row " << r;
}

TEST(TreeReduce, SumsAllItemsIntoSlotZero) {
  for (int T : {1, 2, 3, 4, 7, 8}) {
    std::vector<long> items(static_cast<std::size_t>(T));
    std::iota(items.begin(), items.end(), 1);  // 1..T
    Barrier barrier(T);
    ThreadPool pool(T, test_topo());
    pool.run([&](int tid) {
      tree_reduce(tid, T, barrier, [&](int dst, int src) {
        items[static_cast<std::size_t>(dst)] +=
            items[static_cast<std::size_t>(src)];
      });
    });
    EXPECT_EQ(items[0], static_cast<long>(T) * (T + 1) / 2) << "T=" << T;
  }
}

}  // namespace
}  // namespace knor::sched
