// Unit tests for the scheduler layer: barrier, the NUMA-partitioned
// work-stealing Scheduler (per-node deques, hierarchical steal order,
// adaptive task sizing), the fixed-tree reduction, reduce_by_node, and the
// NodeDistance victim ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "numa/cost_model.hpp"
#include "numa/partitioner.hpp"
#include "sched/barrier.hpp"
#include "sched/reduction.hpp"
#include "sched/scheduler.hpp"

namespace knor::sched {
namespace {

numa::Topology test_topo() { return numa::Topology::simulated(2, 4); }

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> phase0{0};
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ++phase0;
      barrier.arrive_and_wait();
      // After the barrier every thread must observe all phase-0 increments.
      if (phase0.load() != kThreads) ok = false;
      barrier.arrive_and_wait();  // reusable
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok);
}

TEST(Scheduler, RunsEveryWorkerExactlyOnce) {
  Scheduler sched(6, test_topo());
  std::vector<std::atomic<int>> hits(6);
  sched.run([&](int tid) { ++hits[static_cast<std::size_t>(tid)]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ReusableAcrossRuns) {
  Scheduler sched(3, test_topo());
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) sched.run([&](int) { ++total; });
  EXPECT_EQ(total.load(), 150);
}

TEST(Scheduler, PropagatesWorkerException) {
  Scheduler sched(4, test_topo());
  EXPECT_THROW(sched.run([](int tid) {
                 if (tid == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // Scheduler must remain usable after an exception.
  std::atomic<int> total{0};
  sched.run([&](int) { ++total; });
  EXPECT_EQ(total.load(), 4);
}

TEST(Scheduler, NodeAssignmentRoundRobin) {
  Scheduler sched(4, test_topo());
  EXPECT_EQ(sched.node_of_thread(0), 0);
  EXPECT_EQ(sched.node_of_thread(1), 1);
  EXPECT_EQ(sched.node_of_thread(2), 0);
  EXPECT_EQ(sched.node_of_thread(3), 1);
}

TEST(Scheduler, AdaptiveTaskSizeIsThreadCountIndependent) {
  // auto_task_size is a pure function of n: bounded by [kMinTaskSize,
  // kPaperTaskSize] and targeting kAutoChunkTarget chunks.
  EXPECT_EQ(Scheduler::auto_task_size(100), Scheduler::kMinTaskSize);
  EXPECT_EQ(Scheduler::auto_task_size(10'000'000), Scheduler::kPaperTaskSize);
  const index_t n = 1'000'000;
  const index_t ts = Scheduler::auto_task_size(n);
  EXPECT_GE(ts, Scheduler::kMinTaskSize);
  EXPECT_LE(ts, Scheduler::kPaperTaskSize);
  EXPECT_LE(Scheduler::num_chunks(n, ts), Scheduler::kAutoChunkTarget + 1);
  // resolve: 0 -> adaptive; every path floored to the kMaxChunks grid cap.
  EXPECT_EQ(Scheduler::resolve_task_size(n, 0), ts);
  EXPECT_EQ(Scheduler::resolve_task_size(n, 2048), 2048u);
  for (const index_t requested : {index_t(0), index_t(64)})
    for (const index_t big : {index_t(100'000'000), index_t(1'000'000'000)})
      EXPECT_LE(Scheduler::num_chunks(
                    big, Scheduler::resolve_task_size(big, requested)),
                Scheduler::kMaxChunks)
          << big << "/" << requested;
  // Idempotent: engines pre-resolve, begin_chunks resolves again.
  const index_t resolved = Scheduler::resolve_task_size(1'000'000'000, 0);
  EXPECT_EQ(Scheduler::resolve_task_size(1'000'000'000, resolved), resolved);
}

class PolicyTest : public ::testing::TestWithParam<SchedPolicy> {};

TEST_P(PolicyTest, DrainsAllRowsExactlyOnce) {
  const auto topo = test_topo();
  const numa::Partitioner parts(10000, 4, topo);
  Scheduler sched(4, topo, /*bind=*/true, GetParam());
  sched.begin_chunks(10000, 256, &parts);

  std::vector<int> seen(10000, 0);
  Task task;
  // Single consumer draining on behalf of all threads.
  for (int t = 0; t < 4; ++t)
    while (sched.next_chunk(t, task))
      for (index_t r = task.begin; r < task.end; ++r)
        ++seen[static_cast<std::size_t>(r)];
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST_P(PolicyTest, BeginChunksRefills) {
  const auto topo = test_topo();
  const numa::Partitioner parts(1000, 2, topo);
  Scheduler sched(2, topo, /*bind=*/true, GetParam());
  for (int round = 0; round < 2; ++round) {
    sched.begin_chunks(1000, 128, &parts);
    Task task;
    index_t total = 0;
    while (sched.next_chunk(0, task) || sched.next_chunk(1, task))
      total += task.size();
    EXPECT_EQ(total, 1000u);
  }
}

TEST_P(PolicyTest, ConcurrentDrainCoversEverything) {
  const auto topo = test_topo();
  const int T = 4;
  const index_t n = 100000;
  const numa::Partitioner parts(n, T, topo);
  Scheduler sched(T, topo, /*bind=*/true, GetParam());
  sched.begin_chunks(n, 128, &parts);
  std::vector<std::atomic<int>> seen(n);
  sched.run([&](int tid) {
    Task task;
    while (sched.next_chunk(tid, task))
      for (index_t r = task.begin; r < task.end; ++r)
        ++seen[static_cast<std::size_t>(r)];
  });
  for (index_t r = 0; r < n; ++r)
    ASSERT_EQ(seen[static_cast<std::size_t>(r)].load(), 1) << "row " << r;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(SchedPolicy::kNumaAware,
                                           SchedPolicy::kFifo,
                                           SchedPolicy::kStatic),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) ==
                                          "numa-aware"
                                      ? "NumaAware"
                                  : to_string(info.param) == std::string("fifo")
                                      ? "Fifo"
                                      : "Static";
                         });

TEST(Scheduler, StaticPolicyNeverSteals) {
  const auto topo = test_topo();
  const numa::Partitioner parts(1000, 4, topo);
  Scheduler sched(4, topo, /*bind=*/true, SchedPolicy::kStatic);
  sched.begin_chunks(1000, 64, &parts);
  Task task;
  // Thread 0 drains its own share, then must get nothing even though the
  // other shares are full.
  while (sched.next_chunk(0, task)) {
    EXPECT_EQ(task.home_thread, 0);
  }
  EXPECT_FALSE(sched.next_chunk(0, task));
  EXPECT_TRUE(sched.next_chunk(1, task));  // other shares untouched
  EXPECT_EQ(sched.stats(0).same_node, 0u);
  EXPECT_EQ(sched.stats(0).remote_node, 0u);
}

TEST(Scheduler, NumaAwareRebalancesWithinNodeFirst) {
  // 4 threads over 2 nodes: threads 0,2 -> node0; 1,3 -> node1. Thread 0
  // shares a deque with thread 2: after its own chunks it takes thread 2's
  // (same-node), and only then steals from node 1 (remote).
  const auto topo = test_topo();
  const numa::Partitioner parts(4096, 4, topo);
  Scheduler sched(4, topo, /*bind=*/true, SchedPolicy::kNumaAware);
  sched.begin_chunks(4096, 64, &parts);
  Task task;
  bool seen_remote = false;
  while (sched.next_chunk(0, task)) {
    if (task.home_node != 0) {
      seen_remote = true;
    } else {
      // No same-node chunk may be claimed after the first remote steal:
      // the own-node deque is exhausted before any cross-node theft.
      EXPECT_FALSE(seen_remote) << "same-node chunk after a remote steal";
    }
  }
  const StealStats stats = sched.stats(0);
  EXPECT_GT(stats.own, 0u);
  EXPECT_GT(stats.same_node, 0u);  // thread 2's chunks, same deque
  EXPECT_GT(stats.remote_node, 0u);
  EXPECT_TRUE(seen_remote);
}

TEST(Scheduler, RemoteStealsTakeTheBackOfTheVictimDeque) {
  // Victims lose their *last* chunks first, preserving the front (the rows
  // nearest the victim's current working set).
  const auto topo = test_topo();
  const numa::Partitioner parts(4096, 2, topo);  // threads 0->n0, 1->n1
  Scheduler sched(2, topo, /*bind=*/true, SchedPolicy::kNumaAware);
  sched.begin_chunks(4096, 64, &parts);
  Task task;
  // Thread 0 steals one chunk from node 1 after draining node 0: it must be
  // node 1's highest chunk id.
  std::uint32_t last_own = 0;
  while (sched.next_chunk(0, task) && task.home_node == 0)
    last_own = task.chunk;
  (void)last_own;
  EXPECT_EQ(task.home_node, 1);
  EXPECT_EQ(task.chunk, 63u);  // 4096/64 = 64 chunks; node1 owns the tail
}

TEST(Scheduler, FifoIsOneSharedQueue) {
  const auto topo = test_topo();
  const numa::Partitioner parts(4096, 4, topo);
  Scheduler sched(4, topo, /*bind=*/true, SchedPolicy::kFifo);
  sched.begin_chunks(4096, 64, &parts);
  Task task;
  // A single consumer sees every chunk in ascending order regardless of
  // home node — the flat-pool model.
  std::uint32_t expect = 0;
  while (sched.next_chunk(3, task)) EXPECT_EQ(task.chunk, expect++);
  EXPECT_EQ(expect, 64u);
}

TEST(Scheduler, TaskSizeRespected) {
  const auto topo = test_topo();
  const numa::Partitioner parts(1000, 1, topo);
  Scheduler sched(1, topo, /*bind=*/true, SchedPolicy::kStatic);
  sched.begin_chunks(1000, 300, &parts);
  Task task;
  std::vector<index_t> sizes;
  while (sched.next_chunk(0, task)) sizes.push_back(task.size());
  ASSERT_EQ(sizes.size(), 4u);  // 300+300+300+100
  EXPECT_EQ(sizes[3], 100u);
}

TEST(NodeDistance, SimulatedRingMetric) {
  const auto topo = numa::Topology::simulated(4, 8);
  const numa::NodeDistance dist(topo);
  EXPECT_EQ(dist(0, 0), 10);
  EXPECT_EQ(dist(0, 1), 21);  // 1 hop
  EXPECT_EQ(dist(0, 2), 26);  // 2 hops (opposite corner)
  EXPECT_EQ(dist(0, 3), 21);  // 1 hop the other way round the ring
  // Victims ascend by distance; ties break toward the lower node id.
  EXPECT_EQ(dist.victim_order(0), (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(dist.victim_order(2), (std::vector<int>{1, 3, 0}));
}

TEST(Scheduler, StealsFromCheapestRemoteNodeFirst) {
  // 4 nodes, 4 threads. Thread 0 (node 0) drains its own node, then must
  // visit node 1 (distance 21) before node 2 (distance 26).
  const auto topo = numa::Topology::simulated(4, 8);
  const numa::Partitioner parts(4096, 4, topo);
  Scheduler sched(4, topo, /*bind=*/true, SchedPolicy::kNumaAware);
  sched.begin_chunks(4096, 64, &parts);
  Task task;
  std::vector<int> visit_order;
  while (sched.next_chunk(0, task))
    if (visit_order.empty() || visit_order.back() != task.home_node)
      visit_order.push_back(task.home_node);
  EXPECT_EQ(visit_order, (std::vector<int>{0, 1, 3, 2}));
}

TEST(TreeReduce, SumsAllItemsIntoSlotZero) {
  for (int T : {1, 2, 3, 4, 7, 8}) {
    std::vector<long> items(static_cast<std::size_t>(T));
    std::iota(items.begin(), items.end(), 1);  // 1..T
    Barrier barrier(T);
    Scheduler sched(T, test_topo());
    sched.run([&](int tid) {
      tree_reduce(tid, T, barrier, [&](int dst, int src) {
        items[static_cast<std::size_t>(dst)] +=
            items[static_cast<std::size_t>(src)];
      });
    });
    EXPECT_EQ(items[0], static_cast<long>(T) * (T + 1) / 2) << "T=" << T;
  }
}

TEST(TreeReduceFixed, AssociationDependsOnlyOnSlotCount) {
  // Fold 13 FP slots under several thread counts: the merge tree is fixed
  // by the count, so the result must be bitwise identical.
  const std::size_t count = 13;
  std::vector<double> reference;
  for (int T : {1, 2, 5, 8}) {
    std::vector<double> slots(count);
    for (std::size_t i = 0; i < count; ++i)
      slots[i] = 1.0 / static_cast<double>(i + 3);  // not exactly summable
    Barrier barrier(T);
    Scheduler sched(T, test_topo());
    sched.run([&](int tid) {
      tree_reduce_fixed(tid, T, count, barrier,
                        [&](std::size_t dst, std::size_t src) {
                          slots[dst] += slots[src];
                        });
    });
    if (reference.empty())
      reference.push_back(slots[0]);
    else
      EXPECT_EQ(reference[0], slots[0]) << "T=" << T;  // bitwise
  }
}

TEST(ReduceByNode, NodeOrderedAssociation) {
  // 5 threads over 2 nodes (node0: t0,t2,t4; node1: t1,t3). The merge must
  // fold each node locally first, then the node leads in node order:
  // ((t0+t2)+t4) + (t1+t3).
  const int T = 5;
  Scheduler sched(T, test_topo());
  std::vector<std::string> slots(T);
  for (int t = 0; t < T; ++t) slots[static_cast<std::size_t>(t)] =
      "t" + std::to_string(t);
  sched.run([&](int tid) {
    sched.reduce_by_node(tid, [&](int dst, int src) {
      slots[static_cast<std::size_t>(dst)] =
          "(" + slots[static_cast<std::size_t>(dst)] + "+" +
          slots[static_cast<std::size_t>(src)] + ")";
    });
  });
  EXPECT_EQ(slots[0], "(((t0+t2)+t4)+(t1+t3))");
}

TEST(Scheduler, ParallelForBodyRunsOncePerChunk) {
  const auto topo = test_topo();
  Scheduler sched(4, topo);
  const index_t n = 10000;
  const index_t ts = 128;
  std::vector<std::atomic<int>> runs(
      static_cast<std::size_t>(Scheduler::num_chunks(n, ts)));
  sched.parallel_for(n, ts, nullptr, [&](int, const Task& task) {
    ++runs[task.chunk];
    EXPECT_EQ(task.begin, static_cast<index_t>(task.chunk) * ts);
  });
  for (auto& r : runs) EXPECT_EQ(r.load(), 1);
}

}  // namespace
}  // namespace knor::sched
