// Cross-module integration tests: full pipelines exercising generation,
// file I/O, and all three knor modules together, plus recovery of planted
// cluster structure and the framework stand-ins.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "baselines/frameworks.hpp"
#include "common/memory_tracker.hpp"
#include "core/engines.hpp"
#include "core/knori.hpp"
#include "data/generator.hpp"
#include "data/matrix_io.hpp"
#include "dist/knord.hpp"
#include "sem/sem_kmeans.hpp"

namespace knor {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("knor_integration_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IntegrationTest, AllThreeModulesAgreeEndToEnd) {
  // The paper's core claim of algorithmic identity: knori, knors and knord
  // run the same ||Lloyd's + MTI algorithm and must produce the same
  // clustering from the same seed.
  data::GeneratorSpec spec;
  spec.n = 10000;
  spec.d = 16;
  spec.true_clusters = 12;
  spec.seed = 77;
  const std::string path = dir_ / "data.kmat";
  data::write_generated(path, spec);
  const DenseMatrix m = data::read_matrix(path);

  Options opts;
  opts.k = 12;
  opts.threads = 4;
  opts.max_iters = 50;
  opts.seed = 13;
  opts.numa_nodes = 2;

  const Result im = kmeans(m.const_view(), opts);

  sem::SemOptions sopts;
  sopts.page_cache_bytes = 256 << 10;
  sopts.row_cache_bytes = 256 << 10;
  const Result sem_res = sem::kmeans(path, opts, sopts);

  dist::DistOptions dopts;
  dopts.ranks = 3;
  dopts.threads_per_rank = 2;
  const Result dist_res = dist::kmeans(m.const_view(), opts, dopts);

  for (const Result* res : {&sem_res, &dist_res}) {
    EXPECT_EQ(res->iters, im.iters);
    EXPECT_LT(std::abs(res->energy - im.energy) / im.energy, 1e-9);
    std::size_t mismatched = 0;
    for (std::size_t i = 0; i < im.assignments.size(); ++i)
      if (res->assignments[i] != im.assignments[i]) ++mismatched;
    EXPECT_EQ(mismatched, 0u);
  }
}

TEST_F(IntegrationTest, RecoversPlantedClusters) {
  // With well-separated planted components and k = #components, k-means
  // must recover the planted partition almost perfectly.
  data::GeneratorSpec spec;
  spec.n = 12000;
  spec.d = 8;
  spec.true_clusters = 6;
  spec.separation = 15.0;
  spec.seed = 5;
  const DenseMatrix m = data::generate(spec);

  Options opts;
  opts.k = 6;
  opts.threads = 4;
  opts.max_iters = 100;
  opts.init = Init::kKmeansPP;  // avoids degenerate forgy draws
  opts.seed = 2;
  const Result res = kmeans(m.const_view(), opts);
  EXPECT_TRUE(res.converged);

  // Majority-label mapping from found cluster -> planted component.
  std::vector<std::vector<index_t>> votes(
      6, std::vector<index_t>(6, 0));
  for (index_t r = 0; r < spec.n; ++r)
    ++votes[res.assignments[r]][static_cast<std::size_t>(
        data::true_component_of_row(spec, r))];
  index_t agree = 0;
  for (int c = 0; c < 6; ++c)
    agree += *std::max_element(votes[static_cast<std::size_t>(c)].begin(),
                               votes[static_cast<std::size_t>(c)].end());
  EXPECT_GT(static_cast<double>(agree) / spec.n, 0.99);
}

TEST_F(IntegrationTest, FrameworkStandInsProduceSameClustering) {
  // The stand-ins implement the identical naive algorithm; they must agree
  // with knori- (pruning off) exactly.
  data::GeneratorSpec spec;
  spec.n = 4000;
  spec.d = 8;
  spec.true_clusters = 5;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 5;
  opts.threads = 4;
  opts.max_iters = 40;
  opts.prune = false;
  const Result ref = kmeans(m.const_view(), opts);

  for (auto* fn : {&baselines::mllib_like, &baselines::h2o_like,
                   &baselines::turi_like}) {
    const Result res = (*fn)(m.const_view(), opts);
    EXPECT_EQ(res.iters, ref.iters);
    EXPECT_LT(std::abs(res.energy - ref.energy) / ref.energy, 1e-9);
    std::size_t mismatched = 0;
    for (std::size_t i = 0; i < ref.assignments.size(); ++i)
      if (res.assignments[i] != ref.assignments[i]) ++mismatched;
    EXPECT_EQ(mismatched, 0u);
  }
}

TEST_F(IntegrationTest, MtiPruningRateGrowsOnNaturalClusters) {
  // The phenomenon the paper exploits: once centroids settle, most points
  // are clause-1 skipped. Measure the skip fraction over the run.
  data::GeneratorSpec spec;
  spec.n = 10000;
  spec.d = 8;
  spec.true_clusters = 8;
  spec.separation = 10.0;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 8;
  opts.threads = 2;
  opts.max_iters = 60;
  const Result res = kmeans(m.const_view(), opts);
  const double point_iters =
      static_cast<double>(spec.n) * static_cast<double>(res.iters);
  const double skip_rate = res.counters.clause1_skips / point_iters;
  EXPECT_GT(skip_rate, 0.1) << "clause-1 skipped " << skip_rate;
  // Naive would be n*k*iters distances; MTI must cut >50% on this data.
  EXPECT_LT(res.counters.dist_computations, 0.5 * point_iters * opts.k);
}

TEST_F(IntegrationTest, SemScalesToFileLargerThanCaches) {
  // A file much larger than page+row caches must still cluster correctly.
  data::GeneratorSpec spec;
  spec.n = 50000;
  spec.d = 16;  // ~6.4 MB
  spec.true_clusters = 4;
  const std::string path = dir_ / "big.kmat";
  data::write_generated(path, spec);

  Options opts;
  opts.k = 4;
  opts.threads = 2;
  opts.max_iters = 25;
  sem::SemOptions sopts;
  sopts.page_cache_bytes = 64 << 10;  // 1% of the file
  sopts.row_cache_bytes = 64 << 10;
  sem::SemStats stats;
  const Result res = sem::kmeans(path, opts, sopts, &stats);
  EXPECT_EQ(res.assignments.size(), 50000u);
  index_t total = 0;
  for (index_t s : res.cluster_sizes) total += s;
  EXPECT_EQ(total, 50000u);
  EXPECT_GT(stats.total_read(), 0u);
}

TEST_F(IntegrationTest, MemoryFootprintOrdering) {
  // Table 1's ordering: SEM in-memory state << in-memory dataset copy, and
  // Elkan's O(nk) state >> MTI's O(n) state.
  data::GeneratorSpec spec;
  spec.n = 20000;
  spec.d = 32;
  spec.true_clusters = 4;
  const std::string path = dir_ / "mem.kmat";
  data::write_generated(path, spec);
  const DenseMatrix m = data::read_matrix(path);

  auto& mt = MemoryTracker::instance();
  Options opts;
  opts.k = 40;
  opts.threads = 2;
  opts.max_iters = 5;

  mt.reset();
  kmeans(m.const_view(), opts);
  const auto knori_peak = mt.peak_bytes();

  mt.reset();
  sem::SemOptions sopts;
  sopts.page_cache_bytes = 64 << 10;
  sopts.row_cache_bytes = 64 << 10;
  sem::kmeans(path, opts, sopts);
  const auto knors_peak = mt.peak_bytes();

  mt.reset();
  elkan_ti(m.const_view(), opts);
  const auto elkan_state = mt.peak_bytes();

  // knors holds O(n) state, knori holds the O(nd) dataset: 32x ratio here.
  EXPECT_LT(knors_peak, knori_peak / 2);
  // Elkan's lower-bound matrix is k x larger than MTI's O(n) bounds.
  mt.reset();
  Options mti_opts = opts;
  kmeans(m.const_view(), mti_opts);
  EXPECT_GT(elkan_state, static_cast<std::int64_t>(
                             spec.n * opts.k * sizeof(value_t) / 2));
  mt.reset();
}

}  // namespace
}  // namespace knor
