// Cross-backend conformance oracle: the same dataset, seed and starting
// centroids pushed through every backend — knori (in-memory, all policies
// and thread counts), knors (semi-external memory), and knord (distributed,
// 1..4 ranks) plus the flat MPI baseline — must produce IDENTICAL
// centroids (bitwise), assignments, cluster sizes and iteration counts.
// This is the diff target future refactors of any hot path run against.
//
// Why bitwise equality is attainable across backends: the dataset is
// integer-valued (generated, then rounded), so every centroid-sum partial
// is an exactly-representable double and FP addition is associative over
// them — any grouping (per-chunk fold, per-rank allreduce, SEM's
// cache-then-fetch order) yields the same exact sums, the same quotients
// sum/count, and therefore the same centroid doubles everywhere. Within a
// single backend the per-chunk reduction makes results bitwise stable even
// on non-integer data (tests/exactness_test.cpp pins that); integer data
// extends the guarantee across backends with different reduction shapes.
// Energy is a sum of distances to *fractional* centroids, so it is only
// compared to 1e-12 relative tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/engines.hpp"
#include "core/knori.hpp"
#include "data/generator.hpp"
#include "data/matrix_io.hpp"
#include "dist/knord.hpp"
#include "sem/sem_kmeans.hpp"

namespace knor {
namespace {

constexpr index_t kN = 1200;
constexpr index_t kD = 6;
constexpr int kK = 5;

DenseMatrix integer_dataset() {
  data::GeneratorSpec spec;
  spec.n = kN;
  spec.d = kD;
  spec.true_clusters = kK;
  spec.separation = 9.0;
  spec.seed = 20170627;  // HPDC'17
  DenseMatrix m = data::generate(spec);
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t c = 0; c < m.cols(); ++c)
      m.at(r, c) = std::round(m.at(r, c));
  return m;
}

/// Deterministic integer starting centroids: k rows spread over the data.
DenseMatrix initial_centroids(const DenseMatrix& m) {
  DenseMatrix init(static_cast<index_t>(kK), kD);
  for (int c = 0; c < kK; ++c) {
    const index_t r = (m.rows() * static_cast<index_t>(c)) /
                          static_cast<index_t>(kK) +
                      7;  // off the block boundary
    std::memcpy(init.row(static_cast<index_t>(c)), m.row(r),
                kD * sizeof(value_t));
  }
  return init;
}

Options base_options(const DenseMatrix& init) {
  Options opts;
  opts.k = kK;
  opts.max_iters = 60;
  opts.init = Init::kProvided;
  opts.initial_centroids = init;
  opts.numa_nodes = 2;  // simulated 2-node topology everywhere
  return opts;
}

class ConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new DenseMatrix(integer_dataset());
    init_ = new DenseMatrix(initial_centroids(*data_));
    Options opts = base_options(*init_);
    ref_ = new Result(lloyd_serial(data_->const_view(), opts));
    // The oracle must be non-trivial: actual iterations and convergence.
    ASSERT_TRUE(ref_->converged);
    ASSERT_GT(ref_->iters, 2u);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete init_;
    delete ref_;
    data_ = nullptr;
    init_ = nullptr;
    ref_ = nullptr;
  }

  void expect_identical(const Result& res, const std::string& what) {
    EXPECT_EQ(res.iters, ref_->iters) << what;
    EXPECT_EQ(res.converged, ref_->converged) << what;
    ASSERT_EQ(res.assignments.size(), ref_->assignments.size()) << what;
    ASSERT_EQ(res.assignments, ref_->assignments) << what;
    EXPECT_EQ(res.cluster_sizes, ref_->cluster_sizes) << what;
    ASSERT_EQ(res.centroids.rows(), ref_->centroids.rows()) << what;
    ASSERT_EQ(res.centroids.cols(), ref_->centroids.cols()) << what;
    EXPECT_EQ(std::memcmp(res.centroids.data(), ref_->centroids.data(),
                          ref_->centroids.size() * sizeof(value_t)),
              0)
        << what << ": centroids differ bitwise";
    const double rel = std::abs(res.energy - ref_->energy) /
                       std::max(1e-30, ref_->energy);
    EXPECT_LT(rel, 1e-12) << what;
  }

  static DenseMatrix* data_;
  static DenseMatrix* init_;
  static Result* ref_;
};

DenseMatrix* ConformanceTest::data_ = nullptr;
DenseMatrix* ConformanceTest::init_ = nullptr;
Result* ConformanceTest::ref_ = nullptr;

TEST_F(ConformanceTest, KnoriAcrossThreadsPruningAndPolicies) {
  for (const int threads : {1, 3, 8}) {
    for (const bool prune : {false, true}) {
      Options opts = base_options(*init_);
      opts.threads = threads;
      opts.prune = prune;
      expect_identical(kmeans(data_->const_view(), opts),
                       "knori T=" + std::to_string(threads) +
                           (prune ? " mti" : " full"));
    }
  }
  for (const auto policy :
       {sched::SchedPolicy::kFifo, sched::SchedPolicy::kStatic}) {
    Options opts = base_options(*init_);
    opts.threads = 4;
    opts.sched = policy;
    expect_identical(kmeans(data_->const_view(), opts),
                     std::string("knori policy=") + sched::to_string(policy));
  }
  // Explicit task sizes pick different chunk grids — with integer data the
  // grid must not matter either.
  for (const index_t task_size : {64u, 500u, 8192u}) {
    Options opts = base_options(*init_);
    opts.threads = 4;
    opts.task_size = task_size;
    expect_identical(kmeans(data_->const_view(), opts),
                     "knori task_size=" + std::to_string(task_size));
  }
  Options oblivious = base_options(*init_);
  oblivious.threads = 4;
  oblivious.numa_aware = false;
  expect_identical(kmeans(data_->const_view(), oblivious), "knori oblivious");
}

TEST_F(ConformanceTest, SemMatchesInMemory) {
  const std::string path =
      ::testing::TempDir() + "conformance_integer.kmat";
  data::write_matrix(path, *data_);
  for (const bool prune : {false, true}) {
    for (const bool row_cache : {false, true}) {
      Options opts = base_options(*init_);
      opts.threads = 3;
      opts.prune = prune;
      sem::SemOptions sopts;
      sopts.page_cache_bytes = 1 << 16;  // small: force real I/O paths
      sopts.row_cache_enabled = row_cache;
      sem::SemStats stats;
      expect_identical(sem::kmeans(path, opts, sopts, &stats),
                       std::string("sem") + (prune ? " mti" : " full") +
                           (row_cache ? " +rc" : " -rc"));
    }
  }
  std::remove(path.c_str());
}

TEST_F(ConformanceTest, KnordMatchesAcrossRankCounts) {
  for (const int ranks : {1, 2, 3, 4}) {
    Options opts = base_options(*init_);
    dist::DistOptions dopts;
    dopts.ranks = ranks;
    dopts.threads_per_rank = 2;
    expect_identical(dist::kmeans(data_->const_view(), opts, dopts),
                     "knord ranks=" + std::to_string(ranks));
  }
  // The flat MPI baseline reduces with the same collectives.
  Options opts = base_options(*init_);
  dist::DistOptions dopts;
  dopts.ranks = 3;
  expect_identical(dist::mpi_kmeans(data_->const_view(), opts, dopts),
                   "mpi baseline ranks=3");
}

TEST_F(ConformanceTest, GemmTiledMatchesReferenceAcrossIsasAndTiles) {
  // The blocked-GEMM engine computes the argmin through the algebraic
  // identity d^2 = ||x||^2 - 2 x.c + ||c||^2 — on integer data the dots,
  // norms and centroid sums are all exact, so the tiled engine must land
  // on the SAME bitwise centroids as the serial reference for every ISA
  // and every cache-tile shape (DESIGN.md §12: the tile is a pure
  // performance knob, the ISA a bitwise-self-deterministic one).
  for (const kernels::Isa isa : kernels::available_isas()) {
    for (const char* tile :
         {"auto", "1x8", "3x16", "64x8", "8x256", "7x24"}) {
      Options opts = base_options(*init_);
      opts.threads = 3;
      opts.simd = isa;
      opts.gemm_tile = parse_gemm_tile_or_throw(tile, "tile");
      expect_identical(gemm_kmeans(data_->const_view(), opts),
                       std::string("gemm isa=") + kernels::to_string(isa) +
                           " tile=" + tile);
    }
  }
  // And across thread counts / policies at a fixed tile.
  for (const int threads : {1, 2, 8}) {
    Options opts = base_options(*init_);
    opts.threads = threads;
    opts.sched = sched::SchedPolicy::kFifo;
    expect_identical(gemm_kmeans(data_->const_view(), opts),
                     "gemm T=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace knor
