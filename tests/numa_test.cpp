// Unit tests for the NUMA substrate: topology detection/simulation,
// node-targeted allocation, thread binding, row partitioning, cost model.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "numa/cost_model.hpp"
#include "numa/numa_alloc.hpp"
#include "numa/partitioner.hpp"
#include "numa/thread_bind.hpp"
#include "numa/topology.hpp"

namespace knor::numa {
namespace {

TEST(Topology, DetectReturnsAtLeastOneNode) {
  const Topology topo = Topology::detect();
  EXPECT_GE(topo.num_nodes(), 1);
  EXPECT_GE(topo.num_cpus(), 1);
  int cpus = 0;
  for (const auto& node : topo.nodes()) cpus += node.cpus.size();
  EXPECT_EQ(cpus, topo.num_cpus());
}

TEST(Topology, SimulatedStripesCpusRoundRobin) {
  const Topology topo = Topology::simulated(4, 8);
  ASSERT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.num_cpus(), 8);
  EXPECT_TRUE(topo.is_simulated());
  // cpu c belongs to node c % 4.
  for (int c = 0; c < 8; ++c) EXPECT_EQ(topo.node_of_cpu(c), c % 4);
  for (int node = 0; node < 4; ++node)
    EXPECT_EQ(topo.node(node).cpus.size(), 2u);
}

TEST(Topology, SimulatedNodeNeverEmpty) {
  // More nodes than CPUs: every node still gets at least one virtual CPU.
  const Topology topo = Topology::simulated(8, 2);
  for (const auto& node : topo.nodes()) EXPECT_GE(node.cpus.size(), 1u);
}

TEST(Topology, NodeOfUnknownCpuIsMinusOne) {
  const Topology topo = Topology::simulated(2, 4);
  EXPECT_EQ(topo.node_of_cpu(-1), -1);
  EXPECT_EQ(topo.node_of_cpu(10000), -1);
}

TEST(Topology, DescribeMentionsNodeCount) {
  const Topology topo = Topology::simulated(3, 6);
  const std::string desc = topo.describe();
  EXPECT_NE(desc.find("3 node"), std::string::npos);
  EXPECT_NE(desc.find("simulated"), std::string::npos);
}

TEST(NumaAlloc, AllocZeroedAndWritable) {
  const std::size_t bytes = 1 << 20;
  void* p = alloc_on_node(bytes, 0);
  ASSERT_NE(p, nullptr);
  auto* c = static_cast<unsigned char*>(p);
  for (std::size_t i = 0; i < bytes; i += 4096) EXPECT_EQ(c[i], 0);
  std::memset(p, 0xab, bytes);
  EXPECT_EQ(c[bytes - 1], 0xab);
  free_on_node(p, bytes);
}

TEST(NumaAlloc, OutOfRangeNodeStillAllocates) {
  // Simulated node ids beyond the physical node count must not fail.
  void* p = alloc_on_node(4096, 17);
  ASSERT_NE(p, nullptr);
  free_on_node(p, 4096);
}

TEST(NumaAlloc, ZeroBytesReturnsNull) {
  EXPECT_EQ(alloc_on_node(0, 0), nullptr);
}

TEST(NodeBuffer, TypedAccessAndMove) {
  NodeBuffer<double> buf(100, 0);
  buf[7] = 3.5;
  NodeBuffer<double> moved(std::move(buf));
  EXPECT_EQ(moved[7], 3.5);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(ThreadBind, BindToValidNodeSucceeds) {
  const Topology topo = Topology::detect();
  std::thread t([&] {
    EXPECT_TRUE(bind_current_thread_to_node(topo, 0));
    unbind_current_thread(topo);
  });
  t.join();
}

TEST(ThreadBind, BindToInvalidNodeFails) {
  const Topology topo = Topology::detect();
  EXPECT_FALSE(bind_current_thread_to_node(topo, -1));
  EXPECT_FALSE(bind_current_thread_to_node(topo, topo.num_nodes()));
}

TEST(BlockRange, CoversAllRowsWithoutOverlap) {
  const index_t n = 1003;
  const int parts = 7;
  index_t covered = 0;
  index_t prev_end = 0;
  for (int p = 0; p < parts; ++p) {
    const RowRange r = block_range(n, parts, p);
    EXPECT_EQ(r.begin, prev_end);
    prev_end = r.end;
    covered += r.size();
  }
  EXPECT_EQ(prev_end, n);
  EXPECT_EQ(covered, n);
}

TEST(BlockRange, BalancedWithinOneRow) {
  const index_t n = 1000;
  const int parts = 3;
  for (int p = 0; p < parts; ++p) {
    const index_t size = block_range(n, parts, p).size();
    EXPECT_GE(size, n / parts);
    EXPECT_LE(size, n / parts + 1);
  }
}

TEST(Partitioner, ThreadOfRowInverseOfThreadRows) {
  const Topology topo = Topology::simulated(4, 8);
  const Partitioner parts(997, 8, topo);
  for (index_t r = 0; r < 997; ++r) {
    const int t = parts.thread_of_row(r);
    EXPECT_TRUE(parts.thread_rows(t).contains(r)) << "row " << r;
  }
}

TEST(Partitioner, ThreadsRoundRobinOverNodes) {
  const Topology topo = Topology::simulated(4, 8);
  const Partitioner parts(1000, 8, topo);
  for (int t = 0; t < 8; ++t) EXPECT_EQ(parts.node_of_thread(t), t % 4);
}

TEST(Partitioner, MoreThreadsThanRows) {
  const Topology topo = Topology::simulated(2, 4);
  const Partitioner parts(3, 8, topo);
  index_t covered = 0;
  for (int t = 0; t < 8; ++t) covered += parts.thread_rows(t).size();
  EXPECT_EQ(covered, 3u);
}

TEST(AccessCounter, PerThreadCountsAndTotals) {
  AccessCounter counter(4);
  counter.record(0, true);
  counter.record(0, true);
  counter.record(1, false);
  EXPECT_EQ(counter.thread_counts(0).local, 2u);
  EXPECT_EQ(counter.thread_counts(1).remote, 1u);
  const AccessCounts total = counter.total();
  EXPECT_EQ(total.local, 2u);
  EXPECT_EQ(total.remote, 1u);
  EXPECT_NEAR(total.remote_fraction(), 1.0 / 3.0, 1e-12);
  counter.reset();
  EXPECT_EQ(counter.total().total(), 0u);
}

TEST(RemotePenalty, DisabledByDefaultAndChargesWhenSet) {
  EXPECT_EQ(RemotePenalty::ns().load(), 0u);
  RemotePenalty::charge();  // no-op, must return immediately

  RemotePenalty::ns().store(200000);  // 200us
  const auto start = std::chrono::steady_clock::now();
  RemotePenalty::charge();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  RemotePenalty::ns().store(0);
  EXPECT_GE(us, 150);
}

}  // namespace
}  // namespace knor::numa
