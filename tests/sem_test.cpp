// Unit and integration tests for the SEM substrate: page file geometry,
// page cache eviction, I/O engine request merging and prefetch, row cache
// laziness, and knors end-to-end equivalence with knori.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "core/knori.hpp"
#include "data/generator.hpp"
#include "data/matrix_io.hpp"
#include "sem/io_engine.hpp"
#include "sem/page_cache.hpp"
#include "sem/page_file.hpp"
#include "sem/row_cache.hpp"
#include "sem/sem_kmeans.hpp"

namespace knor::sem {
namespace {

class SemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("knor_sem_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string make_matrix(const data::GeneratorSpec& spec,
                          const std::string& name = "m.kmat") {
    const std::string p = dir_ / name;
    data::write_generated(p, spec);
    return p;
  }
  std::filesystem::path dir_;
};

TEST_F(SemTest, PageFileGeometry) {
  data::GeneratorSpec spec;
  spec.n = 100;
  spec.d = 8;  // 64B rows
  const std::string p = make_matrix(spec);
  PageFile file(p, 256);
  EXPECT_EQ(file.n(), 100u);
  EXPECT_EQ(file.d(), 8u);
  EXPECT_EQ(file.row_bytes(), 64u);
  // Header is 64B; row 0 at byte 64 -> page 0; row 3 at 64+192=256 -> page 1.
  EXPECT_EQ(file.first_page_of_row(0), 0u);
  EXPECT_EQ(file.first_page_of_row(3), 1u);
  EXPECT_EQ(file.last_page_of_row(3), 1u);
  const std::uint64_t file_bytes = 64 + 100 * 64;
  EXPECT_EQ(file.num_pages(), (file_bytes + 255) / 256);
}

TEST_F(SemTest, PageFileReadMatchesData) {
  data::GeneratorSpec spec;
  spec.n = 64;
  spec.d = 4;
  const std::string p = make_matrix(spec);
  const DenseMatrix m = data::generate(spec);
  PageFile file(p, 4096);
  std::vector<unsigned char> buf(4096);
  file.read_pages(0, 1, buf.data());
  // Row 0 lives at offset 64 within page 0.
  value_t row0[4];
  std::memcpy(row0, buf.data() + 64, sizeof(row0));
  for (int j = 0; j < 4; ++j) EXPECT_EQ(row0[j], m.at(0, j));
  EXPECT_GT(file.bytes_read(), 0u);
  EXPECT_EQ(file.read_requests(), 1u);
}

TEST_F(SemTest, PageFileEofZeroPadded) {
  data::GeneratorSpec spec;
  spec.n = 2;
  spec.d = 2;
  const std::string p = make_matrix(spec);
  PageFile file(p, 4096);
  std::vector<unsigned char> buf(2 * 4096, 0xff);
  file.read_pages(0, 2, buf.data());  // file is only 96 bytes
  EXPECT_EQ(buf[200], 0);             // past EOF must be zeroed
}

TEST_F(SemTest, PageFileRejectsGarbage) {
  const std::string p = dir_ / "bad.kmat";
  std::FILE* f = std::fopen(p.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_THROW(PageFile(p, 4096), std::runtime_error);
}

TEST(PageCacheTest, InsertLookupRoundTrip) {
  PageCache cache(64 * 1024, 1024, 2);
  std::vector<unsigned char> page(1024, 7);
  cache.insert(42, page.data());
  std::vector<unsigned char> out(1024);
  EXPECT_TRUE(cache.lookup(42, out.data()));
  EXPECT_EQ(out[500], 7);
  EXPECT_FALSE(cache.lookup(43, out.data()));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCacheTest, EvictsWhenFullButKeepsCapacityPages) {
  PageCache cache(8 * 1024, 1024, 1);  // 8 slots
  std::vector<unsigned char> page(1024);
  for (std::uint64_t id = 0; id < 32; ++id) {
    page[0] = static_cast<unsigned char>(id);
    cache.insert(id, page.data());
  }
  int resident = 0;
  for (std::uint64_t id = 0; id < 32; ++id)
    if (cache.contains(id)) ++resident;
  EXPECT_EQ(resident, 8);
  // Recently inserted pages survive.
  EXPECT_TRUE(cache.contains(31));
}

TEST(PageCacheTest, ClockSecondChanceEvictionOrder) {
  PageCache cache(4 * 1024, 1024, 1);  // 4 slots
  std::vector<unsigned char> page(1024);
  for (std::uint64_t id = 0; id < 4; ++id) cache.insert(id, page.data());
  // All four pages are referenced; the first insertion beyond capacity
  // sweeps the full clock (granting every page its second chance, clearing
  // the bits) and evicts slot 0; the next insertion evicts slot 1.
  cache.insert(100, page.data());
  cache.insert(101, page.data());
  EXPECT_TRUE(cache.contains(100));
  EXPECT_TRUE(cache.contains(101));
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(PageCacheTest, ClockSparesReferencedPageDuringSweep) {
  PageCache cache(4 * 1024, 1024, 1);  // 4 slots
  std::vector<unsigned char> page(1024);
  std::vector<unsigned char> out(1024);
  for (std::uint64_t id = 0; id < 4; ++id) cache.insert(id, page.data());
  cache.insert(100, page.data());  // full sweep, evicts slot 0
  // Page 1 sits in slot 1 with its bit cleared; touching it re-arms the bit
  // so the next insertion skips it and evicts page 2 instead.
  EXPECT_TRUE(cache.lookup(1, out.data()));
  cache.insert(101, page.data());
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(PageCacheTest, ClearEmptiesEverything) {
  PageCache cache(8 * 1024, 1024, 2);
  std::vector<unsigned char> page(1024);
  cache.insert(1, page.data());
  cache.clear();
  EXPECT_FALSE(cache.contains(1));
}

TEST_F(SemTest, IoEngineFetchesCorrectRows) {
  data::GeneratorSpec spec;
  spec.n = 500;
  spec.d = 6;
  const std::string p = make_matrix(spec);
  const DenseMatrix m = data::generate(spec);
  PageFile file(p, 512);
  PageCache cache(16 * 1024, 512, 2);
  IoEngine engine(file, cache, 1);
  std::vector<index_t> rows = {3, 77, 210, 211, 499};
  DenseMatrix out(5, 6);
  engine.fetch_rows(rows, out.data());
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (index_t j = 0; j < 6; ++j)
      EXPECT_EQ(out.at(static_cast<index_t>(i), j), m.at(rows[i], j));
  EXPECT_EQ(engine.bytes_requested(), 5u * 6 * sizeof(value_t));
}

TEST_F(SemTest, IoEngineMergesAdjacentPages) {
  data::GeneratorSpec spec;
  spec.n = 1000;
  spec.d = 8;  // 64B rows, 64 rows/4KB page
  const std::string p = make_matrix(spec);
  PageFile file(p, 4096);
  PageCache cache(1 << 20, 4096, 2);
  IoEngine engine(file, cache, 1);
  // 200 consecutive rows span ~4 pages -> a single merged extent read.
  std::vector<index_t> rows(200);
  std::iota(rows.begin(), rows.end(), 100);
  DenseMatrix out(200, 8);
  engine.fetch_rows(rows, out.data());
  EXPECT_EQ(file.read_requests(), 1u);
}

TEST_F(SemTest, IoEngineServesRepeatsFromPageCache) {
  data::GeneratorSpec spec;
  spec.n = 300;
  spec.d = 8;
  const std::string p = make_matrix(spec);
  PageFile file(p, 4096);
  PageCache cache(1 << 20, 4096, 2);
  IoEngine engine(file, cache, 1);
  std::vector<index_t> rows = {10, 20, 30};
  DenseMatrix out(3, 8);
  engine.fetch_rows(rows, out.data());
  const std::uint64_t reads_after_first = file.bytes_read();
  engine.fetch_rows(rows, out.data());
  EXPECT_EQ(file.bytes_read(), reads_after_first);  // all cache hits
}

TEST_F(SemTest, IoEnginePrefetchStagesPages) {
  data::GeneratorSpec spec;
  spec.n = 2000;
  spec.d = 8;
  const std::string p = make_matrix(spec);
  const DenseMatrix m = data::generate(spec);
  PageFile file(p, 4096);
  PageCache cache(1 << 20, 4096, 2);
  IoEngine engine(file, cache, 2);
  std::vector<index_t> rows;
  for (index_t r = 0; r < 2000; r += 10) rows.push_back(r);
  auto ticket = engine.prefetch(rows);
  ticket.wait();
  const std::uint64_t staged = file.bytes_read();
  EXPECT_GT(staged, 0u);
  DenseMatrix out(static_cast<index_t>(rows.size()), 8);
  engine.fetch_rows(rows, out.data());
  EXPECT_EQ(file.bytes_read(), staged);  // fetch was served by the cache
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(out.at(static_cast<index_t>(i), 0), m.at(rows[i], 0));
}

TEST(RowCacheTest, LazyRefreshSchedule) {
  RowCache rc(1 << 16, 8, 2);
  rc.set_update_interval(5);
  std::vector<int> refresh_iters;
  for (int it = 1; it <= 45; ++it) {
    if (rc.begin_iteration(it) == RowCache::Mode::kRefresh) {
      refresh_iters.push_back(it);
      rc.publish();
    }
  }
  EXPECT_EQ(refresh_iters, (std::vector<int>{5, 10, 20, 40}));
}

TEST(RowCacheTest, OfferOnlyDuringRefreshAndLookupAfterPublish) {
  RowCache rc(1 << 16, 4, 1);
  rc.set_update_interval(1);
  const value_t row[4] = {1, 2, 3, 4};

  // Static iteration: offers are ignored.
  rc.set_update_interval(5);
  EXPECT_EQ(rc.begin_iteration(1), RowCache::Mode::kStatic);
  rc.offer(0, 7, row);
  rc.publish();
  EXPECT_EQ(rc.lookup(0, 7), nullptr);

  // Refresh iteration: offer then publish makes the row visible.
  rc.set_update_interval(2);
  EXPECT_EQ(rc.begin_iteration(2), RowCache::Mode::kRefresh);
  rc.offer(0, 7, row);
  EXPECT_EQ(rc.lookup(0, 7), nullptr);  // not yet published
  rc.publish();
  const value_t* got = rc.lookup(0, 7);
  ASSERT_NE(got, nullptr);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(got[j], row[j]);
  EXPECT_EQ(rc.resident_rows(), 1u);
}

TEST(RowCacheTest, RefreshFlushesPreviousContents) {
  RowCache rc(1 << 16, 2, 1);
  rc.set_update_interval(1);
  const value_t a[2] = {1, 1};
  const value_t b[2] = {2, 2};
  rc.begin_iteration(1);
  rc.offer(0, 100, a);
  rc.publish();
  ASSERT_NE(rc.lookup(0, 100), nullptr);
  rc.begin_iteration(2);
  rc.offer(0, 200, b);
  rc.publish();
  EXPECT_EQ(rc.lookup(0, 100), nullptr);  // flushed
  EXPECT_NE(rc.lookup(0, 200), nullptr);
}

TEST(RowCacheTest, BudgetCapsResidency) {
  RowCache rc(4 * 8 * sizeof(value_t), 8, 1);  // 4 rows
  rc.set_update_interval(1);
  const value_t row[8] = {};
  rc.begin_iteration(1);
  for (index_t r = 0; r < 100; ++r) rc.offer(0, r, row);
  rc.publish();
  EXPECT_EQ(rc.resident_rows(), 4u);
}

// --- knors end-to-end -------------------------------------------------------

class KnorsConfig
    : public SemTest,
      public ::testing::WithParamInterface<std::tuple<bool, bool, int>> {};

TEST_P(KnorsConfig, MatchesKnoriClustering) {
  const auto [prune, row_cache, threads] = GetParam();
  data::GeneratorSpec spec;
  spec.n = 6000;
  spec.d = 12;
  spec.true_clusters = 8;
  spec.seed = 17;
  const std::string path = make_matrix(spec);
  const DenseMatrix m = data::generate(spec);

  Options opts;
  opts.k = 8;
  opts.threads = threads;
  opts.max_iters = 40;
  opts.seed = 5;
  opts.prune = prune;

  const Result ref = kmeans(m.const_view(), opts);

  SemOptions sopts;
  sopts.page_size = 512;
  sopts.page_cache_bytes = 64 << 10;
  sopts.row_cache_bytes = 128 << 10;
  sopts.row_cache_enabled = row_cache;
  sopts.io_batch_rows = 256;
  SemStats stats;
  const Result res = kmeans(path, opts, sopts, &stats);

  EXPECT_EQ(res.iters, ref.iters);
  EXPECT_EQ(res.converged, ref.converged);
  const double rel = std::abs(res.energy - ref.energy) / ref.energy;
  EXPECT_LT(rel, 1e-9);
  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < ref.assignments.size(); ++i)
    if (res.assignments[i] != ref.assignments[i]) ++mismatched;
  EXPECT_EQ(mismatched, 0u);
  EXPECT_EQ(stats.per_iter.size(), res.iters);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KnorsConfig,
    ::testing::Combine(::testing::Bool(),      // prune
                       ::testing::Bool(),      // row cache
                       ::testing::Values(1, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "mti" : "nomti") + "_" +
             (std::get<1>(info.param) ? "rc" : "norc") + "_t" +
             std::to_string(std::get<2>(info.param));
    });

TEST_F(SemTest, Clause1SkipsReduceRequestedBytes) {
  data::GeneratorSpec spec;
  spec.n = 8000;
  spec.d = 16;
  spec.true_clusters = 6;
  const std::string path = make_matrix(spec);

  Options opts;
  opts.k = 6;
  opts.threads = 2;
  opts.max_iters = 30;

  SemOptions sopts;
  sopts.row_cache_enabled = false;  // isolate the pruning effect
  SemStats pruned_stats;
  opts.prune = true;
  kmeans(path, opts, sopts, &pruned_stats);

  SemStats full_stats;
  opts.prune = false;
  kmeans(path, opts, sopts, &full_stats);

  // knors- requests the full matrix every iteration; knors must request
  // strictly less after the first iteration.
  EXPECT_LT(pruned_stats.total_requested(), full_stats.total_requested());
  const auto row_bytes = 16 * sizeof(value_t);
  for (const auto& iter : full_stats.per_iter)
    EXPECT_EQ(iter.bytes_requested, 8000u * row_bytes);
}

TEST_F(SemTest, RowCacheReducesBytesRead) {
  data::GeneratorSpec spec;
  spec.n = 8000;
  spec.d = 16;
  spec.true_clusters = 6;
  const std::string path = make_matrix(spec);

  Options opts;
  opts.k = 6;
  opts.threads = 2;
  opts.max_iters = 40;

  SemOptions with_rc;
  with_rc.page_cache_bytes = 32 << 10;  // tiny page cache isolates the RC
  with_rc.row_cache_bytes = 1 << 20;
  SemOptions without_rc = with_rc;
  without_rc.row_cache_enabled = false;

  SemStats rc_stats, norc_stats;
  kmeans(path, opts, with_rc, &rc_stats);
  kmeans(path, opts, without_rc, &norc_stats);

  EXPECT_LT(rc_stats.total_read(), norc_stats.total_read());
  std::uint64_t hits = 0;
  for (const auto& iter : rc_stats.per_iter) hits += iter.row_cache_hits;
  EXPECT_GT(hits, 0u);
}

TEST_F(SemTest, ActiveRowsShrinkOverIterations) {
  data::GeneratorSpec spec;
  spec.n = 6000;
  spec.d = 8;
  spec.true_clusters = 5;
  const std::string path = make_matrix(spec);
  Options opts;
  opts.k = 5;
  opts.threads = 2;
  opts.max_iters = 30;
  SemOptions sopts;
  SemStats stats;
  kmeans(path, opts, sopts, &stats);
  ASSERT_GE(stats.per_iter.size(), 3u);
  EXPECT_EQ(stats.per_iter[0].active_rows, 6000u);  // first iter: everything
  // Convergence tail must be far below the first iteration.
  EXPECT_LT(stats.per_iter.back().active_rows, 6000u);
}

TEST_F(SemTest, UnsupportedInitThrows) {
  data::GeneratorSpec spec;
  spec.n = 100;
  spec.d = 4;
  const std::string path = make_matrix(spec);
  Options opts;
  opts.k = 3;
  opts.init = Init::kKmeansPP;
  EXPECT_THROW(kmeans(path, opts, SemOptions{}), std::invalid_argument);
}

TEST_F(SemTest, HostileMatrixHeaderRejected) {
  // A .kmat whose header declares exabytes of rows over a 1KB file must be
  // rejected by name before the SEM engine sizes any per-row state from it
  // (fuzz corpus: tests/fuzz/corpus/matrix_io).
  data::GeneratorSpec spec;
  spec.n = 16;
  spec.d = 4;
  const std::string path = make_matrix(spec, "hostile.kmat");
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const std::uint64_t huge = 1ull << 61;
    ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);  // n field
    ASSERT_EQ(std::fwrite(&huge, sizeof(huge), 1, f), 1u);
    std::fclose(f);
  }
  Options opts;
  opts.k = 2;
  try {
    kmeans(path, opts, SemOptions{});
    FAIL() << "hostile header was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hostile size field"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(SemTest, MissingFileThrows) {
  Options opts;
  opts.k = 2;
  EXPECT_THROW(kmeans(dir_ / "missing.kmat", opts, SemOptions{}),
               std::runtime_error);
}

TEST_F(SemTest, SsdCostModelSlowsReads) {
  data::GeneratorSpec spec;
  spec.n = 2000;
  spec.d = 8;
  const std::string path = make_matrix(spec);
  PageFile plain(path, 4096);
  SsdCostModel cost;
  cost.latency_us = 300;
  PageFile slow(path, 4096, cost);
  std::vector<unsigned char> buf(4096);
  const auto t0 = std::chrono::steady_clock::now();
  plain.read_pages(0, 1, buf.data());
  const auto t1 = std::chrono::steady_clock::now();
  slow.read_pages(0, 1, buf.data());
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_GT((t2 - t1).count(), (t1 - t0).count());
}

}  // namespace
}  // namespace knor::sem
