// Serving front-end property tests (DESIGN.md §11): the determinism
// contract of coalesced mega-batches.
//  * Batched assignment equals the per-row blocked kernel BITWISE for
//    every available ISA — coalescing is a scheduling decision, never a
//    numeric one.
//  * The full response set is bitwise identical across client counts
//    {1,4,16}, worker counts {1,4} and batching on/off — the grid the
//    ISSUE pins.
//  * Top-m equals the serial sorted-distance oracle including tie order
//    (duplicate centroids resolve toward the lower index, matching
//    nearest_blocked), and topm[0] always equals the assignment.
// The TSan CI job runs this suite too: many client threads against one
// dispatcher must be race-clean.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "data/generator.hpp"
#include "serve/front_end.hpp"
#include "serve/loadgen.hpp"

namespace knor::serve {
namespace {

data::GeneratorSpec make_spec(index_t n, index_t d, int clusters) {
  data::GeneratorSpec spec;
  spec.n = n;
  spec.d = d;
  spec.true_clusters = clusters;
  spec.separation = 10.0;
  spec.seed = 20170711;
  return spec;
}

Options base_opts(int k, int threads) {
  Options opts;
  opts.k = k;
  opts.threads = threads;
  opts.seed = 99;
  opts.numa_nodes = 2;  // simulated topology: stable across hosts
  return opts;
}

/// The workload is a pure function of the GLOBAL request index: request i
/// is a contiguous pool slice of 1..7 rows, and every (i % 3 == 2) request
/// asks top-m. Client c of C submits requests {i : i mod C == c}, so the
/// request SET is identical across client counts — the invariant that
/// makes cross-config bitwise comparison meaningful.
struct Workload {
  const DenseMatrix& pool;
  int m;

  index_t len(int i) const { return 1 + static_cast<index_t>(i % 7); }
  ConstMatrixView view(int i) const {
    const index_t start =
        (static_cast<index_t>(i) * 13) % (pool.rows() - 8);
    return pool.const_view().sub_rows(start, len(i));
  }
  bool topm(int i) const { return i % 3 == 2; }
};

/// Drive `fe` with C client threads and return responses indexed by global
/// request id.
std::vector<Response> run_clients(QueryFrontEnd& fe, const Workload& w,
                                  int requests, int clients) {
  std::vector<Response> out(static_cast<std::size_t>(requests));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Session session(fe);
      for (int i = c; i < requests; i += clients) {
        std::future<Response> f =
            w.topm(i) ? session.submit_topm(w.view(i), w.m)
                      : session.submit_assign(w.view(i));
        out[static_cast<std::size_t>(i)] = f.get();
      }
    });
  }
  for (auto& t : threads) t.join();
  return out;
}

void expect_bitwise_equal(const std::vector<Response>& a,
                          const std::vector<Response>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].shed, b[i].shed) << what << " req " << i;
    EXPECT_EQ(a[i].assign, b[i].assign) << what << " req " << i;
    ASSERT_EQ(a[i].dist_sq.size(), b[i].dist_sq.size()) << what;
    EXPECT_EQ(0, std::memcmp(a[i].dist_sq.data(), b[i].dist_sq.data(),
                             a[i].dist_sq.size() * sizeof(value_t)))
        << what << " req " << i;
    ASSERT_EQ(a[i].topm.size(), b[i].topm.size()) << what;
    for (std::size_t j = 0; j < a[i].topm.size(); ++j) {
      EXPECT_EQ(a[i].topm[j].cluster, b[i].topm[j].cluster)
          << what << " req " << i << " entry " << j;
      EXPECT_EQ(a[i].topm[j].dist_sq, b[i].topm[j].dist_sq)
          << what << " req " << i << " entry " << j;
    }
  }
}

TEST(ServeTest, BatchedAssignMatchesBlockedKernelPerIsa) {
  const DenseMatrix pool = data::generate(make_spec(600, 16, 8));
  const DenseMatrix centroids =
      init_centroids(pool.const_view(), base_opts(8, 1));
  const Workload w{pool, 3};
  const int requests = 45;

  for (const kernels::Isa isa : kernels::available_isas()) {
    Options opts = base_opts(8, 4);
    opts.simd = isa;
    FrontEndOptions fopts;
    fopts.batch_window = 64;  // force real coalescing
    QueryFrontEnd fe(centroids, opts, fopts);
    ASSERT_EQ(fe.ops().isa, isa);
    const std::vector<Response> got = run_clients(fe, w, requests, 4);

    // Per-row serial oracle against the SAME resolved kernel table.
    kernels::CentroidPack pack;
    pack.pack(centroids);
    const kernels::Ops& K = fe.ops();
    for (int i = 0; i < requests; ++i) {
      const ConstMatrixView v = w.view(i);
      const Response& r = got[static_cast<std::size_t>(i)];
      ASSERT_FALSE(r.shed);
      ASSERT_EQ(r.assign.size(), static_cast<std::size_t>(v.rows()));
      for (index_t row = 0; row < v.rows(); ++row) {
        value_t sq = 0;
        const cluster_t want = K.nearest_blocked(v.row(row), pack, &sq);
        EXPECT_EQ(r.assign[static_cast<std::size_t>(row)], want)
            << kernels::to_string(isa) << " req " << i << " row " << row;
        EXPECT_EQ(r.dist_sq[static_cast<std::size_t>(row)], sq)  // bitwise
            << kernels::to_string(isa) << " req " << i << " row " << row;
      }
    }
  }
}

TEST(ServeTest, ResponsesBitwiseIdenticalAcrossClientWorkerWindowGrid) {
  const DenseMatrix pool = data::generate(make_spec(500, 12, 6));
  const DenseMatrix centroids =
      init_centroids(pool.const_view(), base_opts(6, 1));
  const Workload w{pool, 2};
  const int requests = 48;

  // Reference: one client, one worker, batching off.
  std::vector<Response> ref;
  {
    FrontEndOptions fopts;
    fopts.batch_window = 1;
    QueryFrontEnd fe(centroids, base_opts(6, 1), fopts);
    ref = run_clients(fe, w, requests, 1);
  }

  for (const int clients : {1, 4, 16}) {
    for (const int workers : {1, 4}) {
      for (const index_t window : {index_t{1}, index_t{100000}}) {
        FrontEndOptions fopts;
        fopts.batch_window = window;
        QueryFrontEnd fe(centroids, base_opts(6, workers), fopts);
        const std::vector<Response> got =
            run_clients(fe, w, requests, clients);
        expect_bitwise_equal(got, ref,
                             "clients=" + std::to_string(clients) +
                                 " workers=" + std::to_string(workers) +
                                 " window=" + std::to_string(window));
        fe.close();
        const FrontEndStats st = fe.stats();
        EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(requests));
        EXPECT_EQ(st.completed + st.shed, st.submitted);
        EXPECT_EQ(st.shed, 0u);  // kBlock policy: lossless
      }
    }
  }
}

TEST(ServeTest, TopMMatchesSerialSortedOracleIncludingTieOrder) {
  const DenseMatrix pool = data::generate(make_spec(300, 8, 5));
  DenseMatrix centroids = init_centroids(pool.const_view(), base_opts(5, 1));
  // Duplicate centroids: 3 is a bitwise copy of 1, so every query is
  // equidistant from both and the (dist_sq, index) order is observable.
  std::memcpy(centroids.row(3), centroids.row(1),
              static_cast<std::size_t>(centroids.cols()) * sizeof(value_t));
  const int k = 5;

  QueryFrontEnd fe(centroids, base_opts(k, 2), FrontEndOptions{});
  kernels::CentroidPack pack;
  pack.pack(centroids);
  const kernels::Ops& K = fe.ops();
  const index_t d = centroids.cols();

  Session session(fe);
  for (int i = 0; i < 20; ++i) {
    const ConstMatrixView v = pool.const_view().sub_rows(i * 3, 2);
    const Response r = session.submit_topm(v, k).get();  // full ranking
    ASSERT_FALSE(r.shed);
    for (index_t row = 0; row < v.rows(); ++row) {
      // Serial oracle: all k distances, sorted by (dist_sq, index).
      std::vector<TopEntry> want(static_cast<std::size_t>(k));
      for (int c = 0; c < k; ++c)
        want[static_cast<std::size_t>(c)] = {static_cast<cluster_t>(c),
                                             K.dist_sq(v.row(row),
                                                       pack.row(c), d)};
      std::sort(want.begin(), want.end(),
                [](const TopEntry& a, const TopEntry& b) {
                  return a.dist_sq < b.dist_sq ||
                         (a.dist_sq == b.dist_sq && a.cluster < b.cluster);
                });
      for (int j = 0; j < k; ++j) {
        const TopEntry got =
            r.topm[static_cast<std::size_t>(row) * k +
                   static_cast<std::size_t>(j)];
        EXPECT_EQ(got.cluster, want[static_cast<std::size_t>(j)].cluster)
            << "req " << i << " row " << row << " rank " << j;
        EXPECT_EQ(got.dist_sq, want[static_cast<std::size_t>(j)].dist_sq)
            << "req " << i << " row " << row << " rank " << j;
      }
      // The duplicate pair must appear adjacent, lower index first.
      // topm[0] is the assignment (and ties match nearest_blocked).
      value_t sq = 0;
      const cluster_t nearest = K.nearest_blocked(v.row(row), pack, &sq);
      EXPECT_EQ(r.topm[static_cast<std::size_t>(row) * k].cluster, nearest);
      EXPECT_EQ(r.assign[static_cast<std::size_t>(row)], nearest);
      EXPECT_EQ(r.dist_sq[static_cast<std::size_t>(row)], sq);
    }
  }
}

TEST(ServeTest, AssignNowMatchesSubmittedPath) {
  const DenseMatrix pool = data::generate(make_spec(200, 10, 4));
  const DenseMatrix centroids =
      init_centroids(pool.const_view(), base_opts(4, 1));
  QueryFrontEnd fe(centroids, base_opts(4, 2), FrontEndOptions{});
  const ConstMatrixView v = pool.const_view().sub_rows(17, 9);
  const Response direct = fe.assign_now(v);
  const Response queued = fe.submit_assign(v).get();
  EXPECT_EQ(direct.assign, queued.assign);
  EXPECT_EQ(0, std::memcmp(direct.dist_sq.data(), queued.dist_sq.data(),
                           direct.dist_sq.size() * sizeof(value_t)));
}

TEST(ServeTest, PipelinedClosedLoopCompletesEveryRequestLossless) {
  const DenseMatrix pool = data::generate(make_spec(300, 8, 4));
  const DenseMatrix centroids =
      init_centroids(pool.const_view(), base_opts(4, 1));

  LoadOptions base;
  base.clients = 4;
  base.requests = 96;
  base.rows_per_request = 3;
  base.topm_every = 4;
  base.m = 2;
  for (const int pipeline : {1, 4, 16}) {
    QueryFrontEnd fe(centroids, base_opts(4, 2), FrontEndOptions{});
    LoadOptions lopts = base;
    lopts.pipeline = pipeline;
    const LoadStats st = run_closed_loop(fe, pool, lopts);
    EXPECT_EQ(st.requests, base.requests) << "pipeline " << pipeline;
    EXPECT_EQ(st.completed, base.requests) << "pipeline " << pipeline;
    EXPECT_EQ(st.shed, 0u) << "pipeline " << pipeline;
    EXPECT_EQ(st.latencies_s.size(), base.requests) << "pipeline " << pipeline;
    fe.close();
    const FrontEndStats fs = fe.stats();
    EXPECT_EQ(fs.submitted, base.requests) << "pipeline " << pipeline;
    EXPECT_EQ(fs.completed, base.requests) << "pipeline " << pipeline;
  }

  LoadOptions bad = base;
  bad.pipeline = 0;
  QueryFrontEnd fe(centroids, base_opts(4, 1), FrontEndOptions{});
  EXPECT_THROW(run_closed_loop(fe, pool, bad), std::invalid_argument);
  fe.close();
}

TEST(ServeTest, ValidationAndShutdownSemantics) {
  const DenseMatrix pool = data::generate(make_spec(100, 6, 4));
  const DenseMatrix centroids =
      init_centroids(pool.const_view(), base_opts(4, 1));
  QueryFrontEnd fe(centroids, base_opts(4, 1), FrontEndOptions{});

  EXPECT_THROW(fe.submit_assign(ConstMatrixView(nullptr, 0, 6)),
               std::invalid_argument);
  DenseMatrix wrong_d(3, 5);
  EXPECT_THROW(fe.submit_assign(wrong_d.const_view()), std::invalid_argument);
  EXPECT_THROW(fe.submit_topm(pool.const_view().sub_rows(0, 2), 0),
               std::invalid_argument);
  EXPECT_THROW(fe.submit_topm(pool.const_view().sub_rows(0, 2), 5),
               std::invalid_argument);  // m > k
  EXPECT_THROW(
      QueryFrontEnd(DenseMatrix(), base_opts(4, 1), FrontEndOptions{}),
      std::invalid_argument);
  FrontEndOptions bad;
  bad.batch_window = 0;
  EXPECT_THROW(QueryFrontEnd(centroids, base_opts(4, 1), bad),
               std::invalid_argument);

  // After close(): submissions shed, close is idempotent, stats reconcile.
  const Response ok = fe.submit_assign(pool.const_view().sub_rows(0, 3)).get();
  EXPECT_FALSE(ok.shed);
  fe.close();
  fe.close();
  const Response rejected =
      fe.submit_assign(pool.const_view().sub_rows(0, 3)).get();
  EXPECT_TRUE(rejected.shed);
  EXPECT_TRUE(fe.assign_now(pool.const_view().sub_rows(0, 3)).shed);
  const FrontEndStats st = fe.stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.shed, 2u);
}

}  // namespace
}  // namespace knor::serve
