// Property sweep: the SEM engine's I/O geometry — page size, I/O batch
// size, cache budgets, merge gap, thread count — must NEVER change the
// clustering. Any page-boundary, cache-coherence or batching bug shows up
// here as an assignment or energy mismatch against the in-memory reference.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <tuple>

#include "core/knori.hpp"
#include "data/generator.hpp"
#include "data/matrix_io.hpp"
#include "sem/sem_kmeans.hpp"

namespace knor::sem {
namespace {

struct Fixture {
  std::filesystem::path dir;
  std::string matrix_path;
  DenseMatrix matrix;
  Result reference;

  Fixture() {
    dir = std::filesystem::temp_directory_path() /
          ("knor_sem_prop_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    data::GeneratorSpec spec;
    spec.n = 4096;  // not a multiple of most page/batch sizes below
    spec.d = 7;     // 56B rows straddle every page size
    spec.true_clusters = 6;
    spec.seed = 99;
    matrix_path = dir / "m.kmat";
    data::write_generated(matrix_path, spec);
    matrix = data::read_matrix(matrix_path);
    Options opts = base_options();
    reference = kmeans(matrix.const_view(), opts);
  }
  ~Fixture() { std::filesystem::remove_all(dir); }

  static Options base_options() {
    Options opts;
    opts.k = 6;
    opts.threads = 3;
    opts.max_iters = 25;
    opts.seed = 5;
    return opts;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

using GeomParam = std::tuple<std::size_t /*page*/, index_t /*batch*/,
                             std::size_t /*page cache*/, int /*threads*/>;

class SemGeometry : public ::testing::TestWithParam<GeomParam> {};

TEST_P(SemGeometry, ClusteringInvariantUnderIoGeometry) {
  const auto [page, batch, page_cache, threads] = GetParam();
  Fixture& f = fixture();

  Options opts = Fixture::base_options();
  opts.threads = threads;
  SemOptions sopts;
  sopts.page_size = page;
  sopts.io_batch_rows = batch;
  sopts.page_cache_bytes = page_cache;
  sopts.row_cache_bytes = 16 << 10;

  const Result res = kmeans(f.matrix_path, opts, sopts);
  ASSERT_EQ(res.iters, f.reference.iters);
  const double rel = std::abs(res.energy - f.reference.energy) /
                     std::max(1e-30, f.reference.energy);
  EXPECT_LT(rel, 1e-9);
  for (std::size_t i = 0; i < f.reference.assignments.size(); ++i)
    ASSERT_EQ(res.assignments[i], f.reference.assignments[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, SemGeometry,
    ::testing::Values(
        // Page smaller than a row: rows straddle several pages.
        GeomParam{32, 64, 8 << 10, 2},
        // Page not a multiple of the row size.
        GeomParam{100, 128, 8 << 10, 1},
        // Tiny page cache: constant eviction + re-read.
        GeomParam{512, 256, 2 << 10, 3},
        // Batch of 1 row: maximal prefetch/fetch alternation.
        GeomParam{4096, 1, 64 << 10, 2},
        // Batch larger than any partition.
        GeomParam{4096, 100000, 64 << 10, 3},
        // Large pages: every read overshoots heavily.
        GeomParam{32768, 512, 256 << 10, 4},
        // Default-ish configuration.
        GeomParam{4096, 2048, 64 << 10, 3}),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) + "_t" +
             std::to_string(std::get<3>(info.param));
    });

class SemMergeGap : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SemMergeGap, RequestMergingNeverChangesData) {
  Fixture& f = fixture();
  Options opts = Fixture::base_options();
  SemOptions sopts;
  sopts.page_size = 256;
  sopts.merge_gap_pages = GetParam();
  const Result res = kmeans(f.matrix_path, opts, sopts);
  EXPECT_EQ(res.iters, f.reference.iters);
  for (std::size_t i = 0; i < f.reference.assignments.size(); ++i)
    ASSERT_EQ(res.assignments[i], f.reference.assignments[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Gaps, SemMergeGap,
                         ::testing::Values(0u, 1u, 4u, 64u),
                         [](const auto& info) {
                           return "gap" + std::to_string(info.param);
                         });

TEST(SemGeometryEdge, RowCacheSmallerThanOneRowPerPartition) {
  Fixture& f = fixture();
  Options opts = Fixture::base_options();
  SemOptions sopts;
  sopts.row_cache_bytes = 8;  // less than a single 56B row
  const Result res = kmeans(f.matrix_path, opts, sopts);
  EXPECT_EQ(res.iters, f.reference.iters);
}

TEST(SemGeometryEdge, SingleRowDataset) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path =
      dir / ("knor_single_" + std::to_string(::getpid()) + ".kmat");
  data::GeneratorSpec spec;
  spec.n = 1;
  spec.d = 5;
  data::write_generated(path, spec);
  Options opts;
  opts.k = 1;
  opts.threads = 2;
  opts.max_iters = 3;
  const Result res = kmeans(path, opts, SemOptions{});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.cluster_sizes[0], 1u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace knor::sem
