// Scheduler stress: an oversubscribed pool (2x hardware threads), a heavily
// skewed task-size distribution (the first eighth of the chunk grid costs
// ~32x), and forced cross-node steals on a simulated 4-node topology.
// Asserts the work-stealing invariants the engines rely on:
//   * no deadlock — the suite completes (a hang fails CI),
//   * every chunk runs exactly once, covering every item exactly once,
//   * the chunk-ordered reduction is bit-identical across 5 repeated runs,
//     across thread counts {1, 2, 7, 16}, and across scheduling policies,
//   * cross-node steals actually happen under skew (numa-aware policy).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "numa/partitioner.hpp"
#include "sched/scheduler.hpp"

namespace knor::sched {
namespace {

constexpr index_t kItems = 200000;
constexpr index_t kTaskSize = 512;

/// Deterministic per-item value; the skewed weight makes chunks in the
/// front eighth of the grid ~32x more expensive (they all land on the
/// low-numbered threads' home nodes, so late nodes must steal).
double item_value(index_t i) {
  const auto h = static_cast<double>((i * 2654435761ULL) % 1000003ULL);
  return h * 1e-6;
}

struct RunResult {
  std::uint64_t sum_bits = 0;   ///< chunk-ordered FP reduction, raw bits
  StealStats steals;
  bool covered = false;         ///< every item exactly once
};

RunResult stress_run(int threads, SchedPolicy policy) {
  const auto topo = numa::Topology::simulated(4, 8);
  const numa::Partitioner parts(kItems, threads, topo);
  Scheduler sched(threads, topo, /*bind=*/true, policy);

  const auto chunks = static_cast<std::size_t>(
      Scheduler::num_chunks(kItems, kTaskSize));
  std::vector<double> chunk_sum(chunks, 0.0);
  std::vector<std::atomic<int>> chunk_runs(chunks);
  std::atomic<std::uint64_t> items_seen{0};

  sched.begin_chunks(kItems, kTaskSize, &parts);
  sched.run([&](int tid) {
    Task task;
    while (sched.next_chunk(tid, task)) {
      ++chunk_runs[task.chunk];
      items_seen.fetch_add(task.size(), std::memory_order_relaxed);
      const int weight = task.chunk < chunks / 8 ? 32 : 1;
      double s = 0.0;
      for (index_t i = task.begin; i < task.end; ++i) {
        const double x = item_value(i);
        for (int w = 0; w < weight; ++w)
          s += std::sqrt(x + static_cast<double>(w));
      }
      chunk_sum[task.chunk] = s;
    }
  });

  RunResult out;
  // Chunk-ordered fold: the deterministic reduction the engines use.
  double total = 0.0;
  for (const double s : chunk_sum) total += s;
  std::memcpy(&out.sum_bits, &total, sizeof(total));
  out.steals = sched.total_stats();
  out.covered = items_seen.load() == kItems;
  for (const auto& runs : chunk_runs)
    if (runs.load() != 1) out.covered = false;
  return out;
}

int oversubscribed_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(hw == 0 ? 8 : 2 * hw);
}

TEST(SchedulerStress, OversubscribedSkewedRunsEveryTaskExactlyOnce) {
  const RunResult r =
      stress_run(oversubscribed_threads(), SchedPolicy::kNumaAware);
  EXPECT_TRUE(r.covered);
  EXPECT_EQ(r.steals.total(),
            static_cast<std::uint64_t>(
                Scheduler::num_chunks(kItems, kTaskSize)));
}

TEST(SchedulerStress, BitIdenticalAcrossFiveRuns) {
  const int T = oversubscribed_threads();
  const RunResult first = stress_run(T, SchedPolicy::kNumaAware);
  ASSERT_TRUE(first.covered);
  for (int run = 1; run < 5; ++run) {
    const RunResult r = stress_run(T, SchedPolicy::kNumaAware);
    ASSERT_TRUE(r.covered) << "run " << run;
    ASSERT_EQ(r.sum_bits, first.sum_bits) << "run " << run;
  }
}

TEST(SchedulerStress, BitIdenticalAcrossThreadCounts) {
  const RunResult one = stress_run(1, SchedPolicy::kNumaAware);
  ASSERT_TRUE(one.covered);
  for (const int threads : {2, 7, 16}) {
    const RunResult r = stress_run(threads, SchedPolicy::kNumaAware);
    ASSERT_TRUE(r.covered) << threads;
    ASSERT_EQ(r.sum_bits, one.sum_bits) << "T=" << threads;
  }
}

TEST(SchedulerStress, BitIdenticalAcrossPolicies) {
  const RunResult ws = stress_run(8, SchedPolicy::kNumaAware);
  for (const auto policy : {SchedPolicy::kFifo, SchedPolicy::kStatic}) {
    const RunResult r = stress_run(8, policy);
    ASSERT_TRUE(r.covered) << to_string(policy);
    ASSERT_EQ(r.sum_bits, ws.sum_bits) << to_string(policy);
  }
}

TEST(SchedulerStress, SkewForcesCrossNodeSteals) {
  // The heavy chunks live at the front of the grid — the low threads'
  // blocks, i.e. nodes 0 and 1. Threads on nodes 2 and 3 drain their own
  // queues early and must steal across nodes to finish the run.
  const RunResult r = stress_run(16, SchedPolicy::kNumaAware);
  ASSERT_TRUE(r.covered);
  EXPECT_GT(r.steals.remote_node, 0u);
  // Static scheduling, by construction, never steals.
  const RunResult st = stress_run(16, SchedPolicy::kStatic);
  EXPECT_EQ(st.steals.same_node, 0u);
  EXPECT_EQ(st.steals.remote_node, 0u);
}

}  // namespace
}  // namespace knor::sched
