// Tests for the distributed substrate: collectives (correctness and
// determinism), the network cost model, and knord / MPI-baseline
// equivalence with the in-memory reference.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "core/knori.hpp"
#include "data/generator.hpp"
#include "dist/comm.hpp"
#include "dist/knord.hpp"
#include "dist/netsim.hpp"

namespace knor::dist {
namespace {

TEST(Comm, BarrierSynchronizes) {
  Cluster cluster(4);
  std::atomic<int> before{0};
  std::atomic<bool> ok{true};
  cluster.run([&](Communicator& comm) {
    ++before;
    comm.barrier();
    if (before.load() != 4) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(Comm, AllreduceSumDoubles) {
  Cluster cluster(5);
  std::vector<std::vector<double>> results(5);
  cluster.run([&](Communicator& comm) {
    std::vector<double> v = {static_cast<double>(comm.rank() + 1), 10.0};
    comm.allreduce_sum(v.data(), v.size());
    results[static_cast<std::size_t>(comm.rank())] = v;
  });
  for (const auto& v : results) {
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 15.0);  // 1+2+3+4+5
    EXPECT_DOUBLE_EQ(v[1], 50.0);
  }
}

TEST(Comm, AllreduceSumIntegers) {
  Cluster cluster(3);
  std::vector<std::uint64_t> results(3);
  cluster.run([&](Communicator& comm) {
    std::uint64_t v = 1ull << (20 + comm.rank());
    comm.allreduce_sum(&v, 1);
    results[static_cast<std::size_t>(comm.rank())] = v;
  });
  const std::uint64_t expect = (1ull << 20) + (1ull << 21) + (1ull << 22);
  for (auto v : results) EXPECT_EQ(v, expect);
}

TEST(Comm, AllreduceDeterministicAcrossRuns) {
  // FP reduction order is rank-ordered, so repeated runs must agree bitwise
  // even with values that expose non-associativity.
  std::vector<double> first;
  for (int run = 0; run < 3; ++run) {
    Cluster cluster(7);
    std::vector<double> out(7);
    cluster.run([&](Communicator& comm) {
      double v = 1.0 / (1.0 + comm.rank()) * 1e-15 + comm.rank();
      comm.allreduce_sum(&v, 1);
      out[static_cast<std::size_t>(comm.rank())] = v;
    });
    for (double v : out) ASSERT_EQ(v, out[0]);
    if (run == 0)
      first = out;
    else
      EXPECT_EQ(out[0], first[0]);
  }
}

TEST(Comm, SequentialCollectivesDoNotDeadlock) {
  Cluster cluster(4);
  cluster.run([&](Communicator& comm) {
    for (int i = 0; i < 50; ++i) {
      double v = 1.0;
      comm.allreduce_sum(&v, 1);
      ASSERT_DOUBLE_EQ(v, 4.0);
      comm.barrier();
    }
  });
}

TEST(Comm, BcastReplicatesRootData) {
  Cluster cluster(4);
  std::vector<double> results(4);
  cluster.run([&](Communicator& comm) {
    double v = comm.rank() == 2 ? 42.5 : 0.0;
    comm.bcast(&v, sizeof(v), /*root=*/2);
    results[static_cast<std::size_t>(comm.rank())] = v;
  });
  for (double v : results) EXPECT_DOUBLE_EQ(v, 42.5);
}

TEST(Comm, ExceptionsPropagateFromRanks) {
  Cluster cluster(3);
  EXPECT_THROW(cluster.run([&](Communicator& comm) {
                 if (comm.rank() == 1) throw std::runtime_error("rank fail");
                 // other ranks must not hang on collectives here
               }),
               std::runtime_error);
}

TEST(NetSimTest, DisabledIsFree) {
  NetSim::disable();
  const auto t0 = std::chrono::steady_clock::now();
  NetSim::charge(1 << 20, 8);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_LT(us, 2000);
}

TEST(NetSimTest, ChargesLatencyAndBandwidth) {
  NetModel m;
  m.latency_us = 200;
  m.gigabytes_per_sec = 1.0;
  NetSim::configure(m);
  const auto t0 = std::chrono::steady_clock::now();
  NetSim::charge(0, 4);  // 2 hops * 200us latency only
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  NetSim::disable();
  EXPECT_GE(us, 300);
}

TEST(NetSimTest, ConcurrentClustersWithDifferentModelsStayIsolated) {
  // The interconnect model is per-Cluster state: a cluster with an
  // expensive model must not slow down (or data-race with) a concurrent
  // cluster that has none. Run both at once — under TSan this also pins
  // that per-cluster models ended the old process-global mutation.
  NetSim::disable();
  NetModel slow_model;
  slow_model.latency_us = 2000;
  std::atomic<long> fast_us{0};
  std::thread slow_thread([&] {
    Cluster slow(2);
    slow.set_net(slow_model);
    slow.run([](Communicator& comm) {
      for (int i = 0; i < 10; ++i) comm.barrier();
    });
  });
  std::thread fast_thread([&] {
    Cluster fast(2);  // no model: snapshots the (disabled) default
    const auto t0 = std::chrono::steady_clock::now();
    fast.run([](Communicator& comm) {
      for (int i = 0; i < 10; ++i) comm.barrier();
    });
    fast_us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  });
  slow_thread.join();
  fast_thread.join();
  // The slow cluster's 10 barriers sleep >= 10 * 1 hop * 2000us = 20ms; an
  // uncharged concurrent cluster must come in well under that.
  EXPECT_LT(fast_us.load(), 20000);
  EXPECT_FALSE(NetSim::current().enabled());
}

// --- knord end-to-end -------------------------------------------------------

struct DistParam {
  int ranks;
  int threads_per_rank;
  bool prune;
};

class KnordSweep : public ::testing::TestWithParam<DistParam> {};

TEST_P(KnordSweep, MatchesKnoriClustering) {
  const auto& p = GetParam();
  data::GeneratorSpec spec;
  spec.n = 6000;
  spec.d = 10;
  spec.true_clusters = 7;
  spec.seed = 23;
  const DenseMatrix m = data::generate(spec);

  Options opts;
  opts.k = 7;
  opts.threads = 2;
  opts.max_iters = 40;
  opts.seed = 3;
  opts.prune = p.prune;
  const Result ref = kmeans(m.const_view(), opts);

  DistOptions dopts;
  dopts.ranks = p.ranks;
  dopts.threads_per_rank = p.threads_per_rank;
  const Result res = kmeans(m.const_view(), opts, dopts);

  EXPECT_EQ(res.iters, ref.iters);
  const double rel = std::abs(res.energy - ref.energy) / ref.energy;
  EXPECT_LT(rel, 1e-9);
  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < ref.assignments.size(); ++i)
    if (res.assignments[i] != ref.assignments[i]) ++mismatched;
  EXPECT_EQ(mismatched, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnordSweep,
    ::testing::Values(DistParam{1, 1, true}, DistParam{2, 2, true},
                      DistParam{3, 1, true}, DistParam{4, 2, true},
                      DistParam{2, 2, false}, DistParam{5, 1, false}),
    [](const auto& info) {
      return "r" + std::to_string(info.param.ranks) + "_t" +
             std::to_string(info.param.threads_per_rank) +
             (info.param.prune ? "_mti" : "_nomti");
    });

TEST(Knord, GeneratorFormMatchesMatrixForm) {
  data::GeneratorSpec spec;
  spec.n = 4000;
  spec.d = 8;
  spec.true_clusters = 5;
  spec.seed = 31;
  const DenseMatrix m = data::generate(spec);

  Options opts;
  opts.k = 5;
  opts.max_iters = 30;
  opts.seed = 9;
  DistOptions dopts;
  dopts.ranks = 3;
  dopts.threads_per_rank = 2;

  const Result from_matrix = kmeans(m.const_view(), opts, dopts);
  const Result from_generator = kmeans(spec, opts, dopts);

  EXPECT_EQ(from_matrix.iters, from_generator.iters);
  EXPECT_DOUBLE_EQ(from_matrix.energy, from_generator.energy);
  for (std::size_t i = 0; i < from_matrix.assignments.size(); ++i)
    ASSERT_EQ(from_matrix.assignments[i], from_generator.assignments[i]);
}

TEST(Knord, MpiBaselineMatchesKnord) {
  data::GeneratorSpec spec;
  spec.n = 5000;
  spec.d = 6;
  spec.true_clusters = 6;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 6;
  opts.max_iters = 30;
  DistOptions dopts;
  dopts.ranks = 4;
  dopts.threads_per_rank = 1;
  const Result a = kmeans(m.const_view(), opts, dopts);
  const Result b = mpi_kmeans(m.const_view(), opts, dopts);
  EXPECT_EQ(a.iters, b.iters);
  const double rel = std::abs(a.energy - b.energy) / a.energy;
  EXPECT_LT(rel, 1e-9);
  for (std::size_t i = 0; i < a.assignments.size(); ++i)
    ASSERT_EQ(a.assignments[i], b.assignments[i]);
}

TEST(Knord, RankCountDoesNotChangeResult) {
  data::GeneratorSpec spec;
  spec.n = 3000;
  spec.d = 8;
  spec.true_clusters = 4;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 4;
  opts.max_iters = 30;
  double first_energy = -1;
  std::size_t first_iters = 0;
  for (int ranks : {1, 2, 4, 6}) {
    DistOptions dopts;
    dopts.ranks = ranks;
    dopts.threads_per_rank = 1;
    const Result res = kmeans(m.const_view(), opts, dopts);
    if (first_energy < 0) {
      first_energy = res.energy;
      first_iters = res.iters;
    } else {
      EXPECT_EQ(res.iters, first_iters) << ranks;
      EXPECT_LT(std::abs(res.energy - first_energy) / first_energy, 1e-9)
          << ranks;
    }
  }
}

TEST(Knord, NetModelRestoredAfterRun) {
  data::GeneratorSpec spec;
  spec.n = 500;
  spec.d = 4;
  const DenseMatrix m = data::generate(spec);
  Options opts;
  opts.k = 2;
  opts.max_iters = 5;
  DistOptions dopts;
  dopts.ranks = 2;
  dopts.net.latency_us = 50;
  kmeans(m.const_view(), opts, dopts);
  EXPECT_FALSE(NetSim::current().enabled());
}

TEST(Knord, InvalidInputsThrow) {
  DenseMatrix empty;
  Options opts;
  opts.k = 2;
  EXPECT_THROW(kmeans(empty.const_view(), opts, DistOptions{}),
               std::invalid_argument);

  data::GeneratorSpec spec;
  spec.n = 100;
  spec.d = 4;
  opts.init = Init::kKmeansPP;  // unsupported in generator form
  EXPECT_THROW(kmeans(spec, opts, DistOptions{}), std::invalid_argument);
}

}  // namespace
}  // namespace knor::dist
