// Bench-harness unit tests: JSON emitter escaping + round-trip, timing
// aggregation math on synthetic samples, and the determinism contract —
// bit-identical fingerprints and timing-stripped JSON across two runs of
// the same suite (DESIGN.md §6).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "harness/harness.hpp"
#include "harness/report.hpp"
#include "harness/json.hpp"

namespace {

using namespace knor::bench;

TEST(Json, EscapingRoundTrip) {
  const std::string nasty =
      "quote\" backslash\\ newline\n tab\t cr\r ctrl\x01 bell\x07 done";
  Json doc = Json::object();
  doc.set("k\"ey", nasty);
  const std::string text = doc.dump(2);
  // The control characters must be escaped, never raw, in the output.
  EXPECT_EQ(text.find('\x01'), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  std::string error;
  const Json back = Json::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_NE(back.find("k\"ey"), nullptr);
  EXPECT_EQ(back.find("k\"ey")->str(), nasty);
}

TEST(Json, NumberRoundTrip) {
  for (const double v : {0.0, 1.0, -1.0, 0.1, 1e-9, 3.141592653589793,
                         1234567890123.0, -2.5e17, 6.02e23}) {
    const std::string s = format_double(v);
    // strtod as an independent round-trip oracle. knor_lint: allow KL001
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(format_double(42), "42");          // integers print bare
  EXPECT_EQ(format_double(-7), "-7");
}

// JSON has no NaN/Inf: they must serialize as null (never a fabricated
// "0"), parse back as null, and read as NaN through number().
TEST(Json, NanAndInfSerializeAsNull) {
  EXPECT_EQ(format_double(NAN), "null");
  EXPECT_EQ(format_double(INFINITY), "null");
  EXPECT_EQ(format_double(-INFINITY), "null");

  Json doc = Json::object();
  doc.set("bad", Json(static_cast<double>(NAN)));
  doc.set("good", 1.5);
  const std::string text = doc.dump(0);
  EXPECT_NE(text.find("\"bad\": null"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;

  std::string error;
  const Json back = Json::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_NE(back.find("bad"), nullptr);
  EXPECT_TRUE(back.find("bad")->is_null());
  EXPECT_TRUE(std::isnan(back.find("bad")->number()));
  EXPECT_DOUBLE_EQ(back.find("good")->number(), 1.5);
  // The round trip is stable: re-dumping the parsed document emits null
  // again, not 0.
  EXPECT_NE(back.dump(0).find("\"bad\": null"), std::string::npos);
}

// A NaN timing (failed measurement) must render as "-" in the report, not
// as a plausible number.
TEST(Report, NanTimingRendersAsDash) {
  const Suite nan_suite = {"missing_timing", "Missing-timing suite",
                           "test fixture", "trend", 4, [](Context& ctx) {
                             ctx.row()
                                 .label("variant", "broken")
                                 .timing("wall_ms",
                                         TimingAgg::single(
                                             static_cast<double>(NAN)));
                             ctx.row().label("variant", "fine").timing(
                                 "wall_ms", 2.0);
                           }};
  const RunOptions opts = RunOptions::for_scale(Scale::kSmoke);
  const SuiteRun run = run_suite(nan_suite, opts);
  ASSERT_TRUE(run.ok);
  const std::string md = render_report({run}, opts);
  EXPECT_NE(md.find("| broken | - |"), std::string::npos) << md;
  EXPECT_EQ(md.find("nan"), std::string::npos);
  // ...and the JSON side of the same run serializes the NaN as null.
  const std::string js = results_json({run}, opts).dump(0);
  EXPECT_NE(js.find("null"), std::string::npos);
  EXPECT_EQ(js.find("nan"), std::string::npos);
}

TEST(Json, DocumentRoundTrip) {
  Json doc = Json::object();
  doc.set("null", Json());
  doc.set("flag", true);
  doc.set("n", 3);
  doc.set("x", 0.25);
  Json arr = Json::array();
  arr.push(1).push("two").push(Json::object().set("deep", false));
  doc.set("arr", std::move(arr));
  doc.set("empty_obj", Json::object());
  doc.set("empty_arr", Json::array());
  for (const int indent : {0, 2, 4}) {
    std::string error;
    const Json back = Json::parse(doc.dump(indent), &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(back, doc) << "indent=" << indent;
  }
}

TEST(Json, ParseErrors) {
  std::string error;
  Json::parse("{\"a\": }", &error);
  EXPECT_FALSE(error.empty());
  Json::parse("[1, 2", &error);
  EXPECT_FALSE(error.empty());
  Json::parse("{} trailing", &error);
  EXPECT_FALSE(error.empty());
}

TEST(Json, EraseKeysRecursive) {
  Json doc = Json::object();
  doc.set("keep", 1);
  doc.set("timings", Json::object().set("x", 2));
  Json row = Json::object();
  row.set("stats", Json::object().set("a", 3));
  row.set("timings", Json::object().set("b", 4));
  row.set("wall_s", 0.5);
  doc.set("rows", Json::array().push(std::move(row)));
  erase_keys_recursive(doc, {"timings", "wall_s"});
  const std::string text = doc.dump(0);
  EXPECT_EQ(text.find("timings"), std::string::npos);
  EXPECT_EQ(text.find("wall_s"), std::string::npos);
  EXPECT_NE(text.find("keep"), std::string::npos);
  EXPECT_NE(text.find("stats"), std::string::npos);
}

TEST(TimingAgg, MedianOfOddSamples) {
  const TimingAgg agg = TimingAgg::from_samples({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(agg.median, 3.0);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.max, 5.0);
  EXPECT_EQ(agg.repeats, 3);
}

TEST(TimingAgg, MedianOfEvenSamples) {
  const TimingAgg agg = TimingAgg::from_samples({4.0, 1.0, 2.0, 8.0});
  EXPECT_DOUBLE_EQ(agg.median, 3.0);  // (2 + 4) / 2
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.max, 8.0);
}

TEST(TimingAgg, SingleAndEmptyAndSpread) {
  const TimingAgg one = TimingAgg::single(2.5);
  EXPECT_DOUBLE_EQ(one.median, 2.5);
  EXPECT_EQ(one.repeats, 1);
  EXPECT_DOUBLE_EQ(one.spread_pct(), 0.0);

  const TimingAgg none = TimingAgg::from_samples({});
  EXPECT_EQ(none.repeats, 0);
  EXPECT_DOUBLE_EQ(none.median, 0.0);

  const TimingAgg agg = TimingAgg::from_samples({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(agg.spread_pct(), 100.0);  // (3-1)/2
  EXPECT_DOUBLE_EQ(agg.scaled(1e3).median, 2000.0);
}

// A deterministic suite: config + stats are pure functions of the scale,
// timings intentionally vary call to call.
int g_calls = 0;
void fake_suite(Context& ctx) {
  ++g_calls;
  ctx.config("dataset", "synthetic n=" + std::to_string(ctx.scaled(100000)));
  ctx.config("k", 10);
  ctx.row()
      .label("variant", "a")
      .stat("bytes", 4096)
      .timing("wall_ms", 1.0 + 0.1 * g_calls);  // deliberately unstable
  ctx.row().label("variant", "b").stat("bytes", 8192);
}

const Suite kFakeSuite = {"fake_suite", "Fake suite", "test fixture",
                          "expected trend text", 1, fake_suite};

TEST(Harness, FingerprintIdenticalAcrossRuns) {
  const RunOptions opts = RunOptions::for_scale(Scale::kSmoke);
  const SuiteRun a = run_suite(kFakeSuite, opts);
  const SuiteRun b = run_suite(kFakeSuite, opts);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint.size(), 18u);  // "0x" + 16 hex digits
}

TEST(Harness, FingerprintSensitiveToConfig) {
  const std::vector<std::pair<std::string, std::string>> c1 = {{"k", "10"}};
  const std::vector<std::pair<std::string, std::string>> c2 = {{"k", "20"}};
  EXPECT_NE(config_fingerprint("s", c1), config_fingerprint("s", c2));
  // Field separation: ("ab","c") must differ from ("a","bc").
  EXPECT_NE(config_fingerprint("s", {{"ab", "c"}}),
            config_fingerprint("s", {{"a", "bc"}}));
  EXPECT_NE(config_fingerprint("s1", c1), config_fingerprint("s2", c1));
}

TEST(Harness, JsonIdenticalModuloTimings) {
  const RunOptions opts = RunOptions::for_scale(Scale::kSmoke);
  const SuiteRun a = run_suite(kFakeSuite, opts);
  const SuiteRun b = run_suite(kFakeSuite, opts);
  Json ja = results_json({a}, opts);
  Json jb = results_json({b}, opts);
  // The timing fields genuinely differ (the fake suite varies them)...
  EXPECT_NE(ja, jb);
  // ...and stripping exactly the documented timing keys restores equality.
  erase_keys_recursive(ja, timing_keys());
  erase_keys_recursive(jb, timing_keys());
  EXPECT_EQ(ja.dump(2), jb.dump(2));
}

TEST(Harness, SuiteErrorsAreCaptured) {
  const Suite throwing = {"throwing", "t", "t", "t", 2,
                          [](Context&) { throw std::runtime_error("boom"); }};
  const SuiteRun run = run_suite(throwing, RunOptions::for_scale(Scale::kSmoke));
  EXPECT_FALSE(run.ok);
  EXPECT_EQ(run.error, "boom");
  EXPECT_FALSE(run.has_samples());
}

TEST(Harness, HasSamplesRequiresAStatOrTiming) {
  const Suite empty_rows = {"empty_rows", "t", "t", "t", 3, [](Context& ctx) {
                              ctx.row().label("only", "labels");
                            }};
  const SuiteRun run =
      run_suite(empty_rows, RunOptions::for_scale(Scale::kSmoke));
  EXPECT_TRUE(run.ok);
  EXPECT_FALSE(run.has_samples());
}

TEST(Harness, ScaledFloorsAt1000Rows) {
  Context ctx(RunOptions::for_scale(Scale::kSmoke));
  EXPECT_EQ(ctx.scaled(10), 1000u);
  Context paper(RunOptions::for_scale(Scale::kPaper));
  EXPECT_GE(paper.scaled(100000), 1000u);
}

TEST(Report, RendersTablesAndTrend) {
  const RunOptions opts = RunOptions::for_scale(Scale::kSmoke);
  const SuiteRun run = run_suite(kFakeSuite, opts);
  const std::string md = render_report({run}, opts);
  EXPECT_NE(md.find("Fake suite"), std::string::npos);
  EXPECT_NE(md.find("expected trend text"), std::string::npos);
  EXPECT_NE(md.find("| variant "), std::string::npos);
  EXPECT_NE(md.find(run.fingerprint), std::string::npos);
  EXPECT_NE(md.find("DESIGN.md"), std::string::npos);  // the preamble links
  const std::string text = render_text(run);
  EXPECT_NE(text.find("variant"), std::string::npos);
  EXPECT_NE(text.find("Expected (paper):"), std::string::npos);
}

}  // namespace
