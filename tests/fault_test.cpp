// Fault-tolerant elastic knord (DESIGN.md §13): deterministic fault
// injection, checkpointed recovery and deterministic re-sharding.
//
// The load-bearing assertion throughout: a run that crashes mid-flight and
// recovers onto fewer ranks must produce clustering BITWISE identical to an
// uninterrupted dist::kmeans run — for any crash iteration, any survivor
// count, any thread count and any SIMD ISA. The dataset is integer-valued
// (the conformance oracle's trick): every partial centroid sum is an
// exactly-representable double, so FP addition is associative over them and
// the recovery re-shard — which only regroups partial sums across a
// different rank count — cannot perturb a single bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "data/generator.hpp"
#include "dist/fault.hpp"
#include "dist/knord.hpp"
#include "dist/membership.hpp"
#include "sem/checkpoint.hpp"

namespace knor::dist {
namespace {

constexpr index_t kN = 1200;
constexpr index_t kD = 6;
constexpr int kK = 5;
constexpr int kWorld = 4;

DenseMatrix integer_dataset() {
  data::GeneratorSpec spec;
  spec.n = kN;
  spec.d = kD;
  spec.true_clusters = kK;
  spec.separation = 9.0;
  spec.seed = 20170627;
  DenseMatrix m = data::generate(spec);
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t c = 0; c < m.cols(); ++c)
      m.at(r, c) = std::round(m.at(r, c));
  return m;
}

DenseMatrix initial_centroids(const DenseMatrix& m) {
  DenseMatrix init(static_cast<index_t>(kK), kD);
  for (int c = 0; c < kK; ++c) {
    const index_t r = (m.rows() * static_cast<index_t>(c)) /
                          static_cast<index_t>(kK) +
                      7;
    std::memcpy(init.row(static_cast<index_t>(c)), m.row(r),
                kD * sizeof(value_t));
  }
  return init;
}

Options base_options(const DenseMatrix& init) {
  Options opts;
  opts.k = kK;
  opts.max_iters = 60;
  opts.init = Init::kProvided;
  opts.initial_centroids = init;
  opts.numa_nodes = 2;
  return opts;
}

DistOptions base_dist() {
  DistOptions dopts;
  dopts.ranks = kWorld;
  dopts.threads_per_rank = 2;
  return dopts;
}

class FaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new DenseMatrix(integer_dataset());
    init_ = new DenseMatrix(initial_centroids(*data_));
    ref_ = new Result(
        kmeans(data_->const_view(), base_options(*init_), base_dist()));
    // The oracle must exercise real recovery windows: enough iterations
    // that crashes at 1..iters-1 all fire.
    ASSERT_TRUE(ref_->converged);
    ASSERT_GT(ref_->iters, 2u);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete init_;
    delete ref_;
    data_ = nullptr;
    init_ = nullptr;
    ref_ = nullptr;
  }

  Options opts() const { return base_options(*init_); }

  void expect_identical(const Result& res, const std::string& what) {
    EXPECT_EQ(res.iters, ref_->iters) << what;
    EXPECT_EQ(res.converged, ref_->converged) << what;
    ASSERT_EQ(res.assignments, ref_->assignments) << what;
    EXPECT_EQ(res.cluster_sizes, ref_->cluster_sizes) << what;
    ASSERT_EQ(res.centroids.rows(), ref_->centroids.rows()) << what;
    EXPECT_EQ(std::memcmp(res.centroids.data(), ref_->centroids.data(),
                          ref_->centroids.size() * sizeof(value_t)),
              0)
        << what << ": centroids differ bitwise";
    const double rel = std::abs(res.energy - ref_->energy) /
                       std::max(1e-30, ref_->energy);
    EXPECT_LT(rel, 1e-12) << what;
  }

  static DenseMatrix* data_;
  static DenseMatrix* init_;
  static Result* ref_;
};

DenseMatrix* FaultTest::data_ = nullptr;
DenseMatrix* FaultTest::init_ = nullptr;
Result* FaultTest::ref_ = nullptr;

// --- the hard requirement: bitwise identity for ANY crash point and ANY
// --- survivor count ---------------------------------------------------------

TEST_F(FaultTest, CrashSweepEveryIterationAndSurvivorCount) {
  // Crash 1, 2 or 3 of the 4 nodes at every boundary the run has. The
  // final boundary (== ref iters) converges before the observer runs, so
  // those crashes never fire — the sweep covers that edge too.
  for (const int crashes : {1, 2, 3}) {
    for (std::uint64_t at = 1; at <= ref_->iters; ++at) {
      FtOptions fopts;
      for (int c = 0; c < crashes; ++c)
        fopts.plan.crashes.push_back({at, c + 1});
      const Result res =
          ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
      const std::string what = "crash@" + std::to_string(at) + " x" +
                               std::to_string(crashes);
      expect_identical(res, what);
      const std::int64_t fired = at < ref_->iters ? 1 : 0;
      EXPECT_EQ(res.metrics.value_or("dist.recoveries", 0), fired) << what;
      EXPECT_EQ(res.metrics.value_or("dist.faults_injected", 0),
                fired * crashes)
          << what;
    }
  }
}

TEST_F(FaultTest, CrashRecoveryAcrossThreadCountsAndIsas) {
  for (const kernels::Isa isa : kernels::available_isas()) {
    for (const int tpr : {1, 3}) {
      Options o = opts();
      o.simd = isa;
      DistOptions dopts = base_dist();
      dopts.threads_per_rank = tpr;
      FtOptions fopts;
      fopts.plan = FaultPlan::parse("crash@2:r1;crash@2:r3");
      const Result res = ft_kmeans(data_->const_view(), o, dopts, fopts);
      expect_identical(res, std::string("isa=") + kernels::to_string(isa) +
                                " tpr=" + std::to_string(tpr));
    }
  }
}

TEST_F(FaultTest, DoubleFaultRecoversTwice) {
  // Two crashes at DIFFERENT boundaries: the first recovery replays onto 3
  // ranks, the second onto 2 — two full recovery cycles in one run.
  FtOptions fopts;
  fopts.plan = FaultPlan::parse("crash@1:r1;crash@2:r2");
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  expect_identical(res, "double fault");
  EXPECT_EQ(res.metrics.value_or("dist.recoveries", -1), 2);
}

TEST_F(FaultTest, CrashBeforeFirstCheckpointRestartsFromScratch) {
  // checkpoint_every = 3 and a crash at boundary 1: no checkpoint exists
  // yet, so recovery re-runs from the initial centroids on the survivors.
  FtOptions fopts;
  fopts.checkpoint_every = 3;
  fopts.plan = FaultPlan::parse("crash@1:r2");
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  expect_identical(res, "crash before first checkpoint");
  EXPECT_EQ(res.metrics.value_or("dist.recoveries", -1), 1);
}

TEST_F(FaultTest, SparseCheckpointsReplayTheGap) {
  // With ckpt-every=2 a crash at boundary 3 restores the boundary-2
  // checkpoint and replays iteration 3 — the replay must be invisible.
  if (ref_->iters < 4u) GTEST_SKIP() << "needs >= 4 iterations";
  FtOptions fopts;
  fopts.checkpoint_every = 2;
  fopts.plan = FaultPlan::parse("crash@3:r1");
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  expect_identical(res, "sparse checkpoints");
  EXPECT_EQ(res.metrics.value_or("dist.recoveries", -1), 1);
}

// --- durable checkpoints ----------------------------------------------------

TEST_F(FaultTest, RecoveryThroughCheckpointFile) {
  const std::string path = ::testing::TempDir() + "ft_recovery.ckpt";
  std::remove(path.c_str());
  FtOptions fopts;
  fopts.checkpoint_path = path;
  fopts.plan = FaultPlan::parse("crash@2:r3");
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  expect_identical(res, "file-backed recovery");
  // The surviving cluster kept checkpointing: the file carries the dist
  // block of the post-recovery epoch (leader = lowest live node).
  const sem::Checkpoint ckpt = sem::load_checkpoint(path);
  EXPECT_EQ(ckpt.dist_epoch, 1u);
  EXPECT_EQ(ckpt.dist_world, kWorld);
  ASSERT_EQ(ckpt.dist_nodes.size(), 3u);
  EXPECT_EQ(ckpt.dist_nodes[0], 0);  // r3 gone: {0, 1, 2} survive
  EXPECT_EQ(ckpt.dist_nodes[2], 2);
  std::remove(path.c_str());
}

TEST_F(FaultTest, ResumeContinuesFromCheckpointFile) {
  const std::string path = ::testing::TempDir() + "ft_resume.ckpt";
  std::remove(path.c_str());
  // Phase 1: stop after 2 iterations (simulated whole-cluster outage).
  Options truncated = opts();
  truncated.max_iters = 2;
  FtOptions fopts;
  fopts.checkpoint_path = path;
  ft_kmeans(data_->const_view(), truncated, base_dist(), fopts);
  ASSERT_TRUE(sem::checkpoint_exists(path));
  // Phase 2: --resume onto a DIFFERENT rank count; the finished run must
  // be indistinguishable from never having stopped.
  DistOptions dopts = base_dist();
  dopts.ranks = 3;
  fopts.resume = true;
  const Result res = ft_kmeans(data_->const_view(), opts(), dopts, fopts);
  expect_identical(res, "resume from file");
  std::remove(path.c_str());
}

TEST_F(FaultTest, CorruptCheckpointsAreRejected) {
  const std::string path = ::testing::TempDir() + "ft_corrupt.ckpt";
  FtOptions fopts;
  fopts.checkpoint_path = path;
  ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);

  // Flip one payload byte: the FNV-1a content checksum must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    const int byte = std::fgetc(f);
    std::fseek(f, 100, SEEK_SET);
    std::fputc(byte ^ 0x40, f);
    std::fclose(f);
  }
  EXPECT_TRUE(sem::checkpoint_exists(path));  // magic is intact
  EXPECT_THROW(sem::load_checkpoint(path), std::runtime_error);
  // A resume from the corrupt file must refuse loudly, not cluster from
  // garbage.
  fopts.resume = true;
  EXPECT_THROW(ft_kmeans(data_->const_view(), opts(), base_dist(), fopts),
               std::runtime_error);

  // Truncation is caught too (by length or by checksum).
  fopts.resume = false;
  ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  std::filesystem::resize_file(path, 96);
  EXPECT_THROW(sem::load_checkpoint(path), std::runtime_error);

  // And a clobbered magic is not a checkpoint at all.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTACKPT", f);
    std::fclose(f);
  }
  EXPECT_FALSE(sem::checkpoint_exists(path));
  EXPECT_THROW(sem::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(FaultTest, HostileCheckpointSizeFieldsAreRejected) {
  // Header-declared element counts are bounded against the bytes actually
  // on disk BEFORE any buffer is sized from them: a 64-bit field patched to
  // 2^60 must be rejected by name, never allocated (fuzz corpus:
  // tests/fuzz/corpus/checkpoint).
  const std::string path = ::testing::TempDir() + "ft_hostile.ckpt";
  sem::Checkpoint ckpt;
  ckpt.iteration = 3;
  ckpt.centroids = *init_;
  ckpt.assignments.assign(static_cast<std::size_t>(kN), 0);
  sem::save_checkpoint(path, ckpt);

  const auto patch_u64 = [&](long offset, std::uint64_t value) {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&value, sizeof(value), 1, f), 1u);
    std::fclose(f);
  };
  const auto expect_hostile = [&](const char* field) {
    try {
      sem::load_checkpoint(path);
      FAIL() << "hostile " << field << " field was accepted";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("hostile size field"), std::string::npos) << msg;
      EXPECT_NE(msg.find(field), std::string::npos) << msg;
    }
  };

  patch_u64(16, 1ull << 60);  // n: would wrap n*sizeof(cluster_t) as size_t
  expect_hostile("assignment count");
  patch_u64(16, static_cast<std::uint64_t>(kN));
  patch_u64(24, 1ull << 44);  // k: beyond any plausible field, pre-bounded
  expect_hostile("centroids k*d");

  // Hand-craft a minimal v2 file whose dist block claims 2^59 node ids.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    unsigned char header[64] = {};
    std::memcpy(header, "KNORCKP2", 8);
    const std::uint64_t fields[4] = {0, 0, 1, 1};  // iter, n, k, d
    std::memcpy(header + 8, fields, sizeof(fields));
    header[43] = 1;  // dist block present
    ASSERT_EQ(std::fwrite(header, 1, sizeof(header), f), sizeof(header));
    const double centroid = 0.0;
    ASSERT_EQ(std::fwrite(&centroid, sizeof(centroid), 1, f), 1u);
    const std::uint64_t dist_fields[3] = {0, 4, 1ull << 59};
    ASSERT_EQ(std::fwrite(dist_fields, sizeof(std::uint64_t), 3, f), 3u);
    std::fclose(f);
  }
  expect_hostile("dist node count");
  std::remove(path.c_str());
}

TEST_F(FaultTest, VersionOneCheckpointsStillLoad) {
  // A v1 file is a v2 file without the checksum or dist block; the loader
  // must keep accepting them (the pre-existing SEM checkpoint fleet).
  const std::string path = ::testing::TempDir() + "ft_v1.ckpt";
  sem::Checkpoint ckpt;
  ckpt.iteration = 7;
  ckpt.centroids = *init_;
  ckpt.assignments.assign(static_cast<std::size_t>(kN), 0);
  sem::save_checkpoint(path, ckpt);
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 7, SEEK_SET);
    std::fputc('1', f);  // KNORCKP2 -> KNORCKP1
    std::fclose(f);
  }
  ASSERT_TRUE(sem::checkpoint_exists(path));
  const sem::Checkpoint loaded = sem::load_checkpoint(path);
  EXPECT_EQ(loaded.iteration, 7u);
  EXPECT_EQ(loaded.n(), kN);
  std::remove(path.c_str());
}

// --- elasticity -------------------------------------------------------------

TEST_F(FaultTest, GracefulLeaveAndRejoin) {
  // r3 leaves at boundary 1 and rejoins at boundary 2: two deterministic
  // re-shards (4 -> 3 -> 4 ranks) with zero recoveries — elasticity rides
  // the checkpoint-stop-reshard path, not the failure path.
  FtOptions fopts;
  fopts.plan = FaultPlan::parse("leave@1:r3;join@2:r3");
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  expect_identical(res, "leave + rejoin");
  EXPECT_EQ(res.metrics.value_or("dist.membership_events", -1), 2);
  EXPECT_EQ(res.metrics.value_or("dist.recoveries", 0), 0);
}

TEST_F(FaultTest, JoinOfBrandNewNodeExtendsTheCluster) {
  FtOptions fopts;
  fopts.plan = FaultPlan::parse("join@1:r5");  // node id beyond world 4
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  expect_identical(res, "join new node");
  EXPECT_EQ(res.metrics.value_or("dist.membership_events", -1), 1);
}

TEST_F(FaultTest, CrashAfterLeaveUsesTheShrunkenMembership) {
  FtOptions fopts;
  fopts.plan = FaultPlan::parse("leave@1:r0;crash@2:r2");
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  expect_identical(res, "leave then crash");
  EXPECT_EQ(res.metrics.value_or("dist.membership_events", -1), 1);
  EXPECT_EQ(res.metrics.value_or("dist.recoveries", -1), 1);
}

// --- transient faults and stragglers ----------------------------------------

TEST_F(FaultTest, TransientCollectiveFaultsRetryTransparently) {
  FtOptions fopts;
  fopts.plan = FaultPlan::parse("flaky@1*3");
  fopts.backoff_us = 1.0;  // keep the test fast
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), fopts);
  expect_identical(res, "flaky collective");
  EXPECT_EQ(res.metrics.value_or("dist.retries", -1), 3);
  EXPECT_EQ(res.metrics.value_or("dist.faults_injected", -1), 3);
  EXPECT_EQ(res.metrics.value_or("dist.recoveries", 0), 0);
}

TEST_F(FaultTest, ExhaustedRetryBudgetFailsTheRun) {
  FtOptions fopts;
  fopts.plan = FaultPlan::parse("flaky@1*6");
  fopts.max_retries = 2;
  fopts.backoff_us = 1.0;
  EXPECT_THROW(ft_kmeans(data_->const_view(), opts(), base_dist(), fopts),
               std::runtime_error);
}

TEST_F(FaultTest, StragglerSlowsButNeverChangesTheClustering) {
  DistOptions dopts = base_dist();
  dopts.net.latency_us = 20;
  FtOptions fopts;
  fopts.plan = FaultPlan::parse("slow:r2*5");
  const Result res = ft_kmeans(data_->const_view(), opts(), dopts, fopts);
  expect_identical(res, "straggler");
}

TEST_F(FaultTest, NoSurvivorEscalatesToTheCaller) {
  FtOptions fopts;
  fopts.plan = FaultPlan::parse("crash@1:r0;crash@1:r1;crash@1:r2;crash@1:r3");
  EXPECT_THROW(ft_kmeans(data_->const_view(), opts(), base_dist(), fopts),
               RankFailure);
}

TEST_F(FaultTest, EmptyPlanDegeneratesToPlainKnord) {
  const Result res =
      ft_kmeans(data_->const_view(), opts(), base_dist(), FtOptions{});
  expect_identical(res, "no faults");
  EXPECT_EQ(res.metrics.value_or("dist.recoveries", 0), 0);
  EXPECT_EQ(res.metrics.value_or("dist.faults_injected", 0), 0);
  // Periodic checkpointing still ran (checkpoint_every defaults to 1).
  EXPECT_EQ(res.metrics.value_or("dist.checkpoints", 0),
            static_cast<std::int64_t>(ref_->iters) - 1);
}

// --- plan grammar and membership unit coverage ------------------------------

TEST(FaultPlanTest, ParseRoundTripsAndValidates) {
  const FaultPlan plan = FaultPlan::parse(
      "crash@3:r1; leave@4:r2; join@5:r6; slow:r0*2.5; flaky@2*3; seed=42");
  EXPECT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.members.size(), 2u);
  EXPECT_TRUE(plan.members[1].join);
  EXPECT_EQ(plan.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.straggler_multiplier(0), 2.5);
  EXPECT_DOUBLE_EQ(plan.straggler_multiplier(3), 1.0);
  EXPECT_EQ(plan.transient_failures_at(2), 3);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_TRUE(plan.crash_at(3, 1));
  EXPECT_FALSE(plan.crash_at(3, 2));
  // describe() reserializes into the same grammar.
  const FaultPlan again = FaultPlan::parse(plan.describe());
  EXPECT_EQ(again.describe(), plan.describe());

  for (const char* bad :
       {"crash@0:r1", "crash@3:x1", "crash@3", "slow:r1*0", "slow:r1*-2",
        "flaky@2*0", "flaky@2*2000", "seed=abc", "launch@3:r1"})
    EXPECT_THROW(FaultPlan::parse(bad), std::invalid_argument) << bad;
}

TEST(FaultPlanTest, RandomCrashesAreAPureFunctionOfTheSeed) {
  const FaultPlan a = FaultPlan::random_crashes(99, 8, 3, 10);
  const FaultPlan b = FaultPlan::random_crashes(99, 8, 3, 10);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.crashes.size(), 3u);
  for (const CrashEvent& c : a.crashes) {
    EXPECT_GE(c.iteration, 1u);
    EXPECT_LE(c.iteration, 10u);
    EXPECT_LT(c.node, 8);
  }
  // Never crashes the whole world.
  const FaultPlan capped = FaultPlan::random_crashes(7, 3, 10, 5);
  EXPECT_EQ(capped.crashes.size(), 2u);
}

TEST(MembershipTest, DeterministicRanksLeaderAndShards) {
  Membership mem(4);
  EXPECT_EQ(mem.live(), 4);
  EXPECT_EQ(mem.leader(), 0);
  mem.remove(0);
  mem.remove(2);
  EXPECT_EQ(mem.live(), 2);
  EXPECT_EQ(mem.leader(), 1);       // lowest live id
  EXPECT_EQ(mem.node_at(0), 1);     // comm rank 0 hosts node 1
  EXPECT_EQ(mem.node_at(1), 3);
  EXPECT_EQ(mem.rank_of(3), 1);
  EXPECT_EQ(mem.rank_of(2), -1);
  mem.add(2);                        // rejoin keeps sorted order
  EXPECT_EQ(mem.node_at(1), 2);
  mem.add(9);                        // join extends the world
  EXPECT_EQ(mem.world(), 10);
  // Re-sharding is exactly the fixed-size block partition.
  const numa::RowRange r = mem.shard(100, 1);
  EXPECT_EQ(r.size(), 25u);
  EXPECT_THROW(mem.add(2), std::invalid_argument);
  EXPECT_THROW(mem.remove(5), std::invalid_argument);
  EXPECT_THROW(mem.node_at(4), std::out_of_range);
}

}  // namespace
}  // namespace knor::dist
