# CLI smoke test (run via ctest): generate a tiny dataset, inspect it,
# cluster it with every mode (im / sem / dist), stream it through
# knor_stream (ingest / snapshot / resume / assign), serve it through
# knor_serve (closed / open load generators), and check exit codes —
# including the rejection paths of every strictly-parsed flag and env var.
# Invoked as:
#   cmake -DKNOR_CLI=<path> -DKNOR_STREAM=<path> -DKNOR_SERVE=<path>
#         -DKNOR_BENCH=<path> -DWORK_DIR=<dir> -P cli_smoke.cmake
if(NOT DEFINED KNOR_CLI OR NOT DEFINED KNOR_STREAM OR NOT DEFINED KNOR_SERVE
   OR NOT DEFINED KNOR_BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "cli_smoke: KNOR_CLI, KNOR_STREAM, KNOR_SERVE, KNOR_BENCH and "
          "WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(DATA ${WORK_DIR}/tiny.kmat)

function(run_step name)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cli_smoke step '${name}' failed (exit ${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "cli_smoke ${name}: ok")
endfunction()

run_step(generate ${KNOR_CLI} generate --out ${DATA} --dist natural
         --n 800 --d 6 --components 4 --seed 7)
run_step(info ${KNOR_CLI} info ${DATA})
run_step(cluster_im ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2)
# Scheduler controls: explicit thread count, pinning off, every policy, and
# an explicit task size, all plumbed through to the work-stealing scheduler.
run_step(cluster_im_unbound ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 3 --numa-bind off --task-size 128)
run_step(cluster_im_fifo ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 3 --sched fifo)
run_step(cluster_im_static ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 3 --sched static --numa-bind on)
# SIMD kernel ISA plumbing: explicit scalar (the legacy-bit-exact path),
# auto, and a vector ISA (clamps down gracefully on CPUs without it).
run_step(cluster_im_simd_scalar ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2 --simd scalar)
run_step(cluster_im_simd_auto ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2 --simd auto)
run_step(cluster_im_simd_avx2 ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2 --simd avx2)
run_step(cluster_sem ${KNOR_CLI} cluster --data ${DATA} --mode sem
         --k 4 --iters 10 --threads 2 --page-kb 4 --row-cache-mb 1)
run_step(cluster_sem_sched ${KNOR_CLI} cluster --data ${DATA} --mode sem
         --k 4 --iters 10 --threads 2 --numa-bind off --sched fifo
         --page-kb 4 --row-cache-mb 1)
run_step(cluster_dist ${KNOR_CLI} cluster --data ${DATA} --mode dist
         --k 4 --iters 10 --ranks 2 --threads-per-rank 2
         --net-latency-us 20 --net-gbps 1.25)
run_step(cluster_dist_sched ${KNOR_CLI} cluster --data ${DATA} --mode dist
         --k 4 --iters 10 --ranks 2 --threads-per-rank 2 --sched static
         --numa-bind off)
# Fault-tolerant elastic knord (DESIGN.md §13): scripted crash + recovery,
# transient retries, graceful elasticity, checkpoint + resume.
set(FT_CKPT ${WORK_DIR}/ft.ckpt)
run_step(cluster_dist_ft_crash ${KNOR_CLI} cluster --data ${DATA}
         --mode dist --k 4 --iters 20 --ranks 4 --ckpt ${FT_CKPT}
         --fault-plan "crash@2:r1,flaky@3*2")
if(NOT EXISTS ${FT_CKPT})
  message(FATAL_ERROR "cli_smoke: FT run left no checkpoint file")
endif()
run_step(cluster_dist_ft_resume ${KNOR_CLI} cluster --data ${DATA}
         --mode dist --k 4 --iters 20 --ranks 3 --ckpt ${FT_CKPT} --resume)
run_step(cluster_dist_ft_elastic ${KNOR_CLI} cluster --data ${DATA}
         --mode dist --k 4 --iters 20 --ranks 3 --ckpt-every 2
         --fault-plan "leave@1:r2,join@2:r2,slow:r0*2")

# Streaming subsystem: ingest the dataset in small batches, snapshot, resume
# from the snapshot, inspect it, and serve assignments from both sources.
set(SNAP ${WORK_DIR}/stream.ckpt)
run_step(stream_ingest ${KNOR_STREAM} ingest --data ${DATA} --k 4
         --decay 0.9 --batch-rows 128 --threads 2 --snapshot ${SNAP})
run_step(stream_resume ${KNOR_STREAM} ingest --data ${DATA} --k 4
         --decay 0.9 --batch-rows 128 --threads 2 --snapshot ${SNAP}
         --resume)
run_step(stream_snapshot_info ${KNOR_STREAM} snapshot ${SNAP})
run_step(stream_assign_io ${KNOR_STREAM} assign --snapshot ${SNAP}
         --queries ${DATA} --out ${WORK_DIR}/assign.bin --batch-rows 256
         --threads 2 --source io)
run_step(stream_assign_page ${KNOR_STREAM} assign --snapshot ${SNAP}
         --queries ${DATA} --batch-rows 256 --threads 2 --source page
         --page-kb 4)

# Serving front end (knor_serve): both load-generator verbs at tiny scale,
# against the stream snapshot and against synthetic centroids.
run_step(serve_closed ${KNOR_SERVE} closed --snapshot ${SNAP}
         --clients 4 --requests 32 --rows 4 --threads 2
         --batch-window 64 --queue-depth 16)
run_step(serve_closed_direct ${KNOR_SERVE} closed --snapshot ${SNAP}
         --clients 2 --requests 16 --rows 4 --threads 2 --direct)
run_step(serve_closed_topm ${KNOR_SERVE} closed --k 8 --clients 2
         --requests 16 --rows 4 --topm-every 3 --m 2 --threads 2)
run_step(serve_open ${KNOR_SERVE} open --snapshot ${SNAP} --clients 2
         --requests 32 --rows 4 --arrival-rate 2000 --threads 2
         --shed-policy shed --queue-depth 8)

# A bad invocation must fail loudly, not silently succeed. Pass valid data
# so the only rejectable thing is the flag under test.
function(reject_step name)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "cli_smoke: ${name} unexpectedly succeeded")
  endif()
  message(STATUS "cli_smoke ${name}: rejected as expected")
endfunction()

# Stricter form for usage()-routed rejections: the documented exit code is
# exactly 2 (not a crash, not a generic 1).
function(reject_step2 name)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
            "cli_smoke: ${name} expected exit 2, got '${rc}'")
  endif()
  message(STATUS "cli_smoke ${name}: rejected with exit 2 as expected")
endfunction()

reject_step(bad_mode ${KNOR_CLI} cluster --data ${DATA} --mode bogus --k 2)
# FT flags: a malformed fault plan exits 2 through usage(); a resume
# without a checkpoint path (or onto a missing file) must fail loudly.
reject_step2(bad_fault_plan ${KNOR_CLI} cluster --data ${DATA} --mode dist
             --k 2 --fault-plan "crash@0:r1")
reject_step2(bad_fault_plan_kind ${KNOR_CLI} cluster --data ${DATA}
             --mode dist --k 2 --fault-plan "meteor@3:r1")
reject_step(ft_resume_without_ckpt ${KNOR_CLI} cluster --data ${DATA}
            --mode dist --k 2 --resume)
reject_step(bad_numa_bind ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
            --numa-bind sideways)
reject_step(bad_sched ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
            --sched lottery)
reject_step(bad_simd ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
            --simd quantum)
# knor_cli numerics share the strict parser (tools/cli_args.hpp) too.
reject_step(bad_iters ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
            --iters abc)
reject_step(bad_tolerance ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
            --tolerance loose)
# An unknown KNOR_SIMD env value must reject like the --simd flag does,
# never silently fall back to a different ISA.
reject_step(bad_simd_env ${CMAKE_COMMAND} -E env KNOR_SIMD=quantum
            ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2 --iters 2)
run_step(good_simd_env ${CMAKE_COMMAND} -E env KNOR_SIMD=scalar
         ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2 --iters 2)
# Blocked-GEMM engine plumbing: --algo selects it, --gemm-tile shapes the
# cache tile, and malformed tiles exit 2 through the strict parser rather
# than silently clustering under a different shape.
run_step(cluster_im_gemm ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2 --algo gemm)
run_step(cluster_im_gemm_tile ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2 --algo gemm --gemm-tile 32x16)
reject_step2(bad_algo ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
             --algo blas)
reject_step2(bad_gemm_tile ${KNOR_CLI} cluster --data ${DATA} --mode im
             --k 2 --algo gemm --gemm-tile 0x4)
reject_step2(bad_gemm_tile_nox ${KNOR_CLI} cluster --data ${DATA} --mode im
             --k 2 --algo gemm --gemm-tile 8)
reject_step2(bad_gemm_tile_tail ${KNOR_CLI} cluster --data ${DATA} --mode im
             --k 2 --algo gemm --gemm-tile 8x)
reject_step2(bad_gemm_tile_alpha ${KNOR_CLI} cluster --data ${DATA} --mode im
             --k 2 --algo gemm --gemm-tile axb)
reject_step2(bad_gemm_tile_neg ${KNOR_CLI} cluster --data ${DATA} --mode im
             --k 2 --algo gemm --gemm-tile 8x-4)

# knor_bench numeric flags are strictly parsed: `--repeats abc` used to
# atoi to 0 and "succeed" with no samples.
reject_step(bench_bad_repeats ${KNOR_BENCH} --suite kernels_micro
            --scale smoke --repeats abc)
reject_step(bench_bad_repeats_zero ${KNOR_BENCH} --suite kernels_micro
            --scale smoke --repeats 0)
reject_step(bench_bad_warmup ${KNOR_BENCH} --suite kernels_micro
            --scale smoke --warmup 1x)
reject_step(bench_bad_factor ${KNOR_BENCH} --suite kernels_micro
            --scale smoke --factor fast)

# knor_stream shares the strict-parsing contract.
reject_step(stream_bad_decay ${KNOR_STREAM} ingest --data ${DATA} --k 4
            --decay hot)
reject_step(stream_bad_decay_range ${KNOR_STREAM} ingest --data ${DATA}
            --k 4 --decay 1.5)
reject_step(stream_bad_batch_rows ${KNOR_STREAM} ingest --data ${DATA}
            --k 4 --batch-rows many)
# Negative counts must reject BEFORE the unsigned cast (a wrap once caused
# a buffer-sizing overflow in the page-source reader).
reject_step(stream_negative_batch_rows ${KNOR_STREAM} assign
            --snapshot ${SNAP} --queries ${DATA} --batch-rows -1
            --source page)
reject_step(stream_negative_io_buffers ${KNOR_STREAM} assign
            --snapshot ${SNAP} --queries ${DATA} --io-buffers -2)
reject_step(stream_bad_source ${KNOR_STREAM} assign --snapshot ${SNAP}
            --queries ${DATA} --source tape)
reject_step(stream_bad_simd ${KNOR_STREAM} ingest --data ${DATA} --k 4
            --simd quantum)
reject_step(stream_snapshot_every_without_path ${KNOR_STREAM} ingest
            --data ${DATA} --k 4 --snapshot-every 2)

# knor_serve shares tools/cli_args.hpp, so every numeric flag rejects junk,
# negatives, zero (where the minimum is 1) and overflow with exit 2 — a
# silently-zero --clients once meant "no load at all, exit 0".
reject_step(serve_bad_clients ${KNOR_SERVE} closed --snapshot ${SNAP}
            --clients many)
reject_step(serve_negative_clients ${KNOR_SERVE} closed --snapshot ${SNAP}
            --clients -4)
reject_step(serve_zero_clients ${KNOR_SERVE} closed --snapshot ${SNAP}
            --clients 0)
reject_step(serve_overflow_clients ${KNOR_SERVE} closed --snapshot ${SNAP}
            --clients 9223372036854775808)
reject_step(serve_bad_arrival_rate ${KNOR_SERVE} open --snapshot ${SNAP}
            --arrival-rate fast)
reject_step(serve_negative_arrival_rate ${KNOR_SERVE} open --snapshot ${SNAP}
            --arrival-rate -100)
reject_step(serve_zero_arrival_rate ${KNOR_SERVE} open --snapshot ${SNAP}
            --arrival-rate 0)
reject_step(serve_overflow_arrival_rate ${KNOR_SERVE} open --snapshot ${SNAP}
            --arrival-rate 1e999999)
reject_step(serve_bad_batch_window ${KNOR_SERVE} closed --snapshot ${SNAP}
            --batch-window huge)
reject_step(serve_negative_batch_window ${KNOR_SERVE} closed
            --snapshot ${SNAP} --batch-window -1)
reject_step(serve_zero_batch_window ${KNOR_SERVE} closed --snapshot ${SNAP}
            --batch-window 0)
reject_step(serve_overflow_batch_window ${KNOR_SERVE} closed
            --snapshot ${SNAP} --batch-window 9223372036854775808)
reject_step(serve_bad_shed_policy ${KNOR_SERVE} closed --snapshot ${SNAP}
            --shed-policy drop)
reject_step(serve_bad_model_sources ${KNOR_SERVE} closed --snapshot ${SNAP}
            --centroids ${DATA})
reject_step(serve_direct_open ${KNOR_SERVE} open --snapshot ${SNAP} --direct)
reject_step(serve_bad_pipeline ${KNOR_SERVE} closed --snapshot ${SNAP}
            --pipeline deep)
reject_step(serve_zero_pipeline ${KNOR_SERVE} closed --snapshot ${SNAP}
            --pipeline 0)
reject_step(serve_negative_pipeline ${KNOR_SERVE} closed --snapshot ${SNAP}
            --pipeline -2)
reject_step(serve_pipeline_open ${KNOR_SERVE} open --snapshot ${SNAP}
            --pipeline 4)
reject_step(serve_pipeline_direct ${KNOR_SERVE} closed --snapshot ${SNAP}
            --direct --pipeline 4)

# A flag nobody consulted is a typo, not a no-op: --rows-per-request
# (real flag: --rows) once silently did nothing while the run "succeeded"
# with the default. Every tool rejects unknown flags after its verb has
# read everything it understands.
reject_step(serve_unknown_flag ${KNOR_SERVE} closed --snapshot ${SNAP}
            --rows-per-request 4)
reject_step(stream_unknown_flag ${KNOR_STREAM} assign --queries ${DATA}
            --snapshot ${SNAP} --row-cache 4)
reject_step(cli_unknown_flag ${KNOR_CLI} cluster --gen natural --n 2000
            --d 4 --k 3 --iterations 5)

# Observability exports (DESIGN.md §10): --metrics / --trace must produce
# valid JSON, and the "deterministic" half of a metrics document must be
# bit-identical across two runs at the same thread count. knor_bench
# --strip both validates the JSON (it parses strictly) and canonicalizes
# it by deleting the "timing" object.
function(strip_to out in)
  execute_process(COMMAND ${KNOR_BENCH} --strip ${in}
                  OUTPUT_FILE ${out} RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cli_smoke: --strip ${in} failed:\n${err}")
  endif()
endfunction()

run_step(metrics_run1 ${KNOR_CLI} cluster --data ${DATA} --mode im --k 4
         --iters 10 --threads 4 --metrics ${WORK_DIR}/m1.json
         --trace ${WORK_DIR}/t1.json)
run_step(metrics_run2 ${KNOR_CLI} cluster --data ${DATA} --mode im --k 4
         --iters 10 --threads 4 --metrics ${WORK_DIR}/m2.json)
foreach(f m1.json t1.json m2.json)
  if(NOT EXISTS ${WORK_DIR}/${f})
    message(FATAL_ERROR "cli_smoke: expected export ${f} was not written")
  endif()
endforeach()
strip_to(${WORK_DIR}/m1.stripped ${WORK_DIR}/m1.json)
strip_to(${WORK_DIR}/m2.stripped ${WORK_DIR}/m2.json)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/m1.stripped ${WORK_DIR}/m2.stripped
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "cli_smoke: deterministic metrics differ across two identical "
          "runs (strip-diff)")
endif()
message(STATUS "cli_smoke metrics_strip_diff: ok")

# The env-var spelling (KNOR_METRICS / KNOR_TRACE) is equivalent to the
# flags; SEM and stream-assign exports carry their subsystem's metrics.
run_step(metrics_env ${CMAKE_COMMAND} -E env
         KNOR_METRICS=${WORK_DIR}/menv.json ${KNOR_CLI} cluster
         --data ${DATA} --mode sem --k 4 --iters 5 --threads 2
         --page-kb 4 --row-cache-mb 1)
if(NOT EXISTS ${WORK_DIR}/menv.json)
  message(FATAL_ERROR "cli_smoke: KNOR_METRICS export was not written")
endif()
run_step(stream_assign_metrics ${KNOR_STREAM} assign --snapshot ${SNAP}
         --queries ${DATA} --batch-rows 256 --threads 2
         --metrics ${WORK_DIR}/assign_metrics.json)
strip_to(${WORK_DIR}/assign_metrics.stripped ${WORK_DIR}/assign_metrics.json)
run_step(serve_metrics ${KNOR_SERVE} closed --snapshot ${SNAP} --clients 2
         --requests 16 --rows 4 --threads 2
         --metrics ${WORK_DIR}/serve_metrics.json
         --trace ${WORK_DIR}/serve_trace.json)
strip_to(${WORK_DIR}/serve_metrics.stripped ${WORK_DIR}/serve_metrics.json)
# An unwritable export path must fail the command, never print success
# over a missing file.
reject_step(bad_metrics_path ${KNOR_CLI} cluster --data ${DATA} --mode im
            --k 2 --iters 2 --metrics ${WORK_DIR}/no_such_dir/m.json)

# KNOR_LOG / KNOR_LOG_FORMAT are strictly parsed, like KNOR_SIMD above.
reject_step(bad_log_env ${CMAKE_COMMAND} -E env KNOR_LOG=verbose
            ${KNOR_CLI} info ${DATA})
reject_step(bad_log_format_env ${CMAKE_COMMAND} -E env KNOR_LOG_FORMAT=fancy
            ${KNOR_CLI} info ${DATA})
reject_step(stream_bad_log_env ${CMAKE_COMMAND} -E env KNOR_LOG=verbose
            ${KNOR_STREAM} snapshot ${SNAP})
run_step(good_log_env ${CMAKE_COMMAND} -E env KNOR_LOG=debug
         KNOR_LOG_FORMAT=full ${KNOR_CLI} info ${DATA})

file(REMOVE_RECURSE ${WORK_DIR})
