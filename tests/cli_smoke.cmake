# CLI smoke test (run via ctest): generate a tiny dataset, inspect it, then
# cluster it with every mode (im / sem / dist) and check exit codes.
# Invoked as:
#   cmake -DKNOR_CLI=<path> -DWORK_DIR=<dir> -P cli_smoke.cmake
if(NOT DEFINED KNOR_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_smoke: KNOR_CLI and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(DATA ${WORK_DIR}/tiny.kmat)

function(run_step name)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cli_smoke step '${name}' failed (exit ${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "cli_smoke ${name}: ok")
endfunction()

run_step(generate ${KNOR_CLI} generate --out ${DATA} --dist natural
         --n 800 --d 6 --components 4 --seed 7)
run_step(info ${KNOR_CLI} info ${DATA})
run_step(cluster_im ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2)
run_step(cluster_sem ${KNOR_CLI} cluster --data ${DATA} --mode sem
         --k 4 --iters 10 --threads 2 --page-kb 4 --row-cache-mb 1)
run_step(cluster_dist ${KNOR_CLI} cluster --data ${DATA} --mode dist
         --k 4 --iters 10 --ranks 2 --threads-per-rank 2
         --net-latency-us 20 --net-gbps 1.25)

# A bad invocation must fail loudly, not silently succeed. Pass valid data
# so the only rejectable thing is the mode itself.
execute_process(COMMAND ${KNOR_CLI} cluster --data ${DATA} --mode bogus --k 2
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "cli_smoke: bogus mode unexpectedly succeeded")
endif()
message(STATUS "cli_smoke bad_mode: rejected as expected")

file(REMOVE_RECURSE ${WORK_DIR})
