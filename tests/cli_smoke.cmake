# CLI smoke test (run via ctest): generate a tiny dataset, inspect it, then
# cluster it with every mode (im / sem / dist) and check exit codes.
# Invoked as:
#   cmake -DKNOR_CLI=<path> -DWORK_DIR=<dir> -P cli_smoke.cmake
if(NOT DEFINED KNOR_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_smoke: KNOR_CLI and WORK_DIR must be defined")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
set(DATA ${WORK_DIR}/tiny.kmat)

function(run_step name)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cli_smoke step '${name}' failed (exit ${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "cli_smoke ${name}: ok")
endfunction()

run_step(generate ${KNOR_CLI} generate --out ${DATA} --dist natural
         --n 800 --d 6 --components 4 --seed 7)
run_step(info ${KNOR_CLI} info ${DATA})
run_step(cluster_im ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2)
# Scheduler controls: explicit thread count, pinning off, every policy, and
# an explicit task size, all plumbed through to the work-stealing scheduler.
run_step(cluster_im_unbound ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 3 --numa-bind off --task-size 128)
run_step(cluster_im_fifo ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 3 --sched fifo)
run_step(cluster_im_static ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 3 --sched static --numa-bind on)
# SIMD kernel ISA plumbing: explicit scalar (the legacy-bit-exact path),
# auto, and a vector ISA (clamps down gracefully on CPUs without it).
run_step(cluster_im_simd_scalar ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2 --simd scalar)
run_step(cluster_im_simd_auto ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2 --simd auto)
run_step(cluster_im_simd_avx2 ${KNOR_CLI} cluster --data ${DATA} --mode im
         --k 4 --iters 10 --threads 2 --simd avx2)
run_step(cluster_sem ${KNOR_CLI} cluster --data ${DATA} --mode sem
         --k 4 --iters 10 --threads 2 --page-kb 4 --row-cache-mb 1)
run_step(cluster_sem_sched ${KNOR_CLI} cluster --data ${DATA} --mode sem
         --k 4 --iters 10 --threads 2 --numa-bind off --sched fifo
         --page-kb 4 --row-cache-mb 1)
run_step(cluster_dist ${KNOR_CLI} cluster --data ${DATA} --mode dist
         --k 4 --iters 10 --ranks 2 --threads-per-rank 2
         --net-latency-us 20 --net-gbps 1.25)
run_step(cluster_dist_sched ${KNOR_CLI} cluster --data ${DATA} --mode dist
         --k 4 --iters 10 --ranks 2 --threads-per-rank 2 --sched static
         --numa-bind off)

# A bad invocation must fail loudly, not silently succeed. Pass valid data
# so the only rejectable thing is the flag under test.
function(reject_step name)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "cli_smoke: ${name} unexpectedly succeeded")
  endif()
  message(STATUS "cli_smoke ${name}: rejected as expected")
endfunction()

reject_step(bad_mode ${KNOR_CLI} cluster --data ${DATA} --mode bogus --k 2)
reject_step(bad_numa_bind ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
            --numa-bind sideways)
reject_step(bad_sched ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
            --sched lottery)
reject_step(bad_simd ${KNOR_CLI} cluster --data ${DATA} --mode im --k 2
            --simd quantum)

file(REMOVE_RECURSE ${WORK_DIR})
