// Fuzzes the dist::FaultPlan CLI grammar (crash@I:rN, leave/join, slow,
// flaky, seed=S; ';' or ',' separated). Contract: parse either returns a
// plan that passes validate() and describes itself, or throws
// std::invalid_argument — arbitrary bytes never crash it.
#include <exception>
#include <string>

#include "dist/fault.hpp"
#include "fuzz_target.hpp"

KNOR_FUZZ_TARGET(fault_plan) {
  if (size > knor::fuzz::kMaxInputBytes) return;
  const std::string spec = knor::fuzz::as_string(data, size);
  try {
    const knor::dist::FaultPlan plan = knor::dist::FaultPlan::parse(spec);
    plan.validate();  // parse() promises its output already validates
    (void)plan.describe();
    (void)plan.crash_at(1, 0);
    (void)plan.straggler_multiplier(0);
  } catch (const std::exception&) {
  }
}
