// Fuzzes sem::load_checkpoint — the KNORCKP1/KNORCKP2 loader, including
// the checksum, truncation, and hostile-size-field paths hardened in
// src/sem/checkpoint.cpp. Contract: any byte stream either loads or
// throws; it never crashes and never allocates beyond the file size.
#include <exception>

#include "fuzz_target.hpp"
#include "sem/checkpoint.hpp"

KNOR_FUZZ_TARGET(checkpoint) {
  if (size > knor::fuzz::kMaxInputBytes) return;
  const std::string path =
      knor::fuzz::scratch_file(data, size, "input.ckpt");
  try {
    const knor::sem::Checkpoint ckpt = knor::sem::load_checkpoint(path);
    (void)ckpt.n();
  } catch (const std::exception&) {
    // Rejection is the expected outcome for most inputs.
  }
  knor::sem::checkpoint_exists(path);  // must never throw
}
