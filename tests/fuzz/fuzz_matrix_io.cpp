// Fuzzes the .kmat header + row reader (src/data/matrix_io.cpp): bad
// magic, truncated header/body, d == 0, element-size mismatch, and the
// hostile n/d fields that used to wrap the size_t body product.
#include <exception>

#include "common/types.hpp"
#include "data/matrix_io.hpp"
#include "fuzz_target.hpp"

KNOR_FUZZ_TARGET(matrix_io) {
  if (size > knor::fuzz::kMaxInputBytes) return;
  const std::string path =
      knor::fuzz::scratch_file(data, size, "input.kmat");
  try {
    const knor::data::MatrixHeader h = knor::data::read_header(path);
    // Header accepted: the full read paths must then succeed too (the
    // body bound was already checked), and agree on shape.
    const knor::DenseMatrix m = knor::data::read_matrix(path);
    if (m.rows() != h.n || m.cols() != h.d) __builtin_trap();
    knor::data::RowReader reader(path);
    if (h.n > 0) {
      knor::DenseMatrix row(1, h.d);
      reader.read(0, 1,
                  knor::MutMatrixView(row.data(), 1, h.d));
    }
  } catch (const std::exception&) {
  }
}
