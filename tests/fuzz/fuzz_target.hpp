// Fuzz-target registry (DESIGN.md §14). Each hand-rolled parser gets one
// TU under tests/fuzz/ defining a target with KNOR_FUZZ_TARGET(name); the
// body must tolerate ARBITRARY bytes — reject with an exception, never
// crash, never allocate proportionally to a hostile header field.
//
// The same TUs serve two harnesses:
//   * fuzz_replay_test links all of them and replays every checked-in
//     corpus file (plus deterministic mutations) under plain ctest — this
//     is the path the ASan/UBSan CI job exercises on every push.
//   * With -DKNOR_FUZZ=ON and a libFuzzer-capable compiler, each TU also
//     links against fuzz_main.cpp into a standalone `fuzz_<name>` binary
//     for open-ended exploration (CI runs a short smoke of each).
//
// Registration is a static initializer, so target TUs must be compiled
// directly into their harness executable — archived in a static library
// the linker would drop them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace knor::fuzz {

/// Inputs above this size are ignored by every target: parsers under test
/// bound their allocations by input size, so this caps fuzz memory too.
inline constexpr std::size_t kMaxInputBytes = 1 << 20;

using TargetFn = void (*)(const std::uint8_t* data, std::size_t size);

struct Target {
  const char* name;
  TargetFn fn;
};

/// All targets linked into this binary, in registration order.
std::vector<Target>& registry();

struct Registrar {
  Registrar(const char* name, TargetFn fn);
};

inline std::string_view as_view(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

inline std::string as_string(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

/// Write `data` to a per-process scratch file named after `tag` and return
/// its path — for parsers that only consume files. The file is reused
/// across calls, so the hot fuzz loop does one write + one parse.
std::string scratch_file(const std::uint8_t* data, std::size_t size,
                         const char* tag);

}  // namespace knor::fuzz

/// KNOR_FUZZ_TARGET(name) { ... } defines and self-registers a target.
#define KNOR_FUZZ_TARGET(name)                                              \
  static void knor_fuzz_##name(const std::uint8_t* data, std::size_t size); \
  static const ::knor::fuzz::Registrar knor_fuzz_reg_##name(                \
      #name, &knor_fuzz_##name);                                            \
  static void knor_fuzz_##name(const std::uint8_t* data, std::size_t size)
