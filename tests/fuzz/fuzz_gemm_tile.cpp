// Fuzzes --gemm-tile parsing (core/parallel_lloyd.cpp): "auto" or RxC with
// strictly positive whole integers, everything else rejected. Checks the
// two entry points agree (parse_gemm_tile fails <=> the _or_throw variant
// throws) and that an accepted tile survives resolve_gemm_tile.
#include <exception>
#include <string>

#include "core/kmeans_types.hpp"
#include "fuzz_target.hpp"

KNOR_FUZZ_TARGET(gemm_tile) {
  if (size > knor::fuzz::kMaxInputBytes) return;
  const std::string name = knor::fuzz::as_string(data, size);
  knor::GemmTile tile;
  const bool ok = knor::parse_gemm_tile(name, &tile);
  bool threw = false;
  try {
    (void)knor::parse_gemm_tile_or_throw(name, "--gemm-tile");
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  if (ok == threw) __builtin_trap();  // the two entry points disagreed
  if (ok) {
    const knor::GemmTile r = knor::resolve_gemm_tile(tile, 1024, 8);
    if (r.rows == 0 || r.cols == 0) __builtin_trap();
  }
}
