// Fuzzes tools/cli_args.hpp — the shared strict --flag parser behind
// every knor tool. Input bytes are split on '\n' into argv tokens.
// Contract: any token stream either parses or reaches the fail handler
// (which the tools turn into usage + exit 2); it never returns a silently
// mangled value and never crashes.
#include <exception>
#include <string>
#include <vector>

#include "fuzz_target.hpp"
#include "tools/cli_args.hpp"

namespace {
/// Stand-in for the tools' usage()-and-exit handler: must not return.
struct ParseRejected : std::exception {};
[[noreturn]] void reject(const std::string&) { throw ParseRejected{}; }
}  // namespace

KNOR_FUZZ_TARGET(cli_args) {
  if (size > knor::fuzz::kMaxInputBytes) return;
  std::vector<std::string> tokens{"fuzz_cli"};
  std::string cur;
  for (std::size_t i = 0; i < size && tokens.size() < 64; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(cur);
      cur.clear();
    } else if (c != '\0') {
      cur += c;
    }
  }
  if (!cur.empty() && tokens.size() < 64) tokens.push_back(cur);
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& t : tokens) argv.push_back(t.data());

  try {
    const knor::tools::Args args(static_cast<int>(argv.size()), argv.data(),
                                 1, &reject);
    (void)args.has("verbose");
    (void)args.str("out", "results.json");
    (void)args.num("iters", 20);
    (void)args.num_min("rows-per-request", 1, 1);
    (void)args.real("tolerance", 1e-6);
    const knor::Options opts = knor::tools::engine_options_from(args);
    (void)opts;
  } catch (const ParseRejected&) {
  } catch (const std::exception&) {
    // parse_isa_or_throw / gemm-tile style rejections
  }
}
