// libFuzzer entry point: each fuzz_<name> binary is fuzz_main.cpp plus
// fuzz_registry.cpp plus exactly ONE target TU, so the registry holds one
// entry. Built only under -DKNOR_FUZZ=ON with a libFuzzer-capable
// compiler; the always-on ctest path is fuzz_replay_test.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fuzz_target.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto& targets = knor::fuzz::registry();
  if (targets.size() != 1) {
    std::fprintf(stderr,
                 "fuzz_main: expected exactly 1 registered target, got %zu\n",
                 targets.size());
    std::abort();
  }
  targets[0].fn(data, size);
  return 0;
}
