// Fuzzes the bench-harness JSON parser with a round-trip property: any
// input that parses must dump to bytes that re-parse to an equal value —
// this is exactly what makes `knor_bench --strip` determinism diffs
// trustworthy (DESIGN.md §6).
#include <exception>
#include <string>

#include "fuzz_target.hpp"
#include "harness/json.hpp"

KNOR_FUZZ_TARGET(bench_json) {
  if (size > knor::fuzz::kMaxInputBytes) return;
  const std::string text = knor::fuzz::as_string(data, size);
  std::string error;
  const knor::bench::Json v = knor::bench::Json::parse(text, &error);
  if (!error.empty()) return;  // rejected, fine
  const std::string compact = v.dump(0);
  const std::string pretty = v.dump(2);
  std::string err2;
  const knor::bench::Json v2 = knor::bench::Json::parse(compact, &err2);
  if (!err2.empty() || v2 != v) __builtin_trap();
  const knor::bench::Json v3 = knor::bench::Json::parse(pretty, &err2);
  if (!err2.empty() || v3 != v) __builtin_trap();
}
