#include "fuzz_target.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace knor::fuzz {

std::vector<Target>& registry() {
  static std::vector<Target> targets;
  return targets;
}

Registrar::Registrar(const char* name, TargetFn fn) {
  registry().push_back({name, fn});
}

std::string scratch_file(const std::uint8_t* data, std::size_t size,
                         const char* tag) {
  static const std::string dir = [] {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "knor_fuzz_XXXXXX")
                           .string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::perror("knor_fuzz: mkdtemp");
      std::abort();
    }
    return tmpl;
  }();
  const std::string path = dir + "/" + tag;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::perror("knor_fuzz: fopen scratch");
    std::abort();
  }
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    std::fclose(f);
    std::perror("knor_fuzz: fwrite scratch");
    std::abort();
  }
  std::fclose(f);
  return path;
}

}  // namespace knor::fuzz
