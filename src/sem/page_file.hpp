// Page-granular access to an on-disk .kmat matrix — the "SSD array" of the
// SEM substrate (SAFS-lite, DESIGN.md §1).
//
// Mirrors the paper's FlashGraph page_row design (§6.1): a row's location on
// disk is *computed* (header + r * row_bytes), so no in-memory index of row
// positions is needed — the O(n) saving that lets knors scale.
//
// An optional SSD cost model (latency per request + bandwidth) lets benches
// reproduce I/O-bound behaviour on a local filesystem whose page cache would
// otherwise hide device latency. Tests leave it disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace knor::sem {

struct SsdCostModel {
  std::uint32_t latency_us = 0;  ///< charged per read request (0 = off)
  double gigabytes_per_sec = 0;  ///< charged per byte (0 = off)
  bool enabled() const { return latency_us > 0 || gigabytes_per_sec > 0; }
};

class PageFile {
 public:
  /// Open a .kmat file for page reads. Throws on malformed files.
  PageFile(const std::string& path, std::size_t page_size = 4096,
           SsdCostModel cost = {});
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  index_t n() const { return n_; }
  index_t d() const { return d_; }
  std::size_t page_size() const { return page_size_; }
  std::size_t row_bytes() const { return row_bytes_; }
  std::uint64_t num_pages() const { return num_pages_; }

  /// Byte offset of row r in the file (computed, never stored).
  std::uint64_t row_offset(index_t r) const {
    return header_bytes_ + static_cast<std::uint64_t>(r) * row_bytes_;
  }
  /// First and last page touched by row r.
  std::uint64_t first_page_of_row(index_t r) const {
    return row_offset(r) / page_size_;
  }
  std::uint64_t last_page_of_row(index_t r) const {
    return (row_offset(r) + row_bytes_ - 1) / page_size_;
  }

  /// Read `count` pages starting at `first_page` into buf (count*page_size
  /// bytes; the final page is zero-padded past EOF). One pread — callers
  /// coalesce adjacent pages into extents to model SAFS request merging.
  /// Thread-safe. Returns bytes read from the device.
  std::size_t read_pages(std::uint64_t first_page, std::uint32_t count,
                         unsigned char* buf);

  /// Device-level counters (monotonic).
  std::uint64_t bytes_read() const { return bytes_read_.load(); }
  std::uint64_t read_requests() const { return read_requests_.load(); }
  void reset_stats() {
    bytes_read_ = 0;
    read_requests_ = 0;
  }

 private:
  int fd_ = -1;
  index_t n_ = 0;
  index_t d_ = 0;
  std::size_t page_size_;
  std::size_t row_bytes_ = 0;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t num_pages_ = 0;
  std::uint64_t header_bytes_ = 0;
  SsdCostModel cost_;
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> read_requests_{0};
};

}  // namespace knor::sem
