#include "sem/row_cache.hpp"

#include <cstring>

namespace knor::sem {

RowCache::RowCache(std::size_t capacity_bytes, index_t d, int partitions)
    : d_(d) {
  if (partitions < 1) partitions = 1;
  const std::size_t row_bytes = static_cast<std::size_t>(d) * sizeof(value_t);
  std::size_t total_rows = row_bytes == 0 ? 0 : capacity_bytes / row_bytes;
  rows_per_part_ = total_rows / static_cast<std::size_t>(partitions);
  if (rows_per_part_ == 0) rows_per_part_ = 1;
  parts_.reserve(static_cast<std::size_t>(partitions));
  for (int p = 0; p < partitions; ++p) {
    auto part = std::make_unique<Partition>();
    part->staging_slab = AlignedBuffer<value_t>(rows_per_part_ * d_);
    part->slab = AlignedBuffer<value_t>(rows_per_part_ * d_);
    part->staging_index.reserve(rows_per_part_ * 2);
    part->index.reserve(rows_per_part_ * 2);
    parts_.push_back(std::move(part));
  }
}

void RowCache::set_update_interval(int interval) {
  update_interval_ = interval < 1 ? 1 : interval;
  next_refresh_ = update_interval_;
}

RowCache::Mode RowCache::begin_iteration(int iter) {
  refreshing_ = iter == next_refresh_;
  if (refreshing_) {
    // Exponential back-off of refreshes: I, 2I, 4I, ...
    next_refresh_ *= 2;
    for (auto& p : parts_) p->staging_index.clear();
  }
  return refreshing_ ? Mode::kRefresh : Mode::kStatic;
}

const value_t* RowCache::lookup(int part, index_t r) {
  Partition& p = *parts_[static_cast<std::size_t>(part)];
  const auto it = p.index.find(r);
  if (it == p.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return p.slab.data() + it->second * d_;
}

void RowCache::offer(int part, index_t r, const value_t* row_data) {
  if (!refreshing_) return;
  Partition& p = *parts_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.staging_mu);
  if (p.staging_index.size() >= rows_per_part_) return;  // budget exhausted
  const auto [it, inserted] = p.staging_index.try_emplace(
      r, p.staging_index.size());
  if (!inserted) return;
  std::memcpy(p.staging_slab.data() + it->second * d_, row_data,
              static_cast<std::size_t>(d_) * sizeof(value_t));
}

void RowCache::publish() {
  if (!refreshing_) return;
  for (auto& p : parts_) {
    std::swap(p->index, p->staging_index);
    std::swap(p->slab, p->staging_slab);
    p->staging_index.clear();
  }
  refreshing_ = false;
}

std::size_t RowCache::resident_rows() const {
  std::size_t total = 0;
  for (const auto& p : parts_) total += p->index.size();
  return total;
}

}  // namespace knor::sem
