#include "sem/sem_kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/logger.hpp"
#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/local_centroids.hpp"
#include "core/mti.hpp"
#include "core/run_metrics.hpp"
#include "numa/partitioner.hpp"
#include "core/chunk_accum.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sched/scheduler.hpp"
#include "sem/checkpoint.hpp"
#include "sem/io_engine.hpp"
#include "sem/page_cache.hpp"
#include "sem/row_cache.hpp"

namespace knor::sem {

std::uint64_t SemStats::total_requested() const {
  std::uint64_t total = 0;
  for (const auto& it : per_iter) total += it.bytes_requested;
  return total;
}

std::uint64_t SemStats::total_read() const {
  std::uint64_t total = 0;
  for (const auto& it : per_iter) total += it.bytes_read;
  return total;
}

std::uint64_t SemStats::total_device_requests() const {
  std::uint64_t total = 0;
  for (const auto& it : per_iter) total += it.device_requests;
  return total;
}

namespace {

struct alignas(kCacheLine) SemPerThread {
  Counters counters;
  std::uint64_t changed = 0;
  std::uint64_t active = 0;
  std::uint64_t rc_hits = 0;
};

DenseMatrix sem_init_centroids(PageFile& file, IoEngine& engine,
                               const Options& opts) {
  switch (opts.init) {
    case Init::kProvided: {
      if (opts.initial_centroids.rows() != static_cast<index_t>(opts.k) ||
          opts.initial_centroids.cols() != file.d())
        throw std::invalid_argument(
            "sem::kmeans: provided centroids shape mismatch");
      return opts.initial_centroids;
    }
    case Init::kForgy: {
      if (static_cast<index_t>(opts.k) > file.n())
        throw std::invalid_argument("sem::kmeans: k > n");
      auto rows = sample_rows(file.n(), opts.k, opts.seed);
      // fetch_rows wants ascending row ids; remember the permutation.
      std::vector<std::size_t> order(rows.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) { return rows[a] < rows[b]; });
      std::vector<index_t> sorted(rows.size());
      for (std::size_t i = 0; i < order.size(); ++i)
        sorted[i] = rows[order[i]];
      DenseMatrix fetched(static_cast<index_t>(opts.k), file.d());
      engine.fetch_rows(sorted, fetched.data());
      DenseMatrix centroids(static_cast<index_t>(opts.k), file.d());
      for (std::size_t i = 0; i < order.size(); ++i)
        std::memcpy(centroids.row(static_cast<index_t>(order[i])),
                    fetched.row(static_cast<index_t>(i)),
                    file.d() * sizeof(value_t));
      return centroids;
    }
    default:
      throw std::invalid_argument(
          "sem::kmeans: init must be kForgy or kProvided");
  }
}

}  // namespace

Result kmeans(const std::string& path, const Options& opts,
              const SemOptions& sem_opts, SemStats* stats) {
  // Per-run registry slice (DESIGN.md §10), diffed around the whole run.
  obs::Registry& reg = obs::Registry::global();
  const obs::Snapshot obs_before = reg.snapshot();
  // Demand-side I/O wait as seen by one worker: each blocking fetch_rows
  // call is one sample. Timing-class, like every latency.
  obs::Histogram& io_wait_us =
      reg.histogram("sem.io_wait_us", obs::Det::kTiming);
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  // MTI bookkeeping below is in TRUE distances (kernels return squared).
  const auto edist = [&K](const value_t* a, const value_t* b, index_t dim) {
    return std::sqrt(K.dist_sq(a, b, dim));
  };
  PageFile file(path, sem_opts.page_size, sem_opts.ssd);
  const index_t n = file.n();
  const index_t d = file.d();
  const int k = opts.k;
  if (k < 1) throw std::invalid_argument("sem::kmeans: k < 1");

  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();

  PageCache page_cache(sem_opts.page_cache_bytes, sem_opts.page_size, T);
  IoEngine engine(file, page_cache, sem_opts.io_threads,
                  sem_opts.merge_gap_pages);
  const bool use_rc = sem_opts.row_cache_enabled &&
                      sem_opts.row_cache_bytes > 0;
  RowCache row_cache(use_rc ? sem_opts.row_cache_bytes : 1, d, T);
  row_cache.set_update_interval(sem_opts.cache_update_interval);

  ScopedAlloc mem_pc("sem-page-cache",
                     page_cache.capacity_pages() * sem_opts.page_size);
  ScopedAlloc mem_rc("sem-row-cache",
                     use_rc ? row_cache.capacity_rows() * d * sizeof(value_t)
                            : 0);

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  ScopedAlloc mem_assign("assignments",
                         res.assignments.size() * sizeof(cluster_t));

  // Resume from a lightweight checkpoint when requested (recovery path of
  // FlashGraph-style failure tolerance). Falls through to a fresh start
  // when no checkpoint exists yet.
  Checkpoint restored;
  bool resumed = false;
  if (sem_opts.resume && !sem_opts.checkpoint_path.empty() &&
      checkpoint_exists(sem_opts.checkpoint_path)) {
    restored = load_checkpoint(sem_opts.checkpoint_path);
    if (restored.n() != n || restored.k() != k ||
        restored.centroids.cols() != d)
      throw std::runtime_error(
          "sem::kmeans: checkpoint shape does not match dataset/options");
    if (opts.prune && restored.upper_bounds.empty())
      throw std::runtime_error(
          "sem::kmeans: checkpoint lacks MTI state but pruning is on");
    resumed = true;
  }

  DenseMatrix cur = resumed ? std::move(restored.centroids)
                            : sem_init_centroids(file, engine, opts);
  DenseMatrix prev(static_cast<index_t>(k), d);
  // Padded centroid tile for the blocked full-scan kernel; repacked on the
  // driver thread before each iteration's super-phase.
  kernels::CentroidPack pack;
  if (resumed) res.assignments = std::move(restored.assignments);

  MtiState mti;
  if (opts.prune) {
    mti = MtiState(n, k);
    // prev == empty: drift 0. Restored bounds were pre-loosened against the
    // checkpointed centroids, so drift 0 keeps them valid.
    mti.prepare(DenseMatrix{}, cur, K);
    if (resumed)
      for (index_t i = 0; i < n; ++i)
        mti.set_ub(i, restored.upper_bounds[static_cast<std::size_t>(i)]);
  }
  ScopedAlloc mem_mti("mti-state", opts.prune ? mti.bytes() : 0);

  // Persistent centroid accumulators (sums/counts), updated by deltas.
  DenseMatrix sums(static_cast<index_t>(k), d);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(k), 0);
  if (resumed && !restored.sums.empty()) {
    sums = std::move(restored.sums);
    counts = std::move(restored.counts);
  }
  const int start_iter = resumed ? static_cast<int>(restored.iteration) : 0;

  numa::Partitioner parts(n, T, topo);
  sched::Scheduler sched(T, topo, /*bind=*/opts.numa_bind, opts.sched);
  const index_t task_size =
      sched::Scheduler::resolve_task_size(n, opts.task_size);
  const auto chunks =
      static_cast<std::size_t>(sched::Scheduler::num_chunks(n, task_size));

  // Per-chunk membership deltas, applied to the persistent sums in chunk
  // order: like knori, the accumulation is keyed to the (n, task_size)
  // chunk grid rather than to threads, so knors results are bitwise
  // invariant to steal order and thread count (DESIGN.md §7). I/O-
  // completion work stays on the same queues: a worker that finishes its
  // node's chunks steals I/O-feeding chunks from the cheapest remote node.
  ChunkAccum<SignedCentroids> deltas(chunks, k, d);
  std::vector<SemPerThread> per_thread(static_cast<std::size_t>(T));

  const index_t batch_rows =
      sem_opts.io_batch_rows == 0 ? 2048 : sem_opts.io_batch_rows;

  // Per-iteration baselines for the device/engine monotonic counters.
  engine.reset_stats();
  file.reset_stats();
  std::uint64_t last_requested = 0;
  std::uint64_t last_read = 0;
  std::uint64_t last_reqs = 0;

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));
  bool refresh_mode = false;

  // Assign + accumulate for one fetched (or cached) row; `chunk` selects
  // the deterministic accumulator slot of the task being processed.
  const auto process_row = [&](int tid, std::uint32_t chunk, index_t r,
                               const value_t* v) {
    auto& pt = per_thread[static_cast<std::size_t>(tid)];
    const cluster_t a = res.assignments[r];
    cluster_t best;
    value_t best_d;
    if (opts.prune && a != kInvalidCluster) {
      const value_t loosened = mti.ub(r) + mti.drift(a);
      best_d = edist(v, cur.row(a), d);
      ++pt.counters.dist_computations;
      best = a;
      for (int c = 0; c < k; ++c) {
        if (static_cast<cluster_t>(c) == a) continue;
        if (loosened <=
            value_t(0.5) * mti.c2c(a, static_cast<cluster_t>(c))) {
          ++pt.counters.clause2_skips;
          continue;
        }
        if (best_d <=
            value_t(0.5) * mti.c2c(best, static_cast<cluster_t>(c))) {
          ++pt.counters.clause3_skips;
          continue;
        }
        const value_t dc = edist(v, cur.row(static_cast<index_t>(c)), d);
        ++pt.counters.dist_computations;
        if (dc < best_d) {
          best_d = dc;
          best = static_cast<cluster_t>(c);
        }
      }
    } else {
      value_t best_sq = 0;
      best = K.nearest_blocked(v, pack, &best_sq);
      best_d = std::sqrt(best_sq);  // the MTI upper bound is a true distance
      pt.counters.dist_computations += static_cast<std::uint64_t>(k);
    }
    if (opts.prune) mti.set_ub(r, best_d);
    if (a == kInvalidCluster) {
      deltas.touch(chunk).add(best, v);
      ++pt.changed;
    } else if (best != a) {
      auto& delta = deltas.touch(chunk);
      delta.sub(a, v);
      delta.add(best, v);
      ++pt.changed;
    }
    res.assignments[r] = best;
  };

  const auto worker = [&](int tid) {
    auto& pt = per_thread[static_cast<std::size_t>(tid)];
    pt.changed = 0;
    pt.active = 0;
    pt.rc_hits = 0;

    std::vector<index_t> needed;
    std::vector<index_t> to_fetch;
    std::vector<index_t> fetch_now, fetch_next;
    DenseMatrix buf_now(batch_rows, d), buf_next(batch_rows, d);

    sched::Task task;
    while (sched.next_chunk(tid, task)) {
      // Pass 1 — no data access: clause 1 decides which rows need I/O.
      needed.clear();
      for (index_t r = task.begin; r < task.end; ++r) {
        const cluster_t a = res.assignments[r];
        if (opts.prune && a != kInvalidCluster) {
          const value_t loosened = mti.ub(r) + mti.drift(a);
          if (mti.clause1(a, loosened)) {
            mti.set_ub(r, loosened);
            ++pt.counters.clause1_skips;
            continue;  // assignment provably unchanged: no I/O, no compute
          }
        }
        needed.push_back(r);
      }
      pt.active += needed.size();

      // Row-cache pass: serve hits immediately, queue the rest.
      to_fetch.clear();
      for (index_t r : needed) {
        const int home = parts.thread_of_row(r);
        const value_t* cached = use_rc ? row_cache.lookup(home, r) : nullptr;
        if (cached != nullptr) {
          ++pt.rc_hits;
          process_row(tid, task.chunk, r, cached);
          if (refresh_mode) row_cache.offer(home, r, cached);
        } else {
          to_fetch.push_back(r);
        }
      }

      // Double-buffered fetch: prefetch batch i+1 while processing batch i.
      std::size_t pos = 0;
      const auto take_batch = [&](std::vector<index_t>& dst) {
        dst.clear();
        const std::size_t end =
            std::min(to_fetch.size(), pos + static_cast<std::size_t>(batch_rows));
        dst.assign(to_fetch.begin() + static_cast<std::ptrdiff_t>(pos),
                   to_fetch.begin() + static_cast<std::ptrdiff_t>(end));
        pos = end;
      };
      take_batch(fetch_now);
      while (!fetch_now.empty()) {
        take_batch(fetch_next);
        IoEngine::Ticket ticket;
        if (!fetch_next.empty()) ticket = engine.prefetch(fetch_next);
        {
          const std::uint64_t t0 = obs::Tracer::now_us();
          engine.fetch_rows(fetch_now, buf_now.data());
          io_wait_us.record(obs::Tracer::now_us() - t0);
        }
        for (std::size_t i = 0; i < fetch_now.size(); ++i) {
          const index_t r = fetch_now[i];
          const value_t* v = buf_now.row(static_cast<index_t>(i));
          process_row(tid, task.chunk, r, v);
          if (refresh_mode && use_rc)
            row_cache.offer(parts.thread_of_row(r), r, v);
        }
        ticket.wait();
        std::swap(fetch_now, fetch_next);
      }
    }
  };

  for (int it = start_iter; it < opts.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);
    refresh_mode = use_rc && row_cache.begin_iteration(it + 1) ==
                                 RowCache::Mode::kRefresh;
    sched.begin_chunks(n, task_size, &parts);
    const std::uint64_t rc_hits_before = row_cache.hits();
    {
      obs::Span span_assign("assign");
      sched.run(worker);
    }
    if (refresh_mode) row_cache.publish();
    obs::Span span_update("update");

    // Apply the dirty chunk deltas to the persistent sums in ascending
    // chunk order (fixed, thread-count-independent association), then
    // recompute means.
    for (std::size_t c = 0; c < chunks; ++c)
      if (deltas.dirty(c)) deltas.slot(c).apply_to(sums.data(), counts.data());
    deltas.next_iteration();
    std::memcpy(prev.data(), cur.data(), cur.size() * sizeof(value_t));
    res.cluster_sizes.assign(static_cast<std::size_t>(k), 0);
    for (int c = 0; c < k; ++c) {
      const std::int64_t count = counts[static_cast<std::size_t>(c)];
      res.cluster_sizes[static_cast<std::size_t>(c)] =
          count > 0 ? static_cast<index_t>(count) : 0;
      if (count <= 0) continue;  // empty cluster: keep previous centroid
      value_t* dst = cur.row(static_cast<index_t>(c));
      const value_t* s = sums.row(static_cast<index_t>(c));
      const value_t inv = static_cast<value_t>(1.0) / static_cast<value_t>(count);
      for (index_t j = 0; j < d; ++j) dst[j] = s[j] * inv;
    }
    if (opts.prune) mti.prepare(prev, cur, K);

    std::uint64_t changed = 0;
    if (stats != nullptr) {
      IterIo io;
      io.bytes_requested = engine.bytes_requested() - last_requested;
      io.bytes_read = file.bytes_read() - last_read;
      io.device_requests = file.read_requests() - last_reqs;
      io.row_cache_hits = row_cache.hits() - rc_hits_before;
      for (const auto& pt : per_thread) io.active_rows += pt.active;
      stats->per_iter.push_back(io);
    }
    last_requested = engine.bytes_requested();
    last_read = file.bytes_read();
    last_reqs = file.read_requests();
    for (const auto& pt : per_thread) changed += pt.changed;

    res.iter_times.record(timer.elapsed());
    ++res.iters;

    if (!sem_opts.checkpoint_path.empty() &&
        sem_opts.checkpoint_interval > 0 &&
        (it + 1) % sem_opts.checkpoint_interval == 0) {
      Checkpoint ckpt;
      ckpt.iteration = static_cast<std::uint64_t>(it + 1);
      ckpt.centroids = cur;
      ckpt.assignments = res.assignments;
      if (opts.prune) {
        // Store bounds pre-loosened against the *current* centroids so the
        // resume path can start with drift 0 and stay exact.
        ckpt.upper_bounds.resize(static_cast<std::size_t>(n));
        for (index_t i = 0; i < n; ++i)
          ckpt.upper_bounds[static_cast<std::size_t>(i)] =
              mti.ub(i) + mti.drift(res.assignments[i]);
      }
      ckpt.sums = sums;
      ckpt.counts = counts;
      save_checkpoint(sem_opts.checkpoint_path, ckpt);
    }

    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  // Steal statistics before the energy pass reuses the queues.
  const sched::StealStats steals = sched.total_stats();

  // Exact final energy: stream every row once (not counted in iteration
  // I/O statistics). Per-chunk partial energies summed in chunk order keep
  // the FP result thread-count independent like the centroid reduction.
  {
    obs::Span span_energy("energy");
    std::vector<double> chunk_energy(chunks, 0.0);
    sched.begin_chunks(n, task_size, &parts);
    sched.run([&](int tid) {
      DenseMatrix buf(batch_rows, d);
      std::vector<index_t> batch;
      sched::Task task;
      while (sched.next_chunk(tid, task)) {
        double e = 0.0;
        for (index_t begin = task.begin; begin < task.end;
             begin += batch_rows) {
          const index_t end = std::min(task.end, begin + batch_rows);
          batch.clear();
          for (index_t r = begin; r < end; ++r) batch.push_back(r);
          engine.fetch_rows(batch, buf.data());
          for (index_t r = begin; r < end; ++r)
            e += K.dist_sq(buf.row(r - begin), cur.row(res.assignments[r]),
                           d);
        }
        chunk_energy[task.chunk] = e;
      }
    });
    for (const double e : chunk_energy) res.energy += e;
  }

  for (const auto& pt : per_thread) res.counters += pt.counters;
  res.counters.tasks_own = steals.own;
  res.counters.tasks_same_node = steals.same_node;
  res.counters.tasks_remote_node = steals.remote_node;

  // Publish the run's SEM counters (classification per the SemStats
  // contract in sem_kmeans.hpp): demand-side request volume, row-cache
  // hits and clause-1 active-row counts are pure functions of
  // (data, opts); supply-side page traffic races on which worker faults a
  // shared page first, so page-cache hits/misses, device bytes and request
  // counts are timing-class.
  using obs::Det;
  std::uint64_t active_rows = 0;
  for (const auto& pt : per_thread) active_rows += pt.active;
  reg.counter("sem.bytes_requested", Det::kDeterministic)
      .add(engine.bytes_requested());
  reg.counter("sem.active_rows", Det::kDeterministic).add(active_rows);
  reg.counter("sem.row_cache_hits", Det::kDeterministic)
      .add(row_cache.hits());
  reg.counter("sem.bytes_read", Det::kTiming).add(file.bytes_read());
  reg.counter("sem.device_requests", Det::kTiming)
      .add(file.read_requests());
  reg.counter("sem.page_cache_hits", Det::kTiming).add(page_cache.hits());
  reg.counter("sem.page_cache_misses", Det::kTiming)
      .add(page_cache.misses());
  // Core counter parity (core/run_metrics.hpp): the SEM engine's distance
  // and pruning work must show up under the same core.* names as the
  // in-memory engines, so --metrics agrees with Result::counters here too.
  // This also covers the sched.tasks_* names from res.counters.
  knor::detail::publish_run_counters(res);
  res.metrics = obs::diff(obs_before, reg.snapshot());

  res.centroids = std::move(cur);
  return res;
}

}  // namespace knor::sem
