// Lightweight checkpointing for knors — the FlashGraph failure-tolerance
// feature the paper describes ("tolerant to in-memory failures, allowing
// recovery in SEM routines through lightweight checkpointing", §2; the
// evaluation disables it, and so do our benches).
//
// A checkpoint is exactly the SEM algorithm's O(n) in-memory state:
// iteration number, centroids, per-point assignments and MTI upper bounds.
// Row data is on disk already, so recovery is: load checkpoint, reopen the
// matrix file, continue from iteration+1.
//
// Format v2: 64-byte header {magic "KNORCKP2", u64 iter, u64 n, u64 k,
// u64 d, flag bytes 40=mti 41=sums 42=weights 43=dist, u64 FNV-1a content
// checksum at offset 48} + centroids (k*d value_t) + assignments
// (n cluster_t) + optional ubs (n value_t) + optional blocks below. The
// checksum covers the header (with the checksum field zeroed) and every
// payload byte in file order, so a bit-flipped or torn file is rejected at
// load instead of silently resuming from garbage; save flushes AND fsyncs
// before the atomic rename, making the rename actually crash-durable.
// Version-1 files (magic "KNORCKP1", no checksum, no dist block) still
// load unchanged.
//
// The streaming engine (src/stream/) reuses this module for its snapshots:
// a stream snapshot has n == 0 (no per-point state — the stream is
// unbounded) and carries a `weights` block (header byte 42: per-cluster
// decayed weights + row counts) instead of the SEM sums block.
//
// The distributed fault-tolerance layer (src/dist/, DESIGN.md §13) adds a
// `dist` block (header byte 43): u64 epoch, u64 world size, u64 live-node
// count, then the live node ids (i32 each) at save time. All optional
// blocks are independent, so every writer/reader combination interoperates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/dense_matrix.hpp"
#include "common/types.hpp"

namespace knor::sem {

struct Checkpoint {
  std::uint64_t iteration = 0;  ///< iterations fully completed
  DenseMatrix centroids;        ///< k x d
  std::vector<cluster_t> assignments;
  std::vector<value_t> upper_bounds;  ///< empty when MTI was off
  /// Persistent centroid accumulators (the SEM engine maintains sums/counts
  /// incrementally by membership deltas, so they are part of the state).
  DenseMatrix sums;                  ///< k x d (empty when not saved)
  std::vector<std::int64_t> counts;  ///< k (saved with sums OR weights)
  /// Streaming-engine state: per-cluster decayed batch weights (empty for
  /// SEM checkpoints). When non-empty, `counts` holds the total rows ever
  /// assigned per cluster and `iteration` counts ingested batches.
  std::vector<value_t> weights;  ///< k (empty when not saved)
  /// Distributed-run block (dist::ft_kmeans): recovery epoch, initial world
  /// size, and the live node ids at save time. Saved iff dist_nodes is
  /// non-empty; purely informational on load (re-sharding follows the
  /// recovering cluster's membership, not the saved one).
  std::uint64_t dist_epoch = 0;
  std::int32_t dist_world = 0;
  std::vector<std::int32_t> dist_nodes;

  index_t n() const { return assignments.size(); }
  int k() const { return static_cast<int>(centroids.rows()); }
};

/// Atomically (write-fsync-rename) persist a checkpoint in format v2.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Load and validate. Throws std::runtime_error on missing files, bad
/// magic, truncation, or (v2) a content-checksum mismatch.
Checkpoint load_checkpoint(const std::string& path);

/// True when `path` exists and carries a checkpoint magic (v1 or v2).
bool checkpoint_exists(const std::string& path);

}  // namespace knor::sem
