// Lightweight checkpointing for knors — the FlashGraph failure-tolerance
// feature the paper describes ("tolerant to in-memory failures, allowing
// recovery in SEM routines through lightweight checkpointing", §2; the
// evaluation disables it, and so do our benches).
//
// A checkpoint is exactly the SEM algorithm's O(n) in-memory state:
// iteration number, centroids, per-point assignments and MTI upper bounds.
// Row data is on disk already, so recovery is: load checkpoint, reopen the
// matrix file, continue from iteration+1.
//
// Format: 64-byte header {magic "KNORCKP1", u64 iter, u64 n, u64 k, u64 d,
// u8 has_mti} + centroids (k*d value_t) + assignments (n cluster_t) +
// optional ubs (n value_t), with a trailing CRC-less length check (a
// truncated file is rejected).
//
// The streaming engine (src/stream/) reuses this module for its snapshots:
// a stream snapshot has n == 0 (no per-point state — the stream is
// unbounded) and carries a `weights` block (header byte 42: per-cluster
// decayed weights + row counts) instead of the SEM sums block. Both blocks
// are optional and independent, so old files load unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/dense_matrix.hpp"
#include "common/types.hpp"

namespace knor::sem {

struct Checkpoint {
  std::uint64_t iteration = 0;  ///< iterations fully completed
  DenseMatrix centroids;        ///< k x d
  std::vector<cluster_t> assignments;
  std::vector<value_t> upper_bounds;  ///< empty when MTI was off
  /// Persistent centroid accumulators (the SEM engine maintains sums/counts
  /// incrementally by membership deltas, so they are part of the state).
  DenseMatrix sums;                  ///< k x d (empty when not saved)
  std::vector<std::int64_t> counts;  ///< k (saved with sums OR weights)
  /// Streaming-engine state: per-cluster decayed batch weights (empty for
  /// SEM checkpoints). When non-empty, `counts` holds the total rows ever
  /// assigned per cluster and `iteration` counts ingested batches.
  std::vector<value_t> weights;  ///< k (empty when not saved)

  index_t n() const { return assignments.size(); }
  int k() const { return static_cast<int>(centroids.rows()); }
};

/// Atomically (write-then-rename) persist a checkpoint.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Load and validate. Throws std::runtime_error on missing/corrupt files.
Checkpoint load_checkpoint(const std::string& path);

/// True when `path` exists and carries the checkpoint magic.
bool checkpoint_exists(const std::string& path);

}  // namespace knor::sem
