// knors — semi-external-memory k-means (paper §6).
//
// Row data stays on "disk" (a PageFile); in-memory state is O(n):
// assignments, MTI upper bounds and active flags. Each iteration decides,
// per row and *before any data access*, whether MTI clause 1 proves the
// assignment unchanged — in which case no I/O request is issued (the
// paper's key SEM insight). Rows that do need data are served from the
// lazily-updated row cache, then the page cache, then merged-extent reads
// from the device, with batch prefetch overlapping I/O and compute.
//
// Centroids are maintained incrementally: persistent global sums/counts
// receive per-thread deltas (join/leave) from points that changed
// membership, so unchanged points contribute neither I/O nor computation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/kmeans_types.hpp"
#include "sem/page_file.hpp"

namespace knor::sem {

/// knors configuration: I/O substrate sizes plus the paper's row-cache and
/// checkpoint knobs. Plain data; every field has an independent default.
struct SemOptions {
  std::size_t page_size = 4096;           ///< minimum device read (paper: 4KB)
  std::size_t page_cache_bytes = 4 << 20; ///< SAFS-style page cache budget
  std::size_t row_cache_bytes = 1 << 20;  ///< row cache budget (0 disables)
  bool row_cache_enabled = true;          ///< knors vs knors-- switch
  int cache_update_interval = 5;          ///< I_cache (refresh at I, 2I, 4I, ...)
  int io_threads = 1;                     ///< async staging threads
  index_t io_batch_rows = 2048;           ///< rows per prefetch batch
  std::uint32_t merge_gap_pages = 0;      ///< request-merge tolerance
  SsdCostModel ssd;                       ///< optional device cost model
  // FlashGraph-style lightweight checkpointing (§2 of the paper; the
  // evaluation — and our benches — run with it disabled).
  std::string checkpoint_path;            ///< empty = disabled
  int checkpoint_interval = 0;            ///< checkpoint every N iterations
  bool resume = false;                    ///< restart from checkpoint_path
};

/// Per-iteration I/O accounting (drives Figures 6 and 7).
struct IterIo {
  std::uint64_t bytes_requested = 0;  ///< row bytes the algorithm asked for
  std::uint64_t bytes_read = 0;       ///< bytes actually read from device
  std::uint64_t device_requests = 0;  ///< merged-extent reads issued
  std::uint64_t row_cache_hits = 0;
  std::uint64_t active_rows = 0;      ///< rows needing data this iteration
};

/// Whole-run I/O accounting: one IterIo per executed iteration.
struct SemStats {
  std::vector<IterIo> per_iter;
  /// Sum of bytes_requested over all iterations.
  std::uint64_t total_requested() const;
  /// Sum of bytes_read over all iterations.
  std::uint64_t total_read() const;
  /// Sum of device_requests over all iterations.
  std::uint64_t total_device_requests() const;
};

/// Run knors over the .kmat file at `path`. Same Options semantics as
/// knor::kmeans (opts.prune toggles MTI -> knors vs knors-). Restrictions:
/// init must be kForgy or kProvided (streaming k-means++ is future work).
///
/// Determinism: the clustering (assignments, centroids, iteration count)
/// and the *demand-side* I/O statistics (bytes_requested, active_rows,
/// row_cache_hits) are pure functions of (file contents, opts, sem_opts);
/// the *supply-side* counters (bytes_read, device_requests) may vary
/// slightly between runs because concurrent workers can race to fault the
/// same page (see DESIGN.md §6's stat/timing split).
Result kmeans(const std::string& path, const Options& opts,
              const SemOptions& sem_opts, SemStats* stats = nullptr);

}  // namespace knor::sem
