// Lazily-updated partitioned row cache (paper §6.2.2, Figure 3).
//
// Pins *active* rows (rows that needed I/O this iteration) in memory at row
// granularity — far more effective than a page cache for k-means, where MTI
// prunes rows near-randomly within pages (Figure 6).
//
// Laziness: the cache refreshes only at iterations I, 2I, 4I, 8I, ...
// (I = update_interval, paper default 5) and is static in between. The
// paper's justification: row activation patterns stabilize as centroids
// settle, so a stale cache still achieves near-100% hit rates (Figure 7)
// while costing almost no maintenance.
//
// Partitioning: one partition per compute thread, addressed by the row's
// *home* partition (the thread that owns the row's block), so a row always
// lands in the same partition regardless of which thread fetched it. In the
// common case (no work stealing) population is partition-private; a
// per-partition mutex covers the stealing case. Published-side lookups are
// read-only and unlocked: the published structures are immutable between
// publish() calls, which happen at single-threaded iteration boundaries.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"

namespace knor::sem {

class RowCache {
 public:
  /// `capacity_bytes` is split evenly over `partitions` (= compute threads).
  RowCache(std::size_t capacity_bytes, index_t d, int partitions);

  /// Mode of the current iteration.
  enum class Mode {
    kStatic,   ///< serve lookups; no population
    kRefresh,  ///< flush and repopulate from this iteration's active rows
  };

  /// Called once (single-threaded) at the start of iteration `iter`
  /// (1-based). Returns kRefresh on the exponential schedule
  /// {I, 2I, 4I, ...}, else kStatic. On kRefresh the staging side is
  /// cleared; the published side keeps serving lookups until publish().
  Mode begin_iteration(int iter);

  /// Read-only lookup in the published cache for row r, whose home
  /// partition is `part`. Returns the row's data or nullptr.
  const value_t* lookup(int part, index_t r);

  /// During a kRefresh iteration, offer an active row just fetched.
  /// Inserted while the partition has budget.
  void offer(int part, index_t r, const value_t* row_data);

  /// Publish the staged partitions (end of a kRefresh iteration,
  /// single-threaded).
  void publish();

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  void reset_stats() {
    hits_ = 0;
    misses_ = 0;
  }

  /// Rows currently resident (published side).
  std::size_t resident_rows() const;
  std::size_t capacity_rows() const { return rows_per_part_ * parts_.size(); }
  int update_interval() const { return update_interval_; }
  void set_update_interval(int interval);

 private:
  struct Partition {
    std::mutex staging_mu;
    // Staging side (written during refresh iterations).
    std::unordered_map<index_t, std::size_t> staging_index;
    AlignedBuffer<value_t> staging_slab;
    // Published side (read-only between publish() calls).
    std::unordered_map<index_t, std::size_t> index;
    AlignedBuffer<value_t> slab;
  };

  index_t d_;
  std::size_t rows_per_part_;
  int update_interval_ = 5;
  int next_refresh_ = 5;
  bool refreshing_ = false;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace knor::sem
