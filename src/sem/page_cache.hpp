// Partitioned clock page cache — the SAFS page-cache layer (§2, §6 of the
// paper): pins frequently touched pages in memory to reduce device reads.
//
// Pages hash to partitions; each partition is an independent clock (a.k.a.
// second-chance) cache behind its own lock, so concurrent compute and I/O
// threads rarely contend. Capacity is given in bytes and split evenly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace knor::sem {

class PageCache {
 public:
  PageCache(std::size_t capacity_bytes, std::size_t page_size,
            int partitions = 8);

  std::size_t page_size() const { return page_size_; }
  /// Total page slots across partitions.
  std::size_t capacity_pages() const { return capacity_pages_; }

  /// Copy page `page_id` into `out` if cached. Marks the page referenced.
  bool lookup(std::uint64_t page_id, unsigned char* out);
  /// True when the page is resident (no copy, still marks referenced).
  bool contains(std::uint64_t page_id);
  /// Insert (or refresh) a page; evicts via clock within the partition.
  void insert(std::uint64_t page_id, const unsigned char* data);
  /// Drop everything (used between bench configurations).
  void clear();

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  void reset_stats() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Partition {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::size_t> index;  // page -> slot
    std::vector<std::uint64_t> slot_page;  // slot -> page (UINT64_MAX free)
    std::vector<std::uint8_t> referenced;  // clock bits
    AlignedBuffer<unsigned char> frames;
    std::size_t hand = 0;
  };

  Partition& part_of(std::uint64_t page_id) {
    return *parts_[static_cast<std::size_t>(page_id) % parts_.size()];
  }

  std::size_t page_size_;
  std::size_t capacity_pages_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace knor::sem
