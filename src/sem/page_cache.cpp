#include "sem/page_cache.hpp"

#include <cstring>
#include <limits>

namespace knor::sem {
namespace {
constexpr std::uint64_t kFreeSlot = std::numeric_limits<std::uint64_t>::max();
}

PageCache::PageCache(std::size_t capacity_bytes, std::size_t page_size,
                     int partitions)
    : page_size_(page_size == 0 ? 4096 : page_size) {
  if (partitions < 1) partitions = 1;
  capacity_pages_ = capacity_bytes / page_size_;
  if (capacity_pages_ < static_cast<std::size_t>(partitions))
    capacity_pages_ = static_cast<std::size_t>(partitions);
  const std::size_t per_part =
      capacity_pages_ / static_cast<std::size_t>(partitions);
  parts_.reserve(static_cast<std::size_t>(partitions));
  for (int p = 0; p < partitions; ++p) {
    auto part = std::make_unique<Partition>();
    part->slot_page.assign(per_part, kFreeSlot);
    part->referenced.assign(per_part, 0);
    part->frames = AlignedBuffer<unsigned char>(per_part * page_size_);
    part->index.reserve(per_part * 2);
    parts_.push_back(std::move(part));
  }
  capacity_pages_ = per_part * static_cast<std::size_t>(partitions);
}

bool PageCache::lookup(std::uint64_t page_id, unsigned char* out) {
  Partition& part = part_of(page_id);
  std::lock_guard<std::mutex> lock(part.mu);
  const auto it = part.index.find(page_id);
  if (it == part.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  part.referenced[it->second] = 1;
  std::memcpy(out, part.frames.data() + it->second * page_size_, page_size_);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PageCache::contains(std::uint64_t page_id) {
  Partition& part = part_of(page_id);
  std::lock_guard<std::mutex> lock(part.mu);
  const auto it = part.index.find(page_id);
  if (it == part.index.end()) return false;
  part.referenced[it->second] = 1;
  return true;
}

void PageCache::insert(std::uint64_t page_id, const unsigned char* data) {
  Partition& part = part_of(page_id);
  std::lock_guard<std::mutex> lock(part.mu);
  auto it = part.index.find(page_id);
  if (it != part.index.end()) {
    std::memcpy(part.frames.data() + it->second * page_size_, data,
                page_size_);
    part.referenced[it->second] = 1;
    return;
  }
  // Clock eviction: advance the hand past referenced slots (clearing their
  // bit) until an unreferenced or free slot is found.
  const std::size_t slots = part.slot_page.size();
  std::size_t victim = part.hand;
  for (std::size_t step = 0; step < 2 * slots; ++step) {
    const std::size_t s = (part.hand + step) % slots;
    if (part.slot_page[s] == kFreeSlot || part.referenced[s] == 0) {
      victim = s;
      part.hand = (s + 1) % slots;
      break;
    }
    part.referenced[s] = 0;
  }
  if (part.slot_page[victim] != kFreeSlot)
    part.index.erase(part.slot_page[victim]);
  part.slot_page[victim] = page_id;
  part.referenced[victim] = 1;
  std::memcpy(part.frames.data() + victim * page_size_, data, page_size_);
  part.index[page_id] = victim;
}

void PageCache::clear() {
  for (auto& p : parts_) {
    std::lock_guard<std::mutex> lock(p->mu);
    p->index.clear();
    std::fill(p->slot_page.begin(), p->slot_page.end(), kFreeSlot);
    std::fill(p->referenced.begin(), p->referenced.end(), 0);
    p->hand = 0;
  }
}

}  // namespace knor::sem
