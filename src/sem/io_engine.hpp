// Asynchronous I/O engine with request merging — the FlashGraph/SAFS I/O
// layer of the SEM substrate.
//
// Responsibilities (paper §2 "FlashGraph ... merge I/O requests ... overlaps
// I/O with computation"):
//   * Request merging: a batch of row reads is translated to the set of
//     pages it touches; runs of pages within `merge_gap` of each other are
//     coalesced into single extent reads, amortizing device requests.
//   * Page cache integration: resident pages are served from PageCache;
//     only missing extents hit the device.
//   * Asynchrony: prefetch(rows) hands a batch to a dedicated I/O thread
//     which stages the pages into the cache while the compute thread works
//     on the previous batch; Ticket::wait() synchronizes.
//
// The engine never keeps per-row state — row -> page geometry is computed
// from the PageFile (the page_row design).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "sem/page_cache.hpp"
#include "sem/page_file.hpp"

namespace knor::sem {

class IoEngine {
 public:
  IoEngine(PageFile& file, PageCache& cache, int io_threads = 1,
           std::uint32_t merge_gap = 0);
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  /// Synchronously materialize rows `rows` (ascending) into `out`
  /// (rows.size() x d). Serves from the page cache; missing pages are read
  /// as merged extents and inserted into the cache.
  void fetch_rows(const std::vector<index_t>& rows, value_t* out);

  /// Handle for an in-flight prefetch.
  class Ticket {
   public:
    Ticket() = default;
    /// Block until the batch's pages are staged in the page cache.
    void wait();

   private:
    friend class IoEngine;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// Asynchronously stage the pages of `rows` into the page cache.
  Ticket prefetch(std::vector<index_t> rows);

  /// Total bytes of row data callers asked for (the "requested" series of
  /// the paper's Figure 6).
  std::uint64_t bytes_requested() const { return bytes_requested_.load(); }
  void reset_stats() { bytes_requested_ = 0; }

 private:
  struct Request;

  /// Pages touched by `rows`, deduplicated & ascending.
  std::vector<std::uint64_t> pages_of(const std::vector<index_t>& rows) const;
  /// Load missing pages (merged extents) into the cache.
  void stage_pages(const std::vector<std::uint64_t>& pages);
  void io_loop();

  PageFile& file_;
  PageCache& cache_;
  std::uint32_t merge_gap_;
  std::atomic<std::uint64_t> bytes_requested_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stop_ = false;
  std::vector<std::thread> io_threads_;
};

}  // namespace knor::sem
