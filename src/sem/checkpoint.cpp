#include "sem/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

namespace knor::sem {
namespace {

constexpr char kCkptMagic[8] = {'K', 'N', 'O', 'R', 'C', 'K', 'P', '1'};
constexpr std::size_t kCkptHeader = 64;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_all(std::FILE* f, const void* data, std::size_t bytes) {
  if (bytes > 0 && std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("checkpoint: write failed");
}

void read_all(std::FILE* f, void* data, std::size_t bytes,
              const char* what) {
  if (bytes > 0 && std::fread(data, 1, bytes, f) != bytes)
    throw std::runtime_error(std::string("checkpoint: truncated ") + what);
}

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) throw std::runtime_error("checkpoint: cannot open " + tmp);

    unsigned char header[kCkptHeader] = {};
    std::memcpy(header, kCkptMagic, sizeof(kCkptMagic));
    const std::uint64_t fields[4] = {
        ckpt.iteration, ckpt.assignments.size(),
        static_cast<std::uint64_t>(ckpt.centroids.rows()),
        static_cast<std::uint64_t>(ckpt.centroids.cols())};
    std::memcpy(header + 8, fields, sizeof(fields));
    header[40] = ckpt.upper_bounds.empty() ? 0 : 1;
    header[41] = ckpt.sums.empty() ? 0 : 1;
    header[42] = ckpt.weights.empty() ? 0 : 1;
    write_all(f.get(), header, sizeof(header));
    write_all(f.get(), ckpt.centroids.data(),
              ckpt.centroids.size() * sizeof(value_t));
    write_all(f.get(), ckpt.assignments.data(),
              ckpt.assignments.size() * sizeof(cluster_t));
    write_all(f.get(), ckpt.upper_bounds.data(),
              ckpt.upper_bounds.size() * sizeof(value_t));
    if (!ckpt.sums.empty()) {
      write_all(f.get(), ckpt.sums.data(),
                ckpt.sums.size() * sizeof(value_t));
      write_all(f.get(), ckpt.counts.data(),
                ckpt.counts.size() * sizeof(std::int64_t));
    }
    if (!ckpt.weights.empty()) {
      write_all(f.get(), ckpt.weights.data(),
                ckpt.weights.size() * sizeof(value_t));
      write_all(f.get(), ckpt.counts.data(),
                ckpt.counts.size() * sizeof(std::int64_t));
    }
    if (std::fflush(f.get()) != 0)
      throw std::runtime_error("checkpoint: flush failed");
  }
  std::filesystem::rename(tmp, path);
}

Checkpoint load_checkpoint(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("checkpoint: cannot open " + path);
  unsigned char header[kCkptHeader];
  read_all(f.get(), header, sizeof(header), "header");
  if (std::memcmp(header, kCkptMagic, sizeof(kCkptMagic)) != 0)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  std::uint64_t fields[4];
  std::memcpy(fields, header + 8, sizeof(fields));
  const bool has_mti = header[40] != 0;

  Checkpoint ckpt;
  ckpt.iteration = fields[0];
  const std::uint64_t n = fields[1];
  const auto k = static_cast<index_t>(fields[2]);
  const auto d = static_cast<index_t>(fields[3]);
  if (k == 0 || d == 0)
    throw std::runtime_error("checkpoint: degenerate shape in " + path);
  ckpt.centroids = DenseMatrix(k, d);
  read_all(f.get(), ckpt.centroids.data(),
           ckpt.centroids.size() * sizeof(value_t), "centroids");
  ckpt.assignments.resize(static_cast<std::size_t>(n));
  read_all(f.get(), ckpt.assignments.data(), n * sizeof(cluster_t),
           "assignments");
  if (has_mti) {
    ckpt.upper_bounds.resize(static_cast<std::size_t>(n));
    read_all(f.get(), ckpt.upper_bounds.data(), n * sizeof(value_t),
             "upper bounds");
  }
  if (header[41] != 0) {
    ckpt.sums = DenseMatrix(k, d);
    read_all(f.get(), ckpt.sums.data(), ckpt.sums.size() * sizeof(value_t),
             "sums");
    ckpt.counts.resize(static_cast<std::size_t>(k));
    read_all(f.get(), ckpt.counts.data(),
             ckpt.counts.size() * sizeof(std::int64_t), "counts");
  }
  if (header[42] != 0) {
    ckpt.weights.resize(static_cast<std::size_t>(k));
    read_all(f.get(), ckpt.weights.data(),
             ckpt.weights.size() * sizeof(value_t), "weights");
    ckpt.counts.resize(static_cast<std::size_t>(k));
    read_all(f.get(), ckpt.counts.data(),
             ckpt.counts.size() * sizeof(std::int64_t), "stream counts");
  }
  return ckpt;
}

bool checkpoint_exists(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic))
    return false;
  return std::memcmp(magic, kCkptMagic, sizeof(magic)) == 0;
}

}  // namespace knor::sem
