#include "sem/checkpoint.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

namespace knor::sem {
namespace {

constexpr char kCkptMagicV1[8] = {'K', 'N', 'O', 'R', 'C', 'K', 'P', '1'};
constexpr char kCkptMagicV2[8] = {'K', 'N', 'O', 'R', 'C', 'K', 'P', '2'};
constexpr std::size_t kCkptHeader = 64;
constexpr std::size_t kChecksumOffset = 48;

/// FNV-1a over the header (checksum field zeroed) + payload in file order.
struct Fnv1a {
  std::uint64_t hash = 1469598103934665603ull;
  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash ^= p[i];
      hash *= 1099511628211ull;
    }
  }
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_all(std::FILE* f, const void* data, std::size_t bytes) {
  if (bytes > 0 && std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("checkpoint: write failed");
}

void read_all(std::FILE* f, void* data, std::size_t bytes, const char* what,
              Fnv1a* fnv = nullptr) {
  if (bytes > 0 && std::fread(data, 1, bytes, f) != bytes)
    throw std::runtime_error(std::string("checkpoint: truncated ") + what);
  if (fnv != nullptr) fnv->update(data, bytes);
}

/// Serialized dist block: epoch, world, live count, then the node ids.
std::vector<unsigned char> dist_block_bytes(const Checkpoint& ckpt) {
  std::vector<unsigned char> block;
  if (ckpt.dist_nodes.empty()) return block;
  const std::uint64_t fields[3] = {
      ckpt.dist_epoch, static_cast<std::uint64_t>(ckpt.dist_world),
      static_cast<std::uint64_t>(ckpt.dist_nodes.size())};
  block.resize(sizeof(fields) +
               ckpt.dist_nodes.size() * sizeof(std::int32_t));
  std::memcpy(block.data(), fields, sizeof(fields));
  std::memcpy(block.data() + sizeof(fields), ckpt.dist_nodes.data(),
              ckpt.dist_nodes.size() * sizeof(std::int32_t));
  return block;
}

/// Visit every payload section in file order — the single source of truth
/// shared by the checksum pass and the write pass, so they cannot drift.
template <typename Fn>
void for_each_payload(const Checkpoint& ckpt,
                      const std::vector<unsigned char>& dist_block,
                      Fn&& fn) {
  fn(ckpt.centroids.data(), ckpt.centroids.size() * sizeof(value_t));
  fn(ckpt.assignments.data(), ckpt.assignments.size() * sizeof(cluster_t));
  fn(ckpt.upper_bounds.data(), ckpt.upper_bounds.size() * sizeof(value_t));
  if (!ckpt.sums.empty()) {
    fn(ckpt.sums.data(), ckpt.sums.size() * sizeof(value_t));
    fn(ckpt.counts.data(), ckpt.counts.size() * sizeof(std::int64_t));
  }
  if (!ckpt.weights.empty()) {
    fn(ckpt.weights.data(), ckpt.weights.size() * sizeof(value_t));
    fn(ckpt.counts.data(), ckpt.counts.size() * sizeof(std::int64_t));
  }
  if (!dist_block.empty()) fn(dist_block.data(), dist_block.size());
}

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  unsigned char header[kCkptHeader] = {};
  std::memcpy(header, kCkptMagicV2, sizeof(kCkptMagicV2));
  const std::uint64_t fields[4] = {
      ckpt.iteration, ckpt.assignments.size(),
      static_cast<std::uint64_t>(ckpt.centroids.rows()),
      static_cast<std::uint64_t>(ckpt.centroids.cols())};
  std::memcpy(header + 8, fields, sizeof(fields));
  header[40] = ckpt.upper_bounds.empty() ? 0 : 1;
  header[41] = ckpt.sums.empty() ? 0 : 1;
  header[42] = ckpt.weights.empty() ? 0 : 1;
  header[43] = ckpt.dist_nodes.empty() ? 0 : 1;

  const std::vector<unsigned char> dist_block = dist_block_bytes(ckpt);
  // Checksum with the checksum field still zero, then patch it in.
  Fnv1a fnv;
  fnv.update(header, sizeof(header));
  for_each_payload(ckpt, dist_block, [&](const void* data, std::size_t bytes) {
    fnv.update(data, bytes);
  });
  std::memcpy(header + kChecksumOffset, &fnv.hash, sizeof(fnv.hash));

  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) throw std::runtime_error("checkpoint: cannot open " + tmp);
    write_all(f.get(), header, sizeof(header));
    for_each_payload(ckpt, dist_block,
                     [&](const void* data, std::size_t bytes) {
                       write_all(f.get(), data, bytes);
                     });
    if (std::fflush(f.get()) != 0)
      throw std::runtime_error("checkpoint: flush failed");
    // The rename below is only atomic-and-durable if the data reaches the
    // device before the directory entry swings over.
    if (::fsync(::fileno(f.get())) != 0)
      throw std::runtime_error("checkpoint: fsync failed");
  }
  std::filesystem::rename(tmp, path);
}

Checkpoint load_checkpoint(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("checkpoint: cannot open " + path);
  // Total bytes actually present — every header-declared element count is
  // bounded against this BEFORE its buffer is allocated, so a hostile or
  // corrupt size field can never drive a multi-GB allocation (it is
  // rejected by name instead; the fuzz corpus pins these paths).
  if (std::fseek(f.get(), 0, SEEK_END) != 0)
    throw std::runtime_error("checkpoint: seek failed on " + path);
  const long file_end = std::ftell(f.get());
  if (file_end < static_cast<long>(kCkptHeader))
    throw std::runtime_error("checkpoint: truncated header");
  if (std::fseek(f.get(), 0, SEEK_SET) != 0)
    throw std::runtime_error("checkpoint: seek failed on " + path);
  std::uint64_t remaining =
      static_cast<std::uint64_t>(file_end) - kCkptHeader;
  // Claim `a*b` elements of `elem` bytes out of the unread payload; the
  // u128 product cannot wrap for any 64-bit field values.
  const auto claim = [&](std::uint64_t a, std::uint64_t b, std::size_t elem,
                         const char* what) {
    // Pre-bound the factors so the u128 product below cannot wrap even for
    // adversarial 64-bit fields (2^40 * 2^40 * 8 << 2^128).
    constexpr std::uint64_t kMaxField = 1ull << 40;
    const unsigned __int128 need =
        a > kMaxField || b > kMaxField
            ? static_cast<unsigned __int128>(remaining) + 1
            : static_cast<unsigned __int128>(a) * b * elem;
    if (need > remaining)
      throw std::runtime_error(std::string("checkpoint: hostile size field (") +
                               what + ") in " + path +
                               " exceeds file size");
    remaining -= static_cast<std::uint64_t>(need);
  };
  unsigned char header[kCkptHeader];
  read_all(f.get(), header, sizeof(header), "header");
  const bool v2 =
      std::memcmp(header, kCkptMagicV2, sizeof(kCkptMagicV2)) == 0;
  if (!v2 && std::memcmp(header, kCkptMagicV1, sizeof(kCkptMagicV1)) != 0)
    throw std::runtime_error("checkpoint: bad magic in " + path);

  std::uint64_t stored_checksum = 0;
  Fnv1a fnv;
  Fnv1a* hash = nullptr;
  if (v2) {
    // Re-hash exactly what save hashed: header with the checksum zeroed,
    // then every payload byte as it is read back.
    std::memcpy(&stored_checksum, header + kChecksumOffset,
                sizeof(stored_checksum));
    std::memset(header + kChecksumOffset, 0, sizeof(stored_checksum));
    fnv.update(header, sizeof(header));
    hash = &fnv;
  }

  std::uint64_t fields[4];
  std::memcpy(fields, header + 8, sizeof(fields));
  const bool has_mti = header[40] != 0;

  Checkpoint ckpt;
  ckpt.iteration = fields[0];
  const std::uint64_t n = fields[1];
  const auto k = static_cast<index_t>(fields[2]);
  const auto d = static_cast<index_t>(fields[3]);
  if (k == 0 || d == 0)
    throw std::runtime_error("checkpoint: degenerate shape in " + path);
  claim(k, d, sizeof(value_t), "centroids k*d");
  ckpt.centroids = DenseMatrix(k, d);
  read_all(f.get(), ckpt.centroids.data(),
           ckpt.centroids.size() * sizeof(value_t), "centroids", hash);
  claim(n, 1, sizeof(cluster_t), "assignment count");
  ckpt.assignments.resize(static_cast<std::size_t>(n));
  read_all(f.get(), ckpt.assignments.data(), n * sizeof(cluster_t),
           "assignments", hash);
  if (has_mti) {
    claim(n, 1, sizeof(value_t), "upper-bound count");
    ckpt.upper_bounds.resize(static_cast<std::size_t>(n));
    read_all(f.get(), ckpt.upper_bounds.data(), n * sizeof(value_t),
             "upper bounds", hash);
  }
  if (header[41] != 0) {
    claim(k, d + 1, sizeof(value_t), "sums k*d");
    ckpt.sums = DenseMatrix(k, d);
    read_all(f.get(), ckpt.sums.data(), ckpt.sums.size() * sizeof(value_t),
             "sums", hash);
    ckpt.counts.resize(static_cast<std::size_t>(k));
    read_all(f.get(), ckpt.counts.data(),
             ckpt.counts.size() * sizeof(std::int64_t), "counts", hash);
  }
  if (header[42] != 0) {
    claim(k, 2, sizeof(value_t), "weight count");
    ckpt.weights.resize(static_cast<std::size_t>(k));
    read_all(f.get(), ckpt.weights.data(),
             ckpt.weights.size() * sizeof(value_t), "weights", hash);
    ckpt.counts.resize(static_cast<std::size_t>(k));
    read_all(f.get(), ckpt.counts.data(),
             ckpt.counts.size() * sizeof(std::int64_t), "stream counts",
             hash);
  }
  if (v2 && header[43] != 0) {
    std::uint64_t dist_fields[3];
    claim(3, 1, sizeof(std::uint64_t), "dist block");
    read_all(f.get(), dist_fields, sizeof(dist_fields), "dist block", hash);
    ckpt.dist_epoch = dist_fields[0];
    ckpt.dist_world = static_cast<std::int32_t>(dist_fields[1]);
    claim(dist_fields[2], 1, sizeof(std::int32_t), "dist node count");
    ckpt.dist_nodes.resize(static_cast<std::size_t>(dist_fields[2]));
    read_all(f.get(), ckpt.dist_nodes.data(),
             ckpt.dist_nodes.size() * sizeof(std::int32_t), "dist nodes",
             hash);
  }
  if (v2 && fnv.hash != stored_checksum)
    throw std::runtime_error("checkpoint: checksum mismatch in " + path +
                             " (corrupt or torn file)");
  return ckpt;
}

bool checkpoint_exists(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic))
    return false;
  return std::memcmp(magic, kCkptMagicV1, sizeof(magic)) == 0 ||
         std::memcmp(magic, kCkptMagicV2, sizeof(magic)) == 0;
}

}  // namespace knor::sem
