#include "sem/io_engine.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

namespace knor::sem {

struct IoEngine::Ticket::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

void IoEngine::Ticket::wait() {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
}

struct IoEngine::Request {
  std::vector<std::uint64_t> pages;
  std::shared_ptr<Ticket::State> state;
};

IoEngine::IoEngine(PageFile& file, PageCache& cache, int io_threads,
                   std::uint32_t merge_gap)
    : file_(file), cache_(cache), merge_gap_(merge_gap) {
  if (io_threads < 1) io_threads = 1;
  io_threads_.reserve(static_cast<std::size_t>(io_threads));
  for (int t = 0; t < io_threads; ++t)
    io_threads_.emplace_back([this] { io_loop(); });
}

IoEngine::~IoEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : io_threads_) t.join();
}

std::vector<std::uint64_t> IoEngine::pages_of(
    const std::vector<index_t>& rows) const {
  std::vector<std::uint64_t> pages;
  pages.reserve(rows.size() * 2);
  for (index_t r : rows) {
    const std::uint64_t first = file_.first_page_of_row(r);
    const std::uint64_t last = file_.last_page_of_row(r);
    for (std::uint64_t p = first; p <= last; ++p) pages.push_back(p);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  return pages;
}

void IoEngine::stage_pages(const std::vector<std::uint64_t>& pages) {
  // Coalesce pages into extents: consecutive (or within merge_gap) pages
  // become one device read — SAFS-style request merging. Gap pages inside a
  // merged extent are read too (that is the fragmentation cost Figure 6b
  // quantifies: the device transfers more than was requested).
  std::size_t i = 0;
  std::vector<unsigned char> buf;
  while (i < pages.size()) {
    if (cache_.contains(pages[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < pages.size() &&
           pages[j + 1] - pages[j] <= 1 + merge_gap_ &&
           !cache_.contains(pages[j + 1]))
      ++j;
    const std::uint64_t first = pages[i];
    const auto count = static_cast<std::uint32_t>(pages[j] - first + 1);
    buf.resize(static_cast<std::size_t>(count) * file_.page_size());
    file_.read_pages(first, count, buf.data());
    for (std::uint32_t p = 0; p < count; ++p)
      cache_.insert(first + p, buf.data() +
                                   static_cast<std::size_t>(p) *
                                       file_.page_size());
    i = j + 1;
  }
}

void IoEngine::fetch_rows(const std::vector<index_t>& rows, value_t* out) {
  if (rows.empty()) return;
  bytes_requested_.fetch_add(rows.size() * file_.row_bytes(),
                             std::memory_order_relaxed);
  stage_pages(pages_of(rows));

  // Copy each row out of its (now resident) pages.
  const std::size_t page_size = file_.page_size();
  const std::size_t row_bytes = file_.row_bytes();
  std::vector<unsigned char> page(page_size);
  auto* dst = reinterpret_cast<unsigned char*>(out);
  for (std::size_t idx = 0; idx < rows.size(); ++idx) {
    const index_t r = rows[idx];
    std::uint64_t off = file_.row_offset(r);
    std::size_t remaining = row_bytes;
    unsigned char* row_dst = dst + idx * row_bytes;
    while (remaining > 0) {
      const std::uint64_t page_id = off / page_size;
      const std::size_t in_page = static_cast<std::size_t>(off % page_size);
      const std::size_t take = std::min(remaining, page_size - in_page);
      if (!cache_.lookup(page_id, page.data())) {
        // Evicted between staging and copy (tiny cache): re-read directly.
        file_.read_pages(page_id, 1, page.data());
        cache_.insert(page_id, page.data());
      }
      std::memcpy(row_dst, page.data() + in_page, take);
      row_dst += take;
      off += take;
      remaining -= take;
    }
  }
}

IoEngine::Ticket IoEngine::prefetch(std::vector<index_t> rows) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  Request req;
  req.pages = pages_of(rows);
  req.state = ticket.state_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
  return ticket;
}

void IoEngine::io_loop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    stage_pages(req.pages);
    {
      std::lock_guard<std::mutex> lock(req.state->mu);
      req.state->done = true;
    }
    req.state->cv.notify_all();
  }
}

}  // namespace knor::sem
