#include "sem/page_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "data/matrix_io.hpp"

namespace knor::sem {

PageFile::PageFile(const std::string& path, std::size_t page_size,
                   SsdCostModel cost)
    : page_size_(page_size == 0 ? 4096 : page_size), cost_(cost) {
  // Validate via the shared header reader first (throws on bad files).
  const data::MatrixHeader header = data::read_header(path);
  n_ = header.n;
  d_ = header.d;
  row_bytes_ = static_cast<std::size_t>(d_) * header.elem_size;
  header_bytes_ = data::kHeaderBytes;
  file_bytes_ = header_bytes_ + static_cast<std::uint64_t>(n_) * row_bytes_;
  num_pages_ = (file_bytes_ + page_size_ - 1) / page_size_;

  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0)
    throw std::runtime_error("PageFile: cannot open '" + path + "'");
}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t PageFile::read_pages(std::uint64_t first_page, std::uint32_t count,
                                 unsigned char* buf) {
  if (first_page >= num_pages_ || count == 0) return 0;
  const std::uint64_t offset = first_page * page_size_;
  const std::size_t want = static_cast<std::size_t>(count) * page_size_;

  std::size_t got = 0;
  while (got < want) {
    const ssize_t r = ::pread(fd_, buf + got, want - got,
                              static_cast<off_t>(offset + got));
    if (r < 0) throw std::runtime_error("PageFile: pread failed");
    if (r == 0) break;  // EOF: final page partially populated
    got += static_cast<std::size_t>(r);
  }
  if (got < want) std::memset(buf + got, 0, want - got);

  bytes_read_.fetch_add(got, std::memory_order_relaxed);
  read_requests_.fetch_add(1, std::memory_order_relaxed);

  if (cost_.enabled()) {
    // Emulate SSD service time: latency + size / bandwidth.
    double ns = 1e3 * cost_.latency_us;
    if (cost_.gigabytes_per_sec > 0)
      ns += static_cast<double>(got) / cost_.gigabytes_per_sec;
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(static_cast<std::int64_t>(ns));
    while (std::chrono::steady_clock::now() < until) {
    }
  }
  return got;
}

}  // namespace knor::sem
