#include "core/local_centroids.hpp"

#include <cassert>
#include <cstring>

namespace knor {

LocalCentroids::LocalCentroids(int k, index_t d)
    : k_(k),
      d_(d),
      sums_(static_cast<std::size_t>(k) * d),
      counts_(static_cast<std::size_t>(k), 0) {}

void LocalCentroids::merge(const LocalCentroids& other) {
  assert(other.k_ == k_ && other.d_ == d_);
  const std::size_t total = static_cast<std::size_t>(k_) * d_;
  for (std::size_t i = 0; i < total; ++i) sums_[i] += other.sums_[i];
  for (int c = 0; c < k_; ++c)
    counts_[static_cast<std::size_t>(c)] +=
        other.counts_[static_cast<std::size_t>(c)];
}

void LocalCentroids::clear() {
  std::memset(sums_.data(), 0, sums_.size() * sizeof(value_t));
  std::fill(counts_.begin(), counts_.end(), 0);
}

std::vector<index_t> LocalCentroids::finalize_into(
    DenseMatrix& centroids, const DenseMatrix& previous) const {
  assert(centroids.rows() == static_cast<index_t>(k_) && centroids.cols() == d_);
  std::vector<index_t> sizes(static_cast<std::size_t>(k_));
  for (int c = 0; c < k_; ++c) {
    const index_t count = counts_[static_cast<std::size_t>(c)];
    sizes[static_cast<std::size_t>(c)] = count;
    value_t* dst = centroids.row(static_cast<index_t>(c));
    if (count == 0) {
      // Empty cluster: keep previous centroid.
      std::memcpy(dst, previous.row(static_cast<index_t>(c)),
                  d_ * sizeof(value_t));
      continue;
    }
    const value_t* s = sum(static_cast<cluster_t>(c));
    const value_t inv = static_cast<value_t>(1.0) / static_cast<value_t>(count);
    for (index_t j = 0; j < d_; ++j) dst[j] = s[j] * inv;
  }
  return sizes;
}

SignedCentroids::SignedCentroids(int k, index_t d)
    : k_(k),
      d_(d),
      sums_(static_cast<std::size_t>(k) * d),
      counts_(static_cast<std::size_t>(k), 0) {}

void SignedCentroids::clear() {
  std::memset(sums_.data(), 0, sums_.size() * sizeof(value_t));
  std::fill(counts_.begin(), counts_.end(), 0);
}

void SignedCentroids::merge(const SignedCentroids& other) {
  assert(other.k_ == k_ && other.d_ == d_);
  const std::size_t total = static_cast<std::size_t>(k_) * d_;
  for (std::size_t i = 0; i < total; ++i) sums_[i] += other.sums_[i];
  for (int c = 0; c < k_; ++c)
    counts_[static_cast<std::size_t>(c)] +=
        other.counts_[static_cast<std::size_t>(c)];
}

void SignedCentroids::apply_to(value_t* sums, std::int64_t* counts) const {
  const std::size_t total = static_cast<std::size_t>(k_) * d_;
  for (std::size_t i = 0; i < total; ++i) sums[i] += sums_[i];
  for (int c = 0; c < k_; ++c)
    counts[c] += counts_[static_cast<std::size_t>(c)];
}

std::vector<index_t> finalize_sums(const value_t* sums,
                                   const std::int64_t* counts, int k,
                                   index_t d, DenseMatrix& centroids,
                                   const DenseMatrix& previous) {
  std::vector<index_t> sizes(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    const std::int64_t count = counts[c];
    sizes[static_cast<std::size_t>(c)] =
        count > 0 ? static_cast<index_t>(count) : 0;
    value_t* dst = centroids.row(static_cast<index_t>(c));
    if (count <= 0) {
      std::memcpy(dst, previous.row(static_cast<index_t>(c)),
                  d * sizeof(value_t));
      continue;
    }
    const value_t* s = sums + static_cast<std::size_t>(c) * d;
    const value_t inv = static_cast<value_t>(1.0) / static_cast<value_t>(count);
    for (index_t j = 0; j < d; ++j) dst[j] = s[j] * inv;
  }
  return sizes;
}

}  // namespace knor
