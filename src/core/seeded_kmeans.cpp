#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/prng.hpp"
#include "common/timer.hpp"
#include "core/chunk_accum.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "core/local_centroids.hpp"
#include "core/variants.hpp"
#include "numa/partitioner.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor {
namespace {

/// Seeded initialization: clusters with labeled members start at the
/// labeled mean; the remaining clusters are chosen by D^2 (k-means++)
/// sampling over the *unlabeled* points against the seeded centres.
DenseMatrix seeded_init(ConstMatrixView data, const Options& opts,
                        const std::vector<cluster_t>& labels) {
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;

  LocalCentroids seeds(k, d);
  for (index_t r = 0; r < n; ++r) {
    const cluster_t label = labels[r];
    if (label == kInvalidCluster) continue;
    if (label >= static_cast<cluster_t>(k))
      throw std::invalid_argument("seeded_kmeans: label >= k");
    seeds.add(label, data.row(r));
  }

  DenseMatrix centroids(static_cast<index_t>(k), d);
  std::vector<bool> seeded(static_cast<std::size_t>(k), false);
  int num_seeded = 0;
  for (int c = 0; c < k; ++c) {
    if (seeds.count(static_cast<cluster_t>(c)) == 0) continue;
    seeded[static_cast<std::size_t>(c)] = true;
    ++num_seeded;
    const value_t* sum = seeds.sum(static_cast<cluster_t>(c));
    const value_t inv = value_t(1) / static_cast<value_t>(
                            seeds.count(static_cast<cluster_t>(c)));
    value_t* dst = centroids.row(static_cast<index_t>(c));
    for (index_t j = 0; j < d; ++j) dst[j] = sum[j] * inv;
  }
  if (num_seeded == k) return centroids;

  // D^2 sampling of the unseeded centres over unlabeled points.
  Prng rng(opts.seed, /*stream=*/0x55ed);
  std::vector<value_t> dist2(static_cast<std::size_t>(n), 0);
  // Initialize dist2 against all seeded centres (or infinity when none).
  bool any_seeded = num_seeded > 0;
  for (index_t r = 0; r < n; ++r)
    dist2[static_cast<std::size_t>(r)] =
        labels[r] != kInvalidCluster
            ? 0
            : std::numeric_limits<value_t>::infinity();
  if (any_seeded) {
    for (int c = 0; c < k; ++c) {
      if (!seeded[static_cast<std::size_t>(c)]) continue;
      for (index_t r = 0; r < n; ++r) {
        if (labels[r] != kInvalidCluster) continue;
        auto& dr = dist2[static_cast<std::size_t>(r)];
        dr = std::min(dr, K.dist_sq(data.row(r),
                                    centroids.row(static_cast<index_t>(c)),
                                    d));
      }
    }
  }
  for (int c = 0; c < k; ++c) {
    if (seeded[static_cast<std::size_t>(c)]) continue;
    double total = 0;
    for (index_t r = 0; r < n; ++r) {
      auto& dr = dist2[static_cast<std::size_t>(r)];
      if (std::isinf(static_cast<double>(dr))) {
        // No seeded centre yet: first unseeded centre is uniform over
        // unlabeled points.
        continue;
      }
      total += dr;
    }
    index_t pick = 0;
    if (!any_seeded || total <= 0) {
      // Uniform over unlabeled points.
      index_t unlabeled = 0;
      for (index_t r = 0; r < n; ++r)
        if (labels[r] == kInvalidCluster) ++unlabeled;
      if (unlabeled == 0)
        throw std::invalid_argument(
            "seeded_kmeans: no unlabeled points to place unseeded centres");
      index_t target = rng.next_below(unlabeled);
      for (index_t r = 0; r < n; ++r) {
        if (labels[r] != kInvalidCluster) continue;
        if (target-- == 0) {
          pick = r;
          break;
        }
      }
    } else {
      double target = rng.next_double() * total;
      for (index_t r = 0; r < n; ++r) {
        const auto dr = dist2[static_cast<std::size_t>(r)];
        if (std::isinf(static_cast<double>(dr))) continue;
        target -= dr;
        pick = r;
        if (target <= 0) break;
      }
    }
    std::memcpy(centroids.row(static_cast<index_t>(c)), data.row(pick),
                d * sizeof(value_t));
    seeded[static_cast<std::size_t>(c)] = true;
    any_seeded = true;
    for (index_t r = 0; r < n; ++r) {
      if (labels[r] != kInvalidCluster) continue;
      auto& dr = dist2[static_cast<std::size_t>(r)];
      const value_t dc =
          K.dist_sq(data.row(r), centroids.row(static_cast<index_t>(c)), d);
      if (std::isinf(static_cast<double>(dr)) || dc < dr) dr = dc;
    }
  }
  return centroids;
}

}  // namespace

Result seeded_kmeans(ConstMatrixView data, const Options& opts,
                     const std::vector<cluster_t>& labels) {
  if (data.empty()) throw std::invalid_argument("seeded_kmeans: empty dataset");
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  if (labels.size() != data.rows())
    throw std::invalid_argument("seeded_kmeans: labels size != n");
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;
  if (k < 1) throw std::invalid_argument("seeded_kmeans: k < 1");

  DenseMatrix cur = opts.init == Init::kProvided
                        ? init_centroids(data, opts)
                        : seeded_init(data, opts, labels);
  DenseMatrix next(static_cast<index_t>(k), d);
  kernels::CentroidPack pack;

  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();
  numa::Partitioner parts(n, T, topo);
  sched::Scheduler sched(T, topo, /*bind=*/opts.numa_aware && opts.numa_bind,
                         opts.sched);
  const index_t task_size =
      sched::Scheduler::resolve_task_size(n, opts.task_size);
  const auto chunks =
      static_cast<std::size_t>(sched::Scheduler::num_chunks(n, task_size));

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  // Per-chunk accumulators + fixed-tree fold: deterministic under stealing
  // and across thread counts (DESIGN.md §7).
  ChunkAccum<LocalCentroids> locals(chunks, k, d);
  std::vector<std::uint64_t> tchanged(static_cast<std::size_t>(T));

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);
    sched.begin_chunks(n, task_size, &parts);
    sched.run([&](int tid) {
      tchanged[static_cast<std::size_t>(tid)] = 0;
      sched::Task task;
      while (sched.next_chunk(tid, task)) {
        auto& acc = locals.touch(task.chunk);
        for (index_t r = task.begin; r < task.end; ++r) {
          // Constraint: labeled points keep their label forever.
          const cluster_t best =
              labels[r] != kInvalidCluster
                  ? labels[r]
                  : K.nearest_blocked(data.row(r), pack, nullptr);
          if (best != res.assignments[r])
            ++tchanged[static_cast<std::size_t>(tid)];
          res.assignments[r] = best;
          acc.add(best, data.row(r));
        }
      }
      sched.barrier().arrive_and_wait();
      locals.fold(tid, T, sched.barrier());
    });
    res.counters.dist_computations +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);

    res.cluster_sizes = locals.merged().finalize_into(next, cur);
    locals.next_iteration();
    std::swap(cur, next);

    std::uint64_t changed = 0;
    for (auto c : tchanged) changed += c;
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor
