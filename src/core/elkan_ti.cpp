// Full Elkan triangle-inequality k-means (ICML'03) — the algorithm MTI
// simplifies. Maintains the O(nk) lower-bound matrix l(x,c) plus per-point
// upper bounds; prunes with all of Elkan's clauses. Included both as a
// correctness oracle for MTI and to let the Table 1 / Figure 8 benches show
// the memory trade-off the paper makes (O(nk) vs O(n) extra state).
//
// Runs on the work-stealing scheduler: every per-point step (bounds, argmin)
// is row-local, so the assignment pass and the bounds-drift pass both
// parallelize as chunked loops; centroid sums accumulate per chunk and fold
// with the fixed tree, keeping results bitwise independent of thread count
// and steal order like the main engine (DESIGN.md §7).
#include <cmath>
#include <limits>
#include <vector>

#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/chunk_accum.hpp"
#include "core/engines.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "core/local_centroids.hpp"
#include "numa/partitioner.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor {

Result elkan_ti(ConstMatrixView data, const Options& opts) {
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  // Elkan's bound algebra is in TRUE distances; the kernels return squared.
  const auto edist = [&K](const value_t* a, const value_t* b, index_t dim) {
    return std::sqrt(K.dist_sq(a, b, dim));
  };
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  DenseMatrix cur = init_centroids(data, opts);
  DenseMatrix next(static_cast<index_t>(k), d);

  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();
  numa::Partitioner parts(n, T, topo);
  sched::Scheduler sched(T, topo, /*bind=*/opts.numa_aware && opts.numa_bind,
                         opts.sched);
  const index_t task_size =
      sched::Scheduler::resolve_task_size(n, opts.task_size);
  const auto chunks =
      static_cast<std::size_t>(sched::Scheduler::num_chunks(n, task_size));
  ChunkAccum<LocalCentroids> acc(chunks, k, d);
  struct alignas(kCacheLine) PerThread {
    Counters counters;
    std::uint64_t changed = 0;
  };
  std::vector<PerThread> per_thread(static_cast<std::size_t>(T));

  // Elkan state: upper bound u(x), lower bounds l(x,c) — the O(nk) matrix —
  // plus the c2c distances and per-centroid separations.
  std::vector<value_t> ub(static_cast<std::size_t>(n),
                          std::numeric_limits<value_t>::infinity());
  std::vector<value_t> lb(static_cast<std::size_t>(n) * k, 0);
  std::vector<value_t> c2c(static_cast<std::size_t>(k) * k, 0);
  std::vector<value_t> s_half(static_cast<std::size_t>(k), 0);
  std::vector<value_t> drift(static_cast<std::size_t>(k), 0);
  ScopedAlloc mem_lb("elkan-lower-bounds", lb.size() * sizeof(value_t));
  ScopedAlloc mem_ub("elkan-upper-bounds", ub.size() * sizeof(value_t));

  const auto lbi = [&](index_t r, int c) -> value_t& {
    return lb[static_cast<std::size_t>(r) * k + c];
  };

  const auto prepare = [&] {
    for (int a = 0; a < k; ++a)
      for (int b = a + 1; b < k; ++b) {
        const value_t dab = edist(cur.row(static_cast<index_t>(a)),
                                  cur.row(static_cast<index_t>(b)), d);
        c2c[static_cast<std::size_t>(a) * k + b] = dab;
        c2c[static_cast<std::size_t>(b) * k + a] = dab;
      }
    for (int a = 0; a < k; ++a) {
      value_t m = std::numeric_limits<value_t>::infinity();
      for (int b = 0; b < k; ++b)
        if (b != a) m = std::min(m, c2c[static_cast<std::size_t>(a) * k + b]);
      s_half[static_cast<std::size_t>(a)] = k > 1 ? m * value_t(0.5) : 0;
    }
  };

  // One point of the assignment pass; accumulates into `slot`.
  const auto process_point = [&](index_t r, LocalCentroids& slot,
                                 PerThread& pt) {
    const value_t* v = data.row(r);
    cluster_t a = res.assignments[r];
    if (a == kInvalidCluster) {
      // First iteration: full scan seeds both bound structures.
      value_t best_d = edist(v, cur.row(0), d);
      ++pt.counters.dist_computations;
      lbi(r, 0) = best_d;
      cluster_t best = 0;
      for (int c = 1; c < k; ++c) {
        const value_t dc = edist(v, cur.row(static_cast<index_t>(c)), d);
        ++pt.counters.dist_computations;
        lbi(r, c) = dc;
        if (dc < best_d) {
          best_d = dc;
          best = static_cast<cluster_t>(c);
        }
      }
      ub[r] = best_d;
      res.assignments[r] = best;
      ++pt.changed;
      slot.add(best, v);
      return;
    }

    // Elkan step 2: skip the whole point when u(x) <= s(c(x)).
    if (ub[r] <= s_half[a]) {
      ++pt.counters.clause1_skips;
      slot.add(a, v);
      return;
    }
    bool tight = false;
    value_t best_d = ub[r];
    cluster_t best = a;
    for (int c = 0; c < k; ++c) {
      if (static_cast<cluster_t>(c) == best) continue;
      // Step 3 conditions: candidate must beat both its lower bound and
      // the inter-centroid separation.
      if (best_d <= lbi(r, c)) {
        ++pt.counters.clause2_skips;
        continue;
      }
      if (best_d <= value_t(0.5) *
                        c2c[static_cast<std::size_t>(best) * k + c]) {
        ++pt.counters.clause3_skips;
        continue;
      }
      if (!tight) {
        // 3a: tighten u(x) = d(x, c(x)).
        best_d = edist(v, cur.row(best), d);
        ++pt.counters.dist_computations;
        lbi(r, best) = best_d;
        tight = true;
        if (best_d <= lbi(r, c) ||
            best_d <= value_t(0.5) *
                          c2c[static_cast<std::size_t>(best) * k + c])
          continue;
      }
      // 3b: compute d(x, c).
      const value_t dc = edist(v, cur.row(static_cast<index_t>(c)), d);
      ++pt.counters.dist_computations;
      lbi(r, c) = dc;
      if (dc < best_d) {
        best_d = dc;
        best = static_cast<cluster_t>(c);
      }
    }
    if (best != a) ++pt.changed;
    res.assignments[r] = best;
    ub[r] = best_d;
    slot.add(best, v);
  };

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    prepare();

    sched.begin_chunks(n, task_size, &parts);
    sched.run([&](int tid) {
      auto& pt = per_thread[static_cast<std::size_t>(tid)];
      pt.changed = 0;
      sched::Task task;
      while (sched.next_chunk(tid, task)) {
        auto& slot = acc.touch(task.chunk);
        for (index_t r = task.begin; r < task.end; ++r)
          process_point(r, slot, pt);
      }
      sched.barrier().arrive_and_wait();
      acc.fold(tid, T, sched.barrier());
    });

    std::uint64_t changed = 0;
    for (const auto& pt : per_thread) changed += pt.changed;

    res.cluster_sizes = acc.merged().finalize_into(next, cur);
    acc.next_iteration();
    // Steps 5-6: update bounds by centroid drift (row-local, parallel).
    for (int c = 0; c < k; ++c)
      drift[static_cast<std::size_t>(c)] =
          edist(cur.row(static_cast<index_t>(c)),
                next.row(static_cast<index_t>(c)), d);
    sched.parallel_for(n, task_size, &parts,
                       [&](int, const sched::Task& task) {
                         for (index_t r = task.begin; r < task.end; ++r) {
                           for (int c = 0; c < k; ++c) {
                             auto& l = lbi(r, c);
                             l = std::max(value_t(0),
                                          l - drift[static_cast<std::size_t>(c)]);
                           }
                           ub[r] += drift[res.assignments[r]];
                         }
                       });
    std::swap(cur, next);
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (const auto& pt : per_thread) res.counters += pt.counters;
  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor
