// Single-threaded reference Lloyd's algorithm.
//
// This is the Table 3 baseline and the oracle for the exactness tests:
// every parallel/pruned/SEM/distributed engine must reproduce its
// clustering (same tie rule, empty-cluster rule, convergence rule).
#include "common/timer.hpp"
#include "core/engines.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "core/local_centroids.hpp"

namespace knor {

Result lloyd_serial(ConstMatrixView data, const Options& opts) {
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  DenseMatrix cur = init_centroids(data, opts);
  DenseMatrix next(static_cast<index_t>(k), d);
  LocalCentroids acc(k, d);
  kernels::CentroidPack pack;

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);
    acc.clear();
    std::uint64_t changed = 0;
    for (index_t r = 0; r < n; ++r) {
      const cluster_t best = K.nearest_blocked(data.row(r), pack, nullptr);
      res.counters.dist_computations += static_cast<std::uint64_t>(k);
      if (best != res.assignments[r]) ++changed;
      res.assignments[r] = best;
      acc.add(best, data.row(r));
    }
    res.cluster_sizes = acc.finalize_into(next, cur);
    std::swap(cur, next);
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor
