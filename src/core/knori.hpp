// knori — the in-memory NUMA-optimized k-means module (paper §5).
#pragma once

#include "core/kmeans_types.hpp"

namespace knor {

/// Cluster `data` (n x d, row-major) into opts.k clusters with the
/// NUMA-optimized ||Lloyd's engine. This is the paper's knori when
/// opts.prune is true and knori- when false; opts.numa_aware = false gives
/// the NUMA-oblivious baseline of Figure 4.
///
/// Determinism: assignments, centroids, energy and iteration count are a
/// pure function of (data, opts minus threads/numa_bind) — BITWISE
/// invariant across thread counts, scheduling policies, steal schedules
/// and repeated runs, with or without MTI. Partial sums accumulate per
/// chunk of the (n, task_size) grid and merge in a fixed tree keyed to
/// the chunk count alone (DESIGN.md §7), so not even floating point can
/// tell schedules apart; changing task_size picks a different (equally
/// deterministic) chunk grid and may differ in the last ulp. The
/// guarantee is per selected SIMD ISA (opts.simd, DESIGN.md §8): each
/// ISA is bitwise self-stable, different ISAs may differ in the last ulp
/// on fractional data, and opts.simd = kScalar reproduces the pre-SIMD
/// engine bit-for-bit. Only Result's timing fields and the
/// scheduler/NUMA attribution counters vary run to run.
Result kmeans(ConstMatrixView data, const Options& opts);

namespace detail {

/// One node's worth of the ||Lloyd's engine: topology, thread pool, NUMA
/// partitioning and the iteration loop over `data`, starting from the
/// caller-supplied `initial` centroids. knori::kmeans calls this with
/// reducer = nullptr; knord calls it on every rank with its row shard and
/// a Communicator-backed reducer, which is all it takes to turn the
/// single-node engine into the distributed one (paper §6). `resume`
/// restarts at a checkpointed boundary (initial = checkpointed centroids)
/// and `observer` hooks every non-final boundary — the fault-tolerance
/// layer (dist::ft_kmeans, DESIGN.md §13) drives both.
Result run_node(ConstMatrixView data, const Options& opts,
                DenseMatrix initial, GlobalReducer* reducer,
                const ResumeState* resume = nullptr,
                IterObserver* observer = nullptr);

}  // namespace detail

}  // namespace knor
