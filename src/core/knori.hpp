// knori — the in-memory NUMA-optimized k-means module (paper §5).
#pragma once

#include "core/kmeans_types.hpp"

namespace knor {

/// Cluster `data` (n x d, row-major) into opts.k clusters with the
/// NUMA-optimized ||Lloyd's engine. This is the paper's knori when
/// opts.prune is true and knori- when false; opts.numa_aware = false gives
/// the NUMA-oblivious baseline of Figure 4.
Result kmeans(ConstMatrixView data, const Options& opts);

}  // namespace knor
