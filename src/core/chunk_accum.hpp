// Per-chunk accumulator slots — the deterministic-reduction counterpart of
// the work-stealing scheduler (DESIGN.md §7).
//
// The scheduler's chunk grid is a pure function of (n, task_size), so giving
// every chunk its own accumulator makes each slot's content a pure function
// of the data (whichever thread happens to process chunk c writes exactly
// chunk c's rows, in row order), and folding the slots with the fixed tree
// of sched::tree_reduce_fixed makes the merged total a pure function of the
// chunk count. Net effect: centroid sums are bitwise identical regardless
// of steal order AND thread count — per-thread accumulators can guarantee
// neither once chunks migrate between threads.
//
// Slots are cleared lazily on first touch each iteration and tracked by a
// dirty bit, so an iteration where MTI clause 1 skips a whole chunk costs
// that chunk nothing: no clear, no merge (skipping a clean slot is itself
// deterministic — a chunk is dirty iff one of its rows changed membership,
// which is a pure function of the data).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sched/barrier.hpp"
#include "sched/reduction.hpp"

namespace knor {

/// Acc must provide clear() and merge(const Acc&) — LocalCentroids and
/// SignedCentroids both do.
template <typename Acc>
class ChunkAccum {
 public:
  template <typename... Args>
  ChunkAccum(std::size_t chunks, Args&&... args) : dirty_(chunks, 0) {
    slots_.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) slots_.emplace_back(args...);
  }

  std::size_t size() const { return slots_.size(); }
  bool dirty(std::size_t c) const { return dirty_[c] != 0; }

  /// Chunk c's slot, cleared on first touch of the iteration. Only the
  /// thread currently processing chunk c may call this (chunks are claimed
  /// exclusively, so no two threads ever share a slot).
  Acc& touch(std::size_t c) {
    if (!dirty_[c]) {
      slots_[c].clear();
      dirty_[c] = 1;
    }
    return slots_[c];
  }

  /// In-worker fixed-tree fold of all dirty slots into slot 0 (call from
  /// every worker; it barriers). After it returns, slot 0 holds the merged
  /// total iff dirty(0) — an all-clean grid means "nothing accumulated".
  void fold(int tid, int parties, sched::Barrier& barrier) {
    sched::tree_reduce_fixed(tid, parties, slots_.size(), barrier,
                             [&](std::size_t dst, std::size_t src) {
                               if (!dirty_[src]) return;
                               touch(dst).merge(slots_[src]);
                             });
  }

  /// Slot 0, cleared if nothing was folded into it — the merged total as a
  /// plain (possibly zero) accumulator, e.g. for wire packing.
  Acc& merged() { return touch(0); }

  /// Raw slot access (no dirty bookkeeping); content is only meaningful
  /// while dirty(c) holds.
  const Acc& slot(std::size_t c) const { return slots_[c]; }

  /// Forget all content for the next iteration (slots re-clear on touch).
  void next_iteration() { std::fill(dirty_.begin(), dirty_.end(), 0); }

  std::size_t bytes() const {
    return (slots_.empty() ? 0 : slots_.size() * slots_[0].bytes()) +
           dirty_.size();
  }

 private:
  std::vector<Acc> slots_;
  std::vector<std::uint8_t> dirty_;
};

}  // namespace knor
