#include "core/knori.hpp"

#include "common/logger.hpp"
#include "common/memory_tracker.hpp"
#include "core/engine_impl.hpp"
#include "core/init.hpp"
#include "data/dataset.hpp"
#include "obs/span.hpp"

namespace knor {
namespace {

struct NumaData {
  const data::NumaDataset* ds;
  const value_t* row(index_t r) const { return ds->row(r); }
  int node_of_row(index_t r) const { return ds->node_of_row(r); }
};

}  // namespace

namespace detail {

Result run_node(ConstMatrixView data, const Options& opts,
                DenseMatrix initial, GlobalReducer* reducer,
                const ResumeState* resume, IterObserver* observer) {
  if (data.empty()) throw std::invalid_argument("kmeans: empty dataset");
  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();
  const index_t n = data.rows();
  const index_t d = data.cols();

  numa::Partitioner parts(n, T, topo);

  if (!opts.numa_aware) {
    // NUMA-oblivious baseline: unbound threads, data wherever the original
    // allocation's first touch put it (node 0 for accounting purposes).
    sched::Scheduler sched(T, topo, /*bind=*/false, opts.sched);
    detail::FlatData flat{data};
    return detail::run_parallel_lloyd(flat, n, d, opts, std::move(initial),
                                      sched, parts, reducer, resume,
                                      observer);
  }

  sched::Scheduler sched(T, topo, /*bind=*/opts.numa_bind, opts.sched);
  data::NumaDataset ds(data, parts, sched);
  ScopedAlloc mem_ds("dataset", ds.bytes());
  KNOR_LOG_DEBUG("knori: n=", n, " d=", d, " k=", opts.k, " T=", T,
                 " nodes=", topo.num_nodes(),
                 (opts.prune ? " mti=on" : " mti=off"));
  NumaData nd{&ds};
  return detail::run_parallel_lloyd(nd, n, d, opts, std::move(initial), sched,
                                    parts, reducer, resume, observer);
}

}  // namespace detail

Result kmeans(ConstMatrixView data, const Options& opts) {
  if (data.empty()) throw std::invalid_argument("kmeans: empty dataset");
  DenseMatrix initial;
  {
    obs::Span span_init("init");
    initial = init_centroids(data, opts);
  }
  return detail::run_node(data, opts, std::move(initial), nullptr);
}

}  // namespace knor
