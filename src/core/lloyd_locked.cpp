// Naive parallel Lloyd's: the design the paper's §4 criticizes.
//
// Phase I (nearest centroid) parallelizes trivially, but phase II updates a
// single shared next-iteration centroid structure guarded by per-centroid
// mutexes — "Phase II is plagued with substantial locking overhead because
// of the high likelihood of data points concurrently attempting to update
// the same nearest centroid". The two phases are separated by a global
// barrier (a sched.run join). Used as a baseline in Table 3 / Figure 9
// style benches.
#include <cstring>
#include <mutex>
#include <vector>

#include "common/timer.hpp"
#include "core/engines.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "numa/partitioner.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor {

Result lloyd_locked(ConstMatrixView data, const Options& opts) {
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;
  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  DenseMatrix cur = init_centroids(data, opts);
  DenseMatrix sums(static_cast<index_t>(k), d);
  std::vector<index_t> counts(static_cast<std::size_t>(k));
  std::vector<std::mutex> locks(static_cast<std::size_t>(k));
  kernels::CentroidPack pack;

  numa::Partitioner parts(n, T, topo);
  sched::Scheduler sched(T, topo, /*bind=*/false);
  std::vector<std::uint64_t> tchanged(static_cast<std::size_t>(T));

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);
    std::memset(sums.data(), 0, sums.size() * sizeof(value_t));
    std::fill(counts.begin(), counts.end(), 0);

    // Phase I + shared phase II under per-centroid locks.
    sched.run([&](int tid) {
      tchanged[static_cast<std::size_t>(tid)] = 0;
      const numa::RowRange rows = parts.thread_rows(tid);
      for (index_t r = rows.begin; r < rows.end; ++r) {
        const cluster_t best = K.nearest_blocked(data.row(r), pack, nullptr);
        if (best != res.assignments[r])
          ++tchanged[static_cast<std::size_t>(tid)];
        res.assignments[r] = best;
        // Interference: every thread contends on the shared structure.
        std::lock_guard<std::mutex> lock(locks[best]);
        value_t* s = sums.row(best);
        const value_t* v = data.row(r);
        for (index_t j = 0; j < d; ++j) s[j] += v[j];
        ++counts[best];
      }
    });
    res.counters.dist_computations +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);

    // Global barrier (the sched.run join), then the centroid update.
    std::uint64_t changed = 0;
    for (auto c : tchanged) changed += c;
    res.cluster_sizes.assign(counts.begin(), counts.end());
    for (int c = 0; c < k; ++c) {
      value_t* dst = cur.row(static_cast<index_t>(c));
      if (counts[static_cast<std::size_t>(c)] == 0) continue;
      const value_t inv = static_cast<value_t>(1.0) /
                          static_cast<value_t>(counts[static_cast<std::size_t>(c)]);
      const value_t* s = sums.row(static_cast<index_t>(c));
      for (index_t j = 0; j < d; ++j) dst[j] = s[j] * inv;
    }
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor
