// Centroid initialization: forgy, random partition, k-means++.
//
// All methods are deterministic in (data, options.seed) and independent of
// thread count, so knori / knors / knord runs started from the same seed are
// comparable point-for-point (the exactness tests rely on this).
#pragma once

#include "common/dense_matrix.hpp"
#include "core/kmeans_types.hpp"

namespace knor {

/// Compute initial centroids (k x d) for `data` per `opts`.
/// Throws std::invalid_argument for unusable configurations (k < 1, k > n,
/// provided-centroid shape mismatch).
DenseMatrix init_centroids(ConstMatrixView data, const Options& opts);

/// Row-sampling helper: k distinct row indices drawn without replacement.
std::vector<index_t> sample_rows(index_t n, int k, std::uint64_t seed);

}  // namespace knor
