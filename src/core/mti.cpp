#include "core/mti.hpp"

#include <cmath>
#include <limits>

#include "core/kernels/simd.hpp"

namespace knor {

MtiState::MtiState(index_t n, int k)
    : k_(k),
      ub_(static_cast<std::size_t>(n)),
      c2c_(static_cast<std::size_t>(k) * k, 0),
      drift_(static_cast<std::size_t>(k), 0),
      s_half_(static_cast<std::size_t>(k), 0) {
  for (index_t i = 0; i < n; ++i)
    ub_[i] = std::numeric_limits<value_t>::infinity();
}

void MtiState::prepare(const DenseMatrix& prev, const DenseMatrix& cur) {
  prepare(prev, cur, kernels::ops());
}

void MtiState::prepare(const DenseMatrix& prev, const DenseMatrix& cur,
                       const kernels::Ops& K) {
  const index_t d = cur.cols();
  // The triangle-inequality bookkeeping needs TRUE distances; these are
  // the only sqrts of the pruning machinery (kernels return squared).
  for (int a = 0; a < k_; ++a) {
    c2c_[static_cast<std::size_t>(a) * k_ + a] = 0;
    for (int b = a + 1; b < k_; ++b) {
      const value_t dab = std::sqrt(K.dist_sq(cur.row(static_cast<index_t>(a)),
                                              cur.row(static_cast<index_t>(b)),
                                              d));
      c2c_[static_cast<std::size_t>(a) * k_ + b] = dab;
      c2c_[static_cast<std::size_t>(b) * k_ + a] = dab;
    }
  }
  for (int a = 0; a < k_; ++a) {
    value_t m = std::numeric_limits<value_t>::infinity();
    for (int b = 0; b < k_; ++b) {
      if (b == a) continue;
      m = std::min(m, c2c_[static_cast<std::size_t>(a) * k_ + b]);
    }
    s_half_[static_cast<std::size_t>(a)] = k_ > 1 ? m * value_t(0.5) : 0;
  }
  if (prev.empty()) {
    std::fill(drift_.begin(), drift_.end(), value_t(0));
  } else {
    for (int c = 0; c < k_; ++c)
      drift_[static_cast<std::size_t>(c)] =
          std::sqrt(K.dist_sq(prev.row(static_cast<index_t>(c)),
                              cur.row(static_cast<index_t>(c)), d));
  }
}

}  // namespace knor
