// Shared per-run observability publication — the counter-parity contract:
// every engine's --metrics output must agree with its Result::counters.
//
// PR 6 moved the parallel engine onto the obs registry but left the other
// engines (gemm, minibatch, serial, locked, elkan, variants, baselines)
// publishing only the legacy Result::counters, so their runs were invisible
// to core.dist_computations and res.metrics stayed empty. This header is
// the one place the mapping from Counters fields to registry names and
// determinism classes lives; every engine entry point funnels through it so
// the two surfaces cannot drift again (tests/obs_test.cpp pins the parity
// for each engine).
#pragma once

#include "core/kmeans_types.hpp"
#include "obs/registry.hpp"

namespace knor::detail {

/// Bulk-publish a finished run's counters into the global registry, under
/// the same names and determinism classes for every engine. The
/// algorithmic counters are deterministic — pure functions of (data, opts)
/// like the clustering itself; the attribution counters (NUMA locality,
/// steal schedule) are timing-class (DESIGN.md §6/§10).
inline void publish_run_counters(const Result& res) {
  using obs::Det;
  obs::Registry& reg = obs::Registry::global();
  reg.counter("core.dist_computations", Det::kDeterministic)
      .add(res.counters.dist_computations);
  reg.counter("core.clause1_skips", Det::kDeterministic)
      .add(res.counters.clause1_skips);
  reg.counter("core.clause2_skips", Det::kDeterministic)
      .add(res.counters.clause2_skips);
  reg.counter("core.clause3_skips", Det::kDeterministic)
      .add(res.counters.clause3_skips);
  reg.counter("core.iterations", Det::kDeterministic)
      .add(static_cast<std::uint64_t>(res.iters));
  reg.counter("core.local_accesses", Det::kTiming)
      .add(res.counters.local_accesses);
  reg.counter("core.remote_accesses", Det::kTiming)
      .add(res.counters.remote_accesses);
  reg.counter("sched.tasks_own", Det::kTiming).add(res.counters.tasks_own);
  reg.counter("sched.tasks_same_node", Det::kTiming)
      .add(res.counters.tasks_same_node);
  reg.counter("sched.tasks_remote_node", Det::kTiming)
      .add(res.counters.tasks_remote_node);
}

/// Snapshot-diff scope for single-process engines: construct at entry,
/// call finish(res) once the Counters are final — it publishes them and
/// attaches the run's registry slice to res.metrics. Engines whose runs
/// share the process registry with concurrent siblings (knord ranks) must
/// publish without attaching; they call publish_run_counters directly.
class RunMetricsScope {
 public:
  RunMetricsScope() : before_(obs::Registry::global().snapshot()) {}

  void finish(Result& res) {
    publish_run_counters(res);
    res.metrics = obs::diff(before_, obs::Registry::global().snapshot());
  }

 private:
  obs::Snapshot before_;
};

}  // namespace knor::detail
