// Shared skeleton for the vector ISA variants (SSE2 / AVX2 / AVX-512).
//
// Each ISA translation unit instantiates these templates with a Traits
// type supplying the intrinsics. Keeping the algorithm in ONE place is
// what enforces the determinism contract of simd.hpp:
//
//  * dist_sq_t uses a fixed two-accumulator chunk schedule — main loop in
//    2W-element steps (acc0 then acc1), one optional W-element step into
//    acc0, one optional masked partial step into acc1 — and a fixed
//    horizontal reduction hsum(acc0 + acc1). No data-dependent control
//    flow, so results are bitwise stable run to run.
//
//  * nearest_blocked_t runs the SAME per-centroid schedule for a tile of
//    kTile centroids at once, sharing each point chunk across the tile.
//    Per centroid it issues the identical FP operation sequence into its
//    own acc0/acc1 pair, so every blocked distance is bitwise EQUAL to
//    dist_sq_t on that centroid row. The tile only buys locality and ILP:
//    the point chunk is loaded once per tile instead of once per centroid,
//    and kTile independent FMA chains keep the pipeline full.
//
//  * The masked partial chunk masks the POINT load; the centroid side is a
//    full-width aligned load whose padding lanes the CentroidPack
//    guarantees to be +0.0. Masked-off point lanes are +0.0 too, so the
//    lane difference is exactly +0.0 and fma(0, 0, acc) == acc bitwise —
//    the partial chunk contributes only its live lanes, identically in
//    dist_sq_t (both operands masked) and nearest_blocked_t (point masked,
//    centroid padded).
//
// Traits interface:
//   using vec;                      // the register type
//   static constexpr index_t kW;    // lanes per vector
//   static vec zero();
//   static vec loadu(const value_t*);          // unaligned full load
//   static vec load(const value_t*);           // 64B-aligned full load
//   static vec load_partial(const value_t*, index_t rem);  // rem in [1, kW)
//   static vec diff_fma(vec a, vec b, vec acc);  // acc + (a-b)*(a-b)
//   static vec mul_fma(vec a, vec b, vec acc);   // acc + a*b
//   static vec add(vec, vec);
//   static value_t hsum(vec);       // fixed reduction tree
//   static void reduce_tile(const vec s[kTile], value_t out[kTile]);
//     // out[t] must be bitwise == hsum(s[t]); a Traits may batch the
//     // four reductions with shuffles as long as the per-accumulator
//     // ASSOCIATION matches its hsum exactly
//   static vec broadcast(value_t);             // splat one scalar
//   static void storeu(value_t*, vec);         // unaligned full store
//
//  * gemm_argmin_t (DESIGN.md §12) needs no horizontal reduction at all:
//    each lane of a panel column line IS one centroid, so a lane's
//    accumulator holds that centroid's full dot product — accumulated
//    strictly sequentially over the depth by construction, for every lane
//    width. That single property makes the fused GEMM result bitwise
//    invariant across register-block (mr), cache-tile and panel-range
//    choices per ISA, which is what lets --gemm-tile be a pure
//    performance knob.
#pragma once

#include <cassert>
#include <limits>

#include "common/types.hpp"
#include "core/kernels/simd.hpp"

namespace knor::kernels::detail {

/// Centroids per register-blocked tile. 4 keeps the working set at
/// 8 accumulators + 2 point chunks, inside even the 16-register SSE/AVX
/// file, while giving 8 independent FMA chains.
inline constexpr int kTile = 4;

template <class V>
value_t dist_sq_t(const value_t* a, const value_t* b, index_t d) {
  typename V::vec acc0 = V::zero(), acc1 = V::zero();
  index_t j = 0;
  for (; j + 2 * V::kW <= d; j += 2 * V::kW) {
    acc0 = V::diff_fma(V::loadu(a + j), V::loadu(b + j), acc0);
    acc1 = V::diff_fma(V::loadu(a + j + V::kW), V::loadu(b + j + V::kW), acc1);
  }
  if (j + V::kW <= d) {
    acc0 = V::diff_fma(V::loadu(a + j), V::loadu(b + j), acc0);
    j += V::kW;
  }
  if (j < d)
    acc1 = V::diff_fma(V::load_partial(a + j, d - j),
                       V::load_partial(b + j, d - j), acc1);
  return V::hsum(V::add(acc0, acc1));
}

template <class V>
value_t dot_t(const value_t* a, const value_t* b, index_t d) {
  typename V::vec acc0 = V::zero(), acc1 = V::zero();
  index_t j = 0;
  for (; j + 2 * V::kW <= d; j += 2 * V::kW) {
    acc0 = V::mul_fma(V::loadu(a + j), V::loadu(b + j), acc0);
    acc1 = V::mul_fma(V::loadu(a + j + V::kW), V::loadu(b + j + V::kW), acc1);
  }
  if (j + V::kW <= d) {
    acc0 = V::mul_fma(V::loadu(a + j), V::loadu(b + j), acc0);
    j += V::kW;
  }
  if (j < d)
    acc1 = V::mul_fma(V::load_partial(a + j, d - j),
                      V::load_partial(b + j, d - j), acc1);
  return V::hsum(V::add(acc0, acc1));
}

template <class V>
cluster_t nearest_t(const value_t* point, const value_t* centroids, int k,
                    index_t d, value_t* out_sq) {
  cluster_t best = 0;
  value_t best_sq = std::numeric_limits<value_t>::infinity();
  for (int c = 0; c < k; ++c) {
    const value_t dc =
        dist_sq_t<V>(point, centroids + static_cast<std::size_t>(c) * d, d);
    if (dc < best_sq) {
      best_sq = dc;
      best = static_cast<cluster_t>(c);
    }
  }
  if (out_sq != nullptr) *out_sq = best_sq;
  return best;
}

template <class V>
cluster_t nearest_blocked_t(const value_t* point, const CentroidPack& pack,
                            value_t* out_sq) {
  const int k = pack.k();
  const index_t d = pack.d();
  cluster_t best = 0;
  value_t best_sq = std::numeric_limits<value_t>::infinity();
  int c = 0;
  for (; c + kTile <= k; c += kTile) {
    const value_t* rows[kTile];
    typename V::vec acc0[kTile], acc1[kTile];
    for (int t = 0; t < kTile; ++t) {
      rows[t] = pack.row(c + t);
      acc0[t] = V::zero();
      acc1[t] = V::zero();
    }
    index_t j = 0;
    for (; j + 2 * V::kW <= d; j += 2 * V::kW) {
      const typename V::vec p0 = V::loadu(point + j);
      const typename V::vec p1 = V::loadu(point + j + V::kW);
      for (int t = 0; t < kTile; ++t) {
        acc0[t] = V::diff_fma(p0, V::load(rows[t] + j), acc0[t]);
        acc1[t] = V::diff_fma(p1, V::load(rows[t] + j + V::kW), acc1[t]);
      }
    }
    if (j + V::kW <= d) {
      const typename V::vec p0 = V::loadu(point + j);
      for (int t = 0; t < kTile; ++t)
        acc0[t] = V::diff_fma(p0, V::load(rows[t] + j), acc0[t]);
      j += V::kW;
    }
    if (j < d) {
      // Point masked, centroid full-width: the pack's zero padding makes
      // the dead lanes contribute exactly nothing (see header comment).
      const typename V::vec pp = V::load_partial(point + j, d - j);
      for (int t = 0; t < kTile; ++t)
        acc1[t] = V::diff_fma(pp, V::load(rows[t] + j), acc1[t]);
    }
    typename V::vec sums[kTile];
    for (int t = 0; t < kTile; ++t) sums[t] = V::add(acc0[t], acc1[t]);
    value_t dist[kTile];
    V::reduce_tile(sums, dist);  // dist[t] bitwise == hsum(sums[t])
    for (int t = 0; t < kTile; ++t) {
      if (dist[t] < best_sq) {
        best_sq = dist[t];
        best = static_cast<cluster_t>(c + t);
      }
    }
  }
  // Remainder centroids (k % kTile): the per-centroid schedule on the
  // padded rows — same bits as dist_sq_t on the original rows.
  for (; c < k; ++c) {
    const value_t dc = dist_sq_t<V>(point, pack.row(c), d);
    if (dc < best_sq) {
      best_sq = dc;
      best = static_cast<cluster_t>(c);
    }
  }
  if (out_sq != nullptr) *out_sq = best_sq;
  return best;
}

/// Data rows per register block of the fused GEMM kernel: 4 rows x
/// (kGemmPanelWidth / kW) accumulators + one broadcast + the shared column
/// line stays inside the 16-register AVX file; SSE2 spills but SSE2 is the
/// compatibility tier, not the performance tier. The value is a pure
/// scheduling choice — per-row state is independent, so results do not
/// depend on it (see gemm_argmin_t).
inline constexpr index_t kGemmMr = 4;

template <class V>
void gemm_argmin_t(const value_t* a, index_t mrows, index_t lda,
                   const TiledMatrix& b, index_t p0, index_t p1,
                   const value_t* cnorm, cluster_t* best, value_t* score) {
  // One column line = kGemmPanelWidth lanes = kNV vectors of this ISA.
  constexpr index_t kNV = kGemmPanelWidth / V::kW;
  static_assert(kGemmPanelWidth % V::kW == 0,
                "panel width must be a whole number of vectors");
  const index_t rs = b.row_stride();
  assert(b.row_block() == kGemmPanelWidth && rs == kGemmPanelWidth);
  const index_t k = b.rows();
  const index_t cp = b.col_panels();
  const index_t cb = b.col_block();

  for (index_t i0 = 0; i0 < mrows; i0 += kGemmMr) {
    const index_t im = mrows - i0 < kGemmMr ? mrows - i0 : kGemmMr;
    for (index_t P = p0; P < p1; ++P) {
      typename V::vec acc[kGemmMr][kNV];
      for (index_t i = 0; i < im; ++i)
        for (index_t v = 0; v < kNV; ++v) acc[i][v] = V::zero();
      // Ascending col-panels, ascending columns inside each: lane j of
      // acc[i] accumulates <row i0+i, centroid P*width+j> strictly
      // sequentially over the depth, whatever the pack's col_block is.
      const value_t* base = b.panel(P, 0);
      const std::size_t panel_elems = static_cast<std::size_t>(rs) * cb;
      for (index_t J = 0; J < cp; ++J) {
        const value_t* pp = base + J * panel_elems;
        const index_t cm = b.panel_cols(J);
        const value_t* arow = a + J * cb;
        for (index_t c = 0; c < cm; ++c) {
          const value_t* line = pp + c * rs;
          for (index_t i = 0; i < im; ++i) {
            const typename V::vec av =
                V::broadcast(arow[(i0 + i) * lda + c]);
            for (index_t v = 0; v < kNV; ++v)
              acc[i][v] = V::mul_fma(av, V::load(line + v * V::kW),
                                     acc[i][v]);
          }
        }
      }
      // Fused epilogue: score = ||c||^2 - 2 x.c per live lane, compared in
      // ascending j (strict '<' keeps ties -> lowest index). Padding lanes
      // (j >= k) are simply never visited.
      const index_t jbase = P * kGemmPanelWidth;
      const index_t jcnt =
          k - jbase < kGemmPanelWidth ? k - jbase : kGemmPanelWidth;
      for (index_t i = 0; i < im; ++i) {
        value_t dots[kGemmPanelWidth];
        for (index_t v = 0; v < kNV; ++v)
          V::storeu(dots + v * V::kW, acc[i][v]);
        value_t& bs = score[i0 + i];
        cluster_t& bb = best[i0 + i];
        for (index_t t = 0; t < jcnt; ++t) {
          const value_t s = cnorm[jbase + t] - 2 * dots[t];
          if (s < bs) {
            bs = s;
            bb = static_cast<cluster_t>(jbase + t);
          }
        }
      }
    }
  }
}

template <class V>
Ops make_ops(Isa isa) {
  Ops ops;
  ops.isa = isa;
  ops.dist_sq = &dist_sq_t<V>;
  ops.dot = &dot_t<V>;
  ops.nearest = &nearest_t<V>;
  ops.nearest_blocked = &nearest_blocked_t<V>;
  ops.gemm_argmin = &gemm_argmin_t<V>;
  return ops;
}

}  // namespace knor::kernels::detail
