// SIMD distance-kernel layer: explicit vector implementations of the inner
// loops (dist_sq / dot / nearest-centroid) with runtime ISA dispatch.
//
// Every engine funnels its per-point arithmetic through the `Ops` table
// returned by ops(); which implementation backs it is decided once per
// process from (in priority order) the programmatic override set_isa()
// (plumbed from Options::simd / CLI --simd), the KNOR_SIMD environment
// variable, and CPUID detection, clamped to what this binary was compiled
// with and what the CPU supports (avx512 -> avx2 -> sse2 -> scalar).
//
// Determinism contract (extends DESIGN.md §7 to the instruction level):
//  * Each ISA variant uses a FIXED lane count and a FIXED horizontal-
//    reduction tree, so for a given selected ISA results are bitwise
//    invariant across runs, thread counts and scheduling policies.
//  * For every ISA, the blocked nearest-centroid kernel interleaves the
//    exact per-centroid accumulator/reduction sequence of that ISA's
//    dist_sq, so blocked and per-centroid distance values are bitwise
//    IDENTICAL. This is what keeps the MTI-pruned path (per-centroid
//    dist_sq) in exact agreement with the full-scan path (blocked) —
//    pruned vs. unpruned runs stay bitwise-equal under any ISA.
//  * Isa::kScalar is the legacy reference in core/distance.hpp, bit-for-
//    bit: `--simd scalar` reproduces the pre-SIMD clusterings of every
//    Lloyd-family engine exactly. (Two call sites were normalized in the
//    move and differ from pre-SIMD in final ulps under any ISA: gemm's
//    stand-in inner product now uses the shared dot kernel instead of its
//    private sequential loop, and minibatch's energy accumulates exact
//    squared distances instead of sqrt-then-square.)
//  * The fused GEMM-argmin kernel accumulates every (row, centroid) dot
//    product strictly sequentially over the depth dimension (one panel
//    lane per centroid), so its result is additionally bitwise invariant
//    across cache-tile shapes and panel-range splits for a given ISA
//    (DESIGN.md §12).
//  * Different ISAs may differ in the last ulp on fractional data (FMA,
//    different association); on integer-valued data every sum is exact so
//    all ISAs agree bitwise (tests/conformance_test.cpp relies on this).
#pragma once

#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/dense_matrix.hpp"
#include "common/types.hpp"

namespace knor::kernels {

/// Instruction-set choice. kAuto defers to env/CPUID at dispatch time.
enum class Isa { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3, kAuto = 4 };

inline constexpr int kNumIsas = 4;  // dispatchable entries (kAuto excluded)

const char* to_string(Isa isa);

/// Parses "auto" | "scalar" | "sse2" | "avx2" | "avx512". Returns false on
/// anything else (out untouched).
bool parse_isa(const std::string& name, Isa* out);

/// The throwing form every selection surface shares: CLI flags and the
/// KNOR_SIMD environment variable reject unknown names through this one
/// parser (std::invalid_argument naming `what`), so a typo can never
/// silently fall back to a different ISA.
Isa parse_isa_or_throw(const std::string& name, const char* what);

/// Centroid matrix re-packed for aligned SIMD streaming: k rows, each
/// padded to a 64-byte multiple (stride() doubles, zero-filled beyond d).
/// Every row(c) is 64-byte aligned, so full-width aligned loads are legal
/// for any j < d that is a multiple of the lane width; padding lanes are
/// exactly +0.0 and contribute nothing to a squared-distance accumulation.
/// Engines rebuild the pack once per iteration (O(k*d), noise next to the
/// O(n*k*d) scan it accelerates).
class CentroidPack {
 public:
  /// Doubles per 64-byte cache line; row strides are rounded up to this.
  static constexpr index_t kLaneAlign = kCacheLine / sizeof(value_t);

  static index_t padded_stride(index_t d) {
    return (d + kLaneAlign - 1) / kLaneAlign * kLaneAlign;
  }

  CentroidPack() = default;

  /// (Re)pack `k` x `d` row-major centroids; reuses storage when the shape
  /// is unchanged. Padding stays zero across repacks.
  void pack(const value_t* centroids, int k, index_t d);
  void pack(const DenseMatrix& m) {
    pack(m.data(), static_cast<int>(m.rows()), m.cols());
  }

  const value_t* row(int c) const {
    return buf_.data() + static_cast<std::size_t>(c) * stride_;
  }
  int k() const { return k_; }
  index_t d() const { return d_; }
  index_t stride() const { return stride_; }
  bool empty() const { return k_ == 0; }

 private:
  AlignedBuffer<value_t> buf_;
  int k_ = 0;
  index_t d_ = 0;
  index_t stride_ = 0;
};

/// Centroids per GEMM panel: one 64-byte cache line of doubles. The
/// blocked-GEMM engine packs centroids into a TiledMatrix with
/// row_block == kGemmPanelWidth, so each depth step of a panel is a single
/// aligned column line every ISA consumes in its own lane width (8 scalar
/// adds / 4 SSE2 pairs / 2 AVX2 quads / 1 AVX-512 vector). The panel width
/// is ISA-independent on purpose: one pack per iteration serves every
/// kernel table, and lane j of a column line always belongs to centroid
/// panel_base + j.
inline constexpr index_t kGemmPanelWidth = kCacheLine / sizeof(value_t);

/// One ISA's kernel table. All distances are SQUARED Euclidean — the
/// single sqrt the MTI bookkeeping needs lives at its call site.
struct Ops {
  Isa isa = Isa::kScalar;
  /// Squared Euclidean distance between two unaligned d-vectors.
  value_t (*dist_sq)(const value_t* a, const value_t* b, index_t d) = nullptr;
  /// Inner product of two unaligned d-vectors.
  value_t (*dot)(const value_t* a, const value_t* b, index_t d) = nullptr;
  /// Argmin over k unpadded row-major centroids (ties -> lowest index);
  /// writes the squared distance to *out_sq when non-null.
  cluster_t (*nearest)(const value_t* point, const value_t* centroids, int k,
                       index_t d, value_t* out_sq) = nullptr;
  /// Blocked argmin over a CentroidPack: streams the point once against
  /// register-blocked tiles of centroids. Bitwise-identical result to k
  /// independent dist_sq calls (see the header comment).
  cluster_t (*nearest_blocked)(const value_t* point, const CentroidPack& pack,
                               value_t* out_sq) = nullptr;
  /// Fused blocked-GEMM argmin epilogue (DESIGN.md §12): streams `mrows`
  /// row-major data rows (leading dimension lda) against centroid panels
  /// [p0, p1) of `b` — a TiledMatrix packed from the k x d centroid matrix
  /// with row_block == kGemmPanelWidth — updating per-row running state
  ///   score[i] = min_j  ||c_j||^2 - 2 <x_i, c_j>     (cnorm[j] = ||c_j||^2)
  /// and best[i] = the argmin. ||x_i||^2 is constant per row, so it drops
  /// out of the fused ||x||^2 + ||c||^2 - 2 x.c argmin; the n x k product
  /// never materializes — only mr x nr register tiles live at once.
  ///
  /// Callers initialize best[i] = 0, score[i] = +inf once per row and may
  /// split [0, row_panels) into any ascending sequence of [p0, p1) sweeps:
  /// each (i, j) dot accumulates strictly sequentially over the depth (one
  /// panel lane per centroid, ascending col-panels), and the epilogue
  /// compares lanes in ascending j with strict '<', so the result is
  /// bitwise invariant across mrows grouping, panel-range cuts and the
  /// pack's col_block — the tile-shape determinism contract.
  void (*gemm_argmin)(const value_t* a, index_t mrows, index_t lda,
                      const TiledMatrix& b, index_t p0, index_t p1,
                      const value_t* cnorm, cluster_t* best,
                      value_t* score) = nullptr;
};

/// True when `isa` is both compiled into this binary and supported by the
/// CPU we are running on. kScalar is always available; kAuto is not a
/// dispatchable entry.
bool available(Isa isa);

/// Highest available ISA on this machine (the kAuto default).
Isa detect_best();

/// Every available ISA, lowest (scalar) first. For tests and benches.
std::vector<Isa> available_isas();

/// Process-wide override, plumbed from Options::simd at every engine entry
/// point. kAuto clears the override (env/CPUID decide again). Unavailable
/// requests clamp downward at resolve time rather than failing, so a flag
/// like --simd avx512 degrades gracefully on older hardware.
void set_isa(Isa isa);

/// Resolves a request to a dispatchable ISA: kAuto consults the override,
/// then KNOR_SIMD (read once per process), then detect_best(); anything
/// unavailable clamps down the avx512 -> avx2 -> sse2 -> scalar chain.
Isa resolve(Isa requested);

/// The active ISA's kernel table (resolve(kAuto)). Hoist the reference out
/// of hot loops: `const kernels::Ops& K = kernels::ops();`.
const Ops& ops();

/// A specific ISA's table (after resolve-clamping). For tests/benches.
const Ops& ops_for(Isa isa);

}  // namespace knor::kernels
