// Runtime ISA dispatch for the SIMD kernel layer (see simd.hpp for the
// contract). The kernel tables are built once; selection is an atomic
// override (Options::simd via set_isa) falling back to KNOR_SIMD (read
// once per process) and then CPUID, clamped down the
// avx512 -> avx2 -> sse2 -> scalar chain to what both the binary and the
// CPU can actually run.
#include "core/kernels/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "core/kernels/isa_tables.hpp"
#include "obs/registry.hpp"

namespace knor::kernels {
namespace {

// Per-ISA dispatch counters ("kernels.dispatch.<isa>"). Every ops()/
// ops_for() resolution bumps the selected ISA's counter; call sites hoist
// the table reference at engine entry / once per iteration, so the counts
// are a pure function of (opts, iterations) — deterministic for a fixed
// machine + KNOR_SIMD, which is all the strip-diff compares (both CI runs
// share one host).
obs::Counter& dispatch_counter(Isa isa) {
  static obs::Counter* counters[kNumIsas] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (const Isa i : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kAvx512})
      counters[static_cast<int>(i)] = &obs::Registry::global().counter(
          std::string("kernels.dispatch.") + to_string(i),
          obs::Det::kDeterministic);
  });
  return *counters[static_cast<int>(isa)];
}

struct Tables {
  Ops entries[kNumIsas];
  Tables() {
    entries[static_cast<int>(Isa::kScalar)] = detail::scalar_ops();
    entries[static_cast<int>(Isa::kSse2)] = detail::sse2_ops();
    entries[static_cast<int>(Isa::kAvx2)] = detail::avx2_ops();
    entries[static_cast<int>(Isa::kAvx512)] = detail::avx512_ops();
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

bool cpu_supports(Isa isa) {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return __builtin_cpu_supports("sse2");
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f");
    case Isa::kAuto:
      return false;
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

/// One step down the fallback chain.
Isa lower(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return Isa::kAvx2;
    case Isa::kAvx2:
      return Isa::kSse2;
    default:
      return Isa::kScalar;
  }
}

/// KNOR_SIMD, parsed once per process (documented in README): later env
/// changes do not retarget a running process. An unrecognized value throws
/// (the same rejection the --simd flag applies) instead of silently
/// falling back — a typo'd ISA must never produce numbers under a
/// different kernel set. The static cache only latches a successful
/// parse, so the error repeats on every resolve until the env is fixed.
Isa env_choice() {
  static const Isa choice = [] {
    const char* env = std::getenv("KNOR_SIMD");
    if (env == nullptr || *env == '\0') return Isa::kAuto;
    return parse_isa_or_throw(env, "KNOR_SIMD");
  }();
  return choice;
}

std::atomic<int> g_override{static_cast<int>(Isa::kAuto)};

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAuto:
      return "auto";
  }
  return "?";
}

bool parse_isa(const std::string& name, Isa* out) {
  for (const Isa isa :
       {Isa::kAuto, Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kAvx512}) {
    if (name == to_string(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

Isa parse_isa_or_throw(const std::string& name, const char* what) {
  Isa parsed = Isa::kAuto;
  if (!parse_isa(name, &parsed))
    throw std::invalid_argument(std::string(what) + "=" + name +
                                " is not a SIMD ISA "
                                "(want auto|scalar|sse2|avx2|avx512)");
  return parsed;
}

bool available(Isa isa) {
  if (isa == Isa::kAuto) return false;
  return tables().entries[static_cast<int>(isa)].dist_sq != nullptr &&
         cpu_supports(isa);
}

Isa detect_best() {
  static const Isa best = [] {
    Isa isa = Isa::kAvx512;
    while (isa != Isa::kScalar && !available(isa)) isa = lower(isa);
    return isa;
  }();
  return best;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kAvx512})
    if (available(isa)) out.push_back(isa);
  return out;
}

void set_isa(Isa isa) {
  g_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

Isa resolve(Isa requested) {
  Isa isa = requested;
  if (isa == Isa::kAuto)
    isa = static_cast<Isa>(g_override.load(std::memory_order_relaxed));
  if (isa == Isa::kAuto) isa = env_choice();
  if (isa == Isa::kAuto) isa = detect_best();
  while (isa != Isa::kScalar && !available(isa)) isa = lower(isa);
  return isa;
}

const Ops& ops() { return ops_for(Isa::kAuto); }

const Ops& ops_for(Isa isa) {
  const Isa resolved = resolve(isa);
  dispatch_counter(resolved).inc();
  return tables().entries[static_cast<int>(resolved)];
}

void CentroidPack::pack(const value_t* centroids, int k, index_t d) {
  const index_t stride = padded_stride(d);
  const std::size_t need = static_cast<std::size_t>(k) * stride;
  if (k != k_ || d != d_ || stride != stride_) {
    // AlignedBuffer zero-fills, so the padding lanes start (and stay) +0.0.
    buf_ = AlignedBuffer<value_t>(need, kCacheLine);
    k_ = k;
    d_ = d;
    stride_ = stride;
  }
  for (int c = 0; c < k; ++c)
    std::memcpy(buf_.data() + static_cast<std::size_t>(c) * stride,
                centroids + static_cast<std::size_t>(c) * d,
                d * sizeof(value_t));
}

}  // namespace knor::kernels
