// Scalar kernel table: thin adapters over the legacy reference
// implementations in core/distance.hpp. `--simd scalar` must reproduce the
// pre-SIMD engines bit-for-bit, so this TU adds no arithmetic of its own —
// it only routes through the exact functions the engines used to inline.
#include <limits>

#include "core/distance.hpp"
#include "core/kernels/isa_tables.hpp"

namespace knor::kernels::detail {
namespace {

value_t scalar_dist_sq(const value_t* a, const value_t* b, index_t d) {
  return knor::dist_sq(a, b, d);
}

value_t scalar_dot(const value_t* a, const value_t* b, index_t d) {
  return knor::dot(a, b, d);
}

cluster_t scalar_nearest(const value_t* point, const value_t* centroids,
                         int k, index_t d, value_t* out_sq) {
  return knor::nearest_centroid(point, centroids, k, d, out_sq);
}

// The pack's rows hold the same d leading values as the original centroid
// matrix and the scalar loop never reads past d, so this is bitwise equal
// to the legacy k-successive-dist_sq scan.
cluster_t scalar_nearest_blocked(const value_t* point,
                                 const CentroidPack& pack, value_t* out_sq) {
  const int k = pack.k();
  const index_t d = pack.d();
  cluster_t best = 0;
  value_t best_sq = std::numeric_limits<value_t>::infinity();
  for (int c = 0; c < k; ++c) {
    const value_t dc = knor::dist_sq(point, pack.row(c), d);
    if (dc < best_sq) {
      best_sq = dc;
      best = static_cast<cluster_t>(c);
    }
  }
  if (out_sq != nullptr) *out_sq = best_sq;
  return best;
}

}  // namespace

Ops scalar_ops() {
  Ops ops;
  ops.isa = Isa::kScalar;
  ops.dist_sq = &scalar_dist_sq;
  ops.dot = &scalar_dot;
  ops.nearest = &scalar_nearest;
  ops.nearest_blocked = &scalar_nearest_blocked;
  return ops;
}

}  // namespace knor::kernels::detail
