// Scalar kernel table: thin adapters over the legacy reference
// implementations in core/distance.hpp. `--simd scalar` must reproduce the
// pre-SIMD engines bit-for-bit, so this TU adds no arithmetic of its own —
// it only routes through the exact functions the engines used to inline.
#include <limits>

#include "core/distance.hpp"
#include "core/kernels/isa_tables.hpp"

namespace knor::kernels::detail {
namespace {

value_t scalar_dist_sq(const value_t* a, const value_t* b, index_t d) {
  return knor::dist_sq(a, b, d);
}

value_t scalar_dot(const value_t* a, const value_t* b, index_t d) {
  return knor::dot(a, b, d);
}

cluster_t scalar_nearest(const value_t* point, const value_t* centroids,
                         int k, index_t d, value_t* out_sq) {
  return knor::nearest_centroid(point, centroids, k, d, out_sq);
}

// The pack's rows hold the same d leading values as the original centroid
// matrix and the scalar loop never reads past d, so this is bitwise equal
// to the legacy k-successive-dist_sq scan.
cluster_t scalar_nearest_blocked(const value_t* point,
                                 const CentroidPack& pack, value_t* out_sq) {
  const int k = pack.k();
  const index_t d = pack.d();
  cluster_t best = 0;
  value_t best_sq = std::numeric_limits<value_t>::infinity();
  for (int c = 0; c < k; ++c) {
    const value_t dc = knor::dist_sq(point, pack.row(c), d);
    if (dc < best_sq) {
      best_sq = dc;
      best = static_cast<cluster_t>(c);
    }
  }
  if (out_sq != nullptr) *out_sq = best_sq;
  return best;
}

// Fused-scalar GEMM-argmin reference (DESIGN.md §12): per (row, centroid)
// the dot product accumulates strictly sequentially over the depth —
// ascending col-panels, ascending columns — which is the exact reduction
// order the vector variants reproduce lane-by-lane. On integer-valued data
// every sum is exact, so all ISAs agree with this reference bitwise
// (tests/conformance_test.cpp's GEMM clause).
void scalar_gemm_argmin(const value_t* a, index_t mrows, index_t lda,
                        const TiledMatrix& b, index_t p0, index_t p1,
                        const value_t* cnorm, cluster_t* best,
                        value_t* score) {
  const index_t rs = b.row_stride();
  const index_t k = b.rows();
  const index_t cp = b.col_panels();
  const index_t cb = b.col_block();
  const std::size_t panel_elems = static_cast<std::size_t>(rs) * cb;
  for (index_t i = 0; i < mrows; ++i) {
    const value_t* row = a + i * lda;
    for (index_t P = p0; P < p1; ++P) {
      const index_t jbase = P * kGemmPanelWidth;
      const index_t jcnt =
          k - jbase < kGemmPanelWidth ? k - jbase : kGemmPanelWidth;
      value_t dots[kGemmPanelWidth] = {};
      const value_t* base = b.panel(P, 0);
      for (index_t J = 0; J < cp; ++J) {
        const value_t* pp = base + J * panel_elems;
        const index_t cm = b.panel_cols(J);
        for (index_t c = 0; c < cm; ++c) {
          const value_t av = row[J * cb + c];
          const value_t* line = pp + c * rs;
          for (index_t t = 0; t < jcnt; ++t) dots[t] += av * line[t];
        }
      }
      for (index_t t = 0; t < jcnt; ++t) {
        const value_t s = cnorm[jbase + t] - 2 * dots[t];
        if (s < score[i]) {
          score[i] = s;
          best[i] = static_cast<cluster_t>(jbase + t);
        }
      }
    }
  }
}

}  // namespace

Ops scalar_ops() {
  Ops ops;
  ops.isa = Isa::kScalar;
  ops.dist_sq = &scalar_dist_sq;
  ops.dot = &scalar_dot;
  ops.nearest = &scalar_nearest;
  ops.nearest_blocked = &scalar_nearest_blocked;
  ops.gemm_argmin = &scalar_gemm_argmin;
  return ops;
}

}  // namespace knor::kernels::detail
