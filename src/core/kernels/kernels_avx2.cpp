// AVX2+FMA kernel table: 4 doubles per lane, fused multiply-add. Compiled
// with -mavx2 -mfma (see CMakeLists); when the compiler cannot target AVX2
// this TU degrades to a null table and the dispatcher clamps to SSE2.
#include "core/kernels/isa_tables.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#define KNOR_HAVE_AVX2 1
#include <immintrin.h>

#include "core/kernels/vec_impl.hpp"
#endif

namespace knor::kernels::detail {

#ifdef KNOR_HAVE_AVX2
namespace {

struct Avx2Traits {
  using vec = __m256d;
  static constexpr index_t kW = 4;
  static vec zero() { return _mm256_setzero_pd(); }
  static vec loadu(const value_t* p) { return _mm256_loadu_pd(p); }
  static vec load(const value_t* p) { return _mm256_load_pd(p); }
  // rem in [1, 3]: masked lanes read as +0.0 without touching memory.
  static vec load_partial(const value_t* p, index_t rem) {
    const __m256i mask = _mm256_setr_epi64x(
        -1, rem > 1 ? -1 : 0, rem > 2 ? -1 : 0, 0);
    return _mm256_maskload_pd(p, mask);
  }
  static vec diff_fma(vec a, vec b, vec acc) {
    const vec diff = _mm256_sub_pd(a, b);
    return _mm256_fmadd_pd(diff, diff, acc);
  }
  static vec mul_fma(vec a, vec b, vec acc) {
    return _mm256_fmadd_pd(a, b, acc);
  }
  static vec add(vec a, vec b) { return _mm256_add_pd(a, b); }
  // Fixed tree: (v0+v1) + (v2+v3) — chosen so the blocked tile can batch
  // four reductions with hadd/permute below under the SAME association.
  static value_t hsum(vec v) {
    const vec h = _mm256_hadd_pd(v, v);  // (v0+v1, v0+v1, v2+v3, v2+v3)
    return _mm_cvtsd_f64(_mm_add_sd(_mm256_castpd256_pd128(h),
                                    _mm256_extractf128_pd(h, 1)));
  }
  // Batched tile reduction: hadd pairs lanes within each accumulator
  // ((s0+s1) and (s2+s3)), the permutes gather the four low/high halves,
  // one add finishes — per accumulator exactly (v0+v1) + (v2+v3), bitwise
  // identical to hsum, at a quarter of the shuffle traffic.
  static void reduce_tile(const vec s[4], value_t out[4]) {
    const vec t0 = _mm256_hadd_pd(s[0], s[1]);  // (a01, b01, a23, b23)
    const vec t1 = _mm256_hadd_pd(s[2], s[3]);  // (c01, d01, c23, d23)
    const vec lo = _mm256_permute2f128_pd(t0, t1, 0x20);  // (a01 b01 c01 d01)
    const vec hi = _mm256_permute2f128_pd(t0, t1, 0x31);  // (a23 b23 c23 d23)
    _mm256_storeu_pd(out, _mm256_add_pd(lo, hi));
  }
  static vec broadcast(value_t x) { return _mm256_set1_pd(x); }
  static void storeu(value_t* p, vec v) { _mm256_storeu_pd(p, v); }
};

}  // namespace

Ops avx2_ops() { return make_ops<Avx2Traits>(Isa::kAvx2); }
#else
Ops avx2_ops() { return Ops{}; }
#endif

}  // namespace knor::kernels::detail
