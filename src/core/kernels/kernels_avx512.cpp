// AVX-512F kernel table: 8 doubles per lane, fused multiply-add, native
// masked loads for the partial chunk. Compiled with -mavx512f (see
// CMakeLists); a compiler without AVX-512 support yields a null table and
// the dispatcher clamps to AVX2.
#include "core/kernels/isa_tables.hpp"

#if defined(__AVX512F__)
#define KNOR_HAVE_AVX512 1
#include <immintrin.h>

#include "core/kernels/vec_impl.hpp"

// GCC 12's _mm512_extractf64x4_pd expands through _mm256_undefined_pd and
// trips -Wuninitialized / -Wmaybe-uninitialized falsely (GCC PR105593).
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace knor::kernels::detail {

#ifdef KNOR_HAVE_AVX512
namespace {

struct Avx512Traits {
  using vec = __m512d;
  static constexpr index_t kW = 8;
  static vec zero() { return _mm512_setzero_pd(); }
  static vec loadu(const value_t* p) { return _mm512_loadu_pd(p); }
  static vec load(const value_t* p) { return _mm512_load_pd(p); }
  // rem in [1, 7]: zero-masked load, dead lanes are +0.0.
  static vec load_partial(const value_t* p, index_t rem) {
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    return _mm512_maskz_loadu_pd(mask, p);
  }
  static vec diff_fma(vec a, vec b, vec acc) {
    const vec diff = _mm512_sub_pd(a, b);
    return _mm512_fmadd_pd(diff, diff, acc);
  }
  static vec mul_fma(vec a, vec b, vec acc) {
    return _mm512_fmadd_pd(a, b, acc);
  }
  static vec add(vec a, vec b) { return _mm512_add_pd(a, b); }
  // Fixed tree: u = low256 + high256, then (u0+u1) + (u2+u3) — chosen so
  // the blocked tile can batch four reductions below under the SAME
  // association.
  static value_t hsum(vec v) {
    const __m256d u = _mm256_add_pd(_mm512_castpd512_pd256(v),
                                    _mm512_extractf64x4_pd(v, 1));
    const __m256d h = _mm256_hadd_pd(u, u);  // (u0+u1, u0+u1, u2+u3, u2+u3)
    return _mm_cvtsd_f64(_mm_add_sd(_mm256_castpd256_pd128(h),
                                    _mm256_extractf128_pd(h, 1)));
  }
  // Batched tile reduction, bitwise identical to hsum per accumulator.
  static void reduce_tile(const vec s[4], value_t out[4]) {
    __m256d u[4];
    for (int t = 0; t < 4; ++t)
      u[t] = _mm256_add_pd(_mm512_castpd512_pd256(s[t]),
                           _mm512_extractf64x4_pd(s[t], 1));
    const __m256d t0 = _mm256_hadd_pd(u[0], u[1]);
    const __m256d t1 = _mm256_hadd_pd(u[2], u[3]);
    const __m256d lo = _mm256_permute2f128_pd(t0, t1, 0x20);
    const __m256d hi = _mm256_permute2f128_pd(t0, t1, 0x31);
    _mm256_storeu_pd(out, _mm256_add_pd(lo, hi));
  }
  static vec broadcast(value_t x) { return _mm512_set1_pd(x); }
  static void storeu(value_t* p, vec v) { _mm512_storeu_pd(p, v); }
};

}  // namespace

Ops avx512_ops() { return make_ops<Avx512Traits>(Isa::kAvx512); }
#else
Ops avx512_ops() { return Ops{}; }
#endif

}  // namespace knor::kernels::detail
