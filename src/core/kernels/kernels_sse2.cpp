// SSE2 kernel table: 2 doubles per lane-pair, no FMA (mul + add, like the
// scalar form). SSE2 is the x86-64 baseline so this TU needs no extra
// compiler flags; on non-x86 targets it compiles to a null table.
#include "core/kernels/isa_tables.hpp"

#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define KNOR_HAVE_SSE2 1
#include <emmintrin.h>

#include "core/kernels/vec_impl.hpp"
#endif

namespace knor::kernels::detail {

#ifdef KNOR_HAVE_SSE2
namespace {

struct Sse2Traits {
  using vec = __m128d;
  static constexpr index_t kW = 2;
  static vec zero() { return _mm_setzero_pd(); }
  static vec loadu(const value_t* p) { return _mm_loadu_pd(p); }
  static vec load(const value_t* p) { return _mm_load_pd(p); }
  // rem can only be 1 at W=2: low lane live, high lane +0.0.
  static vec load_partial(const value_t* p, index_t) { return _mm_set_sd(*p); }
  static vec diff_fma(vec a, vec b, vec acc) {
    const vec diff = _mm_sub_pd(a, b);
    return _mm_add_pd(acc, _mm_mul_pd(diff, diff));
  }
  static vec mul_fma(vec a, vec b, vec acc) {
    return _mm_add_pd(acc, _mm_mul_pd(a, b));
  }
  static vec add(vec a, vec b) { return _mm_add_pd(a, b); }
  // Fixed tree: lane0 + lane1.
  static value_t hsum(vec v) {
    return _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
  }
  static void reduce_tile(const vec s[4], value_t out[4]) {
    for (int t = 0; t < 4; ++t) out[t] = hsum(s[t]);
  }
  static vec broadcast(value_t x) { return _mm_set1_pd(x); }
  static void storeu(value_t* p, vec v) { _mm_storeu_pd(p, v); }
};

}  // namespace

Ops sse2_ops() { return make_ops<Sse2Traits>(Isa::kSse2); }
#else
Ops sse2_ops() { return Ops{}; }
#endif

}  // namespace knor::kernels::detail
