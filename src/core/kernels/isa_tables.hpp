// Internal: per-ISA kernel-table factories. Each lives in its own
// translation unit so CMake can attach the matching -m flags; a variant
// whose ISA the compiler cannot target returns a null-filled table and the
// dispatcher (simd.cpp) clamps past it.
#pragma once

#include "core/kernels/simd.hpp"

namespace knor::kernels::detail {

Ops scalar_ops();
Ops sse2_ops();
Ops avx2_ops();
Ops avx512_ops();

}  // namespace knor::kernels::detail
