// Blocked-GEMM Lloyd's — the MATLAB/BLAS comparator of Table 3, now a true
// tiled engine (DESIGN.md §12).
//
// Phase I is expressed algebraically: d^2(x, c) = ||x||^2 - 2 x.c + ||c||^2,
// so the assignment is an argmin over the rank-d product X C^T plus rank-1
// corrections. Instead of materializing the n x k product (the old
// implementation's memory cost), centroids are packed once per iteration
// into a 2D-partitioned TiledMatrix — row-blocks of kGemmPanelWidth
// centroids x col-blocks of the depth, every panel 64-byte aligned — and
// the per-ISA register-tiled gemm_argmin kernel streams cache-sized tiles
// of data rows against centroid panels with the fused
// ||x||^2 + ||c||^2 - 2 x.c argmin epilogue: only mr x nr accumulator
// tiles ever exist, and each panel sweep is amortized over a whole row
// block (where the row-at-a-time K.dot formulation reloaded all k
// centroids per point).
//
// Determinism: the cache tile (--gemm-tile) is a pure performance knob.
// Each (row, centroid) dot accumulates strictly sequentially over the
// depth inside the kernel, panels are swept in ascending centroid order,
// and the per-chunk accumulators stay keyed to the scheduler's 1D row-
// chunk grid (a pure function of n and task_size) with the fixed-tree
// fold — so centroids and assignments are bitwise invariant across tile
// shapes, thread counts and scheduling policies (the §7/§8 contract,
// extended by §12; pinned in conformance_test and exactness_test).
#include <limits>
#include <vector>

#include "common/timer.hpp"
#include "core/chunk_accum.hpp"
#include "core/engines.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/local_centroids.hpp"
#include "core/run_metrics.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor {

Result gemm_kmeans(ConstMatrixView data, const Options& opts) {
  // Hoisted once per run: no engine mutates the process-global dispatch
  // any more, so two concurrent runs with different --simd cannot retarget
  // each other's kernels.
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  detail::RunMetricsScope metrics;
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  DenseMatrix cur = init_centroids(data, opts);
  DenseMatrix next(static_cast<index_t>(k), d);

  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();
  sched::Scheduler sched(T, topo, /*bind=*/opts.numa_aware && opts.numa_bind,
                         opts.sched);
  const index_t task_size =
      sched::Scheduler::resolve_task_size(n, opts.task_size);
  const auto chunks =
      static_cast<std::size_t>(sched::Scheduler::num_chunks(n, task_size));
  ChunkAccum<LocalCentroids> locals(chunks, k, d);
  std::vector<std::uint64_t> tchanged(static_cast<std::size_t>(T), 0);
  // Per-worker CPU seconds for the §1.6 makespan proxy — same convention
  // as engine_impl (super-phase only, fold excluded), so oversubscribed
  // containers compare engines on work, not on how many workers fit.
  std::vector<double> tbusy(static_cast<std::size_t>(T), 0.0);

  // Cache-level blocking: `tile.rows` data rows share each sweep over
  // `tile.cols / kGemmPanelWidth` centroid panels. The 2D tile grid is
  // (scheduler row chunk x centroid panel range); accumulation stays keyed
  // to the 1D row-chunk slots, so the centroid cut never affects results.
  const GemmTile tile = resolve_gemm_tile(opts.gemm_tile, n, k);
  const index_t width = kernels::kGemmPanelWidth;
  const index_t panels = (static_cast<index_t>(k) + width - 1) / width;
  const index_t panel_step = tile.cols / width;

  // Per-worker running argmin state for one row block (score = fused
  // ||c||^2 - 2 x.c; the ||x||^2 term is row-constant and drops out).
  std::vector<std::vector<value_t>> tscore(
      static_cast<std::size_t>(T),
      std::vector<value_t>(static_cast<std::size_t>(tile.rows)));
  std::vector<std::vector<cluster_t>> tbest(
      static_cast<std::size_t>(T),
      std::vector<cluster_t>(static_cast<std::size_t>(tile.rows)));

  std::vector<value_t> cnorm(static_cast<std::size_t>(k));
  TiledMatrix ctiles;

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    const double driver_start = thread_cpu_seconds();
    // Packing discipline: centroids move every iteration until
    // convergence, so the panels (and the fused epilogue's ||c||^2 terms)
    // are rebuilt here, once per iteration, on the driver thread — O(k*d),
    // noise next to the O(n*k*d) product. A frozen-centroid caller (e.g.
    // assignment-only serving) would pack exactly once per run.
    ctiles.pack(cur.const_view(), width, d);
    for (int c = 0; c < k; ++c) {
      const value_t* row = cur.row(static_cast<index_t>(c));
      cnorm[static_cast<std::size_t>(c)] = K.dot(row, row, d);
    }
    res.driver_serial_s += thread_cpu_seconds() - driver_start;

    sched.begin_chunks(n, task_size, nullptr);
    sched.run([&](int tid) {
      const double cpu_start = thread_cpu_seconds();
      tchanged[static_cast<std::size_t>(tid)] = 0;
      value_t* score = tscore[static_cast<std::size_t>(tid)].data();
      cluster_t* best = tbest[static_cast<std::size_t>(tid)].data();
      sched::Task task;
      while (sched.next_chunk(tid, task)) {
        auto& acc = locals.touch(task.chunk);
        for (index_t r0 = task.begin; r0 < task.end; r0 += tile.rows) {
          const index_t m =
              task.end - r0 < tile.rows ? task.end - r0 : tile.rows;
          for (index_t i = 0; i < m; ++i) {
            score[i] = std::numeric_limits<value_t>::infinity();
            best[i] = 0;
          }
          // Streamed k-panel argmin: ascending panel ranges keep the
          // ties->lowest-index rule; the running (best, score) state is
          // all that persists between sweeps.
          for (index_t p0 = 0; p0 < panels; p0 += panel_step)
            K.gemm_argmin(data.row(r0), m, d, ctiles, p0,
                          panels - p0 < panel_step ? panels : p0 + panel_step,
                          cnorm.data(), best, score);
          for (index_t i = 0; i < m; ++i) {
            const index_t r = r0 + i;
            if (best[i] != res.assignments[r])
              ++tchanged[static_cast<std::size_t>(tid)];
            res.assignments[r] = best[i];
            acc.add(best[i], data.row(r));
          }
        }
      }
      tbusy[static_cast<std::size_t>(tid)] +=
          thread_cpu_seconds() - cpu_start;
      sched.barrier().arrive_and_wait();
      locals.fold(tid, T, sched.barrier());
    });
    res.counters.dist_computations +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);

    std::uint64_t changed = 0;
    for (const auto tc : tchanged) changed += tc;
    res.cluster_sizes = locals.merged().finalize_into(next, cur);
    locals.next_iteration();
    std::swap(cur, next);
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.thread_busy_s.assign(tbusy.begin(), tbusy.end());
  res.centroids = std::move(cur);
  metrics.finish(res);
  return res;
}

}  // namespace knor
