// GEMM-formulated Lloyd's — the MATLAB/BLAS stand-in of Table 3.
//
// Phase I is expressed algebraically: d^2(x, c) = ||x||^2 - 2 x.c + ||c||^2,
// so the n x k distance-squared matrix is a rank-d product X C^T plus rank-1
// corrections. We implement the product with a cache-blocked dgemm kernel
// (no external BLAS). This reproduces the characteristic behaviour the
// paper measures: GEMM does all nk dot products every iteration (no
// pruning) and materializes an n x k block, so it loses to the iterative
// kernel at Table-3 scale while staying within the same order of magnitude.
#include <cstring>
#include <limits>
#include <vector>

#include "common/timer.hpp"
#include "core/engines.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/chunk_accum.hpp"
#include "core/local_centroids.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor {
namespace {

// C = A (rows x d, row-major) * B^T (k x d, row-major) -> rows x k, blocked.
// One call per scheduler task; rows index into the full matrices. The
// inner dot goes through the dispatched SIMD kernel.
void gemm_nt_rows(const kernels::Ops& K, const value_t* a, const value_t* b,
                  value_t* c, index_t row_begin, index_t row_end, index_t d,
                  int k) {
  constexpr index_t kBlockRows = 64;
  for (index_t i0 = row_begin; i0 < row_end; i0 += kBlockRows) {
    const index_t i1 = std::min(row_end, i0 + kBlockRows);
    for (index_t i = i0; i < i1; ++i) {
      const value_t* ai = a + static_cast<std::size_t>(i) * d;
      value_t* ci = c + static_cast<std::size_t>(i) * k;
      for (int j = 0; j < k; ++j)
        ci[j] = K.dot(ai, b + static_cast<std::size_t>(j) * d, d);
    }
  }
}

}  // namespace

Result gemm_kmeans(ConstMatrixView data, const Options& opts) {
  kernels::set_isa(opts.simd);
  const kernels::Ops& K = kernels::ops();
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  DenseMatrix cur = init_centroids(data, opts);
  DenseMatrix next(static_cast<index_t>(k), d);

  // BLAS-library stand-ins parallelize with a static row split; model that
  // with the scheduler's kStatic policy (no stealing). The accumulation is
  // still keyed to the chunk grid and folded with the fixed tree, so like
  // every engine the result is bitwise independent of the thread count
  // (DESIGN.md §7) — only the execution schedule is BLAS-shaped.
  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();
  sched::Scheduler sched(T, topo, /*bind=*/opts.numa_aware && opts.numa_bind,
                         sched::SchedPolicy::kStatic);
  const index_t task_size =
      sched::Scheduler::resolve_task_size(n, opts.task_size);
  const auto chunks =
      static_cast<std::size_t>(sched::Scheduler::num_chunks(n, task_size));
  ChunkAccum<LocalCentroids> locals(chunks, k, d);
  std::vector<std::uint64_t> tchanged(static_cast<std::size_t>(T), 0);

  // Row norms are iteration-invariant; they do not even affect the argmin,
  // but GEMM implementations compute them anyway — keep the work faithful.
  std::vector<value_t> xnorm(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r)
    xnorm[static_cast<std::size_t>(r)] = K.dot(data.row(r), data.row(r), d);

  std::vector<value_t> cnorm(static_cast<std::size_t>(k));
  // The n x k product block — the GEMM formulation's memory cost.
  std::vector<value_t> prod(static_cast<std::size_t>(n) * k);

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    for (int c = 0; c < k; ++c) {
      const value_t* row = cur.row(static_cast<index_t>(c));
      cnorm[static_cast<std::size_t>(c)] = K.dot(row, row, d);
    }
    // Chunked dgemm: each task owns a disjoint row block of `prod`.
    sched.parallel_for(n, task_size, nullptr,
                       [&](int, const sched::Task& task) {
                         gemm_nt_rows(K, data.data(), cur.data(),
                                      prod.data(), task.begin, task.end, d,
                                      k);
                       });
    res.counters.dist_computations +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);

    sched.begin_chunks(n, task_size, nullptr);
    sched.run([&](int tid) {
      tchanged[static_cast<std::size_t>(tid)] = 0;
      sched::Task task;
      while (sched.next_chunk(tid, task)) {
        auto& acc = locals.touch(task.chunk);
        for (index_t r = task.begin; r < task.end; ++r) {
          const value_t* pr = prod.data() + static_cast<std::size_t>(r) * k;
          cluster_t best = 0;
          value_t best_d = cnorm[0] - 2 * pr[0];
          for (int c = 1; c < k; ++c) {
            const value_t dc = cnorm[static_cast<std::size_t>(c)] - 2 * pr[c];
            if (dc < best_d) {
              best_d = dc;
              best = static_cast<cluster_t>(c);
            }
          }
          if (best != res.assignments[r])
            ++tchanged[static_cast<std::size_t>(tid)];
          res.assignments[r] = best;
          acc.add(best, data.row(r));
        }
      }
      sched.barrier().arrive_and_wait();
      locals.fold(tid, T, sched.barrier());
    });
    std::uint64_t changed = 0;
    for (const auto tc : tchanged) changed += tc;
    res.cluster_sizes = locals.merged().finalize_into(next, cur);
    locals.next_iteration();
    std::swap(cur, next);
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += K.dist_sq(data.row(r), cur.row(res.assignments[r]), d);
  res.centroids = std::move(cur);
  return res;
}

}  // namespace knor
