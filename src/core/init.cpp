#include "core/init.hpp"

#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "common/prng.hpp"
#include "core/kernels/simd.hpp"
#include "core/local_centroids.hpp"

namespace knor {

const char* to_string(Init init) {
  switch (init) {
    case Init::kForgy: return "forgy";
    case Init::kRandom: return "random";
    case Init::kKmeansPP: return "kmeans++";
    case Init::kProvided: return "provided";
  }
  return "?";
}

std::vector<index_t> sample_rows(index_t n, int k, std::uint64_t seed) {
  if (static_cast<index_t>(k) > n)
    throw std::invalid_argument("sample_rows: k > n");
  Prng rng(seed, /*stream=*/0xf0e9);
  std::unordered_set<index_t> chosen;
  std::vector<index_t> rows;
  rows.reserve(static_cast<std::size_t>(k));
  while (rows.size() < static_cast<std::size_t>(k)) {
    const index_t r = rng.next_below(n);
    if (chosen.insert(r).second) rows.push_back(r);
  }
  return rows;
}

namespace {

DenseMatrix init_forgy(ConstMatrixView data, const Options& opts) {
  DenseMatrix centroids(static_cast<index_t>(opts.k), data.cols());
  const auto rows = sample_rows(data.rows(), opts.k, opts.seed);
  for (int c = 0; c < opts.k; ++c)
    std::memcpy(centroids.row(static_cast<index_t>(c)),
                data.row(rows[static_cast<std::size_t>(c)]),
                data.cols() * sizeof(value_t));
  return centroids;
}

DenseMatrix init_random_partition(ConstMatrixView data, const Options& opts) {
  LocalCentroids acc(opts.k, data.cols());
  for (index_t r = 0; r < data.rows(); ++r) {
    // Per-row stream keeps the assignment independent of traversal order.
    Prng rng(opts.seed ^ 0x2545f4914f6cdd1dULL, r);
    acc.add(static_cast<cluster_t>(
                rng.next_below(static_cast<std::uint64_t>(opts.k))),
            data.row(r));
  }
  DenseMatrix centroids(static_cast<index_t>(opts.k), data.cols());
  // A random partition of n >= k rows can still leave a cluster empty;
  // fall back to the forgy row for that cluster.
  DenseMatrix fallback = init_forgy(data, opts);
  acc.finalize_into(centroids, fallback);
  return centroids;
}

DenseMatrix init_kmeanspp(ConstMatrixView data, const Options& opts) {
  // Resolved per run, never via the process-global dispatch: the D^2
  // distances must use the same ISA as the engine that follows, even with
  // concurrent runs requesting different --simd in one process.
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  const index_t n = data.rows();
  const index_t d = data.cols();
  DenseMatrix centroids(static_cast<index_t>(opts.k), d);
  Prng rng(opts.seed, /*stream=*/0x9977);

  // First centre: uniform.
  std::memcpy(centroids.row(0), data.row(rng.next_below(n)),
              d * sizeof(value_t));

  // dist2[r] = squared distance to the nearest chosen centre so far.
  std::vector<value_t> dist2(static_cast<std::size_t>(n));
  double total = 0.0;
  for (index_t r = 0; r < n; ++r) {
    dist2[static_cast<std::size_t>(r)] =
        K.dist_sq(data.row(r), centroids.row(0), d);
    total += dist2[static_cast<std::size_t>(r)];
  }

  for (int c = 1; c < opts.k; ++c) {
    index_t pick = 0;
    if (total <= 0.0) {
      // All remaining mass at distance zero (duplicate points): uniform.
      pick = rng.next_below(n);
    } else {
      double target = rng.next_double() * total;
      for (index_t r = 0; r < n; ++r) {
        target -= dist2[static_cast<std::size_t>(r)];
        if (target <= 0.0) {
          pick = r;
          break;
        }
        pick = r;  // numerical slack: fall through to last row
      }
    }
    std::memcpy(centroids.row(static_cast<index_t>(c)), data.row(pick),
                d * sizeof(value_t));
    // Tighten dist2 against the new centre.
    total = 0.0;
    for (index_t r = 0; r < n; ++r) {
      const value_t dc =
          K.dist_sq(data.row(r), centroids.row(static_cast<index_t>(c)), d);
      auto& dr = dist2[static_cast<std::size_t>(r)];
      if (dc < dr) dr = dc;
      total += dr;
    }
  }
  return centroids;
}

}  // namespace

DenseMatrix init_centroids(ConstMatrixView data, const Options& opts) {
  if (opts.k < 1) throw std::invalid_argument("kmeans: k < 1");
  if (data.rows() == 0) throw std::invalid_argument("kmeans: empty dataset");
  if (static_cast<index_t>(opts.k) > data.rows())
    throw std::invalid_argument("kmeans: k > n");

  switch (opts.init) {
    case Init::kForgy:
      return init_forgy(data, opts);
    case Init::kRandom:
      return init_random_partition(data, opts);
    case Init::kKmeansPP:
      return init_kmeanspp(data, opts);
    case Init::kProvided: {
      if (opts.initial_centroids.rows() != static_cast<index_t>(opts.k) ||
          opts.initial_centroids.cols() != data.cols())
        throw std::invalid_argument(
            "kmeans: provided centroids shape mismatch");
      DenseMatrix copy(static_cast<index_t>(opts.k), data.cols());
      std::memcpy(copy.data(), opts.initial_centroids.data(),
                  copy.size() * sizeof(value_t));
      return copy;
    }
  }
  throw std::invalid_argument("kmeans: unknown init");
}

}  // namespace knor
