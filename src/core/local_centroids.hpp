// Per-thread centroid accumulators — the heart of ||Lloyd's (Algorithm 1).
//
// Each thread owns a private (k x d sums + k counts) structure, updated
// without any synchronization during the super-phase; after the single
// per-iteration barrier the T structures are merged pairwise in parallel
// (sched/reduction.hpp) and finalized into the next iteration's centroids.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/dense_matrix.hpp"
#include "common/types.hpp"

namespace knor {

class LocalCentroids {
 public:
  LocalCentroids() = default;
  LocalCentroids(int k, index_t d);

  /// Accumulate `row` into cluster c.
  void add(cluster_t c, const value_t* row) {
    value_t* s = sums_.data() + static_cast<std::size_t>(c) * d_;
    for (index_t j = 0; j < d_; ++j) s[j] += row[j];
    ++counts_[c];
  }

  /// Merge `other` into this (other is left untouched).
  void merge(const LocalCentroids& other);

  /// Zero all sums and counts for the next iteration.
  void clear();

  int k() const { return k_; }
  index_t d() const { return d_; }
  index_t count(cluster_t c) const { return counts_[c]; }
  const value_t* sum(cluster_t c) const {
    return sums_.data() + static_cast<std::size_t>(c) * d_;
  }

  /// Raw accumulator access (k*d sums, k counts) for the cross-node
  /// reduction hook: knord allreduces the merged accumulator in place.
  value_t* sums_data() { return sums_.data(); }
  index_t* counts_data() { return counts_.data(); }

  /// Compute means into `centroids` (k x d). Clusters with no members keep
  /// their previous centroid (standard Lloyd's behaviour; avoids NaNs and
  /// matches the serial reference exactly).
  /// Returns the per-cluster sizes.
  std::vector<index_t> finalize_into(DenseMatrix& centroids,
                                     const DenseMatrix& previous) const;

  std::size_t bytes() const {
    return sums_.size() * sizeof(value_t) + counts_.size() * sizeof(index_t);
  }

 private:
  int k_ = 0;
  index_t d_ = 0;
  AlignedBuffer<value_t> sums_;
  std::vector<index_t> counts_;
};

/// Signed per-thread centroid delta: points joining a cluster add, points
/// leaving subtract. Used by the pruned engines (knori with MTI, knors):
/// a clause-1-skipped point provably kept its membership, so it
/// contributes *nothing* — no accumulate, and in SEM no I/O. The merged
/// deltas are applied to persistent global sums/counts each iteration.
class SignedCentroids {
 public:
  SignedCentroids() = default;
  SignedCentroids(int k, index_t d);

  void add(cluster_t c, const value_t* v) { apply(c, v, value_t(1)); }
  void sub(cluster_t c, const value_t* v) { apply(c, v, value_t(-1)); }

  void clear();
  /// Merge `other` into this.
  void merge(const SignedCentroids& other);
  /// Apply this delta to persistent accumulators (sums: k x d, counts: k).
  void apply_to(value_t* sums, std::int64_t* counts) const;

  int k() const { return k_; }
  index_t d() const { return d_; }
  std::size_t bytes() const {
    return sums_.size() * sizeof(value_t) +
           counts_.size() * sizeof(std::int64_t);
  }

  /// Raw delta access (k*d signed sums, k signed counts) for the
  /// cross-node reduction hook.
  value_t* sums_data() { return sums_.data(); }
  std::int64_t* counts_data() { return counts_.data(); }

 private:
  void apply(cluster_t c, const value_t* v, value_t sign) {
    value_t* s = sums_.data() + static_cast<std::size_t>(c) * d_;
    for (index_t j = 0; j < d_; ++j) s[j] += sign * v[j];
    counts_[c] += sign > 0 ? 1 : -1;
  }

  int k_ = 0;
  index_t d_ = 0;
  AlignedBuffer<value_t> sums_;
  std::vector<std::int64_t> counts_;
};

/// Compute means from persistent sums/counts into `centroids`; clusters
/// with count <= 0 keep the row from `previous`. Returns cluster sizes.
std::vector<index_t> finalize_sums(const value_t* sums,
                                   const std::int64_t* counts, int k,
                                   index_t d, DenseMatrix& centroids,
                                   const DenseMatrix& previous);

}  // namespace knor
