// Entry points for every k-means engine in the library.
//
// `kmeans` (declared in knor/knor.hpp, implemented in knori.cpp) is the
// public in-memory routine (the paper's knori / knori-). The functions here
// expose the individual algorithms and baselines the evaluation compares:
//
//   lloyd_serial    — single-thread reference (Table 3 baseline).
//   lloyd_locked    — naive parallel Lloyd's: shared next-iteration
//                     centroids guarded by per-centroid locks; exhibits the
//                     phase-II interference the paper's §4 describes.
//   elkan_ti        — full Elkan triangle-inequality algorithm with the
//                     O(nk) lower-bound matrix (what MTI simplifies).
//   minibatch       — mini-batch SGD k-means (Sophia-ML stand-in, §2).
//   gemm_kmeans     — Lloyd's phase I expressed as ||x||^2 - 2 X C^T +
//                     ||c||^2 over a blocked dgemm (MATLAB/BLAS stand-in,
//                     Table 3).
//
// All exact engines (serial, locked, elkan, gemm, and the parallel engine
// behind kmeans) follow the identical iteration protocol — same argmin tie
// rule (lowest index), same empty-cluster rule (keep previous centroid),
// same convergence test (membership changes <= tolerance * n) — so tests
// can require they produce the same clustering.
#pragma once

#include "core/kmeans_types.hpp"

namespace knor {

Result lloyd_serial(ConstMatrixView data, const Options& opts);
Result lloyd_locked(ConstMatrixView data, const Options& opts);
Result elkan_ti(ConstMatrixView data, const Options& opts);
Result gemm_kmeans(ConstMatrixView data, const Options& opts);

struct MinibatchOptions {
  index_t batch_size = 1024;
  int max_iters = 100;  ///< number of mini-batch steps
};
/// Mini-batch k-means (approximate; converges in energy, not assignments).
Result minibatch(ConstMatrixView data, const Options& opts,
                 const MinibatchOptions& mb);

}  // namespace knor
