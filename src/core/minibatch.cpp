// Mini-batch k-means (Sculley, WWW'10) — the Sophia-ML stand-in from the
// paper's related work (§2). Approximate: per step, a sampled batch is
// assigned and centroids move with per-centre learning rates 1/count.
// Included to let benches contrast exact knor routines with the
// approximation the paper chose not to make.
#include <vector>

#include "common/prng.hpp"
#include "common/timer.hpp"
#include "core/distance.hpp"
#include "core/engines.hpp"
#include "core/init.hpp"

namespace knor {

Result minibatch(ConstMatrixView data, const Options& opts,
                 const MinibatchOptions& mb) {
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;

  Result res;
  DenseMatrix cur = init_centroids(data, opts);
  std::vector<index_t> counts(static_cast<std::size_t>(k), 0);
  std::vector<index_t> batch(static_cast<std::size_t>(mb.batch_size));
  std::vector<cluster_t> batch_assign(static_cast<std::size_t>(mb.batch_size));
  Prng rng(opts.seed, /*stream=*/0xba7c);

  for (int it = 0; it < mb.max_iters; ++it) {
    WallTimer timer;
    for (auto& b : batch) b = rng.next_below(n);
    // Assign the whole batch against frozen centroids...
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch_assign[i] =
          nearest_centroid(data.row(batch[i]), cur.data(), k, d, nullptr);
      res.counters.dist_computations += static_cast<std::uint64_t>(k);
    }
    // ...then take gradient steps with per-centre rates.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const cluster_t c = batch_assign[i];
      const value_t eta =
          static_cast<value_t>(1.0) / static_cast<value_t>(++counts[c]);
      value_t* centre = cur.row(c);
      const value_t* v = data.row(batch[i]);
      for (index_t j = 0; j < d; ++j)
        centre[j] += eta * (v[j] - centre[j]);
    }
    res.iter_times.record(timer.elapsed());
    ++res.iters;
  }

  // Final full assignment + energy (the approximation is in the centroids,
  // not in the reported clustering).
  res.assignments.resize(static_cast<std::size_t>(n));
  res.cluster_sizes.assign(static_cast<std::size_t>(k), 0);
  for (index_t r = 0; r < n; ++r) {
    value_t dbest = 0;
    const cluster_t best = nearest_centroid(data.row(r), cur.data(), k, d, &dbest);
    res.assignments[r] = best;
    ++res.cluster_sizes[best];
    res.energy += dbest * dbest;
  }
  res.converged = false;  // mini-batch has no membership-stability criterion
  res.centroids = std::move(cur);
  return res;
}

}  // namespace knor
