// Mini-batch k-means (Sculley, WWW'10) — the Sophia-ML stand-in from the
// paper's related work (§2). Approximate: per step, a sampled batch is
// assigned and centroids move with per-centre learning rates 1/count.
// Included to let benches contrast exact knor routines with the
// approximation the paper chose not to make.
//
// The batch assignment and the final full assignment run on the
// work-stealing scheduler (the gradient step is inherently sequential —
// each update changes the learning rate of the next). The final energy is
// accumulated per chunk and summed in chunk order, so the reported result
// is deterministic for a given (data, opts) regardless of threads.
#include <vector>

#include "common/prng.hpp"
#include "common/timer.hpp"
#include "core/engines.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "core/init.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor {

Result minibatch(ConstMatrixView data, const Options& opts,
                 const MinibatchOptions& mb) {
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;

  Result res;
  DenseMatrix cur = init_centroids(data, opts);
  kernels::CentroidPack pack;
  std::vector<index_t> counts(static_cast<std::size_t>(k), 0);
  std::vector<index_t> batch(static_cast<std::size_t>(mb.batch_size));
  std::vector<cluster_t> batch_assign(static_cast<std::size_t>(mb.batch_size));
  Prng rng(opts.seed, /*stream=*/0xba7c);

  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();
  sched::Scheduler sched(T, topo, /*bind=*/opts.numa_aware && opts.numa_bind,
                         opts.sched);
  std::vector<std::uint64_t> tdists(static_cast<std::size_t>(T), 0);

  for (int it = 0; it < mb.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);
    for (auto& b : batch) b = rng.next_below(n);
    // Assign the whole batch against frozen centroids (parallel; each
    // position is independent)...
    sched.parallel_for(
        static_cast<index_t>(batch.size()), 0, nullptr,
        [&](int tid, const sched::Task& task) {
          for (index_t i = task.begin; i < task.end; ++i)
            batch_assign[static_cast<std::size_t>(i)] = K.nearest_blocked(
                data.row(batch[static_cast<std::size_t>(i)]), pack, nullptr);
          tdists[static_cast<std::size_t>(tid)] +=
              task.size() * static_cast<std::uint64_t>(k);
        });
    // ...then take gradient steps with per-centre rates (sequential).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const cluster_t c = batch_assign[i];
      const value_t eta =
          static_cast<value_t>(1.0) / static_cast<value_t>(++counts[c]);
      value_t* centre = cur.row(c);
      const value_t* v = data.row(batch[i]);
      for (index_t j = 0; j < d; ++j)
        centre[j] += eta * (v[j] - centre[j]);
    }
    res.iter_times.record(timer.elapsed());
    ++res.iters;
  }

  // Final full assignment + energy (the approximation is in the centroids,
  // not in the reported clustering). Per-chunk energies summed in chunk
  // order keep the FP result thread-count independent.
  pack.pack(cur);
  res.assignments.resize(static_cast<std::size_t>(n));
  res.cluster_sizes.assign(static_cast<std::size_t>(k), 0);
  const index_t task_size = sched::Scheduler::auto_task_size(n);
  std::vector<double> chunk_energy(
      static_cast<std::size_t>(sched::Scheduler::num_chunks(n, task_size)),
      0.0);
  std::vector<std::vector<index_t>> tcounts(
      static_cast<std::size_t>(T),
      std::vector<index_t>(static_cast<std::size_t>(k), 0));
  sched.parallel_for(n, task_size, nullptr,
                     [&](int tid, const sched::Task& task) {
                       double e = 0.0;
                       auto& tc = tcounts[static_cast<std::size_t>(tid)];
                       for (index_t r = task.begin; r < task.end; ++r) {
                         value_t best_sq = 0;
                         const cluster_t best =
                             K.nearest_blocked(data.row(r), pack, &best_sq);
                         res.assignments[static_cast<std::size_t>(r)] = best;
                         ++tc[best];
                         e += static_cast<double>(best_sq);
                       }
                       chunk_energy[task.chunk] = e;
                       tdists[static_cast<std::size_t>(tid)] +=
                           task.size() * static_cast<std::uint64_t>(k);
                     });
  for (const double e : chunk_energy) res.energy += e;
  for (const auto& tc : tcounts)
    for (int c = 0; c < k; ++c)
      res.cluster_sizes[static_cast<std::size_t>(c)] +=
          tc[static_cast<std::size_t>(c)];
  for (const auto td : tdists) res.counters.dist_computations += td;
  res.converged = false;  // mini-batch has no membership-stability criterion
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor
