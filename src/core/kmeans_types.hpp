// Options and result types shared by every knor module (knori / knors /
// knord) and by the baseline implementations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/dense_matrix.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "core/kernels/simd.hpp"
#include "obs/registry.hpp"
#include "sched/scheduler.hpp"

namespace knor {

/// Centroid initialization method.
enum class Init {
  kForgy,     ///< k distinct rows drawn uniformly at random
  kRandom,    ///< random partition: each row assigned a random cluster,
              ///< centroid = partition mean
  kKmeansPP,  ///< D^2 weighting (k-means++)
  kProvided,  ///< caller supplies Options::initial_centroids
};

const char* to_string(Init init);

/// Cache-level tile of the blocked-GEMM engine (CLI --gemm-tile "RxC"):
/// each sweep streams `rows` data rows against `cols` centroids' panels.
/// 0 = auto (resolve_gemm_tile picks an L2-resident shape). A pure
/// performance knob: the fused kernel's reduction order is tile-shape
/// independent, so results are bitwise identical for every tile (DESIGN.md
/// §12).
struct GemmTile {
  index_t rows = 0;
  index_t cols = 0;
};

/// Parses "auto" (both 0) or "RxC" with strictly positive integers.
/// Returns false on anything else (out untouched).
bool parse_gemm_tile(const std::string& name, GemmTile* out);

/// Throwing form shared by CLI flags (std::invalid_argument naming `what`),
/// mirroring kernels::parse_isa_or_throw: a malformed tile must exit
/// nonzero, never silently cluster under a different shape.
GemmTile parse_gemm_tile_or_throw(const std::string& name, const char* what);

/// Fills in auto (zero) fields: 64 rows x 256 centroids, clamped to the
/// problem and rounded up to whole kernels::kGemmPanelWidth panels.
GemmTile resolve_gemm_tile(GemmTile tile, index_t n, int k);

struct Options {
  int k = 8;
  int max_iters = 100;
  /// Converged when the fraction of points changing membership in an
  /// iteration is <= tolerance (0 = exact convergence).
  double tolerance = 0.0;
  Init init = Init::kForgy;
  std::uint64_t seed = 1234567;
  /// Worker threads (0 = one per hardware CPU).
  int threads = 0;
  /// MTI pruning (the paper's knori vs knori- switch).
  bool prune = true;
  /// NUMA-aware placement + binding (off = the paper's "NUMA-oblivious"
  /// baseline of Figure 4).
  bool numa_aware = true;
  /// Pin worker threads to their NUMA node's CPUs (--numa-bind). Only
  /// effective when numa_aware; off leaves placement to the OS scheduler
  /// while keeping the node-partitioned data layout and queues.
  bool numa_bind = true;
  /// Task scheduling policy (Figure 5 compares these).
  sched::SchedPolicy sched = sched::SchedPolicy::kNumaAware;
  /// Rows per scheduler task. 0 = adaptive (Scheduler::auto_task_size,
  /// a thread-count-independent size targeting ~256 chunks); the paper's
  /// fixed 8192 is sched::Scheduler::kPaperTaskSize. The chunk grid this
  /// knob induces also fixes the reduction order, so results for a given
  /// dataset depend on task_size but not on threads (see DESIGN.md §7).
  index_t task_size = 0;
  /// Simulated NUMA node count (0 = use detected topology). See DESIGN.md.
  int numa_nodes = 0;
  /// Distance-kernel ISA (CLI --simd, env KNOR_SIMD). kAuto picks the best
  /// the CPU supports; unavailable requests clamp downward. Results are
  /// bitwise-deterministic per selected ISA; kScalar reproduces the legacy
  /// scalar kernels bit-for-bit (core/kernels/simd.hpp).
  kernels::Isa simd = kernels::Isa::kAuto;
  /// Cache tile of the blocked-GEMM engine (gemm_kmeans only; other
  /// engines ignore it). Default auto.
  GemmTile gemm_tile;
  /// Used when init == kProvided; k x d.
  DenseMatrix initial_centroids;
};

/// Per-run instrumentation, aggregated over threads. The algorithmic
/// counters (dist_computations, clause*_skips) are deterministic — pure
/// functions of (data, opts) like the clustering itself; the attribution
/// counters (local/remote accesses under work stealing, tasks_*) depend on
/// the thread schedule and vary run to run (the bench harness reports them
/// as timings, DESIGN.md §6).
struct Counters {
  std::uint64_t dist_computations = 0;  ///< point-centroid distances evaluated
  std::uint64_t clause1_skips = 0;      ///< points skipped entirely (MTI c1)
  std::uint64_t clause2_skips = 0;      ///< candidate centroids pruned pre-tighten
  std::uint64_t clause3_skips = 0;      ///< candidates pruned after tightening
  std::uint64_t local_accesses = 0;     ///< NUMA-local row accesses
  std::uint64_t remote_accesses = 0;    ///< NUMA-remote row accesses
  std::uint64_t tasks_own = 0;          ///< scheduler: own-partition tasks
  std::uint64_t tasks_same_node = 0;    ///< scheduler: same-node steals
  std::uint64_t tasks_remote_node = 0;  ///< scheduler: remote-node steals

  Counters& operator+=(const Counters& o);
};

struct Result {
  std::size_t iters = 0;
  bool converged = false;
  DenseMatrix centroids;                ///< k x d final means
  std::vector<cluster_t> assignments;   ///< size n
  std::vector<index_t> cluster_sizes;   ///< size k
  /// Sum of squared point-to-assigned-centroid distances (exact; computed
  /// with one final pass, since pruned iterations skip distances).
  double energy = 0.0;
  IterStats iter_times;
  Counters counters;
  /// Per-worker CPU seconds spent in compute phases over the whole run
  /// (empty for engines without a worker pool). On an oversubscribed host,
  /// max() of these approximates the run's makespan on dedicated cores.
  std::vector<double> thread_busy_s;
  /// CPU seconds of inherently serial driver-side work (shuffle, master
  /// reductions); 0 for knor engines, nonzero for framework stand-ins.
  double driver_serial_s = 0.0;
  /// This run's slice of the global obs registry (snapshot diff taken
  /// around the engine run): cache/pruning/steal counters and phase
  /// histograms, queryable by name without reaching into process globals
  /// (DESIGN.md §10). Empty under -DKNOR_OBS=OFF and for knord worker
  /// ranks (concurrent ranks share the process registry, so only the
  /// cluster-level dist::kmeans entry attaches a coherent diff).
  obs::Snapshot metrics;

  /// Modeled time per iteration on dedicated cores: the slowest worker's
  /// compute plus the serial driver share. Falls back to wall time when no
  /// per-thread data was recorded.
  double makespan_per_iter() const;

  std::string summary() const;
};

class MtiState;

namespace detail {

/// Cross-node reduction hook for the parallel engine. Single-node runs pass
/// nullptr; knord passes an adapter over Communicator::allreduce_sum so the
/// per-iteration merged accumulators (k*d sums + k counts + changed-count,
/// packed into one buffer = one collective per iteration) and the final
/// energy become global sums replicated on every rank.
///
/// Implementations must be bitwise-deterministic elementwise sums: every
/// participant receives the identical result, which keeps the replicated
/// centroid update in lockstep across ranks.
struct GlobalReducer {
  virtual ~GlobalReducer() = default;
  /// In-place elementwise sum of vals[0..n) across all participants.
  virtual void allreduce(double* vals, std::size_t n) = 0;
};

/// Mid-run engine state for resuming the parallel engine at an iteration
/// boundary (checkpoint recovery, DESIGN.md §13). Sized to the node's own
/// shard (n rows), except sums/counts which are the replicated GLOBAL
/// accumulators — identical on every participant after the boundary's
/// allreduce, exactly as the engine maintains them. `upper_bounds` must be
/// pre-loosened against the resumed centroids (ub + drift at save time) so
/// the engine can restart with drift 0 and stay bitwise exact — the same
/// contract as the SEM checkpoint path (src/sem/sem_kmeans.cpp).
struct ResumeState {
  std::uint64_t iteration = 0;         ///< iterations already completed
  std::vector<cluster_t> assignments;  ///< size n (this node's shard)
  std::vector<value_t> upper_bounds;   ///< size n when pruning, else empty
  DenseMatrix sums;                    ///< k x d global sums (pruning only)
  std::vector<std::int64_t> counts;    ///< k global counts (pruning only)
};

/// Read-only view of the engine state at an iteration boundary, handed to
/// IterObserver::on_iteration. Pointers reference the engine's live state
/// and are valid only for the duration of the call.
struct IterationView {
  std::uint64_t iteration = 0;  ///< iterations completed so far (1-based)
  std::uint64_t changed = 0;    ///< global membership changes this iteration
  const DenseMatrix* centroids = nullptr;  ///< post-update centroids (k x d)
  /// This node's shard assignments (size n).
  const std::vector<cluster_t>* assignments = nullptr;
  const MtiState* mti = nullptr;  ///< pruning state; nullptr when MTI is off
  const DenseMatrix* sums = nullptr;  ///< global sums (pruning only)
  const std::vector<std::int64_t>* counts = nullptr;  ///< global counts
};

/// Iteration-boundary hook for the parallel engine: called after every
/// completed iteration EXCEPT the one that ends the run (convergence or
/// max_iters) — a run that just finished has nothing left to checkpoint or
/// stop. When a GlobalReducer is present the view's `changed` is the global
/// count and all ranks observe the identical boundary, so an observer that
/// decides from (plan, view) alone decides identically on every rank.
/// Return false to stop the run cleanly at this boundary; throwing
/// propagates through Cluster::run's abort machinery (fault injection).
struct IterObserver {
  virtual ~IterObserver() = default;
  virtual bool on_iteration(const IterationView& view) = 0;
};

}  // namespace detail

}  // namespace knor
