// Scalar reference distance kernels.
//
// These are the legacy, header-only forms the engines inlined before the
// SIMD kernel layer (core/kernels/simd.hpp) existed. They now serve two
// roles: the bit-exact reference that `--simd scalar` must reproduce (the
// scalar kernel table routes straight here), and the oracle the SIMD
// property tests compare every vector ISA against. Engines no longer call
// these directly — they go through kernels::ops().
//
// The 4-way unrolled dist_sq gives the compiler independent accumulator
// chains to schedule (and auto-vectorize) — the paper's "sequential access
// patterns ... maximize prefetching and CPU caching" design.
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace knor {

/// Squared Euclidean distance between two d-vectors.
inline value_t dist_sq(const value_t* a, const value_t* b, index_t d) {
  value_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  index_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const value_t d0 = a[j] - b[j];
    const value_t d1 = a[j + 1] - b[j + 1];
    const value_t d2 = a[j + 2] - b[j + 2];
    const value_t d3 = a[j + 3] - b[j + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; j < d; ++j) {
    const value_t dj = a[j] - b[j];
    s0 += dj * dj;
  }
  return (s0 + s1) + (s2 + s3);
}

/// Euclidean distance.
inline value_t euclidean(const value_t* a, const value_t* b, index_t d) {
  return std::sqrt(dist_sq(a, b, d));
}

/// Inner product (the spherical k-means kernel). The 2-way unrolled form
/// is the historical reference the scalar kernel table must reproduce.
inline value_t dot(const value_t* a, const value_t* b, index_t d) {
  value_t s0 = 0, s1 = 0;
  index_t j = 0;
  for (; j + 2 <= d; j += 2) {
    s0 += a[j] * b[j];
    s1 += a[j + 1] * b[j + 1];
  }
  if (j < d) s0 += a[j] * b[j];
  return s0 + s1;
}

/// Index of the nearest centroid (ties -> lowest index). `centroids` is
/// k x d row-major. Writes the SQUARED distance to *out_sq when non-null:
/// every caller works in squared space, so the one sqrt that true-distance
/// bookkeeping (MTI upper bounds) needs lives at that call site, not here.
inline cluster_t nearest_centroid(const value_t* point,
                                  const value_t* centroids, int k, index_t d,
                                  value_t* out_sq) {
  cluster_t best = 0;
  value_t best_d = dist_sq(point, centroids, d);
  for (int c = 1; c < k; ++c) {
    const value_t dc =
        dist_sq(point, centroids + static_cast<std::size_t>(c) * d, d);
    if (dc < best_d) {
      best_d = dc;
      best = static_cast<cluster_t>(c);
    }
  }
  if (out_sq != nullptr) *out_sq = best_d;
  return best;
}

}  // namespace knor
