// Distance kernels.
//
// Squared Euclidean distance is the inner loop of every module; it is kept
// header-only so it inlines into the engines. The 4-way unrolled form gives
// the compiler independent accumulator chains to schedule (and vectorize)
// — the paper's "sequential access patterns ... maximize prefetching and
// CPU caching" design.
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace knor {

/// Squared Euclidean distance between two d-vectors.
inline value_t dist_sq(const value_t* a, const value_t* b, index_t d) {
  value_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  index_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const value_t d0 = a[j] - b[j];
    const value_t d1 = a[j + 1] - b[j + 1];
    const value_t d2 = a[j + 2] - b[j + 2];
    const value_t d3 = a[j + 3] - b[j + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; j < d; ++j) {
    const value_t dj = a[j] - b[j];
    s0 += dj * dj;
  }
  return (s0 + s1) + (s2 + s3);
}

/// Euclidean distance.
inline value_t euclidean(const value_t* a, const value_t* b, index_t d) {
  return std::sqrt(dist_sq(a, b, d));
}

/// Index of the nearest centroid (ties -> lowest index) and its distance.
/// `centroids` is k x d row-major.
inline cluster_t nearest_centroid(const value_t* point,
                                  const value_t* centroids, int k, index_t d,
                                  value_t* out_dist) {
  cluster_t best = 0;
  value_t best_d = dist_sq(point, centroids, d);
  for (int c = 1; c < k; ++c) {
    const value_t dc =
        dist_sq(point, centroids + static_cast<std::size_t>(c) * d, d);
    if (dc < best_d) {
      best_d = dc;
      best = static_cast<cluster_t>(c);
    }
  }
  if (out_dist != nullptr) *out_dist = std::sqrt(best_d);
  return best;
}

}  // namespace knor
