// Non-template pieces of the parallel engine: counter aggregation and the
// human-readable result summary. The engine itself is the template in
// engine_impl.hpp, instantiated from knori.cpp (in-memory) and knord.cpp
// (per-rank shards).
#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/strict_parse.hpp"
#include "core/kmeans_types.hpp"

namespace knor {

bool parse_gemm_tile(const std::string& name, GemmTile* out) {
  if (name == "auto") {
    *out = GemmTile{};
    return true;
  }
  const auto x = name.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= name.size()) return false;
  const auto parse_pos = [](const std::string& s, index_t* v) {
    std::uint64_t u = 0;
    if (!knor::parse_u64(s, &u) || u == 0) return false;
    *v = static_cast<index_t>(u);
    return true;
  };
  GemmTile tile;
  if (!parse_pos(name.substr(0, x), &tile.rows) ||
      !parse_pos(name.substr(x + 1), &tile.cols))
    return false;
  *out = tile;
  return true;
}

GemmTile parse_gemm_tile_or_throw(const std::string& name, const char* what) {
  GemmTile tile;
  if (!parse_gemm_tile(name, &tile))
    throw std::invalid_argument(std::string(what) + "=" + name +
                                " is not a GEMM tile (want auto or RxC with "
                                "positive integers, e.g. 64x256)");
  return tile;
}

GemmTile resolve_gemm_tile(GemmTile tile, index_t n, int k) {
  // Auto shape: 64 rows of A shared across each panel sweep, 256 centroids
  // per sweep — at the evaluation's d (8..64 doubles) that keeps the swept
  // centroid panels L2-resident while each row block amortizes their loads.
  if (tile.rows == 0) tile.rows = 64;
  if (tile.cols == 0) tile.cols = 256;
  if (tile.rows > n) tile.rows = n;
  const auto uk = static_cast<index_t>(k);
  if (tile.cols > uk) tile.cols = uk;
  // Whole panels only: round the centroid sweep up to the panel width.
  const index_t w = kernels::kGemmPanelWidth;
  tile.cols = (tile.cols + w - 1) / w * w;
  return tile;
}

Counters& Counters::operator+=(const Counters& o) {
  dist_computations += o.dist_computations;
  clause1_skips += o.clause1_skips;
  clause2_skips += o.clause2_skips;
  clause3_skips += o.clause3_skips;
  local_accesses += o.local_accesses;
  remote_accesses += o.remote_accesses;
  tasks_own += o.tasks_own;
  tasks_same_node += o.tasks_same_node;
  tasks_remote_node += o.tasks_remote_node;
  return *this;
}

double Result::makespan_per_iter() const {
  if (iters == 0) return 0.0;
  if (thread_busy_s.empty()) return iter_times.mean();
  double slowest = 0.0;
  for (double busy : thread_busy_s) slowest = std::max(slowest, busy);
  return (slowest + driver_serial_s) / static_cast<double>(iters);
}

std::string Result::summary() const {
  std::ostringstream oss;
  oss << "iters=" << iters << (converged ? " (converged)" : " (max-iters)")
      << " k=" << centroids.rows() << " energy=" << energy
      << " time/iter=" << iter_times.mean() * 1e3 << "ms"
      << " dists=" << counters.dist_computations
      << " c1-skips=" << counters.clause1_skips;
  return oss.str();
}

}  // namespace knor
