// Non-template pieces of the parallel engine: counter aggregation and the
// human-readable result summary. The engine itself is the template in
// engine_impl.hpp, instantiated from knori.cpp (in-memory) and knord.cpp
// (per-rank shards).
#include <algorithm>
#include <sstream>

#include "core/kmeans_types.hpp"

namespace knor {

Counters& Counters::operator+=(const Counters& o) {
  dist_computations += o.dist_computations;
  clause1_skips += o.clause1_skips;
  clause2_skips += o.clause2_skips;
  clause3_skips += o.clause3_skips;
  local_accesses += o.local_accesses;
  remote_accesses += o.remote_accesses;
  tasks_own += o.tasks_own;
  tasks_same_node += o.tasks_same_node;
  tasks_remote_node += o.tasks_remote_node;
  return *this;
}

double Result::makespan_per_iter() const {
  if (iters == 0) return 0.0;
  if (thread_busy_s.empty()) return iter_times.mean();
  double slowest = 0.0;
  for (double busy : thread_busy_s) slowest = std::max(slowest, busy);
  return (slowest + driver_serial_s) / static_cast<double>(iters);
}

std::string Result::summary() const {
  std::ostringstream oss;
  oss << "iters=" << iters << (converged ? " (converged)" : " (max-iters)")
      << " k=" << centroids.rows() << " energy=" << energy
      << " time/iter=" << iter_times.mean() * 1e3 << "ms"
      << " dists=" << counters.dist_computations
      << " c1-skips=" << counters.clause1_skips;
  return oss.str();
}

}  // namespace knor
