// k-means variants from the paper's future-work roadmap (§9): the authors
// list spherical k-means and semi-supervised k-means++ as the first targets
// to build on top of knor's NUMA-optimized engine.
#pragma once

#include "core/kmeans_types.hpp"

namespace knor {

/// Spherical k-means: rows and centroids live on the unit hypersphere and
/// similarity is cosine. Standard for text/TF-IDF and embedding vectors.
/// Input rows are L2-normalized internally (zero rows are rejected);
/// centroids are re-normalized means. Result::energy is the total cosine
/// *dissimilarity*  sum(1 - cos(v, c_assign)).
/// Runs on the parallel pool with per-thread accumulators (||Lloyd's
/// structure), supports kForgy / kKmeansPP / kRandom / kProvided init.
Result spherical_kmeans(ConstMatrixView data, const Options& opts);

/// Semi-supervised (seeded) k-means — the Yoder & Priebe "ss-kmeans++"
/// setting the paper cites: a subset of points carries known labels in
/// [0, k). Labeled points never change cluster but always contribute to
/// their centroid; unlabeled points (kInvalidCluster in `labels`) follow
/// Lloyd's. Initial centroids: the labeled mean for clusters with seeds,
/// k-means++ over the unlabeled remainder for the rest.
/// `labels.size()` must equal data.rows().
Result seeded_kmeans(ConstMatrixView data, const Options& opts,
                     const std::vector<cluster_t>& labels);

}  // namespace knor
