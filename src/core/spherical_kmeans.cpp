#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/timer.hpp"
#include "core/chunk_accum.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/run_metrics.hpp"
#include "core/local_centroids.hpp"
#include "core/variants.hpp"
#include "numa/partitioner.hpp"
#include "numa/topology.hpp"
#include "sched/scheduler.hpp"

namespace knor {
namespace {

// The dot kernel (larger = more similar on the sphere) comes from
// kernels::ops(); the scalar reference lives in core/distance.hpp.

/// L2-normalize every row of `m` in place; throws on zero rows (no
/// direction on the sphere).
void normalize_rows(DenseMatrix& m) {
  for (index_t r = 0; r < m.rows(); ++r) {
    value_t* row = m.row(r);
    value_t norm_sq = 0;
    for (index_t j = 0; j < m.cols(); ++j) norm_sq += row[j] * row[j];
    if (norm_sq <= 0)
      throw std::invalid_argument(
          "spherical_kmeans: zero row has no direction");
    const value_t inv = value_t(1) / std::sqrt(norm_sq);
    for (index_t j = 0; j < m.cols(); ++j) row[j] *= inv;
  }
}

/// Re-normalize a centroid after the mean update; an all-zero mean (empty
/// cluster handled upstream; exact cancellation is measure-zero) keeps the
/// previous direction.
void normalize_centroid(value_t* c, const value_t* prev, index_t d) {
  value_t norm_sq = 0;
  for (index_t j = 0; j < d; ++j) norm_sq += c[j] * c[j];
  if (norm_sq <= 0) {
    std::memcpy(c, prev, d * sizeof(value_t));
    return;
  }
  const value_t inv = value_t(1) / std::sqrt(norm_sq);
  for (index_t j = 0; j < d; ++j) c[j] *= inv;
}

}  // namespace

Result spherical_kmeans(ConstMatrixView data, const Options& opts) {
  if (data.empty())
    throw std::invalid_argument("spherical_kmeans: empty dataset");
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  knor::detail::RunMetricsScope run_metrics;
  const index_t n = data.rows();
  const index_t d = data.cols();
  const int k = opts.k;

  // Work on a normalized copy (rows on the unit sphere).
  DenseMatrix unit(n, d);
  std::memcpy(unit.data(), data.data(), unit.size() * sizeof(value_t));
  normalize_rows(unit);

  DenseMatrix cur = init_centroids(unit.const_view(), opts);
  for (index_t c = 0; c < cur.rows(); ++c)
    normalize_centroid(cur.row(c), cur.row(c), d);
  DenseMatrix next(static_cast<index_t>(k), d);

  const auto topo = opts.numa_nodes > 0
                        ? numa::Topology::simulated(opts.numa_nodes)
                        : numa::Topology::detect();
  const int T = opts.threads > 0 ? opts.threads : topo.num_cpus();
  numa::Partitioner parts(n, T, topo);
  sched::Scheduler sched(T, topo, /*bind=*/opts.numa_aware && opts.numa_bind,
                         opts.sched);
  const index_t task_size =
      sched::Scheduler::resolve_task_size(n, opts.task_size);
  const auto chunks =
      static_cast<std::size_t>(sched::Scheduler::num_chunks(n, task_size));

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  // Per-chunk accumulators folded in a fixed tree: bitwise-deterministic
  // centroids under work stealing and across thread counts, exactly like
  // the main engine (DESIGN.md §7).
  ChunkAccum<LocalCentroids> locals(chunks, k, d);
  std::vector<std::uint64_t> tchanged(static_cast<std::size_t>(T));

  const auto tol_changes =
      static_cast<std::uint64_t>(opts.tolerance * static_cast<double>(n));

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    sched.begin_chunks(n, task_size, &parts);
    sched.run([&](int tid) {
      tchanged[static_cast<std::size_t>(tid)] = 0;
      sched::Task task;
      while (sched.next_chunk(tid, task)) {
        auto& acc = locals.touch(task.chunk);
        for (index_t r = task.begin; r < task.end; ++r) {
          const value_t* v = unit.row(r);
          cluster_t best = 0;
          value_t best_sim = K.dot(v, cur.row(0), d);
          for (int c = 1; c < k; ++c) {
            const value_t sim = K.dot(v, cur.row(static_cast<index_t>(c)), d);
            if (sim > best_sim) {
              best_sim = sim;
              best = static_cast<cluster_t>(c);
            }
          }
          if (best != res.assignments[r])
            ++tchanged[static_cast<std::size_t>(tid)];
          res.assignments[r] = best;
          acc.add(best, v);
        }
      }
      sched.barrier().arrive_and_wait();
      locals.fold(tid, T, sched.barrier());
    });
    res.counters.dist_computations +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);

    res.cluster_sizes = locals.merged().finalize_into(next, cur);
    locals.next_iteration();
    for (int c = 0; c < k; ++c)
      normalize_centroid(next.row(static_cast<index_t>(c)),
                         cur.row(static_cast<index_t>(c)), d);
    std::swap(cur, next);

    std::uint64_t changed = 0;
    for (auto c : tchanged) changed += c;
    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  for (index_t r = 0; r < n; ++r)
    res.energy += 1.0 - K.dot(unit.row(r), cur.row(res.assignments[r]), d);
  res.centroids = std::move(cur);
  run_metrics.finish(res);
  return res;
}

}  // namespace knor
