// The ||Lloyd's parallel engine (paper Algorithm 1 + §5 optimizations),
// templated over a data source so the same code drives:
//   * NumaData — rows partitioned across NUMA-node-local blocks (knori),
//   * FlatData — one contiguous NUMA-oblivious allocation (the Figure 4
//     baseline).
//
// Data concept:
//   const value_t* row(index_t r) const;  // O(1) access to row r
//   int node_of_row(index_t r) const;     // NUMA node owning r's memory
//
// One pool.run per iteration executes the super-phase (nearest-centroid +
// local-centroid accumulation, fed by the NUMA-aware task queue), then the
// single global barrier, then the parallel pairwise merge of per-thread
// centroids — exactly the structure of Algorithm 1.
#pragma once

#include <cmath>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/distance.hpp"
#include "core/kmeans_types.hpp"
#include "core/local_centroids.hpp"
#include "core/mti.hpp"
#include "numa/cost_model.hpp"
#include "numa/partitioner.hpp"
#include "sched/barrier.hpp"
#include "sched/reduction.hpp"
#include "sched/task_queue.hpp"
#include "sched/thread_pool.hpp"

namespace knor::detail {

/// Flat, NUMA-oblivious data adapter: everything lives on node 0 (where a
/// single malloc/first-touch put it).
struct FlatData {
  ConstMatrixView m;
  const value_t* row(index_t r) const { return m.row(r); }
  int node_of_row(index_t) const { return 0; }
};

struct alignas(kCacheLine) PerThread {
  Counters counters;
  std::uint64_t changed = 0;
  double energy = 0.0;
  double busy_s = 0.0;  ///< CPU time in super-phases, whole run
};

/// `reducer` (nullable) is the cross-node hook: when set, the merged
/// per-iteration accumulator plus the changed-count are allreduced across
/// ranks in one collective before finalization, and the final energy is
/// allreduced too — every rank then finalizes identical global centroids
/// from its own shard's contribution. Single-node callers pass nullptr.
template <typename Data>
Result run_parallel_lloyd(const Data& data, index_t n, index_t d,
                          const Options& opts, DenseMatrix initial,
                          sched::ThreadPool& pool,
                          const numa::Partitioner& parts,
                          GlobalReducer* reducer = nullptr) {
  const int T = pool.size();
  const int k = opts.k;

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);

  DenseMatrix cur = std::move(initial);
  DenseMatrix next(static_cast<index_t>(k), d);
  DenseMatrix prev(static_cast<index_t>(k), d);

  MtiState mti;
  if (opts.prune) {
    mti = MtiState(n, k);
    mti.prepare(DenseMatrix{}, cur);
  }

  sched::TaskQueue queue(parts, opts.sched, opts.task_size);

  // Accumulation strategy (see LocalCentroids vs SignedCentroids):
  //  * pruning off — rebuild per-thread sums from scratch each iteration
  //    (Algorithm 1 verbatim; algorithmically identical to the frameworks).
  //  * pruning on — persistent global sums/counts updated by per-thread
  //    membership *deltas*, so a clause-1-skipped point costs nothing at
  //    all (this is what makes the skip profitable at small d, and is the
  //    in-memory analogue of knors's "no I/O request").
  std::vector<LocalCentroids> locals;
  std::vector<SignedCentroids> deltas;
  DenseMatrix sums;
  std::vector<std::int64_t> counts;
  if (opts.prune) {
    deltas.reserve(static_cast<std::size_t>(T));
    for (int t = 0; t < T; ++t) deltas.emplace_back(k, d);
    sums = DenseMatrix(static_cast<index_t>(k), d);
    counts.assign(static_cast<std::size_t>(k), 0);
  } else {
    locals.reserve(static_cast<std::size_t>(T));
    for (int t = 0; t < T; ++t) locals.emplace_back(k, d);
  }

  std::vector<PerThread> per_thread(static_cast<std::size_t>(T));
  sched::Barrier barrier(T);

  ScopedAlloc mem_locals(
      "per-thread-centroids",
      static_cast<std::size_t>(T) *
          (opts.prune ? deltas[0].bytes() : locals[0].bytes()));
  ScopedAlloc mem_assign("assignments", res.assignments.size() * sizeof(cluster_t));
  ScopedAlloc mem_mti("mti-state", opts.prune ? mti.bytes() : 0);

  // `v` is the row's data; locality accounting is hoisted to per-task (a
  // task never spans thread blocks, so all its rows share one NUMA node).
  auto process_point = [&](index_t r, const value_t* v, int tid) {
    Counters& cnt = per_thread[static_cast<std::size_t>(tid)].counters;
    const cluster_t a = res.assignments[r];
    if (opts.prune && a != kInvalidCluster) {
      const value_t loosened = mti.ub(r) + mti.drift(a);
      if (mti.clause1(a, loosened)) {
        // Clause 1: assignment provably unchanged — no distance
        // computation, no accumulate, no touch of the row data at all
        // (the in-memory analogue of knors's elided I/O request).
        mti.set_ub(r, loosened);
        ++cnt.clause1_skips;
        return;
      }
      // Clause 3 prelude: tighten the bound with one distance computation.
      value_t best_d = euclidean(v, cur.row(a), d);
      value_t best_d_sq = best_d * best_d;
      ++cnt.dist_computations;
      cluster_t best = a;
      for (int c = 0; c < k; ++c) {
        if (static_cast<cluster_t>(c) == a) continue;
        // Clause 2: loosened bound vs. the assigned centroid's separation.
        if (loosened <= value_t(0.5) * mti.c2c(a, static_cast<cluster_t>(c))) {
          ++cnt.clause2_skips;
          continue;
        }
        // Clause 3: tightened bound vs. the current best's separation.
        if (best_d <= value_t(0.5) * mti.c2c(best, static_cast<cluster_t>(c))) {
          ++cnt.clause3_skips;
          continue;
        }
        // Compare in squared form; sqrt only when the best improves (the
        // triangle-inequality bookkeeping needs true distances, but the
        // argmin does not).
        const value_t dsq =
            dist_sq(v, cur.row(static_cast<index_t>(c)), d);
        ++cnt.dist_computations;
        if (dsq < best_d_sq) {
          best_d_sq = dsq;
          best_d = std::sqrt(dsq);
          best = static_cast<cluster_t>(c);
        }
      }
      if (best != a) {
        ++per_thread[static_cast<std::size_t>(tid)].changed;
        auto& delta = deltas[static_cast<std::size_t>(tid)];
        delta.sub(a, v);
        delta.add(best, v);
      }
      res.assignments[r] = best;
      mti.set_ub(r, best_d);
      return;
    }

    // Full scan: first iteration, or pruning disabled.
    value_t best_d = 0;
    const cluster_t best = nearest_centroid(v, cur.data(), k, d, &best_d);
    cnt.dist_computations += static_cast<std::uint64_t>(k);
    if (best != a) ++per_thread[static_cast<std::size_t>(tid)].changed;
    res.assignments[r] = best;
    if (opts.prune) {
      mti.set_ub(r, best_d);
      // First iteration under pruning: every point joins a cluster.
      auto& delta = deltas[static_cast<std::size_t>(tid)];
      if (a == kInvalidCluster) {
        delta.add(best, v);
      } else if (best != a) {
        delta.sub(a, v);
        delta.add(best, v);
      }
    } else {
      locals[static_cast<std::size_t>(tid)].add(best, v);
    }
  };

  const auto iteration = [&](int tid) {
    const double cpu_start = thread_cpu_seconds();
    if (opts.prune)
      deltas[static_cast<std::size_t>(tid)].clear();
    else
      locals[static_cast<std::size_t>(tid)].clear();
    per_thread[static_cast<std::size_t>(tid)].changed = 0;
    Counters& cnt = per_thread[static_cast<std::size_t>(tid)].counters;
    const int my_node = parts.node_of_thread(tid);
    sched::Task task;
    while (queue.next(tid, task)) {
      // Rows of one task are contiguous within a single thread block: hoist
      // the base pointer and the local/remote classification out of the
      // per-point loop.
      const value_t* base = data.row(task.begin);
      const bool local = data.node_of_row(task.begin) == my_node;
      if (local) {
        cnt.local_accesses += task.size();
      } else {
        cnt.remote_accesses += task.size();
      }
      for (index_t r = task.begin; r < task.end; ++r) {
        if (!local) numa::RemotePenalty::charge();
        process_point(r, base + static_cast<std::size_t>(r - task.begin) * d,
                      tid);
      }
    }
    per_thread[static_cast<std::size_t>(tid)].busy_s +=
        thread_cpu_seconds() - cpu_start;
    // The single global barrier of ||Lloyd's, then the parallel merge.
    barrier.arrive_and_wait();
    sched::tree_reduce(tid, T, barrier, [&](int dst, int src) {
      if (opts.prune)
        deltas[static_cast<std::size_t>(dst)].merge(
            deltas[static_cast<std::size_t>(src)]);
      else
        locals[static_cast<std::size_t>(dst)].merge(
            locals[static_cast<std::size_t>(src)]);
    });
  };

  // Convergence is judged on the *global* point count when a reducer is
  // present (every rank sees the same global changed-count, so all ranks
  // stop on the same iteration).
  index_t global_n = n;
  if (reducer != nullptr) {
    double nd = static_cast<double>(n);
    reducer->allreduce(&nd, 1);
    global_n = static_cast<index_t>(nd);
  }
  const auto tol_changes = static_cast<std::uint64_t>(
      opts.tolerance * static_cast<double>(global_n));

  // Wire buffer for the one-collective-per-iteration reduction:
  // k*d sums, then k counts, then the changed-count, all as doubles
  // (counts are integers < 2^53, so the round-trip is exact). The sum
  // pack/unpack memcpys assume the accumulators are doubles too.
  static_assert(std::is_same_v<value_t, double>,
                "the cross-node wire format packs value_t sums as doubles");
  const std::size_t kd = static_cast<std::size_t>(k) * d;
  std::vector<double> wire;
  if (reducer != nullptr) wire.resize(kd + static_cast<std::size_t>(k) + 1);

  for (int it = 0; it < opts.max_iters; ++it) {
    WallTimer timer;
    queue.reset();
    pool.run(iteration);

    std::uint64_t changed = 0;
    for (const auto& pt : per_thread) changed += pt.changed;

    if (reducer != nullptr) {
      // Pack the merged accumulator (slot 0) + changed, allreduce once,
      // unpack: slot 0 now holds the global accumulator on every rank.
      double* w = wire.data();
      const auto pack = [&](value_t* s, auto* c) {
        std::memcpy(w, s, kd * sizeof(double));
        for (int i = 0; i < k; ++i) w[kd + static_cast<std::size_t>(i)] =
            static_cast<double>(c[i]);
        w[kd + static_cast<std::size_t>(k)] = static_cast<double>(changed);
      };
      const auto unpack = [&](value_t* s, auto* c) {
        std::memcpy(s, w, kd * sizeof(double));
        using count_t = std::remove_reference_t<decltype(c[0])>;
        for (int i = 0; i < k; ++i) c[i] = static_cast<count_t>(
            std::llround(w[kd + static_cast<std::size_t>(i)]));
        changed = static_cast<std::uint64_t>(
            std::llround(w[kd + static_cast<std::size_t>(k)]));
      };
      if (opts.prune)
        pack(deltas[0].sums_data(), deltas[0].counts_data());
      else
        pack(locals[0].sums_data(), locals[0].counts_data());
      reducer->allreduce(wire.data(), wire.size());
      if (opts.prune)
        unpack(deltas[0].sums_data(), deltas[0].counts_data());
      else
        unpack(locals[0].sums_data(), locals[0].counts_data());
    }

    // Finalize next centroids from the merged accumulator (slot 0).
    std::memcpy(prev.data(), cur.data(), cur.size() * sizeof(value_t));
    if (opts.prune) {
      deltas[0].apply_to(sums.data(), counts.data());
      res.cluster_sizes =
          finalize_sums(sums.data(), counts.data(), k, d, next, cur);
    } else {
      res.cluster_sizes = locals[0].finalize_into(next, cur);
    }
    std::swap(cur, next);
    if (opts.prune) mti.prepare(prev, cur);

    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
  }

  // Exact final energy: one full pass (pruned iterations skip distances, so
  // energy cannot be accumulated during the main loop).
  pool.run([&](int tid) {
    double e = 0.0;
    const numa::RowRange rows = parts.thread_rows(tid);
    if (!rows.empty()) {
      const value_t* base = data.row(rows.begin);
      for (index_t r = rows.begin; r < rows.end; ++r)
        e += dist_sq(base + static_cast<std::size_t>(r - rows.begin) * d,
                     cur.row(res.assignments[r]), d);
    }
    per_thread[static_cast<std::size_t>(tid)].energy = e;
  });
  for (const auto& pt : per_thread) {
    res.energy += pt.energy;
    res.counters += pt.counters;
    res.thread_busy_s.push_back(pt.busy_s);
  }
  if (reducer != nullptr) reducer->allreduce(&res.energy, 1);
  const sched::StealStats steals = queue.total_stats();
  res.counters.tasks_own = steals.own;
  res.counters.tasks_same_node = steals.same_node;
  res.counters.tasks_remote_node = steals.remote_node;

  res.centroids = std::move(cur);
  return res;
}

}  // namespace knor::detail
