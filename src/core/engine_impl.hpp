// The ||Lloyd's parallel engine (paper Algorithm 1 + §5 optimizations),
// templated over a data source so the same code drives:
//   * NumaData — rows partitioned across NUMA-node-local blocks (knori),
//   * FlatData — one contiguous NUMA-oblivious allocation (the Figure 4
//     baseline).
//
// Data concept:
//   const value_t* row(index_t r) const;  // O(1) access to row r
//   int node_of_row(index_t r) const;     // NUMA node owning r's memory
//
// One Scheduler::run per iteration executes the super-phase: workers drain
// the NUMA-partitioned work-stealing chunk queues (nearest-centroid + local
// accumulation), hit the single global barrier, then fold the per-CHUNK
// accumulators with a fixed merge tree — the structure of Algorithm 1 with
// the reduction re-keyed from threads to chunks.
//
// Determinism under stealing (DESIGN.md §7): the chunk grid is a pure
// function of (n, task_size); chunk c's accumulator receives exactly chunk
// c's rows in row order no matter which thread ends up processing it, and
// the fold's association is fixed by the chunk count — so centroids,
// assignments and iteration counts are bitwise identical across runs,
// scheduling policies, steal schedules, and thread counts.
#pragma once

#include <cmath>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/chunk_accum.hpp"
#include "core/kernels/simd.hpp"
#include "core/kmeans_types.hpp"
#include "core/local_centroids.hpp"
#include "core/mti.hpp"
#include "core/run_metrics.hpp"
#include "numa/cost_model.hpp"
#include "numa/partitioner.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sched/scheduler.hpp"

namespace knor::detail {

/// Flat, NUMA-oblivious data adapter: everything lives on node 0 (where a
/// single malloc/first-touch put it).
struct FlatData {
  ConstMatrixView m;
  const value_t* row(index_t r) const { return m.row(r); }
  int node_of_row(index_t) const { return 0; }
};

struct alignas(kCacheLine) PerThread {
  Counters counters;
  std::uint64_t changed = 0;
  double busy_s = 0.0;  ///< CPU time in super-phases, whole run
};

/// Walk task's rows in segments that stay inside one thread block, so the
/// base pointer and the local/remote classification hoist out of the
/// per-row loop (chunks can straddle block boundaries now that the chunk
/// grid is laid over the global row space). `cnt` == nullptr skips both the
/// locality accounting and the emulated remote penalty (the final energy
/// pass is not part of the iteration-time model).
template <typename Data, typename PerRow>
void for_task_rows(const Data& data, const numa::Partitioner& parts,
                   const sched::Task& task, int my_node, Counters* cnt,
                   PerRow&& per_row) {
  index_t r = task.begin;
  while (r < task.end) {
    const int home = parts.thread_of_row(r);
    const index_t seg_end = std::min(task.end, parts.thread_rows(home).end);
    const value_t* base = data.row(r);
    const bool local = data.node_of_row(r) == my_node;
    if (cnt != nullptr) {
      if (local)
        cnt->local_accesses += seg_end - r;
      else
        cnt->remote_accesses += seg_end - r;
    }
    for (index_t i = r; i < seg_end; ++i) {
      if (cnt != nullptr && !local) numa::RemotePenalty::charge();
      per_row(i, base, r);
    }
    r = seg_end;
  }
}

/// `reducer` (nullable) is the cross-node hook: when set, the merged
/// per-iteration accumulator plus the changed-count are allreduced across
/// ranks in one collective before finalization, and the final energy is
/// allreduced too — every rank then finalizes identical global centroids
/// from its own shard's contribution. Single-node callers pass nullptr.
///
/// `resume` (nullable) restarts the loop at a checkpointed iteration
/// boundary: `initial` must then be the checkpointed centroids, and the
/// restored assignments/pre-loosened bounds/global sums make the first
/// resumed iteration bitwise identical to the same iteration of the
/// uninterrupted run (see ResumeState). `observer` (nullable) is called at
/// every non-final iteration boundary and may stop the run or throw
/// (DESIGN.md §13).
template <typename Data>
Result run_parallel_lloyd(const Data& data, index_t n, index_t d,
                          const Options& opts, DenseMatrix initial,
                          sched::Scheduler& sched,
                          const numa::Partitioner& parts,
                          GlobalReducer* reducer = nullptr,
                          const ResumeState* resume = nullptr,
                          IterObserver* observer = nullptr) {
  const int T = sched.threads();
  const int k = opts.k;
  // One ISA for the whole run, resolved from opts rather than the
  // process-global dispatch (concurrent runs with different --simd must not
  // retarget each other): every distance below (pruned per-centroid,
  // blocked full scan, energy pass) goes through the same kernel table, so
  // the blocked/per-centroid bitwise-equality contract of kernels/simd.hpp
  // keeps pruned and unpruned paths in exact agreement.
  const kernels::Ops& K = kernels::ops_for(opts.simd);
  const index_t task_size =
      sched::Scheduler::resolve_task_size(n, opts.task_size);
  const auto chunks = static_cast<std::size_t>(
      sched::Scheduler::num_chunks(n, task_size));

  // Per-run registry slice (DESIGN.md §10): diff a snapshot around the run
  // and attach it to the Result. Skipped when a reducer is present — knord
  // ranks run concurrently in one process, so a per-rank diff would
  // interleave with its siblings; dist::kmeans attaches the cluster-level
  // diff instead.
  obs::Registry& reg = obs::Registry::global();
  obs::Snapshot obs_before;
  if (reducer == nullptr) obs_before = reg.snapshot();

  const bool resumed = resume != nullptr && resume->iteration > 0;
  if (resumed) {
    if (resume->assignments.size() != static_cast<std::size_t>(n))
      throw std::invalid_argument(
          "run_parallel_lloyd: resume assignments size mismatch");
    if (opts.prune &&
        resume->upper_bounds.size() != static_cast<std::size_t>(n))
      throw std::invalid_argument(
          "run_parallel_lloyd: resume lacks MTI bounds but pruning is on");
    if (opts.prune &&
        (resume->sums.rows() != static_cast<index_t>(k) ||
         resume->sums.cols() != d ||
         resume->counts.size() != static_cast<std::size_t>(k)))
      throw std::invalid_argument(
          "run_parallel_lloyd: resume lacks global sums but pruning is on");
  }

  Result res;
  res.assignments.assign(static_cast<std::size_t>(n), kInvalidCluster);
  if (resumed) res.assignments = resume->assignments;

  DenseMatrix cur = std::move(initial);
  DenseMatrix next(static_cast<index_t>(k), d);
  DenseMatrix prev(static_cast<index_t>(k), d);

  MtiState mti;
  if (opts.prune) {
    mti = MtiState(n, k);
    // prev == empty: drift 0. Resumed bounds were pre-loosened against the
    // checkpointed centroids (now `cur`), so drift 0 keeps them valid —
    // the same contract as the SEM resume path.
    mti.prepare(DenseMatrix{}, cur, K);
    if (resumed)
      for (index_t i = 0; i < n; ++i)
        mti.set_ub(i, resume->upper_bounds[static_cast<std::size_t>(i)]);
  }

  // Padded, 64-byte-aligned centroid tile for the blocked full-scan
  // kernel; repacked from `cur` before every iteration (driver thread,
  // outside the super-phase, so workers only ever read it).
  kernels::CentroidPack pack;

  // Accumulation strategy (see LocalCentroids vs SignedCentroids):
  //  * pruning off — rebuild per-chunk sums from scratch each iteration
  //    (Algorithm 1 verbatim; algorithmically identical to the frameworks).
  //  * pruning on — persistent global sums/counts updated by per-chunk
  //    membership *deltas*, so a clause-1-skipped point costs nothing at
  //    all (this is what makes the skip profitable at small d, and is the
  //    in-memory analogue of knors's "no I/O request"); a fully-skipped
  //    chunk never even clears its slot (ChunkAccum's dirty bit).
  const bool prune = opts.prune;
  ChunkAccum<LocalCentroids> locals(prune ? 0 : chunks, k, d);
  ChunkAccum<SignedCentroids> deltas(prune ? chunks : 0, k, d);
  DenseMatrix sums;
  std::vector<std::int64_t> counts;
  if (prune) {
    sums = DenseMatrix(static_cast<index_t>(k), d);
    counts.assign(static_cast<std::size_t>(k), 0);
    if (resumed) {
      // The persistent accumulators are global (post-allreduce) state, so
      // restoring them replicated keeps every participant's copy identical.
      sums = resume->sums;
      counts = resume->counts;
    }
  }

  std::vector<PerThread> per_thread(static_cast<std::size_t>(T));

  ScopedAlloc mem_chunks("per-chunk-centroids",
                         prune ? deltas.bytes() : locals.bytes());
  ScopedAlloc mem_assign("assignments",
                         res.assignments.size() * sizeof(cluster_t));
  ScopedAlloc mem_mti("mti-state", prune ? mti.bytes() : 0);

  // `v` is the row's data; locality accounting is hoisted to per-segment in
  // for_task_rows. `chunk` selects the deterministic accumulator slot.
  auto process_point = [&](index_t r, const value_t* v, int tid,
                           std::uint32_t chunk) {
    Counters& cnt = per_thread[static_cast<std::size_t>(tid)].counters;
    const cluster_t a = res.assignments[r];
    if (prune && a != kInvalidCluster) {
      const value_t loosened = mti.ub(r) + mti.drift(a);
      if (mti.clause1(a, loosened)) {
        // Clause 1: assignment provably unchanged — no distance
        // computation, no accumulate, no touch of the row data at all
        // (the in-memory analogue of knors's elided I/O request).
        mti.set_ub(r, loosened);
        ++cnt.clause1_skips;
        return;
      }
      // Clause 3 prelude: tighten the bound with one distance computation.
      value_t best_d = std::sqrt(K.dist_sq(v, cur.row(a), d));
      value_t best_d_sq = best_d * best_d;
      ++cnt.dist_computations;
      cluster_t best = a;
      for (int c = 0; c < k; ++c) {
        if (static_cast<cluster_t>(c) == a) continue;
        // Clause 2: loosened bound vs. the assigned centroid's separation.
        if (loosened <= value_t(0.5) * mti.c2c(a, static_cast<cluster_t>(c))) {
          ++cnt.clause2_skips;
          continue;
        }
        // Clause 3: tightened bound vs. the current best's separation.
        if (best_d <= value_t(0.5) * mti.c2c(best, static_cast<cluster_t>(c))) {
          ++cnt.clause3_skips;
          continue;
        }
        // Compare in squared form; sqrt only when the best improves (the
        // triangle-inequality bookkeeping needs true distances, but the
        // argmin does not).
        const value_t dsq = K.dist_sq(v, cur.row(static_cast<index_t>(c)), d);
        ++cnt.dist_computations;
        if (dsq < best_d_sq) {
          best_d_sq = dsq;
          best_d = std::sqrt(dsq);
          best = static_cast<cluster_t>(c);
        }
      }
      if (best != a) {
        ++per_thread[static_cast<std::size_t>(tid)].changed;
        auto& delta = deltas.touch(chunk);
        delta.sub(a, v);
        delta.add(best, v);
      }
      res.assignments[r] = best;
      mti.set_ub(r, best_d);
      return;
    }

    // Full scan: first iteration, or pruning disabled. The blocked kernel
    // streams the point once against the padded centroid tile.
    value_t best_sq = 0;
    const cluster_t best = K.nearest_blocked(v, pack, &best_sq);
    cnt.dist_computations += static_cast<std::uint64_t>(k);
    if (best != a) ++per_thread[static_cast<std::size_t>(tid)].changed;
    res.assignments[r] = best;
    if (prune) {
      // MTI bookkeeping is in true distances: the one sqrt of the scan.
      mti.set_ub(r, std::sqrt(best_sq));
      // First iteration under pruning: every point joins a cluster.
      auto& delta = deltas.touch(chunk);
      if (a == kInvalidCluster) {
        delta.add(best, v);
      } else if (best != a) {
        delta.sub(a, v);
        delta.add(best, v);
      }
    } else {
      locals.touch(chunk).add(best, v);
    }
  };

  const auto iteration = [&](int tid) {
    const double cpu_start = thread_cpu_seconds();
    per_thread[static_cast<std::size_t>(tid)].changed = 0;
    Counters& cnt = per_thread[static_cast<std::size_t>(tid)].counters;
    const int my_node = parts.node_of_thread(tid);
    sched::Task task;
    while (sched.next_chunk(tid, task)) {
      for_task_rows(data, parts, task, my_node, &cnt,
                    [&](index_t r, const value_t* base, index_t seg_begin) {
                      process_point(
                          r,
                          base + static_cast<std::size_t>(r - seg_begin) * d,
                          tid, task.chunk);
                    });
    }
    per_thread[static_cast<std::size_t>(tid)].busy_s +=
        thread_cpu_seconds() - cpu_start;
    // The single global barrier of ||Lloyd's, then the fixed-tree fold of
    // the per-chunk accumulators (slot 0 <- everything, chunk order).
    sched.barrier().arrive_and_wait();
    if (prune)
      deltas.fold(tid, T, sched.barrier());
    else
      locals.fold(tid, T, sched.barrier());
  };

  // Convergence is judged on the *global* point count when a reducer is
  // present (every rank sees the same global changed-count, so all ranks
  // stop on the same iteration).
  index_t global_n = n;
  if (reducer != nullptr) {
    double nd = static_cast<double>(n);
    reducer->allreduce(&nd, 1);
    global_n = static_cast<index_t>(nd);
  }
  const auto tol_changes = static_cast<std::uint64_t>(
      opts.tolerance * static_cast<double>(global_n));

  // Wire buffer for the one-collective-per-iteration reduction:
  // k*d sums, then k counts, then the changed-count, all as doubles
  // (counts are integers < 2^53, so the round-trip is exact). The sum
  // pack/unpack memcpys assume the accumulators are doubles too.
  static_assert(std::is_same_v<value_t, double>,
                "the cross-node wire format packs value_t sums as doubles");
  const std::size_t kd = static_cast<std::size_t>(k) * d;
  std::vector<double> wire;
  if (reducer != nullptr) wire.resize(kd + static_cast<std::size_t>(k) + 1);

  const int start_iter =
      resumed ? static_cast<int>(resume->iteration) : 0;
  if (resumed) res.iters = static_cast<std::size_t>(resume->iteration);
  for (int it = start_iter; it < opts.max_iters; ++it) {
    WallTimer timer;
    pack.pack(cur);
    sched.begin_chunks(n, task_size, &parts);
    {
      // Driver-side view of the super-phase: workers' nearest-centroid +
      // local accumulation + the per-chunk fold (one trace slice per
      // iteration; per-worker slices would distort the steal schedule).
      obs::Span span_assign("assign");
      sched.run(iteration);
    }

    std::uint64_t changed = 0;
    for (const auto& pt : per_thread) changed += pt.changed;

    if (reducer != nullptr) {
      obs::Span span_allreduce("allreduce");
      // Pack the merged accumulator (slot 0) + changed, allreduce once,
      // unpack: slot 0 now holds the global accumulator on every rank.
      double* w = wire.data();
      const auto pack = [&](value_t* s, auto* c) {
        std::memcpy(w, s, kd * sizeof(double));
        for (int i = 0; i < k; ++i) w[kd + static_cast<std::size_t>(i)] =
            static_cast<double>(c[i]);
        w[kd + static_cast<std::size_t>(k)] = static_cast<double>(changed);
      };
      const auto unpack = [&](value_t* s, auto* c) {
        std::memcpy(s, w, kd * sizeof(double));
        using count_t = std::remove_reference_t<decltype(c[0])>;
        for (int i = 0; i < k; ++i) c[i] = static_cast<count_t>(
            std::llround(w[kd + static_cast<std::size_t>(i)]));
        changed = static_cast<std::uint64_t>(
            std::llround(w[kd + static_cast<std::size_t>(k)]));
      };
      if (prune)
        pack(deltas.merged().sums_data(), deltas.merged().counts_data());
      else
        pack(locals.merged().sums_data(), locals.merged().counts_data());
      reducer->allreduce(wire.data(), wire.size());
      if (prune)
        unpack(deltas.merged().sums_data(), deltas.merged().counts_data());
      else
        unpack(locals.merged().sums_data(), locals.merged().counts_data());
    }

    // Finalize next centroids from the merged accumulator (slot 0).
    obs::Span span_update("update");
    std::memcpy(prev.data(), cur.data(), cur.size() * sizeof(value_t));
    if (prune) {
      deltas.merged().apply_to(sums.data(), counts.data());
      res.cluster_sizes =
          finalize_sums(sums.data(), counts.data(), k, d, next, cur);
    } else {
      res.cluster_sizes = locals.merged().finalize_into(next, cur);
    }
    if (prune)
      deltas.next_iteration();
    else
      locals.next_iteration();
    std::swap(cur, next);
    if (prune) mti.prepare(prev, cur, K);

    res.iter_times.record(timer.elapsed());
    ++res.iters;
    if (changed <= tol_changes) {
      res.converged = true;
      break;
    }
    if (observer != nullptr) {
      // Boundary hook (checkpointing / fault injection / elastic stop).
      // Placed after the convergence break: a finished run has nothing to
      // checkpoint, and with a reducer present every rank computed the same
      // global `changed`, so all ranks reach this hook in lockstep.
      IterationView view;
      view.iteration = static_cast<std::uint64_t>(res.iters);
      view.changed = changed;
      view.centroids = &cur;
      view.assignments = &res.assignments;
      view.mti = prune ? &mti : nullptr;
      view.sums = prune ? &sums : nullptr;
      view.counts = prune ? &counts : nullptr;
      if (!observer->on_iteration(view)) break;
    }
  }

  // Steal statistics before the energy pass reuses the queues.
  const sched::StealStats steals = sched.total_stats();

  // Exact final energy: one full pass (pruned iterations skip distances, so
  // energy cannot be accumulated during the main loop). Per-chunk partial
  // energies summed in chunk order keep it deterministic across T too.
  {
    obs::Span span_energy("energy");
    std::vector<double> chunk_energy(chunks, 0.0);
    sched.parallel_for(n, task_size, &parts,
                       [&](int tid, const sched::Task& task) {
      const int my_node = parts.node_of_thread(tid);
      double e = 0.0;
      for_task_rows(data, parts, task, my_node, nullptr,
                    [&](index_t r, const value_t* base, index_t seg_begin) {
                      e += K.dist_sq(
                          base + static_cast<std::size_t>(r - seg_begin) * d,
                          cur.row(res.assignments[r]), d);
                    });
      chunk_energy[task.chunk] = e;
    });
    for (const double e : chunk_energy) res.energy += e;
  }

  for (const auto& pt : per_thread) {
    res.counters += pt.counters;
    res.thread_busy_s.push_back(pt.busy_s);
  }
  if (reducer != nullptr) reducer->allreduce(&res.energy, 1);
  res.counters.tasks_own = steals.own;
  res.counters.tasks_same_node = steals.same_node;
  res.counters.tasks_remote_node = steals.remote_node;

  // Publish the run's counters into the global registry — bulk adds at run
  // end through the shared mapping (core/run_metrics.hpp), so the hot loops
  // above keep their plain per-thread structs and --metrics agrees with
  // Result::counters by construction. The registry slice attaches only for
  // single-run processes; knord ranks publish without attaching (their
  // sibling ranks share the registry) and dist::kmeans diffs cluster-wide.
  publish_run_counters(res);
  if (reducer == nullptr) res.metrics = obs::diff(obs_before, reg.snapshot());

  res.centroids = std::move(cur);
  return res;
}

}  // namespace knor::detail
