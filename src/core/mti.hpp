// Minimal Triangle Inequality (MTI) pruning state — the paper's §4
// modification of Elkan's algorithm that drops the O(nk) lower-bound matrix.
//
// Memory: O(n) upper bounds + O(k^2) centroid-to-centroid distances +
// O(k) drifts — the paper's "6-10 bytes per point" overhead.
//
// Per iteration:
//   * prepare(prev, cur) computes the c2c distance matrix, per-centroid
//     separation s_half(c) = 1/2 min_{c' != c} d(c, c'), and the drift
//     f(c) = d(c_prev, c_cur) used to loosen bounds.
//   * For each point i with assignment a and loosened bound
//     ub = ub[i] + f(a):
//       Clause 1: ub <= s_half(a)           -> keep cluster, no distance
//                 computation at all (and, in knors, no I/O request).
//       Clause 2: ub <= 1/2 d(best, c)      -> skip candidate c before
//                 tightening.
//       Clause 3: after tightening ub = d(v, c_best) (one computation),
//                 re-test 1/2 d(best, c) with the tight bound.
// All bounds are on Euclidean (not squared) distances, as the triangle
// inequality requires.
#pragma once

#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/dense_matrix.hpp"
#include "common/types.hpp"
#include "core/kernels/simd.hpp"

namespace knor {

class MtiState {
 public:
  MtiState() = default;
  MtiState(index_t n, int k);

  /// Recompute c2c distances, s_half and drift for a new iteration.
  /// `prev` may be empty on the first call (drift = 0). Engines pass
  /// their hoisted kernel table so the bounds use the SAME ISA as the
  /// distances they gate even if another thread retargets the process-
  /// wide dispatch mid-run; the two-argument form resolves ops() itself.
  void prepare(const DenseMatrix& prev, const DenseMatrix& cur,
               const kernels::Ops& K);
  void prepare(const DenseMatrix& prev, const DenseMatrix& cur);

  /// Upper bound of point i (Euclidean).
  value_t ub(index_t i) const { return ub_[i]; }
  void set_ub(index_t i, value_t v) { ub_[i] = v; }

  /// Centroid drift f(c) = d(c_prev, c_cur).
  value_t drift(cluster_t c) const { return drift_[c]; }
  /// Half the distance from c to its nearest other centroid.
  value_t s_half(cluster_t c) const { return s_half_[c]; }
  /// Centroid-to-centroid Euclidean distance.
  value_t c2c(cluster_t a, cluster_t b) const {
    return c2c_[static_cast<std::size_t>(a) * k_ + b];
  }

  /// Clause 1: true when the loosened bound proves point i's assignment
  /// cannot change this iteration.
  bool clause1(cluster_t assign, value_t loosened_ub) const {
    return loosened_ub <= s_half_[assign];
  }

  int k() const { return k_; }
  index_t n() const { return ub_.size(); }
  std::size_t bytes() const {
    return ub_.size() * sizeof(value_t) + c2c_.size() * sizeof(value_t) +
           (drift_.size() + s_half_.size()) * sizeof(value_t);
  }

 private:
  int k_ = 0;
  AlignedBuffer<value_t> ub_;
  std::vector<value_t> c2c_;     ///< k*k (full, symmetric)
  std::vector<value_t> drift_;   ///< k
  std::vector<value_t> s_half_;  ///< k
};

}  // namespace knor
