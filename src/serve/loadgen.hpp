// Closed- and open-loop load generators for the serving front end
// (DESIGN.md §11) — the measurement half of the "millions of users" story:
// throughput-vs-latency curves come from driving a QueryFrontEnd with a
// reproducible multi-client workload.
//
// The workload is defined by GLOBAL request index, not by client: request
// i's rows are drawn from the query pool by Prng(seed, i), and client c of
// C handles requests {i : i mod C == c}. The request SET is therefore a
// pure function of (pool, seed, requests, rows_per_request, topm knobs) —
// identical across client counts, worker counts and batching windows,
// which is what lets tests/serve_test.cpp compare results bitwise across
// the whole configuration grid.
//
//   * Closed loop — each client holds at most `pipeline` requests in
//     flight and submits the next only when a slot frees (pipeline=1 is
//     the classic submit-wait-repeat client; think connection pools):
//     offered load adapts to service rate; the headline number is
//     throughput.
//   * Open loop — arrivals follow a seeded Poisson schedule computed in
//     VIRTUAL time before the run starts (exponential inter-arrival gaps
//     at arrival_rate / clients per client), then replayed against the
//     wall clock: submission does not wait for completion, so queueing
//     delay shows up in the latency tail instead of throttling the
//     offered load. Latency is measured from the SCHEDULED arrival time
//     (coordinated-omission-free).
//
// Request contents and totals are deterministic; every latency, the
// shed/completed split under ShedPolicy::kShed, and the coalescing plan
// are wall-clock-dependent (kTiming in any export).
#pragma once

#include <cstdint>
#include <vector>

#include "common/dense_matrix.hpp"
#include "common/types.hpp"
#include "serve/front_end.hpp"

namespace knor::serve {

struct LoadOptions {
  int clients = 4;
  /// Total requests across all clients (partitioned round-robin).
  std::uint64_t requests = 256;
  index_t rows_per_request = 8;
  /// Every topm_every-th request is a top-m query (0 = assignment only).
  int topm_every = 0;
  int m = 4;
  std::uint64_t seed = 42;
  /// Closed loop only: bypass admission entirely with assign_now() —
  /// the serialized one-request-per-call baseline.
  bool direct = false;
  /// Closed loop only (queued path): requests each client keeps in flight
  /// before waiting on its oldest response. 1 = classic closed loop
  /// (submit, wait, repeat); P > 1 is a bounded-pipelining closed system
  /// with multiprogramming level clients * P — the client drains ready
  /// responses in submission order, so per-response wakeups amortize and
  /// the dispatcher sees up to clients * P coalescable requests. Ignored
  /// by the direct path (assign_now is synchronous by construction).
  int pipeline = 1;
  /// Open loop only: mean offered arrival rate, requests/s across ALL
  /// clients.
  double arrival_rate = 1000.0;
};

struct LoadStats {
  std::uint64_t requests = 0;   ///< offered (deterministic)
  std::uint64_t rows = 0;       ///< rows offered (deterministic)
  std::uint64_t completed = 0;  ///< responses with results
  std::uint64_t shed = 0;       ///< shed/rejected responses
  double wall_s = 0;
  /// Per-completed-request latency, seconds, sorted ascending. Closed
  /// loop: submit-to-response; open loop: scheduled-arrival-to-response.
  std::vector<double> latencies_s;

  /// Nearest-rank quantile of latencies_s (q in [0,1]); 0 when empty.
  double latency_quantile(double q) const;
  double completed_rows_per_sec() const;
  double achieved_rps() const {
    return wall_s > 0 ? static_cast<double>(completed) / wall_s : 0;
  }
};

/// Drive `fe` with `opts.clients` closed-loop client threads submitting
/// rows drawn from `pool`. Blocks until every request resolved.
LoadStats run_closed_loop(QueryFrontEnd& fe, const DenseMatrix& pool,
                          const LoadOptions& opts);

/// Replay a seeded Poisson arrival schedule against `fe`. Blocks until
/// every submitted request resolved (or was shed).
LoadStats run_open_loop(QueryFrontEnd& fe, const DenseMatrix& pool,
                        const LoadOptions& opts);

}  // namespace knor::serve
