// Bounded MPMC queue with backpressure — the admission substrate of the
// serving front end (DESIGN.md §11).
//
// This generalizes the bounded I/O ring inside stream::AssignServer into a
// reusable component: a fixed-capacity FIFO where the BOUND is the
// backpressure. Producers that find the queue full either block until a
// consumer frees a slot (ShedPolicy-style kBlock admission) or fail
// immediately (kShed); consumers block until an item arrives or the queue
// is closed AND drained. close() is the shutdown contract the stress tests
// pin: it wakes every blocked producer (they return kClosed without
// enqueuing) while letting consumers drain what was already admitted, so
// shutdown-with-queued-work can neither deadlock nor drop admitted items.
//
// Accounting is exact, not sampled: pushed/shed/blocked counters and the
// high-water mark are maintained under the same mutex as the queue itself,
// so after the queue is quiescent they reconcile exactly (pushed ==
// popped once drained; max_occupancy() <= capacity() always).
//
// A mutex + two condvars, not a lock-free ring: admission operates at
// request granularity (thousands per second), not chunk granularity — the
// scheduler's CAS deques stay where the per-chunk rates are.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace knor::serve {

template <typename T>
class BoundedQueue {
 public:
  enum class Push { kOk, kShed, kClosed };

  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// Enqueue `v`. block=true waits for a free slot (kBlock admission);
  /// block=false returns kShed immediately when full. Returns kClosed —
  /// without enqueuing — once close() has been called, including for
  /// producers that were blocked waiting when the close arrived.
  Push push(T v, bool block) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return Push::kClosed;
    if (items_.size() >= capacity_) {
      if (!block) {
        ++shed_;
        return Push::kShed;
      }
      ++blocked_;
      cv_free_.wait(lock,
                    [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return Push::kClosed;
    }
    items_.push_back(std::move(v));
    ++pushed_;
    if (items_.size() > max_occupancy_) max_occupancy_ = items_.size();
    lock.unlock();
    cv_full_.notify_one();
    return Push::kOk;
  }

  /// Dequeue into `out`; blocks until an item is available. Returns false
  /// only when the queue is closed AND fully drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_full_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    lock.unlock();
    cv_free_.notify_one();
    return true;
  }

  /// Non-blocking pop for batch draining: the consumer that just took one
  /// item sweeps the rest of the window without re-sleeping.
  bool try_pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    lock.unlock();
    cv_free_.notify_one();
    return true;
  }

  /// Stop admitting. Blocked producers wake and return kClosed; consumers
  /// drain the remaining items, then pop() returns false. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_free_.notify_all();
    cv_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  /// High-water mark of the occupancy; never exceeds capacity() (the
  /// stress test's bound invariant).
  std::size_t max_occupancy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_occupancy_;
  }
  std::uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
  }
  std::uint64_t popped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return popped_;
  }
  std::uint64_t shed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_;
  }
  /// Pushes that had to wait for a free slot (backpressure events).
  std::uint64_t blocked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_full_, cv_free_;
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t max_occupancy_ = 0;
  std::uint64_t pushed_ = 0, popped_ = 0, shed_ = 0, blocked_ = 0;
};

}  // namespace knor::serve
