#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>

#include "common/prng.hpp"

namespace knor::serve {

namespace {

using Clock = std::chrono::steady_clock;

double secs_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void validate(const DenseMatrix& pool, const LoadOptions& o) {
  if (pool.empty()) throw std::invalid_argument("loadgen: empty query pool");
  if (o.clients < 1) throw std::invalid_argument("loadgen: clients must be >= 1");
  if (o.rows_per_request < 1)
    throw std::invalid_argument("loadgen: rows_per_request must be >= 1");
  if (o.topm_every < 0)
    throw std::invalid_argument("loadgen: topm_every must be >= 0");
  if (o.topm_every > 0 && o.m < 1)
    throw std::invalid_argument("loadgen: m must be >= 1");
  if (o.pipeline < 1)
    throw std::invalid_argument("loadgen: pipeline must be >= 1");
}

/// Fill `out` (rows_per_request x d) with request i's rows: drawn from the
/// pool by Prng(seed, i). Pure function of (pool, seed, i).
void fill_request(const DenseMatrix& pool, const LoadOptions& o,
                  std::uint64_t i, value_t* out) {
  Prng g(o.seed, /*stream=*/i + 1);
  const index_t d = pool.cols();
  for (index_t r = 0; r < o.rows_per_request; ++r) {
    const index_t src = g.next_below(pool.rows());
    std::copy(pool.row(src), pool.row(src) + d,
              out + static_cast<std::size_t>(r) * d);
  }
}

bool is_topm(const LoadOptions& o, std::uint64_t i) {
  return o.topm_every > 0 &&
         i % static_cast<std::uint64_t>(o.topm_every) ==
             static_cast<std::uint64_t>(o.topm_every) - 1;
}

struct ClientResult {
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::vector<double> latencies_s;
};

LoadStats merge(std::vector<ClientResult>& per_client,
                const LoadOptions& o, double wall_s) {
  LoadStats stats;
  stats.requests = o.requests;
  stats.rows = o.requests * o.rows_per_request;
  stats.wall_s = wall_s;
  for (auto& c : per_client) {
    stats.completed += c.completed;
    stats.shed += c.shed;
    stats.latencies_s.insert(stats.latencies_s.end(), c.latencies_s.begin(),
                             c.latencies_s.end());
  }
  std::sort(stats.latencies_s.begin(), stats.latencies_s.end());
  return stats;
}

}  // namespace

double LoadStats::latency_quantile(double q) const {
  if (latencies_s.empty()) return 0;
  const auto n = latencies_s.size();
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  return latencies_s[std::min(rank, n - 1)];
}

double LoadStats::completed_rows_per_sec() const {
  // Every completed request carries rows_per_request rows (shed requests
  // never compute), so completed rows = total rows minus shed rows.
  if (wall_s <= 0 || requests == 0) return 0;
  const double rows_per_request =
      static_cast<double>(rows) / static_cast<double>(requests);
  return static_cast<double>(completed) * rows_per_request / wall_s;
}

LoadStats run_closed_loop(QueryFrontEnd& fe, const DenseMatrix& pool,
                          const LoadOptions& opts) {
  validate(pool, opts);
  const int C = opts.clients;
  const index_t d = pool.cols();
  std::vector<ClientResult> results(static_cast<std::size_t>(C));

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c) {
    clients.emplace_back([&, c] {
      Session session(fe);
      ClientResult& res = results[static_cast<std::size_t>(c)];
      const int P = opts.direct ? 1 : opts.pipeline;
      // One buffer per in-flight slot: submit() hands the front end a VIEW
      // of the request rows, so a slot's buffer must stay untouched until
      // its response has been drained.
      struct Slot {
        DenseMatrix buf;
        std::future<Response> fut;
        Clock::time_point t0;
      };
      std::vector<Slot> slots(static_cast<std::size_t>(P));
      for (auto& s : slots) s.buf = DenseMatrix(opts.rows_per_request, d);
      // Ring of in-flight slots, drained oldest-first (submission order).
      std::size_t head = 0, inflight = 0;
      const auto drain_one = [&] {
        Slot& s = slots[head];
        const Response resp = s.fut.get();
        if (resp.shed) {
          ++res.shed;
        } else {
          ++res.completed;
          res.latencies_s.push_back(secs_between(s.t0, Clock::now()));
        }
        head = (head + 1) % static_cast<std::size_t>(P);
        --inflight;
      };
      for (std::uint64_t i = static_cast<std::uint64_t>(c); i < opts.requests;
           i += static_cast<std::uint64_t>(C)) {
        if (inflight == static_cast<std::size_t>(P)) drain_one();
        Slot& s = slots[(head + inflight) % static_cast<std::size_t>(P)];
        fill_request(pool, opts, i, s.buf.data());
        const ConstMatrixView view = s.buf.const_view();
        s.t0 = Clock::now();
        if (opts.direct) {
          const Response resp = session.assign_now(view);
          if (resp.shed) {
            ++res.shed;
          } else {
            ++res.completed;
            res.latencies_s.push_back(secs_between(s.t0, Clock::now()));
          }
        } else {
          s.fut = is_topm(opts, i) ? session.submit_topm(view, opts.m)
                                   : session.submit_assign(view);
          ++inflight;
        }
      }
      while (inflight > 0) drain_one();
    });
  }
  for (auto& t : clients) t.join();
  return merge(results, opts, secs_between(start, Clock::now()));
}

LoadStats run_open_loop(QueryFrontEnd& fe, const DenseMatrix& pool,
                        const LoadOptions& opts) {
  validate(pool, opts);
  if (!(opts.arrival_rate > 0))
    throw std::invalid_argument("loadgen: arrival_rate must be > 0");
  const int C = opts.clients;
  const index_t d = pool.cols();
  const double client_rate = opts.arrival_rate / C;
  std::vector<ClientResult> results(static_cast<std::size_t>(C));

  // Phase 1 (untimed): per client, materialize its request buffers and its
  // Poisson arrival schedule in virtual time — both pure functions of the
  // seed, so the offered workload is identical run to run; only the
  // replay against the wall clock differs.
  struct ClientPlan {
    std::vector<std::uint64_t> request_ids;
    std::vector<double> arrival_s;  ///< virtual arrival offsets, ascending
    DenseMatrix rows;               ///< all requests' rows, concatenated
  };
  std::vector<ClientPlan> plans(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c) {
    ClientPlan& plan = plans[static_cast<std::size_t>(c)];
    for (std::uint64_t i = static_cast<std::uint64_t>(c); i < opts.requests;
         i += static_cast<std::uint64_t>(C))
      plan.request_ids.push_back(i);
    const auto nreq = plan.request_ids.size();
    plan.arrival_s.resize(nreq);
    Prng g(opts.seed ^ 0x9e3779b97f4a7c15ULL,
           /*stream=*/static_cast<std::uint64_t>(c) + 1);
    double t = 0;
    for (std::size_t j = 0; j < nreq; ++j) {
      // Exponential gap at the per-client rate; 1 - u in (0, 1] keeps the
      // log finite.
      t += -std::log(1.0 - g.next_double()) / client_rate;
      plan.arrival_s[j] = t;
    }
    plan.rows = DenseMatrix(static_cast<index_t>(nreq) * opts.rows_per_request,
                            d);
    for (std::size_t j = 0; j < nreq; ++j)
      fill_request(pool, opts, plan.request_ids[j],
                   plan.rows.row(static_cast<index_t>(j) *
                                 opts.rows_per_request));
  }

  // Phase 2: replay. Submission never waits for completion (open loop);
  // futures are drained after the last arrival.
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c) {
    clients.emplace_back([&, c] {
      Session session(fe);
      ClientPlan& plan = plans[static_cast<std::size_t>(c)];
      ClientResult& res = results[static_cast<std::size_t>(c)];
      const auto nreq = plan.request_ids.size();
      std::vector<std::future<Response>> inflight;
      std::vector<double> submit_delay_s;  ///< scheduled arrival -> submit
      inflight.reserve(nreq);
      submit_delay_s.reserve(nreq);
      for (std::size_t j = 0; j < nreq; ++j) {
        const Clock::time_point due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(plan.arrival_s[j]));
        std::this_thread::sleep_until(due);  // no-op when behind schedule
        const ConstMatrixView view = plan.rows.const_view().sub_rows(
            static_cast<index_t>(j) * opts.rows_per_request,
            opts.rows_per_request);
        submit_delay_s.push_back(secs_between(due, Clock::now()));
        inflight.push_back(is_topm(opts, plan.request_ids[j])
                               ? session.submit_topm(view, opts.m)
                               : session.submit_assign(view));
      }
      for (std::size_t j = 0; j < nreq; ++j) {
        const Response resp = inflight[j].get();
        if (resp.shed) {
          ++res.shed;
        } else {
          ++res.completed;
          // Coordinated-omission-free: latency from the SCHEDULED arrival
          // — any delay submitting (a blocked admission queue, a late
          // client thread) plus the front end's own admission-to-demux
          // time. Measured at demux, not at this drain loop's get().
          res.latencies_s.push_back(
              std::max(0.0, submit_delay_s[j]) + resp.total_s);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  return merge(results, opts, secs_between(start, Clock::now()));
}

}  // namespace knor::serve
