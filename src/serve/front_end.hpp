// Concurrent multi-client serving front end (DESIGN.md §11).
//
// Many client sessions submit assignment and top-m nearest-centroid
// requests against one frozen centroid set; the front end admits them
// through a bounded MPMC queue (serve/bounded_queue.hpp — the bound is the
// backpressure; callers block or are shed per ShedPolicy), a dispatcher
// thread coalesces queued requests into SIMD-blocked mega-batches, the
// work-stealing scheduler computes each mega-batch with the blocked
// nearest-centroid kernel, and results are demuxed back to the submitting
// session through the per-request future.
//
// Determinism contract: every request's result depends only on its own
// rows, the frozen centroids and the selected SIMD ISA — never on what it
// was coalesced with. A mega-batch evaluates exactly `nearest_blocked(row,
// pack)` per assignment row and the ISA's `dist_sq` per (row, centroid)
// for top-m rows, so coalesced results are BITWISE identical to
// per-request serial evaluation across client counts, worker counts,
// batching windows and shed policies (tests/serve_test.cpp pins the full
// grid). Top-m orders by (dist_sq, centroid index) — ties break toward
// the lower index, matching nearest_blocked, so topm[0] always equals the
// assignment. What a window coalesces IS arrival-timing-dependent, so
// batch counts/sizes and every latency are kTiming metrics; only the
// client-driven totals (requests, rows) are kDeterministic.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "common/dense_matrix.hpp"
#include "common/types.hpp"
#include "core/kernels/simd.hpp"
#include "core/kmeans_types.hpp"

namespace knor::serve {

/// What a producer does when the admission queue is full.
enum class ShedPolicy {
  kBlock,  ///< wait for a slot (closed-loop clients; lossless)
  kShed,   ///< fail fast: the response comes back with shed=true
};

const char* to_string(ShedPolicy p);

struct FrontEndOptions {
  /// Admission-queue capacity in requests (the backpressure bound).
  std::size_t queue_depth = 256;
  /// Batching window: the dispatcher coalesces queued requests until the
  /// mega-batch holds >= batch_window rows. 1 = batching off (every
  /// request rides its own batch); a request's rows are never split
  /// across batches, so a window smaller than a request admits exactly
  /// that request.
  index_t batch_window = 4096;
  ShedPolicy shed_policy = ShedPolicy::kBlock;
};

/// One top-m entry: centroid index and squared distance, ascending by
/// (dist_sq, cluster) — the serial sorted-distance oracle order.
struct TopEntry {
  cluster_t cluster = 0;
  value_t dist_sq = 0;
};

/// A completed (or shed) request, delivered through the submit future.
struct Response {
  bool shed = false;               ///< true: never computed (queue full/closed)
  std::vector<cluster_t> assign;   ///< per row: nearest centroid
  std::vector<value_t> dist_sq;    ///< per row: its squared distance
  std::vector<TopEntry> topm;      ///< top-m rows: row-major m entries per row
  int m = 0;                       ///< entries per row in `topm` (0 = assign)
  double queue_wait_s = 0;         ///< admission to dispatch
  double compute_s = 0;            ///< the mega-batch compute it rode in
  double total_s = 0;              ///< admission to demux
  std::uint64_t batch_rows = 0;    ///< rows of that mega-batch
};

/// Front-end lifetime totals. Exact once close() has returned (workers
/// quiescent): submitted == completed + shed, and max_queue_depth never
/// exceeds FrontEndOptions::queue_depth — the stress-test invariants.
struct FrontEndStats {
  std::uint64_t submitted = 0;   ///< submit_* calls that entered admission
  std::uint64_t completed = 0;   ///< responses computed and demuxed
  std::uint64_t shed = 0;        ///< rejected: queue full (kShed) or closed
  std::uint64_t blocked = 0;     ///< submissions that waited for a slot
  std::uint64_t batches = 0;     ///< mega-batches executed (timing-dependent)
  std::uint64_t rows = 0;        ///< rows across submitted requests
  std::size_t max_queue_depth = 0;
};

class QueryFrontEnd {
 public:
  /// Freeze `centroids` (k x d) for serving. `opts` supplies the scheduler
  /// shape (threads, NUMA policy) and SIMD selection — resolved once here,
  /// like AssignServer, so the front end stays on one ISA for its life.
  QueryFrontEnd(const DenseMatrix& centroids, const Options& opts,
                const FrontEndOptions& fopts = {});
  /// close()s and joins.
  ~QueryFrontEnd();

  QueryFrontEnd(const QueryFrontEnd&) = delete;
  QueryFrontEnd& operator=(const QueryFrontEnd&) = delete;

  int k() const;
  index_t d() const;
  /// The resolved kernel table (tests build their oracle against it).
  const kernels::Ops& ops() const;

  /// Submit an assignment query over `rows` (n x d). The caller's buffer
  /// must stay valid until the future resolves. Thread-safe.
  std::future<Response> submit_assign(ConstMatrixView rows);
  /// Submit a top-m nearest-centroid query (1 <= m <= k).
  std::future<Response> submit_topm(ConstMatrixView rows, int m);

  /// Synchronous bypass: compute `rows` immediately on the calling thread's
  /// behalf, one request per call, no admission or coalescing (serialized
  /// internally — concurrent callers queue on a mutex). The
  /// one-request-per-call baseline the serve_closed bench compares against.
  Response assign_now(ConstMatrixView rows);

  /// Stop admitting (in-flight submissions are shed), drain every queued
  /// request, then join the dispatcher. Idempotent; the destructor calls
  /// it. Queued work is always completed, never dropped.
  void close();

  FrontEndStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A client session: a thin per-client handle that routes submissions to
/// the shared front end and keeps per-session totals (one session per
/// client thread; sessions are not internally synchronized, the front end
/// is). Responses demux to whichever session submitted them via the
/// returned future, so per-session ordering is the client's own submit
/// order.
class Session {
 public:
  explicit Session(QueryFrontEnd& fe) : fe_(&fe) {}

  std::future<Response> submit_assign(ConstMatrixView rows) {
    ++submitted_;
    rows_ += rows.rows();
    return fe_->submit_assign(rows);
  }
  std::future<Response> submit_topm(ConstMatrixView rows, int m) {
    ++submitted_;
    rows_ += rows.rows();
    return fe_->submit_topm(rows, m);
  }
  Response assign_now(ConstMatrixView rows) {
    ++submitted_;
    rows_ += rows.rows();
    return fe_->assign_now(rows);
  }

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t rows() const { return rows_; }

 private:
  QueryFrontEnd* fe_;
  std::uint64_t submitted_ = 0;
  std::uint64_t rows_ = 0;
};

}  // namespace knor::serve
