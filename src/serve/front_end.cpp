#include "serve/front_end.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "numa/topology.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sched/scheduler.hpp"
#include "serve/bounded_queue.hpp"

namespace knor::serve {

const char* to_string(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kBlock: return "block";
    case ShedPolicy::kShed: return "shed";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

double secs_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint64_t to_us(double s) {
  return s > 0 ? static_cast<std::uint64_t>(s * 1e6) : 0;
}

/// One admitted request, owned by the queue until the dispatcher demuxes
/// it. Result vectors are sized at submit (client thread) so the
/// dispatcher and workers never allocate per row.
struct Pending {
  ConstMatrixView rows;
  int m = 0;  ///< 0 = assignment, >0 = top-m
  std::promise<Response> promise;
  Response resp;
  Clock::time_point t_submit;
};

}  // namespace

struct QueryFrontEnd::Impl {
  Impl(const DenseMatrix& c, const Options& o, const FrontEndOptions& f)
      : opts(o),
        fopts(f),
        centroids(c),
        topo(o.numa_nodes > 0 ? numa::Topology::simulated(o.numa_nodes)
                              : numa::Topology::detect()),
        threads(o.threads > 0 ? o.threads : topo.num_cpus()),
        sched(threads, topo, /*bind=*/o.numa_aware && o.numa_bind, o.sched),
        ops(&kernels::ops_for(o.simd)),
        queue(f.queue_depth),
        scratch(static_cast<std::size_t>(threads)),
        // Client-driven totals are deterministic (a pure function of what
        // the clients submit); everything batching- or occupancy-shaped
        // races on arrival timing and is declared kTiming (see the header
        // determinism contract).
        m_requests(obs::Registry::global().counter("serve.requests",
                                                   obs::Det::kDeterministic)),
        m_rows(obs::Registry::global().counter("serve.rows",
                                               obs::Det::kDeterministic)),
        m_topm(obs::Registry::global().counter("serve.topm_requests",
                                               obs::Det::kDeterministic)),
        m_shed(obs::Registry::global().counter("serve.shed",
                                               obs::Det::kTiming)),
        m_batches(obs::Registry::global().counter("serve.batches",
                                                  obs::Det::kTiming)),
        m_batch_rows(obs::Registry::global().histogram("serve.batch_rows",
                                                       obs::Det::kTiming)),
        m_queue_wait(obs::Registry::global().histogram("serve.queue_wait_us",
                                                       obs::Det::kTiming)),
        m_compute(obs::Registry::global().histogram("serve.compute_us",
                                                    obs::Det::kTiming)),
        m_request(obs::Registry::global().histogram("serve.request_us",
                                                    obs::Det::kTiming)) {
    if (centroids.empty())
      throw std::invalid_argument("serve: centroids are empty");
    if (fopts.queue_depth < 1)
      throw std::invalid_argument("serve: queue_depth must be >= 1");
    if (fopts.batch_window < 1)
      throw std::invalid_argument("serve: batch_window must be >= 1");
    pack.pack(centroids);
    for (auto& s : scratch)
      s.resize(static_cast<std::size_t>(centroids.rows()));
    dispatcher = std::thread([this] { dispatch_loop(); });
  }

  std::future<Response> submit(ConstMatrixView rows, int m);
  Response assign_now(ConstMatrixView rows);
  void dispatch_loop();
  void execute(std::vector<std::unique_ptr<Pending>>& batch);
  void close();

  Options opts;
  FrontEndOptions fopts;
  DenseMatrix centroids;
  numa::Topology topo;
  int threads;
  sched::Scheduler sched;
  kernels::CentroidPack pack;
  /// Resolved once at construction (the per-selected-ISA determinism
  /// contract, same as AssignServer).
  const kernels::Ops* ops;

  BoundedQueue<std::unique_ptr<Pending>> queue;
  std::thread dispatcher;
  /// Serializes scheduler use between the dispatcher and assign_now()
  /// callers — the Scheduler's chunk phase is single-driver.
  std::mutex compute_mu;
  std::mutex close_mu;
  std::atomic<bool> closed{false};

  /// Per-worker (dist_sq, centroid) scratch for top-m selection.
  std::vector<std::vector<TopEntry>> scratch;
  /// Mega-batch row maps, reused across batches (dispatcher-only).
  std::vector<const value_t*> row_ptr;
  std::vector<std::uint32_t> row_req;
  std::vector<index_t> row_idx;

  std::atomic<std::uint64_t> submitted{0}, completed{0}, shed{0}, batches{0},
      rows_total{0};

  obs::Counter& m_requests;
  obs::Counter& m_rows;
  obs::Counter& m_topm;
  obs::Counter& m_shed;
  obs::Counter& m_batches;
  obs::Histogram& m_batch_rows;
  obs::Histogram& m_queue_wait;
  obs::Histogram& m_compute;
  obs::Histogram& m_request;
};

std::future<Response> QueryFrontEnd::Impl::submit(ConstMatrixView rows,
                                                  int m) {
  if (rows.rows() == 0)
    throw std::invalid_argument("serve: empty request");
  if (rows.cols() != centroids.cols())
    throw std::invalid_argument(
        "serve: query d=" + std::to_string(rows.cols()) +
        " != centroid d=" + std::to_string(centroids.cols()));
  if (m < 0 || m > static_cast<int>(centroids.rows()))
    throw std::invalid_argument("serve: top-m m=" + std::to_string(m) +
                                " out of [1, k=" +
                                std::to_string(centroids.rows()) + "]");
  submitted.fetch_add(1, std::memory_order_relaxed);
  rows_total.fetch_add(rows.rows(), std::memory_order_relaxed);
  m_requests.inc();
  m_rows.add(rows.rows());
  if (m > 0) m_topm.inc();

  auto p = std::make_unique<Pending>();
  p->rows = rows;
  p->m = m;
  p->t_submit = Clock::now();
  const auto n = static_cast<std::size_t>(rows.rows());
  p->resp.m = m;
  p->resp.assign.resize(n);
  p->resp.dist_sq.resize(n);
  if (m > 0) p->resp.topm.resize(n * static_cast<std::size_t>(m));
  std::future<Response> future = p->promise.get_future();

  const auto outcome =
      queue.push(std::move(p), fopts.shed_policy == ShedPolicy::kBlock);
  if (outcome != BoundedQueue<std::unique_ptr<Pending>>::Push::kOk) {
    // Shed (queue full under kShed, or front end closed): resolve the
    // future immediately with an empty shed response.
    shed.fetch_add(1, std::memory_order_relaxed);
    m_shed.inc();
    std::promise<Response> rejected;
    Response r;
    r.shed = true;
    r.m = m;
    rejected.set_value(std::move(r));
    return rejected.get_future();
  }
  return future;
}

void QueryFrontEnd::Impl::dispatch_loop() {
  std::vector<std::unique_ptr<Pending>> batch;
  std::unique_ptr<Pending> p;
  while (queue.pop(p)) {
    batch.clear();
    index_t rows = p->rows.rows();
    batch.push_back(std::move(p));
    // Coalesce whatever is already queued, up to the batching window. A
    // request is never split, so one oversized request closes the window
    // by itself. Between drains, linger cooperatively: yield once so
    // runnable submitters get a scheduling round, and keep going only
    // while that round actually produced another request — no timed wait,
    // so an isolated request still dispatches with ~no added latency.
    while (rows < fopts.batch_window) {
      while (rows < fopts.batch_window && queue.try_pop(p)) {
        rows += p->rows.rows();
        batch.push_back(std::move(p));
      }
      if (rows >= fopts.batch_window) break;
      std::this_thread::yield();
      if (!queue.try_pop(p)) break;
      rows += p->rows.rows();
      batch.push_back(std::move(p));
    }
    execute(batch);
  }
}

void QueryFrontEnd::Impl::execute(
    std::vector<std::unique_ptr<Pending>>& batch) {
  const Clock::time_point t_dispatch = Clock::now();
  index_t total = 0;
  for (const auto& q : batch) total += q->rows.rows();
  row_ptr.resize(static_cast<std::size_t>(total));
  row_req.resize(static_cast<std::size_t>(total));
  row_idx.resize(static_cast<std::size_t>(total));
  std::size_t at = 0;
  for (std::size_t qi = 0; qi < batch.size(); ++qi) {
    const ConstMatrixView& v = batch[qi]->rows;
    for (index_t r = 0; r < v.rows(); ++r, ++at) {
      row_ptr[at] = v.row(r);
      row_req[at] = static_cast<std::uint32_t>(qi);
      row_idx[at] = r;
    }
  }

  const kernels::Ops& K = *ops;
  const int k = static_cast<int>(centroids.rows());
  const index_t d = centroids.cols();
  const Clock::time_point t0 = Clock::now();
  {
    obs::Span span("serve_batch");
    std::lock_guard<std::mutex> lock(compute_mu);
    sched.parallel_for(
        total, opts.task_size, nullptr,
        [&](int tid, const sched::Task& task) {
          auto& sc = scratch[static_cast<std::size_t>(tid)];
          for (index_t g = task.begin; g < task.end; ++g) {
            Pending& q = *batch[row_req[static_cast<std::size_t>(g)]];
            const value_t* row = row_ptr[static_cast<std::size_t>(g)];
            const auto rr =
                static_cast<std::size_t>(row_idx[static_cast<std::size_t>(g)]);
            if (q.m == 0) {
              q.resp.assign[rr] =
                  K.nearest_blocked(row, pack, &q.resp.dist_sq[rr]);
            } else {
              // All k distances through the ISA's dist_sq against the
              // pack's rows (bitwise-equal to nearest_blocked's values),
              // ordered by (dist_sq, index) — the serial oracle order.
              for (int c = 0; c < k; ++c)
                sc[static_cast<std::size_t>(c)] = {
                    static_cast<cluster_t>(c),
                    K.dist_sq(row, pack.row(c), d)};
              std::sort(sc.begin(), sc.end(),
                        [](const TopEntry& a, const TopEntry& b) {
                          return a.dist_sq < b.dist_sq ||
                                 (a.dist_sq == b.dist_sq &&
                                  a.cluster < b.cluster);
                        });
              for (int j = 0; j < q.m; ++j)
                q.resp.topm[rr * static_cast<std::size_t>(q.m) +
                            static_cast<std::size_t>(j)] =
                    sc[static_cast<std::size_t>(j)];
              q.resp.assign[rr] = sc[0].cluster;
              q.resp.dist_sq[rr] = sc[0].dist_sq;
            }
          }
        });
  }
  const double compute_s = secs_between(t0, Clock::now());

  batches.fetch_add(1, std::memory_order_relaxed);
  m_batches.inc();
  m_batch_rows.record(total);
  m_compute.record(to_us(compute_s));
  const Clock::time_point t_done = Clock::now();
  for (auto& q : batch) {
    q->resp.queue_wait_s = secs_between(q->t_submit, t_dispatch);
    q->resp.compute_s = compute_s;
    q->resp.total_s = secs_between(q->t_submit, t_done);
    q->resp.batch_rows = total;
    m_queue_wait.record(to_us(q->resp.queue_wait_s));
    m_request.record(to_us(q->resp.total_s));
    completed.fetch_add(1, std::memory_order_relaxed);
    q->promise.set_value(std::move(q->resp));
  }
}

Response QueryFrontEnd::Impl::assign_now(ConstMatrixView rows) {
  if (rows.rows() == 0)
    throw std::invalid_argument("serve: empty request");
  if (rows.cols() != centroids.cols())
    throw std::invalid_argument(
        "serve: query d=" + std::to_string(rows.cols()) +
        " != centroid d=" + std::to_string(centroids.cols()));
  submitted.fetch_add(1, std::memory_order_relaxed);
  rows_total.fetch_add(rows.rows(), std::memory_order_relaxed);
  m_requests.inc();
  m_rows.add(rows.rows());
  if (closed.load(std::memory_order_acquire)) {
    shed.fetch_add(1, std::memory_order_relaxed);
    m_shed.inc();
    Response r;
    r.shed = true;
    return r;
  }

  const Clock::time_point t_submit = Clock::now();
  Response resp;
  const auto n = static_cast<std::size_t>(rows.rows());
  resp.assign.resize(n);
  resp.dist_sq.resize(n);
  const kernels::Ops& K = *ops;
  {
    std::lock_guard<std::mutex> lock(compute_mu);
    sched.parallel_for(rows.rows(), opts.task_size, nullptr,
                       [&](int, const sched::Task& task) {
                         for (index_t r = task.begin; r < task.end; ++r)
                           resp.assign[static_cast<std::size_t>(r)] =
                               K.nearest_blocked(
                                   rows.row(r), pack,
                                   &resp.dist_sq[static_cast<std::size_t>(r)]);
                       });
  }
  const Clock::time_point t_done = Clock::now();
  resp.compute_s = secs_between(t_submit, t_done);
  resp.total_s = resp.compute_s;
  resp.batch_rows = rows.rows();
  batches.fetch_add(1, std::memory_order_relaxed);
  m_batches.inc();
  m_batch_rows.record(rows.rows());
  m_compute.record(to_us(resp.compute_s));
  m_queue_wait.record(0);
  m_request.record(to_us(resp.total_s));
  completed.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

void QueryFrontEnd::Impl::close() {
  closed.store(true, std::memory_order_release);
  queue.close();
  std::lock_guard<std::mutex> lock(close_mu);
  if (dispatcher.joinable()) dispatcher.join();
}

QueryFrontEnd::QueryFrontEnd(const DenseMatrix& centroids, const Options& opts,
                             const FrontEndOptions& fopts)
    : impl_(std::make_unique<Impl>(centroids, opts, fopts)) {}

QueryFrontEnd::~QueryFrontEnd() { close(); }

int QueryFrontEnd::k() const {
  return static_cast<int>(impl_->centroids.rows());
}
index_t QueryFrontEnd::d() const { return impl_->centroids.cols(); }
const kernels::Ops& QueryFrontEnd::ops() const { return *impl_->ops; }

std::future<Response> QueryFrontEnd::submit_assign(ConstMatrixView rows) {
  return impl_->submit(rows, 0);
}

std::future<Response> QueryFrontEnd::submit_topm(ConstMatrixView rows, int m) {
  if (m < 1)
    throw std::invalid_argument("serve: top-m m must be >= 1");
  return impl_->submit(rows, m);
}

Response QueryFrontEnd::assign_now(ConstMatrixView rows) {
  return impl_->assign_now(rows);
}

void QueryFrontEnd::close() { impl_->close(); }

FrontEndStats QueryFrontEnd::stats() const {
  FrontEndStats s;
  s.submitted = impl_->submitted.load(std::memory_order_relaxed);
  s.completed = impl_->completed.load(std::memory_order_relaxed);
  s.shed = impl_->shed.load(std::memory_order_relaxed);
  s.blocked = impl_->queue.blocked();
  s.batches = impl_->batches.load(std::memory_order_relaxed);
  s.rows = impl_->rows_total.load(std::memory_order_relaxed);
  s.max_queue_depth = impl_->queue.max_occupancy();
  return s;
}

}  // namespace knor::serve
