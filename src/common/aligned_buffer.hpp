// Cache-line aligned, zero-initialized owning buffer.
//
// knor allocates all hot per-thread and global structures as contiguous,
// aligned chunks (Section 5.2 of the paper: "Effective data layout for CPU
// cache exploitation"). This type is the building block; NUMA-targeted
// placement is layered on top in numa/numa_alloc.hpp.
#pragma once

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/types.hpp"

namespace knor {

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, std::size_t alignment = kCacheLine)
      : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T), alignment);
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
    std::memset(static_cast<void*>(data_), 0, bytes);
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { reset(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  void reset() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

 private:
  static std::size_t round_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace knor
