// Cache-line aligned, zero-initialized owning buffer.
//
// knor allocates all hot per-thread and global structures as contiguous,
// aligned chunks (Section 5.2 of the paper: "Effective data layout for CPU
// cache exploitation"). This type is the building block; NUMA-targeted
// placement is layered on top in numa/numa_alloc.hpp.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/types.hpp"

namespace knor {

/// True when `p` meets the SIMD kernel layer's 64-byte requirement. Used
/// by the aligned-load paths (core/kernels) and their regression tests.
inline bool is_cacheline_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kCacheLine == 0;
}

// Alignment guarantees (the SIMD kernel layer relies on both):
//  * data() is aligned to `alignment` (>= kCacheLine by default), so
//    64-byte-aligned vector loads at managed offsets are legal;
//  * the allocation is rounded UP to a multiple of `alignment` and
//    zero-filled, so the tail past size() reads as +0.0 — padding lanes of
//    packed structures (kernels::CentroidPack) are well-defined without
//    per-row masking.
template <typename T>
class AlignedBuffer {
  static_assert(alignof(T) <= kCacheLine,
                "over-aligned element types would silently misalign");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, std::size_t alignment = kCacheLine)
      : size_(count) {
    if (count == 0) return;
    assert(alignment >= alignof(T) && (alignment & (alignment - 1)) == 0);
    const std::size_t bytes = round_up(count * sizeof(T), alignment);
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
    assert(reinterpret_cast<std::uintptr_t>(data_) % alignment == 0);
    std::memset(static_cast<void*>(data_), 0, bytes);
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { reset(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  void reset() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

 private:
  static std::size_t round_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace knor
