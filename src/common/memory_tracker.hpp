// Logical memory accounting for the Table 1 / Figure 8c / 9c / 10b
// memory-consumption experiments.
//
// Two complementary measurements:
//  * MemoryTracker — a process-global registry of tagged logical
//    allocations. knor modules register their major structures (dataset,
//    per-thread centroids, MTI state, caches ...) so a bench can report the
//    footprint of each routine exactly, independent of allocator slop.
//  * current_rss_bytes()/peak_rss_bytes() — physical truth from
//    /proc/self/status for cross-checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace knor {

class MemoryTracker {
 public:
  /// Process-global instance.
  static MemoryTracker& instance();

  /// Record `bytes` of live allocation under `tag`.
  void add(const std::string& tag, std::int64_t bytes);
  /// Release accounting (negative add).
  void sub(const std::string& tag, std::int64_t bytes) { add(tag, -bytes); }

  /// Currently live bytes across all tags.
  std::int64_t live_bytes() const;
  /// High-water mark of live_bytes() since construction / reset.
  std::int64_t peak_bytes() const;
  /// Live bytes under one tag.
  std::int64_t tag_bytes(const std::string& tag) const;
  /// Snapshot of all tags (for reports).
  std::map<std::string, std::int64_t> snapshot() const;

  void reset();

 private:
  MemoryTracker() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> tags_;
  std::int64_t live_ = 0;
  std::int64_t peak_ = 0;
};

/// RAII registration of a logical allocation.
class ScopedAlloc {
 public:
  ScopedAlloc(std::string tag, std::size_t bytes)
      : tag_(std::move(tag)), bytes_(static_cast<std::int64_t>(bytes)) {
    MemoryTracker::instance().add(tag_, bytes_);
  }
  ~ScopedAlloc() { MemoryTracker::instance().sub(tag_, bytes_); }
  ScopedAlloc(const ScopedAlloc&) = delete;
  ScopedAlloc& operator=(const ScopedAlloc&) = delete;
  ScopedAlloc(ScopedAlloc&& o) noexcept
      : tag_(std::move(o.tag_)), bytes_(o.bytes_) {
    o.bytes_ = 0;
  }

 private:
  std::string tag_;
  std::int64_t bytes_;
};

/// Resident set size of this process, bytes (VmRSS). 0 if unavailable.
std::size_t current_rss_bytes();
/// Peak resident set size (VmHWM). 0 if unavailable.
std::size_t peak_rss_bytes();

}  // namespace knor
