// Row-major dense matrix view and owner.
//
// All knor data is row-major: a row is one d-dimensional data point, which
// matches the access pattern of Lloyd's (stream rows, random-access
// centroids) and the on-disk layout of the SEM page file.
#pragma once

#include <cassert>
#include <cstddef>
#include <stdexcept>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"

namespace knor {

/// Non-owning view of an n x d row-major matrix.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  T* row(index_t r) const {
    assert(r < rows_);
    return data_ + static_cast<std::size_t>(r) * cols_;
  }
  T& at(index_t r, index_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  T* data() const noexcept { return data_; }
  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// View of a contiguous block of rows [first, first + count).
  MatrixView sub_rows(index_t first, index_t count) const {
    if (first + count > rows_)
      throw std::out_of_range("MatrixView::sub_rows out of range");
    return MatrixView(row(first), count, cols_);
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

using ConstMatrixView = MatrixView<const value_t>;
using MutMatrixView = MatrixView<value_t>;

/// Owning aligned row-major matrix. data() is 64-byte aligned and the
/// backing allocation is padded to a 64-byte multiple (AlignedBuffer), so
/// SIMD kernels may read full vectors anywhere inside the matrix plus the
/// zeroed tail; individual ROWS are only aligned when cols is a multiple
/// of kCacheLine/sizeof(value_t) — kernels use unaligned loads for row
/// pointers and kernels::CentroidPack for aligned, padded centroid rows.
class DenseMatrix {
  static_assert(kCacheLine % sizeof(value_t) == 0,
                "cache line must hold a whole number of elements");

 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols)
      : buf_(static_cast<std::size_t>(rows) * cols), rows_(rows), cols_(cols) {}

  // Deep copy (DenseMatrix participates in copyable aggregates like
  // Options); moves stay cheap.
  DenseMatrix(const DenseMatrix& o) : DenseMatrix(o.rows_, o.cols_) {
    if (!o.empty())
      std::memcpy(buf_.data(), o.buf_.data(), o.size() * sizeof(value_t));
  }
  DenseMatrix& operator=(const DenseMatrix& o) {
    if (this != &o) *this = DenseMatrix(o);
    return *this;
  }
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  value_t* row(index_t r) {
    assert(r < rows_);
    return buf_.data() + static_cast<std::size_t>(r) * cols_;
  }
  const value_t* row(index_t r) const {
    assert(r < rows_);
    return buf_.data() + static_cast<std::size_t>(r) * cols_;
  }
  value_t& at(index_t r, index_t c) {
    return buf_[static_cast<std::size_t>(r) * cols_ + c];
  }
  value_t at(index_t r, index_t c) const {
    return buf_[static_cast<std::size_t>(r) * cols_ + c];
  }

  value_t* data() noexcept { return buf_.data(); }
  const value_t* data() const noexcept { return buf_.data(); }
  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  bool empty() const noexcept { return size() == 0; }

  MutMatrixView view() { return {buf_.data(), rows_, cols_}; }
  ConstMatrixView view() const { return {buf_.data(), rows_, cols_}; }
  ConstMatrixView const_view() const { return {buf_.data(), rows_, cols_}; }

 private:
  AlignedBuffer<value_t> buf_;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

}  // namespace knor
