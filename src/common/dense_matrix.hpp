// Row-major dense matrix view and owner.
//
// All knor data is row-major: a row is one d-dimensional data point, which
// matches the access pattern of Lloyd's (stream rows, random-access
// centroids) and the on-disk layout of the SEM page file.
#pragma once

#include <cassert>
#include <cstddef>
#include <stdexcept>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"

namespace knor {

/// Non-owning view of an n x d row-major matrix.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  T* row(index_t r) const {
    assert(r < rows_);
    return data_ + static_cast<std::size_t>(r) * cols_;
  }
  T& at(index_t r, index_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  T* data() const noexcept { return data_; }
  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// View of a contiguous block of rows [first, first + count).
  MatrixView sub_rows(index_t first, index_t count) const {
    if (first + count > rows_)
      throw std::out_of_range("MatrixView::sub_rows out of range");
    return MatrixView(row(first), count, cols_);
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

using ConstMatrixView = MatrixView<const value_t>;
using MutMatrixView = MatrixView<value_t>;

/// Owning aligned row-major matrix. data() is 64-byte aligned and the
/// backing allocation is padded to a 64-byte multiple (AlignedBuffer), so
/// SIMD kernels may read full vectors anywhere inside the matrix plus the
/// zeroed tail; individual ROWS are only aligned when cols is a multiple
/// of kCacheLine/sizeof(value_t) — kernels use unaligned loads for row
/// pointers and kernels::CentroidPack for aligned, padded centroid rows.
class DenseMatrix {
  static_assert(kCacheLine % sizeof(value_t) == 0,
                "cache line must hold a whole number of elements");

 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols)
      : buf_(static_cast<std::size_t>(rows) * cols), rows_(rows), cols_(cols) {}

  // Deep copy (DenseMatrix participates in copyable aggregates like
  // Options); moves stay cheap.
  DenseMatrix(const DenseMatrix& o) : DenseMatrix(o.rows_, o.cols_) {
    if (!o.empty())
      std::memcpy(buf_.data(), o.buf_.data(), o.size() * sizeof(value_t));
  }
  DenseMatrix& operator=(const DenseMatrix& o) {
    if (this != &o) *this = DenseMatrix(o);
    return *this;
  }
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  value_t* row(index_t r) {
    assert(r < rows_);
    return buf_.data() + static_cast<std::size_t>(r) * cols_;
  }
  const value_t* row(index_t r) const {
    assert(r < rows_);
    return buf_.data() + static_cast<std::size_t>(r) * cols_;
  }
  value_t& at(index_t r, index_t c) {
    return buf_[static_cast<std::size_t>(r) * cols_ + c];
  }
  value_t at(index_t r, index_t c) const {
    return buf_[static_cast<std::size_t>(r) * cols_ + c];
  }

  value_t* data() noexcept { return buf_.data(); }
  const value_t* data() const noexcept { return buf_.data(); }
  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  bool empty() const noexcept { return size() == 0; }

  MutMatrixView view() { return {buf_.data(), rows_, cols_}; }
  ConstMatrixView view() const { return {buf_.data(), rows_, cols_}; }
  ConstMatrixView const_view() const { return {buf_.data(), rows_, cols_}; }

 private:
  AlignedBuffer<value_t> buf_;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

/// 2D-partitioned panel layout over a row-major matrix (DESIGN.md §12).
///
/// The source is cut into a grid of row-blocks × col-blocks; each (I, J)
/// panel is stored contiguously, COLUMN-major inside the panel: for every
/// column of the block, `row_stride()` consecutive values (one per row of
/// the block, zero-padded past the matrix edge and up to the stride).
/// Every panel base — and, because the stride is padded to a whole number
/// of cache lines, every column line inside a panel — is 64-byte aligned,
/// so vector kernels stream column lines with full-width aligned loads.
///
/// This is the layout the blocked-GEMM engine packs centroids into: a
/// row-block is one register-tile of centroids (a "panel" of the k
/// dimension) and the column lines are the depth dimension, streamed in
/// ascending order so per-centroid accumulation stays strictly sequential
/// over d regardless of the col_block cut (the §12 determinism contract).
class TiledMatrix {
 public:
  /// Elements per 64-byte cache line; row strides pad up to this.
  static constexpr index_t kLineElems = kCacheLine / sizeof(value_t);

  static index_t padded_row_stride(index_t row_block) {
    return (row_block + kLineElems - 1) / kLineElems * kLineElems;
  }

  TiledMatrix() = default;

  /// (Re)pack `src` into row_block × col_block panels; reuses storage when
  /// the geometry is unchanged (padding stays zero across repacks).
  void pack(ConstMatrixView src, index_t row_block, index_t col_block) {
    if (src.empty() || row_block == 0 || col_block == 0)
      throw std::invalid_argument("TiledMatrix::pack: empty source or block");
    const index_t rows = src.rows(), cols = src.cols();
    const index_t stride = padded_row_stride(row_block);
    const index_t rp = (rows + row_block - 1) / row_block;
    const index_t cp = (cols + col_block - 1) / col_block;
    const std::size_t panel_elems =
        static_cast<std::size_t>(stride) * col_block;
    if (rows != rows_ || cols != cols_ || row_block != row_block_ ||
        col_block != col_block_) {
      // AlignedBuffer zero-fills: padding lanes start (and stay) +0.0.
      buf_ = AlignedBuffer<value_t>(panel_elems * rp * cp, kCacheLine);
      rows_ = rows;
      cols_ = cols;
      row_block_ = row_block;
      col_block_ = col_block;
      stride_ = stride;
      row_panels_ = rp;
      col_panels_ = cp;
    }
    for (index_t I = 0; I < rp; ++I) {
      const index_t r0 = I * row_block;
      const index_t rm = rows - r0 < row_block ? rows - r0 : row_block;
      for (index_t J = 0; J < cp; ++J) {
        const index_t c0 = J * col_block;
        const index_t cm = cols - c0 < col_block ? cols - c0 : col_block;
        value_t* p = buf_.data() + (I * cp + J) * panel_elems;
        for (index_t c = 0; c < cm; ++c)
          for (index_t r = 0; r < rm; ++r)
            p[c * stride + r] = src.at(r0 + r, c0 + c);
      }
    }
  }

  /// Base of panel (I, J): 64-byte aligned; element (r, c) of the block is
  /// at panel(I, J)[c * row_stride() + r].
  const value_t* panel(index_t I, index_t J) const {
    assert(I < row_panels_ && J < col_panels_);
    return buf_.data() +
           (I * col_panels_ + J) *
               (static_cast<std::size_t>(stride_) * col_block_);
  }

  /// Live columns in col-panel J (the last block may be a tail).
  index_t panel_cols(index_t J) const {
    assert(J < col_panels_);
    const index_t c0 = J * col_block_;
    return cols_ - c0 < col_block_ ? cols_ - c0 : col_block_;
  }
  /// Live rows in row-panel I.
  index_t panel_rows(index_t I) const {
    assert(I < row_panels_);
    const index_t r0 = I * row_block_;
    return rows_ - r0 < row_block_ ? rows_ - r0 : row_block_;
  }

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t row_block() const noexcept { return row_block_; }
  index_t col_block() const noexcept { return col_block_; }
  index_t row_stride() const noexcept { return stride_; }
  index_t row_panels() const noexcept { return row_panels_; }
  index_t col_panels() const noexcept { return col_panels_; }
  bool empty() const noexcept { return rows_ == 0; }
  std::size_t bytes() const noexcept { return buf_.size() * sizeof(value_t); }

 private:
  AlignedBuffer<value_t> buf_;
  index_t rows_ = 0, cols_ = 0;
  index_t row_block_ = 0, col_block_ = 0;
  index_t stride_ = 0;
  index_t row_panels_ = 0, col_panels_ = 0;
};

}  // namespace knor
