#include "common/memory_tracker.hpp"

#include <cstdio>
#include <cstring>
#include <string_view>

#include "common/strict_parse.hpp"

namespace knor {

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::add(const std::string& tag, std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  tags_[tag] += bytes;
  live_ += bytes;
  if (live_ > peak_) peak_ = live_;
}

std::int64_t MemoryTracker::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

std::int64_t MemoryTracker::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::int64_t MemoryTracker::tag_bytes(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tags_.find(tag);
  return it == tags_.end() ? 0 : it->second;
}

std::map<std::string, std::int64_t> MemoryTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tags_;
}

void MemoryTracker::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  tags_.clear();
  live_ = 0;
  peak_ = 0;
}

namespace {
// Parse a "Vm...: <kB> kB" line from /proc/self/status.
std::size_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      // "VmRSS:   <digits> kB" — take the digit run after the colon.
      const char* p = line + key_len;
      if (*p == ':') ++p;
      while (*p == ' ' || *p == '\t') ++p;
      const char* begin = p;
      while (*p >= '0' && *p <= '9') ++p;
      std::uint64_t v = 0;
      if (p != begin && knor::parse_u64(std::string_view(begin, p - begin), &v))
        kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}
}  // namespace

std::size_t current_rss_bytes() { return read_status_kb("VmRSS"); }
std::size_t peak_rss_bytes() { return read_status_kb("VmHWM"); }

}  // namespace knor
