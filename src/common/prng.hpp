// Deterministic, splittable PRNG (xoshiro256**) used everywhere randomness
// is needed: dataset generation, k-means init, mini-batch sampling.
//
// A splittable generator lets every thread / rank derive an independent
// stream from (seed, stream_id) so that results are reproducible regardless
// of thread count — a requirement for the exactness tests that compare
// knori / knors / knord outputs bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace knor {

class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x5eed2017ULL) { reseed(seed, 0); }
  Prng(std::uint64_t seed, std::uint64_t stream) { reseed(seed, stream); }

  void reseed(std::uint64_t seed, std::uint64_t stream) {
    // splitmix64 expansion of (seed, stream) into the 256-bit state.
    std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    for (auto& s : state_) s = splitmix64(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t x, int r) {
    return (x << r) | (x >> (64 - r));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace knor
