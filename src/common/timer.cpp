#include "common/timer.hpp"

#include <ctime>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace knor {

double thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double IterStats::total() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double IterStats::mean() const {
  return samples_.empty() ? 0.0 : total() / static_cast<double>(samples_.size());
}

double IterStats::min() const {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double IterStats::max() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

double IterStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

}  // namespace knor
