// Minimal leveled logger. Level is process-global and settable via the
// KNOR_LOG environment variable (error|warn|info|debug) or programmatically.
// KNOR_LOG_FORMAT selects the line prefix: "plain" (default) is the bare
// "[knor LEVEL]", "full" adds elapsed milliseconds since process start and
// a small sequential thread id ("[knor LEVEL +12.345ms t0]") for reading
// multi-threaded runs.
//
// Both variables are strictly parsed (the KNOR_SIMD discipline): an
// unknown value throws std::runtime_error instead of silently defaulting.
// Tools call log_init_from_env() early inside their try block so the error
// surfaces as a clean nonzero exit rather than a terminate during lazy
// static init.
#pragma once

#include <sstream>
#include <string>

namespace knor {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };
enum class LogFormat { kPlain = 0, kFull = 1 };

LogLevel log_level();
void set_log_level(LogLevel level);
bool log_enabled(LogLevel level);

LogFormat log_format();
void set_log_format(LogFormat format);

/// Force evaluation of KNOR_LOG / KNOR_LOG_FORMAT now; throws
/// std::runtime_error on an unknown value. Idempotent.
void log_init_from_env();

/// Thread-safe line-buffered emission to stderr.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (!log_enabled(level)) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
}  // namespace detail

#define KNOR_LOG_ERROR(...) \
  ::knor::detail::log_fmt(::knor::LogLevel::kError, __VA_ARGS__)
#define KNOR_LOG_WARN(...) \
  ::knor::detail::log_fmt(::knor::LogLevel::kWarn, __VA_ARGS__)
#define KNOR_LOG_INFO(...) \
  ::knor::detail::log_fmt(::knor::LogLevel::kInfo, __VA_ARGS__)
#define KNOR_LOG_DEBUG(...) \
  ::knor::detail::log_fmt(::knor::LogLevel::kDebug, __VA_ARGS__)

}  // namespace knor
