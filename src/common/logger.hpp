// Minimal leveled logger. Level is process-global and settable via the
// KNOR_LOG environment variable (error|warn|info|debug) or programmatically.
#pragma once

#include <sstream>
#include <string>

namespace knor {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);
bool log_enabled(LogLevel level);

/// Thread-safe line-buffered emission to stderr.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (!log_enabled(level)) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
}  // namespace detail

#define KNOR_LOG_ERROR(...) \
  ::knor::detail::log_fmt(::knor::LogLevel::kError, __VA_ARGS__)
#define KNOR_LOG_WARN(...) \
  ::knor::detail::log_fmt(::knor::LogLevel::kWarn, __VA_ARGS__)
#define KNOR_LOG_INFO(...) \
  ::knor::detail::log_fmt(::knor::LogLevel::kInfo, __VA_ARGS__)
#define KNOR_LOG_DEBUG(...) \
  ::knor::detail::log_fmt(::knor::LogLevel::kDebug, __VA_ARGS__)

}  // namespace knor
