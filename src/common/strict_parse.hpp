// Strict whole-string numeric parsing — the single blessed home for
// low-level text->number conversion in the library and bench harness.
//
// Rationale (knor_lint rule KL001, DESIGN.md §14): the atoi/strtol family
// regressed twice — `atoi` leniency silently turned `--repeats abc` into 0
// samples (fixed in PR 5) and `--rows-per-request` typos into no-ops (PR 7)
// — so bare calls to that family are banned outside tools/cli_args.hpp.
// Everything else parses through these helpers, which share one contract:
//
//   * the WHOLE string must be consumed — no trailing junk, no leading
//     whitespace, no locale dependence (std::from_chars underneath);
//   * unsigned parsers reject signs entirely; parse_double rejects "+",
//     "inf"/"nan" spellings and hex floats (strtod accepted all of these);
//   * out-of-range values are a parse failure, never a silent clamp.
//
// All parsers return false on failure and leave *out untouched, so callers
// choose their own rejection (usage-and-exit, throw, skip-token).
#pragma once

#include <charconv>
#include <cstdint>
#include <string_view>
#include <system_error>

namespace knor {

/// Unsigned integer: digits only (no sign), whole string, no overflow.
inline bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s[0] == '+' || s[0] == '-') return false;
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  *out = v;
  return true;
}

/// Signed integer: optional leading '-', whole string, no overflow.
inline bool parse_i64(std::string_view s, std::int64_t* out) {
  if (s.empty() || s[0] == '+') return false;
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  *out = v;
  return true;
}

/// Finite decimal floating point: optional leading '-', digits with
/// optional fraction/exponent, whole string. Rejects "inf"/"nan"
/// spellings, hex floats, a bare sign, and out-of-range magnitudes.
inline bool parse_double(std::string_view s, double* out) {
  if (s.empty()) return false;
  // from_chars accepts "inf"/"nan" (and their sign-prefixed forms); the
  // strict grammar starts with a digit or '.' after an optional '-'.
  std::string_view body = s;
  if (body[0] == '-') body.remove_prefix(1);
  if (body.empty() ||
      !((body[0] >= '0' && body[0] <= '9') || body[0] == '.'))
    return false;
  double v = 0.0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v,
                                       std::chars_format::general);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace knor
