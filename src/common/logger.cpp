#include "common/logger.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace knor {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("KNOR_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= level_storage().load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[knor %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace knor
