#include "common/logger.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace knor {
namespace {

// Strict parse (the KNOR_SIMD discipline): an unknown value must reject
// loudly, never silently fall back — a typo'd KNOR_LOG=dbug that quietly
// means "warn" hides exactly the output the user asked for.
LogLevel level_from_env() {
  const char* env = std::getenv("KNOR_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  throw std::runtime_error(
      std::string("KNOR_LOG: unknown level '") + env +
      "' (expected error|warn|info|debug)");
}

LogFormat format_from_env() {
  const char* env = std::getenv("KNOR_LOG_FORMAT");
  if (env == nullptr) return LogFormat::kPlain;
  if (std::strcmp(env, "plain") == 0) return LogFormat::kPlain;
  if (std::strcmp(env, "full") == 0) return LogFormat::kFull;
  throw std::runtime_error(
      std::string("KNOR_LOG_FORMAT: unknown format '") + env +
      "' (expected plain|full)");
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

std::atomic<int>& format_storage() {
  static std::atomic<int> format{static_cast<int>(format_from_env())};
  return format;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

double elapsed_ms() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int thread_log_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= level_storage().load(std::memory_order_relaxed);
}

LogFormat log_format() {
  return static_cast<LogFormat>(
      format_storage().load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) {
  format_storage().store(static_cast<int>(format), std::memory_order_relaxed);
}

void log_init_from_env() {
  level_storage();
  format_storage();
  elapsed_ms();  // pin the epoch to process start, not the first log line
}

void log_line(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (log_format() == LogFormat::kFull)
    std::fprintf(stderr, "[knor %s +%.3fms t%d] %s\n", level_name(level),
                 elapsed_ms(), thread_log_id(), msg.c_str());
  else
    std::fprintf(stderr, "[knor %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace knor
