// Wall-clock timing and per-iteration timing statistics.
//
// Every bench in bench/ reports "time per iteration", the unit the paper
// uses throughout its evaluation (Tables 3, Figures 5, 8-13). IterStats
// collects per-iteration samples and provides mean / min / max / total.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace knor {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void restart() { start_ = Clock::now(); }
  /// Seconds elapsed since construction / restart.
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  /// Milliseconds elapsed.
  double elapsed_ms() const { return elapsed() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID),
/// seconds. Unlike wall time, this is meaningful on an oversubscribed
/// machine: max-over-threads of per-thread CPU time approximates the
/// makespan the same work would have on dedicated cores (the basis of the
/// bench harness's "makespan proxy" — see DESIGN.md §1).
double thread_cpu_seconds();

class IterStats {
 public:
  void record(double seconds) { samples_.push_back(seconds); }
  std::size_t count() const { return samples_.size(); }
  double total() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Standard deviation of the samples (population).
  double stddev() const;
  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

}  // namespace knor
