// Fundamental scalar and index types shared by every knor module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace knor {

/// Element type of data matrices and centroids. The paper's knor uses
/// double-precision rows; we accumulate centroid sums in double regardless.
using value_t = double;

/// Row (data point) index. knor targets billion-row datasets, so 64-bit.
using index_t = std::uint64_t;

/// Cluster index. k is small (10..10^4); 32 bits suffice and halve the
/// footprint of the O(n) assignment vector relative to index_t.
using cluster_t = std::uint32_t;

/// Sentinel for "not yet assigned to any cluster".
inline constexpr cluster_t kInvalidCluster = static_cast<cluster_t>(-1);

/// Cache line size assumed for alignment / false-sharing padding.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace knor
