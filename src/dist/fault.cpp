#include "dist/fault.hpp"

#include <algorithm>
#include <sstream>

#include "common/strict_parse.hpp"

namespace knor::dist {
namespace {

[[noreturn]] void bad_plan(const std::string& token, const char* why) {
  throw std::invalid_argument("fault plan: bad event \"" + token + "\" (" +
                              why + ")");
}

/// Strict positive-double parse of the whole string.
bool parse_pos_double(const std::string& s, double* out) {
  double v = 0.0;
  if (!knor::parse_double(s, &v) || !(v > 0.0)) return false;
  *out = v;
  return true;
}

/// "rN" -> N.
bool parse_node(const std::string& s, int* out) {
  if (s.size() < 2 || s[0] != 'r') return false;
  std::uint64_t v = 0;
  if (!parse_u64(s.substr(1), &v) || v > 1u << 20) return false;
  *out = static_cast<int>(v);
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// splitmix64: the standard seeded mixing step — a pure function of state.
std::uint64_t splitmix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

RankFailure::RankFailure(int node_id, std::uint64_t iter)
    : std::runtime_error("dist: injected crash of node " +
                         std::to_string(node_id) + " at iteration " +
                         std::to_string(iter)),
      node(node_id),
      iteration(iter) {}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  // ';' and ',' are interchangeable separators (',' needs no shell quoting).
  std::string normalized = spec;
  for (char& c : normalized)
    if (c == ',') c = ';';
  std::stringstream ss(normalized);
  std::string token;
  while (std::getline(ss, token, ';')) {
    token = trim(token);
    if (token.empty()) continue;
    if (token.rfind("seed=", 0) == 0) {
      if (!parse_u64(token.substr(5), &plan.seed))
        bad_plan(token, "seed=S needs an unsigned integer");
      continue;
    }
    if (token.rfind("crash@", 0) == 0 || token.rfind("leave@", 0) == 0 ||
        token.rfind("join@", 0) == 0) {
      const bool crash = token[0] == 'c';
      const bool join = token[0] == 'j';
      const std::size_t at = token.find('@');
      const std::size_t colon = token.find(':', at);
      if (colon == std::string::npos)
        bad_plan(token, "expected EVENT@I:rN");
      std::uint64_t iter = 0;
      int node = -1;
      if (!parse_u64(token.substr(at + 1, colon - at - 1), &iter) ||
          iter == 0)
        bad_plan(token, "iteration must be an integer >= 1");
      if (!parse_node(token.substr(colon + 1), &node))
        bad_plan(token, "expected node id rN");
      if (crash)
        plan.crashes.push_back({iter, node});
      else
        plan.members.push_back({iter, node, join});
      continue;
    }
    if (token.rfind("slow:", 0) == 0) {
      const std::size_t star = token.find('*');
      if (star == std::string::npos) bad_plan(token, "expected slow:rN*M");
      int node = -1;
      double mult = 0.0;
      if (!parse_node(token.substr(5, star - 5), &node))
        bad_plan(token, "expected node id rN");
      if (!parse_pos_double(token.substr(star + 1), &mult))
        bad_plan(token, "multiplier must be > 0");
      plan.stragglers.push_back({node, mult});
      continue;
    }
    if (token.rfind("flaky@", 0) == 0) {
      const std::size_t star = token.find('*');
      if (star == std::string::npos) bad_plan(token, "expected flaky@I*C");
      std::uint64_t iter = 0, count = 0;
      if (!parse_u64(token.substr(6, star - 6), &iter) || iter == 0)
        bad_plan(token, "iteration must be an integer >= 1");
      if (!parse_u64(token.substr(star + 1), &count) || count == 0 ||
          count > 1000)
        bad_plan(token, "failure count must be in [1, 1000]");
      plan.transients.push_back({iter, static_cast<int>(count)});
      continue;
    }
    bad_plan(token, "unknown event kind");
  }
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::random_crashes(std::uint64_t seed, int world,
                                    int crashes,
                                    std::uint64_t max_iteration) {
  if (world < 1)
    throw std::invalid_argument("fault plan: world must be >= 1");
  if (max_iteration == 0)
    throw std::invalid_argument("fault plan: max_iteration must be >= 1");
  FaultPlan plan;
  plan.seed = seed;
  std::uint64_t state = seed;
  const int n = std::min(crashes, world - 1);
  std::vector<int> nodes;
  while (static_cast<int>(nodes.size()) < n) {
    const int node =
        static_cast<int>(splitmix64(&state) % static_cast<unsigned>(world));
    if (std::find(nodes.begin(), nodes.end(), node) == nodes.end())
      nodes.push_back(node);
  }
  for (const int node : nodes)
    plan.crashes.push_back({splitmix64(&state) % max_iteration + 1, node});
  return plan;
}

bool FaultPlan::crash_at(std::uint64_t iteration, int node) const {
  for (const CrashEvent& c : crashes)
    if (c.iteration == iteration && c.node == node) return true;
  return false;
}

std::vector<int> FaultPlan::crashed_nodes_at(std::uint64_t iteration) const {
  std::vector<int> nodes;
  for (const CrashEvent& c : crashes)
    if (c.iteration == iteration) nodes.push_back(c.node);
  return nodes;
}

std::vector<MemberEvent> FaultPlan::member_events_at(
    std::uint64_t iteration) const {
  std::vector<MemberEvent> events;
  for (const MemberEvent& e : members)
    if (e.iteration == iteration) events.push_back(e);
  return events;
}

int FaultPlan::transient_failures_at(std::uint64_t iteration) const {
  int failures = 0;
  for (const TransientFault& t : transients)
    if (t.iteration == iteration) failures += t.failures;
  return failures;
}

double FaultPlan::straggler_multiplier(int node) const {
  double mult = 1.0;
  for (const StragglerSpec& s : stragglers)
    if (s.node == node) mult *= s.multiplier;
  return mult;
}

void FaultPlan::validate() const {
  for (const CrashEvent& c : crashes)
    if (c.iteration == 0 || c.node < 0)
      throw std::invalid_argument(
          "fault plan: crash events need iteration >= 1 and node >= 0");
  for (const MemberEvent& e : members)
    if (e.iteration == 0 || e.node < 0)
      throw std::invalid_argument(
          "fault plan: member events need iteration >= 1 and node >= 0");
  for (const StragglerSpec& s : stragglers)
    if (s.node < 0 || !(s.multiplier > 0.0))
      throw std::invalid_argument(
          "fault plan: stragglers need node >= 0 and multiplier > 0");
  for (const TransientFault& t : transients)
    if (t.iteration == 0 || t.failures < 1)
      throw std::invalid_argument(
          "fault plan: transients need iteration >= 1 and failures >= 1");
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  const char* sep = "";
  for (const CrashEvent& c : crashes) {
    out << sep << "crash@" << c.iteration << ":r" << c.node;
    sep = ";";
  }
  for (const MemberEvent& e : members) {
    out << sep << (e.join ? "join@" : "leave@") << e.iteration << ":r"
        << e.node;
    sep = ";";
  }
  for (const StragglerSpec& s : stragglers) {
    out << sep << "slow:r" << s.node << "*" << s.multiplier;
    sep = ";";
  }
  for (const TransientFault& t : transients) {
    out << sep << "flaky@" << t.iteration << "*" << t.failures;
    sep = ";";
  }
  if (seed != 0) {
    out << sep << "seed=" << seed;
    sep = ";";
  }
  return out.str();
}

}  // namespace knor::dist
