#include "dist/membership.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace knor::dist {

Membership::Membership(int world) : world_(world) {
  if (world < 1)
    throw std::invalid_argument("Membership: world must be >= 1");
  nodes_.resize(static_cast<std::size_t>(world));
  for (int i = 0; i < world; ++i) nodes_[static_cast<std::size_t>(i)] = i;
}

int Membership::node_at(int comm_rank) const {
  if (comm_rank < 0 || comm_rank >= live())
    throw std::out_of_range("Membership::node_at: rank " +
                            std::to_string(comm_rank));
  return nodes_[static_cast<std::size_t>(comm_rank)];
}

int Membership::rank_of(int node) const {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return -1;
  return static_cast<int>(it - nodes_.begin());
}

bool Membership::is_live(int node) const { return rank_of(node) >= 0; }

int Membership::leader() const {
  if (nodes_.empty())
    throw std::logic_error("Membership::leader: no live nodes");
  return nodes_.front();
}

void Membership::remove(int node) {
  const int r = rank_of(node);
  if (r < 0)
    throw std::invalid_argument("Membership::remove: node " +
                                std::to_string(node) + " is not live");
  nodes_.erase(nodes_.begin() + r);
}

void Membership::add(int node) {
  if (node < 0)
    throw std::invalid_argument("Membership::add: negative node id");
  if (is_live(node))
    throw std::invalid_argument("Membership::add: node " +
                                std::to_string(node) + " is already live");
  nodes_.insert(
      std::upper_bound(nodes_.begin(), nodes_.end(), node), node);
  world_ = std::max(world_, node + 1);
}

numa::RowRange Membership::shard(index_t n, int comm_rank) const {
  if (comm_rank < 0 || comm_rank >= live())
    throw std::out_of_range("Membership::shard: rank " +
                            std::to_string(comm_rank));
  return numa::block_range(n, live(), comm_rank);
}

}  // namespace knor::dist
