// Deterministic fault injection for the distributed subsystem
// (DESIGN.md §13).
//
// A FaultPlan is a replayable script of failures keyed to LOGICAL
// iteration boundaries and stable node ids — never to wall-clock time —
// so every failure scenario is a pure function of (plan, seed): two runs
// with the same plan crash at the same boundaries, retry the same
// collectives, and re-shard onto the same survivors, which is what lets
// the recovery tests pin bitwise-identical clustering and lets CI
// strip-diff two faulted runs for determinism.
//
// Event kinds:
//   * crash     — the rank hosting the node throws RankFailure after
//                 completing the given iteration; survivors abort the
//                 epoch and ft_kmeans recovers from the latest checkpoint.
//   * leave/join — graceful elasticity at an iteration boundary: the
//                 cluster checkpoints, stops, applies the membership
//                 change and re-shards deterministically.
//   * slow      — a per-node straggler multiplier on the interconnect
//                 model (Cluster::set_straggler).
//   * flaky     — an iteration's allreduce "times out" N consecutive
//                 times; every rank retries with exponential backoff
//                 (transient-fault detection), failing the run only past
//                 FtOptions::max_retries.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace knor::dist {

/// Node `node` crashes after completing iteration `iteration` (>= 1).
struct CrashEvent {
  std::uint64_t iteration = 0;
  int node = -1;
};

/// Node `node` joins (join = true) or gracefully leaves the cluster at the
/// boundary after iteration `iteration`. Idempotent against the live set:
/// a replayed boundary (recovery re-runs iterations) cannot refire it.
struct MemberEvent {
  std::uint64_t iteration = 0;
  int node = -1;
  bool join = false;
};

/// Node `node` pays `multiplier` x the modeled interconnect cost.
struct StragglerSpec {
  int node = -1;
  double multiplier = 1.0;
};

/// Iteration `iteration`'s allreduce fails `failures` consecutive times
/// before going through (transient collective timeouts).
struct TransientFault {
  std::uint64_t iteration = 0;
  int failures = 1;
};

/// A deterministic, seeded failure script (see file comment).
struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<MemberEvent> members;
  std::vector<StragglerSpec> stragglers;
  std::vector<TransientFault> transients;
  /// Recorded with the plan (random_crashes derives its events from it);
  /// carries no behavior of its own beyond reproducibility bookkeeping.
  std::uint64_t seed = 0;

  bool empty() const {
    return crashes.empty() && members.empty() && stragglers.empty() &&
           transients.empty();
  }

  /// Parse the CLI grammar: events separated by ';' or ',' (equivalent;
  /// commas survive shells and CMake lists unquoted)
  ///   crash@I:rN   node N crashes after iteration I completes
  ///   leave@I:rN   node N gracefully leaves at boundary I
  ///   join@I:rN    node N joins at boundary I
  ///   slow:rN*M    node N's collectives cost M x the model (straggler)
  ///   flaky@I*C    iteration I's allreduce times out C times (transient)
  ///   seed=S       record seed S with the plan
  /// Strict: any malformed token throws std::invalid_argument (iterations
  /// must be >= 1, nodes >= 0, multipliers > 0, counts >= 1).
  static FaultPlan parse(const std::string& spec);

  /// Deterministic random crash plan — a pure function of its arguments:
  /// `crashes` distinct nodes out of [0, world) (capped at world - 1 so at
  /// least one rank survives) crash at iterations in [1, max_iteration].
  static FaultPlan random_crashes(std::uint64_t seed, int world,
                                  int crashes, std::uint64_t max_iteration);

  bool crash_at(std::uint64_t iteration, int node) const;
  /// Every node the plan crashes at this boundary (recovery removes them
  /// all at once — deterministic regardless of which rank's exception won
  /// the abort race).
  std::vector<int> crashed_nodes_at(std::uint64_t iteration) const;
  std::vector<MemberEvent> member_events_at(std::uint64_t iteration) const;
  int transient_failures_at(std::uint64_t iteration) const;
  double straggler_multiplier(int node) const;

  /// Throws std::invalid_argument on out-of-range fields (the programmatic
  /// construction path; parse() already enforces the same bounds).
  void validate() const;

  std::string describe() const;
};

/// Fault-tolerance knobs for dist::ft_kmeans (DESIGN.md §13).
struct FtOptions {
  FaultPlan plan;
  /// Checkpoint file written by the leader (lowest live node) via
  /// sem::save_checkpoint's atomic write-fsync-rename, with the dist block
  /// carrying epoch/world/live-nodes. Empty: no file is written and
  /// recovery restores from the in-memory latest snapshot instead.
  std::string checkpoint_path;
  /// Checkpoint every N iteration boundaries (0 = only the forced
  /// pre-reshard checkpoints that membership events trigger).
  int checkpoint_every = 1;
  /// Load checkpoint_path at start if it exists (CLI --resume): the run
  /// continues from the saved iteration, re-sharded onto dopts.ranks.
  bool resume = false;
  /// Transient-fault retry budget per collective; a collective that fails
  /// more times than this fails the whole run (network partition, not a
  /// rank crash — there is no survivor set to recover onto).
  int max_retries = 4;
  /// First retry backoff; doubles per attempt (exponential backoff).
  double backoff_us = 50.0;
  /// Bounded collective timeout (Cluster::set_collective_timeout_ms);
  /// 0 = unbounded. In-process crash detection is prompt via the abort
  /// signal, so this is the safety net for a truly wedged peer.
  long collective_timeout_ms = 0;
};

/// Simulated rank crash (fault injection). Thrown at an iteration boundary
/// by the crashing rank; ft_kmeans catches it, removes every node the plan
/// crashes at that boundary, and recovers. Escapes to the caller only when
/// no rank survives.
struct RankFailure : std::runtime_error {
  RankFailure(int node_id, std::uint64_t iter);
  int node;
  std::uint64_t iteration;
};

}  // namespace knor::dist
