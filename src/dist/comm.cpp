#include "dist/comm.hpp"

#include <stdexcept>
#include <string>
#include <thread>

namespace knor::dist {
namespace detail {

void CommState::sync() {
  std::unique_lock<std::mutex> lk(mu);
  if (aborted > 0) throw AbortError{};
  if (departed > 0)
    throw std::runtime_error(
        "dist::Communicator: collective after a peer rank exited "
        "(mismatched collective counts across ranks)");
  const std::uint64_t gen = generation;
  if (++arrived == nranks) {
    arrived = 0;
    ++generation;
    cv.notify_all();
    return;
  }
  const auto woken = [&] {
    return generation != gen || aborted > 0 || departed > 0;
  };
  if (timeout.count() > 0) {
    if (!cv.wait_for(lk, timeout, woken)) {
      // Bounded failure detection: a peer that never arrived is treated as
      // failed. Un-arrive so the accounting stays consistent while this
      // rank's exception unwinds (mark_aborted will wake the others).
      --arrived;
      throw std::runtime_error(
          "dist::Communicator: collective timed out after " +
          std::to_string(timeout.count()) +
          "ms (peer rank unresponsive)");
    }
  } else {
    cv.wait(lk, woken);
  }
  if (generation != gen) return;  // barrier completed normally
  if (aborted > 0) throw AbortError{};
  throw std::runtime_error(
      "dist::Communicator: peer rank exited while this rank was blocked "
      "in a collective");
}

void CommState::mark_aborted() {
  std::lock_guard<std::mutex> lk(mu);
  ++aborted;
  cv.notify_all();
}

void CommState::mark_departed() {
  std::lock_guard<std::mutex> lk(mu);
  ++departed;
  cv.notify_all();
}

}  // namespace detail

Cluster::Cluster(int n_ranks)
    : nranks_(n_ranks), slow_(static_cast<std::size_t>(n_ranks), 1.0) {
  if (n_ranks < 1)
    throw std::invalid_argument("Cluster: need at least one rank");
}

void Cluster::set_net(const NetModel& model) {
  has_net_ = true;
  net_ = model;
}

void Cluster::set_straggler(int rank, double multiplier) {
  if (rank < 0 || rank >= nranks_)
    throw std::invalid_argument("Cluster::set_straggler: rank out of range");
  if (multiplier <= 0.0)
    throw std::invalid_argument(
        "Cluster::set_straggler: multiplier must be > 0");
  slow_[static_cast<std::size_t>(rank)] = multiplier;
}

void Cluster::set_collective_timeout_ms(long ms) {
  if (ms < 0)
    throw std::invalid_argument(
        "Cluster::set_collective_timeout_ms: negative timeout");
  timeout_ms_ = ms;
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  detail::CommState state(nranks_);
  // This cluster's model, or the process default frozen at run start —
  // immutable while the rank threads are alive, so concurrent clusters
  // with different models cannot retarget each other.
  state.net = has_net_ ? net_ : NetSim::current();
  state.slow = slow_;
  state.timeout = std::chrono::milliseconds(timeout_ms_);
  std::mutex error_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(nranks_));
  try {
    for (int r = 0; r < nranks_; ++r) {
      ranks.emplace_back([&, r] {
        Communicator comm(r, &state);
        try {
          fn(comm);
          state.mark_departed();
        } catch (const detail::AbortError&) {
          // Collective cancelled by a peer's failure; the peer's
          // exception is the one worth reporting.
        } catch (...) {
          {
            std::lock_guard<std::mutex> lk(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          state.mark_aborted();
        }
      });
    }
  } catch (...) {
    // Thread creation failed partway (e.g. thread-limit pressure): abort
    // the already-running ranks so their collectives unblock, join them,
    // and let the spawn error propagate.
    state.mark_aborted();
    for (auto& t : ranks) t.join();
    throw;
  }
  for (auto& t : ranks) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace knor::dist
