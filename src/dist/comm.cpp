#include "dist/comm.hpp"

#include <stdexcept>
#include <thread>

namespace knor::dist {
namespace detail {

void CommState::sync() {
  std::unique_lock<std::mutex> lk(mu);
  if (aborted > 0) throw AbortError{};
  if (departed > 0)
    throw std::runtime_error(
        "dist::Communicator: collective after a peer rank exited "
        "(mismatched collective counts across ranks)");
  const std::uint64_t gen = generation;
  if (++arrived == nranks) {
    arrived = 0;
    ++generation;
    cv.notify_all();
    return;
  }
  cv.wait(lk, [&] {
    return generation != gen || aborted > 0 || departed > 0;
  });
  if (generation != gen) return;  // barrier completed normally
  if (aborted > 0) throw AbortError{};
  throw std::runtime_error(
      "dist::Communicator: peer rank exited while this rank was blocked "
      "in a collective");
}

void CommState::mark_aborted() {
  std::lock_guard<std::mutex> lk(mu);
  ++aborted;
  cv.notify_all();
}

void CommState::mark_departed() {
  std::lock_guard<std::mutex> lk(mu);
  ++departed;
  cv.notify_all();
}

}  // namespace detail

Cluster::Cluster(int n_ranks) : nranks_(n_ranks) {
  if (n_ranks < 1)
    throw std::invalid_argument("Cluster: need at least one rank");
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  detail::CommState state(nranks_);
  std::mutex error_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(nranks_));
  try {
    for (int r = 0; r < nranks_; ++r) {
      ranks.emplace_back([&, r] {
        Communicator comm(r, &state);
        try {
          fn(comm);
          state.mark_departed();
        } catch (const detail::AbortError&) {
          // Collective cancelled by a peer's failure; the peer's
          // exception is the one worth reporting.
        } catch (...) {
          {
            std::lock_guard<std::mutex> lk(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          state.mark_aborted();
        }
      });
    }
  } catch (...) {
    // Thread creation failed partway (e.g. thread-limit pressure): abort
    // the already-running ranks so their collectives unblock, join them,
    // and let the spawn error propagate.
    state.mark_aborted();
    for (auto& t : ranks) t.join();
    throw;
  }
  for (auto& t : ranks) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace knor::dist
