#include "dist/netsim.hpp"

#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "obs/registry.hpp"

namespace knor::dist {
namespace {

std::mutex g_mu;
NetModel g_model;  // zero-initialized: disabled (the process-wide default)

/// Hops of a binomial-tree collective over `ranks` participants.
int tree_hops(int ranks) {
  int hops = 0;
  for (int span = 1; span < ranks; span *= 2) ++hops;
  return hops;
}

}  // namespace

void NetSim::configure(const NetModel& model) {
  std::lock_guard<std::mutex> lk(g_mu);
  g_model = model;
}

void NetSim::disable() { configure(NetModel{}); }

NetModel NetSim::current() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_model;
}

void NetSim::account(std::size_t bytes) {
  // Collective traffic accounting (DESIGN.md §10): every rank's arrival at
  // a collective is one charge, so messages = collectives x ranks and both
  // totals are pure functions of (data, opts, ranks) — deterministic.
  using obs::Det;
  static obs::Counter& messages = obs::Registry::global().counter(
      "dist.collective_messages", Det::kDeterministic);
  static obs::Counter& total_bytes = obs::Registry::global().counter(
      "dist.collective_bytes", Det::kDeterministic);
  messages.inc();
  total_bytes.add(static_cast<std::uint64_t>(bytes));
}

void NetSim::charge_model(const NetModel& model, std::size_t bytes,
                          int ranks, double multiplier) {
  if (!model.enabled() || ranks < 2 || multiplier <= 0.0) return;
  const int hops = tree_hops(ranks);
  double us = static_cast<double>(hops) * model.latency_us;
  if (model.gigabytes_per_sec > 0.0)
    // bytes / (GB/s) in microseconds: bytes / (gbps * 1e9) * 1e6.
    us += static_cast<double>(hops) * static_cast<double>(bytes) /
          (model.gigabytes_per_sec * 1e3);
  us *= multiplier;
  if (us <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long long>(std::llround(us))));
}

void NetSim::charge(std::size_t bytes, int ranks) {
  account(bytes);
  charge_model(current(), bytes, ranks);
}

}  // namespace knor::dist
