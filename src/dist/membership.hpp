// Elastic cluster membership with deterministic re-sharding
// (DESIGN.md §13).
//
// A Membership is the sorted set of LIVE node ids of an elastic knord
// cluster. Nodes carry stable ids for their whole life (fault plans target
// ids, not comm ranks); communicator ranks are positions in the sorted
// live set, so after any crash/leave/join the mapping
//   comm rank i  <->  i-th lowest live node id
// is a pure function of the live set. The leader is comm rank 0 — the
// lowest live node id — which is the "elect the lowest live rank" rule:
// no election protocol is needed because every survivor derives the same
// leader from the same membership.
//
// Re-sharding is equally deterministic: comm rank r of a live-L cluster
// owns numa::block_range(n, L, r), the same contiguous block partition
// every fixed-size knord run uses — so a recovered 3-rank cluster shards
// exactly like a 3-rank cluster that never failed, which (on integer
// conformance data) makes post-recovery clustering bitwise identical to
// the uninterrupted run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "numa/partitioner.hpp"

namespace knor::dist {

class Membership {
 public:
  /// Initial fixed-size cluster: nodes 0..world-1, all live.
  explicit Membership(int world);

  /// Live node count (== communicator size of the current epoch).
  int live() const { return static_cast<int>(nodes_.size()); }
  /// Highest node id ever admitted + 1 (grows when joins extend it).
  int world() const { return world_; }

  /// The node id hosted by communicator rank `comm_rank` (sorted order).
  int node_at(int comm_rank) const;
  /// The communicator rank hosting `node`, or -1 if it is not live.
  int rank_of(int node) const;
  bool is_live(int node) const;
  /// The lowest live node id (comm rank 0).
  int leader() const;

  /// Remove a live node (crash or graceful leave). Throws if not live.
  void remove(int node);
  /// Admit a node (graceful join; extends world() as needed). Throws if
  /// already live or negative.
  void add(int node);

  /// The sorted live node ids.
  const std::vector<std::int32_t>& nodes() const { return nodes_; }

  /// Deterministic re-sharding: the row block owned by `comm_rank` when n
  /// rows are partitioned over the current live set.
  numa::RowRange shard(index_t n, int comm_rank) const;

 private:
  std::vector<std::int32_t> nodes_;  ///< sorted live node ids
  int world_ = 0;
};

}  // namespace knor::dist
