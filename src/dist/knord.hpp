// knord — the distributed k-means module (paper §6).
//
// Runs the same NUMA-optimized per-node engine as knori on every rank over
// the MPI-lite substrate (dist/comm.hpp): each rank owns a contiguous row
// shard, centroids are replicated, and one rank-ordered allreduce per
// iteration exchanges the k*d partial sums + k counts + changed-count.
// Because the allreduce is bitwise-deterministic and every rank finalizes
// centroids from the identical global accumulator, all ranks hold
// bit-identical centroids in lockstep, and repeated runs — including any
// per-rank thread count or steal schedule, thanks to the engine's
// per-chunk reduction (DESIGN.md §7) — are bit-identical. Across
// *different* rank counts the partial-sum grouping differs, so centroids
// agree to last-ulp rounding rather than bitwise — on separated data
// (every test/bench dataset here) that never flips an argmin, which is
// how knord's clustering stays invariant across rank counts and matches
// single-node knori (tests/dist_test.cpp; tests/conformance_test.cpp
// pins bitwise equality on integer-valued data, where the grouping
// cannot matter). All guarantees are per selected SIMD ISA
// (Options::simd, replicated to every rank; DESIGN.md §8) — each ISA is
// bitwise self-stable, and the scalar ISA reproduces the pre-SIMD
// engine bit-for-bit.
//
// Two data forms:
//   * matrix form — the caller holds the full n x d matrix; each rank
//     computes on a zero-copy view of its shard.
//   * generator form — each rank *generates* only its own shard
//     (data::generate_rows is per-row deterministic), so no process ever
//     materializes the full dataset; this is how the paper runs
//     billion-row datasets on a cluster.
//
// mpi_kmeans is the paper's flat "pure MPI" baseline: identical algorithm
// and collectives, but one compute thread per rank and no NUMA placement —
// the comparison behind Figures 11/12.
#pragma once

#include "core/kmeans_types.hpp"
#include "data/generator.hpp"
#include "dist/fault.hpp"
#include "dist/netsim.hpp"

namespace knor::dist {

/// knord cluster shape + interconnect model. Plain data; the same
/// DistOptions value always describes the same simulated cluster.
struct DistOptions {
  /// Simulated machines (ranks-as-threads; see DESIGN.md).
  int ranks = 2;
  /// Worker threads of each rank's per-node engine (the paper's per-machine
  /// thread count). mpi_kmeans ignores this and uses 1.
  int threads_per_rank = 1;
  /// Interconnect cost model charged on every collective; zero (default)
  /// makes collectives free. Threaded per-Cluster: concurrent runs with
  /// different models never interfere.
  NetModel net;
};

/// Distributed k-means over a full in-memory matrix (each rank computes on
/// its row-shard view). Deterministic: same clustering for any rank count,
/// matching knor::kmeans on the same data and options.
Result kmeans(ConstMatrixView data, const Options& opts,
              const DistOptions& dopts);

/// Distributed k-means where each rank generates only its own row shard.
/// Supports Init::kForgy and Init::kProvided (initializations that need a
/// full-data scan, like kmeans++, would defeat shard-wise generation and
/// throw std::invalid_argument).
Result kmeans(const data::GeneratorSpec& spec, const Options& opts,
              const DistOptions& dopts);

/// Flat MPI baseline: one single-threaded, NUMA-oblivious worker per rank,
/// same collectives and iteration protocol as knord
/// (dopts.threads_per_rank is ignored). Same determinism contract as
/// kmeans: the clustering is invariant across rank counts and repeated
/// runs.
Result mpi_kmeans(ConstMatrixView data, const Options& opts,
                  const DistOptions& dopts);

/// Fault-tolerant elastic knord (DESIGN.md §13): the same algorithm and
/// collectives as kmeans, driven through an epoch loop that survives the
/// failures scripted in fopts.plan. Each epoch runs the live node set
/// (dist/membership.hpp) as one Cluster; the leader — the lowest live node
/// — periodically checkpoints the replicated global state (centroids,
/// gathered assignments, pre-loosened MTI bounds, global sums/counts) via
/// sem::save_checkpoint. On an injected crash the survivors abort the
/// epoch, the crashed nodes are removed, the latest checkpoint is
/// reloaded (from fopts.checkpoint_path when set, else the in-memory
/// snapshot; from scratch when none exists yet), rows are re-sharded
/// deterministically over the survivors, and the run continues from the
/// checkpointed iteration. Graceful leave/join events take the same
/// checkpoint-stop-reshard path at their boundary.
///
/// Determinism contract: the final clustering equals an uninterrupted
/// dist::kmeans run with the same (data, opts) for ANY crash iteration and
/// ANY survivor count — bitwise on integer-valued data (the re-shard only
/// regroups exactly-representable partial sums; tests/fault_test.cpp pins
/// the full sweep), last-ulp otherwise. Transient `flaky` faults retry
/// with exponential backoff and never change results; a transient that
/// exhausts fopts.max_retries, or a crash that leaves no survivor, throws.
/// Deterministic fault metrics (dist.faults_injected / retries /
/// recoveries / checkpoints / membership_events) and the timing-class
/// dist.recovery_us histogram land in Result::metrics.
Result ft_kmeans(ConstMatrixView data, const Options& opts,
                 const DistOptions& dopts, const FtOptions& fopts);

}  // namespace knor::dist
