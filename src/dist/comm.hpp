// MPI-lite communicator: ranks-as-threads collectives for knord.
//
// A Cluster spawns one thread per rank; Cluster::run(fn) executes fn(comm)
// SPMD-style on every rank and joins. Collectives are implemented over the
// shared address space but keep MPI discipline — ranks exchange data only
// through Communicator calls, so the same algorithm ports to real MPI by
// swapping this substrate (DESIGN.md: ranks-as-threads).
//
// Determinism contract: allreduce_sum reduces contributions in rank order
// (((r0 + r1) + r2) + ...), and every rank evaluates that same ordered sum,
// so floating-point results are bitwise identical on every rank and across
// repeated runs regardless of scheduling. This is what lets knord's
// replicated centroid update stay bit-for-bit in lockstep on all ranks.
//
// Failure contract: an exception escaping any rank aborts the cluster —
// ranks blocked in (or later entering) a collective are woken with an
// internal abort signal instead of deadlocking, and Cluster::run rethrows
// the first rank's original exception. An optional bounded collective
// timeout (Cluster::set_collective_timeout_ms) turns a peer that never
// arrives into a detected failure instead of a hang — the failure-
// detection model of the fault-tolerance layer (DESIGN.md §13).
//
// Every collective charges the CLUSTER's interconnect model (per-Cluster
// state, so concurrent clusters with different models never retarget each
// other; a cluster without its own model snapshots the NetSim process
// default at run() start), scaled by the calling rank's straggler
// multiplier (Cluster::set_straggler — fault-plan slowdown injection).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <type_traits>
#include <vector>

#include "dist/netsim.hpp"

namespace knor::dist {

namespace detail {

/// Thrown into ranks whose collective was cancelled by a peer's failure.
/// Swallowed by Cluster::run (the peer's original exception propagates).
struct AbortError {};

/// State shared by all ranks of one Cluster::run.
struct CommState {
  explicit CommState(int n)
      : nranks(n),
        contrib(static_cast<std::size_t>(n), nullptr),
        slow(static_cast<std::size_t>(n), 1.0) {}

  const int nranks;
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;            ///< ranks waiting at the current sync point
  std::uint64_t generation = 0;
  int aborted = 0;            ///< ranks that exited with an exception
  int departed = 0;           ///< ranks that returned from fn normally
  std::vector<const void*> contrib;  ///< per-rank staging pointers

  // Per-cluster interconnect (set once before the rank threads start,
  // read-only while they run).
  NetModel net;              ///< this cluster's cost model
  std::vector<double> slow;  ///< per-rank straggler multipliers (1 = nominal)
  std::chrono::milliseconds timeout{0};  ///< sync bound; 0 = wait forever

  /// Generation-counted barrier. Throws AbortError if a peer aborted,
  /// std::runtime_error if a peer already exited (mismatched collective
  /// counts — a program bug that would otherwise deadlock), or
  /// std::runtime_error if `timeout` expires before every peer arrives
  /// (bounded failure detection).
  void sync();
  /// Mark this rank failed / finished and wake any waiting peers.
  void mark_aborted();
  void mark_departed();
};

}  // namespace detail

/// Per-rank handle to the cluster's collectives. Only valid inside the
/// fn passed to Cluster::run, on that rank's thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return state_->nranks; }

  /// Block until every rank has arrived.
  void barrier() {
    state_->sync();
    charge(0);
  }

  /// Elementwise sum of `data[0..n)` across all ranks, result replicated
  /// into every rank's buffer. Reduction is rank-ordered: bitwise
  /// deterministic for floating-point T across runs and identical on all
  /// ranks. All ranks must pass the same n and T.
  template <typename T>
  void allreduce_sum(T* data, std::size_t n) {
    static_assert(std::is_arithmetic_v<T>,
                  "allreduce_sum requires an arithmetic element type");
    detail::CommState* st = state_;
    st->contrib[static_cast<std::size_t>(rank_)] = data;
    st->sync();
    // Every rank computes the identical rank-ordered sum.
    std::vector<T> acc(n, T{});
    for (int r = 0; r < st->nranks; ++r) {
      const T* src =
          static_cast<const T*>(st->contrib[static_cast<std::size_t>(r)]);
      for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
    }
    // All ranks finish reading before anyone overwrites their input.
    st->sync();
    std::memcpy(data, acc.data(), n * sizeof(T));
    charge(n * sizeof(T));
  }

  /// Concatenate every rank's span into `out` (size `total`) on every
  /// rank: this rank contributes `out[offset, offset + count)` from
  /// `send`. Spans must tile [0, total) across ranks in rank order. Each
  /// rank copies O(total) elements — the aggregate cost of a real
  /// allgather — with no reduction arithmetic.
  template <typename T>
  void allgatherv(const T* send, std::size_t count, T* out,
                  std::size_t offset, std::size_t total) {
    struct Span {
      const T* data;
      std::size_t offset;
      std::size_t count;
    };
    const Span mine{send, offset, count};
    detail::CommState* st = state_;
    st->contrib[static_cast<std::size_t>(rank_)] = &mine;
    st->sync();
    for (int r = 0; r < st->nranks; ++r) {
      const Span* span =
          static_cast<const Span*>(st->contrib[static_cast<std::size_t>(r)]);
      std::memcpy(out + span->offset, span->data,
                  span->count * sizeof(T));
    }
    // All ranks finish reading before anyone's `mine`/`send` goes away.
    st->sync();
    charge(total * sizeof(T));
  }

  /// Replicate root's `bytes` at `data` into every rank's buffer.
  void bcast(void* data, std::size_t bytes, int root) {
    detail::CommState* st = state_;
    st->contrib[static_cast<std::size_t>(rank_)] = data;
    st->sync();
    if (rank_ != root)
      std::memcpy(data,
                  st->contrib[static_cast<std::size_t>(root)], bytes);
    st->sync();
    charge(bytes);
  }

 private:
  friend class Cluster;
  Communicator(int rank, detail::CommState* state)
      : rank_(rank), state_(state) {}

  /// Account the traffic, then sleep this cluster's modeled cost scaled by
  /// this rank's straggler multiplier.
  void charge(std::size_t bytes) {
    NetSim::account(bytes);
    NetSim::charge_model(state_->net, bytes, state_->nranks,
                         state_->slow[static_cast<std::size_t>(rank_)]);
  }

  int rank_;
  detail::CommState* state_;
};

/// A set of in-process ranks. Reusable: each run() spawns fresh rank
/// threads with fresh collective state (the net model, straggler
/// multipliers and timeout configured below are re-applied to each run).
class Cluster {
 public:
  explicit Cluster(int n_ranks);

  int size() const { return nranks_; }

  /// Give this cluster its own interconnect model. Without this call,
  /// run() snapshots the NetSim process-wide default instead.
  void set_net(const NetModel& model);

  /// Scale `rank`'s collective cost by `multiplier` (> 0; 1 = nominal).
  /// Fault-plan straggler injection: the slow rank's sleep delays every
  /// peer at the next sync point, dragging the whole cluster. Only
  /// effective when an interconnect model is active.
  void set_straggler(int rank, double multiplier);

  /// Bound every collective wait: a peer that fails to arrive within `ms`
  /// turns the collective into a detected failure (std::runtime_error)
  /// instead of a hang. 0 (default) waits forever.
  void set_collective_timeout_ms(long ms);

  /// Execute fn(comm) on every rank concurrently; block until all ranks
  /// finish. Rethrows the first exception any rank threw; peers blocked in
  /// collectives are aborted rather than deadlocked.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  int nranks_;
  bool has_net_ = false;
  NetModel net_;
  std::vector<double> slow_;
  long timeout_ms_ = 0;
};

}  // namespace knor::dist
