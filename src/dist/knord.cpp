#include "dist/knord.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/knori.hpp"
#include "core/mti.hpp"
#include "dist/comm.hpp"
#include "dist/membership.hpp"
#include "numa/partitioner.hpp"
#include "obs/registry.hpp"
#include "sem/checkpoint.hpp"

namespace knor::dist {
namespace {

/// Adapts the rank's Communicator to the engine's cross-node hook.
class CommReducer final : public knor::detail::GlobalReducer {
 public:
  explicit CommReducer(Communicator& comm) : comm_(comm) {}
  void allreduce(double* vals, std::size_t n) override {
    comm_.allreduce_sum(vals, n);
  }

 private:
  Communicator& comm_;
};

void validate(index_t n, index_t d, const Options& opts,
              const DistOptions& dopts) {
  if (n == 0 || d == 0)
    throw std::invalid_argument("dist::kmeans: empty dataset");
  if (opts.k < 1) throw std::invalid_argument("dist::kmeans: k < 1");
  if (static_cast<index_t>(opts.k) > n)
    throw std::invalid_argument("dist::kmeans: k > n");
  if (dopts.ranks < 1)
    throw std::invalid_argument("dist::kmeans: ranks < 1");
  if (static_cast<index_t>(dopts.ranks) > n)
    throw std::invalid_argument("dist::kmeans: more ranks than rows");
}

/// Produces the rank's shard view; `storage` keeps generated shards alive
/// for the duration of the rank's run.
using ShardFn =
    std::function<ConstMatrixView(numa::RowRange, DenseMatrix& storage)>;

/// SPMD driver shared by knord (matrix and generator forms) and the flat
/// MPI baseline. `initial` must already be the replicated, deterministic
/// k x d starting centroids — every rank copies it, exactly as every rank
/// of a real deployment computes the same seeded initialization.
Result run_cluster(index_t n, const Options& opts,
                   const DistOptions& dopts, const DenseMatrix& initial,
                   const ShardFn& shard_of, bool numa_engine) {
  const int num_ranks = dopts.ranks;
  Cluster cluster(num_ranks);
  // Per-cluster interconnect: concurrent runs with different models stay
  // isolated. Leaving it unset would fall back to the NetSim default.
  if (dopts.net.enabled()) cluster.set_net(dopts.net);

  // Per-run registry slice taken at the CLUSTER level: ranks run
  // concurrently in this process, so run_parallel_lloyd skips its own
  // attach (reducer != nullptr) and the coherent diff — covering every
  // rank's counters plus the NetSim collective traffic — is taken here.
  obs::Registry& reg = obs::Registry::global();
  const obs::Snapshot obs_before = reg.snapshot();

  std::vector<Result> rank_results(static_cast<std::size_t>(num_ranks));

  cluster.run([&](Communicator& comm) {
    const numa::RowRange rows =
        numa::block_range(n, num_ranks, comm.rank());
    DenseMatrix storage;
    const ConstMatrixView shard = shard_of(rows, storage);

    Options local = opts;
    if (numa_engine) {
      // Each rank spins up its own NUMA-partitioned work-stealing
      // scheduler (run_node constructs a per-rank sched::Scheduler over
      // the rank's shard); task_size / sched policy / numa_bind flow
      // through from the caller's Options unchanged.
      local.threads =
          dopts.threads_per_rank > 0 ? dopts.threads_per_rank : 1;
    } else {
      // Flat MPI baseline: one NUMA-oblivious compute thread per rank.
      local.threads = 1;
      local.numa_aware = false;
    }

    CommReducer reducer(comm);
    DenseMatrix start = initial;  // replicated copy
    Result res =
        knor::detail::run_node(shard, local, std::move(start), &reducer);

    // Allgather the shard assignments into the full vector (and charge
    // the O(n) wire cost of the real end-of-run gather).
    std::vector<cluster_t> full(static_cast<std::size_t>(n));
    comm.allgatherv(res.assignments.data(),
                    static_cast<std::size_t>(rows.size()), full.data(),
                    static_cast<std::size_t>(rows.begin),
                    static_cast<std::size_t>(n));
    res.assignments = std::move(full);
    rank_results[static_cast<std::size_t>(comm.rank())] = std::move(res);
  });

  // Ranks hold identical centroids, cluster sizes, iteration count and
  // (allreduced) energy; rank 0's result is the cluster's. Instrumentation
  // is aggregated across ranks like the engine aggregates across threads.
  Result out = std::move(rank_results[0]);
  for (int r = 1; r < num_ranks; ++r) {
    const Result& rr = rank_results[static_cast<std::size_t>(r)];
    out.counters += rr.counters;
    out.thread_busy_s.insert(out.thread_busy_s.end(),
                             rr.thread_busy_s.begin(),
                             rr.thread_busy_s.end());
  }
  out.metrics = obs::diff(obs_before, reg.snapshot());
  return out;
}

/// Deterministic replicated initialization for the generator form: forgy
/// rows are materialized individually (generate_rows is per-row
/// deterministic), so no rank ever needs the full matrix.
DenseMatrix generator_initial(const data::GeneratorSpec& spec,
                              const Options& opts) {
  if (opts.init == Init::kProvided) {
    if (opts.initial_centroids.rows() != static_cast<index_t>(opts.k) ||
        opts.initial_centroids.cols() != spec.d)
      throw std::invalid_argument(
          "dist::kmeans: provided centroids shape mismatch");
    return opts.initial_centroids;
  }
  if (opts.init != Init::kForgy)
    throw std::invalid_argument(
        "dist::kmeans(generator): this initialization needs a full-data "
        "scan; use forgy or provided centroids");
  const std::vector<index_t> rows = sample_rows(spec.n, opts.k, opts.seed);
  DenseMatrix centroids(static_cast<index_t>(opts.k), spec.d);
  for (int c = 0; c < opts.k; ++c) {
    MutMatrixView row_view(centroids.row(static_cast<index_t>(c)), 1,
                           spec.d);
    const index_t r = rows[static_cast<std::size_t>(c)];
    data::generate_rows(spec, r, r + 1, row_view);
  }
  return centroids;
}

// ---------------------------------------------------------------------------
// Fault-tolerant elastic driver (ft_kmeans, DESIGN.md §13).

/// Replicated global state between epochs, in the FULL row space. Restored
/// from a checkpoint (or fresh) by the driver, sliced per rank on entry.
struct FtState {
  std::uint64_t iteration = 0;  ///< 0 = fresh start
  DenseMatrix centroids;
  std::vector<cluster_t> assignments;  ///< size n when iteration > 0
  std::vector<value_t> upper_bounds;   ///< size n (pruning only)
  DenseMatrix sums;                    ///< k x d (pruning only)
  std::vector<std::int64_t> counts;    ///< k (pruning only)
};

/// Deterministic fault-metric handles, resolved once per ft_kmeans call.
struct FtMetrics {
  obs::Counter& faults;
  obs::Counter& retries;
  obs::Counter& recoveries;
  obs::Counter& checkpoints;
  obs::Counter& member_events;
  obs::Histogram& recovery_us;

  static FtMetrics get() {
    using obs::Det;
    obs::Registry& reg = obs::Registry::global();
    return FtMetrics{
        reg.counter("dist.faults_injected", Det::kDeterministic),
        reg.counter("dist.retries", Det::kDeterministic),
        reg.counter("dist.recoveries", Det::kDeterministic),
        reg.counter("dist.checkpoints", Det::kDeterministic),
        reg.counter("dist.membership_events", Det::kDeterministic),
        reg.histogram("dist.recovery_us", Det::kTiming)};
  }
};

/// Driver<->rank coordination for one epoch. `latest` points at the
/// driver's checkpoint slot; only the leader thread writes it (before the
/// driver joins the epoch, so the join is the happens-before edge).
struct FtEpochCtx {
  std::atomic<bool> stopped{false};
  std::atomic<std::uint64_t> stop_iteration{0};
  std::shared_ptr<const sem::Checkpoint>* latest = nullptr;
};

/// CommReducer + transient-fault injection: the per-iteration wire
/// collective (k*d + k + 1 doubles — the only allreduce of that size the
/// engine issues) identifies which logical iteration is completing, and
/// the plan's `flaky` events for it are served as failed attempts with
/// exponential backoff. Every rank consults the identical plan, so all
/// ranks run the retry loop in lockstep; only rank 0 bumps the metrics
/// (one count per EVENT, not per rank — keeps the counters deterministic
/// and survivor-count independent).
class FtReducer final : public knor::detail::GlobalReducer {
 public:
  FtReducer(Communicator& comm, const FtOptions& fopts,
            std::uint64_t start_iteration, std::size_t iter_wire_elems,
            const FtMetrics& metrics)
      : comm_(comm),
        fopts_(fopts),
        iteration_(start_iteration),
        wire_elems_(iter_wire_elems),
        metrics_(metrics) {}

  void allreduce(double* vals, std::size_t n) override {
    if (n == wire_elems_) inject_transients(++iteration_);
    comm_.allreduce_sum(vals, n);
  }

 private:
  void inject_transients(std::uint64_t iteration) {
    const int failures = fopts_.plan.transient_failures_at(iteration);
    if (failures == 0) return;
    double backoff_us = fopts_.backoff_us;
    const int attempts = std::min(failures, fopts_.max_retries);
    for (int a = 0; a < attempts; ++a) {
      if (comm_.rank() == 0) {
        metrics_.faults.inc();
        metrics_.retries.inc();
      }
      if (backoff_us > 0.0)
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<long long>(std::llround(backoff_us))));
      backoff_us *= 2.0;
    }
    if (failures > fopts_.max_retries)
      throw std::runtime_error(
          "dist::ft_kmeans: collective at iteration " +
          std::to_string(iteration) + " timed out " +
          std::to_string(failures) + " times (max_retries " +
          std::to_string(fopts_.max_retries) +
          " exhausted; treating as a partition, not a crash)");
  }

  Communicator& comm_;
  const FtOptions& fopts_;
  std::uint64_t iteration_;
  const std::size_t wire_elems_;
  FtMetrics metrics_;
};

/// Per-rank boundary hook: crash injection first (so a crash boundary
/// never half-writes a checkpoint), then periodic/forced checkpointing,
/// then the graceful-membership stop. All decisions are pure functions of
/// (plan, boundary, live set), so every rank decides identically.
class FtObserver final : public knor::detail::IterObserver {
 public:
  FtObserver(Communicator& comm, const Membership& mem, int node,
             numa::RowRange rows, index_t n, const FtOptions& fopts,
             std::uint64_t epoch, FtEpochCtx* ctx, const FtMetrics& metrics)
      : comm_(comm),
        mem_(mem),
        node_(node),
        rows_(rows),
        n_(n),
        fopts_(fopts),
        epoch_(epoch),
        ctx_(ctx),
        metrics_(metrics) {}

  bool on_iteration(const knor::detail::IterationView& view) override {
    // 1. Scheduled crash of this node. Every rank completed this
    // boundary's allreduce before any observer runs, so all crashing
    // nodes of the boundary reach this check (their compute between the
    // allreduce and here has no abort point) — the recovery can remove
    // the plan's whole crash set for the boundary deterministically.
    if (fopts_.plan.crash_at(view.iteration, node_)) {
      metrics_.faults.inc();
      throw RankFailure(node_, view.iteration);
    }
    // 2. Graceful membership events at this boundary, idempotent against
    // the live set so recovery replays cannot refire them.
    bool member_stop = false;
    for (const MemberEvent& e :
         fopts_.plan.member_events_at(view.iteration))
      if (e.join != mem_.is_live(e.node)) member_stop = true;
    // 3. Periodic checkpoint — forced before a membership re-shard so the
    // new cluster resumes from exactly this boundary.
    const int every = fopts_.checkpoint_every;
    const bool due =
        every > 0 &&
        view.iteration % static_cast<std::uint64_t>(every) == 0;
    if (due || member_stop) write_checkpoint(view);
    if (member_stop) {
      ctx_->stop_iteration.store(view.iteration,
                                 std::memory_order_relaxed);
      ctx_->stopped.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

 private:
  void write_checkpoint(const knor::detail::IterationView& view) {
    // Every rank gathers the shard state (the O(n) wire cost of a real
    // gather-to-leader); the leader — comm rank 0, the lowest live node —
    // assembles and persists the checkpoint.
    const auto nn = static_cast<std::size_t>(n_);
    const auto begin = static_cast<std::size_t>(rows_.begin);
    const auto count = static_cast<std::size_t>(rows_.size());
    std::vector<cluster_t> assignments(nn);
    comm_.allgatherv(view.assignments->data(), count, assignments.data(),
                     begin, nn);
    std::vector<value_t> bounds;
    if (view.mti != nullptr) {
      // Pre-loosen against the current centroids (ub + drift) so resume
      // restarts with drift 0 and stays bitwise exact — the SEM
      // checkpoint contract (src/sem/sem_kmeans.cpp).
      std::vector<value_t> loosened(count);
      for (index_t i = 0; i < rows_.size(); ++i)
        loosened[static_cast<std::size_t>(i)] =
            view.mti->ub(i) +
            view.mti->drift((*view.assignments)[static_cast<std::size_t>(
                i)]);
      bounds.resize(nn);
      comm_.allgatherv(loosened.data(), count, bounds.data(), begin, nn);
    }
    if (comm_.rank() != 0) return;
    auto ckpt = std::make_shared<sem::Checkpoint>();
    ckpt->iteration = view.iteration;
    ckpt->centroids = *view.centroids;
    ckpt->assignments = std::move(assignments);
    ckpt->upper_bounds = std::move(bounds);
    if (view.sums != nullptr) {
      ckpt->sums = *view.sums;
      ckpt->counts = *view.counts;
    }
    ckpt->dist_epoch = epoch_;
    ckpt->dist_world = static_cast<std::int32_t>(mem_.world());
    ckpt->dist_nodes = mem_.nodes();
    if (!fopts_.checkpoint_path.empty())
      sem::save_checkpoint(fopts_.checkpoint_path, *ckpt);
    *ctx_->latest = std::move(ckpt);
    metrics_.checkpoints.inc();
  }

  Communicator& comm_;
  const Membership& mem_;
  const int node_;
  const numa::RowRange rows_;
  const index_t n_;
  const FtOptions& fopts_;
  const std::uint64_t epoch_;
  FtEpochCtx* ctx_;
  FtMetrics metrics_;
};

FtState state_from(const sem::Checkpoint& ckpt, index_t n, index_t d,
                   const Options& opts) {
  if (ckpt.n() != n || ckpt.k() != opts.k || ckpt.centroids.cols() != d)
    throw std::runtime_error(
        "dist::ft_kmeans: checkpoint shape does not match dataset/options");
  if (opts.prune && (ckpt.upper_bounds.empty() || ckpt.sums.empty()))
    throw std::runtime_error(
        "dist::ft_kmeans: checkpoint lacks MTI state but pruning is on");
  FtState st;
  st.iteration = ckpt.iteration;
  st.centroids = ckpt.centroids;
  st.assignments = ckpt.assignments;
  st.upper_bounds = ckpt.upper_bounds;
  st.sums = ckpt.sums;
  st.counts = ckpt.counts;
  return st;
}

/// The latest distributed checkpoint: the file when a path is configured
/// (exercising the durable load/checksum path), else the in-memory
/// snapshot, else a fresh start from the run's initial centroids.
FtState restore_state(const FtOptions& fopts,
                      const std::shared_ptr<const sem::Checkpoint>& latest,
                      const DenseMatrix& initial, index_t n, index_t d,
                      const Options& opts) {
  if (!fopts.checkpoint_path.empty() &&
      sem::checkpoint_exists(fopts.checkpoint_path))
    return state_from(sem::load_checkpoint(fopts.checkpoint_path), n, d,
                      opts);
  if (latest) return state_from(*latest, n, d, opts);
  FtState st;
  st.centroids = initial;
  return st;
}

void validate_ft(const Options& opts, const DistOptions& dopts,
                 const FtOptions& fopts) {
  fopts.plan.validate();
  if (fopts.checkpoint_every < 0)
    throw std::invalid_argument(
        "dist::ft_kmeans: checkpoint_every must be >= 0");
  if (fopts.max_retries < 0)
    throw std::invalid_argument("dist::ft_kmeans: max_retries must be >= 0");
  if (fopts.backoff_us < 0.0)
    throw std::invalid_argument("dist::ft_kmeans: backoff_us must be >= 0");
  if (fopts.resume && fopts.checkpoint_path.empty())
    throw std::invalid_argument(
        "dist::ft_kmeans: resume requires a checkpoint path");
  if (opts.tolerance > 0.0 && !fopts.plan.empty())
    throw std::invalid_argument(
        "dist::ft_kmeans: nonzero tolerance with faults would let a "
        "recovery replay converge at a different iteration; use exact "
        "convergence (tolerance 0)");
  (void)dopts;
}

}  // namespace

Result kmeans(ConstMatrixView data, const Options& opts,
              const DistOptions& dopts) {
  validate(data.rows(), data.cols(), opts, dopts);
  const DenseMatrix initial = init_centroids(data, opts);
  return run_cluster(
      data.rows(), opts, dopts, initial,
      [&data](numa::RowRange rows, DenseMatrix&) {
        return data.sub_rows(rows.begin, rows.size());
      },
      /*numa_engine=*/true);
}

Result kmeans(const data::GeneratorSpec& spec, const Options& opts,
              const DistOptions& dopts) {
  validate(spec.n, spec.d, opts, dopts);
  const DenseMatrix initial = generator_initial(spec, opts);
  return run_cluster(
      spec.n, opts, dopts, initial,
      [&spec](numa::RowRange rows, DenseMatrix& storage) {
        storage = DenseMatrix(rows.size(), spec.d);
        data::generate_rows(spec, rows.begin, rows.end, storage.view());
        return storage.const_view();
      },
      /*numa_engine=*/true);
}

Result mpi_kmeans(ConstMatrixView data, const Options& opts,
                  const DistOptions& dopts) {
  validate(data.rows(), data.cols(), opts, dopts);
  const DenseMatrix initial = init_centroids(data, opts);
  return run_cluster(
      data.rows(), opts, dopts, initial,
      [&data](numa::RowRange rows, DenseMatrix&) {
        return data.sub_rows(rows.begin, rows.size());
      },
      /*numa_engine=*/false);
}

Result ft_kmeans(ConstMatrixView data, const Options& opts,
                 const DistOptions& dopts, const FtOptions& fopts) {
  const index_t n = data.rows();
  const index_t d = data.cols();
  validate(n, d, opts, dopts);
  validate_ft(opts, dopts, fopts);

  const DenseMatrix initial = init_centroids(data, opts);
  const FtMetrics metrics = FtMetrics::get();
  obs::Registry& reg = obs::Registry::global();
  const obs::Snapshot obs_before = reg.snapshot();

  // One logical allreduce per iteration: k*d sums + k counts + changed.
  const std::size_t wire_elems =
      static_cast<std::size_t>(opts.k) * static_cast<std::size_t>(d) +
      static_cast<std::size_t>(opts.k) + 1;

  Membership mem(dopts.ranks);
  std::shared_ptr<const sem::Checkpoint> latest;

  FtState st;
  if (fopts.resume && sem::checkpoint_exists(fopts.checkpoint_path))
    st = state_from(sem::load_checkpoint(fopts.checkpoint_path), n, d, opts);
  else
    st.centroids = initial;

  Result out;
  std::uint64_t epoch = 0;
  for (;;) {
    const int live = mem.live();
    if (static_cast<index_t>(live) > n)
      throw std::invalid_argument(
          "dist::ft_kmeans: join left more live ranks than rows");

    Cluster cluster(live);
    if (dopts.net.enabled()) cluster.set_net(dopts.net);
    for (int r = 0; r < live; ++r) {
      const double mult =
          fopts.plan.straggler_multiplier(mem.node_at(r));
      if (mult != 1.0) cluster.set_straggler(r, mult);
    }
    if (fopts.collective_timeout_ms > 0)
      cluster.set_collective_timeout_ms(fopts.collective_timeout_ms);

    FtEpochCtx ctx;
    ctx.latest = &latest;
    std::vector<Result> rank_results(static_cast<std::size_t>(live));

    try {
      cluster.run([&](Communicator& comm) {
        const int node = mem.node_at(comm.rank());
        const numa::RowRange rows = mem.shard(n, comm.rank());
        const ConstMatrixView shard = data.sub_rows(rows.begin, rows.size());

        Options local = opts;
        local.threads =
            dopts.threads_per_rank > 0 ? dopts.threads_per_rank : 1;

        // Slice the replicated full-n state down to this rank's shard.
        knor::detail::ResumeState rs;
        const knor::detail::ResumeState* rsp = nullptr;
        if (st.iteration > 0) {
          const auto b = static_cast<std::ptrdiff_t>(rows.begin);
          const auto e = static_cast<std::ptrdiff_t>(rows.end);
          rs.iteration = st.iteration;
          rs.assignments.assign(st.assignments.begin() + b,
                                st.assignments.begin() + e);
          if (opts.prune) {
            rs.upper_bounds.assign(st.upper_bounds.begin() + b,
                                   st.upper_bounds.begin() + e);
            rs.sums = st.sums;
            rs.counts = st.counts;
          }
          rsp = &rs;
        }

        FtReducer reducer(comm, fopts, st.iteration, wire_elems, metrics);
        FtObserver observer(comm, mem, node, rows, n, fopts, epoch, &ctx,
                            metrics);
        DenseMatrix start = st.centroids;  // replicated copy
        Result res = knor::detail::run_node(shard, local, std::move(start),
                                            &reducer, rsp, &observer);

        std::vector<cluster_t> full(static_cast<std::size_t>(n));
        comm.allgatherv(res.assignments.data(),
                        static_cast<std::size_t>(rows.size()), full.data(),
                        static_cast<std::size_t>(rows.begin),
                        static_cast<std::size_t>(n));
        res.assignments = std::move(full);
        rank_results[static_cast<std::size_t>(comm.rank())] =
            std::move(res);
      });
    } catch (const RankFailure& f) {
      // The earliest crash boundary always wins the abort race (later
      // crashes sit behind collectives the earlier crasher never joins),
      // and the whole crash set of that boundary is removed at once, so
      // the survivor sequence is a pure function of the plan.
      WallTimer recovery_timer;
      for (const int node : fopts.plan.crashed_nodes_at(f.iteration))
        if (mem.is_live(node)) mem.remove(node);
      if (mem.live() == 0) throw;  // no survivor to recover onto
      st = restore_state(fopts, latest, initial, n, d, opts);
      metrics.recoveries.inc();
      metrics.recovery_us.record(static_cast<std::uint64_t>(
          recovery_timer.elapsed() * 1e6));
      ++epoch;
      continue;
    }

    if (ctx.stopped.load(std::memory_order_relaxed)) {
      // Graceful elasticity: the epoch checkpointed and stopped at this
      // boundary; apply the (idempotent) membership changes and re-shard.
      const std::uint64_t at =
          ctx.stop_iteration.load(std::memory_order_relaxed);
      for (const MemberEvent& e : fopts.plan.member_events_at(at)) {
        if (e.join == mem.is_live(e.node)) continue;
        if (e.join)
          mem.add(e.node);
        else
          mem.remove(e.node);
        metrics.member_events.inc();
      }
      if (mem.live() == 0)
        throw std::runtime_error(
            "dist::ft_kmeans: every rank left the cluster at iteration " +
            std::to_string(at));
      st = restore_state(fopts, latest, initial, n, d, opts);
      ++epoch;
      continue;
    }

    // Uninterrupted epoch: aggregate like run_cluster does. res.iters
    // already counts TOTAL logical iterations (resume offsets it).
    out = std::move(rank_results[0]);
    for (int r = 1; r < live; ++r) {
      const Result& rr = rank_results[static_cast<std::size_t>(r)];
      out.counters += rr.counters;
      out.thread_busy_s.insert(out.thread_busy_s.end(),
                               rr.thread_busy_s.begin(),
                               rr.thread_busy_s.end());
    }
    break;
  }

  out.metrics = obs::diff(obs_before, reg.snapshot());
  return out;
}

}  // namespace knor::dist
