#include "dist/knord.hpp"

#include <cstring>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/init.hpp"
#include "core/kernels/simd.hpp"
#include "core/knori.hpp"
#include "dist/comm.hpp"
#include "numa/partitioner.hpp"
#include "obs/registry.hpp"

namespace knor::dist {
namespace {

/// Adapts the rank's Communicator to the engine's cross-node hook.
class CommReducer final : public knor::detail::GlobalReducer {
 public:
  explicit CommReducer(Communicator& comm) : comm_(comm) {}
  void allreduce(double* vals, std::size_t n) override {
    comm_.allreduce_sum(vals, n);
  }

 private:
  Communicator& comm_;
};

void validate(index_t n, index_t d, const Options& opts,
              const DistOptions& dopts) {
  if (n == 0 || d == 0)
    throw std::invalid_argument("dist::kmeans: empty dataset");
  if (opts.k < 1) throw std::invalid_argument("dist::kmeans: k < 1");
  if (static_cast<index_t>(opts.k) > n)
    throw std::invalid_argument("dist::kmeans: k > n");
  if (dopts.ranks < 1)
    throw std::invalid_argument("dist::kmeans: ranks < 1");
  if (static_cast<index_t>(dopts.ranks) > n)
    throw std::invalid_argument("dist::kmeans: more ranks than rows");
}

/// Produces the rank's shard view; `storage` keeps generated shards alive
/// for the duration of the rank's run.
using ShardFn =
    std::function<ConstMatrixView(numa::RowRange, DenseMatrix& storage)>;

/// SPMD driver shared by knord (matrix and generator forms) and the flat
/// MPI baseline. `initial` must already be the replicated, deterministic
/// k x d starting centroids — every rank copies it, exactly as every rank
/// of a real deployment computes the same seeded initialization.
Result run_cluster(index_t n, const Options& opts,
                   const DistOptions& dopts, const DenseMatrix& initial,
                   const ShardFn& shard_of, bool numa_engine) {
  const int num_ranks = dopts.ranks;
  NetModelGuard net_guard(dopts.net);
  Cluster cluster(num_ranks);

  // Per-run registry slice taken at the CLUSTER level: ranks run
  // concurrently in this process, so run_parallel_lloyd skips its own
  // attach (reducer != nullptr) and the coherent diff — covering every
  // rank's counters plus the NetSim collective traffic — is taken here.
  obs::Registry& reg = obs::Registry::global();
  const obs::Snapshot obs_before = reg.snapshot();

  std::vector<Result> rank_results(static_cast<std::size_t>(num_ranks));

  cluster.run([&](Communicator& comm) {
    const numa::RowRange rows =
        numa::block_range(n, num_ranks, comm.rank());
    DenseMatrix storage;
    const ConstMatrixView shard = shard_of(rows, storage);

    Options local = opts;
    if (numa_engine) {
      // Each rank spins up its own NUMA-partitioned work-stealing
      // scheduler (run_node constructs a per-rank sched::Scheduler over
      // the rank's shard); task_size / sched policy / numa_bind flow
      // through from the caller's Options unchanged.
      local.threads =
          dopts.threads_per_rank > 0 ? dopts.threads_per_rank : 1;
    } else {
      // Flat MPI baseline: one NUMA-oblivious compute thread per rank.
      local.threads = 1;
      local.numa_aware = false;
    }

    CommReducer reducer(comm);
    DenseMatrix start = initial;  // replicated copy
    Result res =
        knor::detail::run_node(shard, local, std::move(start), &reducer);

    // Allgather the shard assignments into the full vector (and charge
    // the O(n) wire cost of the real end-of-run gather).
    std::vector<cluster_t> full(static_cast<std::size_t>(n));
    comm.allgatherv(res.assignments.data(),
                    static_cast<std::size_t>(rows.size()), full.data(),
                    static_cast<std::size_t>(rows.begin),
                    static_cast<std::size_t>(n));
    res.assignments = std::move(full);
    rank_results[static_cast<std::size_t>(comm.rank())] = std::move(res);
  });

  // Ranks hold identical centroids, cluster sizes, iteration count and
  // (allreduced) energy; rank 0's result is the cluster's. Instrumentation
  // is aggregated across ranks like the engine aggregates across threads.
  Result out = std::move(rank_results[0]);
  for (int r = 1; r < num_ranks; ++r) {
    const Result& rr = rank_results[static_cast<std::size_t>(r)];
    out.counters += rr.counters;
    out.thread_busy_s.insert(out.thread_busy_s.end(),
                             rr.thread_busy_s.begin(),
                             rr.thread_busy_s.end());
  }
  out.metrics = obs::diff(obs_before, reg.snapshot());
  return out;
}

/// Deterministic replicated initialization for the generator form: forgy
/// rows are materialized individually (generate_rows is per-row
/// deterministic), so no rank ever needs the full matrix.
DenseMatrix generator_initial(const data::GeneratorSpec& spec,
                              const Options& opts) {
  if (opts.init == Init::kProvided) {
    if (opts.initial_centroids.rows() != static_cast<index_t>(opts.k) ||
        opts.initial_centroids.cols() != spec.d)
      throw std::invalid_argument(
          "dist::kmeans: provided centroids shape mismatch");
    return opts.initial_centroids;
  }
  if (opts.init != Init::kForgy)
    throw std::invalid_argument(
        "dist::kmeans(generator): this initialization needs a full-data "
        "scan; use forgy or provided centroids");
  const std::vector<index_t> rows = sample_rows(spec.n, opts.k, opts.seed);
  DenseMatrix centroids(static_cast<index_t>(opts.k), spec.d);
  for (int c = 0; c < opts.k; ++c) {
    MutMatrixView row_view(centroids.row(static_cast<index_t>(c)), 1,
                           spec.d);
    const index_t r = rows[static_cast<std::size_t>(c)];
    data::generate_rows(spec, r, r + 1, row_view);
  }
  return centroids;
}

}  // namespace

Result kmeans(ConstMatrixView data, const Options& opts,
              const DistOptions& dopts) {
  validate(data.rows(), data.cols(), opts, dopts);
  const DenseMatrix initial = init_centroids(data, opts);
  return run_cluster(
      data.rows(), opts, dopts, initial,
      [&data](numa::RowRange rows, DenseMatrix&) {
        return data.sub_rows(rows.begin, rows.size());
      },
      /*numa_engine=*/true);
}

Result kmeans(const data::GeneratorSpec& spec, const Options& opts,
              const DistOptions& dopts) {
  validate(spec.n, spec.d, opts, dopts);
  const DenseMatrix initial = generator_initial(spec, opts);
  return run_cluster(
      spec.n, opts, dopts, initial,
      [&spec](numa::RowRange rows, DenseMatrix& storage) {
        storage = DenseMatrix(rows.size(), spec.d);
        data::generate_rows(spec, rows.begin, rows.end, storage.view());
        return storage.const_view();
      },
      /*numa_engine=*/true);
}

Result mpi_kmeans(ConstMatrixView data, const Options& opts,
                  const DistOptions& dopts) {
  validate(data.rows(), data.cols(), opts, dopts);
  const DenseMatrix initial = init_centroids(data, opts);
  return run_cluster(
      data.rows(), opts, dopts, initial,
      [&data](numa::RowRange rows, DenseMatrix&) {
        return data.sub_rows(rows.begin, rows.size());
      },
      /*numa_engine=*/false);
}

}  // namespace knor::dist
