// Interconnect cost model for the in-process MPI-lite substrate.
//
// knord's ranks are threads sharing one address space (DESIGN.md §1), so a
// collective's data movement is a memcpy and its real cost vanishes. NetSim
// restores the missing cost: every collective charges the wall-clock a
// tree-collective's worth of simulated latency and serialization time,
// computed from a NetModel (e.g. 50us / 1.25 GB/s approximates the paper's
// 10GbE EC2 interconnect). With the model disabled (the default) collectives
// are free, which is the right baseline for correctness tests.
//
// The model is process-global — exactly one cluster runs at a time, matching
// how knord configures it for the duration of a run and restores the prior
// model afterwards (exception-safe; see NetModelGuard).
#pragma once

#include <cstddef>

namespace knor::dist {

/// Point-to-point link model. Zero-initialized means "free interconnect":
/// the simulator charges nothing.
struct NetModel {
  double latency_us = 0.0;         ///< one-hop latency, microseconds
  double gigabytes_per_sec = 0.0;  ///< link bandwidth; 0 = infinite

  bool enabled() const { return latency_us > 0.0 || gigabytes_per_sec > 0.0; }
};

/// Process-global interconnect simulator.
class NetSim {
 public:
  /// Install `model` as the active interconnect.
  static void configure(const NetModel& model);
  /// Remove any model: collectives become free.
  static void disable();
  /// The active model (zero/disabled when none installed).
  static NetModel current();

  /// Charge the calling thread the modeled cost of one `ranks`-wide
  /// tree collective moving `bytes` per hop: ceil(log2(ranks)) hops, each
  /// paying latency + bytes/bandwidth. No-op when disabled or ranks < 2.
  /// Every rank of a collective calls this — ranks are concurrent threads,
  /// so the sleeps overlap like the real collective's hops would.
  static void charge(std::size_t bytes, int ranks);
};

/// RAII: install a model for the scope, restore the previous one on exit
/// (including via exception). knord wraps every run in one of these.
class NetModelGuard {
 public:
  explicit NetModelGuard(const NetModel& model)
      : previous_(NetSim::current()) {
    NetSim::configure(model);
  }
  ~NetModelGuard() { NetSim::configure(previous_); }

  NetModelGuard(const NetModelGuard&) = delete;
  NetModelGuard& operator=(const NetModelGuard&) = delete;

 private:
  NetModel previous_;
};

}  // namespace knor::dist
