// Interconnect cost model for the in-process MPI-lite substrate.
//
// knord's ranks are threads sharing one address space (DESIGN.md §1), so a
// collective's data movement is a memcpy and its real cost vanishes. NetSim
// restores the missing cost: every collective charges the wall-clock a
// tree-collective's worth of simulated latency and serialization time,
// computed from a NetModel (e.g. 50us / 1.25 GB/s approximates the paper's
// 10GbE EC2 interconnect). With the model disabled (the default) collectives
// are free, which is the right baseline for correctness tests.
//
// The model is threaded per-Cluster: each Cluster carries its own NetModel
// (Cluster::set_net) and its Communicator charges through it, so concurrent
// knord runs with different interconnects cannot retarget each other — the
// same global-mutable-state bug class the kernel dispatch purge removed.
// The static configure/current API remains as the process-wide DEFAULT: a
// Cluster with no model of its own snapshots the default at run() start.
#pragma once

#include <cstddef>

namespace knor::dist {

/// Point-to-point link model. Zero-initialized means "free interconnect":
/// the simulator charges nothing.
struct NetModel {
  double latency_us = 0.0;         ///< one-hop latency, microseconds
  double gigabytes_per_sec = 0.0;  ///< link bandwidth; 0 = infinite

  bool enabled() const { return latency_us > 0.0 || gigabytes_per_sec > 0.0; }
};

/// Interconnect simulator: traffic accounting + modeled sleeps.
class NetSim {
 public:
  /// Install `model` as the process-wide default interconnect (used by
  /// Clusters that were not given their own model).
  static void configure(const NetModel& model);
  /// Remove the default model: collectives become free by default.
  static void disable();
  /// The default model (zero/disabled when none installed).
  static NetModel current();

  /// Record one collective arrival in the obs registry
  /// (dist.collective_messages / dist.collective_bytes) without charging
  /// any simulated time. Deterministic: counted even when every model is
  /// disabled — the traffic exists, only its simulated latency is free.
  static void account(std::size_t bytes);

  /// Sleep the modeled cost of one `ranks`-wide tree collective moving
  /// `bytes` per hop under `model`: ceil(log2(ranks)) hops, each paying
  /// latency + bytes/bandwidth, all scaled by `multiplier` (straggler
  /// injection: a rank with multiplier m pays m x the nominal cost, and
  /// since peers wait for it at the next sync point the whole collective
  /// slows — exactly how a real straggler drags a cluster). No-op when the
  /// model is disabled or ranks < 2. Every rank of a collective calls this —
  /// ranks are concurrent threads, so the sleeps overlap like the real
  /// collective's hops would.
  static void charge_model(const NetModel& model, std::size_t bytes,
                           int ranks, double multiplier = 1.0);

  /// account() + charge_model(current(), ...): the default-model path for
  /// callers outside a Cluster (Communicator charges its cluster's model).
  static void charge(std::size_t bytes, int ranks);
};

}  // namespace knor::dist
