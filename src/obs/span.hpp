// Phase-span tracing (DESIGN.md §10). An obs::Span marks one nested engine
// phase — init, assign, fold, update, io_wait, allreduce — on the calling
// thread:
//
//   { obs::Span span("assign"); ... }   // RAII: duration on scope exit
//
// Every span records its duration (µs) into the timing histogram
// "phase.<name>" in the global registry, so --metrics always carries
// per-phase duration stats. When tracing is enabled (--trace /
// KNOR_TRACE), the span additionally appends a complete event to the
// global Tracer, which serializes as Chrome trace-event-format JSON —
// load the file in chrome://tracing or https://ui.perfetto.dev to see the
// per-thread phase timeline.
//
// Spans nest (thread-local depth); trace events therefore form a
// well-formed forest per thread — tested in tests/obs_test.cpp. Span names
// must be string literals (stored by pointer, never copied).
#pragma once

#include <cstdint>
#include <string>

namespace knor::obs {

/// Process-wide collector of completed span events. Buffers are
/// per-thread (appends are lock-free after first use); serialization
/// merges and time-sorts them.
class Tracer {
 public:
  struct Event {
    const char* name;
    int tid;               ///< sequential thread id (registration order)
    std::uint64_t ts_us;   ///< start, µs since tracing was enabled
    std::uint64_t dur_us;  ///< duration, µs
  };

  static Tracer& global();

  /// Start capturing (idempotent). Records the trace epoch; spans that
  /// close while enabled are kept.
  void enable();
  bool enabled() const;

  /// Append a completed event for the calling thread. No-op when
  /// disabled.
  void record(const char* name, std::uint64_t ts_us, std::uint64_t dur_us);

  /// Merge every thread's buffer and serialize as Chrome trace-event
  /// format: {"traceEvents": [{"name","cat","ph":"X","pid","tid","ts",
  /// "dur"}, ...]}. Events are sorted by (ts, tid, name) so the document
  /// is stable for a given set of events.
  std::string to_chrome_json() const;

  /// Completed-event count across all threads (tests).
  std::size_t event_count() const;

  /// µs since the trace epoch (process start until enable() rebases it).
  static std::uint64_t now_us();

 private:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  struct Impl;
  Impl* impl_;
};

/// RAII phase span. Cheap when tracing is off: one clock read at open and
/// one at close, plus the "phase.<name>" histogram record.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Current nesting depth on the calling thread (0 outside any span).
  static int depth();

 private:
  const char* name_;
  std::uint64_t t0_us_;
};

}  // namespace knor::obs
