// Metrics/trace export plumbing shared by the CLI tools (DESIGN.md §10).
//
// Every tool resolves the same two outputs the same way — a command-line
// flag wins over its environment variable:
//
//   --metrics FILE   /  KNOR_METRICS=FILE   knor-metrics JSON (registry
//                                           snapshot split deterministic /
//                                           timing)
//   --trace FILE     /  KNOR_TRACE=FILE     Chrome trace-event JSON (load
//                                           in chrome://tracing / Perfetto)
//
// Usage in a tool's main path:
//   obs::ExportConfig exp = obs::export_config(metrics_flag, trace_flag);
//   ... run ...
//   obs::write_exports(exp);   // throws on unwritable paths
//
// export_config() must run before the engine: it enables the Tracer when a
// trace path is configured (spans that close while disabled are dropped).
#pragma once

#include <string>

#include "obs/registry.hpp"

namespace knor::obs {

struct ExportConfig {
  std::string metrics_path;  ///< empty = no metrics export
  std::string trace_path;    ///< empty = no trace export
};

/// Resolve output paths (flag value if non-empty, else the environment
/// variable, else off) and enable tracing when a trace path is set.
ExportConfig export_config(const std::string& metrics_flag,
                           const std::string& trace_flag);

/// Refresh the "mem.*" gauges from MemoryTracker and /proc/self/status so
/// a snapshot taken now reports the run's memory footprint. Called by
/// write_exports(); exposed for engines that snapshot mid-process.
void update_memory_gauges();

/// Write the configured outputs: the full global-registry snapshot as
/// knor-metrics JSON and/or the tracer contents as Chrome trace JSON.
/// Throws std::runtime_error on write failure (tools report and exit
/// nonzero — never print success over a truncated file).
void write_exports(const ExportConfig& config);

}  // namespace knor::obs
