#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace knor::obs {

const char* to_string(Det det) {
  return det == Det::kDeterministic ? "deterministic" : "timing";
}

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

int Counter::shard() {
  // Sequential thread ids wrapped to kShards: two threads may share a
  // shard (correct — adds commute), but the common worker-pool sizes get
  // distinct cache lines.
  static std::atomic<int> next{0};
  thread_local const int id =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return id;
}

namespace {

int msb_index(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(v);
#else
  int m = 0;
  while ((v >> m) > 1) ++m;
  return m;
#endif
}

}  // namespace

int Histogram::bucket_of(std::uint64_t v) {
  if (v < kSub) return static_cast<int>(v);
  const int m = msb_index(v);
  return ((m - 1) << kSubBits) +
         static_cast<int>((v >> (m - kSubBits)) & (kSub - 1));
}

std::uint64_t Histogram::bucket_lo(int b) {
  if (b < kSub) return static_cast<std::uint64_t>(b);
  const int octave = b >> kSubBits;  // >= 1
  const std::uint64_t sub = static_cast<std::uint64_t>(b & (kSub - 1));
  return (static_cast<std::uint64_t>(kSub) + sub) << (octave - 1);
}

std::uint64_t Histogram::bucket_hi(int b) {
  if (b + 1 >= kBuckets) return ~std::uint64_t{0};
  return bucket_lo(b + 1) - 1;
}

double HistogramData::quantile(double q) const {
  if (count == 0) return std::nan("");
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-quantile sample, 1-based, ceil(q * count) clamped to
  // [1, count]; walk the sparse buckets until the cumulative count covers
  // it and report that bucket's midpoint.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (const auto& [idx, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      const std::uint64_t lo = Histogram::bucket_lo(idx);
      const std::uint64_t hi =
          std::min(Histogram::bucket_hi(idx), max > 0 ? max : ~std::uint64_t{0});
      return (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
    }
  }
  return static_cast<double>(max);  // unreachable when buckets are consistent
}

const Metric* Snapshot::find(const std::string& name) const {
  for (const Metric& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::int64_t Snapshot::value_or(const std::string& name,
                                std::int64_t dflt) const {
  const Metric* m = find(name);
  if (m == nullptr || m->kind == Kind::kHistogram) return dflt;
  return m->value;
}

double Snapshot::quantile_or(const std::string& name, double q,
                             double dflt) const {
  const Metric* m = find(name);
  if (m == nullptr || m->kind != Kind::kHistogram || m->hist.count == 0)
    return dflt;
  return m->hist.quantile(q);
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

std::string format_double(double v) {
  if (std::isnan(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Guarantee a JSON number that round-trips as floating point.
  return buf;
}

void append_metric_value(std::string& out, const Metric& m,
                         const std::string& pad) {
  if (m.kind != Kind::kHistogram) {
    out += std::to_string(m.value);
    return;
  }
  const HistogramData& h = m.hist;
  out += "{\n";
  out += pad + "  \"count\": " + std::to_string(h.count) + ",\n";
  out += pad + "  \"sum\": " + std::to_string(h.sum) + ",\n";
  out += pad + "  \"max\": " + std::to_string(h.max) + ",\n";
  out += pad + "  \"p50\": " + format_double(h.quantile(0.50)) + ",\n";
  out += pad + "  \"p95\": " + format_double(h.quantile(0.95)) + ",\n";
  out += pad + "  \"p99\": " + format_double(h.quantile(0.99)) + ",\n";
  out += pad + "  \"buckets\": [";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i > 0) out += ", ";
    out += "[" + std::to_string(h.buckets[i].first) + ", " +
           std::to_string(h.buckets[i].second) + "]";
  }
  out += "]\n";
  out += pad + "}";
}

void append_partition(std::string& out, const Snapshot& snap, Det det,
                      const std::string& pad) {
  out += "{";
  bool first = true;
  for (const Metric& m : snap.metrics) {
    if (m.det != det) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += pad + "  ";
    append_escaped(out, m.name);
    out += ": ";
    append_metric_value(out, m, pad + "  ");
  }
  if (!first) out += "\n" + pad;
  out += "}";
}

}  // namespace

std::string Snapshot::to_json(int indent) const {
  // Hand-rolled on purpose: libknor cannot depend on the bench-layer Json,
  // and the document must serialize identically across runs (sorted names,
  // fixed number formatting) for the CI strip-diff.
  (void)indent;
  std::string out = "{\n";
  out += "  \"schema\": \"knor-metrics-v1\",\n";
  out += "  \"deterministic\": ";
  append_partition(out, *this, Det::kDeterministic, "  ");
  out += ",\n";
  out += "  \"timing\": ";
  append_partition(out, *this, Det::kTiming, "  ");
  out += "\n}\n";
  return out;
}

Snapshot diff(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  out.metrics.reserve(after.metrics.size());
  for (const Metric& a : after.metrics) {
    const Metric* b = before.find(a.name);
    Metric d = a;
    if (b != nullptr && b->kind == a.kind) {
      switch (a.kind) {
        case Kind::kCounter:
          d.value = a.value >= b->value ? a.value - b->value : 0;
          break;
        case Kind::kGauge:
          break;  // gauges are point-in-time: keep `after`
        case Kind::kHistogram: {
          d.hist.count = a.hist.count - std::min(b->hist.count, a.hist.count);
          d.hist.sum = a.hist.sum - std::min(b->hist.sum, a.hist.sum);
          // max cannot be un-merged; keep the whole-run max (documented).
          d.hist.buckets.clear();
          std::size_t bi = 0;
          for (const auto& [idx, n] : a.hist.buckets) {
            while (bi < b->hist.buckets.size() &&
                   b->hist.buckets[bi].first < idx)
              ++bi;
            std::uint64_t prev = 0;
            if (bi < b->hist.buckets.size() && b->hist.buckets[bi].first == idx)
              prev = b->hist.buckets[bi].second;
            if (n > prev) d.hist.buckets.emplace_back(idx, n - prev);
          }
          break;
        }
      }
    }
    // Drop zero-valued counter/histogram deltas: a per-run snapshot should
    // list what the run did, not every metric the process ever registered.
    const bool dead = (d.kind == Kind::kCounter && d.value == 0) ||
                      (d.kind == Kind::kHistogram && d.hist.count == 0);
    if (!dead) out.metrics.push_back(std::move(d));
  }
  return out;
}

struct Registry::Impl {
  struct Entry {
    Kind kind;
    Det det;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu;
  std::map<std::string, Entry> entries;  // std::map: snapshot() is name-sorted

  Entry& get(const std::string& name, Kind kind, Det det) {
    auto [it, inserted] = entries.try_emplace(name);
    Entry& e = it->second;
    if (inserted) {
      e.kind = kind;
      e.det = det;
      switch (kind) {
        case Kind::kCounter: e.counter.reset(new Counter()); break;
        case Kind::kGauge: e.gauge.reset(new Gauge()); break;
        case Kind::kHistogram: e.histogram.reset(new Histogram()); break;
      }
    } else if (e.kind != kind || e.det != det) {
      // One name must never straddle the deterministic/timing partition or
      // change shape — that would silently corrupt the strip-diff contract.
      throw std::logic_error("obs: metric '" + name + "' re-registered as " +
                             std::string(to_string(kind)) + "/" +
                             to_string(det) + " (was " +
                             to_string(e.kind) + "/" + to_string(e.det) + ")");
    }
    return e;
  }
};

Registry::Registry() : impl_(new Impl()) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked singleton: worker threads and atexit-ordered exporters may bump
  // counters after static destructors would have run.
  static Registry* g = new Registry();
  return *g;
}

#ifndef KNOR_NO_OBS

Counter& Registry::counter(const std::string& name, Det det) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return *impl_->get(name, Kind::kCounter, det).counter;
}

Gauge& Registry::gauge(const std::string& name, Det det) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return *impl_->get(name, Kind::kGauge, det).gauge;
}

Histogram& Registry::histogram(const std::string& name, Det det) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return *impl_->get(name, Kind::kHistogram, det).histogram;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Snapshot snap;
  snap.metrics.reserve(impl_->entries.size());
  for (const auto& [name, e] : impl_->entries) {
    Metric m;
    m.name = name;
    m.kind = e.kind;
    m.det = e.det;
    switch (e.kind) {
      case Kind::kCounter:
        m.value = static_cast<std::int64_t>(e.counter->value());
        break;
      case Kind::kGauge:
        m.value = e.gauge->value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        m.hist.count = h.count();
        m.hist.sum = h.sum();
        m.hist.max = h.max();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          const std::uint64_t n = h.bucket_count(b);
          if (n > 0)
            m.hist.buckets.emplace_back(static_cast<std::uint16_t>(b), n);
        }
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

#else  // KNOR_NO_OBS: registration hands out shared no-op instances.

Counter& Registry::counter(const std::string&, Det) {
  static Counter dummy;
  return dummy;
}

Gauge& Registry::gauge(const std::string&, Det) {
  static Gauge dummy;
  return dummy;
}

Histogram& Registry::histogram(const std::string&, Det) {
  static Histogram dummy;
  return dummy;
}

Snapshot Registry::snapshot() const { return Snapshot{}; }

#endif  // KNOR_NO_OBS

}  // namespace knor::obs
