#include "obs/export.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "common/memory_tracker.hpp"
#include "obs/span.hpp"

namespace knor::obs {

namespace {

std::string flag_or_env(const std::string& flag, const char* env_name) {
  if (!flag.empty()) return flag;
  const char* env = std::getenv(env_name);
  return env != nullptr ? std::string(env) : std::string();
}

void write_file(const std::string& path, const std::string& content,
                const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.close();
  if (!out)
    throw std::runtime_error(std::string(what) + ": cannot write " + path);
}

}  // namespace

ExportConfig export_config(const std::string& metrics_flag,
                           const std::string& trace_flag) {
  ExportConfig config;
  config.metrics_path = flag_or_env(metrics_flag, "KNOR_METRICS");
  config.trace_path = flag_or_env(trace_flag, "KNOR_TRACE");
  if (!config.trace_path.empty()) Tracer::global().enable();
  return config;
}

void update_memory_gauges() {
  // All timing-class: RSS is physical truth and peaks race on the thread
  // schedule; even the logical live_bytes depends on which worker freed
  // last at snapshot time.
  Registry& reg = Registry::global();
  const MemoryTracker& tracker = MemoryTracker::instance();
  reg.gauge("mem.live_bytes", Det::kTiming).set(tracker.live_bytes());
  reg.gauge("mem.peak_bytes", Det::kTiming).set(tracker.peak_bytes());
  reg.gauge("mem.current_rss_bytes", Det::kTiming)
      .set(static_cast<std::int64_t>(current_rss_bytes()));
  reg.gauge("mem.peak_rss_bytes", Det::kTiming)
      .set(static_cast<std::int64_t>(peak_rss_bytes()));
}

void write_exports(const ExportConfig& config) {
  if (!config.metrics_path.empty()) {
    update_memory_gauges();
    write_file(config.metrics_path, Registry::global().snapshot().to_json(),
               "metrics");
  }
  if (!config.trace_path.empty())
    write_file(config.trace_path, Tracer::global().to_chrome_json(), "trace");
}

}  // namespace knor::obs
