#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/registry.hpp"

namespace knor::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point& epoch() {
  static Clock::time_point t0 = Clock::now();
  return t0;
}

}  // namespace

struct Tracer::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;  // guards buffers registration + serialization
  // Owned per-thread buffers; thread-local raw pointers index into these.
  std::vector<std::unique_ptr<std::vector<Event>>> buffers;
  std::atomic<int> next_tid{0};

  struct ThreadSlot {
    std::vector<Event>* buf = nullptr;
    int tid = -1;
  };

  ThreadSlot& slot() {
    thread_local ThreadSlot tls;
    if (tls.buf == nullptr) {
      std::lock_guard<std::mutex> lock(mu);
      buffers.emplace_back(new std::vector<Event>());
      tls.buf = buffers.back().get();
      tls.tid = next_tid.fetch_add(1, std::memory_order_relaxed);
    }
    return tls;
  }
};

Tracer::Tracer() : impl_(new Impl()) {}
Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::global() {
  // Leaked, like Registry::global(): spans on detached worker threads may
  // close during static destruction.
  static Tracer* g = new Tracer();
  return *g;
}

std::uint64_t Tracer::now_us() {
#ifndef KNOR_NO_OBS
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch())
          .count());
#else
  return 0;
#endif
}

void Tracer::enable() {
#ifndef KNOR_NO_OBS
  if (!impl_->enabled.exchange(true, std::memory_order_acq_rel))
    epoch() = Clock::now();  // rebase: trace timestamps start near 0
#endif
}

bool Tracer::enabled() const {
  return impl_->enabled.load(std::memory_order_acquire);
}

void Tracer::record(const char* name, std::uint64_t ts_us,
                    std::uint64_t dur_us) {
#ifndef KNOR_NO_OBS
  if (!enabled()) return;
  Impl::ThreadSlot& s = impl_->slot();
  s.buf->push_back(Event{name, s.tid, ts_us, dur_us});
#else
  (void)name;
  (void)ts_us;
  (void)dur_us;
#endif
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t n = 0;
  for (const auto& buf : impl_->buffers) n += buf->size();
  return n;
}

std::string Tracer::to_chrome_json() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& buf : impl_->buffers)
      events.insert(events.end(), buf->begin(), buf->end());
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::strcmp(a.name, b.name) < 0;
  });

  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"";
    out += e.name;  // span names are identifier-like literals, no escaping
    out += "\", \"cat\": \"knor\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(e.tid) + ", \"ts\": " + std::to_string(e.ts_us) +
           ", \"dur\": " + std::to_string(e.dur_us) + "}";
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

namespace {

thread_local int g_span_depth = 0;

}  // namespace

Span::Span(const char* name) : name_(name), t0_us_(Tracer::now_us()) {
#ifndef KNOR_NO_OBS
  ++g_span_depth;
#endif
}

Span::~Span() {
#ifndef KNOR_NO_OBS
  --g_span_depth;
  const std::uint64_t dur = Tracer::now_us() - t0_us_;
  Registry::global()
      .histogram(std::string("phase.") + name_, Det::kTiming)
      .record(dur);
  Tracer::global().record(name_, t0_us_, dur);
#endif
}

int Span::depth() { return g_span_depth; }

}  // namespace knor::obs
